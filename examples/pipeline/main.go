// Pipeline: the paper's §3.4 data-transfer idiom. A producer handler
// owns a block of data; the consumer pulls it with queries in a tight
// loop — exactly the pattern whose redundant sync round-trips the
// dynamic and static coalescing optimizations remove. The example
// prints the runtime's instrumentation under three configurations so
// the effect is visible.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"time"

	"scoopqs"
)

const n = 50000

func run(cfg scoopqs.Config) {
	rt := scoopqs.New(cfg)
	defer rt.Shutdown()

	source := rt.NewHandler("source")
	data := make([]int, n) // owned by source

	c := rt.NewClient()
	// Fill the handler-owned buffer asynchronously.
	c.Separate(source, func(s *scoopqs.Session) {
		s.Call(func() {
			for i := range data {
				data[i] = i * 3
			}
		})
	})

	// Pull it back element by element (the "synchronous pull" idiom the
	// paper calls more natural than asynchronous push).
	out := make([]int, n)
	start := time.Now()
	c.Separate(source, func(s *scoopqs.Session) {
		for i := 0; i < n; i++ {
			i := i
			out[i] = scoopqs.Query(s, func() int { return data[i] })
		}
	})
	elapsed := time.Since(start)

	for i := range out {
		if out[i] != i*3 {
			panic("pull returned wrong data")
		}
	}
	st := rt.Stats()
	fmt.Printf("%-8s pull of %d elements: %8.2fms  syncs=%d elided=%d remote=%d local=%d\n",
		cfg.Name(), n, float64(elapsed.Microseconds())/1000,
		st.SyncsPerformed, st.SyncsElided, st.RemoteQueries, st.LocalQueries)
}

func main() {
	fmt.Println("pulling a handler-owned array under three configurations:")
	run(scoopqs.ConfigNone)    // packaged remote query per element
	run(scoopqs.ConfigDynamic) // sync elided dynamically after the first
	run(scoopqs.ConfigAll)     // queue-of-queues + elision
}
