// Remote: the paper's §7 future-work item — private queues over
// sockets. A server process exposes a handler-owned counter; remote
// clients open separate blocks over TCP and get the same ordering and
// no-interleaving guarantees as local clients. This example runs the
// server and three clients in one process over loopback for
// convenience; the two halves only share the address string.
//
// Run with: go run ./examples/remote
package main

import (
	"fmt"
	"net"
	"sync"

	"scoopqs"
	"scoopqs/internal/remote"
)

func main() {
	// --- server side ---
	rt := scoopqs.New(scoopqs.ConfigAll)
	defer rt.Shutdown()
	h := rt.NewHandler("counter")
	var n int64 // owned by h

	srv := remote.NewServer(rt)
	srv.Expose("counter", h, map[string]remote.Proc{
		"add": func(a []int64) int64 { n += a[0]; return n },
		"get": func([]int64) int64 { return n },
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()
	fmt.Println("serving handler \"counter\" on", addr)

	// --- client side ---
	var wg sync.WaitGroup
	for id := 0; id < 3; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := remote.Dial("tcp", addr)
			if err != nil {
				panic(err)
			}
			defer c.Close()
			err = c.Separate("counter", func(s *remote.Session) error {
				before, err := s.Query("get")
				if err != nil {
					return err
				}
				for i := 0; i < 100; i++ {
					if err := s.Call("add", 1); err != nil {
						return err
					}
				}
				after, err := s.Query("get")
				if err != nil {
					return err
				}
				// No other client may interleave inside this block.
				fmt.Printf("client %d: %3d -> %3d (delta %d, must be 100)\n",
					id, before, after, after-before)
				return nil
			})
			if err != nil {
				panic(err)
			}
		}()
	}
	wg.Wait()

	c, err := remote.Dial("tcp", addr)
	if err != nil {
		panic(err)
	}
	defer c.Close()
	c.Separate("counter", func(s *remote.Session) error { //nolint:errcheck
		total, err := s.Query("get")
		if err != nil {
			return err
		}
		fmt.Printf("final total: %d (expected 300)\n", total)
		return nil
	})
}
