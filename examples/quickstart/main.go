// Quickstart: the basic SCOOP/Qs vocabulary — handlers, separate
// blocks, asynchronous calls, and queries — on a tiny word-count
// pipeline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"strings"

	"scoopqs"
)

func main() {
	// A runtime with all optimizations (the SCOOP/Qs configuration).
	rt := scoopqs.New(scoopqs.ConfigAll)
	defer rt.Shutdown()

	// A handler owns the shared state: only calls executed through it
	// may touch counts. That is the whole data-race story.
	counter := rt.NewHandler("word-counter")
	counts := map[string]int{}

	lines := []string{
		"the quick brown fox",
		"jumps over the lazy dog",
		"the dog barks",
	}

	// Each goroutine is a client with its own private queues.
	done := make(chan struct{})
	for _, line := range lines {
		line := line
		go func() {
			defer func() { done <- struct{}{} }()
			c := rt.NewClient()
			// separate counter do ... end — asynchronous calls from
			// this block execute on the handler in order, with no
			// interleaving from the other goroutines' blocks.
			c.Separate(counter, func(s *scoopqs.Session) {
				for _, w := range strings.Fields(line) {
					w := w
					s.Call(func() { counts[w]++ })
				}
				// A query synchronizes: it sees all calls above applied.
				n := scoopqs.Query(s, func() int { return len(counts) })
				fmt.Printf("after %q: %d distinct words so far\n", line, n)
			})
		}()
	}
	for range lines {
		<-done
	}

	// Read the final state through the handler.
	c := rt.NewClient()
	c.Separate(counter, func(s *scoopqs.Session) {
		the := scoopqs.Query(s, func() int { return counts["the"] })
		total := scoopqs.Query(s, func() int {
			sum := 0
			for _, n := range counts {
				sum += n
			}
			return sum
		})
		fmt.Printf("\"the\" appeared %d times; %d words total\n", the, total)
	})

	st := rt.Stats()
	fmt.Printf("runtime stats: %d async calls, %d syncs (%d elided)\n",
		st.AsyncCalls, st.SyncsPerformed, st.SyncsElided)
}
