// Bank: multi-handler reservations (paper §2.4, Fig. 5). Transfers
// reserve both accounts atomically, so no observer that also reserves
// both can ever see money in flight — the classic consistency property
// that single-object locking cannot give you.
//
// Run with: go run ./examples/bank
//
// The service-scale version of this program — a million accounts
// sharded over 64 handlers, driven over the wire through the
// zero-copy bytes-payload transport, with the same conservation
// invariant checked after every run — is
// `go run ./cmd/qsbench -experiment bank` (see internal/harness/bank.go
// and README "Bytes payloads").
package main

import (
	"fmt"
	"sync"

	"scoopqs"
)

// account is state owned by one handler.
type account struct {
	name    string
	balance int
}

func main() {
	rt := scoopqs.New(scoopqs.ConfigAll)
	defer rt.Shutdown()

	const initial = 1000
	ha := rt.NewHandler("account-a")
	hb := rt.NewHandler("account-b")
	a := &account{name: "a", balance: initial}
	b := &account{name: "b", balance: initial}

	var wg sync.WaitGroup

	// Two transfer workers shuffling money in opposite directions.
	transfer := func(from, to *account, hFrom, hTo *scoopqs.Handler, amount, times int) {
		defer wg.Done()
		c := rt.NewClient()
		for i := 0; i < times; i++ {
			// Reserve BOTH accounts atomically. Sessions come back
			// ordered by handler id; pair them up by identity instead.
			c.SeparateMany([]*scoopqs.Handler{hFrom, hTo}, func(ss []*scoopqs.Session) {
				for _, s := range ss {
					s := s
					switch s.Handler() {
					case hFrom:
						s.Call(func() { from.balance -= amount })
					case hTo:
						s.Call(func() { to.balance += amount })
					}
				}
			})
		}
	}
	wg.Add(2)
	go transfer(a, b, ha, hb, 7, 500)
	go transfer(b, a, hb, ha, 3, 500)

	// An auditor concurrently checks the conservation invariant. It
	// also reserves both handlers, so it can never observe a half-done
	// transfer.
	violations := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := rt.NewClient()
		for i := 0; i < 200; i++ {
			c.SeparateMany([]*scoopqs.Handler{ha, hb}, func(ss []*scoopqs.Session) {
				var balA, balB int
				for _, s := range ss {
					s := s
					switch s.Handler() {
					case ha:
						balA = scoopqs.Query(s, func() int { return a.balance })
					case hb:
						balB = scoopqs.Query(s, func() int { return b.balance })
					}
				}
				if balA+balB != 2*initial {
					violations++
					fmt.Printf("INVARIANT VIOLATION: %d + %d != %d\n", balA, balB, 2*initial)
				}
			})
		}
	}()

	wg.Wait()

	c := rt.NewClient()
	c.SeparateMany([]*scoopqs.Handler{ha, hb}, func(ss []*scoopqs.Session) {
		balA := scoopqs.Query(ss[0], func() int { return a.balance })
		balB := scoopqs.Query(ss[1], func() int { return b.balance })
		fmt.Printf("final balances: a=%d b=%d (sum %d, expected %d)\n",
			balA, balB, balA+balB, 2*initial)
	})
	fmt.Printf("auditor checks with torn reads: %d (must be 0)\n", violations)
}
