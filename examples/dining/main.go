// Dining philosophers, the SCOOP way (paper §2.5): each philosopher
// reserves both forks with one atomic multi-handler separate block, so
// the classic hold-and-wait deadlock cannot occur — there are no
// blocking partial acquisitions to cycle on. Contrast with Fig. 6 of
// the paper, where nested single reservations under the lock-based
// runtime deadlock.
//
// Run with: go run ./examples/dining
package main

import (
	"fmt"
	"sync"

	"scoopqs"
)

const (
	philosophers = 5
	meals        = 100
)

func main() {
	rt := scoopqs.New(scoopqs.ConfigAll)
	defer rt.Shutdown()

	// Each fork is a handler owning a use counter.
	forks := make([]*scoopqs.Handler, philosophers)
	uses := make([]int, philosophers) // uses[i] owned by forks[i]
	for i := range forks {
		forks[i] = rt.NewHandler(fmt.Sprintf("fork-%d", i))
	}

	var wg sync.WaitGroup
	for p := 0; p < philosophers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := rt.NewClient()
			left, right := p, (p+1)%philosophers
			// Note: every philosopher asks "left then right" — the
			// inconsistent order that deadlocks naive lock-based
			// implementations. SeparateMany makes it safe.
			pair := []*scoopqs.Handler{forks[left], forks[right]}
			for m := 0; m < meals; m++ {
				c.SeparateMany(pair, func(ss []*scoopqs.Session) {
					for _, s := range ss {
						s := s
						for i, f := range forks {
							if s.Handler() == f {
								i := i
								s.Call(func() { uses[i]++ })
							}
						}
					}
				})
			}
		}()
	}
	wg.Wait()

	total := 0
	c := rt.NewClient()
	for i, f := range forks {
		i := i
		c.Separate(f, func(s *scoopqs.Session) {
			n := scoopqs.Query(s, func() int { return uses[i] })
			fmt.Printf("fork %d used %d times\n", i, n)
			total += n
		})
	}
	fmt.Printf("total fork uses: %d (expected %d)\n", total, 2*philosophers*meals)
	if total != 2*philosophers*meals {
		fmt.Println("MISMATCH — this should never happen")
	} else {
		fmt.Println("all philosophers ate; no deadlock, no lost updates")
	}
}
