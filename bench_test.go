// Benchmarks regenerating every table and figure of the paper's
// evaluation at testing.B scale. Each BenchmarkTableN / BenchmarkFigN
// corresponds to one table or figure; `go run ./cmd/qsbench` produces
// the full formatted tables. Problem sizes here are the small bench
// presets — the point is exercising the measured code paths under the
// Go benchmark harness, with -benchmem accounting.
package scoopqs

import (
	"runtime"
	"testing"

	"scoopqs/internal/compiler/interp"
	"scoopqs/internal/compiler/ir"
	"scoopqs/internal/compiler/passes"
	"scoopqs/internal/concbench"
	"scoopqs/internal/core"
	"scoopqs/internal/cowichan"
	"scoopqs/internal/cowichan/qsimpl"
	"scoopqs/internal/harness"
)

// benchConfigs are the paper's five optimization configurations.
var benchConfigs = []core.Config{
	core.ConfigNone, core.ConfigDynamic, core.ConfigStatic,
	core.ConfigQoQ, core.ConfigAll,
}

const benchWorkers = 2

// cowInputs precomputes kernel inputs once per benchmark.
func cowInputs(b *testing.B) (cowichan.Params, *cowichan.Matrix, *cowichan.Mask) {
	b.Helper()
	p := cowichan.BenchParams()
	seq := cowichan.NewSeq()
	mat, _ := seq.Randmat(p)
	mask, _ := seq.Thresh(mat, p.P)
	return p, mat, mask
}

// BenchmarkTable1 measures the communication phase of the parallel
// tasks under each optimization configuration (paper: Table 1). The
// thresh kernel is used as the representative pull-heavy task; chain
// appears in BenchmarkFig16.
func BenchmarkTable1(b *testing.B) {
	p, mat, _ := cowInputs(b)
	for _, cfg := range benchConfigs {
		cfg := cfg
		b.Run(cfg.Name(), func(b *testing.B) {
			im := qsimpl.New(cfg, benchWorkers)
			defer im.Close()
			b.ResetTimer()
			var comm int64
			for i := 0; i < b.N; i++ {
				_, t := im.Thresh(mat, p.P)
				comm += t.Comm.Nanoseconds()
			}
			b.ReportMetric(float64(comm)/float64(b.N), "comm-ns/op")
		})
	}
}

// BenchmarkFig16 measures the full chain's communication under each
// configuration (paper: Fig. 16).
func BenchmarkFig16(b *testing.B) {
	p := cowichan.BenchParams()
	for _, cfg := range benchConfigs {
		cfg := cfg
		b.Run(cfg.Name(), func(b *testing.B) {
			im := qsimpl.New(cfg, benchWorkers)
			defer im.Close()
			b.ResetTimer()
			var comm int64
			for i := 0; i < b.N; i++ {
				r := cowichan.Chain(im, p)
				comm += r.Timing.Comm.Nanoseconds()
			}
			b.ReportMetric(float64(comm)/float64(b.N), "comm-ns/op")
		})
	}
}

// BenchmarkTable2 runs each coordination benchmark under each
// configuration (paper: Table 2).
func BenchmarkTable2(b *testing.B) {
	p := concbench.BenchParams()
	for _, bench := range concbench.Names {
		for _, cfg := range benchConfigs {
			bench, cfg := bench, cfg
			b.Run(bench+"/"+cfg.Name(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := concbench.Run(bench, "Qs", cfg, p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig17 is the condition benchmark across configurations —
// the case where QoQ's non-blocking reservations matter most in the
// paper's Fig. 17.
func BenchmarkFig17(b *testing.B) {
	p := concbench.BenchParams()
	for _, cfg := range benchConfigs {
		cfg := cfg
		b.Run(cfg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := concbench.Run("condition", "Qs", cfg, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3 renders the static language-characteristics table
// (paper: Table 3 has no timings; this keeps the 1:1 bench-per-table
// mapping and measures the render path).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := harness.Defaults(discard{})
		o.Table3()
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkFig18 measures every paradigm on the product kernel (paper:
// Fig. 18 shows all parallel tasks per language).
func BenchmarkFig18(b *testing.B) {
	p, mat, mask := cowInputs(b)
	seq := cowichan.NewSeq()
	pts, _ := seq.Winnow(mat, mask, p.NW)
	om, vec, _ := seq.Outer(pts)
	for _, lang := range harness.CowLangs {
		lang := lang
		b.Run(lang, func(b *testing.B) {
			im := harness.NewImpl(lang, core.ConfigAll, benchWorkers)
			defer im.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				im.Product(om, vec)
			}
		})
	}
}

// BenchmarkFig19 measures the randmat kernel per paradigm at 1 and 2
// workers — the speedup sweep of the paper's Fig. 19 at bench scale.
func BenchmarkFig19(b *testing.B) {
	p := cowichan.BenchParams()
	for _, lang := range harness.CowLangs {
		for _, w := range []int{1, 2} {
			lang, w := lang, w
			b.Run(lang+"/w="+string(rune('0'+w)), func(b *testing.B) {
				im := harness.NewImpl(lang, core.ConfigAll, w)
				defer im.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					im.Randmat(p)
				}
			})
		}
	}
}

// BenchmarkTable4 measures the chain per paradigm at 1 and 2 workers
// (paper: Table 4 reports per-thread-count times).
func BenchmarkTable4(b *testing.B) {
	p := cowichan.BenchParams()
	for _, lang := range harness.CowLangs {
		for _, w := range []int{1, 2} {
			lang, w := lang, w
			b.Run(lang+"/w="+string(rune('0'+w)), func(b *testing.B) {
				im := harness.NewImpl(lang, core.ConfigAll, w)
				defer im.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cowichan.Chain(im, p)
				}
			})
		}
	}
}

// BenchmarkTable5 runs each coordination benchmark under each paradigm
// (paper: Table 5).
func BenchmarkTable5(b *testing.B) {
	p := concbench.BenchParams()
	for _, bench := range concbench.Names {
		for _, lang := range concbench.Langs {
			bench, lang := bench, lang
			b.Run(bench+"/"+lang, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := concbench.Run(bench, lang, core.ConfigAll, p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig20 is the threadring benchmark across paradigms — the
// pure hand-off cost comparison highlighted in the paper's Fig. 20.
func BenchmarkFig20(b *testing.B) {
	p := concbench.BenchParams()
	for _, lang := range concbench.Langs {
		lang := lang
		b.Run(lang, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := concbench.Run("threadring", lang, core.ConfigAll, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecutorThreadring10k compares dedicated-goroutine and
// pooled (M:N executor) handler execution on a threadring with 10k
// handlers — far more handlers than cores, the regime the executor
// exists for. Each iteration builds the ring, passes the token NT
// times, and tears the runtime down.
func BenchmarkExecutorThreadring10k(b *testing.B) {
	p := concbench.Params{N: 1, M: 1, NT: 20000, NC: 1, Ring: 10000, Creatures: 4}
	modes := []struct {
		name    string
		workers int
	}{
		{"dedicated", 0},
		{"pooled", runtime.GOMAXPROCS(0)},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			cfg := core.ConfigAll.WithWorkers(m.workers)
			for i := 0; i < b.N; i++ {
				if err := concbench.Run("threadring", "Qs", cfg, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSessionCall measures the request hot path — Session.Call
// logging plus handler execution — with allocation accounting. One
// separate block logs a batch of trivial calls and syncs; steady-state
// allocs/op is the per-request heap cost of the private-queue path
// (node recycling, call packaging, scheduler wakes).
func BenchmarkSessionCall(b *testing.B) {
	for _, m := range []struct {
		name    string
		workers int
	}{{"dedicated", 0}, {"pooled4", 4}} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			rt := core.New(core.ConfigAll.WithWorkers(m.workers))
			defer rt.Shutdown()
			h := rt.NewHandler("sink")
			c := rt.NewClient()
			var n int
			fn := func() { n++ } // hoisted: measure the runtime's cost, not the caller's closure
			b.ReportAllocs()
			b.ResetTimer()
			c.Separate(h, func(s *core.Session) {
				const batch = 256
				for i := 0; i < b.N; i += batch {
					k := batch
					if rem := b.N - i; rem < k {
						k = rem
					}
					for j := 0; j < k; j++ {
						s.Call(fn)
					}
					s.SyncNow()
				}
			})
			if n != b.N {
				b.Fatalf("ran %d calls, want %d", n, b.N)
			}
		})
	}
}

// BenchmarkReserve measures the reservation hot path — entering and
// ending an empty separate block — with allocation accounting. Each
// iteration enqueues the client's private queue into the handler's
// queue-of-queues and logs END; steady-state allocs/op is the heap
// cost of a reservation, which the MPSC node recycling brings to zero
// (one node used to be allocated per enqueue). A periodic sync keeps
// the handler from falling arbitrarily far behind the reserving
// client, which would grow the backlog — and allocate — without bound.
func BenchmarkReserve(b *testing.B) {
	for _, m := range []struct {
		name    string
		workers int
	}{{"dedicated", 0}, {"pooled4", 4}} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			rt := core.New(core.ConfigAll.WithWorkers(m.workers))
			defer rt.Shutdown()
			h := rt.NewHandler("sink")
			c := rt.NewClient()
			empty := func(s *core.Session) {}
			synced := func(s *core.Session) { s.SyncNow() }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%256 == 255 {
					c.Separate(h, synced)
					continue
				}
				c.Separate(h, empty)
			}
		})
	}
}

// BenchmarkFig14SyncCoalescing measures the paper's Fig. 14 copy loop
// executed by the IR interpreter before and after the static
// sync-coalescing pass — the per-experiment ablation of the compiler
// optimization itself.
func BenchmarkFig14SyncCoalescing(b *testing.B) {
	const src = `func copyloop(n) handlers(h) arrays(x) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`
	naive, err := ir.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	res, err := passes.Coalesce(naive)
	if err != nil {
		b.Fatal(err)
	}
	const n = 512
	run := func(b *testing.B, f *ir.Func) {
		rt := core.New(core.ConfigStatic)
		defer rt.Shutdown()
		h := rt.NewHandler("h")
		c := rt.NewClient()
		data := make([]int64, n)
		for i := range data {
			data[i] = int64(i)
		}
		out := make([]int64, n)
		env := &interp.Env{
			Ints:   map[string]int64{"n": n},
			Arrays: map[string][]int64{"x": out},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Separate(h, func(s *core.Session) {
				env.Handlers = map[string]interp.SessionOps{
					"h": interp.HandlerBinding{Session: s, Methods: map[string]func([]int64) int64{
						"get": func(a []int64) int64 { return data[a[0]] },
					}},
				}
				if _, err := interp.Run(f, env); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
	b.Run("naive", func(b *testing.B) { run(b, naive) })
	b.Run("coalesced", func(b *testing.B) { run(b, res.Func) })
}
