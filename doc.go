// Package scoopqs is a Go implementation of SCOOP/Qs, the efficient
// execution model for the SCOOP object-oriented concurrency model
// described in West, Nanz and Meyer, "Efficient and Reasonable
// Object-Oriented Concurrency" (PPoPP 2015).
//
// SCOOP associates every object with a handler — a thread of execution
// that is the only one allowed to touch the object. Clients interact
// with a handler inside separate blocks, which guarantee that the calls
// logged by one client execute in order with no interleaving from other
// clients, enabling sequential pre-/postcondition reasoning across
// threads while excluding data races by construction.
//
// SCOOP/Qs implements this with a queue of queues: each client gets a
// private queue per handler, reserved by a single non-blocking enqueue,
// so clients never wait to log asynchronous calls. Synchronous queries
// execute on the client after a lightweight sync handshake, and
// redundant handshakes are elided dynamically (and, for code compiled
// through the included IR pass, statically).
//
// # Execution modes
//
// Config.Workers selects how handlers execute. With Workers == 0 (the
// default, and the paper's design) every handler owns a goroutine that
// blocks on its queue-of-queues. With Workers == N > 0 the runtime
// starts an M:N executor: a pool of N workers drains a shared ready
// queue of handlers, and a handler occupies a goroutine only while it
// has requests to run. Enqueueing onto an idle handler's queue
// schedules it instead of unparking a dedicated consumer, so millions
// of mostly-idle handlers cost memory for their queues and nothing
// else. Semantics are identical in both modes; all tests run under
// both.
//
// Two details make pooled execution safe. A handler draining a private
// queue that runs dry mid-block parks without abandoning the block
// (the session stays pinned, preserving the paper's run rule and the
// §3.2 post-sync handshake: the handler first spins briefly on its
// worker, staying at the client's disposal). And handler code that
// blocks its worker outright — a synchronous query to another handler,
// a wait condition — notifies the pool, which spawns a replacement
// worker, so delegation chains deeper than the pool cannot deadlock
// it. Stats exposes the executor counters (Schedules, HandlerParks,
// WorkerSpawns, WorkerParks, Steals, InjectorPushes, LocalPushes);
// `go run ./cmd/qsbench -experiment executor` compares the two modes
// on a 10k-handler token ring.
//
// The pool itself is a work-stealing scheduler. Every worker owns a
// bounded lock-free deque (Chase–Lev: LIFO for the owner, FIFO for
// thieves) plus a one-slot next buffer; a handler that wakes another
// handler from worker code pushes it there, so a message chain stays
// on one warm worker and a lone handoff needs no wake at all (a
// blocking caller's local work is republished through the shared
// injector queue by the compensation hook instead). External wakes,
// deque overflow, and fairness-budget requeues go through the
// injector, which is FIFO; a handler that exhausts its per-step
// continuation budget re-readies there — never onto its own LIFO — so
// saturated handlers round-robin with everything else, and workers
// poll the injector periodically even while their own deque is hot.
// Ordering across queues is deliberately unpromised: per-handler
// ordering comes from the wake protocol (a handler is scheduled at
// most once until it runs), per-session FIFO from the private queues.
// See the README's "Scheduler" section for the ordering and wake-path
// details, and `qsbench -experiment steal` for the measured sweep.
//
// The pool also carries fork-join work: internal/sched exposes a
// TaskGroup (Spawn/Wait) and TBB-style skeletons (ParallelFor,
// ParallelReduce, ParallelSort) whose one-shot tasks ride the same
// deques as the handler steps — a spawn from worker code takes the
// owner's local fast path, idle workers steal it like any handler
// wake, so data-parallel kernels and message-passing handlers share
// one scheduler (Runtime.Executor exposes the pool; nil in dedicated
// mode). A spawner's own tasks run newest-first while thieves take
// its oldest — depth-first execution with breadth-first stealing —
// and handler fairness needs nothing new, since tasks are finite
// units under the same budget/steal machinery. Wait helps before it
// parks: it runs fork-join tasks found in its own queues, the
// injector, or victims' deques (handler runnables it uncovers are
// republished through the injector, never executed mid-join), making
// joins deadlock-free on a one-worker pool; an exhausted waiter parks
// inside a BlockingBegin/End bracket, so the compensation machinery
// treats a task join like any other blocking section — which is why
// Wait is legal inside a handler step. Task panics re-raise at the
// join. Stats adds TasksSpawned, TaskSteals, and TaskWaitParks; `go
// run ./cmd/qsbench -experiment cowichan` sweeps the Cowichan suite
// (every paradigm, including the fork-join "cxx" stand-in and the
// pooled Qs runtime) on the unified scheduler.
//
// Compensation is a last resort, though: the futures subsystem lets
// handler code wait without blocking at all. Session.CallFuture (and
// the typed QueryAsync) log a query whose result resolves a Future
// instead of round-tripping, and Handler.Await parks the handler state
// machine in a dedicated awaiting state: the handler is logically
// still inside the request that armed the await — queue wakes do not
// reschedule it, and no further request of the session runs — but its
// worker goes back to the pool. The future's completion makes the
// handler ready again and the continuation runs first, so the run
// rule's ordering is preserved while a depth-k delegation chain costs
// k state-machine parks instead of k compensation goroutines. Stats
// counts FuturesCreated and AwaitParks; `go run ./cmd/qsbench
// -experiment futures` measures the effect (and the remote layer's
// query pipelining, which rides the same mechanism).
//
// The remote layer (internal/remote) extends the private-queue model
// over sockets with a multiplexed binary transport: one connection
// carries many logical clients (a Mux hands out RemoteSessions, each a
// wire channel), frames are a fixed-header/varint codec with zero
// allocations per message, and each connection is served by exactly
// one reader and one batching writer goroutine at both ends — the
// server demultiplexes every channel onto real core.Sessions through
// the non-blocking futures path. The write path is credit-flow
// controlled, so request logging is bounded as well as non-blocking:
// each channel holds a server-advertised request window, the shared
// writer caps its pending batch at a byte budget, and a stalled peer
// therefore pins bounded memory instead of an ever-growing batch. The
// client-side cost is that the request-logging operations of a
// RemoteSession — Call, QueryAsync, Query, Sync (and any frame send at
// the byte budget) — can now park the calling goroutine until the
// window or the batch drains; they must not be called from a
// Future.OnComplete callback. `qsbench -experiment remote` sweeps
// logical clients over one connection against connection-per-client
// shapes, and `qsbench -experiment flow` measures the stalled-peer
// bounds; see the README's "Remote" and "Flow control" sections for
// the wire layout, flush policy, and window mechanics.
//
// All three layers are observable (internal/obs): scheduler dispatch
// waits, worker parks, steals, and task spawn/join; handler state
// transitions, await-park durations, and call/query/sync end-to-end
// latencies; remote flush sizes, writer stalls, credit waits, and
// per-channel round-trips. Events land in per-worker lock-free ring
// buffers exportable as Chrome trace_event JSON (Perfetto-loadable;
// every qsbench run takes -trace), durations additionally feed
// sharded power-of-two-bucket histograms in a process-global named
// registry (p50/p90/p99/max on the bench rows). Recording is off by
// default behind one process-global flag, and the disabled contract
// is strict: each instrumented site pays a single predictable branch
// — no atomics on the data path, no allocation, nothing recorded.
// `go run ./cmd/qsbench -experiment obs` measures that contract and
// enforces it against the pre-instrumentation baseline (3% budget);
// see the README's "Observability" section for the event kinds and
// histogram semantics.
//
// The compiler stack (internal/compiler) closes the loop to the
// paper's static side: its interpreter executes IR programs against a
// narrow SessionOps interface satisfied by both local sessions
// (dedicated or pooled) and remote sessions over the mux transport,
// so the §3.4.2 sync-coalescing pass is measured where it matters —
// on the wire, every statically eliminated sync is an eliminated
// round-trip (the Fig. 14 copy loop drops from 2N+2 to N+1), and a
// local query against an unsynced session panics on every backend,
// catching unsound elision at execution time. `go run ./cmd/qsbench
// -experiment compile` asserts exact outcome equality across all
// backends and the round-trip reduction; see the README's "Compiler &
// sync elimination" section.
//
// # Quick start
//
//	rt := scoopqs.New(scoopqs.ConfigAll)
//	defer rt.Shutdown()
//
//	counter := rt.NewHandler("counter") // owns n
//	n := 0
//
//	c := rt.NewClient()
//	c.Separate(counter, func(s *scoopqs.Session) {
//		s.Call(func() { n++ })                          // asynchronous
//		v := scoopqs.Query(s, func() int { return n })  // synchronous
//		fmt.Println(v)                                  // 1
//	})
//
// See the examples directory for multi-handler reservations, wait
// conditions, and the paper's benchmark programs.
package scoopqs

import (
	"scoopqs/internal/core"
	"scoopqs/internal/future"
)

// Re-exported core types. The implementation lives in internal/core;
// these aliases form the supported public API.
type (
	// Runtime owns a set of handlers and a configuration.
	Runtime = core.Runtime
	// Handler is an active object executing logged requests in order.
	Handler = core.Handler
	// Session is the private queue a client holds inside a separate block.
	Session = core.Session
	// Client is a goroutine's context for entering separate blocks.
	Client = core.Client
	// Config selects one of the paper's runtime variants.
	Config = core.Config
	// Stats is a snapshot of runtime instrumentation counters.
	Stats = core.Stats
	// HandlerError reports a panic that occurred in a handler call.
	HandlerError = core.HandlerError
	// Future is the completion cell resolved by asynchronous queries
	// (Session.CallFuture, QueryAsync, the remote client's pipelined
	// queries). See internal/future for combinators (All, Any, Then).
	Future = future.Future
	// DeadlockCycle is a cycle in the wait-for graph found by
	// Runtime.DetectDeadlock (queries can deadlock, §2.5; reservations
	// cannot).
	DeadlockCycle = core.DeadlockCycle
)

// FormatDeadlocks renders Runtime.DetectDeadlock results for logs.
func FormatDeadlocks(cs []DeadlockCycle) string { return core.FormatDeadlocks(cs) }

// ErrShutdown is the panic value raised when a client enters a
// separate block after Runtime.Shutdown.
var ErrShutdown = core.ErrShutdown

// The five configurations evaluated in the paper's §4.
var (
	ConfigNone    = core.ConfigNone    // lock-based, packaged queries
	ConfigDynamic = core.ConfigDynamic // + dynamic sync coalescing
	ConfigStatic  = core.ConfigStatic  // + static sync coalescing
	ConfigQoQ     = core.ConfigQoQ     // queue-of-queues only
	ConfigAll     = core.ConfigAll     // everything (the SCOOP/Qs runtime)
)

// New creates a runtime with the given configuration.
func New(cfg Config) *Runtime { return core.New(cfg) }

// Query executes a synchronous query on a session and returns its
// result, using the configuration's query strategy.
func Query[T any](s *Session, f func() T) T { return core.Query(s, f) }

// QueryRemote forces the packaged-call query path (the unoptimized
// rule): the closure executes on the handler.
func QueryRemote[T any](s *Session, f func() T) T { return core.QueryRemote(s, f) }

// QueryAsync logs f as an asynchronous query: it returns immediately
// with a future that resolves with f's result once the handler reaches
// it, observing every previously logged call of the block. Wait with
// Client.Await (shutdown-aware), Handler.Await (parks the handler
// state machine instead of a pool worker), or the Future itself. For a
// typed view that spares the caller the any-assertions, wrap the result
// (or use QueryAsyncTyped): future.Of[T] gives Get() (T, error), Then,
// and Map.
func QueryAsync[T any](s *Session, f func() T) *Future { return core.QueryAsync(s, f) }

// TypedFuture is the typed veneer over Future: Get() (T, error),
// TryGet, Then, and future.Map for type-changing transforms. Build one
// with future.Of[T] or QueryAsyncTyped.
type TypedFuture[T any] = future.Typed[T]

// QueryAsyncTyped is QueryAsync returning the typed veneer directly:
//
//	fut := scoopqs.QueryAsyncTyped(s, func() int { return n })
//	n, err := fut.Get()
func QueryAsyncTyped[T any](s *Session, f func() T) TypedFuture[T] {
	return future.Of[T](core.QueryAsync(s, f))
}

// NewFuture returns an unresolved completion cell, for code that
// produces a value asynchronously itself (e.g. a Handler.Await
// continuation completing a promise it returned earlier).
func NewFuture() *Future { return future.New() }

// LocalQuery executes f on the client with no synchronization; legal
// only when the handler is synced on this session (after Sync/SyncNow
// with no intervening asynchronous call). The static sync-coalescing
// pass emits this pairing.
func LocalQuery[T any](s *Session, f func() T) T { return core.LocalQuery(s, f) }
