package ir

import (
	"strings"
	"testing"
)

const roundTripSrc = `func demo(n, p) handlers(h, i) arrays(x) noalias(h, i) attr(helper, readonly) {
entry:
  k = const 0
  jmp loop
loop:
  c = lt k, n
  br c, body, exit
body:
  sync h
  v = qlocal h get(k)
  store x, k, v
  w = load x, k
  async i put(k, w)
  r = call helper(w)
  k = add k, 1
  jmp loop
exit:
  ret k
}
`

func TestParseRoundTrip(t *testing.T) {
	f, err := Parse(roundTripSrc)
	if err != nil {
		t.Fatal(err)
	}
	printed := f.String()
	g, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse of printed form failed: %v\n%s", err, printed)
	}
	if g.String() != printed {
		t.Fatalf("print/parse not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, g.String())
	}
}

func TestParseHeader(t *testing.T) {
	f, err := Parse(roundTripSrc)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "demo" {
		t.Errorf("name = %q", f.Name)
	}
	if len(f.Params) != 2 || f.Params[0] != "n" || f.Params[1] != "p" {
		t.Errorf("params = %v", f.Params)
	}
	if len(f.Handlers) != 2 || f.Handlers[0] != "h" || f.Handlers[1] != "i" {
		t.Errorf("handlers = %v", f.Handlers)
	}
	if len(f.Arrays) != 1 || f.Arrays[0] != "x" {
		t.Errorf("arrays = %v", f.Arrays)
	}
	if f.MayAlias("h", "i") {
		t.Error("noalias(h, i) not honoured")
	}
	if !f.MayAlias("h", "h") {
		t.Error("a variable must alias itself")
	}
	if f.Attrs["helper"] != AttrReadOnly {
		t.Errorf("attr(helper) = %v", f.Attrs["helper"])
	}
}

func TestParseDefaultsToMayAlias(t *testing.T) {
	f, err := Parse("func f() handlers(a, b) arrays() {\nentry:\n  ret\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if !f.MayAlias("a", "b") {
		t.Error("handlers must may-alias by default (Fig. 15)")
	}
}

func TestCFGEdges(t *testing.T) {
	f, err := Parse(roundTripSrc)
	if err != nil {
		t.Fatal(err)
	}
	loop := f.Block("loop")
	if len(loop.Preds) != 2 { // entry and body
		t.Errorf("loop preds = %d, want 2", len(loop.Preds))
	}
	body := f.Block("body")
	if len(body.Succs) != 1 || body.Succs[0] != loop {
		t.Errorf("body succs wrong")
	}
	exit := f.Block("exit")
	if len(exit.Succs) != 0 {
		t.Errorf("exit should have no successors")
	}
}

func TestValidateCatchesUnknownBlock(t *testing.T) {
	_, err := Parse("func f() handlers() arrays() {\nentry:\n  jmp nowhere\n}\n")
	if err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("expected unknown-block error, got %v", err)
	}
}

func TestValidateCatchesUndeclaredHandler(t *testing.T) {
	_, err := Parse("func f() handlers() arrays() {\nentry:\n  sync h\n  ret\n}\n")
	if err == nil || !strings.Contains(err.Error(), "undeclared handler") {
		t.Fatalf("expected undeclared-handler error, got %v", err)
	}
}

func TestValidateCatchesDuplicateBlocks(t *testing.T) {
	_, err := Parse("func f() handlers() arrays() {\na:\n  ret\na:\n  ret\n}\n")
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("expected duplicate-block error, got %v", err)
	}
}

func TestParseErrorsOnGarbage(t *testing.T) {
	cases := []string{
		"",
		"func {",
		"func f() handlers() arrays() {\nentry:\n  frobnicate x\n  ret\n}\n",
		"func f() handlers() arrays() {\nentry:\n  br x, only_two\n  ret\n}\n",
		"func f() handlers() arrays() {\nentry:\n  ret\n", // missing }
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	f, err := Parse(roundTripSrc)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Clone()
	g.Blocks[2].Instrs = g.Blocks[2].Instrs[:0]
	g.DeclareNoAlias("x", "y")
	if len(f.Block("body").Instrs) == 0 {
		t.Error("mutating clone changed original blocks")
	}
	if f.NoAlias[[2]string{"x", "y"}] {
		t.Error("mutating clone changed original alias info")
	}
}

func TestBinEval(t *testing.T) {
	cases := []struct {
		b       Bin
		x, y, w int64
	}{
		{BinAdd, 2, 3, 5}, {BinSub, 2, 3, -1}, {BinMul, 4, 3, 12},
		{BinDiv, 7, 2, 3}, {BinMod, 7, 2, 1}, {BinLt, 1, 2, 1},
		{BinLt, 2, 2, 0}, {BinLe, 2, 2, 1}, {BinEq, 5, 5, 1},
		{BinNe, 5, 5, 0}, {BinAnd, 1, 0, 0}, {BinOr, 1, 0, 1},
	}
	for _, c := range cases {
		if got := c.b.Eval(c.x, c.y); got != c.w {
			t.Errorf("%s(%d,%d) = %d, want %d", c.b, c.x, c.y, got, c.w)
		}
	}
}
