package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a function in the textual IR format produced by
// Func.String:
//
//	func name(p1, p2) handlers(h, i) arrays(x) noalias(h, i) attr(f, readonly) {
//	entry:
//	  n = const 10
//	  v = qlocal h get(n)
//	  async h set(1, v)
//	  sync h
//	  c = lt v, n
//	  store x, n, v
//	  w = load x, n
//	  call log(w)
//	  br c, entry, done
//	done:
//	  ret v
//	}
//
// Lines starting with ';' or '#' are comments.
func Parse(src string) (*Func, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	f, err := p.parseFunc()
	if err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

type parser struct {
	lines []string
	pos   int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		p.pos++
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "#") {
			continue
		}
		return line, true
	}
	return "", false
}

func splitList(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, x := range parts {
		if t := strings.TrimSpace(x); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// clause extracts "kw( ... )" occurrences from the header.
func clauses(header, kw string) []string {
	var out []string
	rest := header
	for {
		i := strings.Index(rest, kw+"(")
		if i < 0 {
			return out
		}
		j := strings.Index(rest[i:], ")")
		if j < 0 {
			return out
		}
		out = append(out, rest[i+len(kw)+1:i+j])
		rest = rest[i+j:]
	}
}

func (p *parser) parseFunc() (*Func, error) {
	header, ok := p.next()
	if !ok {
		return nil, p.errf("empty input")
	}
	if !strings.HasPrefix(header, "func ") || !strings.HasSuffix(header, "{") {
		return nil, p.errf("expected 'func name(...) ... {', got %q", header)
	}
	nameEnd := strings.Index(header, "(")
	if nameEnd < 0 {
		return nil, p.errf("missing parameter list")
	}
	f := NewFunc(strings.TrimSpace(header[len("func "):nameEnd]))
	if f.Name == "" {
		return nil, p.errf("missing function name")
	}
	paramEnd := strings.Index(header, ")")
	f.Params = splitList(header[nameEnd+1 : paramEnd])
	tail := header[paramEnd+1:]
	if hs := clauses(tail, "handlers"); len(hs) > 0 {
		f.Handlers = splitList(hs[0])
	}
	if as := clauses(tail, "arrays"); len(as) > 0 {
		f.Arrays = splitList(as[0])
	}
	for _, na := range clauses(tail, "noalias") {
		vars := splitList(na)
		if len(vars) != 2 {
			return nil, p.errf("noalias wants exactly 2 names, got %v", vars)
		}
		f.DeclareNoAlias(vars[0], vars[1])
	}
	for _, at := range clauses(tail, "attr") {
		vars := splitList(at)
		if len(vars) != 2 {
			return nil, p.errf("attr wants (name, readonly|readnone|opaque)")
		}
		switch vars[1] {
		case "readonly":
			f.Attrs[vars[0]] = AttrReadOnly
		case "readnone":
			f.Attrs[vars[0]] = AttrReadNone
		case "opaque":
			f.Attrs[vars[0]] = AttrOpaque
		default:
			return nil, p.errf("unknown attribute %q", vars[1])
		}
	}

	var cur *Block
	for {
		line, ok := p.next()
		if !ok {
			return nil, p.errf("missing closing '}'")
		}
		if line == "}" {
			break
		}
		if strings.HasSuffix(line, ":") {
			cur = &Block{Name: strings.TrimSuffix(line, ":")}
			f.Blocks = append(f.Blocks, cur)
			continue
		}
		if cur == nil {
			return nil, p.errf("instruction before first block label")
		}
		if err := p.parseLine(cur, line); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (p *parser) arg(s string) (Arg, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Arg{}, p.errf("empty operand")
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return ConstArg(v), nil
	}
	return VarArg(s), nil
}

func (p *parser) args(list string) ([]Arg, error) {
	var out []Arg
	for _, s := range splitList(list) {
		a, err := p.arg(s)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// parseCallLike parses "h fn(a, b)" or "fn(a, b)".
func (p *parser) parseCallLike(s string, withHandler bool) (handler, fn string, args []Arg, err error) {
	open := strings.Index(s, "(")
	closeP := strings.LastIndex(s, ")")
	if open < 0 || closeP < open {
		return "", "", nil, p.errf("malformed call %q", s)
	}
	head := strings.Fields(strings.TrimSpace(s[:open]))
	if withHandler {
		if len(head) != 2 {
			return "", "", nil, p.errf("expected 'handler fn(args)' in %q", s)
		}
		handler, fn = head[0], head[1]
	} else {
		if len(head) != 1 {
			return "", "", nil, p.errf("expected 'fn(args)' in %q", s)
		}
		fn = head[0]
	}
	args, err = p.args(s[open+1 : closeP])
	return handler, fn, args, err
}

func (p *parser) parseLine(b *Block, line string) error {
	// Terminators.
	switch {
	case strings.HasPrefix(line, "jmp "):
		b.Term = Term{Kind: TermJmp, To: strings.TrimSpace(line[4:])}
		return nil
	case strings.HasPrefix(line, "br "):
		parts := splitList(line[3:])
		if len(parts) != 3 {
			return p.errf("br wants cond, then, else")
		}
		cond, err := p.arg(parts[0])
		if err != nil {
			return err
		}
		b.Term = Term{Kind: TermBr, Cond: cond, To: parts[1], Else: parts[2]}
		return nil
	case line == "ret":
		b.Term = Term{Kind: TermRet}
		return nil
	case strings.HasPrefix(line, "ret "):
		v, err := p.arg(line[4:])
		if err != nil {
			return err
		}
		b.Term = Term{Kind: TermRet, Val: v, HasVal: true}
		return nil
	}

	// Instructions without a destination.
	switch {
	case strings.HasPrefix(line, "sync "):
		b.Instrs = append(b.Instrs, Instr{Op: OpSync, Handler: strings.TrimSpace(line[5:])})
		return nil
	case strings.HasPrefix(line, "async "):
		h, fn, args, err := p.parseCallLike(line[6:], true)
		if err != nil {
			return err
		}
		b.Instrs = append(b.Instrs, Instr{Op: OpAsync, Handler: h, Fn: fn, Args: args})
		return nil
	case strings.HasPrefix(line, "call "):
		_, fn, args, err := p.parseCallLike(line[5:], false)
		if err != nil {
			return err
		}
		b.Instrs = append(b.Instrs, Instr{Op: OpCall, Fn: fn, Args: args})
		return nil
	case strings.HasPrefix(line, "store "):
		parts := splitList(line[6:])
		if len(parts) != 3 {
			return p.errf("store wants arr, idx, val")
		}
		idx, err := p.arg(parts[1])
		if err != nil {
			return err
		}
		val, err := p.arg(parts[2])
		if err != nil {
			return err
		}
		b.Instrs = append(b.Instrs, Instr{Op: OpStore, Arr: parts[0], A: idx, B: val})
		return nil
	}

	// "dst = ..." forms.
	eq := strings.Index(line, "=")
	if eq < 0 {
		return p.errf("unrecognized instruction %q", line)
	}
	dst := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	switch {
	case strings.HasPrefix(rhs, "const "):
		v, err := strconv.ParseInt(strings.TrimSpace(rhs[6:]), 10, 64)
		if err != nil {
			return p.errf("bad const: %v", err)
		}
		b.Instrs = append(b.Instrs, Instr{Op: OpConst, Dst: dst, Imm: v})
		return nil
	case strings.HasPrefix(rhs, "qlocal "):
		h, fn, args, err := p.parseCallLike(rhs[7:], true)
		if err != nil {
			return err
		}
		b.Instrs = append(b.Instrs, Instr{Op: OpQLocal, Dst: dst, Handler: h, Fn: fn, Args: args})
		return nil
	case strings.HasPrefix(rhs, "call "):
		_, fn, args, err := p.parseCallLike(rhs[5:], false)
		if err != nil {
			return err
		}
		b.Instrs = append(b.Instrs, Instr{Op: OpCall, Dst: dst, Fn: fn, Args: args})
		return nil
	case strings.HasPrefix(rhs, "load "):
		parts := splitList(rhs[5:])
		if len(parts) != 2 {
			return p.errf("load wants arr, idx")
		}
		idx, err := p.arg(parts[1])
		if err != nil {
			return err
		}
		b.Instrs = append(b.Instrs, Instr{Op: OpLoad, Dst: dst, Arr: parts[0], A: idx})
		return nil
	}
	// Binary op: "dst = op a, b".
	fields := strings.SplitN(rhs, " ", 2)
	if len(fields) == 2 {
		if bin, ok := BinFromName(fields[0]); ok {
			parts := splitList(fields[1])
			if len(parts) != 2 {
				return p.errf("%s wants two operands", fields[0])
			}
			a, err := p.arg(parts[0])
			if err != nil {
				return err
			}
			c, err := p.arg(parts[1])
			if err != nil {
				return err
			}
			b.Instrs = append(b.Instrs, Instr{Op: OpBin, Dst: dst, Bin: bin, A: a, B: c})
			return nil
		}
	}
	return p.errf("unrecognized instruction %q", line)
}
