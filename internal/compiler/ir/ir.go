// Package ir defines the small intermediate representation the static
// sync-coalescing pass (paper §3.4.2) operates on. It stands in for
// LLVM bitcode: functions of basic blocks over integer locals,
// client-local arrays, and handler variables, with the four operations
// the analysis cares about — sync, asynchronous calls, local handler
// reads, and opaque/attributed calls.
//
// The IR is deliberately not SSA: locals are mutable names. The
// analysis tracks only handler synchronization state, which locals do
// not affect.
package ir

import (
	"fmt"
	"strings"
)

// Op enumerates instruction opcodes.
type Op uint8

const (
	// OpConst: Dst = Imm.
	OpConst Op = iota
	// OpBin: Dst = A <Bin> B.
	OpBin
	// OpSync: synchronize with Handler ("h_p.sync()"). After it, the
	// handler is parked on this client's private queue.
	OpSync
	// OpAsync: log the asynchronous call Fn(Args...) on Handler
	// ("h_p.enqueue(...)"). Desynchronizes the handler and anything it
	// may alias.
	OpAsync
	// OpQLocal: Dst = Fn(Args...) evaluated directly against Handler's
	// state on the client. Legal only when the handler is synced; the
	// naive code generator always emits OpSync immediately before it.
	OpQLocal
	// OpCall: invoke the client-local function Fn(Args...), optionally
	// into Dst. Unless Fn carries a readonly/readnone attribute the
	// call may log asynchronous calls on any handler, so it clears the
	// sync-set.
	OpCall
	// OpLoad: Dst = Arr[A] (client-local array).
	OpLoad
	// OpStore: Arr[A] = B (client-local array).
	OpStore
)

// Bin enumerates binary operators for OpBin.
type Bin uint8

const (
	BinAdd Bin = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinLt
	BinLe
	BinEq
	BinNe
	BinAnd
	BinOr
)

var binNames = map[Bin]string{
	BinAdd: "add", BinSub: "sub", BinMul: "mul", BinDiv: "div",
	BinMod: "mod", BinLt: "lt", BinLe: "le", BinEq: "eq", BinNe: "ne",
	BinAnd: "and", BinOr: "or",
}

// BinFromName maps a textual operator to a Bin; ok is false if unknown.
func BinFromName(s string) (Bin, bool) {
	for b, n := range binNames {
		if n == s {
			return b, true
		}
	}
	return 0, false
}

// Eval applies the operator.
func (b Bin) Eval(x, y int64) int64 {
	switch b {
	case BinAdd:
		return x + y
	case BinSub:
		return x - y
	case BinMul:
		return x * y
	case BinDiv:
		return x / y
	case BinMod:
		return x % y
	case BinLt:
		return b2i(x < y)
	case BinLe:
		return b2i(x <= y)
	case BinEq:
		return b2i(x == y)
	case BinNe:
		return b2i(x != y)
	case BinAnd:
		return b2i(x != 0 && y != 0)
	case BinOr:
		return b2i(x != 0 || y != 0)
	}
	panic("ir: unknown Bin")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (b Bin) String() string { return binNames[b] }

// Arg is an instruction operand: either an integer literal or a local
// variable reference.
type Arg struct {
	IsConst bool
	Imm     int64
	Var     string
}

// ConstArg returns a literal operand.
func ConstArg(v int64) Arg { return Arg{IsConst: true, Imm: v} }

// VarArg returns a variable operand.
func VarArg(name string) Arg { return Arg{Var: name} }

func (a Arg) String() string {
	if a.IsConst {
		return fmt.Sprint(a.Imm)
	}
	return a.Var
}

// Instr is a single (non-terminator) instruction.
type Instr struct {
	Op      Op
	Dst     string // OpConst, OpBin, OpQLocal, OpLoad, OpCall (optional)
	Imm     int64  // OpConst
	Bin     Bin    // OpBin
	A, B    Arg    // OpBin, OpLoad (A=index), OpStore (A=index, B=value)
	Handler string // OpSync, OpAsync, OpQLocal
	Fn      string // OpAsync, OpQLocal, OpCall
	Args    []Arg  // OpAsync, OpQLocal, OpCall
	Arr     string // OpLoad, OpStore
}

func (in Instr) String() string {
	argList := func() string {
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = a.String()
		}
		return strings.Join(parts, ", ")
	}
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%s = const %d", in.Dst, in.Imm)
	case OpBin:
		return fmt.Sprintf("%s = %s %s, %s", in.Dst, in.Bin, in.A, in.B)
	case OpSync:
		return fmt.Sprintf("sync %s", in.Handler)
	case OpAsync:
		return fmt.Sprintf("async %s %s(%s)", in.Handler, in.Fn, argList())
	case OpQLocal:
		return fmt.Sprintf("%s = qlocal %s %s(%s)", in.Dst, in.Handler, in.Fn, argList())
	case OpCall:
		if in.Dst != "" {
			return fmt.Sprintf("%s = call %s(%s)", in.Dst, in.Fn, argList())
		}
		return fmt.Sprintf("call %s(%s)", in.Fn, argList())
	case OpLoad:
		return fmt.Sprintf("%s = load %s, %s", in.Dst, in.Arr, in.A)
	case OpStore:
		return fmt.Sprintf("store %s, %s, %s", in.Arr, in.A, in.B)
	}
	return "<invalid>"
}

// TermKind enumerates block terminators.
type TermKind uint8

const (
	// TermJmp: unconditional jump to To.
	TermJmp TermKind = iota
	// TermBr: if Cond != 0 jump To else Else.
	TermBr
	// TermRet: return Val (or 0 when absent).
	TermRet
)

// Term is a block terminator.
type Term struct {
	Kind     TermKind
	Cond     Arg
	To, Else string
	Val      Arg
	HasVal   bool
}

func (t Term) String() string {
	switch t.Kind {
	case TermJmp:
		return "jmp " + t.To
	case TermBr:
		return fmt.Sprintf("br %s, %s, %s", t.Cond, t.To, t.Else)
	case TermRet:
		if t.HasVal {
			return "ret " + t.Val.String()
		}
		return "ret"
	}
	return "<invalid>"
}

// Block is a basic block: a label, straight-line instructions, and a
// terminator.
type Block struct {
	Name   string
	Instrs []Instr
	Term   Term

	// Preds and Succs are filled in by Func.BuildCFG.
	Preds, Succs []*Block
}

// Attr is a function attribute for OpCall targets, mirroring LLVM's
// readonly/readnone flags (§3.4.2: calls with these flags do not clear
// the sync-set).
type Attr uint8

const (
	// AttrOpaque: the callee may issue asynchronous calls on any
	// handler; clears the sync-set. The default.
	AttrOpaque Attr = iota
	// AttrReadOnly: the callee reads memory but issues no calls.
	AttrReadOnly
	// AttrReadNone: the callee touches no memory.
	AttrReadNone
)

func (a Attr) String() string {
	switch a {
	case AttrReadOnly:
		return "readonly"
	case AttrReadNone:
		return "readnone"
	}
	return "opaque"
}

// Func is an IR function.
type Func struct {
	Name     string
	Params   []string // integer parameters
	Handlers []string // handler-variable parameters
	Arrays   []string // client-local array parameters
	// NoAlias records handler-variable pairs declared never to alias.
	// By default any two handler variables may alias (the conservative
	// assumption of Fig. 15).
	NoAlias map[[2]string]bool
	// Attrs records attributes of OpCall targets; absent means opaque.
	Attrs  map[string]Attr
	Blocks []*Block // Blocks[0] is the entry
}

// NewFunc returns an empty function with initialized maps.
func NewFunc(name string) *Func {
	return &Func{Name: name, NoAlias: map[[2]string]bool{}, Attrs: map[string]Attr{}}
}

// DeclareNoAlias records that a and b never refer to the same handler.
func (f *Func) DeclareNoAlias(a, b string) {
	f.NoAlias[[2]string{a, b}] = true
	f.NoAlias[[2]string{b, a}] = true
}

// MayAlias reports whether two handler variables may refer to the same
// handler. Identical names always alias; distinct names alias unless
// declared otherwise.
func (f *Func) MayAlias(a, b string) bool {
	if a == b {
		return true
	}
	return !f.NoAlias[[2]string{a, b}]
}

// Block returns the named block, or nil.
func (f *Func) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// BuildCFG recomputes predecessor/successor edges. It must be called
// after constructing or mutating blocks and before analysis.
func (f *Func) BuildCFG() error {
	for _, b := range f.Blocks {
		b.Preds, b.Succs = nil, nil
	}
	link := func(from *Block, to string) error {
		t := f.Block(to)
		if t == nil {
			return fmt.Errorf("ir: %s: branch to unknown block %q", from.Name, to)
		}
		from.Succs = append(from.Succs, t)
		t.Preds = append(t.Preds, from)
		return nil
	}
	for _, b := range f.Blocks {
		switch b.Term.Kind {
		case TermJmp:
			if err := link(b, b.Term.To); err != nil {
				return err
			}
		case TermBr:
			if err := link(b, b.Term.To); err != nil {
				return err
			}
			if err := link(b, b.Term.Else); err != nil {
				return err
			}
		case TermRet:
		default:
			return fmt.Errorf("ir: block %q has no terminator", b.Name)
		}
	}
	return nil
}

// Validate checks structural well-formedness: unique block names,
// known branch targets, declared handler variables, and non-empty
// entry.
func (f *Func) Validate() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: function %q has no blocks", f.Name)
	}
	seen := map[string]bool{}
	for _, b := range f.Blocks {
		if seen[b.Name] {
			return fmt.Errorf("ir: duplicate block %q", b.Name)
		}
		seen[b.Name] = true
	}
	handlers := map[string]bool{}
	for _, h := range f.Handlers {
		handlers[h] = true
	}
	arrays := map[string]bool{}
	for _, a := range f.Arrays {
		arrays[a] = true
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case OpSync, OpAsync, OpQLocal:
				if !handlers[in.Handler] {
					return fmt.Errorf("ir: %s: undeclared handler %q", b.Name, in.Handler)
				}
			case OpLoad, OpStore:
				if !arrays[in.Arr] {
					return fmt.Errorf("ir: %s: undeclared array %q", b.Name, in.Arr)
				}
			}
		}
	}
	return f.BuildCFG()
}

// Clone returns a deep copy of the function (blocks and instruction
// slices), so a transform can be compared against the original.
func (f *Func) Clone() *Func {
	g := NewFunc(f.Name)
	g.Params = append([]string(nil), f.Params...)
	g.Handlers = append([]string(nil), f.Handlers...)
	g.Arrays = append([]string(nil), f.Arrays...)
	for k, v := range f.NoAlias {
		g.NoAlias[k] = v
	}
	for k, v := range f.Attrs {
		g.Attrs[k] = v
	}
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name, Term: b.Term}
		nb.Instrs = make([]Instr, len(b.Instrs))
		for i, in := range b.Instrs {
			in.Args = append([]Arg(nil), in.Args...)
			nb.Instrs[i] = in
		}
		g.Blocks = append(g.Blocks, nb)
	}
	g.BuildCFG() //nolint:errcheck // clone of a valid func stays valid
	return g
}

// String renders the function in the textual IR format accepted by
// Parse.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%s) handlers(%s) arrays(%s)",
		f.Name, strings.Join(f.Params, ", "),
		strings.Join(f.Handlers, ", "), strings.Join(f.Arrays, ", "))
	for pair := range f.NoAlias {
		if pair[0] < pair[1] {
			fmt.Fprintf(&sb, " noalias(%s, %s)", pair[0], pair[1])
		}
	}
	// Deterministic attr order.
	for _, b := range []Attr{AttrReadOnly, AttrReadNone} {
		names := make([]string, 0, len(f.Attrs))
		for n, a := range f.Attrs {
			if a == b {
				names = append(names, n)
			}
		}
		sortStrings(names)
		for _, n := range names {
			fmt.Fprintf(&sb, " attr(%s, %s)", n, b)
		}
	}
	sb.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", blk.Name)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
		fmt.Fprintf(&sb, "  %s\n", blk.Term)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
