package passes

import (
	"testing"

	"scoopqs/internal/compiler/ir"
)

// fig14 is the paper's Fig. 14 example: a loop reading a handler-owned
// array, with the naive code generator's sync before every read. B1 is
// the loop header holding the first sync, B2 the body with the back
// edge, B3 the exit.
const fig14 = `func fig14(n) handlers(h) arrays(x) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`

// fig15 adds an asynchronous call on a second handler variable i_p
// inside the loop. Without aliasing information i_p may be the same
// handler as h, so no sync may be removed.
const fig15 = `func fig15(n) handlers(h, ip) arrays(x) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  async ip put(i, v)
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`

func parse(t *testing.T, src string) *ir.Func {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFig14LoopSyncsElided(t *testing.T) {
	f := parse(t, fig14)
	res, err := Coalesce(f)
	if err != nil {
		t.Fatal(err)
	}
	// The syncs in the loop body and exit are redundant; only B1's
	// initial sync survives.
	if got := CountSyncs(res.Func); got != 1 {
		t.Fatalf("syncs after pass = %d, want 1\n%s", got, res)
	}
	if len(res.Removed) != 2 {
		t.Fatalf("removed = %v, want body and B3 syncs", res.Removed)
	}
	// Sync-sets on the loop edges contain h (Fig. 14b).
	for _, name := range []string{"B2", "body", "B3"} {
		b := res.Func.Block(name)
		if !res.Sets.In[b]["h"] {
			t.Errorf("sync-set at entry of %s = %s, want {h}", name, res.Sets.In[b])
		}
	}
	if CountSyncs(f) != 3 {
		t.Error("Coalesce mutated its input")
	}
}

func TestFig15AliasingDefeatsElision(t *testing.T) {
	f := parse(t, fig15)
	res, err := Coalesce(f)
	if err != nil {
		t.Fatal(err)
	}
	// h and ip may alias: the async on ip kills h from the sync-set,
	// so the loop-body sync must stay, and so must B3's (the edge
	// B2->B3 can come from body's end where h is dead).
	if got := CountSyncs(res.Func); got != 3 {
		t.Fatalf("syncs after pass = %d, want 3 (no elision)\n%s", got, res)
	}
	body := res.Func.Block("body")
	if len(res.Sets.Out[body]) != 0 {
		t.Errorf("body out-set = %s, want {} (async on may-aliased ip)", res.Sets.Out[body])
	}
}

func TestFig15NoAliasRestoresElision(t *testing.T) {
	f := parse(t, fig15)
	f.DeclareNoAlias("h", "ip")
	res, err := Coalesce(f)
	if err != nil {
		t.Fatal(err)
	}
	// With alias information the async on ip no longer kills h
	// (Fig. 15b discussion): loop-body and exit syncs go away.
	if got := CountSyncs(res.Func); got != 1 {
		t.Fatalf("syncs after pass = %d, want 1\n%s", got, res)
	}
}

func TestOpaqueCallClearsSyncSet(t *testing.T) {
	src := `func f() handlers(h) arrays() {
entry:
  sync h
  call mystery()
  sync h
  ret
}
`
	res, err := Coalesce(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if got := CountSyncs(res.Func); got != 2 {
		t.Fatalf("syncs = %d, want 2: opaque call must clear the sync-set", got)
	}
}

func TestReadOnlyCallPreservesSyncSet(t *testing.T) {
	for _, attr := range []string{"readonly", "readnone"} {
		src := `func f() handlers(h) arrays() attr(mystery, ` + attr + `) {
entry:
  sync h
  call mystery()
  sync h
  ret
}
`
		res, err := Coalesce(parse(t, src))
		if err != nil {
			t.Fatal(err)
		}
		if got := CountSyncs(res.Func); got != 1 {
			t.Fatalf("%s: syncs = %d, want 1: attributed call must preserve the sync-set", attr, got)
		}
	}
}

func TestAsyncOnSameHandlerKillsElision(t *testing.T) {
	src := `func f() handlers(h) arrays() {
entry:
  sync h
  async h poke()
  sync h
  ret
}
`
	res, err := Coalesce(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if got := CountSyncs(res.Func); got != 2 {
		t.Fatalf("syncs = %d, want 2: async desynchronizes its own handler", got)
	}
}

func TestBranchJoinIntersects(t *testing.T) {
	// Only one branch syncs h: after the join h must not be considered
	// synced, so the final sync stays.
	src := `func f(c) handlers(h) arrays() {
entry:
  br c, yes, no
yes:
  sync h
  jmp join
no:
  jmp join
join:
  sync h
  ret
}
`
	res, err := Coalesce(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if got := CountSyncs(res.Func); got != 2 {
		t.Fatalf("syncs = %d, want 2: join of {h} and {} is {}", got)
	}
}

func TestBranchJoinBothSyncedElides(t *testing.T) {
	src := `func f(c) handlers(h) arrays() {
entry:
  br c, yes, no
yes:
  sync h
  jmp join
no:
  sync h
  jmp join
join:
  sync h
  ret
}
`
	res, err := Coalesce(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if got := CountSyncs(res.Func); got != 2 {
		t.Fatalf("syncs = %d, want 2: join of {h} and {h} is {h}, third sync elided", got)
	}
	if len(res.Removed) != 1 || res.Removed[0].Block != "join" {
		t.Fatalf("removed = %v", res.Removed)
	}
}

func TestConsecutiveSyncsCollapse(t *testing.T) {
	src := `func f() handlers(h) arrays() {
entry:
  sync h
  sync h
  sync h
  ret
}
`
	res, err := Coalesce(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if got := CountSyncs(res.Func); got != 1 {
		t.Fatalf("syncs = %d, want 1", got)
	}
}

func TestMultiHandlerIndependence(t *testing.T) {
	// Syncs on independent handlers don't elide each other, but a
	// repeat sync on either one does (handlers may alias — aliasing
	// only weakens async-kill, not sync membership, which is by name).
	src := `func f() handlers(a, b) arrays() {
entry:
  sync a
  sync b
  sync a
  sync b
  ret
}
`
	res, err := Coalesce(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if got := CountSyncs(res.Func); got != 2 {
		t.Fatalf("syncs = %d, want 2", got)
	}
}

func TestVarSetOps(t *testing.T) {
	a := NewVarSet("x", "y")
	b := NewVarSet("y", "z")
	got := a.Intersect(b)
	if !got.Equal(NewVarSet("y")) {
		t.Errorf("intersect = %s", got)
	}
	if a.Equal(b) {
		t.Error("distinct sets reported equal")
	}
	c := a.Clone()
	c["w"] = true
	if a["w"] {
		t.Error("Clone is shallow")
	}
	if got := NewVarSet("b", "a").String(); got != "{a, b}" {
		t.Errorf("String = %q", got)
	}
}

// Property: the pass never increases the number of syncs and the
// transformed function still validates, across a family of generated
// CFGs.
func TestCoalesceNeverAddsSyncs(t *testing.T) {
	srcs := []string{fig14, fig15, `func g(c, n) handlers(p, q) arrays(z) noalias(p, q) {
e:
  sync p
  br c, l, r
l:
  async q w(1)
  sync p
  jmp m
r:
  sync q
  jmp m
m:
  sync p
  sync q
  v = qlocal p rd(0)
  store z, 0, v
  ret v
}
`}
	for _, src := range srcs {
		f := parse(t, src)
		before := CountSyncs(f)
		res, err := Coalesce(f)
		if err != nil {
			t.Fatal(err)
		}
		after := CountSyncs(res.Func)
		if after > before {
			t.Errorf("pass increased syncs: %d -> %d", before, after)
		}
		if after+len(res.Removed) != before {
			t.Errorf("accounting broken: before=%d after=%d removed=%d", before, after, len(res.Removed))
		}
	}
}
