// Package passes implements the static sync-coalescing optimization of
// the paper's §3.4.2: a forward dataflow analysis over the control-flow
// graph that computes, for every program point, the set of handler
// variables known to be synchronized (the sync-set), and a transform
// that deletes sync instructions whose handler is already in the set.
//
// The analysis is the literal algorithm of the paper's Figs. 12 and 13:
// a worklist iteration whose per-block input is the intersection of the
// predecessors' output sync-sets, with a transfer function that adds
// the handler on sync, removes the handler and all of its may-aliases
// on an asynchronous call, clears the set on an opaque call, and leaves
// it unchanged for calls attributed readonly/readnone.
package passes

import (
	"fmt"
	"sort"
	"strings"

	"scoopqs/internal/compiler/ir"
)

// VarSet is a set of handler variable names.
type VarSet map[string]bool

// NewVarSet builds a set from names.
func NewVarSet(names ...string) VarSet {
	s := make(VarSet, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

// Clone copies the set.
func (s VarSet) Clone() VarSet {
	out := make(VarSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// Equal reports set equality.
func (s VarSet) Equal(o VarSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// Intersect returns s ∩ o.
func (s VarSet) Intersect(o VarSet) VarSet {
	out := VarSet{}
	for k := range s {
		if o[k] {
			out[k] = true
		}
	}
	return out
}

func (s VarSet) String() string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ", ") + "}"
}

// SyncSets holds the analysis result: for each block, the sync-set at
// entry (In) and at exit (Out).
type SyncSets struct {
	In, Out map[*ir.Block]VarSet
}

// UpdateSync is the block transfer function of Fig. 13: it walks the
// block's instructions, updating the set of synced handlers.
func UpdateSync(f *ir.Func, b *ir.Block, synced VarSet) VarSet {
	out := synced.Clone()
	for i := range b.Instrs {
		out = transfer(f, &b.Instrs[i], out)
	}
	return out
}

// transfer applies one instruction's effect on the sync-set.
func transfer(f *ir.Func, in *ir.Instr, synced VarSet) VarSet {
	switch in.Op {
	case ir.OpSync:
		out := synced.Clone()
		out[in.Handler] = true
		return out
	case ir.OpAsync:
		// Remove the target handler and anything it may be aliased to
		// (Fig. 15: handler variables are only variables; without
		// aliasing information they may name the same handler).
		out := VarSet{}
		for h := range synced {
			if !f.MayAlias(in.Handler, h) {
				out[h] = true
			}
		}
		return out
	case ir.OpCall:
		switch f.Attrs[in.Fn] {
		case ir.AttrReadOnly, ir.AttrReadNone:
			return synced // cannot issue asynchronous calls
		default:
			return VarSet{} // may affect every handler in the set
		}
	default:
		// OpConst, OpBin, OpQLocal, OpLoad, OpStore: no effect on
		// handler synchronization.
		return synced
	}
}

// Compute runs the worklist fixpoint of Fig. 12. Sets start empty and
// grow monotonically toward the least fixpoint, which under-approximates
// the synced handlers and is therefore always safe to elide against.
func Compute(f *ir.Func) *SyncSets {
	res := &SyncSets{
		In:  make(map[*ir.Block]VarSet, len(f.Blocks)),
		Out: make(map[*ir.Block]VarSet, len(f.Blocks)),
	}
	for _, b := range f.Blocks {
		res.In[b] = VarSet{}
		res.Out[b] = VarSet{}
	}
	changed := make(map[*ir.Block]bool, len(f.Blocks))
	var work []*ir.Block
	for _, b := range f.Blocks {
		changed[b] = true
		work = append(work, b)
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		if !changed[b] {
			continue
		}
		changed[b] = false

		var common VarSet
		if len(b.Preds) == 0 {
			common = VarSet{} // entry: nothing synced
		} else {
			common = res.Out[b.Preds[0]].Clone()
			for _, p := range b.Preds[1:] {
				common = common.Intersect(res.Out[p])
			}
		}
		res.In[b] = common
		newOut := UpdateSync(f, b, common)
		if !newOut.Equal(res.Out[b]) {
			res.Out[b] = newOut
			for _, s := range b.Succs {
				if !changed[s] {
					changed[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return res
}

// RemovedSync identifies one deleted sync instruction.
type RemovedSync struct {
	Block   string
	Index   int // instruction index in the original block
	Handler string
}

// Result reports what Coalesce did.
type Result struct {
	Func    *ir.Func // the transformed function (a copy)
	Sets    *SyncSets
	Removed []RemovedSync
}

func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sync-coalescing: removed %d sync(s)\n", len(r.Removed))
	for _, rm := range r.Removed {
		fmt.Fprintf(&sb, "  %s[%d]: sync %s\n", rm.Block, rm.Index, rm.Handler)
	}
	for _, b := range r.Func.Blocks {
		fmt.Fprintf(&sb, "  %s: in=%s out=%s\n", b.Name, r.Sets.In[b], r.Sets.Out[b])
	}
	return sb.String()
}

// Coalesce runs the analysis on f and returns a transformed copy in
// which every sync instruction whose handler is provably already
// synced at that point has been removed (Fig. 14). f itself is not
// modified.
func Coalesce(f *ir.Func) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	g := f.Clone()
	sets := Compute(g)
	res := &Result{Func: g, Sets: sets}
	for _, b := range g.Blocks {
		cur := sets.In[b].Clone()
		kept := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			if in.Op == ir.OpSync && cur[in.Handler] {
				res.Removed = append(res.Removed, RemovedSync{Block: b.Name, Index: i, Handler: in.Handler})
				continue // elide: already synced on every path here
			}
			cur = transfer(g, &in, cur)
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("passes: transform produced invalid IR: %w", err)
	}
	return res, nil
}

// CountSyncs returns the number of sync instructions in f, a
// convenience for tests and reports.
func CountSyncs(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpSync {
				n++
			}
		}
	}
	return n
}
