package passes

import (
	"fmt"
	"math/rand"
	"testing"

	"scoopqs/internal/compiler/interp"
	"scoopqs/internal/compiler/ir"
	"scoopqs/internal/core"
)

// Randomized soundness check: generate random acyclic CFGs mixing
// syncs, asyncs, local handler reads, and attributed calls over two
// possibly-aliasing handler variables; run the sync-coalescing pass;
// then execute both versions against the real runtime. The runtime's
// LocalQuery guard panics if the pass ever removed a sync that was
// actually needed (the handler would not be parked), and the final
// handler states must agree.

// genFunc builds a random DAG-shaped function of `blocks` basic blocks
// (block i only branches to blocks > i, the last returns).
func genFunc(rng *rand.Rand, blocks int, noalias bool) *ir.Func {
	f := ir.NewFunc("fuzz")
	f.Handlers = []string{"g", "h"}
	f.Attrs["ro"] = ir.AttrReadOnly
	if noalias {
		f.DeclareNoAlias("g", "h")
	}
	for i := 0; i < blocks; i++ {
		b := &ir.Block{Name: fmt.Sprintf("b%d", i)}
		n := rng.Intn(5)
		for k := 0; k < n; k++ {
			h := f.Handlers[rng.Intn(2)]
			switch rng.Intn(6) {
			case 0, 1:
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpSync, Handler: h})
			case 2:
				b.Instrs = append(b.Instrs, ir.Instr{
					Op: ir.OpAsync, Handler: h, Fn: "bump",
					Args: []ir.Arg{ir.ConstArg(int64(rng.Intn(5)))},
				})
			case 3:
				// A read is only legal after a sync on the same
				// handler within this block (the naive generator's
				// pairing), so emit the pair.
				b.Instrs = append(b.Instrs,
					ir.Instr{Op: ir.OpSync, Handler: h},
					ir.Instr{Op: ir.OpQLocal, Dst: fmt.Sprintf("v%d_%d", i, k), Handler: h, Fn: "get"})
			case 4:
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpCall, Fn: "ro"})
			case 5:
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpCall, Fn: "opaque"})
			}
		}
		if i == blocks-1 {
			b.Term = ir.Term{Kind: ir.TermRet}
		} else if i+2 < blocks && rng.Intn(2) == 0 {
			t1 := i + 1 + rng.Intn(blocks-i-1)
			t2 := i + 1 + rng.Intn(blocks-i-1)
			b.Term = ir.Term{Kind: ir.TermBr, Cond: ir.ConstArg(int64(rng.Intn(2))),
				To: fmt.Sprintf("b%d", t1), Else: fmt.Sprintf("b%d", t2)}
		} else {
			b.Term = ir.Term{Kind: ir.TermJmp, To: fmt.Sprintf("b%d", i+1)}
		}
		f.Blocks = append(f.Blocks, b)
	}
	return f
}

// execute runs f with two handler-owned counters and returns their
// final values. It fails the test on interpreter errors or panics
// (which would indicate an unsound elision).
func execute(t *testing.T, f *ir.Func, seed int64) (int64, int64) {
	t.Helper()
	rt := core.New(core.ConfigStatic)
	defer rt.Shutdown()
	hg := rt.NewHandler("g")
	hh := rt.NewHandler("h")
	var cg, ch int64

	c := rt.NewClient()
	var err error
	c.SeparateMany([]*core.Handler{hg, hh}, func(ss []*core.Session) {
		bind := func(s *core.Session, counter *int64) interp.HandlerBinding {
			return interp.HandlerBinding{
				Session: s,
				Methods: map[string]func([]int64) int64{
					"bump": func(a []int64) int64 { *counter += a[0] + 1; return 0 },
					"get":  func([]int64) int64 { return *counter },
				},
			}
		}
		_, err = interp.Run(f, &interp.Env{
			Handlers: map[string]interp.SessionOps{
				"g": bind(ss[0], &cg),
				"h": bind(ss[1], &ch),
			},
			Funcs: map[string]func([]int64) int64{
				"ro":     func([]int64) int64 { return 7 },
				"opaque": func([]int64) int64 { return 8 },
			},
		})
		// Drain before reading the counters.
		ss[0].SyncNow()
		ss[1].SyncNow()
	})
	if err != nil {
		t.Fatalf("interp error (seed %d):\n%s\n%v", seed, f.String(), err)
	}
	return cg, ch
}

func TestFuzzCoalesceSoundness(t *testing.T) {
	const rounds = 120
	for seed := int64(0); seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := genFunc(rng, 3+rng.Intn(5), seed%3 == 0)
		if err := f.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid IR: %v", seed, err)
		}
		res, err := Coalesce(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if CountSyncs(res.Func)+len(res.Removed) != CountSyncs(f) {
			t.Fatalf("seed %d: sync accounting broken", seed)
		}
		// Both versions must run cleanly (LocalQuery panics on an
		// unsound elision) and leave identical handler state.
		g1, h1 := execute(t, f, seed)
		g2, h2 := execute(t, res.Func, seed)
		if g1 != g2 || h1 != h2 {
			t.Fatalf("seed %d: pass changed behaviour: (%d,%d) vs (%d,%d)\n--- before ---\n%s--- after ---\n%s",
				seed, g1, h1, g2, h2, f.String(), res.Func.String())
		}
	}
}

// The same fuzz against the analysis only: In/Out sets must be
// consistent (Out = UpdateSync(In)) and In must equal the intersection
// of predecessors' Outs at the fixpoint.
func TestFuzzSyncSetFixpointConsistency(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed + 10_000))
		f := genFunc(rng, 3+rng.Intn(6), seed%2 == 0)
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		sets := Compute(f)
		for _, b := range f.Blocks {
			if !sets.Out[b].Equal(UpdateSync(f, b, sets.In[b])) {
				t.Fatalf("seed %d: block %s: Out != transfer(In)", seed, b.Name)
			}
			if len(b.Preds) > 0 {
				common := sets.Out[b.Preds[0]].Clone()
				for _, p := range b.Preds[1:] {
					common = common.Intersect(sets.Out[p])
				}
				if !sets.In[b].Equal(common) {
					t.Fatalf("seed %d: block %s: In != meet of preds", seed, b.Name)
				}
			} else if len(sets.In[b]) != 0 {
				t.Fatalf("seed %d: entry block %s has non-empty In", seed, b.Name)
			}
		}
	}
}
