package interp

import (
	"fmt"
	"testing"

	"scoopqs/internal/compiler/passes"
	"scoopqs/internal/core"
)

// The differential regression test for the static sync-coalescing
// pass: every corpus program must produce the identical observable
// outcome — return value, client arrays, and final handler state
// fingerprints — naive and syncset-optimized, on the pooled runtime.
// The pass may only delete synchronization the program never needed;
// any reordering it enables shows up here (and, under -race, as a data
// race caught by the detector).
func TestDifferentialNaiveVsOptimized(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := core.ConfigStatic.WithWorkers(workers)
		for _, p := range Corpus() {
			p := p
			t.Run(fmt.Sprintf("%s/workers%d", p.Name, workers), func(t *testing.T) {
				naiveF, err := p.Parse()
				if err != nil {
					t.Fatal(err)
				}
				res, err := passes.Coalesce(naiveF)
				if err != nil {
					t.Fatal(err)
				}

				rtN := core.New(cfg)
				naive, naiveC, err := p.RunLocal(rtN, naiveF)
				rtN.Shutdown()
				if err != nil {
					t.Fatalf("naive: %v", err)
				}

				rtO := core.New(cfg)
				opt, optC, err := p.RunLocal(rtO, res.Func)
				rtO.Shutdown()
				if err != nil {
					t.Fatalf("optimized: %v", err)
				}

				if !naive.Equal(opt) {
					t.Errorf("outcome diverged (workers=%d):\n  naive: %s\n  opt:   %s", workers, naive, opt)
				}
				// The optimization's whole effect is fewer executed
				// syncs; everything else must be untouched.
				if optC.SyncsExecuted > naiveC.SyncsExecuted {
					t.Errorf("optimized executed more syncs (%d) than naive (%d)", optC.SyncsExecuted, naiveC.SyncsExecuted)
				}
				if len(res.Removed) > 0 && optC.SyncsExecuted >= naiveC.SyncsExecuted {
					t.Errorf("pass removed %d syncs but SyncsExecuted did not drop (%d vs %d)",
						len(res.Removed), optC.SyncsExecuted, naiveC.SyncsExecuted)
				}
				if optC.AsyncCalls != naiveC.AsyncCalls || optC.LocalQueries != naiveC.LocalQueries {
					t.Errorf("non-sync counters diverged: naive=%+v opt=%+v", naiveC, optC)
				}
			})
		}
	}
}
