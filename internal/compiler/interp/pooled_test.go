package interp

import (
	"fmt"
	"testing"

	"scoopqs/internal/compiler/passes"
	"scoopqs/internal/core"
	"scoopqs/internal/future"
)

// The interpreter's sync accounting must hold on the M:N executor
// exactly as on dedicated goroutines: pool size is a scheduling
// detail, not a semantics knob.
func TestCopyLoopPooledWorkers(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			f := parse(t, copyLoop)
			out, st := runCopyLoop(t, f, core.ConfigStatic.WithWorkers(workers), 50)
			checkSquares(t, out)
			if st.SyncsPerformed != 52 {
				t.Errorf("naive SyncsPerformed = %d, want 52", st.SyncsPerformed)
			}

			res, err := passes.Coalesce(f)
			if err != nil {
				t.Fatal(err)
			}
			out, st = runCopyLoop(t, res.Func, core.ConfigStatic.WithWorkers(workers), 50)
			checkSquares(t, out)
			if st.SyncsPerformed != 1 {
				t.Errorf("optimized SyncsPerformed = %d, want 1", st.SyncsPerformed)
			}
		})
	}
}

// An IR method whose implementation delegates to a second handler via
// Handler.Await must, in pooled mode, park the handler's state machine
// instead of holding a worker — visible as AwaitParks in core.Stats.
// The program's observable result is unaffected.
func TestPooledMethodDelegationParks(t *testing.T) {
	const n = 8
	src := `func f(n) handlers(g) arrays() {
entry:
  i = const 0
  jmp loop
loop:
  c = lt i, n
  br c, body, done
body:
  async g pull(i)
  i = add i, 1
  jmp loop
done:
  sync g
  v = qlocal g acc()
  ret v
}
`
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			f := parse(t, src)
			rt := core.New(core.ConfigAll.WithWorkers(workers))
			defer rt.Shutdown()
			hg := rt.NewHandler("g")
			hb := rt.NewHandler("b")
			c := rt.NewClient()

			var acc int64
			methods := map[string]func([]int64) int64{
				// pull(i) delegates the doubling to handler b and
				// accumulates the result in a continuation: the arming
				// request does not complete until cont has run, so the
				// IR-level sync below observes every accumulation.
				"pull": func(a []int64) int64 {
					var inner *future.Future
					hg.AsClient().Separate(hb, func(s *core.Session) {
						x := a[0]
						inner = s.CallFuture(func() any { return 2 * x })
					})
					hg.Await(inner, func(v any, err error) {
						if err == nil {
							acc += v.(int64)
						}
					})
					return 0
				},
				"acc": func([]int64) int64 { return acc },
			}

			var got int64
			var err error
			c.Separate(hg, func(s *core.Session) {
				got, err = Run(f, &Env{
					Ints:     map[string]int64{"n": n},
					Handlers: map[string]SessionOps{"g": HandlerBinding{Session: s, Methods: methods}},
				})
			})
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(n * (n - 1)); got != want {
				t.Fatalf("got %d, want %d", got, want)
			}
			if st := rt.Stats(); st.AwaitParks == 0 {
				t.Errorf("AwaitParks = 0, want > 0: pooled delegation should park the state machine")
			}
		})
	}
}
