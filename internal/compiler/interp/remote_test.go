package interp

import (
	"net"
	"testing"

	"scoopqs/internal/compiler/passes"
	"scoopqs/internal/core"
	"scoopqs/internal/remote"
)

// serveProgram brings up a fresh server exposing p's handler variables
// (each with fresh model state) and returns a connected mux.
func serveProgram(t *testing.T, p Program, hvs []string) (*remote.Mux, func()) {
	t.Helper()
	rt := core.New(core.ConfigAll)
	srv := remote.NewServer(rt)
	for _, hv := range hvs {
		h := rt.NewHandler(p.RemoteHandlerName(hv))
		srv.Expose(p.RemoteHandlerName(hv), h, remoteProcs(NewModel()))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Shutdown()
		t.Fatal(err)
	}
	go srv.Serve(ln)
	mux, err := remote.DialMux("tcp", ln.Addr().String())
	if err != nil {
		srv.Close()
		rt.Shutdown()
		t.Fatal(err)
	}
	return mux, func() {
		mux.Close()
		srv.Close()
		rt.Shutdown()
	}
}

// remoteProcs adapts a model's method table to remote.Procs (the
// shapes are identical; the conversion is nominal).
func remoteProcs(m map[string]func([]int64) int64) map[string]remote.Proc {
	out := make(map[string]remote.Proc, len(m))
	for k, fn := range m {
		out[k] = remote.Proc(fn)
	}
	return out
}

// runRemoteOnce serves p fresh, runs f over the wire, and tears down.
func runRemoteOnce(t *testing.T, p Program, hvs []string, run func(*remote.Mux) (Outcome, Counters, error)) (Outcome, Counters) {
	t.Helper()
	mux, done := serveProgram(t, p, hvs)
	defer done()
	out, ctrs, err := run(mux)
	if err != nil {
		t.Fatal(err)
	}
	return out, ctrs
}

// Every corpus program must produce the identical outcome over the mux
// transport as on the local dedicated runtime, naive and optimized —
// and the optimized variant must never pay more round-trips.
func TestCorpusRemoteMatchesLocal(t *testing.T) {
	for _, p := range Corpus() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			naiveF, err := p.Parse()
			if err != nil {
				t.Fatal(err)
			}
			res, err := passes.Coalesce(naiveF)
			if err != nil {
				t.Fatal(err)
			}

			rt := core.New(core.ConfigStatic)
			local, _, err := p.RunLocal(rt, naiveF)
			rt.Shutdown()
			if err != nil {
				t.Fatal(err)
			}

			rNaive, cNaive := runRemoteOnce(t, p, naiveF.Handlers, func(m *remote.Mux) (Outcome, Counters, error) {
				return p.RunRemote(m, naiveF)
			})
			rOpt, cOpt := runRemoteOnce(t, p, res.Func.Handlers, func(m *remote.Mux) (Outcome, Counters, error) {
				return p.RunRemote(m, res.Func)
			})

			if !local.Equal(rNaive) {
				t.Errorf("remote naive diverged from local:\n  local:  %s\n  remote: %s", local, rNaive)
			}
			if !local.Equal(rOpt) {
				t.Errorf("remote optimized diverged from local:\n  local:  %s\n  remote: %s", local, rOpt)
			}
			if cOpt.RoundTrips > cNaive.RoundTrips {
				t.Errorf("optimized paid more round-trips (%d) than naive (%d)", cOpt.RoundTrips, cNaive.RoundTrips)
			}
		})
	}
}

// The Fig. 14 acceptance check in miniature: statically coalescing the
// copy loop deletes exactly one wire round-trip per iteration plus the
// exit sync — N+1 in total.
func TestCopyLoopRemoteRoundTripReduction(t *testing.T) {
	var p Program
	for _, q := range Corpus() {
		if q.Name == "copyloop" {
			p = q
		}
	}
	naiveF, err := p.Parse()
	if err != nil {
		t.Fatal(err)
	}
	res, err := passes.Coalesce(naiveF)
	if err != nil {
		t.Fatal(err)
	}

	_, cNaive := runRemoteOnce(t, p, naiveF.Handlers, func(m *remote.Mux) (Outcome, Counters, error) {
		return p.RunRemote(m, naiveF)
	})
	_, cOpt := runRemoteOnce(t, p, res.Func.Handlers, func(m *remote.Mux) (Outcome, Counters, error) {
		return p.RunRemote(m, res.Func)
	})

	// Naive: one sync per iteration plus header and exit syncs (N+2)
	// and one qlocal read per iteration (N) -> 2N+2 round-trips.
	// Optimized: the single remaining sync plus the N reads -> N+1.
	if want := 2*p.N + 2; cNaive.RoundTrips != want {
		t.Errorf("naive RoundTrips = %d, want %d", cNaive.RoundTrips, want)
	}
	if want := p.N + 1; cOpt.RoundTrips != want {
		t.Errorf("optimized RoundTrips = %d, want %d", cOpt.RoundTrips, want)
	}
	if got, want := cNaive.RoundTrips-cOpt.RoundTrips, p.N+1; got != want {
		t.Errorf("round-trip reduction = %d, want %d", got, want)
	}
}
