package interp

import (
	"fmt"

	"scoopqs/internal/compiler/ir"
	"scoopqs/internal/core"
)

// This file holds the IR program corpus: small programs derived from
// the internal/semantics examples (Fig. 1's call interleaving, §2.3's
// query synchronization) plus the paper's worked optimization examples
// (the Fig. 14 copy loop, Fig. 15 with and without aliasing
// information) and a branchy control-flow case exercising the
// sync-set join. The same corpus backs three consumers: the
// differential naive-vs-coalesced regression test, the pooled interp
// tests, and qsbench -experiment compile, which runs every program on
// all three backends (dedicated, pooled, mux transport).

// A Program is one corpus entry: a textual IR function plus the
// runtime scaffolding needed to run it on any backend. Every handler
// variable is bound to its own handler running a fresh instance of the
// universal model (NewModel), so a program's observable Outcome is
// deterministic and backend-independent.
type Program struct {
	Name string
	Src  string
	// N is bound to the function's integer parameter "n", when it has
	// one.
	N int64
	// Arrays maps client-local array names to lengths (zero-filled
	// fresh per run).
	Arrays map[string]int
}

// NewModel mints a fresh handler state model: the method table every
// corpus handler exposes, closed over its own private state. The
// methods have the remote.Proc shape (args in, one int64 out) so the
// same model serves as local HandlerBinding methods and as server-side
// procedures.
//
//	foo/bar/baz — order-sensitive event log (checksum chaining)
//	add(v)      — accumulate v
//	get(i)      — i*i, counting reads (so elided vs executed query
//	              traffic is visible in the fingerprint)
//	put(i, v)   — accumulate (i+1)*v
//	fp()        — fingerprint of the entire state
func NewModel() map[string]func([]int64) int64 {
	var log, acc, reads, sum int64
	event := func(k int64) func([]int64) int64 {
		return func([]int64) int64 { log = log*31 + k; return 0 }
	}
	return map[string]func([]int64) int64{
		"foo": event(1),
		"bar": event(2),
		"baz": event(3),
		"add": func(a []int64) int64 { acc += a[0]; return 0 },
		"get": func(a []int64) int64 { reads++; return a[0] * a[0] },
		"put": func(a []int64) int64 { sum += (a[0] + 1) * a[1]; return 0 },
		"fp":  func([]int64) int64 { return log*1_000_003 + acc*7919 + reads*101 + sum },
	}
}

// Corpus returns the program corpus. The source texts parse with
// ir.Parse; tests assert that.
func Corpus() []Program {
	return []Program{
		{
			// Fig. 1's two separate blocks on one handler, sequentialized
			// into a single client: the logged order is the observable.
			Name: "fig1",
			Src: `func fig1() handlers(x) arrays() {
entry:
  async x foo()
  async x bar()
  sync x
  a = qlocal x fp()
  async x bar()
  async x baz()
  sync x
  b = qlocal x fp()
  r = add a, b
  ret r
}
`,
		},
		{
			// §2.3: a query is a synchronization point — the second block
			// of calls must observe the first query's state.
			Name: "querysync",
			N:    21,
			Src: `func querysync(n) handlers(x) arrays() {
entry:
  async x add(n)
  sync x
  a = qlocal x fp()
  async x add(a)
  sync x
  b = qlocal x fp()
  ret b
}
`,
		},
		{
			// Branchy control flow: the sync in "low" is redundant (the
			// entry sync dominates), the one at the join is not (the
			// "low" path desynchronizes with an async before rejoining).
			Name: "diamond",
			N:    7,
			Src: `func diamond(n) handlers(x) arrays() {
entry:
  async x add(n)
  sync x
  c = lt n, 10
  br c, low, high
low:
  sync x
  a = qlocal x fp()
  async x foo()
  jmp join
high:
  async x bar()
  sync x
  a = qlocal x fp()
  jmp join
join:
  sync x
  b = qlocal x fp()
  r = add a, b
  ret r
}
`,
		},
		{
			// Fig. 14: the copy loop with naive sync-per-read code — the
			// paper's flagship example. The pass hoists the loop to a
			// single sync; on the remote backend that deletes one wire
			// round-trip per iteration.
			Name:   "copyloop",
			N:      32,
			Arrays: map[string]int{"x": 32},
			Src: `func copyloop(n) handlers(h) arrays(x) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`,
		},
		{
			// Fig. 15: the copy loop with an extra async on a possibly
			// aliased handler — the pass must keep every sync.
			Name:   "fig15",
			N:      16,
			Arrays: map[string]int{"x": 16},
			Src: `func fig15(n) handlers(h, ip) arrays(x) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  async ip put(i, v)
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`,
		},
		{
			// Fig. 15 with aliasing information: h and ip never alias, so
			// the loop syncs fall exactly like Fig. 14's.
			Name:   "fig15noalias",
			N:      16,
			Arrays: map[string]int{"x": 16},
			Src: `func fig15na(n) handlers(h, ip) arrays(x) noalias(h, ip) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  async ip put(i, v)
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`,
		},
	}
}

// Parse parses the program's source.
func (p Program) Parse() (*ir.Func, error) { return ir.Parse(p.Src) }

// Outcome is one run's observable result — the return value, the
// client-local arrays, and each handler's final state fingerprint.
// Backends and optimization variants must agree on it exactly.
type Outcome struct {
	Ret    int64
	Arrays map[string][]int64
	Fps    map[string]int64
}

// Equal reports whether two outcomes match exactly.
func (o Outcome) Equal(q Outcome) bool {
	if o.Ret != q.Ret || len(o.Arrays) != len(q.Arrays) || len(o.Fps) != len(q.Fps) {
		return false
	}
	for k, a := range o.Arrays {
		b, ok := q.Arrays[k]
		if !ok || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	for k, v := range o.Fps {
		if q.Fps[k] != v {
			return false
		}
	}
	return true
}

// String renders an outcome for error messages.
func (o Outcome) String() string {
	return fmt.Sprintf("ret=%d arrays=%v fps=%v", o.Ret, o.Arrays, o.Fps)
}

// env assembles the client-local half of an Env (params, arrays) for
// one run. The handler bindings are the backend-specific half.
func (p Program) env(f *ir.Func, handlers map[string]SessionOps) *Env {
	ints := map[string]int64{}
	if len(f.Params) == 1 {
		ints[f.Params[0]] = p.N
	}
	arrays := map[string][]int64{}
	for name, n := range p.Arrays {
		arrays[name] = make([]int64, n)
	}
	return &Env{Ints: ints, Arrays: arrays, Handlers: handlers}
}

// RunLocal executes f (the program's function, naive or transformed)
// against rt — dedicated or pooled, per rt's configuration — with a
// fresh handler and model per handler variable. It returns the
// observable outcome and the per-run counters. Counters are snapshotted
// before the fingerprint queries, so they count exactly the program's
// own operations.
func (p Program) RunLocal(rt *core.Runtime, f *ir.Func) (Outcome, Counters, error) {
	var out Outcome
	var ctrs Counters
	hs := make([]*core.Handler, len(f.Handlers))
	for i, hv := range f.Handlers {
		hs[i] = rt.NewHandler(p.Name + "." + hv)
	}
	c := rt.NewClient()
	var runErr error
	c.SeparateMany(hs, func(ss []*core.Session) {
		bindings := map[string]SessionOps{}
		order := make([]HandlerBinding, len(f.Handlers))
		for i, hv := range f.Handlers {
			order[i] = HandlerBinding{Session: ss[i], Methods: NewModel(), Counters: &ctrs}
			bindings[hv] = order[i]
		}
		env := p.env(f, bindings)
		out.Ret, runErr = Run(f, env)
		if runErr != nil {
			return
		}
		out.Arrays = env.Arrays
		snap := ctrs // fingerprints below are bookkeeping, not program ops
		out.Fps = map[string]int64{}
		for i, hv := range f.Handlers {
			v, err := order[i].Query("fp", nil)
			if err != nil {
				runErr = err
				return
			}
			out.Fps[hv] = v
		}
		ctrs = snap
	})
	return out, ctrs, runErr
}
