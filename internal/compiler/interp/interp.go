// Package interp executes compiler IR against the real SCOOP/Qs
// runtime. It is the stand-in for the paper's generated native code:
// each sync instruction becomes a session sync, each async becomes a
// packaged asynchronous call, and each qlocal becomes a client-side
// local query — which every backend refuses to run on an unsynced
// session, so a miscompiled (unsound) sync-coalescing pass is caught
// at execution time rather than producing a silent race.
//
// The interpreter is written against the SessionOps interface, not a
// concrete session type, so the same IR program runs unchanged on any
// backend: a local core.Session (dedicated goroutines or the pooled
// M:N executor — HandlerBinding), or a remote.Session over the mux
// transport (RemoteBinding), where every sync and local query is a
// real wire round-trip and the static pass's eliminated syncs become
// eliminated round-trips.
package interp

import (
	"fmt"

	"scoopqs/internal/compiler/ir"
	"scoopqs/internal/core"
)

// SessionOps is the narrow session surface the interpreter targets —
// the four operations compiled code needs from a separate block,
// abstracted over local and remote backends.
type SessionOps interface {
	// Call logs an asynchronous call of the named method; it must not
	// wait for execution.
	Call(fn string, args []int64) error
	// Query runs the named method synchronously (sync semantics
	// included) and returns its result.
	Query(fn string, args []int64) (int64, error)
	// Sync brings the handler to a quiescent point: on return, every
	// previously logged call has executed.
	Sync() error
	// LocalQuery evaluates the named method client-side. It is only
	// legal on a synced session and must panic otherwise — the
	// soundness backstop for the static sync-coalescing pass.
	LocalQuery(fn string, args []int64) (int64, error)
}

// Counters are per-run execution counters, filled in by the backend
// adapters as the interpreter drives them. Comparing the counters of a
// naive and a syncset-optimized run of the same program measures the
// paper's §3.4.2 effect directly: statically eliminated syncs show up
// as a lower SyncsExecuted — and, on the remote backend, as fewer
// wire RoundTrips for identical results.
type Counters struct {
	SyncsExecuted int64 // sync instructions that reached the backend
	AsyncCalls    int64 // asynchronous calls logged
	LocalQueries  int64 // client-side (post-sync) queries
	Queries       int64 // synchronous queries
	RoundTrips    int64 // wire round-trips paid (remote backends only)
}

// The nil-safe bump helpers let bindings run uncounted (nil Counters).
func (c *Counters) sync() {
	if c != nil {
		c.SyncsExecuted++
	}
}

func (c *Counters) async() {
	if c != nil {
		c.AsyncCalls++
	}
}

func (c *Counters) local() {
	if c != nil {
		c.LocalQueries++
	}
}

func (c *Counters) query() {
	if c != nil {
		c.Queries++
	}
}

func (c *Counters) roundTrip() {
	if c != nil {
		c.RoundTrips++
	}
}

// HandlerBinding connects an IR handler variable to a live local
// session and the methods callable on the handler's state. Method
// closures must only touch state owned by that handler. It implements
// SessionOps for the in-process backends (dedicated and pooled).
type HandlerBinding struct {
	Session *core.Session
	Methods map[string]func(args []int64) int64
	// Counters, when non-nil, receives this binding's per-run counts.
	Counters *Counters
}

func (hb HandlerBinding) method(fn string) (func([]int64) int64, error) {
	m, ok := hb.Methods[fn]
	if !ok {
		return nil, fmt.Errorf("no method %q", fn)
	}
	return m, nil
}

// Call implements SessionOps via core.Session.Call.
func (hb HandlerBinding) Call(fn string, args []int64) error {
	method, err := hb.method(fn)
	if err != nil {
		return err
	}
	hb.Counters.async()
	hb.Session.Call(func() { method(args) })
	return nil
}

// Query implements SessionOps via core.Query (client-side after a
// handshake under the elision configs, packaged otherwise).
func (hb HandlerBinding) Query(fn string, args []int64) (int64, error) {
	method, err := hb.method(fn)
	if err != nil {
		return 0, err
	}
	hb.Counters.query()
	return core.Query(hb.Session, func() int64 { return method(args) }), nil
}

// Sync implements SessionOps via core.Session.Sync (dynamic elision
// applies under the Dynamic/All configurations).
func (hb HandlerBinding) Sync() error {
	hb.Counters.sync()
	hb.Session.Sync()
	return nil
}

// LocalQuery implements SessionOps via core.LocalQuery, which panics
// on an unsynced session.
func (hb HandlerBinding) LocalQuery(fn string, args []int64) (int64, error) {
	method, err := hb.method(fn)
	if err != nil {
		return 0, err
	}
	hb.Counters.local()
	return core.LocalQuery(hb.Session, func() int64 { return method(args) }), nil
}

// Env is the execution environment for one run of a function.
type Env struct {
	// Ints provides values for integer parameters.
	Ints map[string]int64
	// Arrays provides client-local arrays.
	Arrays map[string][]int64
	// Handlers binds handler variables to backend sessions.
	Handlers map[string]SessionOps
	// Funcs provides client-local functions for OpCall. A function's
	// effect on handler state must be consistent with its attribute.
	Funcs map[string]func(args []int64) int64

	// MaxSteps bounds execution (0 = 50M) to turn non-terminating IR
	// into an error instead of a hang.
	MaxSteps int
}

// Run executes f and returns its return value.
func Run(f *ir.Func, env *Env) (int64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	m := &machine{f: f, env: env, locals: map[string]int64{}}
	for _, p := range f.Params {
		v, ok := env.Ints[p]
		if !ok {
			return 0, fmt.Errorf("interp: missing integer parameter %q", p)
		}
		m.locals[p] = v
	}
	for _, h := range f.Handlers {
		if _, ok := env.Handlers[h]; !ok {
			return 0, fmt.Errorf("interp: missing handler binding %q", h)
		}
	}
	for _, a := range f.Arrays {
		if _, ok := env.Arrays[a]; !ok {
			return 0, fmt.Errorf("interp: missing array %q", a)
		}
	}
	return m.run()
}

type machine struct {
	f      *ir.Func
	env    *Env
	locals map[string]int64
	steps  int
}

func (m *machine) arg(a ir.Arg) (int64, error) {
	if a.IsConst {
		return a.Imm, nil
	}
	v, ok := m.locals[a.Var]
	if !ok {
		return 0, fmt.Errorf("interp: read of undefined local %q", a.Var)
	}
	return v, nil
}

func (m *machine) argList(args []ir.Arg) ([]int64, error) {
	out := make([]int64, len(args))
	for i, a := range args {
		v, err := m.arg(a)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (m *machine) run() (int64, error) {
	max := m.env.MaxSteps
	if max == 0 {
		max = 50_000_000
	}
	b := m.f.Entry()
	for {
		// Terminators count against the budget too, so an empty
		// infinite loop still trips it.
		m.steps++
		if m.steps > max {
			return 0, fmt.Errorf("interp: step budget exceeded (%d)", max)
		}
		for i := range b.Instrs {
			m.steps++
			if m.steps > max {
				return 0, fmt.Errorf("interp: step budget exceeded (%d)", max)
			}
			if err := m.exec(&b.Instrs[i]); err != nil {
				return 0, fmt.Errorf("interp: %s[%d] %s: %w", b.Name, i, b.Instrs[i].String(), err)
			}
		}
		switch b.Term.Kind {
		case ir.TermRet:
			if !b.Term.HasVal {
				return 0, nil
			}
			return m.arg(b.Term.Val)
		case ir.TermJmp:
			b = m.f.Block(b.Term.To)
		case ir.TermBr:
			c, err := m.arg(b.Term.Cond)
			if err != nil {
				return 0, err
			}
			if c != 0 {
				b = m.f.Block(b.Term.To)
			} else {
				b = m.f.Block(b.Term.Else)
			}
		}
	}
}

func (m *machine) exec(in *ir.Instr) error {
	switch in.Op {
	case ir.OpConst:
		m.locals[in.Dst] = in.Imm
	case ir.OpBin:
		a, err := m.arg(in.A)
		if err != nil {
			return err
		}
		b, err := m.arg(in.B)
		if err != nil {
			return err
		}
		if (in.Bin == ir.BinDiv || in.Bin == ir.BinMod) && b == 0 {
			return fmt.Errorf("division by zero")
		}
		m.locals[in.Dst] = in.Bin.Eval(a, b)
	case ir.OpSync:
		return m.env.Handlers[in.Handler].Sync()
	case ir.OpAsync:
		args, err := m.argList(in.Args)
		if err != nil {
			return err
		}
		if err := m.env.Handlers[in.Handler].Call(in.Fn, args); err != nil {
			return fmt.Errorf("handler %q: %w", in.Handler, err)
		}
	case ir.OpQLocal:
		args, err := m.argList(in.Args)
		if err != nil {
			return err
		}
		v, err := m.env.Handlers[in.Handler].LocalQuery(in.Fn, args)
		if err != nil {
			return fmt.Errorf("handler %q: %w", in.Handler, err)
		}
		m.locals[in.Dst] = v
	case ir.OpCall:
		fn, ok := m.env.Funcs[in.Fn]
		if !ok {
			return fmt.Errorf("unknown function %q", in.Fn)
		}
		args, err := m.argList(in.Args)
		if err != nil {
			return err
		}
		v := fn(args)
		if in.Dst != "" {
			m.locals[in.Dst] = v
		}
	case ir.OpLoad:
		arr := m.env.Arrays[in.Arr]
		i, err := m.arg(in.A)
		if err != nil {
			return err
		}
		if i < 0 || i >= int64(len(arr)) {
			return fmt.Errorf("load %s[%d] out of bounds (len %d)", in.Arr, i, len(arr))
		}
		m.locals[in.Dst] = arr[i]
	case ir.OpStore:
		arr := m.env.Arrays[in.Arr]
		i, err := m.arg(in.A)
		if err != nil {
			return err
		}
		v, err := m.arg(in.B)
		if err != nil {
			return err
		}
		if i < 0 || i >= int64(len(arr)) {
			return fmt.Errorf("store %s[%d] out of bounds (len %d)", in.Arr, i, len(arr))
		}
		arr[i] = v
	default:
		return fmt.Errorf("unknown opcode %d", in.Op)
	}
	return nil
}
