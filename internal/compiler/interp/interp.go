// Package interp executes compiler IR against the real SCOOP/Qs
// runtime. It is the stand-in for the paper's generated native code:
// each sync instruction becomes a Session.Sync, each async becomes a
// packaged Session.Call, and each qlocal becomes a client-side
// LocalQuery — which the runtime refuses to run on an unsynced session,
// so a miscompiled (unsound) sync-coalescing pass is caught at
// execution time rather than producing a silent race.
package interp

import (
	"fmt"

	"scoopqs/internal/compiler/ir"
	"scoopqs/internal/core"
)

// HandlerBinding connects an IR handler variable to a live session and
// the methods callable on the handler's state. Method closures must
// only touch state owned by that handler.
type HandlerBinding struct {
	Session *core.Session
	Methods map[string]func(args []int64) int64
}

// Env is the execution environment for one run of a function.
type Env struct {
	// Ints provides values for integer parameters.
	Ints map[string]int64
	// Arrays provides client-local arrays.
	Arrays map[string][]int64
	// Handlers binds handler variables to sessions.
	Handlers map[string]HandlerBinding
	// Funcs provides client-local functions for OpCall. A function's
	// effect on handler state must be consistent with its attribute.
	Funcs map[string]func(args []int64) int64

	// MaxSteps bounds execution (0 = 50M) to turn non-terminating IR
	// into an error instead of a hang.
	MaxSteps int
}

// Run executes f and returns its return value.
func Run(f *ir.Func, env *Env) (int64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	m := &machine{f: f, env: env, locals: map[string]int64{}}
	for _, p := range f.Params {
		v, ok := env.Ints[p]
		if !ok {
			return 0, fmt.Errorf("interp: missing integer parameter %q", p)
		}
		m.locals[p] = v
	}
	for _, h := range f.Handlers {
		if _, ok := env.Handlers[h]; !ok {
			return 0, fmt.Errorf("interp: missing handler binding %q", h)
		}
	}
	for _, a := range f.Arrays {
		if _, ok := env.Arrays[a]; !ok {
			return 0, fmt.Errorf("interp: missing array %q", a)
		}
	}
	return m.run()
}

type machine struct {
	f      *ir.Func
	env    *Env
	locals map[string]int64
	steps  int
}

func (m *machine) arg(a ir.Arg) (int64, error) {
	if a.IsConst {
		return a.Imm, nil
	}
	v, ok := m.locals[a.Var]
	if !ok {
		return 0, fmt.Errorf("interp: read of undefined local %q", a.Var)
	}
	return v, nil
}

func (m *machine) argList(args []ir.Arg) ([]int64, error) {
	out := make([]int64, len(args))
	for i, a := range args {
		v, err := m.arg(a)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (m *machine) run() (int64, error) {
	max := m.env.MaxSteps
	if max == 0 {
		max = 50_000_000
	}
	b := m.f.Entry()
	for {
		// Terminators count against the budget too, so an empty
		// infinite loop still trips it.
		m.steps++
		if m.steps > max {
			return 0, fmt.Errorf("interp: step budget exceeded (%d)", max)
		}
		for i := range b.Instrs {
			m.steps++
			if m.steps > max {
				return 0, fmt.Errorf("interp: step budget exceeded (%d)", max)
			}
			if err := m.exec(&b.Instrs[i]); err != nil {
				return 0, fmt.Errorf("interp: %s[%d] %s: %w", b.Name, i, b.Instrs[i].String(), err)
			}
		}
		switch b.Term.Kind {
		case ir.TermRet:
			if !b.Term.HasVal {
				return 0, nil
			}
			return m.arg(b.Term.Val)
		case ir.TermJmp:
			b = m.f.Block(b.Term.To)
		case ir.TermBr:
			c, err := m.arg(b.Term.Cond)
			if err != nil {
				return 0, err
			}
			if c != 0 {
				b = m.f.Block(b.Term.To)
			} else {
				b = m.f.Block(b.Term.Else)
			}
		}
	}
}

func (m *machine) exec(in *ir.Instr) error {
	switch in.Op {
	case ir.OpConst:
		m.locals[in.Dst] = in.Imm
	case ir.OpBin:
		a, err := m.arg(in.A)
		if err != nil {
			return err
		}
		b, err := m.arg(in.B)
		if err != nil {
			return err
		}
		if (in.Bin == ir.BinDiv || in.Bin == ir.BinMod) && b == 0 {
			return fmt.Errorf("division by zero")
		}
		m.locals[in.Dst] = in.Bin.Eval(a, b)
	case ir.OpSync:
		m.env.Handlers[in.Handler].Session.Sync()
	case ir.OpAsync:
		hb := m.env.Handlers[in.Handler]
		method, ok := hb.Methods[in.Fn]
		if !ok {
			return fmt.Errorf("handler %q has no method %q", in.Handler, in.Fn)
		}
		args, err := m.argList(in.Args)
		if err != nil {
			return err
		}
		hb.Session.Call(func() { method(args) })
	case ir.OpQLocal:
		hb := m.env.Handlers[in.Handler]
		method, ok := hb.Methods[in.Fn]
		if !ok {
			return fmt.Errorf("handler %q has no method %q", in.Handler, in.Fn)
		}
		args, err := m.argList(in.Args)
		if err != nil {
			return err
		}
		m.locals[in.Dst] = core.LocalQuery(hb.Session, func() int64 { return method(args) })
	case ir.OpCall:
		fn, ok := m.env.Funcs[in.Fn]
		if !ok {
			return fmt.Errorf("unknown function %q", in.Fn)
		}
		args, err := m.argList(in.Args)
		if err != nil {
			return err
		}
		v := fn(args)
		if in.Dst != "" {
			m.locals[in.Dst] = v
		}
	case ir.OpLoad:
		arr := m.env.Arrays[in.Arr]
		i, err := m.arg(in.A)
		if err != nil {
			return err
		}
		if i < 0 || i >= int64(len(arr)) {
			return fmt.Errorf("load %s[%d] out of bounds (len %d)", in.Arr, i, len(arr))
		}
		m.locals[in.Dst] = arr[i]
	case ir.OpStore:
		arr := m.env.Arrays[in.Arr]
		i, err := m.arg(in.A)
		if err != nil {
			return err
		}
		v, err := m.arg(in.B)
		if err != nil {
			return err
		}
		if i < 0 || i >= int64(len(arr)) {
			return fmt.Errorf("store %s[%d] out of bounds (len %d)", in.Arr, i, len(arr))
		}
		arr[i] = v
	default:
		return fmt.Errorf("unknown opcode %d", in.Op)
	}
	return nil
}
