package interp

import (
	"testing"

	"scoopqs/internal/compiler/passes"
	"scoopqs/internal/core"
)

// corpusRemovals pins how many sync instructions the static pass
// eliminates from each corpus program — the paper's §3.4.2 examples:
// the Fig. 14 loop loses its body and exit syncs, Fig. 15 loses none
// without aliasing information and both with it, and the diamond loses
// only the dominated sync on the "low" path.
var corpusRemovals = map[string]int{
	"fig1":         0,
	"querysync":    0,
	"diamond":      1,
	"copyloop":     2,
	"fig15":        0,
	"fig15noalias": 2,
}

func TestCorpusParsesAndCoalesces(t *testing.T) {
	progs := Corpus()
	if len(progs) != len(corpusRemovals) {
		t.Fatalf("corpus has %d programs, removal table has %d", len(progs), len(corpusRemovals))
	}
	for _, p := range progs {
		t.Run(p.Name, func(t *testing.T) {
			f, err := p.Parse()
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := passes.Coalesce(f)
			if err != nil {
				t.Fatalf("coalesce: %v", err)
			}
			want, ok := corpusRemovals[p.Name]
			if !ok {
				t.Fatalf("program %q missing from removal table", p.Name)
			}
			if got := len(res.Removed); got != want {
				t.Errorf("removed %d syncs, want %d", got, want)
			}
		})
	}
}

// Two runs of the same program on the same backend must agree exactly:
// the corpus models are deterministic by construction.
func TestCorpusDeterministic(t *testing.T) {
	for _, p := range Corpus() {
		t.Run(p.Name, func(t *testing.T) {
			f, err := p.Parse()
			if err != nil {
				t.Fatal(err)
			}
			run := func() Outcome {
				rt := core.New(core.ConfigStatic)
				defer rt.Shutdown()
				out, _, err := p.RunLocal(rt, f)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			a, b := run(), run()
			if !a.Equal(b) {
				t.Errorf("non-deterministic outcome:\n  %s\n  %s", a, b)
			}
		})
	}
}
