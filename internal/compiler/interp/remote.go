package interp

import (
	"scoopqs/internal/compiler/ir"
	"scoopqs/internal/remote"
)

// RemoteBinding adapts a remote separate block (remote.Session, one
// mux channel with an open BEGIN) to SessionOps, so IR programs run
// unchanged over the wire. The handler's methods live server-side as
// remote.Procs; asynchronous calls are fire-and-forget frames, while
// Sync, Query, and LocalQuery each cost one wire round-trip — which is
// exactly why the static sync-coalescing pass matters here: every
// eliminated sync instruction is an eliminated round-trip.
//
// A local query has no client-side state to read over the wire, so it
// executes as a pipelined wire query — but only on a synced session.
// The binding tracks the synced state the way core.Session does
// (asyncs desynchronize, syncs and queries synchronize) and panics on
// a local query against an unsynced session, mirroring the runtime's
// soundness backstop for miscompiled sync elision.
type RemoteBinding struct {
	S *remote.Session
	// Counters, when non-nil, receives this binding's per-run counts.
	Counters *Counters

	synced bool
}

// NewRemoteBinding wraps a remote block for the interpreter, counting
// into ctrs (which may be nil).
func NewRemoteBinding(s *remote.Session, ctrs *Counters) *RemoteBinding {
	return &RemoteBinding{S: s, Counters: ctrs}
}

// Call implements SessionOps: a CALL frame, no round-trip.
func (rb *RemoteBinding) Call(fn string, args []int64) error {
	rb.Counters.async()
	rb.synced = false
	return rb.S.Call(fn, args...)
}

// Query implements SessionOps: one pipelined QUERY round-trip. It
// observes every previously logged call, so the session is synced
// afterwards.
func (rb *RemoteBinding) Query(fn string, args []int64) (int64, error) {
	rb.Counters.query()
	rb.Counters.roundTrip()
	v, err := rb.S.Query(fn, args...)
	if err == nil {
		rb.synced = true
	}
	return v, err
}

// Sync implements SessionOps: one SYNC round-trip through the server's
// non-blocking barrier.
func (rb *RemoteBinding) Sync() error {
	rb.Counters.sync()
	rb.Counters.roundTrip()
	err := rb.S.Sync()
	if err == nil {
		rb.synced = true
	}
	return err
}

// LocalQuery implements SessionOps. The handler state is remote, so
// the read is a wire query — but it is only legal where a client-side
// read would be, and panics otherwise exactly like core.LocalQuery.
func (rb *RemoteBinding) LocalQuery(fn string, args []int64) (int64, error) {
	if !rb.synced {
		panic("interp: local query on an unsynced remote session (unsound sync elision?)")
	}
	rb.Counters.local()
	rb.Counters.roundTrip()
	return rb.S.Query(fn, args...)
}

// RemoteHandlerName is the public name a corpus program's handler
// variable is exposed under on a server (see Program.RunRemote).
func (p Program) RemoteHandlerName(hv string) string { return p.Name + "." + hv }

// RunRemote executes f (the program's function, naive or transformed)
// over mux against a server that exposes each handler variable hv
// under RemoteHandlerName(hv) with a fresh NewModel instance. One
// logical client per handler variable is opened, blocks nested so the
// reservations overlap like a local SeparateMany. Handler state lives
// server-side, so a server must not be reused across runs of the same
// program. Counters are snapshotted before the fingerprint queries,
// exactly like RunLocal.
func (p Program) RunRemote(mux *remote.Mux, f *ir.Func) (Outcome, Counters, error) {
	var out Outcome
	var ctrs Counters
	n := len(f.Handlers)
	sessions := make([]*remote.Session, n)
	var open func(i int) error
	open = func(i int) error {
		if i < n {
			rs := mux.NewSession()
			defer rs.Close() //nolint:errcheck // teardown
			return rs.Separate(p.RemoteHandlerName(f.Handlers[i]), func(s *remote.Session) error {
				sessions[i] = s
				return open(i + 1)
			})
		}
		bindings := map[string]SessionOps{}
		order := make([]*RemoteBinding, n)
		for j, hv := range f.Handlers {
			order[j] = NewRemoteBinding(sessions[j], &ctrs)
			bindings[hv] = order[j]
		}
		env := p.env(f, bindings)
		var err error
		out.Ret, err = Run(f, env)
		if err != nil {
			return err
		}
		out.Arrays = env.Arrays
		snap := ctrs // fingerprints below are bookkeeping, not program ops
		out.Fps = map[string]int64{}
		for j, hv := range f.Handlers {
			v, err := order[j].Query("fp", nil)
			if err != nil {
				return err
			}
			out.Fps[hv] = v
		}
		ctrs = snap
		return nil
	}
	err := open(0)
	return out, ctrs, err
}
