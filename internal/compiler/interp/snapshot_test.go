package interp

import (
	"testing"

	"scoopqs/internal/core"
)

// Asynchronous call arguments are evaluated at issue time (the paper's
// call packaging stores the actual arguments): mutating a local after
// the async is issued must not change what the handler sees.
func TestAsyncArgsSnapshotAtIssueTime(t *testing.T) {
	src := `func f() handlers(h) arrays() {
entry:
  x = const 1
  async h put(x)
  x = const 2
  async h put(x)
  sync h
  v = qlocal h sum()
  ret v
}
`
	f := parse(t, src)
	rt := core.New(core.ConfigAll)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	var sum int64
	var got int64
	var err error
	c.Separate(h, func(s *core.Session) {
		got, err = Run(f, &Env{
			Handlers: map[string]SessionOps{
				"h": HandlerBinding{Session: s, Methods: map[string]func([]int64) int64{
					"put": func(a []int64) int64 { sum += a[0]; return 0 },
					"sum": func([]int64) int64 { return sum },
				}},
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 { // 1 + 2, not 2 + 2 or 1 + 1
		t.Fatalf("sum = %d, want 3: async args must snapshot at issue time", got)
	}
}

// Two handler variables bound to the same handler must behave like the
// aliasing case of Fig. 15: execution stays correct because the
// interpreter routes both through the same session.
func TestTwoVarsSameHandler(t *testing.T) {
	src := `func f() handlers(g, h) arrays() {
entry:
  async g put(5)
  sync h
  v = qlocal h sum()
  ret v
}
`
	f := parse(t, src)
	rt := core.New(core.ConfigAll)
	defer rt.Shutdown()
	hd := rt.NewHandler("shared")
	c := rt.NewClient()
	var sum int64
	var got int64
	var err error
	c.Separate(hd, func(s *core.Session) {
		bind := HandlerBinding{Session: s, Methods: map[string]func([]int64) int64{
			"put": func(a []int64) int64 { sum += a[0]; return 0 },
			"sum": func([]int64) int64 { return sum },
		}}
		got, err = Run(f, &Env{Handlers: map[string]SessionOps{"g": bind, "h": bind}})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("sum = %d, want 5", got)
	}
}
