package interp

import (
	"strings"
	"testing"

	"scoopqs/internal/compiler/ir"
	"scoopqs/internal/compiler/passes"
	"scoopqs/internal/core"
)

// copyLoop is the Fig. 14 communication loop: pull n values from a
// handler-owned array into the client-local array x, with the naive
// sync-per-read code.
const copyLoop = `func copyloop(n) handlers(h) arrays(x) {
B1:
  i = const 0
  sync h
  jmp B2
B2:
  c = lt i, n
  br c, body, B3
body:
  sync h
  v = qlocal h get(i)
  store x, i, v
  i = add i, 1
  jmp B2
B3:
  sync h
  ret i
}
`

// runCopyLoop executes f under cfg and returns the output array plus
// the runtime stats.
func runCopyLoop(t *testing.T, f *ir.Func, cfg core.Config, n int) ([]int64, core.Stats) {
	t.Helper()
	rt := core.New(cfg)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()

	// Handler-owned array, filled by async calls.
	data := make([]int64, n)
	out := make([]int64, n)
	var ret int64
	var err error
	c.Separate(h, func(s *core.Session) {
		s.Call(func() {
			for i := range data {
				data[i] = int64(i * i)
			}
		})
		ret, err = Run(f, &Env{
			Ints:   map[string]int64{"n": int64(n)},
			Arrays: map[string][]int64{"x": out},
			Handlers: map[string]SessionOps{
				"h": HandlerBinding{Session: s, Methods: map[string]func([]int64) int64{
					"get": func(a []int64) int64 { return data[a[0]] },
				}},
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if ret != int64(n) {
		t.Fatalf("ret = %d, want %d", ret, n)
	}
	return out, rt.Stats()
}

func parse(t *testing.T, src string) *ir.Func {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func checkSquares(t *testing.T, out []int64) {
	t.Helper()
	for i, v := range out {
		if v != int64(i*i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestCopyLoopUnoptimized(t *testing.T) {
	f := parse(t, copyLoop)
	out, st := runCopyLoop(t, f, core.ConfigStatic, 50)
	checkSquares(t, out)
	// Naive code: one sync per read plus the header and exit syncs.
	if st.SyncsPerformed != 52 {
		t.Errorf("SyncsPerformed = %d, want 52", st.SyncsPerformed)
	}
}

func TestCopyLoopAfterCoalescing(t *testing.T) {
	f := parse(t, copyLoop)
	res, err := passes.Coalesce(f)
	if err != nil {
		t.Fatal(err)
	}
	out, st := runCopyLoop(t, res.Func, core.ConfigStatic, 50)
	checkSquares(t, out)
	// The pass leaves exactly one sync; LocalQuery would have panicked
	// if the elision were unsound.
	if st.SyncsPerformed != 1 {
		t.Errorf("SyncsPerformed = %d, want 1 after static coalescing", st.SyncsPerformed)
	}
}

func TestCopyLoopDynamicElision(t *testing.T) {
	// Without the pass but with dynamic coalescing, the redundant syncs
	// are elided at run time instead.
	f := parse(t, copyLoop)
	out, st := runCopyLoop(t, f, core.ConfigDynamic, 50)
	checkSquares(t, out)
	if st.SyncsPerformed != 1 {
		t.Errorf("SyncsPerformed = %d, want 1 under dynamic elision", st.SyncsPerformed)
	}
	if st.SyncsElided != 51 {
		t.Errorf("SyncsElided = %d, want 51", st.SyncsElided)
	}
}

// The soundness backstop: IR in which a qlocal is reachable without a
// sync must make the runtime panic rather than race.
func TestUnsoundQLocalCaught(t *testing.T) {
	src := `func bad() handlers(h) arrays() {
entry:
  v = qlocal h get(0)
  ret v
}
`
	f := parse(t, src)
	rt := core.New(core.ConfigStatic)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	c.Separate(h, func(s *core.Session) {
		defer func() {
			if r := recover(); r == nil {
				t.Error("qlocal without sync did not panic")
			}
		}()
		Run(f, &Env{ //nolint:errcheck // panics before returning
			Handlers: map[string]SessionOps{
				"h": HandlerBinding{Session: s, Methods: map[string]func([]int64) int64{
					"get": func([]int64) int64 { return 0 },
				}},
			},
		})
	})
}

// An async call between syncs interleaves correctly: the qlocal sees
// the async's effect because the sync drains the private queue first.
func TestAsyncThenQLocalSeesEffect(t *testing.T) {
	src := `func f(n) handlers(h) arrays() {
entry:
  async h add(n)
  async h add(n)
  sync h
  v = qlocal h get()
  ret v
}
`
	f := parse(t, src)
	rt := core.New(core.ConfigAll)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	var acc int64
	var got int64
	var err error
	c.Separate(h, func(s *core.Session) {
		got, err = Run(f, &Env{
			Ints: map[string]int64{"n": 21},
			Handlers: map[string]SessionOps{
				"h": HandlerBinding{Session: s, Methods: map[string]func([]int64) int64{
					"add": func(a []int64) int64 { acc += a[0]; return 0 },
					"get": func([]int64) int64 { return acc },
				}},
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestOpCallAndLocals(t *testing.T) {
	src := `func f(a, b) handlers() arrays() attr(double, readnone) {
entry:
  s = add a, b
  d = call double(s)
  ret d
}
`
	f := parse(t, src)
	got, err := Run(f, &Env{
		Ints:  map[string]int64{"a": 3, "b": 4},
		Funcs: map[string]func([]int64) int64{"double": func(a []int64) int64 { return 2 * a[0] }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 14 {
		t.Fatalf("got %d, want 14", got)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name, src string
		env       *Env
		want      string
	}{
		{"missing param", "func f(n) handlers() arrays() {\ne:\n  ret n\n}\n", &Env{}, "missing integer parameter"},
		{"missing handler", "func f() handlers(h) arrays() {\ne:\n  sync h\n  ret\n}\n", &Env{}, "missing handler binding"},
		{"missing array", "func f() handlers() arrays(x) {\ne:\n  v = load x, 0\n  ret v\n}\n", &Env{}, "missing array"},
		{"oob load", "func f() handlers() arrays(x) {\ne:\n  v = load x, 9\n  ret v\n}\n",
			&Env{Arrays: map[string][]int64{"x": make([]int64, 2)}}, "out of bounds"},
		{"oob store", "func f() handlers() arrays(x) {\ne:\n  store x, 9, 1\n  ret\n}\n",
			&Env{Arrays: map[string][]int64{"x": make([]int64, 2)}}, "out of bounds"},
		{"div zero", "func f() handlers() arrays() {\ne:\n  v = div 1, 0\n  ret v\n}\n", &Env{}, "division by zero"},
		{"undefined local", "func f() handlers() arrays() {\ne:\n  v = add q, 1\n  ret v\n}\n", &Env{}, "undefined local"},
		{"unknown func", "func f() handlers() arrays() {\ne:\n  call nope()\n  ret\n}\n", &Env{}, "unknown function"},
		{"infinite loop", "func f() handlers() arrays() {\ne:\n  jmp e\n}\n", &Env{MaxSteps: 10}, "step budget"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := parse(t, c.src)
			_, err := Run(f, c.env)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestStepBudgetCountsInstrs(t *testing.T) {
	src := `func f() handlers() arrays() {
e:
  a = const 1
  b = const 2
  c = add a, b
  ret c
}
`
	f := parse(t, src)
	// One block entry plus three instructions = four steps.
	if _, err := Run(f, &Env{MaxSteps: 3}); err == nil {
		t.Fatal("expected step-budget error")
	}
	v, err := Run(f, &Env{MaxSteps: 4})
	if err != nil || v != 3 {
		t.Fatalf("got %d, %v", v, err)
	}
}
