package stm

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestReadWriteBasic(t *testing.T) {
	tv := NewTVar(10)
	got := Atomically(func(tx *Txn) any {
		v := tx.ReadInt(tv)
		tx.Write(tv, v+1)
		return tx.ReadInt(tv) // must see own write
	})
	if got.(int) != 11 {
		t.Fatalf("got %v, want 11", got)
	}
	if v := Atomically(func(tx *Txn) any { return tx.Read(tv) }); v.(int) != 11 {
		t.Fatalf("committed value = %v, want 11", v)
	}
}

func TestCounterSerializable(t *testing.T) {
	tv := NewTVar(0)
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				Void(func(tx *Txn) { tx.Write(tv, tx.ReadInt(tv)+1) })
			}
		}()
	}
	wg.Wait()
	got := Atomically(func(tx *Txn) any { return tx.Read(tv) }).(int)
	if got != workers*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*iters)
	}
}

// Invariant preservation: concurrent transfers between two accounts
// never create or destroy money, and no transaction observes a torn
// state.
func TestBankInvariant(t *testing.T) {
	a := NewTVar(500)
	b := NewTVar(500)
	stop := make(chan struct{})
	var bad atomic_bool
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			total := Atomically(func(tx *Txn) any {
				return tx.ReadInt(a) + tx.ReadInt(b)
			}).(int)
			if total != 1000 {
				bad.set()
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				amt := (w+i)%7 - 3
				Void(func(tx *Txn) {
					tx.Write(a, tx.ReadInt(a)-amt)
					tx.Write(b, tx.ReadInt(b)+amt)
				})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if bad.get() {
		t.Fatal("observer saw a torn transfer")
	}
	total := Atomically(func(tx *Txn) any { return tx.ReadInt(a) + tx.ReadInt(b) }).(int)
	if total != 1000 {
		t.Fatalf("total = %d, want 1000", total)
	}
}

func TestRetryBlocksUntilChange(t *testing.T) {
	tv := NewTVar(0)
	got := make(chan int, 1)
	go func() {
		got <- Atomically(func(tx *Txn) any {
			v := tx.ReadInt(tv)
			if v == 0 {
				tx.Retry()
			}
			return v
		}).(int)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("retry transaction completed before the variable changed")
	default:
	}
	Void(func(tx *Txn) { tx.Write(tv, 42) })
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("got %d, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry never woke up")
	}
}

func TestRetryWakesAllRelevantWaiters(t *testing.T) {
	gate := NewTVar(false)
	const n = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Void(func(tx *Txn) {
				if !tx.Read(gate).(bool) {
					tx.Retry()
				}
			})
		}()
	}
	time.Sleep(10 * time.Millisecond)
	Void(func(tx *Txn) { tx.Write(gate, true) })
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("not all retry waiters woke")
	}
}

func TestUserPanicPropagates(t *testing.T) {
	tv := NewTVar(1)
	defer func() {
		if r := recover(); r != "user" {
			t.Fatalf("recovered %v, want user panic", r)
		}
		// The failed transaction must not have committed.
		if v := Atomically(func(tx *Txn) any { return tx.Read(tv) }).(int); v != 1 {
			t.Fatalf("aborted txn committed: %d", v)
		}
	}()
	Void(func(tx *Txn) {
		tx.Write(tv, 99)
		panic("user")
	})
}

func TestConflictingWritersAllCommit(t *testing.T) {
	// Two TVars written in opposite orders by different goroutines:
	// id-ordered commit locking must not deadlock.
	x := NewTVar(0)
	y := NewTVar(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if w%2 == 0 {
					Void(func(tx *Txn) {
						tx.Write(x, tx.ReadInt(x)+1)
						tx.Write(y, tx.ReadInt(y)+1)
					})
				} else {
					Void(func(tx *Txn) {
						tx.Write(y, tx.ReadInt(y)+1)
						tx.Write(x, tx.ReadInt(x)+1)
					})
				}
			}
		}(w)
	}
	wg.Wait()
	gx := Atomically(func(tx *Txn) any { return tx.Read(x) }).(int)
	gy := Atomically(func(tx *Txn) any { return tx.Read(y) }).(int)
	if gx != 8000 || gy != 8000 {
		t.Fatalf("x=%d y=%d, want 8000 each", gx, gy)
	}
}

// Property: a sequence of single-threaded transactional ops equals the
// same ops on a plain map.
func TestQuickSequentialEquivalence(t *testing.T) {
	f := func(ops []uint8) bool {
		tvs := []*TVar{NewTVar(0), NewTVar(0), NewTVar(0)}
		ref := []int{0, 0, 0}
		for i, op := range ops {
			k := int(op) % 3
			delta := int(op)/3%5 - 2
			Void(func(tx *Txn) { tx.Write(tvs[k], tx.ReadInt(tvs[k])+delta) })
			ref[k] += delta
			_ = i
		}
		for k := range tvs {
			got := Atomically(func(tx *Txn) any { return tx.Read(tvs[k]) }).(int)
			if got != ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// tiny atomic bool helper to avoid importing sync/atomic in tests twice
type atomic_bool struct {
	mu sync.Mutex
	v  bool
}

func (b *atomic_bool) set() { b.mu.Lock(); b.v = true; b.mu.Unlock() }
func (b *atomic_bool) get() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}
