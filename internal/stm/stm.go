// Package stm is a software transactional memory in the TL2 style: a
// global version clock, per-variable versioned values, optimistic
// reads validated at commit, write locks taken in a canonical order,
// and a blocking Retry that waits until some variable in the
// transaction's read set changes.
//
// It is the substrate standing in for Haskell's STM in the paper's
// language comparison: every transactional operation pays the
// bookkeeping of read/write-set maintenance and commit-time
// validation, which is precisely the cost profile the paper attributes
// to Haskell on the coordination benchmarks ("an extra level of
// bookkeeping on every operation").
package stm

import (
	"sort"
	"sync"
	"sync/atomic"
)

// clock is the global version clock shared by all TVars.
var clock atomic.Uint64

var tvarIDs atomic.Uint64

// versioned pairs a value with the commit version that wrote it, so
// readers get a consistent (value, version) snapshot from one atomic
// load.
type versioned struct {
	val     any
	version uint64
}

// TVar is a transactional variable. Create with NewTVar; access only
// through Read/Write inside Atomically.
type TVar struct {
	id      uint64
	mu      sync.Mutex // commit lock
	cur     atomic.Pointer[versioned]
	wmu     sync.Mutex
	waiters []chan struct{}
}

// NewTVar returns a TVar holding initial.
func NewTVar(initial any) *TVar {
	tv := &TVar{id: tvarIDs.Add(1)}
	tv.cur.Store(&versioned{val: initial, version: clock.Load()})
	return tv
}

func (tv *TVar) addWaiter(ch chan struct{}) {
	tv.wmu.Lock()
	tv.waiters = append(tv.waiters, ch)
	tv.wmu.Unlock()
}

func (tv *TVar) removeWaiter(ch chan struct{}) {
	tv.wmu.Lock()
	for i, w := range tv.waiters {
		if w == ch {
			tv.waiters[i] = tv.waiters[len(tv.waiters)-1]
			tv.waiters = tv.waiters[:len(tv.waiters)-1]
			break
		}
	}
	tv.wmu.Unlock()
}

func (tv *TVar) notifyWaiters() {
	tv.wmu.Lock()
	for _, w := range tv.waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
	tv.wmu.Unlock()
}

// Txn is an in-flight transaction. It is only valid inside the function
// passed to Atomically and must not escape it or be shared between
// goroutines.
type Txn struct {
	rv     uint64 // read version: snapshot of the clock at txn start
	reads  map[*TVar]uint64
	writes map[*TVar]any
}

// control-flow sentinels raised by Read/Retry and caught by Atomically.
type conflictSignal struct{}
type retrySignal struct{}

// Read returns the value of tv as of this transaction.
func (tx *Txn) Read(tv *TVar) any {
	if v, ok := tx.writes[tv]; ok {
		return v
	}
	p := tv.cur.Load()
	if p.version > tx.rv {
		// The variable changed after we started: our snapshot is
		// stale. Abort and re-run with a fresh read version.
		panic(conflictSignal{})
	}
	tx.reads[tv] = p.version
	return p.val
}

// Write records a new value for tv, visible to this transaction's
// subsequent reads and published atomically at commit.
func (tx *Txn) Write(tv *TVar, v any) {
	tx.writes[tv] = v
}

// Retry aborts the transaction and blocks it until some variable it has
// read changes, then re-runs it (Haskell's retry).
func (tx *Txn) Retry() {
	panic(retrySignal{})
}

// ReadInt is a convenience for integer TVars.
func (tx *Txn) ReadInt(tv *TVar) int { return tx.Read(tv).(int) }

// Atomically runs f as a transaction: all of its reads see a consistent
// snapshot and its writes commit atomically, or f re-runs. The value
// returned by f is returned once a commit succeeds.
func Atomically(f func(tx *Txn) any) any {
	for {
		tx := &Txn{rv: clock.Load(), reads: map[*TVar]uint64{}, writes: map[*TVar]any{}}
		v, outcome := attempt(tx, f)
		switch outcome {
		case okOutcome:
			if tx.commit() {
				return v
			}
		case retryOutcome:
			tx.waitForChange()
		case conflictOutcome:
			// immediate re-run with a fresh snapshot
		}
	}
}

// Void runs a transaction that yields no value.
func Void(f func(tx *Txn)) {
	Atomically(func(tx *Txn) any { f(tx); return nil })
}

type outcome uint8

const (
	okOutcome outcome = iota
	retryOutcome
	conflictOutcome
)

func attempt(tx *Txn, f func(tx *Txn) any) (v any, oc outcome) {
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case conflictSignal:
				oc = conflictOutcome
			case retrySignal:
				oc = retryOutcome
			default:
				panic(r) // user panic: propagate
			}
		}
	}()
	return f(tx), okOutcome
}

// commit validates the read set and publishes the write set, locking
// written variables in id order (deadlock-free) and bumping the global
// clock.
func (tx *Txn) commit() bool {
	if len(tx.writes) == 0 {
		// Read-only transactions validated incrementally in Read: if
		// every read version was <= rv, the whole read set was a
		// consistent snapshot at rv.
		return true
	}
	locked := make([]*TVar, 0, len(tx.writes))
	for tv := range tx.writes {
		locked = append(locked, tv)
	}
	sort.Slice(locked, func(i, j int) bool { return locked[i].id < locked[j].id })
	for _, tv := range locked {
		tv.mu.Lock()
	}
	unlock := func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].mu.Unlock()
		}
	}
	// Validate: every variable we read must still be at the version we
	// saw (writes by others bump versions, and writers hold the lock
	// while publishing, which we now hold for our own write set).
	for tv, ver := range tx.reads {
		if tv.cur.Load().version != ver {
			unlock()
			return false
		}
	}
	wv := clock.Add(1)
	for _, tv := range locked {
		tv.cur.Store(&versioned{val: tx.writes[tv], version: wv})
	}
	unlock()
	for _, tv := range locked {
		tv.notifyWaiters()
	}
	return true
}

// waitForChange blocks until any TVar in the read set is written by a
// committed transaction, implementing Retry.
func (tx *Txn) waitForChange() {
	if len(tx.reads) == 0 {
		// A retry with an empty read set would sleep forever; re-run
		// immediately (degenerate, same as GHC's busy behaviour).
		return
	}
	ch := make(chan struct{}, 1)
	vars := make([]*TVar, 0, len(tx.reads))
	for tv := range tx.reads {
		vars = append(vars, tv)
		tv.addWaiter(ch)
	}
	// Re-validate after registering: a change between our read and the
	// registration must not be missed.
	changed := false
	for tv, ver := range tx.reads {
		if tv.cur.Load().version != ver {
			changed = true
			break
		}
	}
	if !changed {
		<-ch
	}
	for _, tv := range vars {
		tv.removeWaiter(ch)
	}
}
