package stm

import (
	"sync"
	"testing"
)

// Snapshot isolation for read-only transactions: a reader that sees x
// must see the matching y even while writers continuously update both
// together.
func TestReadOnlySnapshotIsolation(t *testing.T) {
	x := NewTVar(0)
	y := NewTVar(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: keeps x == y
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			Void(func(tx *Txn) {
				tx.Write(x, i)
				tx.Write(y, i)
			})
		}
	}()

	for i := 0; i < 5000; i++ {
		pair := Atomically(func(tx *Txn) any {
			return [2]int{tx.ReadInt(x), tx.ReadInt(y)}
		}).([2]int)
		if pair[0] != pair[1] {
			close(stop)
			wg.Wait()
			t.Fatalf("torn snapshot: x=%d y=%d", pair[0], pair[1])
		}
	}
	close(stop)
	wg.Wait()
}

// A transaction that writes without reading still serializes with
// read-modify-write transactions on the same variable (blind writes
// must not resurrect overwritten state).
func TestBlindWritesSerialize(t *testing.T) {
	v := NewTVar(0)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			Void(func(tx *Txn) { tx.Write(v, tx.ReadInt(v)+1) })
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			Void(func(tx *Txn) { tx.Write(v, 0) }) // blind reset
		}
	}()
	wg.Wait()
	got := Atomically(func(tx *Txn) any { return tx.Read(v) }).(int)
	if got < 0 || got > 2000 {
		t.Fatalf("impossible final value %d", got)
	}
}

// Nested Atomically calls are independent transactions (no nesting
// semantics promised, but they must not corrupt each other's sets).
func TestIndependentSequentialTxns(t *testing.T) {
	a := NewTVar(1)
	b := NewTVar(2)
	sum := Atomically(func(tx *Txn) any {
		av := tx.ReadInt(a)
		inner := Atomically(func(tx2 *Txn) any { return tx2.ReadInt(b) }).(int)
		return av + inner
	}).(int)
	if sum != 3 {
		t.Fatalf("sum = %d, want 3", sum)
	}
}
