package queue

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSPSCOrder(t *testing.T) {
	q := NewSPSC[int](0)
	const n = 100000
	go func() {
		for i := 0; i < n; i++ {
			q.Enqueue(i)
		}
		q.Close()
	}()
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok {
			t.Fatalf("queue closed early at %d", i)
		}
		if v != i {
			t.Fatalf("got %d, want %d (FIFO violated)", v, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue after drain+close returned ok")
	}
}

func TestSPSCTryDequeueEmpty(t *testing.T) {
	q := NewSPSC[string](0)
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("TryDequeue on empty queue returned ok")
	}
	q.Enqueue("a")
	v, ok := q.TryDequeue()
	if !ok || v != "a" {
		t.Fatalf("got %q,%v want a,true", v, ok)
	}
}

func TestSPSCCloseReleasesBlockedConsumer(t *testing.T) {
	q := NewSPSC[int](0)
	done := make(chan bool)
	go func() {
		_, ok := q.Dequeue()
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Dequeue on closed empty queue returned ok=true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release blocked consumer")
	}
}

func TestSPSCDrainsBeforeClosedReport(t *testing.T) {
	q := NewSPSC[int](0)
	q.Enqueue(1)
	q.Enqueue(2)
	q.Close()
	for want := 1; want <= 2; want++ {
		v, ok := q.Dequeue()
		if !ok || v != want {
			t.Fatalf("got %d,%v want %d,true", v, ok, want)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("expected closed after drain")
	}
}

func TestSPSCEnqueueAfterClosePanics(t *testing.T) {
	q := NewSPSC[int](0)
	q.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.Enqueue(1)
}

// Property: for any sequence of values, SPSC yields exactly that
// sequence.
func TestSPSCQuickFIFO(t *testing.T) {
	f := func(vals []int64) bool {
		q := NewSPSC[int64](4)
		go func() {
			for _, v := range vals {
				q.Enqueue(v)
			}
			q.Close()
		}()
		for _, want := range vals {
			got, ok := q.Dequeue()
			if !ok || got != want {
				return false
			}
		}
		_, ok := q.Dequeue()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMPSCSingleProducerOrder(t *testing.T) {
	q := NewMPSC[int](0)
	const n = 100000
	go func() {
		for i := 0; i < n; i++ {
			q.Enqueue(i)
		}
		q.Close()
	}()
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("got %d,%v want %d,true", v, ok, i)
		}
	}
}

type tagged struct {
	producer int
	seq      int
}

// Per-producer FIFO with no loss and no duplication: the guarantee the
// queue-of-queues relies on for the separate rule.
func TestMPSCManyProducers(t *testing.T) {
	q := NewMPSC[tagged](0)
	const producers = 8
	const perProducer = 20000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(tagged{p, i})
			}
		}(p)
	}
	go func() {
		wg.Wait()
		q.Close()
	}()
	next := make([]int, producers)
	total := 0
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if v.seq != next[v.producer] {
			t.Fatalf("producer %d: got seq %d, want %d", v.producer, v.seq, next[v.producer])
		}
		next[v.producer]++
		total++
	}
	if total != producers*perProducer {
		t.Fatalf("received %d items, want %d", total, producers*perProducer)
	}
}

func TestMPSCCloseReleasesConsumer(t *testing.T) {
	q := NewMPSC[int](0)
	done := make(chan bool)
	go func() {
		_, ok := q.Dequeue()
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("expected ok=false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked consumer not released")
	}
}

func TestMPSCTryDequeue(t *testing.T) {
	q := NewMPSC[int](0)
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("TryDequeue on empty returned ok")
	}
	q.Enqueue(7)
	if v, ok := q.TryDequeue(); !ok || v != 7 {
		t.Fatalf("got %d,%v want 7,true", v, ok)
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestMPSCStressInterleaved(t *testing.T) {
	// Producers enqueue while the consumer drains concurrently; checks
	// total counts only (ordering across producers is unspecified).
	q := NewMPSC[int](1)
	const producers = 16
	const perProducer = 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(1)
			}
		}()
	}
	go func() {
		wg.Wait()
		q.Close()
	}()
	sum := 0
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		sum += v
	}
	if sum != producers*perProducer {
		t.Fatalf("sum=%d want %d", sum, producers*perProducer)
	}
}

func BenchmarkSPSCPingPong(b *testing.B) {
	q := NewSPSC[int](0)
	back := NewSPSC[int](0)
	go func() {
		for {
			v, ok := q.Dequeue()
			if !ok {
				back.Close()
				return
			}
			back.Enqueue(v)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(i)
		back.Dequeue()
	}
	b.StopTimer()
	q.Close()
}

func BenchmarkMPSCEnqueue(b *testing.B) {
	q := NewMPSC[int](0)
	go func() {
		for {
			if _, ok := q.Dequeue(); !ok {
				return
			}
		}
	}()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Enqueue(1)
		}
	})
	b.StopTimer()
	q.Close()
}

// TestMPSCRecyclesNodes pins the reservation hot path's allocation
// profile: a single producer paced by the consumer must reuse nodes
// (the Vyukov producer-side harvest) instead of allocating one per
// enqueue.
func TestMPSCRecyclesNodes(t *testing.T) {
	q := NewMPSC[int](1)
	// Warm up: create the first real node and publish a position.
	q.Enqueue(0)
	q.TryDequeue()
	allocs := testing.AllocsPerRun(1000, func() {
		q.Enqueue(1)
		if _, ok := q.TryDequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	})
	if allocs > 0.1 {
		t.Fatalf("paced enqueue/dequeue allocates %.2f allocs/op, want ~0", allocs)
	}
}

// Recycling must not break correctness when producers race the
// harvest lock: hammer the queue from many producers and check every
// item arrives exactly once in per-producer order.
func TestMPSCRecycleManyProducers(t *testing.T) {
	const producers, per = 8, 5000
	q := NewMPSC[[2]int](1)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue([2]int{p, i})
			}
		}()
	}
	go func() {
		wg.Wait()
		q.Close()
	}()
	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	total := 0
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if v[1] != last[v[0]]+1 {
			t.Fatalf("producer %d: item %d after %d (per-producer FIFO broken)", v[0], v[1], last[v[0]])
		}
		last[v[0]] = v[1]
		total++
	}
	if total != producers*per {
		t.Fatalf("consumed %d items, want %d", total, producers*per)
	}
}
