package queue

import (
	"sync/atomic"
	"testing"
)

// With a notify hook installed, every enqueue must invoke the hook and
// the consumer must be able to drain with TryDequeue alone.
func TestMPSCNotifyHook(t *testing.T) {
	q := NewMPSC[int](0)
	var pokes atomic.Int64
	q.SetNotify(func() { pokes.Add(1) })
	for i := 0; i < 10; i++ {
		q.Enqueue(i)
	}
	if got := pokes.Load(); got != 10 {
		t.Fatalf("notify ran %d times, want 10", got)
	}
	for i := 0; i < 10; i++ {
		v, ok := q.TryDequeue()
		if !ok || v != i {
			t.Fatalf("TryDequeue #%d = (%d,%v)", i, v, ok)
		}
	}
	q.Close()
	if pokes.Load() != 11 {
		t.Fatalf("Close did not notify (pokes=%d)", pokes.Load())
	}
}

func TestMPSCTryEnqueueClosed(t *testing.T) {
	q := NewMPSC[int](0)
	if !q.TryEnqueue(1) {
		t.Fatal("TryEnqueue on open queue failed")
	}
	if q.Closed() {
		t.Fatal("Closed() true before Close")
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if q.TryEnqueue(2) {
		t.Fatal("TryEnqueue on closed queue succeeded")
	}
	// The pre-close item must still drain.
	if v, ok := q.TryDequeue(); !ok || v != 1 {
		t.Fatalf("drain after close = (%d,%v), want (1,true)", v, ok)
	}
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("rejected item was enqueued anyway")
	}
}

func TestMPSCEnqueueClosedStillPanics(t *testing.T) {
	q := NewMPSC[int](0)
	q.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Enqueue on closed MPSC did not panic")
		}
	}()
	q.Enqueue(1)
}

func TestSPSCNotifyHook(t *testing.T) {
	q := NewSPSC[string](0)
	var pokes atomic.Int64
	q.SetNotify(func() { pokes.Add(1) })
	q.Enqueue("a")
	q.Enqueue("b")
	if got := pokes.Load(); got != 2 {
		t.Fatalf("notify ran %d times, want 2", got)
	}
	if v, ok := q.TryDequeue(); !ok || v != "a" {
		t.Fatalf("TryDequeue = (%q,%v)", v, ok)
	}
	q.Close()
	if pokes.Load() != 3 {
		t.Fatalf("Close did not notify (pokes=%d)", pokes.Load())
	}
	if v, ok := q.TryDequeue(); !ok || v != "b" {
		t.Fatalf("drain after close = (%q,%v)", v, ok)
	}
}
