package queue

import (
	"sync/atomic"

	"scoopqs/internal/sched"
)

type mpscNode[T any] struct {
	next atomic.Pointer[mpscNode[T]]
	v    T
}

// MPSC is an unbounded multiple-producer single-consumer queue in the
// style of Vyukov's intrusive MPSC queue. Any number of goroutines may
// Enqueue; exactly one may Dequeue. Producers never block and are
// wait-free apart from one atomic exchange. The consumer observes each
// producer's items in that producer's order (per-producer FIFO), which
// is exactly the guarantee the queue-of-queues needs.
//
// The zero value is not usable; use NewMPSC.
type MPSC[T any] struct {
	headP  atomic.Pointer[mpscNode[T]] // producers swap here (newest node)
	parker *sched.Parker
	closed atomic.Bool
	spin   int

	_     [32]byte     // separate the consumer's line from the producers'
	tailC *mpscNode[T] // consumer-owned: most recently consumed node
}

// NewMPSC returns an empty queue. spin is the number of empty polls the
// consumer performs before parking; 0 selects sched.DefaultSpin.
func NewMPSC[T any](spin int) *MPSC[T] {
	if spin <= 0 {
		spin = sched.DefaultSpin
	}
	stub := &mpscNode[T]{}
	q := &MPSC[T]{tailC: stub, parker: sched.NewParker(), spin: spin}
	q.headP.Store(stub)
	return q
}

// Enqueue appends v. Safe for concurrent use by many producers; never
// blocks. Enqueue on a closed queue panics.
func (q *MPSC[T]) Enqueue(v T) {
	if q.closed.Load() {
		panic("queue: Enqueue on closed MPSC")
	}
	n := &mpscNode[T]{v: v}
	prev := q.headP.Swap(n) // serialization point
	prev.next.Store(n)      // publish; the chain is briefly broken between these
	q.parker.Unpark()
}

// Close marks the end of the stream: once drained, Dequeue reports
// ok=false. Any goroutine may call Close; it is idempotent. Producers
// must not Enqueue after Close.
func (q *MPSC[T]) Close() {
	q.closed.Store(true)
	q.parker.Unpark()
}

// TryDequeue removes the head item without blocking. ok=false means the
// queue is momentarily empty, a producer is mid-enqueue, or the queue is
// closed and drained; use Dequeue to distinguish.
func (q *MPSC[T]) TryDequeue() (v T, ok bool) {
	tail := q.tailC
	next := tail.next.Load()
	if next == nil {
		if q.headP.Load() == tail {
			return v, false // truly empty
		}
		// A producer swapped headP but has not linked prev.next yet.
		// The link is one store away; spin for it.
		for i := 0; next == nil; i++ {
			sched.SpinWait(i)
			next = tail.next.Load()
		}
	}
	v = next.v
	var zero T
	next.v = zero
	q.tailC = next
	return v, true
}

// Dequeue removes the head item, blocking while the queue is empty and
// open. ok=false means the queue is closed and fully drained.
func (q *MPSC[T]) Dequeue() (v T, ok bool) {
	for i := 0; ; i++ {
		if v, ok = q.TryDequeue(); ok {
			return v, true
		}
		if q.closed.Load() {
			if v, ok = q.TryDequeue(); ok {
				return v, true
			}
			return v, false
		}
		if i < q.spin {
			sched.SpinWait(i)
			continue
		}
		q.parker.Park()
		i = 0
	}
}

// Empty reports whether the queue currently appears empty. Advisory
// only.
func (q *MPSC[T]) Empty() bool {
	tail := q.tailC
	return tail.next.Load() == nil && q.headP.Load() == tail
}
