package queue

import (
	"sync/atomic"

	"scoopqs/internal/sched"
)

type mpscNode[T any] struct {
	next atomic.Pointer[mpscNode[T]]
	v    T
}

// MPSC is an unbounded multiple-producer single-consumer queue in the
// style of Vyukov's intrusive MPSC queue. Any number of goroutines may
// Enqueue; exactly one may Dequeue. Producers never block and are
// wait-free apart from one atomic exchange. The consumer observes each
// producer's items in that producer's order (per-producer FIFO), which
// is exactly the guarantee the queue-of-queues needs.
//
// Nodes are recycled with the same Vyukov scheme the SPSC queue uses:
// consumed nodes stay linked in the chain, the consumer publishes its
// position (pos), and producers harvest nodes strictly behind it
// before allocating fresh ones. Because many producers race for the
// chain head, the harvest window is guarded by a spinlock taken with
// TryLock only — a producer that loses the race allocates instead of
// waiting, so the enqueue path stays non-blocking. In steady state
// (the reservation hot path: one enqueue, one dequeue) every enqueue
// reuses a node and allocates nothing.
//
// The zero value is not usable; use NewMPSC.
type MPSC[T any] struct {
	headP    atomic.Pointer[mpscNode[T]] // producers swap here (newest node)
	inflight atomic.Int64                // producers inside TryEnqueue
	parker   *sched.Parker
	closed   atomic.Bool
	spin     int
	notify   func() // set before use; replaces parker wakeups when non-nil

	// Producer-side free list: first is the oldest node not yet
	// reclaimed, fenced by the consumer's published position. reclaim
	// arbitrates the racing producers (TryLock only — never held while
	// waiting for anything).
	reclaim sched.SpinLock
	first   *mpscNode[T]

	// pos is the consumer's published chain position: every node
	// strictly before it has been consumed and may be reused.
	pos atomic.Pointer[mpscNode[T]]

	_     [32]byte     // separate the consumer's line from the producers'
	tailC *mpscNode[T] // consumer-owned: most recently consumed node
}

// NewMPSC returns an empty queue. spin is the number of empty polls the
// consumer performs before parking; 0 selects sched.DefaultSpin.
func NewMPSC[T any](spin int) *MPSC[T] {
	if spin <= 0 {
		spin = sched.DefaultSpin
	}
	stub := &mpscNode[T]{}
	q := &MPSC[T]{tailC: stub, first: stub, parker: sched.NewParker(), spin: spin}
	q.headP.Store(stub)
	q.pos.Store(stub)
	return q
}

// newNode returns a node holding v, harvesting the oldest consumed
// node when the consumer's published position has moved past it. A
// node equal to pos is never taken (the consumer may still read its
// next link), and a producer that cannot get the harvest lock
// allocates rather than spin.
func (q *MPSC[T]) newNode(v T) *mpscNode[T] {
	if q.reclaim.TryLock() {
		if nd := q.first; nd != q.pos.Load() {
			// nd is strictly behind the consumer: it has been consumed,
			// its next link is final, and the consumer will never touch
			// it again.
			q.first = nd.next.Load()
			q.reclaim.Unlock()
			nd.next.Store(nil)
			nd.v = v
			return nd
		}
		q.reclaim.Unlock()
	}
	return &mpscNode[T]{v: v}
}

// SetNotify installs a became-non-empty notification hook: every
// Enqueue (and Close) invokes fn instead of unparking a dedicated
// consumer, so an external scheduler can make the consumer runnable
// rather than waking a parked goroutine. The consumer must then poll
// with TryDequeue — blocking Dequeue would never be woken. SetNotify
// must be called before the queue is shared; fn must be non-blocking
// and safe to call concurrently and spuriously.
func (q *MPSC[T]) SetNotify(fn func()) { q.notify = fn }

// wake signals the consumer after a state change.
func (q *MPSC[T]) wake() {
	if q.notify != nil {
		q.notify()
		return
	}
	q.parker.Unpark()
}

// Enqueue appends v. Safe for concurrent use by many producers; never
// blocks. Enqueue on a closed queue panics.
func (q *MPSC[T]) Enqueue(v T) {
	if !q.TryEnqueue(v) {
		panic("queue: Enqueue on closed MPSC")
	}
}

// TryEnqueue appends v unless the queue is closed, in which case it
// reports false and leaves the queue untouched. An enqueue racing
// Close may still be accepted; Quiesced lets the consumer wait out
// such in-flight producers before treating the queue as finished.
func (q *MPSC[T]) TryEnqueue(v T) bool {
	return q.tryEnqueue(v, true)
}

// TryEnqueueNoNotify is TryEnqueue without the success-side
// became-non-empty notification, for producers that deliver a more
// specific wake themselves (the scheduler's local-push path passes the
// producing worker along). The rejection-side wake still fires — a
// consumer deciding whether to retire must re-evaluate regardless of
// who would have delivered the success wake.
func (q *MPSC[T]) TryEnqueueNoNotify(v T) bool {
	return q.tryEnqueue(v, false)
}

func (q *MPSC[T]) tryEnqueue(v T, notify bool) bool {
	q.inflight.Add(1)
	if q.closed.Load() {
		q.inflight.Add(-1)
		// A consumer deciding whether to retire may have observed our
		// in-flight mark; wake it so it re-evaluates.
		q.wake()
		return false
	}
	n := q.newNode(v)
	prev := q.headP.Swap(n) // serialization point
	prev.next.Store(n)      // publish; the chain is briefly broken between these
	q.inflight.Add(-1)
	if notify {
		q.wake()
	}
	return true
}

// Close marks the end of the stream: once drained, Dequeue reports
// ok=false. Any goroutine may call Close; it is idempotent. Producers
// must not Enqueue after Close.
func (q *MPSC[T]) Close() {
	q.closed.Store(true)
	q.wake()
}

// Closed reports whether Close has been called. A closed queue may
// still hold undrained items.
func (q *MPSC[T]) Closed() bool { return q.closed.Load() }

// Quiesced reports whether the queue is closed, has no producer
// mid-enqueue, and is empty — i.e. no item can ever appear again, so
// the consumer may retire. The check order matters: once closed is
// observed true, any producer whose in-flight mark we missed must
// itself observe closed and reject, and any producer that slipped an
// item in before our in-flight read has already published it, so the
// final emptiness check sees it.
func (q *MPSC[T]) Quiesced() bool {
	return q.closed.Load() && q.inflight.Load() == 0 && q.Empty()
}

// TryDequeue removes the head item without blocking. ok=false means the
// queue is momentarily empty, a producer is mid-enqueue, or the queue is
// closed and drained; use Dequeue to distinguish.
func (q *MPSC[T]) TryDequeue() (v T, ok bool) {
	tail := q.tailC
	next := tail.next.Load()
	if next == nil {
		if q.headP.Load() == tail {
			return v, false // truly empty
		}
		// A producer swapped headP but has not linked prev.next yet.
		// The link is one store away; spin for it.
		for i := 0; next == nil; i++ {
			sched.SpinWait(i)
			next = tail.next.Load()
		}
	}
	v = next.v
	var zero T
	next.v = zero
	q.tailC = next
	// Publish the new position; nodes strictly behind it are done and
	// may be harvested by producers.
	q.pos.Store(next)
	return v, true
}

// Dequeue removes the head item, blocking while the queue is empty and
// open. ok=false means the queue is closed and fully drained.
func (q *MPSC[T]) Dequeue() (v T, ok bool) {
	for i := 0; ; i++ {
		if v, ok = q.TryDequeue(); ok {
			return v, true
		}
		if q.Quiesced() {
			return v, false
		}
		if i < q.spin {
			sched.SpinWait(i)
			continue
		}
		q.parker.Park()
		i = 0
	}
}

// Empty reports whether the queue currently appears empty. Advisory
// only.
func (q *MPSC[T]) Empty() bool {
	tail := q.tailC
	return tail.next.Load() == nil && q.headP.Load() == tail
}
