// Package queue implements the two specialized lock-free queues the
// SCOOP/Qs runtime is built from (§3.1 of the paper):
//
//   - SPSC: a single-producer single-consumer unbounded queue used as
//     the private queue between one client and one handler. The client
//     enqueues calls; the handler dequeues and executes them.
//   - MPSC: a multiple-producer single-consumer unbounded queue used as
//     the queue-of-queues. Many clients enqueue their private queues;
//     only the owning handler dequeues.
//
// Both queues are unbounded linked queues in the style of Vyukov's
// non-intrusive queues. Producers never block. The consumer blocks
// (spin-then-park) when the queue is empty, and Close releases a
// blocked consumer: Dequeue then reports ok=false once the queue is
// drained, matching the paper's handler loop in which a false dequeue
// means "no more work / shut down", not "momentarily empty".
package queue

import (
	"sync/atomic"

	"scoopqs/internal/sched"
)

type spscNode[T any] struct {
	next atomic.Pointer[spscNode[T]]
	v    T
}

// SPSC is an unbounded single-producer single-consumer queue.
// Exactly one goroutine may call Enqueue/Close and exactly one may call
// Dequeue/TryDequeue. The zero value is not usable; use NewSPSC.
//
// Nodes are recycled Vyukov-style with no side structure at all:
// consumed nodes stay linked in the chain, the consumer publishes its
// position (pos), and the producer harvests everything strictly behind
// it before allocating fresh nodes. The request hot path is therefore
// allocation-free in steady state — one atomic load decides reuse — at
// the cost of retaining nodes up to the queue's backlog high-water
// mark (the node-level version of the paper's "cache of queues";
// queues here are per-session and die with their client's cache).
type SPSC[T any] struct {
	head   *spscNode[T] // consumer-owned: most recently consumed node
	parker *sched.Parker
	closed atomic.Bool
	spin   int
	notify func() // set before use; replaces parker wakeups when non-nil

	// pos is the consumer's published chain position: every node
	// strictly before it has been consumed and may be reused.
	pos atomic.Pointer[spscNode[T]]

	_     [32]byte     // keep producer fields off the consumer's cache line
	tail  *spscNode[T] // producer-owned: last enqueued node
	first *spscNode[T] // producer-owned: oldest node not yet reclaimed
}

// NewSPSC returns an empty queue. spin is the number of empty polls the
// consumer performs before parking; 0 selects sched.DefaultSpin.
func NewSPSC[T any](spin int) *SPSC[T] {
	if spin <= 0 {
		spin = sched.DefaultSpin
	}
	stub := &spscNode[T]{}
	q := &SPSC[T]{head: stub, tail: stub, first: stub, parker: sched.NewParker(), spin: spin}
	q.pos.Store(stub)
	return q
}

// newNode returns a node holding v, reusing the oldest consumed node
// when the consumer's published position has moved past it. Producer
// only.
func (q *SPSC[T]) newNode(v T) *spscNode[T] {
	if nd := q.first; nd != q.pos.Load() {
		// nd is strictly behind the consumer: reclaim it. Its next link
		// is non-nil (the chain continues at least to pos).
		q.first = nd.next.Load()
		nd.next.Store(nil)
		nd.v = v
		return nd
	}
	return &spscNode[T]{v: v}
}

// SetNotify installs a became-non-empty notification hook: every
// Enqueue (and Close) invokes fn instead of unparking a dedicated
// consumer, so an external scheduler can make the consumer runnable
// rather than waking a parked goroutine. The consumer must then poll
// with TryDequeue — blocking Dequeue would never be woken. SetNotify
// must be called before the queue is shared; fn must be non-blocking
// and safe to call spuriously.
func (q *SPSC[T]) SetNotify(fn func()) { q.notify = fn }

// wake signals the consumer after a state change.
func (q *SPSC[T]) wake() {
	if q.notify != nil {
		q.notify()
		return
	}
	q.parker.Unpark()
}

// Enqueue appends v. It never blocks. Enqueue after Close panics.
func (q *SPSC[T]) Enqueue(v T) {
	if q.closed.Load() {
		panic("queue: Enqueue on closed SPSC")
	}
	n := q.newNode(v)
	q.tail.next.Store(n) // publish
	q.tail = n
	q.wake()
}

// Close marks the end of the stream. The consumer drains remaining
// items and then Dequeue reports ok=false. Only the producer may call
// Close. Close is idempotent.
func (q *SPSC[T]) Close() {
	q.closed.Store(true)
	q.wake()
}

// TryDequeue removes the head item without blocking. ok is false if the
// queue is momentarily empty or closed-and-drained.
func (q *SPSC[T]) TryDequeue() (v T, ok bool) {
	next := q.head.next.Load()
	if next == nil {
		return v, false
	}
	v = next.v
	var zero T
	next.v = zero
	q.head = next
	// Publish the new position; the old head is now strictly behind it
	// and the producer may reclaim it.
	q.pos.Store(next)
	return v, true
}

// Dequeue removes the head item, blocking while the queue is empty and
// open. ok=false means the queue is closed and fully drained.
func (q *SPSC[T]) Dequeue() (v T, ok bool) {
	for i := 0; ; i++ {
		if v, ok = q.TryDequeue(); ok {
			return v, true
		}
		if q.closed.Load() {
			// Re-check after observing closed: the producer may have
			// enqueued right before closing.
			if v, ok = q.TryDequeue(); ok {
				return v, true
			}
			return v, false
		}
		if i < q.spin {
			sched.SpinWait(i)
			continue
		}
		q.parker.Park()
		i = 0
	}
}

// Empty reports whether the queue currently has no items. Only advisory:
// a producer may be enqueueing concurrently.
func (q *SPSC[T]) Empty() bool {
	return q.head.next.Load() == nil
}
