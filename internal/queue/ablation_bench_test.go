package queue

import (
	"testing"

	"scoopqs/internal/sched"
)

// Ablation: the specialized queues against buffered Go channels, the
// natural alternative substrate. The paper's §3.1 argues that
// specializing the queue-of-queues (MPSC) and the private queues
// (SPSC) matters because they sit on every client-handler interaction.

func BenchmarkAblationSPSCvsChannel(b *testing.B) {
	b.Run("SPSC", func(b *testing.B) {
		q := NewSPSC[int](0)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				if _, ok := q.Dequeue(); !ok {
					return
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(i)
		}
		q.Close()
		<-done
	})
	b.Run("channel", func(b *testing.B) {
		ch := make(chan int, 1024)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range ch {
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ch <- i
		}
		close(ch)
		<-done
	})
}

func BenchmarkAblationMPSCvsChannel(b *testing.B) {
	b.Run("MPSC", func(b *testing.B) {
		q := NewMPSC[int](0)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				if _, ok := q.Dequeue(); !ok {
					return
				}
			}
		}()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q.Enqueue(1)
			}
		})
		b.StopTimer()
		q.Close()
		<-done
	})
	b.Run("channel", func(b *testing.B) {
		ch := make(chan int, 1024)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range ch {
			}
		}()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				ch <- 1
			}
		})
		b.StopTimer()
		close(ch)
		<-done
	})
}

// Ablation: consumer spin count before parking. The sync handshake of
// a query round-trips faster when the handler spins briefly instead of
// parking immediately.
func BenchmarkAblationSpinCount(b *testing.B) {
	for _, spin := range []int{1, 16, 128} {
		spin := spin
		name := "spin=1"
		switch spin {
		case 16:
			name = "spin=16"
		case 128:
			name = "spin=128"
		}
		b.Run(name, func(b *testing.B) {
			req := NewSPSC[int](spin)
			rsp := NewSPSC[int](spin)
			go func() {
				for {
					v, ok := req.Dequeue()
					if !ok {
						rsp.Close()
						return
					}
					rsp.Enqueue(v)
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req.Enqueue(i)
				rsp.Dequeue()
			}
			b.StopTimer()
			req.Close()
		})
	}
	_ = sched.DefaultSpin // the default sits between the ablation points
}
