package eve

import (
	"testing"
)

func TestVariantsProduceCorrectResults(t *testing.T) {
	for _, v := range []string{VariantEVE, VariantEVEQs, VariantQs} {
		v := v
		t.Run(v, func(t *testing.T) {
			// Run panics on corrupted results; completing is the check.
			r := Run(v, 2000, 3, 50)
			if r.Parallel <= 0 || r.Conc <= 0 {
				t.Fatalf("%s: non-positive timings %+v", v, r)
			}
		})
	}
}

func TestConfigMapping(t *testing.T) {
	if c := Config(VariantEVE); c.QoQ || c.DynElide || c.StaticElide {
		t.Error("EVE must be the unoptimized configuration")
	}
	if c := Config(VariantEVEQs); !c.QoQ || !c.DynElide || c.StaticElide {
		t.Error("EVE/Qs must be QoQ+Dynamic without Static (§4.5)")
	}
	if c := Config(VariantQs); !c.QoQ || !c.DynElide || !c.StaticElide {
		t.Error("Qs must be the full configuration")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown variant should panic")
		}
	}()
	Config("nonesuch")
}

// The §4.5 shape: EVE/Qs beats EVE on the pull-heavy workload (their
// parallel geomean was 7.7x), and the unhandicapped Qs runtime beats
// EVE/Qs in absolute terms.
func TestEveQsFasterThanEveOnPulls(t *testing.T) {
	const n = 30000
	eve := Run(VariantEVE, n, 2, 30)
	eveqs := Run(VariantEVEQs, n, 2, 30)
	qs := Run(VariantQs, n, 2, 30)

	if eveqs.Parallel >= eve.Parallel {
		t.Errorf("EVE/Qs (%v) not faster than EVE (%v) on the pull workload",
			eveqs.Parallel, eve.Parallel)
	}
	// Expect a large factor; be generous to CI noise (paper: 7.7x).
	if eve.Parallel < 2*eveqs.Parallel {
		t.Errorf("EVE/Qs speedup only %.2fx; expected well above 2x",
			float64(eve.Parallel)/float64(eveqs.Parallel))
	}
	if qs.Parallel >= eveqs.Parallel {
		t.Errorf("unhandicapped Qs (%v) not faster than EVE/Qs (%v); handicaps not biting",
			qs.Parallel, eveqs.Parallel)
	}
}

func TestHandlerLookupIsPerID(t *testing.T) {
	env := NewEnv(VariantEVE)
	defer env.Close()
	a := env.NewHandler("a")
	b := env.NewHandler("b")
	if env.Handler(a) == env.Handler(b) {
		t.Error("distinct ids resolved to the same handler")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown id should panic")
		}
	}()
	env.Handler(999)
}
