// Package eve reproduces the structure of the paper's §4.5: the Qs
// execution techniques ported into the EVE/EiffelStudio runtime
// (EVE/Qs) and compared against the production SCOOP runtime. The real
// experiment needs EiffelStudio; what is reproducible is its shape —
// the same workloads on two runtimes that differ only in execution
// model, both carrying the EiffelStudio handicaps the paper names:
//
//   - handler IDs live in object headers, so every handler access goes
//     through "a secondary thread-safe data structure to lookup the
//     handler data" (modelled as a sync.Map lookup per interaction);
//   - a shadow stack for the garbage collector is maintained on every
//     call, "inhibiting efficient tight-loop optimizations" (modelled
//     as a per-call frame allocation and write).
//
// The two variants:
//
//   - EVE: the production runtime — lock-based SCOOP (ConfigNone) plus
//     the handicaps;
//   - EVE/Qs: queue-of-queues plus dynamic coalescing (the paper could
//     not port the static pass: "not implemented due to the lack of
//     robust static code analysis and transformation facilities in
//     EiffelStudio"), plus the same handicaps.
//
// The §4.5 numbers to compare shapes against: EVE/Qs over EVE is
// 11.7x on the concurrency benchmarks, 7.7x on the parallel ones, 9.7x
// overall; and EVE/Qs stays slower than SCOOP/Qs in absolute terms
// because the handicaps remain.
package eve

import (
	"sync"
	"sync/atomic"
	"time"

	"scoopqs/internal/core"
)

// Variant names.
const (
	VariantEVE   = "EVE"    // lock-based + handicaps
	VariantEVEQs = "EVE/Qs" // QoQ + dynamic coalescing + handicaps
	VariantQs    = "Qs"     // ConfigAll, no handicaps (reference)
)

// Config returns the core configuration of a variant.
func Config(variant string) core.Config {
	switch variant {
	case VariantEVE:
		return core.ConfigNone
	case VariantEVEQs:
		return core.Config{QoQ: true, DynElide: true} // no StaticElide
	case VariantQs:
		return core.ConfigAll
	}
	panic("eve: unknown variant " + variant)
}

// handicapped reports whether a variant pays the EiffelStudio costs.
func handicapped(variant string) bool { return variant != VariantQs }

// frame is a shadow-stack entry; the pointer field forces a real heap
// allocation with a GC-visible write, like EiffelStudio's shadow
// stack.
type frame struct {
	self *frame
	id   int64
}

// Env is one benchmark environment: a runtime of the variant's
// configuration plus the handicap structures.
type Env struct {
	Variant string
	rt      *core.Runtime
	// registry is the secondary thread-safe handler-lookup structure.
	registry sync.Map // int64 -> *core.Handler
	nextID   atomic.Int64
	// sink keeps shadow frames alive long enough to defeat escape
	// analysis, as a real shadow stack would.
	sink atomic.Pointer[frame]
}

// NewEnv creates an environment for the variant.
func NewEnv(variant string) *Env {
	return &Env{Variant: variant, rt: core.New(Config(variant))}
}

// Close shuts the runtime down.
func (e *Env) Close() { e.rt.Shutdown() }

// Runtime exposes the underlying runtime.
func (e *Env) Runtime() *core.Runtime { return e.rt }

// NewHandler creates a handler and registers it in the lookup
// structure, returning its object-header ID.
func (e *Env) NewHandler(name string) int64 {
	id := e.nextID.Add(1)
	e.registry.Store(id, e.rt.NewHandler(name))
	return id
}

// Handler resolves an object-header ID through the secondary
// structure. Handicapped variants do this on every interaction; the
// reference variant resolves once and caches (modelling direct handler
// pointers).
func (e *Env) Handler(id int64) *core.Handler {
	h, ok := e.registry.Load(id)
	if !ok {
		panic("eve: unknown handler id")
	}
	return h.(*core.Handler)
}

// enterFrame pushes a shadow-stack frame (allocation + GC-visible
// write) for handicapped variants.
func (e *Env) enterFrame(id int64) {
	if !handicapped(e.Variant) {
		return
	}
	f := &frame{id: id}
	f.self = f
	e.sink.Store(f)
}

// Results of one variant across the two workload groups.
type Results struct {
	Variant  string
	Parallel time.Duration // array-pull workload
	Conc     time.Duration // coordination workload
}

// RunParallel is the §4.5 parallel-style workload: a worker handler
// owns an array; the client pulls it element by element, paying the
// handler lookup and shadow frame on every query in the handicapped
// variants (tight-loop optimization is exactly what the shadow stack
// inhibits).
func (e *Env) RunParallel(n int) time.Duration {
	id := e.NewHandler("eve-worker")
	data := make([]int64, n) // owned by the handler
	c := e.rt.NewClient()
	h := e.Handler(id)
	c.Separate(h, func(s *core.Session) {
		s.Call(func() {
			for i := range data {
				data[i] = int64(i)
			}
		})
	})

	start := time.Now()
	var hh *core.Handler
	if !handicapped(e.Variant) {
		hh = e.Handler(id) // resolve once
	}
	out := make([]int64, n)
	run := func(s *core.Session) {
		for i := 0; i < n; i++ {
			i := i
			e.enterFrame(id)
			if handicapped(e.Variant) {
				_ = e.Handler(id) // per-access lookup
			}
			out[i] = core.Query(s, func() int64 { return data[i] })
		}
	}
	if hh == nil {
		hh = e.Handler(id)
	}
	c.Separate(hh, run)
	elapsed := time.Since(start)
	for i := range out {
		if out[i] != int64(i) {
			panic("eve: parallel workload corrupted")
		}
	}
	return elapsed
}

// RunConc is the §4.5 coordination-style workload: clients compete for
// a counter handler, one reservation plus one asynchronous increment
// and one query per iteration, with the handicaps on every step.
func (e *Env) RunConc(clients, iters int) time.Duration {
	id := e.NewHandler("eve-counter")
	var counter int64 // owned by the handler

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := e.rt.NewClient()
			for i := 0; i < iters; i++ {
				e.enterFrame(id)
				h := e.Handler(id)
				c.Separate(h, func(s *core.Session) {
					s.Call(func() { counter++ })
					core.Query(s, func() int64 { return counter })
				})
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	c := e.rt.NewClient()
	var got int64
	c.Separate(e.Handler(id), func(s *core.Session) {
		got = core.QueryRemote(s, func() int64 { return counter })
	})
	if got != int64(clients*iters) {
		panic("eve: coordination workload lost updates")
	}
	return elapsed
}

// Run executes both workloads for a variant.
func Run(variant string, pullN, clients, iters int) Results {
	env := NewEnv(variant)
	defer env.Close()
	return Results{
		Variant:  variant,
		Parallel: env.RunParallel(pullN),
		Conc:     env.RunConc(clients, iters),
	}
}
