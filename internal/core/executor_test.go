package core

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"scoopqs/internal/sched"
)

// pooledAll is ConfigAll on a small pool, forcing real multiplexing in
// tests that create more handlers than workers.
func pooledAll(workers int) Config { return ConfigAll.WithWorkers(workers) }

// Shutdown must wait for handlers that are still draining a backlog of
// logged calls: every call of every completed block executes before
// Shutdown returns, in both execution modes.
func TestShutdownWaitsForMidSessionBacklog(t *testing.T) {
	for _, cfg := range []Config{ConfigAll, pooledAll(2)} {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			rt := New(cfg)
			const handlers = 8
			const calls = 500
			counts := make([]int, handlers) // counts[i] owned by handler i
			var wg sync.WaitGroup
			for i := 0; i < handlers; i++ {
				i := i
				h := rt.NewHandler("h")
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := rt.NewClient()
					c.Separate(h, func(s *Session) {
						for k := 0; k < calls; k++ {
							s.Call(func() { counts[i]++ })
						}
					})
					// Block ended: END is logged, but the handler may
					// still be far behind.
				}()
			}
			wg.Wait()
			rt.Shutdown()
			for i, n := range counts {
				if n != calls {
					t.Fatalf("handler %d executed %d/%d calls before Shutdown returned", i, n, calls)
				}
			}
		})
	}
}

// A wait-condition storm with far more guarded clients than pool
// workers: consumers outnumber workers, all spinning through reserve/
// guard/abandon cycles, yet every produced item is consumed.
func TestGuardStormWithFewWorkers(t *testing.T) {
	rt := New(pooledAll(2))
	defer rt.Shutdown()
	h := rt.NewHandler("box")
	var items []int // handler-owned

	const consumers = 24
	const total = 240
	var wg sync.WaitGroup
	got := make(chan int, total)
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := rt.NewClient()
			for n := 0; n < total/consumers; n++ {
				c.SeparateWhen([]*Handler{h},
					func(ss []*Session) bool {
						return Query(ss[0], func() bool { return len(items) > 0 })
					},
					func(ss []*Session) {
						got <- Query(ss[0], func() int {
							v := items[len(items)-1]
							items = items[:len(items)-1]
							return v
						})
					})
			}
		}()
	}
	prod := rt.NewClient()
	for i := 1; i <= total; i++ {
		i := i
		prod.Separate(h, func(s *Session) { s.Call(func() { items = append(items, i) }) })
	}
	wg.Wait()
	close(got)
	sum := 0
	for v := range got {
		sum += v
	}
	if want := total * (total + 1) / 2; sum != want {
		t.Fatalf("consumed sum = %d, want %d", sum, want)
	}
	if st := rt.Stats(); st.GuardRetries == 0 {
		t.Log("note: no guard retries occurred; storm was too tame to stress wait conditions")
	}
}

// A synchronous delegation chain much longer than the pool: handler i
// queries handler i+1 before answering. Every hop blocks one worker,
// so without compensation a pool of 2 would deadlock at depth 2.
func TestDelegationChainDeeperThanPool(t *testing.T) {
	const workers = 2
	const depth = 16
	rt := New(pooledAll(workers))
	defer rt.Shutdown()

	hs := make([]*Handler, depth)
	for i := range hs {
		hs[i] = rt.NewHandler("link")
	}
	// ask(i) runs on handler i and synchronously queries handler i+1.
	var ask func(i int) int
	ask = func(i int) int {
		if i == depth-1 {
			return 1
		}
		sum := 0
		hs[i].AsClient().Separate(hs[i+1], func(s *Session) {
			sum = QueryRemote(s, func() int { return ask(i + 1) }) + 1
		})
		return sum
	}

	c := rt.NewClient()
	done := make(chan int, 1)
	c.Separate(hs[0], func(s *Session) {
		s.Call(func() { done <- ask(0) })
	})
	select {
	case got := <-done:
		if got != depth {
			t.Fatalf("chain depth = %d, want %d", got, depth)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("delegation chain deadlocked the pool")
	}
	if st := rt.Stats(); st.WorkerSpawns < depth-workers {
		t.Errorf("WorkerSpawns = %d, want >= %d (one per blocked hop beyond the pool)",
			st.WorkerSpawns, depth-workers)
	}
}

// Regression for the Shutdown race: reserving after Shutdown must
// surface ErrShutdown, not the raw "queue: Enqueue on closed MPSC"
// panic the queue used to raise.
func TestReservationAfterShutdownClearPanic(t *testing.T) {
	for _, cfg := range []Config{ConfigNone, ConfigQoQ, pooledAll(2)} {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			rt := New(cfg)
			h := rt.NewHandler("h")
			rt.Shutdown()
			check := func(enter func(c *Client)) {
				defer func() {
					r := recover()
					err, ok := r.(error)
					if !ok || !errors.Is(err, ErrShutdown) {
						t.Fatalf("panic = %v, want ErrShutdown", r)
					}
				}()
				enter(rt.NewClient())
				t.Fatal("reservation after Shutdown succeeded")
			}
			check(func(c *Client) { c.Separate(h, func(*Session) {}) })
			check(func(c *Client) { c.SeparateMany([]*Handler{h}, func([]*Session) {}) })
		})
	}
}

// Concurrent Shutdown vs. reservations: clients hammering Separate
// while Shutdown runs must either complete normally or observe
// ErrShutdown — never the opaque queue panic, never a wedge.
func TestShutdownReservationRace(t *testing.T) {
	for _, cfg := range []Config{ConfigQoQ, pooledAll(2)} {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			for round := 0; round < 20; round++ {
				rt := New(cfg)
				h := rt.NewHandler("h")
				var wg sync.WaitGroup
				for i := 0; i < 4; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer func() {
							if r := recover(); r != nil {
								err, ok := r.(error)
								if !ok || !errors.Is(err, ErrShutdown) {
									t.Errorf("unexpected panic: %v", r)
								}
							}
						}()
						c := rt.NewClient()
						for {
							c.Separate(h, func(s *Session) { s.Call(func() {}) })
						}
					}()
				}
				time.Sleep(time.Millisecond)
				rt.Shutdown()
				wg.Wait()
			}
		})
	}
}

// The headline scaling shape: far more handlers than workers, all
// passing a token around a ring. 10k handlers on a GOMAXPROCS-sized
// pool must run to completion.
func TestRingManyHandlersFewWorkers(t *testing.T) {
	const ring = 10000
	hops := 30000
	if testing.Short() {
		hops = ring
	}
	rt := New(pooledAll(runtime.GOMAXPROCS(0)))
	defer rt.Shutdown()
	hs := make([]*Handler, ring)
	for i := range hs {
		hs[i] = rt.NewHandler("ring")
	}
	done := make(chan int, 1)
	var pass func(i, v int)
	pass = func(i, v int) {
		if v == 0 {
			done <- i
			return
		}
		next := (i + 1) % ring
		hs[i].AsClient().Separate(hs[next], func(s *Session) {
			s.Call(func() { pass(next, v-1) })
		})
	}
	c := rt.NewClient()
	c.Separate(hs[0], func(s *Session) {
		s.Call(func() { pass(0, hops) })
	})
	select {
	case finisher := <-done:
		if want := hops % ring; finisher != want {
			t.Fatalf("finisher = %d, want %d", finisher, want)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("10k-handler ring did not complete on the pool")
	}
	st := rt.Stats()
	if st.Schedules == 0 {
		t.Error("pooled run recorded no handler schedules")
	}
}

// Executor stats must be populated in pooled mode and stay zero in
// dedicated mode.
func TestExecutorStatsCounters(t *testing.T) {
	rt := New(pooledAll(2))
	h := rt.NewHandler("h")
	c := rt.NewClient()
	n := 0
	c.Separate(h, func(s *Session) {
		s.Call(func() { n++ })
		s.SyncNow()
	})
	rt.Shutdown()
	st := rt.Stats()
	if st.Schedules == 0 {
		t.Errorf("Schedules = 0 in pooled mode; stats: %+v", st)
	}

	rt2 := New(ConfigAll)
	h2 := rt2.NewHandler("h")
	c2 := rt2.NewClient()
	c2.Separate(h2, func(s *Session) { s.SyncNow() })
	rt2.Shutdown()
	st2 := rt2.Stats()
	if st2.Schedules != 0 || st2.WorkerSpawns != 0 || st2.WorkerParks != 0 {
		t.Errorf("dedicated mode leaked executor stats: %+v", st2)
	}
}

// Fork-join work issued from inside a handler call, on the same
// executor that runs the handler: the calling step occupies a worker
// for its whole duration, so on a one-worker pool the join must help
// or compensate rather than park the only worker against its own
// spawned tasks. This is the unified-scheduler contract — data-parallel
// skeletons and handler steps sharing one pool.
func TestForkJoinInsideHandlerCall(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rt := New(pooledAll(workers))
		h := rt.NewHandler("h")
		c := rt.NewClient()
		var sum int64 // handler-owned until synced below
		c.Separate(h, func(s *Session) {
			s.Call(func() {
				sum = sched.ParallelReduce(rt.Executor(), 0, 10000, 64,
					func(lo, hi int) int64 {
						var acc int64
						for i := lo; i < hi; i++ {
							acc += int64(i)
						}
						return acc
					},
					func(a, b int64) int64 { return a + b })
			})
			s.SyncNow()
		})
		if want := int64(10000) * 9999 / 2; sum != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, sum, want)
		}
		rt.Shutdown()
		st := rt.Stats()
		if st.TasksSpawned == 0 {
			t.Errorf("workers=%d: TasksSpawned = 0 after in-handler fork-join", workers)
		}
	}
}
