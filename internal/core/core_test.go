package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// forEachConfig runs the test body under all five paper configurations,
// each in both execution modes: dedicated handler goroutines and the
// M:N worker-pool executor (Workers = GOMAXPROCS).
func forEachConfig(t *testing.T, body func(t *testing.T, cfg Config)) {
	t.Helper()
	for _, cfg := range Configs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) { body(t, cfg) })
		pooled := cfg.WithWorkers(runtime.GOMAXPROCS(0))
		t.Run(pooled.Name(), func(t *testing.T) { body(t, pooled) })
	}
}

func TestConfigNames(t *testing.T) {
	want := []string{"None", "Dynamic", "Static", "QoQ", "All"}
	for i, cfg := range Configs() {
		if cfg.Name() != want[i] {
			t.Errorf("config %d name = %q, want %q", i, cfg.Name(), want[i])
		}
	}
}

func TestAsyncCallsExecuteInOrder(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		rt := New(cfg)
		defer rt.Shutdown()
		h := rt.NewHandler("h")
		c := rt.NewClient()

		var log []int // handler-owned
		c.Separate(h, func(s *Session) {
			for i := 0; i < 100; i++ {
				i := i
				s.Call(func() { log = append(log, i) })
			}
			s.Sync()
		})
		c.Separate(h, func(s *Session) {
			got := Query(s, func() int { return len(log) })
			if got != 100 {
				t.Fatalf("len(log) = %d, want 100", got)
			}
		})
		rt.Shutdown()
		for i, v := range log {
			if v != i {
				t.Fatalf("log[%d] = %d: per-client program order violated", i, v)
			}
		}
	})
}

// Reasoning guarantee 2: calls from one separate block are contiguous in
// the handler's execution — no interleaving from other clients.
func TestNoInterleavingBetweenClients(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		rt := New(cfg)
		defer rt.Shutdown()
		h := rt.NewHandler("h")

		type entry struct{ client, seq int }
		var log []entry // handler-owned

		const clients = 8
		const blocks = 20
		const callsPerBlock = 25
		var wg sync.WaitGroup
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				c := rt.NewClient()
				for b := 0; b < blocks; b++ {
					c.Separate(h, func(s *Session) {
						for k := 0; k < callsPerBlock; k++ {
							k := k
							s.Call(func() { log = append(log, entry{cl, k}) })
						}
					})
				}
			}(cl)
		}
		wg.Wait()
		rt.Shutdown()

		if len(log) != clients*blocks*callsPerBlock {
			t.Fatalf("log has %d entries, want %d", len(log), clients*blocks*callsPerBlock)
		}
		// The log must decompose into runs of callsPerBlock entries,
		// each run from a single client with seq 0..callsPerBlock-1.
		for i := 0; i < len(log); i += callsPerBlock {
			run := log[i : i+callsPerBlock]
			for k, e := range run {
				if e.client != run[0].client {
					t.Fatalf("run at %d interleaves clients %d and %d", i, run[0].client, e.client)
				}
				if e.seq != k {
					t.Fatalf("run at %d out of order: seq %d at position %d", i, e.seq, k)
				}
			}
		}
	})
}

// Fig. 1: with two clients each logging calls in one block, only the two
// non-interleaved orders may be observed.
func TestFig1OnlyTwoInterleavings(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		rt := New(cfg)
		defer rt.Shutdown()
		h := rt.NewHandler("x")

		for round := 0; round < 50; round++ {
			var log []string
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				c := rt.NewClient()
				c.Separate(h, func(s *Session) {
					s.Call(func() { log = append(log, "foo") })
					s.Call(func() { log = append(log, "bar1") })
				})
			}()
			go func() {
				defer wg.Done()
				c := rt.NewClient()
				c.Separate(h, func(s *Session) {
					s.Call(func() { log = append(log, "bar2") })
					s.Call(func() { log = append(log, "baz") })
				})
			}()
			wg.Wait()
			// Drain the handler before reading log.
			c := rt.NewClient()
			c.Separate(h, func(s *Session) { s.SyncNow() })

			got := fmt.Sprint(log)
			w1 := fmt.Sprint([]string{"foo", "bar1", "bar2", "baz"})
			w2 := fmt.Sprint([]string{"bar2", "baz", "foo", "bar1"})
			if got != w1 && got != w2 {
				t.Fatalf("illegal interleaving: %v", log)
			}
		}
	})
}

func TestQueryReturnsValueAndSeesPriorCalls(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		rt := New(cfg)
		defer rt.Shutdown()
		h := rt.NewHandler("h")
		c := rt.NewClient()

		counter := 0
		c.Separate(h, func(s *Session) {
			for i := 0; i < 10; i++ {
				s.Call(func() { counter++ })
			}
			// The query must observe all 10 prior calls applied.
			if got := Query(s, func() int { return counter }); got != 10 {
				t.Fatalf("query saw %d, want 10", got)
			}
			s.Call(func() { counter += 5 })
			if got := Query(s, func() int { return counter }); got != 15 {
				t.Fatalf("query saw %d, want 15", got)
			}
		})
	})
}

func TestQueryRemoteAlwaysRoundTrips(t *testing.T) {
	rt := New(ConfigAll)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	c.Separate(h, func(s *Session) {
		v := QueryRemote(s, func() string { return "hi" })
		if v != "hi" {
			t.Fatalf("got %q", v)
		}
	})
	if got := rt.Stats().RemoteQueries; got != 1 {
		t.Fatalf("RemoteQueries = %d, want 1", got)
	}
}

// Dynamic elision: consecutive queries without intervening async calls
// must perform exactly one sync round-trip.
func TestDynamicElisionSkipsRoundTrips(t *testing.T) {
	rt := New(ConfigDynamic)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	x := 42
	c.Separate(h, func(s *Session) {
		for i := 0; i < 100; i++ {
			if got := Query(s, func() int { return x }); got != 42 {
				t.Fatalf("query = %d", got)
			}
		}
	})
	st := rt.Stats()
	if st.SyncsPerformed != 1 {
		t.Errorf("SyncsPerformed = %d, want 1", st.SyncsPerformed)
	}
	if st.SyncsElided != 99 {
		t.Errorf("SyncsElided = %d, want 99", st.SyncsElided)
	}
}

// An async call must invalidate the synced state.
func TestAsyncCallInvalidatesSync(t *testing.T) {
	rt := New(ConfigDynamic)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	x := 0
	c.Separate(h, func(s *Session) {
		for i := 0; i < 10; i++ {
			s.Call(func() { x++ })
			if got := Query(s, func() int { return x }); got != i+1 {
				t.Fatalf("iteration %d: query = %d, want %d", i, got, i+1)
			}
		}
	})
	st := rt.Stats()
	if st.SyncsPerformed != 10 {
		t.Errorf("SyncsPerformed = %d, want 10 (async must desync)", st.SyncsPerformed)
	}
	if st.SyncsElided != 0 {
		t.Errorf("SyncsElided = %d, want 0", st.SyncsElided)
	}
}

// Under the pure Static configuration, generic Query pays a sync every
// time (no dynamic flag), while the hoisted SyncNow+LocalQuery path
// performs exactly one.
func TestStaticConfigSyncBehaviour(t *testing.T) {
	rt := New(ConfigStatic)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	x := 7
	c.Separate(h, func(s *Session) {
		for i := 0; i < 10; i++ {
			Query(s, func() int { return x })
		}
	})
	if got := rt.Stats().SyncsPerformed; got != 10 {
		t.Errorf("un-hoisted queries: SyncsPerformed = %d, want 10", got)
	}

	rt2 := New(ConfigStatic)
	defer rt2.Shutdown()
	h2 := rt2.NewHandler("h")
	c2 := rt2.NewClient()
	c2.Separate(h2, func(s *Session) {
		s.SyncNow()
		for i := 0; i < 10; i++ {
			LocalQuery(s, func() int { return x })
		}
	})
	st := rt2.Stats()
	if st.SyncsPerformed != 1 || st.LocalQueries != 10 {
		t.Errorf("hoisted path: SyncsPerformed=%d LocalQueries=%d, want 1 and 10",
			st.SyncsPerformed, st.LocalQueries)
	}
}

func TestLocalQueryOnUnsyncedPanics(t *testing.T) {
	rt := New(ConfigAll)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	c.Separate(h, func(s *Session) {
		s.Call(func() {}) // desync
		defer func() {
			if recover() == nil {
				t.Error("LocalQuery on unsynced session did not panic")
			}
		}()
		LocalQuery(s, func() int { return 1 })
	})
}

// Fig. 5: clients using multi-reservation see both objects with the
// same colour, under every configuration.
func TestFig5MultiReservationConsistency(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		rt := New(cfg)
		defer rt.Shutdown()
		x := rt.NewHandler("x")
		y := rt.NewHandler("y")
		var xc, yc string // owned by x and y respectively

		var wg sync.WaitGroup
		setter := func(colour string) {
			defer wg.Done()
			c := rt.NewClient()
			for i := 0; i < 50; i++ {
				c.SeparateMany([]*Handler{x, y}, func(ss []*Session) {
					ss[0].Call(func() { xc = colour })
					ss[1].Call(func() { yc = colour })
				})
			}
		}
		checker := func() {
			defer wg.Done()
			c := rt.NewClient()
			for i := 0; i < 100; i++ {
				c.SeparateMany([]*Handler{x, y}, func(ss []*Session) {
					cx := Query(ss[0], func() string { return xc })
					cy := Query(ss[1], func() string { return yc })
					if cx != cy {
						t.Errorf("observed x=%s y=%s: multi-reservation atomicity violated", cx, cy)
					}
				})
			}
		}
		wg.Add(3)
		go setter("red")
		go setter("blue")
		go checker()
		wg.Wait()
	})
}

// §2.5 / Fig. 6: inconsistent nested reservation order cannot deadlock
// under QoQ (no blocking reservations); under the lock-based runtime it
// deadlocks.
func TestFig6NestedReservationQoQNoDeadlock(t *testing.T) {
	rt := New(ConfigQoQ)
	defer rt.Shutdown()
	x := rt.NewHandler("x")
	y := rt.NewHandler("y")

	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			c := rt.NewClient()
			for i := 0; i < 200; i++ {
				c.Separate(x, func(sx *Session) {
					c.Separate(y, func(sy *Session) {
						sx.Call(func() {})
						sy.Call(func() {})
					})
				})
			}
		}()
		go func() {
			defer wg.Done()
			c := rt.NewClient()
			for i := 0; i < 200; i++ {
				c.Separate(y, func(sy *Session) {
					c.Separate(x, func(sx *Session) {
						sx.Call(func() {})
						sy.Call(func() {})
					})
				})
			}
		}()
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("QoQ nested reservations deadlocked; the paper says they cannot")
	}
}

func TestFig6NestedReservationLockBasedDeadlocks(t *testing.T) {
	rt := New(ConfigNone)
	// No Shutdown: the runtime will be wedged by design.
	x := rt.NewHandler("x")
	y := rt.NewHandler("y")

	step := make(chan struct{})
	done := make(chan struct{}, 2)
	go func() {
		c := rt.NewClient()
		c.Separate(x, func(*Session) {
			step <- struct{}{}
			<-step
			c.Separate(y, func(*Session) {})
		})
		done <- struct{}{}
	}()
	go func() {
		c := rt.NewClient()
		<-step // ensure client 1 holds x first
		c.Separate(y, func(*Session) {
			step <- struct{}{}
			c.Separate(x, func(*Session) {})
		})
		done <- struct{}{}
	}()
	select {
	case <-done:
		t.Fatal("lock-based nested reservation completed; expected deadlock")
	case <-time.After(300 * time.Millisecond):
		// Deadlocked as the original SCOOP semantics predict. Leak the
		// two goroutines; the runtime is abandoned.
	}
}

func TestSeparateWhenWaitsForGuard(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		rt := New(cfg)
		defer rt.Shutdown()
		h := rt.NewHandler("box")
		ready := false // handler-owned

		got := make(chan bool, 1)
		go func() {
			c := rt.NewClient()
			c.SeparateWhen([]*Handler{h},
				func(ss []*Session) bool { return Query(ss[0], func() bool { return ready }) },
				func(ss []*Session) { got <- Query(ss[0], func() bool { return ready }) })
		}()

		time.Sleep(20 * time.Millisecond)
		select {
		case <-got:
			t.Fatal("SeparateWhen ran body before guard held")
		default:
		}

		c := rt.NewClient()
		c.Separate(h, func(s *Session) { s.Call(func() { ready = true }) })

		select {
		case v := <-got:
			if !v {
				t.Fatal("body observed guard false")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("SeparateWhen never woke after state change")
		}
	})
}

func TestSeparateWhenManyWaiters(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		rt := New(cfg)
		defer rt.Shutdown()
		h := rt.NewHandler("q")
		var items []int // handler-owned

		const n = 50
		var wg sync.WaitGroup
		sum := make(chan int, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := rt.NewClient()
				c.SeparateWhen([]*Handler{h},
					func(ss []*Session) bool {
						return Query(ss[0], func() bool { return len(items) > 0 })
					},
					func(ss []*Session) {
						v := Query(ss[0], func() int {
							v := items[len(items)-1]
							items = items[:len(items)-1]
							return v
						})
						sum <- v
					})
			}()
		}
		prod := rt.NewClient()
		for i := 1; i <= n; i++ {
			i := i
			prod.Separate(h, func(s *Session) { s.Call(func() { items = append(items, i) }) })
		}
		wg.Wait()
		close(sum)
		total := 0
		for v := range sum {
			total += v
		}
		if want := n * (n + 1) / 2; total != want {
			t.Fatalf("consumed sum = %d, want %d", total, want)
		}
	})
}

func TestHandlerPanicPropagatesToClient(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		rt := New(cfg)
		defer rt.Shutdown()
		h := rt.NewHandler("boom")
		c := rt.NewClient()

		ran := false
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = r.(*HandlerError)
				}
			}()
			c.Separate(h, func(s *Session) {
				s.Call(func() { panic("kaboom") })
				s.Call(func() { ran = true }) // must be skipped: poisoned
				s.SyncNow()                   // surfaces the panic
			})
			return nil
		}()
		if err == nil {
			t.Fatal("handler panic was not surfaced at sync point")
		}
		he, ok := err.(*HandlerError)
		if !ok || he.Handler != "boom" || he.Value != "kaboom" {
			t.Fatalf("unexpected error: %#v", err)
		}
		if ran {
			t.Fatal("call after panic executed; session should be poisoned")
		}
		// The handler itself must survive and serve new blocks.
		v := 0
		c.Separate(h, func(s *Session) {
			s.Call(func() { v = 9 })
			s.SyncNow()
		})
		if v != 9 {
			t.Fatal("handler did not survive a poisoned session")
		}
	})
}

func TestQueryPanicPropagates(t *testing.T) {
	for _, cfg := range []Config{ConfigNone, ConfigAll} {
		rt := New(cfg)
		h := rt.NewHandler("h")
		c := rt.NewClient()
		var got error
		c.Separate(h, func(s *Session) {
			defer func() {
				if r := recover(); r != nil {
					got = r.(*HandlerError)
				}
			}()
			QueryRemote(s, func() int { panic("qboom") })
		})
		if got == nil {
			t.Fatalf("%s: query panic not propagated", cfg.Name())
		}
		rt.Shutdown()
	}
}

func TestSessionReuseAcrossBlocks(t *testing.T) {
	rt := New(ConfigAll)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	for i := 0; i < 100; i++ {
		c.Separate(h, func(s *Session) {
			s.Call(func() {})
			s.SyncNow() // forces the handler to finish before block end
		})
	}
	st := rt.Stats()
	if st.SessionsReused == 0 {
		t.Errorf("no sessions were reused: new=%d reused=%d", st.SessionsNew, st.SessionsReused)
	}
}

func TestMultiReservationDeduplicates(t *testing.T) {
	rt := New(ConfigAll)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	c.SeparateMany([]*Handler{h, h, h}, func(ss []*Session) {
		if len(ss) != 1 {
			t.Fatalf("got %d sessions for duplicated handler, want 1", len(ss))
		}
	})
}

func TestHandlerAsClient(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		rt := New(cfg)
		defer rt.Shutdown()
		a := rt.NewHandler("a")
		b := rt.NewHandler("b")
		hits := 0 // owned by b

		c := rt.NewClient()
		c.Separate(a, func(s *Session) {
			s.Call(func() {
				// Running on handler a; delegate to b.
				a.AsClient().Separate(b, func(sb *Session) {
					sb.Call(func() { hits++ })
				})
			})
			s.SyncNow()
		})
		c.Separate(b, func(s *Session) {
			if got := Query(s, func() int { return hits }); got != 1 {
				t.Fatalf("hits = %d, want 1", got)
			}
		})
	})
}

func TestShutdownIdempotent(t *testing.T) {
	rt := New(ConfigAll)
	rt.NewHandler("h")
	rt.Shutdown()
	rt.Shutdown() // must not panic or hang
}

func TestStatsSnapshot(t *testing.T) {
	rt := New(ConfigAll)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	c.Separate(h, func(s *Session) {
		s.Call(func() {})
		Query(s, func() int { return 0 })
	})
	st := rt.Stats()
	if st.AsyncCalls != 1 || st.Reservations != 1 || st.SyncsPerformed != 1 || st.LocalQueries != 1 {
		t.Errorf("unexpected stats: %+v", st)
	}
}
