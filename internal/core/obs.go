package core

import (
	"scoopqs/internal/obs"
	"scoopqs/internal/sched"
)

// The core runtime's observability instruments (see internal/obs for
// the overhead contract): end-to-end latency of the client-visible
// synchronization operations, plus the await-park duration that the
// pooled state machine otherwise hides entirely.
var (
	// callExecHist is an async call's log→execution latency — how long
	// a request sits in its private queue before the handler runs it.
	callExecHist = obs.Default().Hist("core.call_exec_ns")
	// queryHist is the synchronous query round-trip, client-observed.
	queryHist = obs.Default().Hist("core.query_ns")
	// syncHist is the sync round-trip, client-observed (elided syncs
	// never reach it).
	syncHist = obs.Default().Hist("core.sync_ns")
	// awaitHist is how long a handler sits parked on an unresolved
	// future (Handler.Await), pooled and dedicated mode alike.
	awaitHist = obs.Default().Hist("core.await_park_ns")
	// guardWaitHist is how long a SeparateWhen client sits parked after
	// a failed guard before a state change triggers re-evaluation.
	guardWaitHist = obs.Default().Hist("core.guard_wait_ns")
)

// emitOn records an event on w's ring when the caller runs on a pool
// worker, else on the shared rings.
func emitOn(w *sched.Worker, k obs.Kind, id uint64, arg int64) {
	if w != nil {
		w.Emit(k, id, arg)
	} else {
		obs.Emit(k, id, arg)
	}
}
