package core

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// §2.5: QoQ excludes reservation deadlocks, but adding queries (which
// block) reintroduces deadlock: two handlers each executing a call that
// queries the other wait forever. This test documents that boundary;
// the wedged runtime is abandoned.
func TestQueryCycleStillDeadlocksUnderQoQ(t *testing.T) {
	rt := New(ConfigQoQ) // no Shutdown: wedged by design
	a := rt.NewHandler("a")
	b := rt.NewHandler("b")

	done := make(chan struct{})
	go func() {
		c := rt.NewClient()
		// Log a call on a that queries b, and a call on b that queries
		// a. Each handler blocks inside queryRemote waiting for the
		// other, which is busy waiting in turn: a cycle of waits.
		c.Separate(a, func(s *Session) {
			s.Call(func() {
				a.AsClient().Separate(b, func(sb *Session) {
					QueryRemote(sb, func() int { return 1 })
				})
			})
		})
		c.Separate(b, func(s *Session) {
			s.Call(func() {
				b.AsClient().Separate(a, func(sa *Session) {
					QueryRemote(sa, func() int { return 1 })
				})
			})
		})
		// Wait for both handlers to finish — they never will.
		c.Separate(a, func(s *Session) { s.SyncNow() })
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("query cycle completed; expected deadlock per §2.5")
	case <-time.After(300 * time.Millisecond):
		// Deadlocked, as the paper says queries can.
	}
}

// SeparateWhen with a guard spanning two handlers: move an item from a
// source to a sink only when the source is non-empty and the sink has
// room — both conditions must hold atomically.
func TestSeparateWhenMultiHandlerGuard(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		rt := New(cfg)
		defer rt.Shutdown()
		src := rt.NewHandler("src")
		dst := rt.NewHandler("dst")
		var srcItems []int // owned by src
		var dstItems []int // owned by dst
		const cap = 3
		const total = 12

		// Mover goroutine: waits for (src non-empty && dst below cap).
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := rt.NewClient()
			hs := []*Handler{src, dst}
			for moved := 0; moved < total; moved++ {
				c.SeparateWhen(hs,
					func(ss []*Session) bool {
						var nonEmpty, hasRoom bool
						for _, s := range ss {
							s := s
							switch s.Handler() {
							case src:
								nonEmpty = Query(s, func() bool { return len(srcItems) > 0 })
							case dst:
								hasRoom = Query(s, func() bool { return len(dstItems) < cap })
							}
						}
						return nonEmpty && hasRoom
					},
					func(ss []*Session) {
						var v int
						for _, s := range ss {
							if s.Handler() == src {
								v = Query(s, func() int {
									v := srcItems[0]
									srcItems = srcItems[1:]
									return v
								})
							}
						}
						for _, s := range ss {
							s := s
							if s.Handler() == dst {
								s.Call(func() { dstItems = append(dstItems, v) })
							}
						}
					})
			}
		}()

		// Producer fills src; drainer empties dst (so room reappears).
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := rt.NewClient()
			for i := 1; i <= total; i++ {
				i := i
				c.Separate(src, func(s *Session) { s.Call(func() { srcItems = append(srcItems, i) }) })
			}
		}()
		drained := make([]int, 0, total)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := rt.NewClient()
			hs := []*Handler{dst}
			for len(drained) < total {
				c.SeparateWhen(hs,
					func(ss []*Session) bool { return Query(ss[0], func() bool { return len(dstItems) > 0 }) },
					func(ss []*Session) {
						v := Query(ss[0], func() int {
							v := dstItems[0]
							dstItems = dstItems[1:]
							return v
						})
						drained = append(drained, v)
					})
			}
		}()
		wg.Wait()
		for i, v := range drained {
			if v != i+1 {
				t.Fatalf("drained[%d] = %d; FIFO through two handlers broken", i, v)
			}
		}
	})
}

// Property: any sequence of client operations on a counter handler
// produces the same result as the sequential model — across all
// configurations.
func TestQuickCounterMatchesSequentialModel(t *testing.T) {
	for _, cfg := range Configs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			f := func(ops []uint8) bool {
				rt := New(cfg)
				defer rt.Shutdown()
				h := rt.NewHandler("h")
				c := rt.NewClient()
				got, want := 0, 0
				c.Separate(h, func(s *Session) {
					for _, op := range ops {
						delta := int(op%7) - 3
						switch op % 3 {
						case 0:
							s.Call(func() { got += delta })
							want += delta
						case 1:
							if Query(s, func() int { return got }) != want {
								panic("query mismatch")
							}
						case 2:
							s.Sync()
						}
					}
				})
				c.Separate(h, func(s *Session) {
					if QueryRemote(s, func() int { return got }) != want {
						panic("final mismatch")
					}
				})
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReserveReleaseIdempotent(t *testing.T) {
	rt := New(ConfigAll)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	n := 0
	s, release := c.Reserve(h)
	s.Call(func() { n++ })
	release()
	release() // second call must be a no-op, not a double END
	c.Separate(h, func(s2 *Session) {
		if got := Query(s2, func() int { return n }); got != 1 {
			t.Fatalf("n = %d, want 1", got)
		}
	})
}

func TestReserveLockBasedHoldsHandler(t *testing.T) {
	rt := New(ConfigNone)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	s, release := c.Reserve(h)
	s.Call(func() {})

	blocked := make(chan struct{})
	go func() {
		c2 := rt.NewClient()
		c2.Separate(h, func(*Session) {})
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("lock-based reservation did not exclude the second client")
	case <-time.After(50 * time.Millisecond):
	}
	release()
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("release did not let the second client in")
	}
}

func TestCustomConfigName(t *testing.T) {
	odd := Config{QoQ: true, DynElide: true}
	if got := odd.Name(); got == "All" || got == "QoQ" {
		t.Fatalf("unexpected canonical name %q for a mixed config", got)
	}
}

func TestHandlerAccessors(t *testing.T) {
	rt := New(ConfigAll)
	defer rt.Shutdown()
	a := rt.NewHandler("alpha")
	b := rt.NewHandler("beta")
	if a.Name() != "alpha" || b.Name() != "beta" {
		t.Error("Name mismatch")
	}
	if a.ID() >= b.ID() {
		t.Error("IDs must be increasing with creation order")
	}
	hs := rt.Handlers()
	if len(hs) != 2 || hs[0] != a || hs[1] != b {
		t.Error("Handlers() should list in creation order")
	}
	c := rt.NewClient()
	c.Separate(a, func(s *Session) {
		if s.Handler() != a {
			t.Error("Session.Handler mismatch")
		}
		if s.Synced() {
			t.Error("fresh session should not be synced")
		}
		s.SyncNow()
		if !s.Synced() {
			t.Error("session should be synced after SyncNow")
		}
	})
	if c.Runtime() != rt {
		t.Error("Client.Runtime mismatch")
	}
}

func TestSessionErrNilOnHealthySession(t *testing.T) {
	rt := New(ConfigAll)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	c.Separate(h, func(s *Session) {
		s.Call(func() {})
		s.SyncNow()
		if s.Err() != nil {
			t.Errorf("Err = %v on healthy session", s.Err())
		}
	})
}

func TestNewHandlerAfterShutdownPanics(t *testing.T) {
	rt := New(ConfigAll)
	rt.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.NewHandler("late")
}
