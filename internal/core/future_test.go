package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"scoopqs/internal/future"
)

// futureModes are the execution modes the futures subsystem must behave
// identically under: dedicated goroutines and the M:N executor.
var futureModes = []struct {
	name string
	cfg  Config
}{
	{"dedicated", ConfigAll},
	{"pooled2", ConfigAll.WithWorkers(2)},
}

func TestCallFutureObservesPriorCalls(t *testing.T) {
	for _, m := range futureModes {
		t.Run(m.name, func(t *testing.T) {
			rt := New(m.cfg)
			defer rt.Shutdown()
			h := rt.NewHandler("h")
			n := 0
			c := rt.NewClient()
			var fut *future.Future
			c.Separate(h, func(s *Session) {
				for i := 0; i < 10; i++ {
					s.Call(func() { n++ })
				}
				fut = s.CallFuture(func() any { return n })
			})
			v, err := c.Await(fut)
			if err != nil {
				t.Fatal(err)
			}
			if v.(int) != 10 {
				t.Fatalf("future query saw %v, want 10 (per-session ordering broken)", v)
			}
			if got := rt.Stats().FuturesCreated; got != 1 {
				t.Fatalf("FuturesCreated = %d, want 1", got)
			}
		})
	}
}

func TestQueryAsyncTyped(t *testing.T) {
	rt := New(ConfigAll.WithWorkers(2))
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	var fut *future.Future
	c.Separate(h, func(s *Session) {
		fut = QueryAsync(s, func() string { return "qs" })
	})
	if v := fut.Await(); v.(string) != "qs" {
		t.Fatalf("QueryAsync = %v", v)
	}
}

func TestFuturePanicPropagatesThroughAwait(t *testing.T) {
	for _, m := range futureModes {
		t.Run(m.name, func(t *testing.T) {
			rt := New(m.cfg)
			defer rt.Shutdown()
			h := rt.NewHandler("h")
			c := rt.NewClient()
			var fut *future.Future
			c.Separate(h, func(s *Session) {
				fut = s.CallFuture(func() any { panic("kapow") })
			})
			_, err := c.Await(fut)
			var he *HandlerError
			if !errors.As(err, &he) || fmt.Sprint(he.Value) != "kapow" {
				t.Fatalf("Await error = %v, want *HandlerError(kapow)", err)
			}
			// Future.Await re-panics, matching Query's contract.
			func() {
				defer func() {
					if r := recover(); r != err {
						t.Errorf("Future.Await panicked with %v, want %v", r, err)
					}
				}()
				fut.Await()
				t.Error("Future.Await returned on a failed future")
			}()
			// The panic poisoned that session; a new block still works.
			c.Separate(h, func(s *Session) {
				if got := Query(s, func() int { return 7 }); got != 7 {
					t.Errorf("handler did not survive the panic: %d", got)
				}
			})
		})
	}
}

func TestFutureFlattening(t *testing.T) {
	for _, m := range futureModes {
		t.Run(m.name, func(t *testing.T) {
			rt := New(m.cfg)
			defer rt.Shutdown()
			a, b := rt.NewHandler("a"), rt.NewHandler("b")
			c := rt.NewClient()
			var fut *future.Future
			// a's query returns b's future; the client's future must
			// resolve with b's value, not with a boxed *Future.
			c.Separate(a, func(s *Session) {
				fut = s.CallFuture(func() any {
					var inner *future.Future
					a.AsClient().Separate(b, func(sb *Session) {
						inner = sb.CallFuture(func() any { return int64(99) })
					})
					return inner
				})
			})
			v, err := c.Await(fut)
			if err != nil {
				t.Fatal(err)
			}
			if v.(int64) != 99 {
				t.Fatalf("flattened value = %v, want 99", v)
			}
		})
	}
}

// buildAwaitChain wires hs into a delegation chain in which each
// handler asynchronously queries the next and awaits the result via
// Handler.Await (parking its state machine in pooled mode), adding 1 at
// each hop. It returns the chain's entry function for hs[0].
func buildAwaitChain(hs []*Handler) func(i int) any {
	var step func(i int) any
	step = func(i int) any {
		if i == len(hs)-1 {
			return int64(1)
		}
		p := future.New()
		var inner *future.Future
		hs[i].AsClient().Separate(hs[i+1], func(s *Session) {
			inner = s.CallFuture(func() any { return step(i + 1) })
		})
		hs[i].Await(inner, func(v any, err error) {
			if err != nil {
				p.Fail(err)
				return
			}
			p.Complete(v.(int64) + 1)
		})
		return p
	}
	return step
}

func TestHandlerAwaitChain(t *testing.T) {
	for _, m := range futureModes {
		t.Run(m.name, func(t *testing.T) {
			const depth = 16
			rt := New(m.cfg)
			defer rt.Shutdown()
			hs := make([]*Handler, depth)
			for i := range hs {
				hs[i] = rt.NewHandler(fmt.Sprintf("h%d", i))
			}
			step := buildAwaitChain(hs)
			c := rt.NewClient()
			var fut *future.Future
			c.Separate(hs[0], func(s *Session) {
				fut = s.CallFuture(func() any { return step(0) })
			})
			v, err := c.Await(fut)
			if err != nil {
				t.Fatal(err)
			}
			if v.(int64) != depth {
				t.Fatalf("chain result %v, want %d", v, depth)
			}
			st := rt.Stats()
			if m.cfg.Workers > 0 && st.AwaitParks == 0 {
				t.Error("pooled chain never parked a state machine (AwaitParks = 0)")
			}
			if m.cfg.Workers == 0 && st.AwaitParks != 0 {
				t.Errorf("dedicated mode counted %d AwaitParks", st.AwaitParks)
			}
		})
	}
}

// TestAwaitChainSpawnReduction is the PR's headline acceptance check:
// on a depth-32 delegation chain under Workers: 4, awaiting futures
// must cut compensation-worker spawns by at least 10x versus blocking
// synchronous queries.
func TestAwaitChainSpawnReduction(t *testing.T) {
	const depth, workers = 32, 4

	runSync := func() Stats {
		rt := New(ConfigAll.WithWorkers(workers))
		defer rt.Shutdown()
		hs := make([]*Handler, depth)
		for i := range hs {
			hs[i] = rt.NewHandler(fmt.Sprintf("h%d", i))
		}
		var step func(i int) int64
		step = func(i int) int64 {
			if i == len(hs)-1 {
				return 1
			}
			var out int64
			// QueryRemote keeps each hop on its own handler (packaged
			// execution), the true delegation shape: every level's
			// worker blocks until the subtree below it finishes.
			hs[i].AsClient().Separate(hs[i+1], func(s *Session) {
				out = QueryRemote(s, func() int64 { return step(i + 1) }) + 1
			})
			return out
		}
		c := rt.NewClient()
		var got int64
		c.Separate(hs[0], func(s *Session) {
			got = QueryRemote(s, func() int64 { return step(0) })
		})
		if got != depth {
			t.Fatalf("sync chain result %d, want %d", got, depth)
		}
		return rt.Stats()
	}

	runAwait := func() Stats {
		rt := New(ConfigAll.WithWorkers(workers))
		defer rt.Shutdown()
		hs := make([]*Handler, depth)
		for i := range hs {
			hs[i] = rt.NewHandler(fmt.Sprintf("h%d", i))
		}
		step := buildAwaitChain(hs)
		c := rt.NewClient()
		var fut *future.Future
		c.Separate(hs[0], func(s *Session) {
			fut = s.CallFuture(func() any { return step(0) })
		})
		v, err := c.Await(fut)
		if err != nil {
			t.Fatal(err)
		}
		if v.(int64) != depth {
			t.Fatalf("await chain result %v, want %d", v, depth)
		}
		return rt.Stats()
	}

	syncSt, awaitSt := runSync(), runAwait()
	t.Logf("sync: spawns=%d; await: spawns=%d parks=%d (spawns avoided: %d)",
		syncSt.WorkerSpawns, awaitSt.WorkerSpawns, awaitSt.AwaitParks,
		syncSt.WorkerSpawns-awaitSt.WorkerSpawns)
	if syncSt.WorkerSpawns < 10 {
		t.Fatalf("sync chain spawned only %d compensation workers; the baseline is broken", syncSt.WorkerSpawns)
	}
	if awaitSt.WorkerSpawns*10 > syncSt.WorkerSpawns {
		t.Fatalf("await parking did not reduce spawns 10x: sync=%d await=%d",
			syncSt.WorkerSpawns, awaitSt.WorkerSpawns)
	}
}

func TestAwaitAfterShutdownSurfacesErrShutdown(t *testing.T) {
	for _, m := range futureModes {
		t.Run(m.name, func(t *testing.T) {
			rt := New(m.cfg)
			h := rt.NewHandler("h")
			c := rt.NewClient()
			var done *future.Future
			c.Separate(h, func(s *Session) {
				done = s.CallFuture(func() any { return 5 })
			})
			rt.Shutdown()

			// A future that resolved before (or during) shutdown keeps
			// its value.
			if v, err := c.Await(done); err != nil || v.(int) != 5 {
				t.Fatalf("resolved future after shutdown: %v, %v", v, err)
			}

			// A future nothing will ever resolve must error out, not
			// hang.
			errc := make(chan error, 1)
			go func() {
				_, err := c.Await(future.New())
				errc <- err
			}()
			select {
			case err := <-errc:
				if !errors.Is(err, ErrShutdown) {
					t.Fatalf("Await after Shutdown = %v, want ErrShutdown", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("Await hung after Shutdown")
			}
		})
	}
}

// TestPoisonedContinuationFailsPromises guards against dropped
// continuations: when a continuation panics (poisoning the session),
// continuations still pending must run with the poison as their error
// — not be skipped — so the promises they resolve fail instead of
// leaving awaiters hanging forever.
func TestPoisonedContinuationFailsPromises(t *testing.T) {
	for _, m := range futureModes {
		t.Run(m.name, func(t *testing.T) {
			rt := New(m.cfg)
			defer rt.Shutdown()
			h := rt.NewHandler("h")
			c := rt.NewClient()
			var fut *future.Future
			c.Separate(h, func(s *Session) {
				fut = s.CallFuture(func() any {
					p := future.New()
					h.Await(future.Completed(nil), func(any, error) {
						h.Await(future.Completed(nil), func(v any, err error) {
							if err != nil {
								p.Fail(err)
								return
							}
							p.Complete(1)
						})
						panic("mid-chain")
					})
					return p
				})
			})
			done := make(chan struct{})
			var err error
			go func() {
				_, err = c.Await(fut)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("promise behind a poisoned continuation never resolved")
			}
			var he *HandlerError
			if !errors.As(err, &he) || fmt.Sprint(he.Value) != "mid-chain" {
				t.Fatalf("promise resolved with %v, want the poisoning *HandlerError", err)
			}
		})
	}
}

func TestDoubleAwaitInOneRequestPanics(t *testing.T) {
	rt := New(ConfigAll)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	c := rt.NewClient()
	var fut *future.Future
	c.Separate(h, func(s *Session) {
		fut = s.CallFuture(func() any {
			h.Await(future.Completed(1), func(any, error) {})
			h.Await(future.Completed(2), func(any, error) {}) // must panic
			return nil
		})
	})
	_, err := c.Await(fut)
	var he *HandlerError
	if !errors.As(err, &he) {
		t.Fatalf("second Await did not panic the request: %v", err)
	}
}

// TestSessionReuseUnderOversubscribedPool asserts the END-handoff
// re-arm: even when the one pool worker lags far behind, a client's
// repeated blocks reuse its cached private queues instead of
// allocating fresh ones, so SessionsNew stops climbing.
func TestSessionReuseUnderOversubscribedPool(t *testing.T) {
	rt := New(ConfigAll.WithWorkers(1))
	defer rt.Shutdown()
	a, b := rt.NewHandler("a"), rt.NewHandler("b")
	na, nb := 0, 0
	c := rt.NewClient()
	const blocks = 300
	for i := 0; i < blocks; i++ {
		c.Separate(a, func(s *Session) { s.Call(func() { na++ }) })
		c.Separate(b, func(s *Session) { s.Call(func() { nb++ }) })
	}
	// Sync both handlers so every block above has fully executed.
	c.Separate(a, func(s *Session) { s.Sync() })
	c.Separate(b, func(s *Session) { s.Sync() })
	if na != blocks || nb != blocks {
		t.Fatalf("calls lost: na=%d nb=%d, want %d", na, nb, blocks)
	}
	st := rt.Stats()
	if st.SessionsNew != 2 {
		t.Fatalf("SessionsNew = %d, want 2 (one cached queue per handler)", st.SessionsNew)
	}
	if st.SessionsReused < 2*blocks-2 {
		t.Fatalf("SessionsReused = %d, want %d", st.SessionsReused, 2*blocks)
	}
}
