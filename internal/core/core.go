// Package core implements the SCOOP/Qs execution model of West, Nanz
// and Meyer, "Efficient and Reasonable Object-Oriented Concurrency"
// (PPoPP 2015): handlers (active objects), private queues, the
// queue-of-queues, separate blocks with single and multiple
// reservations, wait conditions, and both sync-coalescing
// optimizations.
//
// # Model
//
// Every piece of shared state is owned by exactly one Handler, a
// goroutine that executes requests one at a time. A client accesses a
// handler's state only inside a separate block (Client.Separate and
// friends), which reserves a private queue (Session) on the handler.
// Within the block the client logs asynchronous calls (Session.Call)
// and synchronous queries (Query). The runtime guarantees the paper's
// two reasoning properties:
//
//  1. local instructions of the client are synchronous and immediate;
//  2. calls logged on a handler within one separate block execute in
//     order, with no interleaved calls from other clients.
//
// # Configurations
//
// The five optimization configurations of the paper's §4 are selected
// by Config: None, Dynamic, Static, QoQ, and All. With QoQ enabled
// reservations are non-blocking enqueues into a lock-free
// queue-of-queues (Fig. 4); without it the runtime degrades to the
// original lock-based SCOOP semantics (Fig. 2) in which a client holds
// the handler's lock for the whole block.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"scoopqs/internal/future"
	"scoopqs/internal/sched"
)

// ErrShutdown is the panic value raised when a client enters a
// separate block (reserves a handler) after Runtime.Shutdown. It is
// also the error that fails futures left unresolved by Shutdown and
// the error Client.Await returns when waiting past Shutdown, so an
// awaiting client surfaces a clean error instead of hanging.
var ErrShutdown = errors.New("scoopqs: reservation after Shutdown")

// Config selects a SCOOP runtime variant. The zero value is the
// unoptimized baseline ("None" in the paper's §4).
type Config struct {
	// QoQ enables the queue-of-queues handler implementation: clients
	// reserve by enqueueing their private queue and never block.
	// Disabled, the runtime uses the original lock-based semantics: a
	// client owns the handler's lock for the duration of the block.
	QoQ bool

	// DynElide enables dynamic sync coalescing (§3.4.1): each private
	// queue records whether the handler is already synced, and
	// redundant sync round-trips are skipped at run time.
	DynElide bool

	// StaticElide declares that statically hoisted code paths
	// (Session.SyncNow + LocalQuery, as produced by the
	// compiler/passes sync-coalescing pass) may be used. Queries made
	// through the generic Query helper still sync each time, modelling
	// the conservatism of the static analysis on irregular code.
	StaticElide bool

	// Spin is the number of empty polls queue consumers perform before
	// parking. Zero selects a sensible default.
	Spin int

	// Workers selects the execution mode. Zero dedicates one goroutine
	// per handler, the paper's original runtime shape. A positive value
	// multiplexes all handlers of the runtime onto a pool of that many
	// worker goroutines (the M:N executor): handlers become resumable
	// state machines pushed onto a shared ready queue whenever their
	// queues gain work, so millions of mostly-idle handlers cost no
	// parked goroutines. The execution semantics are identical in both
	// modes. Pool workers that block inside handler code (a handler
	// synchronously querying another handler) are compensated with
	// replacement workers, so delegation chains deeper than the pool
	// cannot deadlock it.
	Workers int
}

// The five named configurations from the paper's evaluation.
var (
	ConfigNone    = Config{}
	ConfigDynamic = Config{DynElide: true}
	ConfigStatic  = Config{StaticElide: true}
	ConfigQoQ     = Config{QoQ: true}
	ConfigAll     = Config{QoQ: true, DynElide: true, StaticElide: true}
)

// Name returns the paper's label for the configuration, suffixed with
// the pool size when the M:N executor is selected.
func (c Config) Name() string {
	var base string
	switch {
	case c.QoQ && c.DynElide && c.StaticElide:
		base = "All"
	case c.QoQ && !c.DynElide && !c.StaticElide:
		base = "QoQ"
	case !c.QoQ && c.DynElide && !c.StaticElide:
		base = "Dynamic"
	case !c.QoQ && !c.DynElide && c.StaticElide:
		base = "Static"
	case !c.QoQ && !c.DynElide && !c.StaticElide:
		base = "None"
	default:
		base = fmt.Sprintf("Config{QoQ:%v,Dyn:%v,Static:%v}", c.QoQ, c.DynElide, c.StaticElide)
	}
	if c.Workers > 0 {
		return fmt.Sprintf("%s+pool%d", base, c.Workers)
	}
	return base
}

// WithWorkers returns a copy of the configuration running on a pool of
// n workers (n == 0 restores dedicated handler goroutines).
func (c Config) WithWorkers(n int) Config {
	c.Workers = n
	return c
}

// clientSideQuery reports whether queries execute on the client after a
// sync (the modified query rule of §3.2, Fig. 10b) rather than being
// packaged and executed by the handler (Fig. 10a).
func (c Config) clientSideQuery() bool { return c.DynElide || c.StaticElide }

// Configs lists the paper's five configurations in presentation order.
func Configs() []Config {
	return []Config{ConfigNone, ConfigDynamic, ConfigStatic, ConfigQoQ, ConfigAll}
}

// Stats is a snapshot of the runtime's instrumentation counters (the
// "SCOOP-specific instrumentation" the paper's §7 calls for).
type Stats struct {
	AsyncCalls     int64 // calls logged via Session.Call
	RemoteQueries  int64 // packaged queries executed on the handler
	LocalQueries   int64 // client-side query executions
	SyncsPerformed int64 // sync round-trips that reached the handler
	SyncsElided    int64 // syncs skipped by dynamic coalescing
	SyncsExecuted  int64 // sync barriers issued in total: parking round-trips (SyncNow) plus non-blocking SyncFuture barriers (the remote SYNC path)
	Reservations   int64 // single-handler separate blocks entered
	MultiResGroups int64 // multi-handler separate blocks entered
	GuardRetries   int64 // wait-condition re-evaluations that failed
	SessionsNew    int64 // private queues freshly allocated
	SessionsReused int64 // private queues taken from the client cache
	EndsProcessed  int64 // END markers consumed by handlers

	// Futures counters.
	FuturesCreated int64 // futures minted by CallFuture/QueryAsync
	AwaitParks     int64 // handler state machines parked in the awaiting state

	// Executor counters; all zero in dedicated-goroutine mode.
	Schedules    int64 // handler activations handed to the executor
	HandlerParks int64 // handlers parked mid-session awaiting their client
	WorkerSpawns int64 // compensation workers spawned for blocked ones
	WorkerParks  int64 // pool workers parked idle

	// Work-stealing substrate counters (see sched.Executor).
	Steals         int64 // tasks migrated between workers by stealing
	InjectorPushes int64 // wakes routed through the shared injector
	LocalPushes    int64 // wakes fast-pathed onto a worker's own deque

	// Fork-join layer counters (see sched.TaskGroup). Nonzero only when
	// client or handler code uses the parallel skeletons on the pool.
	TasksSpawned  int64 // fork-join tasks spawned via TaskGroup.Spawn
	TaskSteals    int64 // fork-join tasks that migrated to another worker
	TaskWaitParks int64 // TaskGroup.Wait parks after helping found nothing
}

type statsCounters struct {
	asyncCalls     atomic.Int64
	remoteQueries  atomic.Int64
	localQueries   atomic.Int64
	syncsPerformed atomic.Int64
	syncsElided    atomic.Int64
	syncsExecuted  atomic.Int64
	reservations   atomic.Int64
	multiResGroups atomic.Int64
	guardRetries   atomic.Int64
	sessionsNew    atomic.Int64
	sessionsReused atomic.Int64
	endsProcessed  atomic.Int64
	futuresCreated atomic.Int64
	awaitParks     atomic.Int64
	schedules      atomic.Int64
	handlerParks   atomic.Int64
}

func (s *statsCounters) snapshot() Stats {
	return Stats{
		AsyncCalls:     s.asyncCalls.Load(),
		RemoteQueries:  s.remoteQueries.Load(),
		LocalQueries:   s.localQueries.Load(),
		SyncsPerformed: s.syncsPerformed.Load(),
		SyncsElided:    s.syncsElided.Load(),
		SyncsExecuted:  s.syncsExecuted.Load(),
		Reservations:   s.reservations.Load(),
		MultiResGroups: s.multiResGroups.Load(),
		GuardRetries:   s.guardRetries.Load(),
		SessionsNew:    s.sessionsNew.Load(),
		SessionsReused: s.sessionsReused.Load(),
		EndsProcessed:  s.endsProcessed.Load(),
		FuturesCreated: s.futuresCreated.Load(),
		AwaitParks:     s.awaitParks.Load(),
		Schedules:      s.schedules.Load(),
		HandlerParks:   s.handlerParks.Load(),
	}
}

// Runtime owns a set of handlers and the configuration they run under.
// Create one with New, spawn handlers with NewHandler, create a Client
// per application goroutine, and call Shutdown when all clients are
// done.
type Runtime struct {
	cfg   Config
	stats statsCounters

	// exec is the shared M:N worker pool; nil in dedicated-goroutine
	// mode (Config.Workers == 0).
	exec *sched.Executor

	mu       sync.Mutex
	handlers []*Handler
	nextID   int64
	down     bool

	// downC is closed at the end of Shutdown; Client.Await selects on
	// it so a wait that can no longer be satisfied errors out instead
	// of hanging.
	downC chan struct{}

	// futShards track futures minted by CallFuture that have not yet
	// resolved, so Shutdown can fail the stragglers with ErrShutdown.
	// (Deadlock detection reads the resolving handler straight off the
	// future's own origin tag, which Then/Map propagate to derivatives,
	// so the registry is a plain set.) Sharded: every async query
	// touches the registry twice (mint and resolve), and a single mutex
	// would be a runtime-global contention point on the very path built
	// for throughput.
	futShards [futShardCount]futShard
	futSeq    atomic.Uint64

	wg sync.WaitGroup
}

const futShardCount = 16 // power of two

type futShard struct {
	mu sync.Mutex
	m  map[*future.Future]struct{} // pending futures
}

// New creates a runtime with the given configuration.
func New(cfg Config) *Runtime {
	rt := &Runtime{
		cfg:   cfg,
		downC: make(chan struct{}),
	}
	for i := range rt.futShards {
		rt.futShards[i].m = map[*future.Future]struct{}{}
	}
	if cfg.Workers > 0 {
		rt.exec = sched.NewExecutor(cfg.Workers)
	}
	return rt
}

// trackFuture registers f with the runtime until it resolves, so
// Shutdown can fail futures no retired handler will ever complete.
func (rt *Runtime) trackFuture(f *future.Future) {
	sh := &rt.futShards[rt.futSeq.Add(1)%futShardCount]
	sh.mu.Lock()
	sh.m[f] = struct{}{}
	sh.mu.Unlock()
	f.OnComplete(func(any, error) {
		sh.mu.Lock()
		delete(sh.m, f)
		sh.mu.Unlock()
	})
}

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Stats returns a snapshot of the instrumentation counters.
func (rt *Runtime) Stats() Stats {
	st := rt.stats.snapshot()
	if rt.exec != nil {
		st.WorkerSpawns, st.WorkerParks = rt.exec.Counters()
		st.Steals, st.InjectorPushes, st.LocalPushes = rt.exec.StealCounters()
		st.TasksSpawned, st.TaskSteals, st.TaskWaitParks = rt.exec.TaskCounters()
	}
	return st
}

// Executor exposes the runtime's work-stealing pool so clients can run
// fork-join work (sched.ParallelFor and friends) on the same workers
// that serve the handlers. Nil in dedicated-goroutine mode
// (cfg.Workers == 0), where there is no shared pool to join.
func (rt *Runtime) Executor() *sched.Executor {
	return rt.exec
}

// Handlers returns the handlers created so far, in creation order.
func (rt *Runtime) Handlers() []*Handler {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Handler, len(rt.handlers))
	copy(out, rt.handlers)
	return out
}

// NewClient returns a client context for the calling goroutine. A
// Client is not safe for concurrent use; create one per goroutine.
func (rt *Runtime) NewClient() *Client {
	return &Client{
		rt:     rt,
		cache:  make(map[*Handler]*Session),
		waitCh: make(chan struct{}, 1),
	}
}

// Shutdown stops all handlers and waits for them to exit, then stops
// the worker pool if one is running. All separate blocks must have
// completed; entering a block after Shutdown panics with ErrShutdown.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	if rt.down {
		rt.mu.Unlock()
		return
	}
	rt.down = true
	hs := make([]*Handler, len(rt.handlers))
	copy(hs, rt.handlers)
	rt.mu.Unlock()
	for _, h := range hs {
		// Close notifies the handler (parker or executor wake), so a
		// pooled handler gets scheduled once more to observe the close
		// and retire.
		h.qoq.Close()
	}
	rt.wg.Wait()
	if rt.exec != nil {
		rt.exec.Stop()
	}
	// Handlers drain every accepted request before retiring, so any
	// future still pending now was dropped on the floor (teardown of a
	// never-ended block); fail it rather than leave waiters hanging.
	var orphans []*future.Future
	for i := range rt.futShards {
		sh := &rt.futShards[i]
		sh.mu.Lock()
		for f := range sh.m {
			orphans = append(orphans, f)
		}
		sh.mu.Unlock()
	}
	for _, f := range orphans {
		f.Fail(ErrShutdown)
	}
	close(rt.downC)
}
