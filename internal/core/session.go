package core

import (
	"fmt"
	"sync/atomic"

	"scoopqs/internal/future"
	"scoopqs/internal/obs"
	"scoopqs/internal/queue"
	"scoopqs/internal/sched"
)

// HandlerError is the error recorded when a call or query executed on a
// handler panics. It poisons the session: subsequent calls in the same
// separate block are skipped, and the client observes the error at its
// next synchronization point (Sync, a query, or the end of the block).
type HandlerError struct {
	Handler string // handler name
	Value   any    // the recovered panic value
}

func (e *HandlerError) Error() string {
	return fmt.Sprintf("scoopqs: panic on handler %q: %v", e.Handler, e.Value)
}

type callKind uint8

const (
	callCall callKind = iota
	callSync
	callQueryRemote
	callFuture
	callEnd
)

// call is a packaged request. The paper packages calls with libffi; in
// Go the closure is the package (heap allocation plus indirect call,
// the same cost shape).
type call struct {
	kind callKind
	fn   func()
	qfn  func() any
	fut  *future.Future // callFuture: the cell qfn's result resolves
	// at is the obs enqueue stamp of an async call (callCall), written
	// only while recording is enabled; the handler measures the
	// log→execution latency from it. The SPSC queue's handoff orders
	// the accesses.
	at int64
}

// Session is a private queue: the communication channel between one
// client and one handler for the duration of one separate block (and,
// via the client's cache, across blocks). The client logs requests on
// it; the handler drains it. A Session is only valid inside the
// separate block that produced it and must not be shared between
// goroutines.
type Session struct {
	h      *Handler
	owner  *Client // the client this private queue belongs to
	q      *queue.SPSC[call]
	parker *sched.Parker // client waits here for sync/query replies

	// synced tracks whether the handler is known to be parked on this
	// private queue (dynamic sync coalescing, §3.4.1). Client-owned.
	synced bool
	inUse  bool

	// ownerWait is the owning client's wait-condition channel; the
	// handler skips it when broadcasting session-end notifications.
	ownerWait chan struct{}

	// replyVal/replyErr carry a remote query result from handler to
	// client; the parker handoff orders the accesses.
	replyVal any
	replyErr error

	// errPub poisons the session after a handler-side panic. Written
	// only by the handler; read by the client, hence atomic
	// publication.
	errPub atomic.Pointer[HandlerError]
}

// Handler returns the handler this session is reserved on.
func (s *Session) Handler() *Handler { return s.h }

// Call logs an asynchronous call on the handler (the call rule). It
// never blocks and returns immediately; fn will run on the handler
// after all previously logged requests of this session.
func (s *Session) Call(fn func()) {
	rt := s.h.rt
	rt.stats.asyncCalls.Add(1)
	s.synced = false // an async call desynchronizes the handler
	c := call{kind: callCall, fn: fn}
	if obs.Enabled() {
		c.at = obs.Now()
	}
	s.q.Enqueue(c)
}

// Sync brings the handler to a quiescent point on this private queue:
// when Sync returns, every previously logged call has executed and the
// handler is parked waiting on this session. Under dynamic
// sync-coalescing the round-trip is skipped if the handler is already
// synced. Sync panics with *HandlerError if a previous call panicked.
func (s *Session) Sync() {
	rt := s.h.rt
	if rt.cfg.DynElide && s.synced {
		rt.stats.syncsElided.Add(1)
		if obs.Enabled() {
			obs.Emit(obs.KindSyncElide, uint64(s.h.id), 0)
		}
		return
	}
	s.SyncNow()
}

// SyncNow performs the sync round-trip unconditionally. It is the
// primitive the static sync-coalescing pass emits for the one sync it
// hoists out of a loop; application code normally wants Sync.
func (s *Session) SyncNow() {
	rt := s.h.rt
	rt.stats.syncsPerformed.Add(1)
	rt.stats.syncsExecuted.Add(1)
	var t0 int64
	if obs.Enabled() {
		t0 = obs.Now()
	}
	s.owner.setWaiting(s.h)
	// Enqueue before blockBegin: a worker-hosted client's enqueue may
	// park the woken handler on this worker's own deque with no wake
	// (the lone-handoff fast path), and it is blockBegin that then
	// rouses a worker to steal it before we park.
	s.q.Enqueue(call{kind: callSync})
	s.owner.blockBegin()
	s.parker.Park()
	s.owner.blockEnd()
	s.owner.clearWaiting()
	if t0 != 0 {
		d := obs.Now() - t0
		syncHist.Observe(d)
		obs.Emit(obs.KindSync, uint64(s.h.id), d)
	}
	s.synced = true
	s.checkErr()
}

// Synced reports whether the handler is known to be parked on this
// queue (i.e. a client-side query needs no round-trip).
func (s *Session) Synced() bool { return s.synced }

// queryRemote packages qfn, has the handler execute it, and waits for
// the result (the original query rule, Fig. 10a).
func (s *Session) queryRemote(qfn func() any) any {
	rt := s.h.rt
	rt.stats.remoteQueries.Add(1)
	var t0 int64
	if obs.Enabled() {
		t0 = obs.Now()
	}
	s.owner.setWaiting(s.h)
	// Enqueue before blockBegin — see SyncNow.
	s.q.Enqueue(call{kind: callQueryRemote, qfn: qfn})
	s.owner.blockBegin()
	s.parker.Park()
	s.owner.blockEnd()
	s.owner.clearWaiting()
	if t0 != 0 {
		d := obs.Now() - t0
		queryHist.Observe(d)
		obs.Emit(obs.KindQuery, uint64(s.h.id), d)
	}
	v, err := s.replyVal, s.replyErr
	s.replyVal, s.replyErr = nil, nil
	// After the reply the handler loops back to dequeue on this same
	// private queue: it is synced from the client's point of view.
	s.synced = true
	if err != nil {
		panic(err)
	}
	return v
}

// CallFuture logs an asynchronous query (the futures subsystem): qfn
// executes on the handler after all previously logged requests of this
// session, and its result resolves the returned future instead of
// being shipped back through a sync round-trip — the client never
// blocks. A handler-side panic fails the future with *HandlerError and
// poisons the session exactly like a synchronous query.
//
// If qfn returns a *future.Future the runtime chains instead of
// boxing: the returned future resolves when the inner one does
// (promise flattening). This is what lets a delegation chain pipeline
// end to end — each hop logs the next hop's future query and returns
// its future — with no handler blocked anywhere.
func (s *Session) CallFuture(qfn func() any) *future.Future {
	rt := s.h.rt
	rt.stats.futuresCreated.Add(1)
	fut := future.New()
	// The origin tag attributes awaits on this future — and on any
	// Then/Map derivative, which inherit it — to the handler whose
	// session resolves it (deadlock detection's await edges).
	fut.SetOrigin(s.h)
	rt.trackFuture(fut)
	// The handler executes qfn and moves on without parking at the
	// client's disposal, so the session is not synced afterwards.
	s.synced = false
	s.q.Enqueue(call{kind: callFuture, qfn: qfn, fut: fut})
	return fut
}

// SyncFuture logs a non-blocking sync barrier: the returned future
// resolves (with a nil value) once every previously logged request of
// this separate block has executed on the handler. It is the
// demultiplexer's sync — a message-driven client that must not block
// (the remote server's connection reader) gets the quiescence guarantee
// of Sync as a completion callback instead of a parked goroutine. The
// handler does not park at the client's disposal afterwards, so the
// session is not marked synced; a handler-side panic before the barrier
// fails the future with the session's *HandlerError.
func (s *Session) SyncFuture() *future.Future {
	s.h.rt.stats.syncsExecuted.Add(1)
	return s.CallFuture(func() any { return nil })
}

// checkErr surfaces a handler-side panic to the client.
func (s *Session) checkErr() {
	if e := s.errPub.Load(); e != nil {
		panic(e)
	}
}

// Err returns the handler-side error recorded on this session, if any,
// without panicking. It is only guaranteed to observe errors from
// calls that happened before the client's last synchronization point.
func (s *Session) Err() error {
	if e := s.errPub.Load(); e != nil {
		return e
	}
	return nil
}

// end logs the END marker (the separate rule appends call(x, end)),
// releasing the handler to serve other clients.
func (s *Session) end() {
	s.q.Enqueue(call{kind: callEnd})
	s.synced = false
	s.inUse = false
}

// Query executes a synchronous query and returns its result. Depending
// on the configuration this is either a packaged remote execution
// (None/QoQ), or a sync followed by client-side execution of f
// (Dynamic/Static/All; the modified query rule of §3.2). Under Dynamic
// the sync is elided when the handler is already synced; under a pure
// Static configuration every Query pays a sync, modelling the
// conservatism of static analysis on code it cannot prove regular —
// statically optimized code uses SyncNow + LocalQuery instead.
func Query[T any](s *Session, f func() T) T {
	rt := s.h.rt
	if rt.cfg.clientSideQuery() {
		s.Sync()
		rt.stats.localQueries.Add(1)
		v := f()
		s.checkErr()
		return v
	}
	return QueryRemote(s, f)
}

// QueryRemote always uses the packaged-call path of Fig. 10a: the
// closure is boxed, shipped to the handler, executed there, and the
// result shipped back. The boxing through any is deliberate: it models
// the encode/decode cost the optimized rule avoids.
func QueryRemote[T any](s *Session, f func() T) T {
	v := s.queryRemote(func() any { return f() })
	return v.(T)
}

// QueryAsync is the typed veneer over Session.CallFuture: it logs f as
// an asynchronous query and returns a future that resolves with f's
// (boxed) result. Resolve it with Client.Await (shutdown-aware), the
// future's own Get/Await, or — from handler code on a pooled runtime —
// Handler.Await, which parks the handler state machine instead of a
// worker.
func QueryAsync[T any](s *Session, f func() T) *future.Future {
	return s.CallFuture(func() any { return f() })
}

// LocalQuery executes f directly on the client with no synchronization.
// It is only legal when the handler is known to be synced on this
// session — either because the static sync-coalescing pass proved it
// (the generated pairing is SyncNow once, LocalQuery in the loop) or
// because the caller just invoked Sync. Misuse is a data race; when the
// session is not marked synced this panics to catch miscompiled code.
func LocalQuery[T any](s *Session, f func() T) T {
	if !s.synced {
		panic("scoopqs: LocalQuery on unsynced session (miscompiled static elision)")
	}
	s.h.rt.stats.localQueries.Add(1)
	return f()
}
