package core

import (
	"testing"
	"time"

	"scoopqs/internal/future"
)

// Construct the §2.5 query cycle and check the detector reports it.
func TestDetectDeadlockFindsQueryCycle(t *testing.T) {
	rt := New(ConfigQoQ) // wedged by design; no Shutdown
	a := rt.NewHandler("a")
	b := rt.NewHandler("b")

	c := rt.NewClient()
	c.Separate(a, func(s *Session) {
		s.Call(func() {
			a.AsClient().Separate(b, func(sb *Session) {
				QueryRemote(sb, func() int { return 1 })
			})
		})
	})
	c.Separate(b, func(s *Session) {
		s.Call(func() {
			b.AsClient().Separate(a, func(sa *Session) {
				QueryRemote(sa, func() int { return 1 })
			})
		})
	})

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// Confirm twice: blocked queries have no spurious wakeups, so
		// a cycle seen in two snapshots is genuinely stuck.
		first := rt.DetectDeadlock()
		if len(first) > 0 {
			second := rt.DetectDeadlock()
			if len(second) > 0 {
				got := FormatDeadlocks(second)
				if got == "no deadlock" {
					t.Fatal("inconsistent formatting")
				}
				// The cycle must involve both handlers.
				if !containsAll(second[0].Handlers, "a", "b") {
					t.Fatalf("cycle %v does not contain both handlers", second[0].Handlers)
				}
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("detector never reported the query cycle")
}

func containsAll(hs []string, want ...string) bool {
	set := map[string]bool{}
	for _, h := range hs {
		set[h] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}

// A healthy runtime reports no deadlock, including while queries are
// in flight.
func TestDetectDeadlockQuietOnHealthyRuntime(t *testing.T) {
	rt := New(ConfigAll)
	defer rt.Shutdown()
	a := rt.NewHandler("a")
	b := rt.NewHandler("b")

	// One-directional delegation: a waits on b, b waits on nobody.
	done := make(chan struct{})
	c := rt.NewClient()
	c.Separate(a, func(s *Session) {
		s.Call(func() {
			a.AsClient().Separate(b, func(sb *Session) {
				QueryRemote(sb, func() int {
					time.Sleep(30 * time.Millisecond)
					return 1
				})
			})
			close(done)
		})
	})
	for {
		select {
		case <-done:
			if cs := rt.DetectDeadlock(); len(cs) != 0 {
				t.Fatalf("false positive after completion: %s", FormatDeadlocks(cs))
			}
			return
		default:
			if cs := rt.DetectDeadlock(); len(cs) != 0 {
				t.Fatalf("false positive on a chain: %s", FormatDeadlocks(cs))
			}
		}
	}
}

func TestFormatDeadlocksEmpty(t *testing.T) {
	if got := FormatDeadlocks(nil); got != "no deadlock" {
		t.Fatalf("got %q", got)
	}
	one := []DeadlockCycle{{Handlers: []string{"x", "y"}}}
	if got := FormatDeadlocks(one); got != "deadlock: x -> y -> x" {
		t.Fatalf("got %q", got)
	}
}

// Await cycle on a pooled runtime: a parks its state machine on a
// future only b can resolve, while b parks on a future only a can
// resolve — no goroutine blocks anywhere, so the query-edge detector
// used to be blind to it. The detector must follow the await edges
// (handler -> origin of the awaited future) and report the cycle.
func TestDetectDeadlockFindsAwaitCycle(t *testing.T) {
	rt := New(ConfigAll.WithWorkers(2)) // wedged by design; no Shutdown
	a := rt.NewHandler("a")
	b := rt.NewHandler("b")

	// cross arms, on the executing handler, an await on a future logged
	// on the other handler's session, and returns the promise its
	// continuation would resolve — which it never can.
	var cross func(self, other *Handler) any
	cross = func(self, other *Handler) any {
		p := future.New()
		var inner *future.Future
		self.AsClient().Separate(other, func(s *Session) {
			inner = s.CallFuture(func() any {
				if other == b {
					return cross(b, a)
				}
				return nil // never reached: a is wedged by then
			})
		})
		self.Await(inner, func(v any, err error) {
			if err != nil {
				p.Fail(err)
				return
			}
			p.Complete(v)
		})
		return p
	}
	c := rt.NewClient()
	c.Separate(a, func(s *Session) {
		s.CallFuture(func() any { return cross(a, b) })
	})

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// Both handlers must be parked awaiting before a stable verdict.
		if rt.Stats().AwaitParks >= 2 {
			first := rt.DetectDeadlock()
			second := rt.DetectDeadlock()
			if len(first) > 0 && len(second) > 0 {
				if !containsAll(second[0].Handlers, "a", "b") {
					t.Fatalf("cycle %v does not contain both handlers", second[0].Handlers)
				}
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("await cycle never detected (await-parks=%d): %s",
		rt.Stats().AwaitParks, FormatDeadlocks(rt.DetectDeadlock()))
}

// Await cycle routed through Then chains: three handlers, each parked
// on a future *derived* (via Then) from an asynchronous query on the
// next handler. The registry only knows the underlying CallFuture
// cells, so the detector must use the origin tag that Then propagates
// to derivatives — before origin propagation this cycle was invisible.
func TestDetectDeadlockFindsThenChainCycle(t *testing.T) {
	rt := New(ConfigAll.WithWorkers(2)) // wedged by design; no Shutdown
	names := []string{"a", "b", "c"}
	hs := make([]*Handler, len(names))
	for i, n := range names {
		hs[i] = rt.NewHandler(n)
	}

	// cross logs a future query on the next handler in the ring, derives
	// a new future from it with Then, and awaits the derivative. Handler
	// c's query targets a, which is already parked awaiting — so all
	// three wedge, each on a Then-derived future.
	var cross func(i int) any
	cross = func(i int) any {
		self, nxt := hs[i], hs[(i+1)%len(hs)]
		p := future.New()
		var inner *future.Future
		self.AsClient().Separate(nxt, func(s *Session) {
			inner = s.CallFuture(func() any {
				if (i+1)%len(hs) != 0 {
					return cross(i + 1)
				}
				return nil // never reached: a is wedged by then
			})
		})
		derived := inner.Then(func(v any) any { return v })
		self.Await(derived, func(v any, err error) {
			if err != nil {
				p.Fail(err)
				return
			}
			p.Complete(v)
		})
		return p
	}
	c := rt.NewClient()
	c.Separate(hs[0], func(s *Session) {
		s.CallFuture(func() any { return cross(0) })
	})

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// All three handlers must be parked awaiting for a stable verdict.
		if rt.Stats().AwaitParks >= 3 {
			first := rt.DetectDeadlock()
			second := rt.DetectDeadlock()
			if len(first) > 0 && len(second) > 0 {
				if !containsAll(second[0].Handlers, "a", "b", "c") {
					t.Fatalf("cycle %v does not contain all three handlers", second[0].Handlers)
				}
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("Then-chain await cycle never detected (await-parks=%d): %s",
		rt.Stats().AwaitParks, FormatDeadlocks(rt.DetectDeadlock()))
}

// A self-cycle: a handler that queries itself through a second session
// is also stuck (it can never drain its own private queue).
func TestDetectDeadlockSelfQuery(t *testing.T) {
	rt := New(ConfigQoQ) // wedged by design
	a := rt.NewHandler("self")
	c := rt.NewClient()
	c.Separate(a, func(s *Session) {
		s.Call(func() {
			a.AsClient().Separate(a, func(sa *Session) {
				QueryRemote(sa, func() int { return 1 })
			})
		})
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cs := rt.DetectDeadlock(); len(cs) > 0 {
			if len(cs[0].Handlers) != 1 || cs[0].Handlers[0] != "self" {
				t.Fatalf("unexpected cycle %v", cs[0].Handlers)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("self-query deadlock not detected")
}
