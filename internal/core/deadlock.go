package core

import "strings"

// Deadlock detection (§2.5 + the instrumentation agenda of §7).
//
// SCOOP/Qs excludes reservation deadlocks — reserving never blocks —
// but queries still do, so cycles of handlers querying one another
// wait forever (the paper's Fig. 6 variant with queries). The runtime
// tracks, per client, which handler it is currently blocked on; a
// handler "is" a client when it issues calls through AsClient. A cycle
// in the resulting wait graph is a deadlock, because the only way a
// blocked query resumes is its target handler draining the private
// queue, which it cannot do while itself blocked.
//
// Detection is on demand (DetectDeadlock) and advisory: the wait edges
// are read with atomics while the system runs, so a reported cycle
// should be confirmed by a second call before alarms are raised; a
// cycle present in both snapshots is genuinely stuck, since blocked
// queries have no spurious wakeups.

// waitingOn is maintained by the blocking paths in Session.
func (c *Client) setWaiting(h *Handler) { c.waitingOn.Store(h) }
func (c *Client) clearWaiting()         { c.waitingOn.Store(nil) }
func (c *Client) currentWait() *Handler { return c.waitingOn.Load() }

// DeadlockCycle describes one cycle in the wait-for graph, as handler
// names in wait order.
type DeadlockCycle struct {
	Handlers []string
}

func (d DeadlockCycle) String() string {
	return "deadlock: " + strings.Join(d.Handlers, " -> ") + " -> " + d.Handlers[0]
}

// DetectDeadlock scans the wait-for graph and returns the cycles it
// finds (nil when none). Only cycles among handlers are reported;
// external clients blocked on a deadlocked handler are victims, not
// participants.
//
// Two kinds of wait edge are followed: synchronous queries (the
// handler's own client blocked on its target) and awaits — a handler
// parked mid-request on a future, charged to the handler whose session
// will resolve it. The attribution is the future's origin tag, which
// CallFuture sets and Then/Map propagate, so a handler awaiting a
// derived future (a Then chain over an asynchronous query) contributes
// the same edge as one awaiting the query directly. A hand-made future
// (future.New, All/Any combinations) has no origin and contributes no
// edge: await attribution is best-effort, exactly as advisory as the
// rest of the graph.
func (rt *Runtime) DetectDeadlock() []DeadlockCycle {
	rt.mu.Lock()
	handlers := make([]*Handler, len(rt.handlers))
	copy(handlers, rt.handlers)
	rt.mu.Unlock()

	// next[h] = the handler h is currently waiting on.
	next := make(map[*Handler]*Handler, len(handlers))
	for _, h := range handlers {
		if f := h.awaitingOn.Load(); f != nil {
			if origin, ok := f.Origin().(*Handler); ok && origin.rt == rt {
				next[h] = origin
				continue
			}
		}
		sc := h.selfClientSnapshot()
		if sc == nil {
			continue
		}
		if target := sc.currentWait(); target != nil {
			next[h] = target
		}
	}

	var cycles []DeadlockCycle
	seen := make(map[*Handler]bool, len(handlers))
	for _, start := range handlers {
		if seen[start] {
			continue
		}
		// Follow the chain from start, recording positions.
		pos := map[*Handler]int{}
		var path []*Handler
		h := start
		for h != nil && !seen[h] {
			if at, ok := pos[h]; ok {
				cycle := DeadlockCycle{}
				for _, m := range path[at:] {
					cycle.Handlers = append(cycle.Handlers, m.name)
				}
				cycles = append(cycles, cycle)
				break
			}
			pos[h] = len(path)
			path = append(path, h)
			h = next[h]
		}
		for _, m := range path {
			seen[m] = true
		}
	}
	return cycles
}

// selfClientSnapshot reads the handler's AsClient pointer safely from
// another goroutine.
func (h *Handler) selfClientSnapshot() *Client {
	return h.selfClientPub.Load()
}

// FormatDeadlocks renders a cycle list for diagnostics.
func FormatDeadlocks(cs []DeadlockCycle) string {
	if len(cs) == 0 {
		return "no deadlock"
	}
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, "; ")
}
