package core

import (
	"sync"
	"sync/atomic"

	"scoopqs/internal/queue"
	"scoopqs/internal/sched"
)

// Handler is a SCOOP handler: an active object that executes the
// requests logged on it, one private queue at a time (the run and end
// rules of the paper's Fig. 3). State owned by a handler must only be
// touched from calls and queries executed through that handler.
type Handler struct {
	rt   *Runtime
	id   int64
	name string

	// qoq is the queue-of-queues: private queues are enqueued by
	// clients at reservation time and dequeued by the handler loop.
	// In lock-based mode it holds at most one live session because
	// resMu serializes reservations.
	qoq *queue.MPSC[*Session]

	// resSpin is the per-handler spinlock used to make multi-handler
	// reservations atomic in QoQ mode (§3.3).
	resSpin sched.SpinLock

	// resMu is the handler lock of the original SCOOP semantics,
	// used only when Config.QoQ is false. A client holds it for the
	// entire duration of its separate block.
	resMu sync.Mutex

	// Wait-condition support: clients blocked on a guard register a
	// channel here; the handler pokes them whenever a private queue
	// completes (state may have changed).
	wmu     sync.Mutex
	waiters []chan struct{}

	// selfClient supports handlers acting as clients of other handlers
	// from within their own calls (e.g. a thread-ring hop). Lazily
	// created; only ever used by the handler goroutine itself.
	// selfClientPub publishes it for the deadlock detector.
	selfClient    *Client
	selfClientPub atomic.Pointer[Client]
}

// NewHandler creates a handler and starts its goroutine.
func (rt *Runtime) NewHandler(name string) *Handler {
	rt.mu.Lock()
	if rt.down {
		rt.mu.Unlock()
		panic("scoopqs: NewHandler after Shutdown")
	}
	rt.nextID++
	h := &Handler{
		rt:   rt,
		id:   rt.nextID,
		name: name,
		qoq:  queue.NewMPSC[*Session](rt.cfg.Spin),
	}
	rt.handlers = append(rt.handlers, h)
	rt.wg.Add(1)
	rt.mu.Unlock()
	go h.loop()
	return h
}

// Name returns the handler's diagnostic name.
func (h *Handler) Name() string { return h.name }

// ID returns the handler's unique id within its runtime. IDs define
// the global acquisition order used for multi-handler reservations.
func (h *Handler) ID() int64 { return h.id }

// AsClient returns a Client context usable from code executing on this
// handler (i.e. inside a Call or query). It lets a handler log requests
// on other handlers, the "delegation" pattern of the paper's related
// work discussion. It must not be used from any other goroutine.
func (h *Handler) AsClient() *Client {
	if h.selfClient == nil {
		h.selfClient = h.rt.NewClient()
		h.selfClientPub.Store(h.selfClient)
	}
	return h.selfClient
}

// loop is the main handler loop, a direct transcription of the paper's
// Fig. 7: dequeue private queues from the queue-of-queues; for each,
// execute calls until the END marker (the end rule); a failed dequeue
// on the queue-of-queues means shutdown.
func (h *Handler) loop() {
	defer h.rt.wg.Done()
	for {
		s, ok := h.qoq.Dequeue()
		if !ok {
			return // shutdown: no more work
		}
		h.runSession(s)
		h.rt.stats.endsProcessed.Add(1)
		h.notifyWaiters(s.ownerWait)
	}
}

// runSession drains one private queue (the run rule) until END.
func (h *Handler) runSession(s *Session) {
	for {
		c, qok := s.q.Dequeue()
		if !qok {
			return // queue closed underneath us; only in teardown tests
		}
		switch c.kind {
		case callEnd:
			s.doneByHandler.Store(true)
			return
		case callCall:
			h.execCall(s, c.fn)
		case callSync:
			// The sync rule: the client is parked in wait; release it.
			// The handler then loops straight back to dequeueing this
			// same private queue — it is now idle at the client's
			// disposal, which is what makes client-side query
			// execution safe.
			s.parker.Unpark()
		case callQueryRemote:
			v, err := h.execQuery(s, c.qfn)
			s.replyVal, s.replyErr = v, err
			s.parker.Unpark()
		}
	}
}

func (h *Handler) execCall(s *Session, fn func()) {
	if s.errPub.Load() != nil {
		return // session poisoned by an earlier panic; skip
	}
	defer func() {
		if r := recover(); r != nil {
			s.errPub.Store(&HandlerError{Handler: h.name, Value: r})
		}
	}()
	fn()
}

func (h *Handler) execQuery(s *Session, qfn func() any) (v any, err error) {
	if e := s.errPub.Load(); e != nil {
		return nil, e
	}
	defer func() {
		if r := recover(); r != nil {
			he := &HandlerError{Handler: h.name, Value: r}
			s.errPub.Store(he)
			err = he
		}
	}()
	return qfn(), nil
}

// addWaiter registers a wait-condition channel to be poked on every
// session completion.
func (h *Handler) addWaiter(ch chan struct{}) {
	h.wmu.Lock()
	h.waiters = append(h.waiters, ch)
	h.wmu.Unlock()
}

// removeWaiter unregisters ch.
func (h *Handler) removeWaiter(ch chan struct{}) {
	h.wmu.Lock()
	for i, w := range h.waiters {
		if w == ch {
			h.waiters[i] = h.waiters[len(h.waiters)-1]
			h.waiters = h.waiters[:len(h.waiters)-1]
			break
		}
	}
	h.wmu.Unlock()
}

// notifyWaiters pokes all registered wait-condition channels except the
// one belonging to the client whose block just ended (its own END is
// not a state change it should retry on).
func (h *Handler) notifyWaiters(except chan struct{}) {
	h.wmu.Lock()
	for _, w := range h.waiters {
		if w == except {
			continue
		}
		select {
		case w <- struct{}{}:
		default: // already poked
		}
	}
	h.wmu.Unlock()
}
