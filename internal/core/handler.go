package core

import (
	"sync"
	"sync/atomic"

	"scoopqs/internal/future"
	"scoopqs/internal/obs"
	"scoopqs/internal/queue"
	"scoopqs/internal/sched"
)

// Handler is a SCOOP handler: an active object that executes the
// requests logged on it, one private queue at a time (the run and end
// rules of the paper's Fig. 3). State owned by a handler must only be
// touched from calls and queries executed through that handler.
//
// A handler executes in one of two modes, selected by Config.Workers:
// with a dedicated goroutine blocking in loop (the paper's runtime), or
// as a resumable state machine multiplexed onto the runtime's worker
// pool (Step/wake), where it occupies a goroutine only while it has
// work.
type Handler struct {
	rt   *Runtime
	id   int64
	name string

	// qoq is the queue-of-queues: private queues are enqueued by
	// clients at reservation time and dequeued by the handler loop.
	// In lock-based mode it holds at most one live session because
	// resMu serializes reservations.
	qoq *queue.MPSC[*Session]

	// Pooled-mode scheduling state (see the h* constants). cur is the
	// session pinned mid-drain, owned by whichever worker holds the
	// hRunning state; the wake/Step protocol guarantees exclusive,
	// happens-before-ordered access. task is the handler's scheduling
	// token, allocated once so wakes never heap-allocate. onWorker is
	// the pool worker currently executing Step; it is only read by
	// code running on this handler (the same goroutine), which is what
	// lets a handler's own enqueues take the executor's local-deque
	// fast path.
	state    atomic.Int32
	cur      *Session
	task     *sched.Task
	onWorker *sched.Worker
	spin     int

	// awaitStart is the obs timestamp of the last await park, written
	// by the worker before the state moves to hAwaiting and consumed by
	// awaitWake after its CAS out of hAwaiting — the state transition
	// orders the accesses. Zero when recording was off at park time.
	awaitStart int64

	// awaitingOn publishes the future a parked await is waiting on, so
	// the deadlock detector can follow await edges. Set before the
	// handler parks (state machine or dedicated goroutine), cleared on
	// resume; advisory, like every wait edge.
	awaitingOn atomic.Pointer[future.Future]

	// pendingAwait holds the continuation armed by Handler.Await during
	// the current request. It is only touched by code holding the
	// handler (the dedicated goroutine, or the worker in hRunning), and
	// is serviced after the arming request returns: inline if the
	// future already resolved, else by parking — the state machine in
	// hAwaiting (pooled) or the goroutine in Future.Get (dedicated).
	pendingAwait *awaitReq

	// resSpin is the per-handler spinlock used to make multi-handler
	// reservations atomic in QoQ mode (§3.3).
	resSpin sched.SpinLock

	// resMu is the handler lock of the original SCOOP semantics,
	// used only when Config.QoQ is false. A client holds it for the
	// entire duration of its separate block.
	resMu sync.Mutex

	// Wait-condition support: clients blocked on a guard register a
	// channel here; the handler pokes them whenever a private queue
	// completes (state may have changed).
	wmu     sync.Mutex
	waiters []chan struct{}

	// selfClient supports handlers acting as clients of other handlers
	// from within their own calls (e.g. a thread-ring hop). Lazily
	// created; only ever used from code executing on this handler.
	// selfClientPub publishes it for the deadlock detector.
	selfClient    *Client
	selfClientPub atomic.Pointer[Client]
}

// Pooled-mode handler states. A handler is hIdle when it has no known
// work, hReady while queued on the executor's ready queue, hRunning
// while a worker drains it, hRunningDirty when a wake arrived during a
// drain (forcing one more pass before idling), hAwaiting while parked
// mid-request on an unresolved future (Handler.Await) — logically
// still inside the request, so queue wakes do not reschedule it; only
// the future's completion does — and hDone once its queue-of-queues is
// closed and drained.
const (
	hIdle int32 = iota
	hReady
	hRunning
	hRunningDirty
	hAwaiting
	hDone
)

// awaitReq is a continuation armed by Handler.Await: run cont with the
// future's result before touching any further request of the session.
type awaitReq struct {
	fut  *future.Future
	cont func(v any, err error)
}

// NewHandler creates a handler. In dedicated mode it starts the
// handler's goroutine; in pooled mode the handler stays off the ready
// queue until a client gives it work.
func (rt *Runtime) NewHandler(name string) *Handler {
	rt.mu.Lock()
	if rt.down {
		rt.mu.Unlock()
		panic("scoopqs: NewHandler after Shutdown")
	}
	rt.nextID++
	h := &Handler{
		rt:   rt,
		id:   rt.nextID,
		name: name,
		qoq:  queue.NewMPSC[*Session](rt.cfg.Spin),
		spin: rt.cfg.Spin,
	}
	if h.spin <= 0 {
		h.spin = sched.DefaultSpin
	}
	if rt.exec != nil {
		h.task = sched.NewTask(h)
		// Route queue-of-queues notifications to the scheduler instead
		// of a dedicated consumer. Installed before the handler is
		// published, so producers always see it. Reservations on the
		// hot path use TryEnqueueNoNotify and wake with producer
		// context instead; this hook covers Close and rejections.
		h.qoq.SetNotify(h.wake)
	}
	rt.handlers = append(rt.handlers, h)
	rt.wg.Add(1)
	rt.mu.Unlock()
	if rt.exec == nil {
		go h.loop()
	}
	return h
}

// Name returns the handler's diagnostic name.
func (h *Handler) Name() string { return h.name }

// ID returns the handler's unique id within its runtime. IDs define
// the global acquisition order used for multi-handler reservations.
func (h *Handler) ID() int64 { return h.id }

// AsClient returns a Client context usable from code executing on this
// handler (i.e. inside a Call or query). It lets a handler log requests
// on other handlers, the "delegation" pattern of the paper's related
// work discussion. It must not be used from any other goroutine.
func (h *Handler) AsClient() *Client {
	if h.selfClient == nil {
		h.selfClient = h.rt.NewClient()
		// In pooled mode this client's code runs on executor workers;
		// its blocking operations must notify the pool so replacements
		// keep delegation chains deadlock-free, and its enqueues wake
		// target handlers on the hosting worker's local deque.
		h.selfClient.hosted = h.rt.exec
		h.selfClient.host = h
		h.selfClientPub.Store(h.selfClient)
	}
	return h.selfClient
}

// Await registers cont to run on this handler with fut's result,
// without blocking a pool worker while fut is unresolved. It may only
// be called from code already executing on h (a call, query, or prior
// continuation), like AsClient.
//
// The continuation is deferred: it runs after the arming request
// returns, and strictly before any further request of the session —
// so from the rest of the system's point of view the handler is still
// inside the arming request until cont completes, preserving the run
// rule's no-interleaving guarantee. In pooled mode an unresolved
// future parks the handler state machine in the awaiting state and
// returns the worker to the pool; the future's completion reschedules
// the handler (this is what lets deep delegation chains run on a
// fixed-size pool without compensation spawns). In dedicated mode the
// handler's own goroutine blocks, which is the paper's native shape.
//
// At most one Await may be armed per request; cont itself may call
// Await again to chain. A panic in cont poisons the session exactly
// like a panicking call; once the session is poisoned, pending
// continuations run with the session's *HandlerError as their err so
// the futures they resolve fail instead of hanging. Awaiting a future
// nothing will ever resolve wedges the handler mid-request exactly as
// a synchronous query cycle would (§2.5) — and Shutdown will wait for
// it; the deadlock detector does not yet see await edges.
func (h *Handler) Await(fut *future.Future, cont func(v any, err error)) {
	if h.pendingAwait != nil {
		panic("scoopqs: Handler.Await armed twice in one request (chain from the continuation instead)")
	}
	h.pendingAwait = &awaitReq{fut: fut, cont: cont}
}

// serviceAwaitBlocking services pending continuations by blocking the
// calling goroutine (dedicated mode): wait for the future, run the
// continuation, repeat while continuations re-arm. The awaited future
// is published for the deadlock detector while the goroutine blocks.
func (h *Handler) serviceAwaitBlocking(s *Session) {
	for h.pendingAwait != nil {
		req := h.pendingAwait
		h.pendingAwait = nil
		var t0 int64
		if obs.Enabled() {
			t0 = obs.Now()
		}
		h.awaitingOn.Store(req.fut)
		v, err := req.fut.Get()
		h.awaitingOn.Store(nil)
		if t0 != 0 {
			d := obs.Now() - t0
			awaitHist.Observe(d)
			obs.Emit(obs.KindAwaitPark, uint64(h.id), d)
		}
		h.runCont(s, req.cont, v, err)
	}
}

// runCont executes an await continuation under the same poisoning
// discipline as execCall — except that a poisoned session fails the
// continuation instead of skipping it: cont is the tail of a request
// already in flight, and dropping it would leave the futures it was
// going to resolve pending forever, wedging every awaiter upstream.
// cont observes the poison as its error and typically forwards it.
func (h *Handler) runCont(s *Session, cont func(any, error), v any, err error) {
	if e := s.errPub.Load(); e != nil {
		v, err = nil, e
	}
	defer func() {
		if r := recover(); r != nil {
			s.errPub.Store(&HandlerError{Handler: h.name, Value: r})
		}
	}()
	cont(v, err)
}

// loop is the dedicated-mode handler main loop, a direct transcription
// of the paper's Fig. 7: dequeue private queues from the queue-of-
// queues; for each, execute calls until the END marker (the end rule);
// a failed dequeue on the queue-of-queues means shutdown.
func (h *Handler) loop() {
	defer h.rt.wg.Done()
	for {
		s, ok := h.qoq.Dequeue()
		if !ok {
			return // shutdown: no more work
		}
		h.runSession(s)
	}
}

// runSession drains one private queue (the run rule) until END. An
// await armed by a request is serviced — blocking this dedicated
// goroutine — before the next request is dequeued.
func (h *Handler) runSession(s *Session) {
	for {
		h.serviceAwaitBlocking(s)
		c, qok := s.q.Dequeue()
		if !qok {
			return // queue closed underneath us; only in teardown tests
		}
		if h.execOne(s, c) {
			return
		}
	}
}

// wake makes the handler runnable on the executor after one of its
// queues gained work (or was closed), routing through the shared
// injector. It is the context-free notification hook (queue Close,
// rejection wakes, future completions); producers that know which
// worker they run on use wakeFrom instead.
func (h *Handler) wake() { h.wakeFrom(nil) }

// wakeFrom makes the handler runnable after one of its queues gained
// work, scheduling it on w's local deque when the producer runs on a
// pool worker — the fast re-ready path: a handler waking the next
// handler of a message chain keeps it on its own (warm) worker, and
// the executor skips the condvar when anyone is already scanning. A
// nil w falls back to the injector. Spurious calls are cheap and safe.
func (h *Handler) wakeFrom(w *sched.Worker) {
	for {
		switch h.state.Load() {
		case hIdle:
			if h.state.CompareAndSwap(hIdle, hReady) {
				h.rt.stats.schedules.Add(1)
				if obs.Enabled() {
					emitOn(w, obs.KindHandlerReady, uint64(h.id), 0)
				}
				h.rt.exec.ReadyLocal(w, h.task)
				return
			}
		case hReady, hRunningDirty, hDone:
			return // already scheduled, will re-check, or retired
		case hAwaiting:
			// Parked mid-request on a future; new queue work cannot run
			// until the request finishes, and the future's completion
			// callback performs the reschedule.
			return
		case hRunning:
			if h.state.CompareAndSwap(hRunning, hRunningDirty) {
				return // the draining worker will make another pass
			}
		}
	}
}

// stepBudget bounds the requests one Step executes before the handler
// re-queues itself, so a handler fed by a fast client cannot starve
// the other handlers sharing the pool.
const stepBudget = 1024

// Step is the executor entry point: resume this handler and run it
// until it exhausts available work, completes, or uses up its fairness
// budget. Exclusive ownership is guaranteed by the wake protocol —
// Step only ever runs after a transition to hReady. The worker is
// remembered for the duration so enqueues made by this handler's code
// ride its local deque.
func (h *Handler) Step(w *sched.Worker) {
	h.onWorker = w
	h.state.Store(hRunning)
	var runT0 int64
	if obs.Enabled() {
		runT0 = obs.Now()
	}
	budget := stepBudget
	for {
		switch h.drain(&budget) {
		case drainDone:
			if !h.state.CompareAndSwap(hRunning, hDone) {
				// A wake raced the retirement decision
				// (hRunningDirty); make one more pass to be certain.
				h.state.Store(hRunning)
				continue
			}
			h.noteRun(w, runT0)
			h.rt.wg.Done()
			return
		case drainBudget:
			h.state.Store(hReady)
			h.rt.stats.schedules.Add(1)
			h.noteRun(w, runT0)
			// Through the injector, not the local deque: the budget
			// exists to round-robin a saturated handler with everyone
			// else's pending work, and a LIFO self-push would defeat it.
			h.rt.exec.Ready(h.task)
			return
		case drainAwaiting:
			// Park the state machine, not the worker: hand the worker
			// back and let the future's completion reschedule us. The
			// store may overwrite hRunningDirty — safe, because the
			// resume path always drains, so work signalled by that lost
			// wake is picked up then.
			req := h.pendingAwait
			h.rt.stats.awaitParks.Add(1)
			h.noteRun(w, runT0)
			if obs.Enabled() {
				h.awaitStart = obs.Now()
			}
			h.awaitingOn.Store(req.fut)
			h.state.Store(hAwaiting)
			req.fut.OnComplete(func(any, error) { h.awaitWake() })
			return
		case drainEmpty:
			// Read cur before releasing ownership: after a successful
			// CAS to hIdle another worker may immediately resume the
			// handler and rewrite it.
			parkedMidSession := h.cur != nil
			h.noteRun(w, runT0)
			if h.state.CompareAndSwap(hRunning, hIdle) {
				if parkedMidSession {
					// The client owns the next move; its enqueue will
					// reschedule us.
					h.rt.stats.handlerParks.Add(1)
				}
				return
			}
			// A wake arrived while draining (hRunningDirty): new work
			// may have been enqueued after our last empty poll.
			h.state.Store(hRunning)
			if runT0 != 0 {
				runT0 = obs.Now() // new pass, new span
			}
		}
	}
}

// noteRun emits the handler-run span of one Step pass; no-op when the
// pass started with recording off.
func (h *Handler) noteRun(w *sched.Worker, t0 int64) {
	if t0 == 0 {
		return
	}
	emitOn(w, obs.KindHandlerRun, uint64(h.id), obs.Now()-t0)
}

// drainOutcome says why a drain pass stopped.
type drainOutcome int

const (
	drainEmpty    drainOutcome = iota // no work visible right now
	drainBudget                       // fairness budget exhausted, work may remain
	drainAwaiting                     // parked mid-request on an unresolved future
	drainDone                         // queue-of-queues closed and fully drained
)

// awaitWake is the future-completion callback of a parked await: make
// the handler runnable again so drain can run the continuation. The
// CAS cannot spuriously fail — the state is stored before the callback
// is registered, and only this callback leaves hAwaiting. The resume
// goes through the injector: the completer's worker context is not
// threaded through future callbacks.
func (h *Handler) awaitWake() {
	if h.state.CompareAndSwap(hAwaiting, hReady) {
		if t0 := h.awaitStart; t0 != 0 {
			h.awaitStart = 0
			d := obs.Now() - t0
			awaitHist.Observe(d)
			obs.Emit(obs.KindAwaitPark, uint64(h.id), d)
		}
		h.awaitingOn.Store(nil)
		h.rt.stats.schedules.Add(1)
		h.rt.exec.Ready(h.task)
	}
}

// drain executes available requests: dequeue private queues from the
// queue-of-queues and run each to its END, exactly like the dedicated
// loop, but returning instead of blocking whenever a queue is empty.
// The session being drained stays pinned in h.cur across parks, which
// keeps the paper's run-rule ordering: a handler never abandons a
// private queue mid-block, and after serving a sync it remains at the
// client's disposal (§3.2) — first spinning on the worker for the
// client's next request, then parking without touching other sessions.
func (h *Handler) drain(budget *int) drainOutcome {
	for {
		if h.cur == nil {
			s, ok := h.qoq.TryDequeue()
			if !ok {
				// Retire only once the queue has quiesced: closed with
				// no reservation still in flight. A racing producer's
				// wake reschedules us otherwise, so nothing accepted
				// by the queue is ever abandoned.
				if h.qoq.Quiesced() {
					return drainDone
				}
				return drainEmpty
			}
			h.cur = s
		}
		s := h.cur
		for {
			if *budget <= 0 {
				// Budget first even with an await armed: the requeue
				// path preserves ordering (the next Step services the
				// await before dequeuing), so a chain of continuations
				// over already-resolved futures cannot monopolize the
				// worker.
				return drainBudget
			}
			// An armed await gates the session: its continuation must
			// run before any further request. Resolved already — run it
			// inline on this worker; unresolved — park the machine.
			if h.pendingAwait != nil {
				v, err, ok := h.pendingAwait.fut.TryGet()
				if !ok {
					return drainAwaiting
				}
				req := h.pendingAwait
				h.pendingAwait = nil
				*budget--
				h.runCont(s, req.cont, v, err)
				continue // the continuation may have re-armed
			}
			c, ok := s.q.TryDequeue()
			if !ok {
				if !h.spinForWork(s) {
					return drainEmpty
				}
				continue
			}
			*budget--
			if h.execOne(s, c) {
				break // session ended; back to the queue-of-queues
			}
		}
	}
}

// spinForWork polls a momentarily empty private queue briefly before
// the handler gives up its worker: the client's next request after a
// sync handshake is usually one scheduling step away, and staying on
// the worker preserves the paper's direct handler-to-client handoff.
func (h *Handler) spinForWork(s *Session) bool {
	for i := 0; i < h.spin; i++ {
		sched.SpinWait(i)
		if !s.q.Empty() {
			return true
		}
	}
	return false
}

// execOne executes a single request of session s and reports whether
// it was the END marker. It is the single execution path shared by the
// dedicated loop and the pooled state machine.
func (h *Handler) execOne(s *Session, c call) (ended bool) {
	switch c.kind {
	case callEnd:
		// The end rule: release the handler for other sessions and poke
		// wait-condition waiters (handler state may have changed). The
		// client may already have re-enqueued this session for its next
		// block — reuse needs no handshake, because each reservation
		// pairs with exactly one END-terminated run of the queue.
		h.cur = nil
		h.rt.stats.endsProcessed.Add(1)
		h.notifyWaiters(s.ownerWait)
		return true
	case callCall:
		if c.at != 0 {
			// Log→execution latency of an async call; the stamp is only
			// written while recording is enabled (see Session.Call).
			d := obs.Now() - c.at
			callExecHist.Observe(d)
			emitOn(h.onWorker, obs.KindCall, uint64(h.id), d)
		}
		h.execCall(s, c.fn)
	case callFuture:
		// An asynchronous query: execute and resolve the future; nobody
		// is parked on the session, so the handler just moves on.
		v, err := h.execQuery(s, c.qfn)
		resolveFuture(c.fut, v, err)
	case callSync:
		// The sync rule: the client is parked in wait; release it.
		// The handler then loops straight back to dequeueing this
		// same private queue — it is now idle at the client's
		// disposal, which is what makes client-side query
		// execution safe.
		s.parker.Unpark()
	case callQueryRemote:
		v, err := h.execQuery(s, c.qfn)
		s.replyVal, s.replyErr = v, err
		s.parker.Unpark()
	}
	return false
}

func (h *Handler) execCall(s *Session, fn func()) {
	if s.errPub.Load() != nil {
		return // session poisoned by an earlier panic; skip
	}
	defer func() {
		if r := recover(); r != nil {
			s.errPub.Store(&HandlerError{Handler: h.name, Value: r})
		}
	}()
	fn()
}

func (h *Handler) execQuery(s *Session, qfn func() any) (v any, err error) {
	if e := s.errPub.Load(); e != nil {
		return nil, e
	}
	defer func() {
		if r := recover(); r != nil {
			he := &HandlerError{Handler: h.name, Value: r}
			s.errPub.Store(he)
			err = he
		}
	}()
	return qfn(), nil
}

// resolveFuture resolves fut with a query result, flattening futures:
// a query that returns a *future.Future chains fut to it instead of
// boxing it, so a pipeline of asynchronous hops completes end to end
// once the final value exists.
func resolveFuture(fut *future.Future, v any, err error) {
	if err != nil {
		fut.Fail(err)
		return
	}
	if inner, ok := v.(*future.Future); ok {
		inner.OnComplete(func(iv any, ierr error) { resolveFuture(fut, iv, ierr) })
		return
	}
	fut.Complete(v)
}

// addWaiter registers a wait-condition channel to be poked on every
// session completion.
func (h *Handler) addWaiter(ch chan struct{}) {
	h.wmu.Lock()
	h.waiters = append(h.waiters, ch)
	h.wmu.Unlock()
}

// removeWaiter unregisters ch.
func (h *Handler) removeWaiter(ch chan struct{}) {
	h.wmu.Lock()
	for i, w := range h.waiters {
		if w == ch {
			h.waiters[i] = h.waiters[len(h.waiters)-1]
			h.waiters = h.waiters[:len(h.waiters)-1]
			break
		}
	}
	h.wmu.Unlock()
}

// notifyWaiters pokes all registered wait-condition channels except the
// one belonging to the client whose block just ended (its own END is
// not a state change it should retry on).
func (h *Handler) notifyWaiters(except chan struct{}) {
	h.wmu.Lock()
	for _, w := range h.waiters {
		if w == except {
			continue
		}
		select {
		case w <- struct{}{}:
		default: // already poked
		}
	}
	h.wmu.Unlock()
}
