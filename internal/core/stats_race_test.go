package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"scoopqs/internal/future"
	"scoopqs/internal/obs"
)

// TestStatsSnapshotDuringStorm hammers Runtime.Stats and the obs
// registry's histogram merge from spectator goroutines while a
// fan-out workload keeps the pooled executor busy — the live-snapshot
// guarantee both APIs claim, checked under -race at the two
// interesting GOMAXPROCS settings.
func TestStatsSnapshotDuringStorm(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			obs.Enable()
			defer obs.Disable()

			rt := New(ConfigAll.WithWorkers(2))
			defer rt.Shutdown()
			const width, calls, rounds = 16, 50, 5
			hs := make([]*Handler, width)
			sums := make([]int64, width)
			for i := range hs {
				hs[i] = rt.NewHandler(fmt.Sprintf("storm%d", i))
			}

			stop := make(chan struct{})
			var spect sync.WaitGroup
			for s := 0; s < 2; s++ {
				spect.Add(1)
				go func() {
					defer spect.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						_ = rt.Stats()
						for _, snap := range obs.Default().Snapshot() {
							_ = snap.P99()
						}
					}
				}()
			}

			c := rt.NewClient()
			for r := 0; r < rounds; r++ {
				futs := make([]*future.Future, width)
				for i, h := range hs {
					i := i
					c.Separate(h, func(s *Session) {
						for j := 0; j < calls; j++ {
							s.Call(func() { sums[i]++ })
						}
						// First sync performs (the calls desynchronized
						// the session); the second is dynamically elided
						// under ConfigAll — so the storm also exercises
						// the sync counters and the elide event path.
						s.Sync()
						s.Sync()
						futs[i] = QueryAsync(s, func() int64 { return sums[i] })
					})
				}
				if _, err := c.Await(future.All(futs...)); err != nil {
					t.Fatal(err)
				}
			}
			close(stop)
			spect.Wait()
			for i := range sums {
				if sums[i] != calls*rounds {
					t.Fatalf("handler %d executed %d calls, want %d", i, sums[i], calls*rounds)
				}
			}
			// Exactly one sync performed and one elided per block, and
			// every performed sync is an executed barrier: the three
			// counters must agree to the call, even under the storm.
			st := rt.Stats()
			if want := int64(width * rounds); st.SyncsPerformed != want || st.SyncsExecuted != want || st.SyncsElided != want {
				t.Fatalf("sync counters = performed %d / executed %d / elided %d, want %d each",
					st.SyncsPerformed, st.SyncsExecuted, st.SyncsElided, want)
			}
		})
	}
}
