package core

import (
	"sort"
	"sync/atomic"

	"scoopqs/internal/future"
	"scoopqs/internal/obs"
	"scoopqs/internal/queue"
	"scoopqs/internal/sched"
)

// Client is a thread-of-control's context for entering separate blocks.
// It caches private queues per handler (the paper's "cache of queues")
// and holds the wait-condition channel used by SeparateWhen. A Client
// is not safe for concurrent use: create one per goroutine.
type Client struct {
	rt     *Runtime
	cache  map[*Handler]*Session
	waitCh chan struct{}

	// hosted is non-nil when this client's code runs on executor
	// workers (a handler's AsClient in pooled mode). Blocking
	// operations then bracket their waits with the executor's
	// compensation hooks so the pool can spawn a replacement worker.
	hosted *sched.Executor

	// host is the handler whose code this client runs on (AsClient),
	// nil for ordinary clients. It supplies the worker context for the
	// scheduler's local-push fast path: requests this client logs wake
	// their target on the hosting worker's own deque.
	host *Handler

	// waitingOn is the handler this client is currently blocked on in
	// a sync or query, nil when running. Read by DetectDeadlock.
	waitingOn atomic.Pointer[Handler]
}

// blockBegin/blockEnd bracket operations that block the calling
// goroutine until some handler makes progress. They are no-ops for
// ordinary clients; for worker-hosted clients they keep the pool
// supplied with runnable workers (see sched.Executor).
func (c *Client) blockBegin() {
	if c.hosted != nil {
		// The worker context lets the executor republish this worker's
		// local queue before the goroutine parks.
		c.hosted.BlockingBegin(c.curWorker())
	}
}

func (c *Client) blockEnd() {
	if c.hosted != nil {
		c.hosted.BlockingEnd(c.curWorker())
	}
}

// curWorker returns the pool worker the client's code is currently
// running on, nil for clients on their own goroutines (or dedicated
// mode). Only meaningful on the calling goroutine itself: for a
// handler-hosted client that is exactly the goroutine executing the
// host's Step, so the plain read is ordered.
func (c *Client) curWorker() *sched.Worker {
	if c.host != nil {
		return c.host.onWorker
	}
	return nil
}

// session returns a private queue for h, reusing the cached one when
// this client's previous block on h has ended, else allocating fresh
// (Fig. 8: "freshly created or taken from a cache of queues").
//
// Reuse is re-armed by the END handoff itself, with no handshake: once
// the client has logged END, re-enqueueing the same session into the
// queue-of-queues is safe even while the handler is still draining the
// previous block, because each reservation pairs with exactly one
// END-terminated segment of the private queue — the handler simply
// dequeues the session again and runs the next segment. (An earlier
// version spun waiting for the handler to consume END and fell back to
// a fresh queue after 128 polls, which made SessionsNew climb whenever
// a pooled handler was scheduled out too long.)
func (c *Client) session(h *Handler) *Session {
	if s, ok := c.cache[h]; ok && !s.inUse && s.errPub.Load() == nil {
		s.inUse = true
		s.synced = false
		c.rt.stats.sessionsReused.Add(1)
		return s
	}
	q := queue.NewSPSC[call](c.rt.cfg.Spin)
	if c.rt.exec != nil {
		// Route private-queue notifications to the scheduler: logging
		// a request on a parked handler makes it runnable instead of
		// unparking a dedicated goroutine. The hook evaluates the
		// producer's worker at enqueue time, so a handler-hosted
		// client wakes h on its own worker's deque (the fast path).
		q.SetNotify(func() { h.wakeFrom(c.curWorker()) })
	}
	s := &Session{
		h:         h,
		owner:     c,
		q:         q,
		parker:    sched.NewParker(),
		ownerWait: c.waitCh,
		inUse:     true,
	}
	c.cache[h] = s
	c.rt.stats.sessionsNew.Add(1)
	return s
}

// reserve1 registers the client's private queue with the handler (the
// separate rule). In QoQ mode this is a non-blocking enqueue into the
// queue-of-queues; in lock-based mode the client first takes the
// handler's lock and holds it until the block ends (Fig. 2 semantics:
// other clients wait until the current one is finished).
func (c *Client) reserve1(h *Handler) *Session {
	s, err := c.tryReserve1(h)
	if err != nil {
		// Surface a clear error instead of the raw queue panic
		// ("Enqueue on closed MPSC") this used to produce.
		panic(err)
	}
	return s
}

// tryReserve1 is reserve1 with an error instead of a panic when the
// runtime is shutting down.
func (c *Client) tryReserve1(h *Handler) (*Session, error) {
	if !c.rt.cfg.QoQ {
		c.lockHandler(h)
	}
	s := c.session(h)
	if !c.enqueueSession(h, s) {
		if !c.rt.cfg.QoQ {
			h.resMu.Unlock()
		}
		// Un-mark the cached session: the reservation never happened,
		// so the cache entry must not look mid-block.
		s.inUse = false
		return nil, ErrShutdown
	}
	c.rt.stats.reservations.Add(1)
	return s, nil
}

// enqueueSession registers s with h's queue-of-queues and wakes h. In
// pooled mode the enqueue is quiet and the wake carries the producer's
// worker context, so a handler reserving another handler schedules it
// on its own worker's deque; dedicated mode keeps the queue's built-in
// parker wakeup. Reports false when the runtime is shutting down.
func (c *Client) enqueueSession(h *Handler, s *Session) bool {
	if c.rt.exec == nil {
		return h.qoq.TryEnqueue(s)
	}
	if !h.qoq.TryEnqueueNoNotify(s) {
		return false
	}
	h.wakeFrom(c.curWorker())
	return true
}

// lockHandler takes the lock-based-mode handler lock, telling the
// executor first when the wait may be long (worker-hosted client
// blocked behind another client's block).
func (c *Client) lockHandler(h *Handler) {
	if h.resMu.TryLock() {
		return
	}
	c.blockBegin()
	h.resMu.Lock()
	c.blockEnd()
}

// release1 ends the separate block: log END and, in lock-based mode,
// give up the handler lock.
func (c *Client) release1(s *Session) {
	s.end()
	if !c.rt.cfg.QoQ {
		s.h.resMu.Unlock()
	}
}

// Reserve opens a single-handler separate block without the lexical
// callback shape: it returns the session plus an idempotent release
// function that logs the END marker (and releases the handler lock in
// lock-based mode). It exists for message-driven drivers — the remote
// package's socket-backed private queues — that cannot express a block
// as one function call. Forgetting to call release wedges the handler
// exactly as a never-ending separate block would; prefer Separate.
func (c *Client) Reserve(h *Handler) (*Session, func()) {
	s, release, err := c.TryReserve(h)
	if err != nil {
		panic(err)
	}
	return s, release
}

// TryReserve is Reserve with an error instead of a panic when the
// runtime is shutting down (ErrShutdown). It exists for the remote
// demultiplexer, whose connection reader serves many logical clients
// at once: a reservation racing Shutdown must fail that one channel,
// not unwind the goroutine every channel shares.
func (c *Client) TryReserve(h *Handler) (*Session, func(), error) {
	s, err := c.tryReserve1(h)
	if err != nil {
		return nil, nil, err
	}
	released := false
	return s, func() {
		if released {
			return
		}
		released = true
		c.release1(s)
	}, nil
}

// Separate runs body within a single-handler separate block:
//
//	separate h do body end
//
// Asynchronous calls logged on the session execute on h in order with
// no interleaving from other clients. The reservation itself never
// blocks in QoQ mode. If body panics the block is still terminated
// correctly before the panic propagates.
func (c *Client) Separate(h *Handler, body func(*Session)) {
	s := c.reserve1(h)
	defer c.release1(s)
	body(s)
}

// reserveMany atomically reserves all handlers (deduplicated), in a
// canonical order. QoQ mode: take every handler's reservation spinlock
// in id order, enqueue all private queues, release the spinlocks
// (§3.3). Lock-based mode: acquire the handler locks in id order and
// hold them for the whole block.
func (c *Client) reserveMany(hs []*Handler) []*Session {
	sorted := make([]*Handler, 0, len(hs))
	sorted = append(sorted, hs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].id < sorted[j].id })
	// Deduplicate: reserving a handler twice in one block is an error
	// in SCOOP; we fold duplicates into one reservation.
	uniq := sorted[:0]
	for _, h := range sorted {
		if len(uniq) == 0 || uniq[len(uniq)-1] != h {
			uniq = append(uniq, h)
		}
	}

	if c.rt.cfg.QoQ {
		for _, h := range uniq {
			h.resSpin.Lock()
		}
		sessions := make([]*Session, len(uniq))
		down := false
		for i, h := range uniq {
			sessions[i] = c.session(h)
			if !c.enqueueSession(h, sessions[i]) {
				down = true
				break
			}
		}
		for i := len(uniq) - 1; i >= 0; i-- {
			uniq[i].resSpin.Unlock()
		}
		if down {
			// Release the spinlocks before surfacing the error so
			// other (equally doomed) reservers panic instead of
			// spinning forever.
			panic(ErrShutdown)
		}
		c.rt.stats.multiResGroups.Add(1)
		return sessions
	}

	for _, h := range uniq {
		c.lockHandler(h)
	}
	sessions := make([]*Session, len(uniq))
	down := false
	for i, h := range uniq {
		sessions[i] = c.session(h)
		if !c.enqueueSession(h, sessions[i]) {
			down = true
			break
		}
	}
	if down {
		for i := len(uniq) - 1; i >= 0; i-- {
			uniq[i].resMu.Unlock()
		}
		panic(ErrShutdown)
	}
	c.rt.stats.multiResGroups.Add(1)
	return sessions
}

func (c *Client) releaseMany(sessions []*Session) {
	for _, s := range sessions {
		s.end()
	}
	if !c.rt.cfg.QoQ {
		for i := len(sessions) - 1; i >= 0; i-- {
			sessions[i].h.resMu.Unlock()
		}
	}
}

// SeparateMany runs body within a multi-handler separate block (§2.4):
// all handlers are reserved atomically, so any other client that
// reserves an overlapping set sees either all or none of this block's
// effects. The sessions passed to body are ordered by handler id
// (ascending), after deduplication.
func (c *Client) SeparateMany(hs []*Handler, body func([]*Session)) {
	sessions := c.reserveMany(hs)
	defer c.releaseMany(sessions)
	body(sessions)
}

// SeparateWhen runs body within a multi-handler separate block once
// guard holds. The guard is evaluated with the handlers reserved; if it
// returns false the reservation is abandoned and retried after some
// other client's block on one of the handlers completes (SCOOP wait
// conditions). guard must be side-effect-free on the handlers' state.
func (c *Client) SeparateWhen(hs []*Handler, guard func([]*Session) bool, body func([]*Session)) {
	for {
		sessions := c.reserveMany(hs)
		if guard(sessions) {
			defer c.releaseMany(sessions)
			body(sessions)
			return
		}
		c.rt.stats.guardRetries.Add(1)
		// Register interest in state changes before releasing so a
		// block completing between release and wait is not missed.
		for _, s := range sessions {
			s.h.addWaiter(c.waitCh)
		}
		hid := sessions[0].h.id
		c.releaseMany(sessions)
		var t0 int64
		if obs.Enabled() {
			t0 = obs.Now()
		}
		c.blockBegin()
		<-c.waitCh
		c.blockEnd()
		if t0 != 0 {
			d := obs.Now() - t0
			guardWaitHist.Observe(d)
			obs.Emit(obs.KindGuardWait, uint64(hid), d)
		}
		for _, s := range sessions {
			s.h.removeWaiter(c.waitCh)
		}
	}
}

// Await blocks until f resolves and returns its result. It is the
// client-side synchronization point of the futures subsystem:
//
//   - for a worker-hosted client (handler code in pooled mode that
//     cannot use the continuation-passing Handler.Await) the wait is
//     bracketed with the executor's compensation hooks, like any other
//     blocking operation;
//   - after Runtime.Shutdown an unresolved future can never resolve,
//     so Await returns ErrShutdown instead of hanging.
//
// The error is *HandlerError when the future's query panicked; use
// f.Await to re-panic instead, matching Query's contract.
func (c *Client) Await(f *future.Future) (any, error) {
	if v, err, ok := f.TryGet(); ok {
		return v, err
	}
	c.blockBegin()
	defer c.blockEnd()
	select {
	case <-f.Done():
		return f.Get()
	case <-c.rt.downC:
		// Shutdown fails tracked stragglers itself; re-check so a
		// future that resolved while we raced the close is honored.
		if v, err, ok := f.TryGet(); ok {
			return v, err
		}
		return nil, ErrShutdown
	}
}

// Runtime returns the runtime this client belongs to.
func (c *Client) Runtime() *Runtime { return c.rt }
