// Package qsimpl implements the Cowichan kernels on the SCOOP/Qs
// runtime: worker handlers own row shards; the client distributes
// inputs by logging asynchronous calls that carry row copies (push) and
// collects results with synchronous queries (pull), the idiomatic
// SCOOP data-transfer pattern of the paper's §3.4. Pulling is
// element-by-element in a tight loop — precisely the access pattern
// whose sync traffic the dynamic and static coalescing optimizations
// exist to eliminate, which is what Table 1/Fig. 16 measure.
//
// The configuration decides the query strategy:
//
//   - None / QoQ: every element is a packaged remote query (Fig. 10a).
//   - Dynamic: client-side queries; each checks the synced flag and the
//     redundant round-trips are elided at run time (§3.4.1).
//   - Static / All: the hoisted code the static sync-coalescing pass
//     generates — one SyncNow per pull loop, LocalQuery per element
//     (§3.4.2; the transformation is validated on equivalent IR by the
//     compiler tests).
//
// Timing: Compute covers the in-handler kernel work (measured between
// issuing the compute calls and the completion barrier); Comm covers
// input row pushes and the query pull loops.
package qsimpl

import (
	"sort"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/cowichan"
	"scoopqs/internal/sched"
)

// pullMode selects the query strategy implied by the configuration.
type pullMode uint8

const (
	modeRemote pullMode = iota
	modeDynamic
	modeHoisted
)

// shard is the state owned by one worker handler. By the SCOOP
// discipline it is touched only from calls and queries executed on
// that handler.
type shard struct {
	lo, hi int // row range of this worker
	n      int // row width
	rows   [][]int32
	mask   [][]bool
	hist   []int
	pts    []cowichan.Point
	frows  [][]float64
	fvec   []float64
}

// Impl is the SCOOP/Qs implementation.
type Impl struct {
	rt      *core.Runtime
	client  *core.Client
	hs      []*core.Handler
	shards  []*shard
	mode    pullMode
	ownRT   bool
	workers int
}

// New creates an implementation with its own runtime under cfg and the
// given number of worker handlers.
func New(cfg core.Config, workers int) *Impl {
	if workers < 1 {
		workers = 1
	}
	rt := core.New(cfg)
	im := &Impl{rt: rt, client: rt.NewClient(), ownRT: true, workers: workers}
	switch {
	case cfg.StaticElide:
		im.mode = modeHoisted
	case cfg.DynElide:
		im.mode = modeDynamic
	default:
		im.mode = modeRemote
	}
	for w := 0; w < workers; w++ {
		im.hs = append(im.hs, rt.NewHandler("cowichan-worker"))
		im.shards = append(im.shards, &shard{})
	}
	return im
}

// Name implements cowichan.Impl.
func (*Impl) Name() string { return "Qs" }

// Runtime exposes the underlying runtime (for stats in tests and the
// harness).
func (im *Impl) Runtime() *core.Runtime { return im.rt }

// Close implements cowichan.Impl.
func (im *Impl) Close() {
	if im.ownRT {
		im.rt.Shutdown()
	}
}

// pull copies n handler-owned values into set(k, v) using the
// configuration's query strategy. get runs against handler state.
func pull[T any](im *Impl, s *core.Session, n int, get func(k int) T, set func(k int, v T)) {
	switch im.mode {
	case modeRemote:
		for k := 0; k < n; k++ {
			k := k
			set(k, core.QueryRemote(s, func() T { return get(k) }))
		}
	case modeDynamic:
		for k := 0; k < n; k++ {
			k := k
			set(k, core.Query(s, func() T { return get(k) }))
		}
	case modeHoisted:
		s.Sync()
		for k := 0; k < n; k++ {
			k := k
			set(k, core.LocalQuery(s, func() T { return get(k) }))
		}
	}
}

// pullScalar fetches a single handler-owned value.
func pullScalar[T any](im *Impl, s *core.Session, get func() T) T {
	var out T
	pull(im, s, 1, func(int) T { return get() }, func(_ int, v T) { out = v })
	return out
}

// kernel runs body with all worker handlers reserved and the shards
// assigned to row ranges of n rows.
func (im *Impl) kernel(n int, body func(ss []*core.Session, ranges [][2]int)) {
	ranges := cowichan.SplitRows(n, im.workers)
	im.client.SeparateMany(im.hs[:len(ranges)], func(ss []*core.Session) {
		body(ss, ranges)
	})
}

// barrier syncs every session, completing all logged compute calls.
func barrier(ss []*core.Session) {
	for _, s := range ss {
		s.SyncNow()
	}
}

// Randmat implements cowichan.Impl.
func (im *Impl) Randmat(p cowichan.Params) (*cowichan.Matrix, cowichan.Timing) {
	var t cowichan.Timing
	m := cowichan.NewMatrix(p.NR)
	im.kernel(p.NR, func(ss []*core.Session, ranges [][2]int) {
		t0 := time.Now()
		for w, r := range ranges {
			w, r := w, r
			sh := im.shards[w]
			ss[w].Call(func() {
				sh.lo, sh.hi, sh.n = r[0], r[1], p.NR
				sh.rows = make([][]int32, 0, r[1]-r[0])
				for i := r[0]; i < r[1]; i++ {
					row := make([]int32, p.NR)
					cowichan.FillRow(row, p.Seed, i)
					sh.rows = append(sh.rows, row)
				}
			})
		}
		barrier(ss)
		t.Compute += time.Since(t0)

		t1 := time.Now()
		for w, r := range ranges {
			sh := im.shards[w]
			rows := r[1] - r[0]
			pull(im, ss[w], rows*p.NR,
				func(k int) int32 { return sh.rows[k/p.NR][k%p.NR] },
				func(k int, v int32) { m.Set(r[0]+k/p.NR, k%p.NR, v) })
		}
		t.Comm += time.Since(t1)
	})
	return m, t
}

// pushRows distributes matrix rows [lo, hi) to a worker by logging one
// asynchronous call per row, each carrying a fresh copy (handlers must
// not share memory with the client).
func pushRows(s *core.Session, sh *shard, m *cowichan.Matrix, lo, hi int) {
	s.Call(func() {
		sh.lo, sh.hi, sh.n = lo, hi, m.N
		sh.rows = make([][]int32, 0, hi-lo)
	})
	for i := lo; i < hi; i++ {
		rc := append([]int32(nil), m.Row(i)...)
		s.Call(func() { sh.rows = append(sh.rows, rc) })
	}
}

// pushMask distributes mask rows the same way.
func pushMask(s *core.Session, sh *shard, mask *cowichan.Mask, lo, hi int) {
	s.Call(func() { sh.mask = make([][]bool, 0, hi-lo) })
	for i := lo; i < hi; i++ {
		rc := append([]bool(nil), mask.Row(i)...)
		s.Call(func() { sh.mask = append(sh.mask, rc) })
	}
}

// Thresh implements cowichan.Impl.
func (im *Impl) Thresh(m *cowichan.Matrix, pct int) (*cowichan.Mask, cowichan.Timing) {
	var t cowichan.Timing
	mask := cowichan.NewMask(m.N)
	im.kernel(m.N, func(ss []*core.Session, ranges [][2]int) {
		t0 := time.Now()
		for w, r := range ranges {
			pushRows(ss[w], im.shards[w], m, r[0], r[1])
		}
		t.Comm += time.Since(t0)

		t1 := time.Now()
		for w := range ranges {
			sh := im.shards[w]
			ss[w].Call(func() {
				sh.hist = make([]int, cowichan.MaxValue)
				for _, row := range sh.rows {
					for _, v := range row {
						sh.hist[v]++
					}
				}
			})
		}
		barrier(ss)
		t.Compute += time.Since(t1)

		// Pull and merge histograms, decide the cutoff on the client.
		t2 := time.Now()
		hist := make([]int, cowichan.MaxValue)
		for w := range ranges {
			sh := im.shards[w]
			pull(im, ss[w], cowichan.MaxValue,
				func(k int) int { return sh.hist[k] },
				func(k, v int) { hist[k] += v })
		}
		t.Comm += time.Since(t2)
		cut := cowichan.ThresholdFromHist(hist, len(m.A), pct)

		t3 := time.Now()
		for w := range ranges {
			sh := im.shards[w]
			ss[w].Call(func() {
				sh.mask = make([][]bool, len(sh.rows))
				for k, row := range sh.rows {
					b := make([]bool, len(row))
					for j, v := range row {
						b[j] = v >= cut
					}
					sh.mask[k] = b
				}
			})
		}
		barrier(ss)
		t.Compute += time.Since(t3)

		t4 := time.Now()
		for w, r := range ranges {
			sh := im.shards[w]
			rows := r[1] - r[0]
			pull(im, ss[w], rows*m.N,
				func(k int) bool { return sh.mask[k/m.N][k%m.N] },
				func(k int, v bool) { mask.Set(r[0]+k/m.N, k%m.N, v) })
		}
		t.Comm += time.Since(t4)
	})
	return mask, t
}

// Winnow implements cowichan.Impl.
func (im *Impl) Winnow(m *cowichan.Matrix, mask *cowichan.Mask, nw int) ([]cowichan.Point, cowichan.Timing) {
	var t cowichan.Timing
	var sel []cowichan.Point
	im.kernel(m.N, func(ss []*core.Session, ranges [][2]int) {
		t0 := time.Now()
		for w, r := range ranges {
			pushRows(ss[w], im.shards[w], m, r[0], r[1])
			pushMask(ss[w], im.shards[w], mask, r[0], r[1])
		}
		t.Comm += time.Since(t0)

		t1 := time.Now()
		for w := range ranges {
			sh := im.shards[w]
			ss[w].Call(func() {
				sh.pts = sh.pts[:0]
				for k, row := range sh.rows {
					for j, keep := range sh.mask[k] {
						if keep {
							sh.pts = append(sh.pts, cowichan.Point{Value: row[j], I: int32(sh.lo + k), J: int32(j)})
						}
					}
				}
			})
		}
		barrier(ss)
		t.Compute += time.Since(t1)

		t2 := time.Now()
		var pts []cowichan.Point
		for w := range ranges {
			sh := im.shards[w]
			count := pullScalar(im, ss[w], func() int { return len(sh.pts) })
			base := len(pts)
			pts = append(pts, make([]cowichan.Point, count)...)
			pull(im, ss[w], count,
				func(k int) cowichan.Point { return sh.pts[k] },
				func(k int, v cowichan.Point) { pts[base+k] = v })
		}
		t.Comm += time.Since(t2)

		// Sort and select on the client. When the runtime is pooled, the
		// sort is fork-join work on the same executor that runs the
		// handlers — the unified scheduler serving both workloads; in
		// dedicated-goroutine mode there is no pool to join, so sort
		// sequentially. Point.Less is a total order, so both paths give
		// the identical permutation.
		t3 := time.Now()
		if e := im.rt.Executor(); e != nil {
			sched.ParallelSort(e, pts, func(a, b cowichan.Point) bool { return a.Less(b) })
		} else {
			sort.Slice(pts, func(a, b int) bool { return pts[a].Less(pts[b]) })
		}
		sel = cowichan.SelectPoints(pts, nw)
		t.Compute += time.Since(t3)
	})
	return sel, t
}

// Outer implements cowichan.Impl.
func (im *Impl) Outer(pts []cowichan.Point) (*cowichan.FMatrix, cowichan.Vector, cowichan.Timing) {
	var t cowichan.Timing
	n := len(pts)
	om := cowichan.NewFMatrix(n)
	vec := make(cowichan.Vector, n)
	im.kernel(n, func(ss []*core.Session, ranges [][2]int) {
		t0 := time.Now()
		for w, r := range ranges {
			w, r := w, r
			sh := im.shards[w]
			pc := append([]cowichan.Point(nil), pts...) // full copy per worker
			ss[w].Call(func() {
				sh.lo, sh.hi = r[0], r[1]
				sh.pts = pc
			})
		}
		t.Comm += time.Since(t0)

		t1 := time.Now()
		for w := range ranges {
			sh := im.shards[w]
			ss[w].Call(func() {
				sh.frows = make([][]float64, 0, sh.hi-sh.lo)
				sh.fvec = make([]float64, 0, sh.hi-sh.lo)
				for i := sh.lo; i < sh.hi; i++ {
					row := make([]float64, len(sh.pts))
					cowichan.OuterRow(row, sh.pts, i)
					sh.frows = append(sh.frows, row)
					sh.fvec = append(sh.fvec, cowichan.OriginDistance(sh.pts[i]))
				}
			})
		}
		barrier(ss)
		t.Compute += time.Since(t1)

		t2 := time.Now()
		for w, r := range ranges {
			sh := im.shards[w]
			rows := r[1] - r[0]
			pull(im, ss[w], rows*n,
				func(k int) float64 { return sh.frows[k/n][k%n] },
				func(k int, v float64) { om.Set(r[0]+k/n, k%n, v) })
			pull(im, ss[w], rows,
				func(k int) float64 { return sh.fvec[k] },
				func(k int, v float64) { vec[r[0]+k] = v })
		}
		t.Comm += time.Since(t2)
	})
	return om, vec, t
}

// Product implements cowichan.Impl.
func (im *Impl) Product(m *cowichan.FMatrix, v cowichan.Vector) (cowichan.Vector, cowichan.Timing) {
	var t cowichan.Timing
	out := make(cowichan.Vector, m.N)
	im.kernel(m.N, func(ss []*core.Session, ranges [][2]int) {
		t0 := time.Now()
		for w, r := range ranges {
			w, r := w, r
			sh := im.shards[w]
			vc := append([]float64(nil), v...)
			ss[w].Call(func() {
				sh.lo, sh.hi, sh.n = r[0], r[1], m.N
				sh.fvec = vc
				sh.frows = make([][]float64, 0, r[1]-r[0])
			})
			for i := r[0]; i < r[1]; i++ {
				rc := append([]float64(nil), m.Row(i)...)
				ss[w].Call(func() { sh.frows = append(sh.frows, rc) })
			}
		}
		t.Comm += time.Since(t0)

		t1 := time.Now()
		for w := range ranges {
			sh := im.shards[w]
			ss[w].Call(func() {
				seg := make([]float64, len(sh.frows))
				for k, row := range sh.frows {
					seg[k] = cowichan.DotRow(row, sh.fvec)
				}
				sh.fvec = seg // reuse fvec to hold the result segment
			})
		}
		barrier(ss)
		t.Compute += time.Since(t1)

		t2 := time.Now()
		for w, r := range ranges {
			sh := im.shards[w]
			pull(im, ss[w], r[1]-r[0],
				func(k int) float64 { return sh.fvec[k] },
				func(k int, v float64) { out[r[0]+k] = v })
		}
		t.Comm += time.Since(t2)
	})
	return out, t
}
