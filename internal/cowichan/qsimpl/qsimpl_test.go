package qsimpl

import (
	"testing"

	"scoopqs/internal/core"
	"scoopqs/internal/cowichan"
)

func params() cowichan.Params {
	return cowichan.Params{NR: 40, P: 25, NW: 40, Seed: 9}
}

func TestCommComputeSplitIsReported(t *testing.T) {
	im := New(core.ConfigAll, 2)
	defer im.Close()
	p := params()
	m, tm := im.Randmat(p)
	if m.N != p.NR {
		t.Fatalf("matrix size %d", m.N)
	}
	if tm.Comm <= 0 {
		t.Error("randmat reported no communication time; the pull phase must be timed")
	}
	if tm.Compute <= 0 {
		t.Error("randmat reported no compute time")
	}
}

func TestWorkerCountEdgeCases(t *testing.T) {
	p := params()
	want, _ := cowichan.NewSeq().Randmat(p)
	for _, w := range []int{1, 3, p.NR, p.NR * 2} {
		im := New(core.ConfigAll, w)
		got, _ := im.Randmat(p)
		if !got.Equal(want) {
			t.Errorf("workers=%d: randmat diverges", w)
		}
		im.Close()
	}
}

func TestZeroWorkersClampsToOne(t *testing.T) {
	im := New(core.ConfigAll, 0)
	defer im.Close()
	p := params()
	m, _ := im.Randmat(p)
	want, _ := cowichan.NewSeq().Randmat(p)
	if !m.Equal(want) {
		t.Error("workers=0 should behave like workers=1")
	}
}

func TestRemoteModeUsesNoLocalQueries(t *testing.T) {
	im := New(core.ConfigQoQ, 2)
	defer im.Close()
	p := params()
	im.Randmat(p)
	st := im.Runtime().Stats()
	if st.LocalQueries != 0 {
		t.Errorf("QoQ config performed %d local queries; must package all queries", st.LocalQueries)
	}
	if st.RemoteQueries == 0 {
		t.Error("QoQ config performed no remote queries")
	}
}

func TestHoistedModeSyncsOncePerPull(t *testing.T) {
	im := New(core.ConfigStatic, 2)
	defer im.Close()
	p := params()
	im.Randmat(p)
	st := im.Runtime().Stats()
	// One barrier sync + one hoisted sync per worker pull loop: far
	// fewer than the NR*NR queries.
	if st.SyncsPerformed > int64(8*2+4) {
		t.Errorf("hoisted mode performed %d syncs; expected a handful", st.SyncsPerformed)
	}
	if st.LocalQueries != int64(p.NR*p.NR) {
		t.Errorf("LocalQueries = %d, want %d", st.LocalQueries, p.NR*p.NR)
	}
}

func TestRepeatedKernelsReuseSessions(t *testing.T) {
	im := New(core.ConfigAll, 2)
	defer im.Close()
	p := params()
	for i := 0; i < 4; i++ {
		im.Randmat(p)
	}
	st := im.Runtime().Stats()
	if st.SessionsReused == 0 {
		t.Error("no session reuse across kernels; the queue cache is dead")
	}
}
