package cowichan

import (
	"sort"
	"time"
)

// Seq is the sequential reference implementation. Every parallel
// paradigm is verified against it; it is also the single-core baseline
// of the speedup figures.
type Seq struct{}

// NewSeq returns the sequential implementation.
func NewSeq() *Seq { return &Seq{} }

// Name implements Impl.
func (*Seq) Name() string { return "seq" }

// Close implements Impl.
func (*Seq) Close() {}

// Randmat generates the deterministic NR x NR random matrix.
func (*Seq) Randmat(p Params) (*Matrix, Timing) {
	start := time.Now()
	m := NewMatrix(p.NR)
	for i := 0; i < p.NR; i++ {
		FillRow(m.Row(i), p.Seed, i)
	}
	return m, Timing{Compute: time.Since(start)}
}

// Thresh keeps the top pct percent of values: histogram, cutoff, mask.
func (*Seq) Thresh(m *Matrix, pct int) (*Mask, Timing) {
	start := time.Now()
	hist := make([]int, MaxValue)
	for _, v := range m.A {
		hist[v]++
	}
	cut := ThresholdFromHist(hist, len(m.A), pct)
	mask := NewMask(m.N)
	for i, v := range m.A {
		mask.B[i] = v >= cut
	}
	return mask, Timing{Compute: time.Since(start)}
}

// Winnow collects masked points, sorts them by (value, position), and
// selects nw evenly spread ones.
func (*Seq) Winnow(m *Matrix, mask *Mask, nw int) ([]Point, Timing) {
	start := time.Now()
	pts := CollectPoints(m, mask, 0, m.N)
	sort.Slice(pts, func(a, b int) bool { return pts[a].Less(pts[b]) })
	out := SelectPoints(pts, nw)
	return out, Timing{Compute: time.Since(start)}
}

// Outer builds the distance matrix (diagonal = row-max scaled by n) and
// the origin-distance vector.
func (*Seq) Outer(pts []Point) (*FMatrix, Vector, Timing) {
	start := time.Now()
	n := len(pts)
	om := NewFMatrix(n)
	vec := make(Vector, n)
	for i := 0; i < n; i++ {
		OuterRow(om.Row(i), pts, i)
		vec[i] = OriginDistance(pts[i])
	}
	return om, vec, Timing{Compute: time.Since(start)}
}

// Product is the matrix-vector product.
func (*Seq) Product(m *FMatrix, v Vector) (Vector, Timing) {
	start := time.Now()
	out := make(Vector, m.N)
	for i := 0; i < m.N; i++ {
		out[i] = DotRow(m.Row(i), v)
	}
	return out, Timing{Compute: time.Since(start)}
}

// CollectPoints gathers the masked points of rows [lo, hi) in row-major
// order — the shared leaf used by every winnow decomposition.
func CollectPoints(m *Matrix, mask *Mask, lo, hi int) []Point {
	var pts []Point
	for i := lo; i < hi; i++ {
		mrow := m.Row(i)
		krow := mask.Row(i)
		for j, keep := range krow {
			if keep {
				pts = append(pts, Point{Value: mrow[j], I: int32(i), J: int32(j)})
			}
		}
	}
	return pts
}

// SelectPoints applies the deterministic winnow selection to a sorted
// point list.
func SelectPoints(sorted []Point, nw int) []Point {
	if nw > len(sorted) {
		nw = len(sorted)
	}
	out := make([]Point, nw)
	for k, idx := range WinnowIndices(len(sorted), nw) {
		out[k] = sorted[idx]
	}
	return out
}

// OuterRow fills row i of the outer matrix: distances to every other
// point, with the diagonal set to n times the row maximum. The shared
// leaf of every outer decomposition.
func OuterRow(row []float64, pts []Point, i int) {
	n := len(pts)
	rowMax := 0.0
	for j := 0; j < n; j++ {
		if i == j {
			continue
		}
		d := OuterDistance(pts[i], pts[j])
		row[j] = d
		if d > rowMax {
			rowMax = d
		}
	}
	row[i] = float64(n) * rowMax
}

// DotRow is the dot product of one matrix row with v — the shared leaf
// of every product decomposition.
func DotRow(row []float64, v Vector) float64 {
	s := 0.0
	for j, x := range row {
		s += x * v[j]
	}
	return s
}

// SplitRows partitions [0, n) into at most parts contiguous ranges of
// near-equal size; every parallel implementation uses it so that work
// decomposition is identical across paradigms.
func SplitRows(n, parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	for k := 0; k < parts; k++ {
		lo := k * n / parts
		hi := (k + 1) * n / parts
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}
