// Package pureimpl implements the Cowichan kernels in the
// pure-functional style of Haskell's par strategies: workers compute
// freshly allocated immutable chunks in parallel, and the main thread
// concatenates them sequentially into the final structure. The
// sequential concatenation is exactly the bottleneck the paper
// identifies for Haskell's randmat ("chunks of the output array
// constructed in parallel, then concatenated together; the
// concatenation is sequential, putting a limit on the maximum
// speedup"). This is the "haskell" comparator for the parallel tasks.
package pureimpl

import (
	"sort"
	"sync"
	"time"

	"scoopqs/internal/cowichan"
)

// Impl is the chunk-and-concatenate implementation.
type Impl struct {
	workers int
}

// New returns an implementation using the given degree of parallelism.
func New(workers int) *Impl {
	if workers < 1 {
		workers = 1
	}
	return &Impl{workers: workers}
}

// Name implements cowichan.Impl.
func (*Impl) Name() string { return "haskell" }

// Close implements cowichan.Impl.
func (*Impl) Close() {}

// parChunks evaluates one freshly allocated value per row range in
// parallel ("par") and returns them in range order for the sequential
// combine.
func parChunks[T any](workers, n int, leaf func(lo, hi int) T) []T {
	ranges := cowichan.SplitRows(n, workers)
	out := make([]T, len(ranges))
	var wg sync.WaitGroup
	for k, r := range ranges {
		k, r := k, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[k] = leaf(r[0], r[1])
		}()
	}
	wg.Wait()
	return out
}

// Randmat implements cowichan.Impl: parallel row-chunk construction,
// sequential concatenation into the matrix.
func (im *Impl) Randmat(p cowichan.Params) (*cowichan.Matrix, cowichan.Timing) {
	start := time.Now()
	type chunk struct {
		lo   int
		rows [][]int32
	}
	chunks := parChunks(im.workers, p.NR, func(lo, hi int) chunk {
		rows := make([][]int32, 0, hi-lo)
		for i := lo; i < hi; i++ {
			row := make([]int32, p.NR)
			cowichan.FillRow(row, p.Seed, i)
			rows = append(rows, row)
		}
		return chunk{lo: lo, rows: rows}
	})
	// Sequential concat: copy every freshly built row into the result.
	m := cowichan.NewMatrix(p.NR)
	for _, c := range chunks {
		for k, row := range c.rows {
			copy(m.Row(c.lo+k), row)
		}
	}
	return m, cowichan.Timing{Compute: time.Since(start)}
}

// Thresh implements cowichan.Impl.
func (im *Impl) Thresh(m *cowichan.Matrix, pct int) (*cowichan.Mask, cowichan.Timing) {
	start := time.Now()
	hists := parChunks(im.workers, m.N, func(lo, hi int) []int {
		h := make([]int, cowichan.MaxValue)
		for _, v := range m.A[lo*m.N : hi*m.N] {
			h[v]++
		}
		return h
	})
	hist := make([]int, cowichan.MaxValue)
	for _, h := range hists {
		for v, c := range h {
			hist[v] += c
		}
	}
	cut := cowichan.ThresholdFromHist(hist, len(m.A), pct)
	maskChunks := parChunks(im.workers, m.N, func(lo, hi int) []bool {
		b := make([]bool, (hi-lo)*m.N)
		for k, v := range m.A[lo*m.N : hi*m.N] {
			b[k] = v >= cut
		}
		return b
	})
	mask := cowichan.NewMask(m.N)
	at := 0
	for _, b := range maskChunks {
		copy(mask.B[at:], b)
		at += len(b)
	}
	return mask, cowichan.Timing{Compute: time.Since(start)}
}

// Winnow implements cowichan.Impl: parallel per-chunk point collection
// and sorting, sequential k-way concatenation plus merge-by-sort.
func (im *Impl) Winnow(m *cowichan.Matrix, mask *cowichan.Mask, nw int) ([]cowichan.Point, cowichan.Timing) {
	start := time.Now()
	chunks := parChunks(im.workers, m.N, func(lo, hi int) []cowichan.Point {
		pts := cowichan.CollectPoints(m, mask, lo, hi)
		sort.Slice(pts, func(a, b int) bool { return pts[a].Less(pts[b]) })
		return pts
	})
	// Sequential merge of the sorted chunks.
	merged := chunks[0]
	for _, c := range chunks[1:] {
		merged = mergePoints(merged, c)
	}
	sel := cowichan.SelectPoints(merged, nw)
	return sel, cowichan.Timing{Compute: time.Since(start)}
}

func mergePoints(a, b []cowichan.Point) []cowichan.Point {
	out := make([]cowichan.Point, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Less(a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Outer implements cowichan.Impl.
func (im *Impl) Outer(pts []cowichan.Point) (*cowichan.FMatrix, cowichan.Vector, cowichan.Timing) {
	start := time.Now()
	n := len(pts)
	type chunk struct {
		lo   int
		rows [][]float64
		vec  []float64
	}
	chunks := parChunks(im.workers, n, func(lo, hi int) chunk {
		rows := make([][]float64, 0, hi-lo)
		vec := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			row := make([]float64, n)
			cowichan.OuterRow(row, pts, i)
			rows = append(rows, row)
			vec = append(vec, cowichan.OriginDistance(pts[i]))
		}
		return chunk{lo: lo, rows: rows, vec: vec}
	})
	om := cowichan.NewFMatrix(n)
	vec := make(cowichan.Vector, n)
	for _, c := range chunks {
		for k, row := range c.rows {
			copy(om.Row(c.lo+k), row)
		}
		copy(vec[c.lo:], c.vec)
	}
	return om, vec, cowichan.Timing{Compute: time.Since(start)}
}

// Product implements cowichan.Impl.
func (im *Impl) Product(m *cowichan.FMatrix, v cowichan.Vector) (cowichan.Vector, cowichan.Timing) {
	start := time.Now()
	type chunk struct {
		lo  int
		seg []float64
	}
	chunks := parChunks(im.workers, m.N, func(lo, hi int) chunk {
		seg := make([]float64, hi-lo)
		for i := lo; i < hi; i++ {
			seg[i-lo] = cowichan.DotRow(m.Row(i), v)
		}
		return chunk{lo: lo, seg: seg}
	})
	out := make(cowichan.Vector, m.N)
	for _, c := range chunks {
		copy(out[c.lo:], c.seg)
	}
	return out, cowichan.Timing{Compute: time.Since(start)}
}
