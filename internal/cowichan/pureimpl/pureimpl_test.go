package pureimpl

import (
	"testing"

	"scoopqs/internal/cowichan"
)

func TestChunkMergePreservesOrder(t *testing.T) {
	a := []cowichan.Point{{Value: 1, I: 0, J: 0}, {Value: 3, I: 0, J: 1}}
	b := []cowichan.Point{{Value: 2, I: 1, J: 0}, {Value: 3, I: 0, J: 0}}
	got := mergePoints(a, b)
	for i := 1; i < len(got); i++ {
		if got[i].Less(got[i-1]) {
			t.Fatalf("merge not sorted at %d: %v", i, got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("merge lost elements: %v", got)
	}
}

func TestWorkerCountsProduceIdenticalResults(t *testing.T) {
	p := cowichan.Params{NR: 48, P: 20, NW: 48, Seed: 3}
	want := cowichan.Chain(cowichan.NewSeq(), p)
	for _, w := range []int{1, 2, 5} {
		im := New(w)
		got := cowichan.Chain(im, p)
		if !got.Result.Equal(want.Result) {
			t.Errorf("workers=%d: chain diverges", w)
		}
		im.Close()
	}
}

// The defining property of the paradigm: workers return fresh storage,
// never views of the inputs or outputs.
func TestChunksAreFreshStorage(t *testing.T) {
	im := New(3)
	defer im.Close()
	p := cowichan.Params{NR: 32, P: 25, NW: 32, Seed: 4}
	m1, _ := im.Randmat(p)
	m2, _ := im.Randmat(p)
	if &m1.A[0] == &m2.A[0] {
		t.Fatal("two randmat calls share storage")
	}
	m1.A[0] = -99
	if m2.A[0] == -99 {
		t.Fatal("matrices alias each other")
	}
}
