// Package tbbimpl implements the Cowichan kernels on the work-stealing
// pool of internal/tbb: ParallelFor over row ranges, ParallelReduce for
// the histogram, ParallelSort for winnow. This is the "cxx"
// (C++/TBB) comparator of the paper's language study — the unguarded
// shared-memory performance ceiling.
package tbbimpl

import (
	"time"

	"scoopqs/internal/cowichan"
	"scoopqs/internal/tbb"
)

// Impl runs the kernels on a private work-stealing pool.
type Impl struct {
	pool  *tbb.Pool
	grain int
}

// New creates an implementation backed by a pool of the given size.
func New(workers int) *Impl {
	return &Impl{pool: tbb.NewPool(workers), grain: 8}
}

// Name implements cowichan.Impl.
func (*Impl) Name() string { return "cxx" }

// Close implements cowichan.Impl.
func (im *Impl) Close() { im.pool.Close() }

// Randmat implements cowichan.Impl.
func (im *Impl) Randmat(p cowichan.Params) (*cowichan.Matrix, cowichan.Timing) {
	start := time.Now()
	m := cowichan.NewMatrix(p.NR)
	im.pool.ParallelFor(0, p.NR, im.grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cowichan.FillRow(m.Row(i), p.Seed, i)
		}
	})
	return m, cowichan.Timing{Compute: time.Since(start)}
}

// Thresh implements cowichan.Impl.
func (im *Impl) Thresh(m *cowichan.Matrix, pct int) (*cowichan.Mask, cowichan.Timing) {
	start := time.Now()
	hist := tbb.ParallelReduce(im.pool, 0, m.N, im.grain,
		func(lo, hi int) []int {
			h := make([]int, cowichan.MaxValue)
			for _, v := range m.A[lo*m.N : hi*m.N] {
				h[v]++
			}
			return h
		},
		func(a, b []int) []int {
			for v := range a {
				a[v] += b[v]
			}
			return a
		})
	cut := cowichan.ThresholdFromHist(hist, len(m.A), pct)
	mask := cowichan.NewMask(m.N)
	im.pool.ParallelFor(0, m.N, im.grain, func(lo, hi int) {
		for k := lo * m.N; k < hi*m.N; k++ {
			mask.B[k] = m.A[k] >= cut
		}
	})
	return mask, cowichan.Timing{Compute: time.Since(start)}
}

// Winnow implements cowichan.Impl.
func (im *Impl) Winnow(m *cowichan.Matrix, mask *cowichan.Mask, nw int) ([]cowichan.Point, cowichan.Timing) {
	start := time.Now()
	pts := tbb.ParallelReduce(im.pool, 0, m.N, im.grain,
		func(lo, hi int) []cowichan.Point { return cowichan.CollectPoints(m, mask, lo, hi) },
		func(a, b []cowichan.Point) []cowichan.Point { return append(a, b...) })
	tbb.ParallelSort(im.pool, pts, func(a, b cowichan.Point) bool { return a.Less(b) })
	sel := cowichan.SelectPoints(pts, nw)
	return sel, cowichan.Timing{Compute: time.Since(start)}
}

// Outer implements cowichan.Impl.
func (im *Impl) Outer(pts []cowichan.Point) (*cowichan.FMatrix, cowichan.Vector, cowichan.Timing) {
	start := time.Now()
	n := len(pts)
	om := cowichan.NewFMatrix(n)
	vec := make(cowichan.Vector, n)
	im.pool.ParallelFor(0, n, im.grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cowichan.OuterRow(om.Row(i), pts, i)
			vec[i] = cowichan.OriginDistance(pts[i])
		}
	})
	return om, vec, cowichan.Timing{Compute: time.Since(start)}
}

// Product implements cowichan.Impl.
func (im *Impl) Product(m *cowichan.FMatrix, v cowichan.Vector) (cowichan.Vector, cowichan.Timing) {
	start := time.Now()
	out := make(cowichan.Vector, m.N)
	im.pool.ParallelFor(0, m.N, im.grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = cowichan.DotRow(m.Row(i), v)
		}
	})
	return out, cowichan.Timing{Compute: time.Since(start)}
}
