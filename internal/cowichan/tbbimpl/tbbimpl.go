// Package tbbimpl implements the Cowichan kernels on the unified
// work-stealing executor of internal/sched: ParallelFor over row
// ranges, ParallelReduce for the histogram, ParallelSort for winnow.
// This is the "cxx" (C++/TBB) comparator of the paper's language study
// — the unguarded shared-memory performance ceiling — and since the
// fork-join fold-in it runs on the same scheduler that serves the Qs
// handler runtime, so data-parallel kernels and handler traffic can
// share one worker pool.
package tbbimpl

import (
	"time"

	"scoopqs/internal/cowichan"
	"scoopqs/internal/sched"
)

// Impl runs the kernels on a private instance of the unified executor.
type Impl struct {
	exec  *sched.Executor
	grain int
}

// New creates an implementation backed by an executor of the given
// worker count.
func New(workers int) *Impl {
	return &Impl{exec: sched.NewExecutor(workers), grain: 8}
}

// Executor exposes the backing executor, so harness code can read its
// task counters after a run.
func (im *Impl) Executor() *sched.Executor { return im.exec }

// Name implements cowichan.Impl.
func (*Impl) Name() string { return "cxx" }

// Close implements cowichan.Impl.
func (im *Impl) Close() { im.exec.Stop() }

// Randmat implements cowichan.Impl.
func (im *Impl) Randmat(p cowichan.Params) (*cowichan.Matrix, cowichan.Timing) {
	start := time.Now()
	m := cowichan.NewMatrix(p.NR)
	sched.ParallelFor(im.exec, 0, p.NR, im.grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cowichan.FillRow(m.Row(i), p.Seed, i)
		}
	})
	return m, cowichan.Timing{Compute: time.Since(start)}
}

// Thresh implements cowichan.Impl.
func (im *Impl) Thresh(m *cowichan.Matrix, pct int) (*cowichan.Mask, cowichan.Timing) {
	start := time.Now()
	hist := sched.ParallelReduce(im.exec, 0, m.N, im.grain,
		func(lo, hi int) []int {
			h := make([]int, cowichan.MaxValue)
			for _, v := range m.A[lo*m.N : hi*m.N] {
				h[v]++
			}
			return h
		},
		func(a, b []int) []int {
			for v := range a {
				a[v] += b[v]
			}
			return a
		})
	cut := cowichan.ThresholdFromHist(hist, len(m.A), pct)
	mask := cowichan.NewMask(m.N)
	sched.ParallelFor(im.exec, 0, m.N, im.grain, func(lo, hi int) {
		for k := lo * m.N; k < hi*m.N; k++ {
			mask.B[k] = m.A[k] >= cut
		}
	})
	return mask, cowichan.Timing{Compute: time.Since(start)}
}

// Winnow implements cowichan.Impl.
func (im *Impl) Winnow(m *cowichan.Matrix, mask *cowichan.Mask, nw int) ([]cowichan.Point, cowichan.Timing) {
	start := time.Now()
	pts := sched.ParallelReduce(im.exec, 0, m.N, im.grain,
		func(lo, hi int) []cowichan.Point { return cowichan.CollectPoints(m, mask, lo, hi) },
		func(a, b []cowichan.Point) []cowichan.Point { return append(a, b...) })
	sched.ParallelSort(im.exec, pts, func(a, b cowichan.Point) bool { return a.Less(b) })
	sel := cowichan.SelectPoints(pts, nw)
	return sel, cowichan.Timing{Compute: time.Since(start)}
}

// Outer implements cowichan.Impl.
func (im *Impl) Outer(pts []cowichan.Point) (*cowichan.FMatrix, cowichan.Vector, cowichan.Timing) {
	start := time.Now()
	n := len(pts)
	om := cowichan.NewFMatrix(n)
	vec := make(cowichan.Vector, n)
	sched.ParallelFor(im.exec, 0, n, im.grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cowichan.OuterRow(om.Row(i), pts, i)
			vec[i] = cowichan.OriginDistance(pts[i])
		}
	})
	return om, vec, cowichan.Timing{Compute: time.Since(start)}
}

// Product implements cowichan.Impl.
func (im *Impl) Product(m *cowichan.FMatrix, v cowichan.Vector) (cowichan.Vector, cowichan.Timing) {
	start := time.Now()
	out := make(cowichan.Vector, m.N)
	sched.ParallelFor(im.exec, 0, m.N, im.grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = cowichan.DotRow(m.Row(i), v)
		}
	})
	return out, cowichan.Timing{Compute: time.Since(start)}
}
