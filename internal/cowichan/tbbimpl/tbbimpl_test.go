package tbbimpl

import (
	"testing"

	"scoopqs/internal/cowichan"
)

func TestWorkerCountsProduceIdenticalResults(t *testing.T) {
	p := cowichan.Params{NR: 48, P: 20, NW: 48, Seed: 3}
	want := cowichan.Chain(cowichan.NewSeq(), p)
	for _, w := range []int{1, 2, 4} {
		im := New(w)
		got := cowichan.Chain(im, p)
		if !got.Result.Equal(want.Result) {
			t.Errorf("workers=%d: chain diverges", w)
		}
		im.Close()
	}
}

// The histogram reduce must be deterministic despite work stealing:
// combines happen in range order (see sched.ParallelReduce).
func TestThreshDeterministicUnderStealing(t *testing.T) {
	p := cowichan.Params{NR: 64, P: 20, NW: 64, Seed: 8}
	seq := cowichan.NewSeq()
	m, _ := seq.Randmat(p)
	want, _ := seq.Thresh(m, p.P)
	im := New(4)
	defer im.Close()
	for round := 0; round < 5; round++ {
		got, _ := im.Thresh(m, p.P)
		if !got.Equal(want) {
			t.Fatalf("round %d: thresh nondeterministic", round)
		}
	}
}

// Winnow exercises ParallelSort's stability end to end: equal values
// must stay in (i, j) order.
func TestWinnowStableSelection(t *testing.T) {
	p := cowichan.Params{NR: 64, P: 30, NW: 64, Seed: 8}
	seq := cowichan.NewSeq()
	m, _ := seq.Randmat(p)
	mask, _ := seq.Thresh(m, p.P)
	want, _ := seq.Winnow(m, mask, p.NW)
	im := New(4)
	defer im.Close()
	got, _ := im.Winnow(m, mask, p.NW)
	if !cowichan.PointsEqual(got, want) {
		t.Fatal("winnow selection diverges from the stable reference order")
	}
}
