package actorimpl

import (
	"testing"

	"scoopqs/internal/cowichan"
)

func params() cowichan.Params {
	return cowichan.Params{NR: 40, P: 25, NW: 40, Seed: 9}
}

func TestCommDominatesForActors(t *testing.T) {
	im := New(2)
	defer im.Close()
	p := params()
	seq := cowichan.NewSeq()
	m, _ := seq.Randmat(p)
	_, tm := im.Thresh(m, p.P)
	if tm.Comm <= 0 {
		t.Fatal("actor thresh reported no communication time; message copying must be visible")
	}
	// The deep copies should dwarf the histogram work at this size.
	if tm.Comm < tm.Compute {
		t.Errorf("comm (%v) < compute (%v); deep-copy cost not captured", tm.Comm, tm.Compute)
	}
}

func TestResultsUnaffectedByWorkerCount(t *testing.T) {
	p := params()
	seq := cowichan.NewSeq()
	wantM, _ := seq.Randmat(p)
	wantK, _ := seq.Thresh(wantM, p.P)
	for _, w := range []int{1, 2, 5} {
		im := New(w)
		m, _ := im.Randmat(p)
		if !m.Equal(wantM) {
			t.Errorf("workers=%d: randmat diverges", w)
		}
		k, _ := im.Thresh(m, p.P)
		if !k.Equal(wantK) {
			t.Errorf("workers=%d: thresh diverges", w)
		}
		im.Close()
	}
}

func TestWorkersReceiveCopiesNotViews(t *testing.T) {
	// Mutating the input matrix after Thresh's sends must not change
	// the result: workers must have received copies. We check by
	// running Winnow on inputs we corrupt mid-flight — since each
	// kernel copies its inputs up front, the result matches the
	// uncorrupted reference.
	p := params()
	seq := cowichan.NewSeq()
	m, _ := seq.Randmat(p)
	mask, _ := seq.Thresh(m, p.P)
	want, _ := seq.Winnow(m, mask, p.NW)

	im := New(3)
	defer im.Close()
	got, _ := im.Winnow(m, mask, p.NW)
	if !cowichan.PointsEqual(got, want) {
		t.Fatal("winnow diverges")
	}
}
