// Package actorimpl implements the Cowichan kernels on the actor
// runtime of internal/actor: a coordinator actor sends each worker its
// input slice as a deep-copied message and receives deep-copied
// results back. All inter-actor data transfer pays the full copy, the
// defining communication burden the paper measures for Erlang on these
// problems. This is the "erlang" comparator.
//
// Timing model: workers report their pure compute time inside the
// reply; the kernel's Comm time is the wall time minus the maximum
// worker compute time (phases overlap), matching the paper's
// computation/communication split for Erlang.
package actorimpl

import (
	"sort"
	"time"

	"scoopqs/internal/actor"
	"scoopqs/internal/cowichan"
)

// Impl is the actor-based implementation.
type Impl struct {
	workers int
}

// New returns an implementation with the given number of worker actors
// per kernel.
func New(workers int) *Impl {
	if workers < 1 {
		workers = 1
	}
	return &Impl{workers: workers}
}

// Name implements cowichan.Impl.
func (*Impl) Name() string { return "erlang" }

// Close implements cowichan.Impl.
func (*Impl) Close() {}

// Message types. All fields exported: messages must be plain data.

// RandmatJob asks a worker to generate rows [Lo, Hi).
type RandmatJob struct {
	Lo, Hi, N int
	Seed      uint32
	ReplyTo   *actor.Ref
}

// RowsResult returns generated or computed int32 rows.
type RowsResult struct {
	Lo      int
	Rows    [][]int32
	Elapsed time.Duration
}

// HistJob carries matrix rows to histogram.
type HistJob struct {
	Rows    [][]int32
	ReplyTo *actor.Ref
}

// HistResult returns a value histogram.
type HistResult struct {
	Hist    []int
	Elapsed time.Duration
}

// MaskJob carries rows plus the threshold cutoff.
type MaskJob struct {
	Lo      int
	Rows    [][]int32
	Cut     int32
	ReplyTo *actor.Ref
}

// MaskResult returns mask rows.
type MaskResult struct {
	Lo      int
	Rows    [][]bool
	Elapsed time.Duration
}

// WinnowJob carries matrix and mask rows for point collection.
type WinnowJob struct {
	Lo      int
	Rows    [][]int32
	Mask    [][]bool
	ReplyTo *actor.Ref
}

// PointsResult returns collected, locally sorted points.
type PointsResult struct {
	Lo      int
	Pts     []cowichan.Point
	Elapsed time.Duration
}

// OuterJob carries the full point list plus a row range to compute.
type OuterJob struct {
	Lo, Hi  int
	Pts     []cowichan.Point
	ReplyTo *actor.Ref
}

// OuterResult returns distance-matrix rows and the vector segment.
type OuterResult struct {
	Lo      int
	Rows    [][]float64
	Vec     []float64
	Elapsed time.Duration
}

// ProductJob carries matrix rows and the vector.
type ProductJob struct {
	Lo   int
	Rows [][]float64
	Vec  []float64

	ReplyTo *actor.Ref
}

// ProductResult returns a result-vector segment.
type ProductResult struct {
	Lo      int
	Seg     []float64
	Elapsed time.Duration
}

// coordinate runs body inside a coordinator actor and waits for it.
func coordinate(body func(c *actor.Ctx)) {
	actor.Spawn(body).Join()
}

// Randmat implements cowichan.Impl.
func (im *Impl) Randmat(p cowichan.Params) (*cowichan.Matrix, cowichan.Timing) {
	start := time.Now()
	m := cowichan.NewMatrix(p.NR)
	var maxCompute time.Duration
	coordinate(func(c *actor.Ctx) {
		ranges := cowichan.SplitRows(p.NR, im.workers)
		for _, r := range ranges {
			w := actor.Spawn(func(wc *actor.Ctx) {
				job := wc.Receive().(RandmatJob)
				t0 := time.Now()
				rows := make([][]int32, 0, job.Hi-job.Lo)
				for i := job.Lo; i < job.Hi; i++ {
					row := make([]int32, job.N)
					cowichan.FillRow(row, job.Seed, i)
					rows = append(rows, row)
				}
				el := time.Since(t0)
				job.ReplyTo.Send(RowsResult{Lo: job.Lo, Rows: rows, Elapsed: el})
			})
			w.Send(RandmatJob{Lo: r[0], Hi: r[1], N: p.NR, Seed: p.Seed, ReplyTo: c.Self()})
		}
		for range ranges {
			res := c.Receive().(RowsResult)
			for k, row := range res.Rows {
				copy(m.Row(res.Lo+k), row)
			}
			if res.Elapsed > maxCompute {
				maxCompute = res.Elapsed
			}
		}
	})
	total := time.Since(start)
	return m, splitTiming(total, maxCompute)
}

// Thresh implements cowichan.Impl.
func (im *Impl) Thresh(m *cowichan.Matrix, pct int) (*cowichan.Mask, cowichan.Timing) {
	start := time.Now()
	mask := cowichan.NewMask(m.N)
	var maxCompute time.Duration
	coordinate(func(c *actor.Ctx) {
		ranges := cowichan.SplitRows(m.N, im.workers)
		// Phase 1: histograms.
		for _, r := range ranges {
			w := actor.Spawn(func(wc *actor.Ctx) {
				job := wc.Receive().(HistJob)
				t0 := time.Now()
				h := make([]int, cowichan.MaxValue)
				for _, row := range job.Rows {
					for _, v := range row {
						h[v]++
					}
				}
				el := time.Since(t0)
				job.ReplyTo.Send(HistResult{Hist: h, Elapsed: el})
			})
			w.Send(HistJob{Rows: rowSlices(m, r[0], r[1]), ReplyTo: c.Self()})
		}
		hist := make([]int, cowichan.MaxValue)
		var phase1 time.Duration
		for range ranges {
			res := c.Receive().(HistResult)
			for v, n := range res.Hist {
				hist[v] += n
			}
			if res.Elapsed > phase1 {
				phase1 = res.Elapsed
			}
		}
		cut := cowichan.ThresholdFromHist(hist, len(m.A), pct)
		// Phase 2: masks.
		for _, r := range ranges {
			w := actor.Spawn(func(wc *actor.Ctx) {
				job := wc.Receive().(MaskJob)
				t0 := time.Now()
				rows := make([][]bool, len(job.Rows))
				for k, row := range job.Rows {
					b := make([]bool, len(row))
					for j, v := range row {
						b[j] = v >= job.Cut
					}
					rows[k] = b
				}
				el := time.Since(t0)
				job.ReplyTo.Send(MaskResult{Lo: job.Lo, Rows: rows, Elapsed: el})
			})
			w.Send(MaskJob{Lo: r[0], Rows: rowSlices(m, r[0], r[1]), Cut: cut, ReplyTo: c.Self()})
		}
		var phase2 time.Duration
		for range ranges {
			res := c.Receive().(MaskResult)
			for k, row := range res.Rows {
				copy(mask.Row(res.Lo+k), row)
			}
			if res.Elapsed > phase2 {
				phase2 = res.Elapsed
			}
		}
		maxCompute = phase1 + phase2
	})
	return mask, splitTiming(time.Since(start), maxCompute)
}

// Winnow implements cowichan.Impl.
func (im *Impl) Winnow(m *cowichan.Matrix, mask *cowichan.Mask, nw int) ([]cowichan.Point, cowichan.Timing) {
	start := time.Now()
	var sel []cowichan.Point
	var maxCompute time.Duration
	coordinate(func(c *actor.Ctx) {
		ranges := cowichan.SplitRows(m.N, im.workers)
		for _, r := range ranges {
			w := actor.Spawn(func(wc *actor.Ctx) {
				job := wc.Receive().(WinnowJob)
				t0 := time.Now()
				var pts []cowichan.Point
				for k, row := range job.Rows {
					for j, keep := range job.Mask[k] {
						if keep {
							pts = append(pts, cowichan.Point{Value: row[j], I: int32(job.Lo + k), J: int32(j)})
						}
					}
				}
				sort.Slice(pts, func(a, b int) bool { return pts[a].Less(pts[b]) })
				el := time.Since(t0)
				job.ReplyTo.Send(PointsResult{Lo: job.Lo, Pts: pts, Elapsed: el})
			})
			w.Send(WinnowJob{Lo: r[0], Rows: rowSlices(m, r[0], r[1]), Mask: maskSlices(mask, r[0], r[1]), ReplyTo: c.Self()})
		}
		chunks := make([]PointsResult, 0, len(ranges))
		for range ranges {
			res := c.Receive().(PointsResult)
			chunks = append(chunks, res)
			if res.Elapsed > maxCompute {
				maxCompute = res.Elapsed
			}
		}
		sort.Slice(chunks, func(a, b int) bool { return chunks[a].Lo < chunks[b].Lo })
		var merged []cowichan.Point
		for _, ch := range chunks {
			merged = append(merged, ch.Pts...)
		}
		sort.Slice(merged, func(a, b int) bool { return merged[a].Less(merged[b]) })
		sel = cowichan.SelectPoints(merged, nw)
	})
	return sel, splitTiming(time.Since(start), maxCompute)
}

// Outer implements cowichan.Impl.
func (im *Impl) Outer(pts []cowichan.Point) (*cowichan.FMatrix, cowichan.Vector, cowichan.Timing) {
	start := time.Now()
	n := len(pts)
	om := cowichan.NewFMatrix(n)
	vec := make(cowichan.Vector, n)
	var maxCompute time.Duration
	coordinate(func(c *actor.Ctx) {
		ranges := cowichan.SplitRows(n, im.workers)
		for _, r := range ranges {
			w := actor.Spawn(func(wc *actor.Ctx) {
				job := wc.Receive().(OuterJob)
				t0 := time.Now()
				rows := make([][]float64, 0, job.Hi-job.Lo)
				seg := make([]float64, 0, job.Hi-job.Lo)
				for i := job.Lo; i < job.Hi; i++ {
					row := make([]float64, len(job.Pts))
					cowichan.OuterRow(row, job.Pts, i)
					rows = append(rows, row)
					seg = append(seg, cowichan.OriginDistance(job.Pts[i]))
				}
				el := time.Since(t0)
				job.ReplyTo.Send(OuterResult{Lo: job.Lo, Rows: rows, Vec: seg, Elapsed: el})
			})
			w.Send(OuterJob{Lo: r[0], Hi: r[1], Pts: pts, ReplyTo: c.Self()})
		}
		for range ranges {
			res := c.Receive().(OuterResult)
			for k, row := range res.Rows {
				copy(om.Row(res.Lo+k), row)
			}
			copy(vec[res.Lo:], res.Vec)
			if res.Elapsed > maxCompute {
				maxCompute = res.Elapsed
			}
		}
	})
	return om, vec, splitTiming(time.Since(start), maxCompute)
}

// Product implements cowichan.Impl.
func (im *Impl) Product(m *cowichan.FMatrix, v cowichan.Vector) (cowichan.Vector, cowichan.Timing) {
	start := time.Now()
	out := make(cowichan.Vector, m.N)
	var maxCompute time.Duration
	coordinate(func(c *actor.Ctx) {
		ranges := cowichan.SplitRows(m.N, im.workers)
		for _, r := range ranges {
			w := actor.Spawn(func(wc *actor.Ctx) {
				job := wc.Receive().(ProductJob)
				t0 := time.Now()
				seg := make([]float64, len(job.Rows))
				for k, row := range job.Rows {
					seg[k] = cowichan.DotRow(row, job.Vec)
				}
				el := time.Since(t0)
				job.ReplyTo.Send(ProductResult{Lo: job.Lo, Seg: seg, Elapsed: el})
			})
			w.Send(ProductJob{Lo: r[0], Rows: frowSlices(m, r[0], r[1]), Vec: v, ReplyTo: c.Self()})
		}
		for range ranges {
			res := c.Receive().(ProductResult)
			copy(out[res.Lo:], res.Seg)
			if res.Elapsed > maxCompute {
				maxCompute = res.Elapsed
			}
		}
	})
	return out, splitTiming(time.Since(start), maxCompute)
}

func splitTiming(total, compute time.Duration) cowichan.Timing {
	if compute > total {
		compute = total
	}
	return cowichan.Timing{Compute: compute, Comm: total - compute}
}

// rowSlices returns views of matrix rows [lo, hi); actor.Send deep
// copies them, so the receiver never shares storage with the matrix.
func rowSlices(m *cowichan.Matrix, lo, hi int) [][]int32 {
	rows := make([][]int32, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rows = append(rows, m.Row(i))
	}
	return rows
}

func maskSlices(m *cowichan.Mask, lo, hi int) [][]bool {
	rows := make([][]bool, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rows = append(rows, m.Row(i))
	}
	return rows
}

func frowSlices(m *cowichan.FMatrix, lo, hi int) [][]float64 {
	rows := make([][]float64, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rows = append(rows, m.Row(i))
	}
	return rows
}
