// Package goimpl implements the Cowichan kernels in idiomatic Go:
// a fixed set of worker goroutines pull row ranges from a channel and
// write results into shared output arrays. This is the "go" comparator
// of the paper's language study — shared memory, channel-coordinated,
// no safety guarantees beyond convention.
package goimpl

import (
	"sort"
	"sync"
	"time"

	"scoopqs/internal/cowichan"
)

// Impl is the goroutines+channels implementation.
type Impl struct {
	workers int
}

// New returns an implementation using the given number of worker
// goroutines (minimum 1).
func New(workers int) *Impl {
	if workers < 1 {
		workers = 1
	}
	return &Impl{workers: workers}
}

// Name implements cowichan.Impl.
func (*Impl) Name() string { return "go" }

// Close implements cowichan.Impl.
func (*Impl) Close() {}

// parallelRows fans row ranges out over a channel to worker goroutines
// and waits for completion. Ranges are finer than the worker count so
// the channel provides dynamic load balancing.
func (im *Impl) parallelRows(n int, body func(lo, hi int)) {
	ranges := cowichan.SplitRows(n, im.workers*4)
	ch := make(chan [2]int, len(ranges))
	for _, r := range ranges {
		ch <- r
	}
	close(ch)
	var wg sync.WaitGroup
	for w := 0; w < im.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range ch {
				body(r[0], r[1])
			}
		}()
	}
	wg.Wait()
}

// Randmat implements cowichan.Impl.
func (im *Impl) Randmat(p cowichan.Params) (*cowichan.Matrix, cowichan.Timing) {
	start := time.Now()
	m := cowichan.NewMatrix(p.NR)
	im.parallelRows(p.NR, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cowichan.FillRow(m.Row(i), p.Seed, i)
		}
	})
	return m, cowichan.Timing{Compute: time.Since(start)}
}

// Thresh implements cowichan.Impl.
func (im *Impl) Thresh(m *cowichan.Matrix, pct int) (*cowichan.Mask, cowichan.Timing) {
	start := time.Now()
	// Per-worker histograms merged over a channel.
	hists := make(chan []int, im.workers*4)
	im.parallelRows(m.N, func(lo, hi int) {
		h := make([]int, cowichan.MaxValue)
		for _, v := range m.A[lo*m.N : hi*m.N] {
			h[v]++
		}
		hists <- h
	})
	close(hists)
	hist := make([]int, cowichan.MaxValue)
	for h := range hists {
		for v, c := range h {
			hist[v] += c
		}
	}
	cut := cowichan.ThresholdFromHist(hist, len(m.A), pct)
	mask := cowichan.NewMask(m.N)
	im.parallelRows(m.N, func(lo, hi int) {
		for k := lo * m.N; k < hi*m.N; k++ {
			mask.B[k] = m.A[k] >= cut
		}
	})
	return mask, cowichan.Timing{Compute: time.Since(start)}
}

// Winnow implements cowichan.Impl.
func (im *Impl) Winnow(m *cowichan.Matrix, mask *cowichan.Mask, nw int) ([]cowichan.Point, cowichan.Timing) {
	start := time.Now()
	type chunk struct {
		lo  int
		pts []cowichan.Point
	}
	out := make(chan chunk, im.workers*4)
	im.parallelRows(m.N, func(lo, hi int) {
		out <- chunk{lo: lo, pts: cowichan.CollectPoints(m, mask, lo, hi)}
	})
	close(out)
	chunks := make([]chunk, 0, im.workers*4)
	total := 0
	for c := range out {
		chunks = append(chunks, c)
		total += len(c.pts)
	}
	// Reassemble in row order (chunks arrive unordered), then sort.
	sort.Slice(chunks, func(a, b int) bool { return chunks[a].lo < chunks[b].lo })
	pts := make([]cowichan.Point, 0, total)
	for _, c := range chunks {
		pts = append(pts, c.pts...)
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].Less(pts[b]) })
	sel := cowichan.SelectPoints(pts, nw)
	return sel, cowichan.Timing{Compute: time.Since(start)}
}

// Outer implements cowichan.Impl.
func (im *Impl) Outer(pts []cowichan.Point) (*cowichan.FMatrix, cowichan.Vector, cowichan.Timing) {
	start := time.Now()
	n := len(pts)
	om := cowichan.NewFMatrix(n)
	vec := make(cowichan.Vector, n)
	im.parallelRows(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cowichan.OuterRow(om.Row(i), pts, i)
			vec[i] = cowichan.OriginDistance(pts[i])
		}
	})
	return om, vec, cowichan.Timing{Compute: time.Since(start)}
}

// Product implements cowichan.Impl.
func (im *Impl) Product(m *cowichan.FMatrix, v cowichan.Vector) (cowichan.Vector, cowichan.Timing) {
	start := time.Now()
	out := make(cowichan.Vector, m.N)
	im.parallelRows(m.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = cowichan.DotRow(m.Row(i), v)
		}
	})
	return out, cowichan.Timing{Compute: time.Since(start)}
}
