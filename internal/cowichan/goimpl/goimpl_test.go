package goimpl

import (
	"testing"

	"scoopqs/internal/cowichan"
)

func TestWorkerCountsProduceIdenticalResults(t *testing.T) {
	p := cowichan.Params{NR: 48, P: 20, NW: 48, Seed: 3}
	want := cowichan.Chain(cowichan.NewSeq(), p)
	for _, w := range []int{1, 2, 7, 100} {
		im := New(w)
		got := cowichan.Chain(im, p)
		if !got.Result.Equal(want.Result) {
			t.Errorf("workers=%d: chain diverges", w)
		}
		im.Close()
	}
}

func TestZeroWorkersClamps(t *testing.T) {
	im := New(0)
	defer im.Close()
	p := cowichan.Params{NR: 32, P: 25, NW: 32, Seed: 3}
	m, tm := im.Randmat(p)
	if m.N != p.NR || tm.Total() <= 0 {
		t.Fatal("degenerate result with workers=0")
	}
	if tm.Comm != 0 {
		t.Error("the go paradigm reports no separate comm phase")
	}
}
