// Package cowichan defines the five Cowichan problems used as the
// paper's parallel benchmarks — randmat, thresh, winnow, outer,
// product — plus their composition into the chain benchmark, a
// sequential reference implementation, and verification helpers.
//
// All implementations (sequential and every parallel paradigm) are
// deterministic for a given Params: random numbers come from per-row
// LCG streams, sorts break ties on position, and winnow's selection is
// index-based. Cross-implementation equality is therefore exact and is
// asserted in tests.
package cowichan

import (
	"fmt"
	"math"
	"time"
)

// Params are the problem sizes, mirroring the paper's nr (matrix
// dimension), p (thresh percentage) and nw (winnow selection count).
type Params struct {
	NR   int    // matrix is NR x NR
	P    int    // thresh keeps the top P percent of values
	NW   int    // winnow selects NW points
	Seed uint32 // randmat seed
}

// SmallParams is a laptop-scale configuration used by tests and the
// default harness runs.
func SmallParams() Params { return Params{NR: 256, P: 10, NW: 256, Seed: 42} }

// BenchParams is an even smaller configuration for testing.B loops.
func BenchParams() Params { return Params{NR: 96, P: 15, NW: 96, Seed: 42} }

// PaperParams are the sizes of the paper's §4.1 evaluation
// (nr = 10,000, p = 1, nw = 10,000). A full matrix is 100M cells:
// expect long runs and ~1 GiB of memory.
func PaperParams() Params { return Params{NR: 10000, P: 1, NW: 10000, Seed: 42} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.NR < 2 {
		return fmt.Errorf("cowichan: NR must be >= 2, got %d", p.NR)
	}
	if p.P < 1 || p.P > 100 {
		return fmt.Errorf("cowichan: P must be in [1,100], got %d", p.P)
	}
	if p.NW < 1 {
		return fmt.Errorf("cowichan: NW must be >= 1, got %d", p.NW)
	}
	// winnow needs at least NW masked cells; the mask keeps ~P% of
	// NR*NR cells. Require a 2x margin so rounding can't starve it.
	if est := p.NR * p.NR * p.P / 100; est < 2*p.NW {
		return fmt.Errorf("cowichan: P=%d%% of %dx%d yields ~%d masked cells; too few for NW=%d",
			p.P, p.NR, p.NR, est, p.NW)
	}
	return nil
}

// MaxValue is the exclusive upper bound of matrix cell values; thresh
// histograms have this many buckets.
const MaxValue = 1000

// Matrix is a dense NR x NR matrix of small non-negative integers,
// stored row-major in a single allocation.
type Matrix struct {
	N int
	A []int32
}

// NewMatrix allocates an n x n zero matrix.
func NewMatrix(n int) *Matrix { return &Matrix{N: n, A: make([]int32, n*n)} }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) int32 { return m.A[i*m.N+j] }

// Set stores v at row i, column j.
func (m *Matrix) Set(i, j int, v int32) { m.A[i*m.N+j] = v }

// Row returns row i as a shared sub-slice.
func (m *Matrix) Row(i int) []int32 { return m.A[i*m.N : (i+1)*m.N] }

// Equal reports exact equality.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.N != o.N {
		return false
	}
	for i, v := range m.A {
		if o.A[i] != v {
			return false
		}
	}
	return true
}

// Mask is a boolean NR x NR matrix.
type Mask struct {
	N int
	B []bool
}

// NewMask allocates an n x n all-false mask.
func NewMask(n int) *Mask { return &Mask{N: n, B: make([]bool, n*n)} }

// At returns the mask bit at row i, column j.
func (m *Mask) At(i, j int) bool { return m.B[i*m.N+j] }

// Set stores b at row i, column j.
func (m *Mask) Set(i, j int, b bool) { m.B[i*m.N+j] = b }

// Row returns row i as a shared sub-slice.
func (m *Mask) Row(i int) []bool { return m.B[i*m.N : (i+1)*m.N] }

// Count returns the number of set bits.
func (m *Mask) Count() int {
	n := 0
	for _, b := range m.B {
		if b {
			n++
		}
	}
	return n
}

// Equal reports exact equality.
func (m *Mask) Equal(o *Mask) bool {
	if m.N != o.N {
		return false
	}
	for i, v := range m.B {
		if o.B[i] != v {
			return false
		}
	}
	return true
}

// Point is a masked matrix cell: its value and position.
type Point struct {
	Value int32
	I, J  int32
}

// Less orders points by (value, i, j) — the deterministic winnow order.
func (p Point) Less(q Point) bool {
	if p.Value != q.Value {
		return p.Value < q.Value
	}
	if p.I != q.I {
		return p.I < q.I
	}
	return p.J < q.J
}

// PointsEqual reports exact slice equality.
func PointsEqual(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FMatrix is a dense float64 matrix (outer's output).
type FMatrix struct {
	N int
	A []float64
}

// NewFMatrix allocates an n x n zero matrix.
func NewFMatrix(n int) *FMatrix { return &FMatrix{N: n, A: make([]float64, n*n)} }

// At returns the element at row i, column j.
func (m *FMatrix) At(i, j int) float64 { return m.A[i*m.N+j] }

// Set stores v at row i, column j.
func (m *FMatrix) Set(i, j int, v float64) { m.A[i*m.N+j] = v }

// Row returns row i as a shared sub-slice.
func (m *FMatrix) Row(i int) []float64 { return m.A[i*m.N : (i+1)*m.N] }

// Equal reports exact (bitwise) equality, which deterministic
// implementations achieve because every row is computed with the same
// operation order.
func (m *FMatrix) Equal(o *FMatrix) bool {
	if m.N != o.N {
		return false
	}
	for i, v := range m.A {
		if o.A[i] != v {
			return false
		}
	}
	return true
}

// Vector is a dense float64 vector.
type Vector []float64

// Equal reports exact equality.
func (v Vector) Equal(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Timing splits a kernel's elapsed time the way the paper's Figs. 18/19
// do: Compute is parallel kernel work, Comm is data distribution and
// result collection. Paradigms without an explicit communication phase
// report everything as Compute.
type Timing struct {
	Compute time.Duration
	Comm    time.Duration
}

// Total returns Compute + Comm.
func (t Timing) Total() time.Duration { return t.Compute + t.Comm }

// Add accumulates another timing.
func (t Timing) Add(o Timing) Timing {
	return Timing{Compute: t.Compute + o.Compute, Comm: t.Comm + o.Comm}
}

// Impl is one paradigm's implementation of the Cowichan kernels. All
// implementations must produce outputs identical to the Seq reference.
type Impl interface {
	// Name is the paradigm label used in tables ("cxx", "go",
	// "haskell", "erlang", "Qs", "seq").
	Name() string
	// Close releases pools/handlers. The Impl is unusable afterwards.
	Close()

	Randmat(p Params) (*Matrix, Timing)
	Thresh(m *Matrix, pct int) (*Mask, Timing)
	Winnow(m *Matrix, mask *Mask, nw int) ([]Point, Timing)
	Outer(pts []Point) (*FMatrix, Vector, Timing)
	Product(m *FMatrix, v Vector) (Vector, Timing)
}

// ChainResult carries the chain benchmark's final output and the
// accumulated timing.
type ChainResult struct {
	Result Vector
	Timing Timing
}

// Chain composes the five kernels, feeding each output into the next —
// the paper's chain benchmark.
func Chain(im Impl, p Params) ChainResult {
	mat, t1 := im.Randmat(p)
	mask, t2 := im.Thresh(mat, p.P)
	pts, t3 := im.Winnow(mat, mask, p.NW)
	om, ov, t4 := im.Outer(pts)
	res, t5 := im.Product(om, ov)
	return ChainResult{Result: res, Timing: t1.Add(t2).Add(t3).Add(t4).Add(t5)}
}

// lcgA and lcgC are the Numerical Recipes LCG constants used by
// randmat's per-row streams.
const (
	lcgA uint32 = 1664525
	lcgC uint32 = 1013904223
)

// RowSeed derives the deterministic seed of row i.
func RowSeed(seed uint32, i int) uint32 {
	return seed + uint32(i)*2654435761
}

// NextValue advances an LCG state and produces a cell value in
// [0, MaxValue).
func NextValue(s *uint32) int32 {
	*s = *s*lcgA + lcgC
	return int32((*s >> 8) % MaxValue)
}

// FillRow fills one randmat row from its row seed; every implementation
// shares this so decomposition cannot change results.
func FillRow(row []int32, seed uint32, i int) {
	s := RowSeed(seed, i)
	for j := range row {
		row[j] = NextValue(&s)
	}
}

// ThresholdFromHist computes the thresh cutoff value from a value
// histogram: the smallest value v such that keeping all cells >= v
// keeps at most (pct% of total) cells, scanning from the top. It
// returns the cutoff.
func ThresholdFromHist(hist []int, total, pct int) int32 {
	target := total * pct / 100
	kept := 0
	v := MaxValue - 1
	for ; v >= 0; v-- {
		if kept+hist[v] > target {
			break
		}
		kept += hist[v]
	}
	return int32(v + 1)
}

// WinnowIndices returns the nw evenly spread indices into a sorted
// point list of length n (endpoints included when nw > 1).
func WinnowIndices(n, nw int) []int {
	idx := make([]int, nw)
	if nw == 1 {
		idx[0] = 0
		return idx
	}
	for k := 0; k < nw; k++ {
		idx[k] = k * (n - 1) / (nw - 1)
	}
	return idx
}

// OuterDistance is the distance function shared by outer and the
// winnow->outer hand-off: Euclidean distance between matrix positions.
// Every implementation must use this helper so results stay bitwise
// identical.
func OuterDistance(a, b Point) float64 {
	dx := float64(a.I - b.I)
	dy := float64(a.J - b.J)
	return math.Sqrt(dx*dx + dy*dy)
}

// OriginDistance is the distance of a point from the origin.
func OriginDistance(a Point) float64 {
	dx := float64(a.I)
	dy := float64(a.J)
	return math.Sqrt(dx*dx + dy*dy)
}
