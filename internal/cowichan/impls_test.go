package cowichan_test

import (
	"testing"

	"scoopqs/internal/core"
	"scoopqs/internal/cowichan"
	"scoopqs/internal/cowichan/actorimpl"
	"scoopqs/internal/cowichan/goimpl"
	"scoopqs/internal/cowichan/pureimpl"
	"scoopqs/internal/cowichan/qsimpl"
	"scoopqs/internal/cowichan/tbbimpl"
)

func smallParams() cowichan.Params {
	return cowichan.Params{NR: 64, P: 20, NW: 64, Seed: 7}
}

// makeImpls builds one implementation per paradigm (Qs under the All
// configuration); callers must Close them.
func makeImpls(workers int) []cowichan.Impl {
	return []cowichan.Impl{
		cowichan.NewSeq(),
		goimpl.New(workers),
		tbbimpl.New(workers),
		pureimpl.New(workers),
		actorimpl.New(workers),
		qsimpl.New(core.ConfigAll, workers),
	}
}

// TestAllImplsMatchReference checks every paradigm's output for every
// kernel against the sequential reference, end to end.
func TestAllImplsMatchReference(t *testing.T) {
	p := smallParams()
	seq := cowichan.NewSeq()
	wantMat, _ := seq.Randmat(p)
	wantMask, _ := seq.Thresh(wantMat, p.P)
	wantPts, _ := seq.Winnow(wantMat, wantMask, p.NW)
	wantOM, wantVec, _ := seq.Outer(wantPts)
	wantRes, _ := seq.Product(wantOM, wantVec)

	for _, im := range makeImpls(3) {
		im := im
		t.Run(im.Name(), func(t *testing.T) {
			defer im.Close()
			mat, _ := im.Randmat(p)
			if !mat.Equal(wantMat) {
				t.Fatal("randmat diverges from reference")
			}
			mask, _ := im.Thresh(mat, p.P)
			if !mask.Equal(wantMask) {
				t.Fatal("thresh diverges from reference")
			}
			pts, _ := im.Winnow(mat, mask, p.NW)
			if !cowichan.PointsEqual(pts, wantPts) {
				t.Fatal("winnow diverges from reference")
			}
			om, vec, _ := im.Outer(pts)
			if !om.Equal(wantOM) || !vec.Equal(wantVec) {
				t.Fatal("outer diverges from reference")
			}
			res, _ := im.Product(om, vec)
			if !res.Equal(wantRes) {
				t.Fatal("product diverges from reference")
			}
		})
	}
}

// TestChainMatchesAcrossImpls runs the composed chain and compares
// final vectors.
func TestChainMatchesAcrossImpls(t *testing.T) {
	p := smallParams()
	want := cowichan.Chain(cowichan.NewSeq(), p)
	for _, im := range makeImpls(2) {
		im := im
		t.Run(im.Name(), func(t *testing.T) {
			defer im.Close()
			got := cowichan.Chain(im, p)
			if !got.Result.Equal(want.Result) {
				t.Fatal("chain result diverges from reference")
			}
			if got.Timing.Total() <= 0 {
				t.Fatal("chain reported non-positive timing")
			}
		})
	}
}

// TestQsAllConfigsMatch runs the Qs implementation under all five
// optimization configurations; results must be identical (the
// optimizations must not change semantics).
func TestQsAllConfigsMatch(t *testing.T) {
	p := cowichan.Params{NR: 48, P: 20, NW: 48, Seed: 11}
	want := cowichan.Chain(cowichan.NewSeq(), p)
	for _, cfg := range core.Configs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			im := qsimpl.New(cfg, 3)
			defer im.Close()
			got := cowichan.Chain(im, p)
			if !got.Result.Equal(want.Result) {
				t.Fatalf("chain under %s diverges from reference", cfg.Name())
			}
		})
	}
}

// TestQsElisionActuallyHappens asserts that the optimized
// configurations eliminate sync round-trips relative to Dynamic's
// accounting, via the runtime's instrumentation.
func TestQsElisionActuallyHappens(t *testing.T) {
	p := cowichan.Params{NR: 48, P: 20, NW: 48, Seed: 11}

	dyn := qsimpl.New(core.ConfigDynamic, 2)
	cowichan.Chain(dyn, p)
	dstats := dyn.Runtime().Stats()
	dyn.Close()
	if dstats.SyncsElided == 0 {
		t.Error("Dynamic config elided no syncs on a pull-heavy workload")
	}
	if dstats.SyncsPerformed > dstats.SyncsElided/10+100 {
		t.Errorf("Dynamic config performed too many syncs: %+v", dstats)
	}

	none := qsimpl.New(core.ConfigNone, 2)
	cowichan.Chain(none, p)
	nstats := none.Runtime().Stats()
	none.Close()
	if nstats.RemoteQueries == 0 {
		t.Error("None config issued no remote queries")
	}
	if nstats.SyncsElided != 0 {
		t.Error("None config should elide nothing")
	}

	all := qsimpl.New(core.ConfigAll, 2)
	cowichan.Chain(all, p)
	astats := all.Runtime().Stats()
	all.Close()
	if astats.RemoteQueries != 0 {
		t.Error("All config should not use remote queries")
	}
	if astats.LocalQueries == 0 {
		t.Error("All config performed no local queries")
	}
	// The hoisted path needs only a handful of syncs per pull loop.
	if astats.SyncsPerformed >= nstats.RemoteQueries/10 {
		t.Errorf("All config still synchronizing heavily: %d syncs vs %d remote queries under None",
			astats.SyncsPerformed, nstats.RemoteQueries)
	}
}

func TestValidateParams(t *testing.T) {
	cases := []struct {
		p  cowichan.Params
		ok bool
	}{
		{cowichan.Params{NR: 64, P: 20, NW: 64}, true},
		{cowichan.Params{NR: 1, P: 20, NW: 1}, false},   // NR too small
		{cowichan.Params{NR: 64, P: 0, NW: 1}, false},   // P out of range
		{cowichan.Params{NR: 64, P: 101, NW: 1}, false}, // P out of range
		{cowichan.Params{NR: 64, P: 1, NW: 0}, false},   // NW too small
		{cowichan.Params{NR: 10, P: 1, NW: 50}, false},  // too few masked cells
		{cowichan.SmallParams(), true},
		{cowichan.BenchParams(), true},
		{cowichan.PaperParams(), true},
	}
	for i, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d (%+v): Validate() = %v, want ok=%v", i, c.p, err, c.ok)
		}
	}
}

func TestSplitRowsCoversExactly(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 100} {
		for _, parts := range []int{1, 2, 3, 8, 200} {
			ranges := cowichan.SplitRows(n, parts)
			covered := 0
			last := 0
			for _, r := range ranges {
				if r[0] != last {
					t.Fatalf("SplitRows(%d,%d): gap at %d", n, parts, last)
				}
				if r[1] <= r[0] {
					t.Fatalf("SplitRows(%d,%d): empty range", n, parts)
				}
				covered += r[1] - r[0]
				last = r[1]
			}
			if covered != n || last != n {
				t.Fatalf("SplitRows(%d,%d) covers %d", n, parts, covered)
			}
		}
	}
}

func TestWinnowIndices(t *testing.T) {
	idx := cowichan.WinnowIndices(100, 10)
	if idx[0] != 0 || idx[9] != 99 {
		t.Errorf("endpoints wrong: %v", idx)
	}
	for k := 1; k < len(idx); k++ {
		if idx[k] < idx[k-1] {
			t.Errorf("indices not monotone: %v", idx)
		}
	}
	if got := cowichan.WinnowIndices(50, 1); got[0] != 0 {
		t.Errorf("single selection should be index 0, got %v", got)
	}
}

func TestThresholdFromHist(t *testing.T) {
	// 100 cells of value 0..99, one each; keep top 10% -> cutoff 90.
	hist := make([]int, cowichan.MaxValue)
	for v := 0; v < 100; v++ {
		hist[v] = 1
	}
	if cut := cowichan.ThresholdFromHist(hist, 100, 10); cut != 90 {
		t.Errorf("cutoff = %d, want 90", cut)
	}
	// Keeping 100% keeps everything: cutoff 0.
	if cut := cowichan.ThresholdFromHist(hist, 100, 100); cut != 0 {
		t.Errorf("cutoff at 100%% = %d, want 0", cut)
	}
}

func TestRandmatDeterminism(t *testing.T) {
	p := smallParams()
	seq := cowichan.NewSeq()
	m1, _ := seq.Randmat(p)
	m2, _ := seq.Randmat(p)
	if !m1.Equal(m2) {
		t.Fatal("randmat is not deterministic")
	}
	p2 := p
	p2.Seed++
	m3, _ := seq.Randmat(p2)
	if m1.Equal(m3) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestMaskCount(t *testing.T) {
	p := smallParams()
	seq := cowichan.NewSeq()
	m, _ := seq.Randmat(p)
	mask, _ := seq.Thresh(m, p.P)
	frac := float64(mask.Count()) / float64(p.NR*p.NR)
	want := float64(p.P) / 100
	if frac > want+0.02 {
		t.Errorf("mask keeps %.3f of cells, want <= ~%.3f", frac, want)
	}
	if mask.Count() < p.NW {
		t.Errorf("mask keeps %d cells, fewer than NW=%d", mask.Count(), p.NW)
	}
}
