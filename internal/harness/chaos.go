package harness

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"sync"
	"time"

	"scoopqs/internal/chaos"
	"scoopqs/internal/core"
	"scoopqs/internal/future"
	"scoopqs/internal/remote"
)

// The chaos experiment's fixed shape: two victim and two survivor
// logical clients, each with its own handler-owned counter, so every
// run checks end-to-end correctness (final counter values) next to the
// fault assertions.
const (
	chaosVictims   = 2
	chaosSurvivors = 2
	chaosQueries   = 1024 // total, split across the four sessions

	// chaosWriteBudget mirrors internal/remote's default writer budget;
	// the bounded-memory assertion allows it plus one frame of slack.
	chaosWriteBudget = 256 << 10
	// chaosMaxWindow mirrors the adaptive window ceiling: deferred
	// replies are bounded by window x channels even under faults.
	chaosMaxWindow = 1024

	chaosIdleTimeout   = 150 * time.Millisecond
	chaosAwaitTimeout  = 60 * time.Second
	chaosSettleTimeout = 10 * time.Second
)

// chaosScenario is one fault profile plus what it must provoke.
type chaosScenario struct {
	name    string
	p       chaos.Profile // transport faults on the victim connection
	lethal  bool          // the victim connection is expected to die
	abuse   bool          // raw credit-ignoring flood instead of a mux victim
	silence bool          // open a block, then go silent (idle-deadline prey)
}

// chaosScenarios is the sweep -experiment chaos runs, every fault the
// chaos package can inject plus the two protocol-level misbehaviors.
var chaosScenarios = []chaosScenario{
	{name: "baseline"},
	{name: "latency", p: chaos.Profile{Name: "latency", LatencyMin: 20 * time.Microsecond, LatencyMax: 200 * time.Microsecond}},
	// StallEvery is small because the batching writer coalesces the
	// whole pipelined burst into a handful of flushes.
	{name: "stall", p: chaos.Profile{Name: "stall", StallEvery: 2, StallDur: 2 * time.Millisecond}},
	{name: "partial", p: chaos.Profile{Name: "partial", ChunkMax: 7}},
	{name: "truncate", p: chaos.Profile{Name: "truncate", TruncateAfter: 4096}, lethal: true},
	{name: "reset", p: chaos.Profile{Name: "reset", ResetAfter: 4096}, lethal: true},
	// Read-path mirrors: the victim's own reader — frame reassembly and
	// slab bookkeeping under REPLYB traffic — is the component under test.
	{name: "read-latency", p: chaos.Profile{Name: "read-latency", ReadLatencyMin: 20 * time.Microsecond, ReadLatencyMax: 200 * time.Microsecond}},
	{name: "read-partial", p: chaos.Profile{Name: "read-partial", ReadChunkMax: 7}},
	{name: "read-truncate", p: chaos.Profile{Name: "read-truncate", ReadTruncateAfter: 8192}, lethal: true},
	{name: "abuse", abuse: true},
	{name: "silence", silence: true},
}

// chaosPayloadLen sizes the pipeline's interleaved bytes echoes: past
// the decoder's small-payload intern threshold, so faults hit the
// pooled slab path, not the static cache.
const chaosPayloadLen = 192

// chaosOutcome is what one scenario run produced, for the table and
// the JSON rows.
type chaosOutcome struct {
	survivorTime time.Duration
	stats        remote.ServerStats
	faults       chaos.Counts
	failedFuts   int // victim futures that resolved with an error
}

// chaosHandlerName names the per-session counter handlers.
func chaosHandlerName(i int) string { return "chaos-counter" + strconv.Itoa(i) }

// chaosServer builds the runtime + server every scenario runs against:
// one counter handler per session slot, and the abuse scenario's slow
// handler (1ms per call, so a credit-ignoring flood deterministically
// outruns any window the server could have extended).
func chaosServer(cfg core.Config) (*core.Runtime, *remote.Server, net.Listener, error) {
	rt := core.New(cfg)
	srv := remote.NewServer(rt)
	srv.IdleTimeout = chaosIdleTimeout
	for i := 0; i < chaosVictims+chaosSurvivors; i++ {
		h := rt.NewHandler(chaosHandlerName(i))
		c := new(int64)
		srv.Expose(chaosHandlerName(i), h, map[string]remote.Proc{
			"add": func(a []int64) int64 { *c += a[0]; return *c },
		})
		srv.ExposeBytes(chaosHandlerName(i), h, map[string]remote.BytesProc{
			"echo": func(p []byte) []byte { return p },
		})
	}
	srv.Expose("chaos-abuse", rt.NewHandler("chaos-abuse"), map[string]remote.Proc{
		"hold": func([]int64) int64 { time.Sleep(time.Millisecond); return 0 },
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Shutdown()
		return nil, nil, nil, err
	}
	go srv.Serve(ln)
	return rt, srv, ln, nil
}

// chaosPipeline drives qper pipelined queries through each of the
// sessions [first, first+n) of mux, one goroutine per session — every
// fourth request a bytes echo through the slab path, the rest int64
// adds. Every future is awaited (with a deadline — recovery means
// nothing may hang), and the outcome is the count of futures that
// resolved with errors. A bytes echo that resolves successfully must
// come back intact in every scenario (faults may kill requests, never
// corrupt survivors); wantClean additionally asserts that everything
// succeeded and the counters reached the add count exactly.
func chaosPipeline(mux *remote.Mux, first, n, qper int, wantClean bool) (failed int, err error) {
	type bytesCheck struct {
		f    *future.Future
		want byte
	}
	type sessionRun struct {
		futs  []*future.Future
		bfuts []bytesCheck
		last  *future.Future
		adds  int
		err   error
	}
	runs := make([]sessionRun, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		rs := mux.NewSession()
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, chaosPayloadLen)
			runs[i].err = rs.Separate(chaosHandlerName(first+i), func(s *remote.Session) error {
				for q := 0; q < qper; q++ {
					if q%4 == 3 {
						pat := byte(q)
						for j := range payload {
							payload[j] = pat
						}
						// The payload is encoded before QueryBytesAsync
						// returns, so one buffer serves the whole session.
						f, err := s.QueryBytesAsync("echo", payload)
						if err != nil {
							return err
						}
						runs[i].bfuts = append(runs[i].bfuts, bytesCheck{f, pat})
						continue
					}
					f, err := s.QueryAsync("add", 1)
					if err != nil {
						return err
					}
					runs[i].futs = append(runs[i].futs, f)
					runs[i].last = f
					runs[i].adds++
				}
				return nil
			})
		}()
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		for i := range runs {
			for _, f := range runs[i].futs {
				f.Get() //nolint:errcheck // resolution is the assertion; errors counted below
			}
			for _, bc := range runs[i].bfuts {
				bc.f.Get() //nolint:errcheck
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(chaosAwaitTimeout):
		return 0, fmt.Errorf("harness: chaos futures still unresolved after %v (recovery guarantee broken)", chaosAwaitTimeout)
	}

	for i := range runs {
		for _, f := range runs[i].futs {
			if _, ferr := f.Get(); ferr != nil {
				failed++
			}
		}
		for _, bc := range runs[i].bfuts {
			v, ferr := bc.f.Get()
			if ferr != nil {
				failed++
				continue
			}
			p, _ := v.([]byte)
			intact := len(p) == chaosPayloadLen
			for _, x := range p {
				if x != bc.want {
					intact = false
					break
				}
			}
			remote.Release(p)
			if !intact {
				return failed, fmt.Errorf("harness: chaos session %d: echo payload corrupted (%d bytes back, want %d of 0x%02x)",
					first+i, len(p), chaosPayloadLen, bc.want)
			}
		}
		if wantClean {
			if runs[i].err != nil {
				return failed, fmt.Errorf("harness: chaos session %d failed: %w", first+i, runs[i].err)
			}
			if v, ferr := runs[i].last.Get(); ferr != nil || v.(int64) != int64(runs[i].adds) {
				return failed, fmt.Errorf("harness: chaos counter %d ended at %v (err %v), want %d", first+i, v, ferr, runs[i].adds)
			}
		}
	}
	return failed, nil
}

// chaosRun executes one scenario: the faulty victim and a clean
// survivor connection against one server, then the bounded-memory,
// recovery, and leak assertions. Violations come back as errors; Chaos
// panics on them so CI gates on the exit code.
func chaosRun(cfg core.Config, sc chaosScenario, seed int64) (chaosOutcome, error) {
	var out chaosOutcome
	baseGoroutines := runtime.NumGoroutine()

	rt, srv, ln, err := chaosServer(cfg)
	if err != nil {
		return out, err
	}
	addr := ln.Addr().String()

	// Survivor: an honest connection running its full workload while
	// the victim misbehaves. It must complete cleanly in every scenario.
	qper := chaosQueries / (chaosVictims + chaosSurvivors)
	survErr := make(chan error, 1)
	survTime := make(chan time.Duration, 1)
	go func() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			survErr <- err
			return
		}
		mux := remote.NewMux(conn)
		defer mux.Close()
		start := time.Now()
		_, err = chaosPipeline(mux, chaosVictims, chaosSurvivors, qper, true)
		survTime <- time.Since(start)
		survErr <- err
	}()

	// Victim: the scenario's faulty peer.
	switch {
	case sc.abuse:
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return out, err
		}
		if _, err := conn.Write(chaos.Flood("chaos-abuse", "hold", 4096)); err != nil {
			conn.Close()
			return out, fmt.Errorf("harness: abuse flood write: %w", err)
		}
		if err := chaosPoll(func() bool { return srv.Stats().Quarantines >= 1 }); err != nil {
			conn.Close()
			return out, fmt.Errorf("harness: flood of 4096 uncredited calls was never quarantined")
		}
		conn.Close()

	case sc.silence:
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return out, err
		}
		// A BEGIN with no calls: open work, then silence — exactly what
		// the idle deadline exists for.
		if _, err := conn.Write(chaos.Flood(chaosHandlerName(0), "add", 0)); err != nil {
			conn.Close()
			return out, fmt.Errorf("harness: silence BEGIN write: %w", err)
		}
		if err := chaosPoll(func() bool { return srv.Stats().PeerStalls >= 1 }); err != nil {
			conn.Close()
			return out, fmt.Errorf("harness: silent mid-block peer was never timed out")
		}
		conn.Close()

	default:
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return out, err
		}
		wrapped := chaos.Wrap(conn, sc.p, seed)
		mux := remote.NewMux(wrapped)
		failed, err := chaosPipeline(mux, 0, chaosVictims, qper, !sc.lethal)
		if err != nil {
			mux.Close()
			return out, err
		}
		out.failedFuts = failed
		if fc, ok := wrapped.(*chaos.Conn); ok {
			out.faults = fc.Counts()
		}
		if sc.lethal {
			if out.faults.Truncates+out.faults.Resets+out.faults.ReadTruncates == 0 {
				return out, fmt.Errorf("harness: %s scenario never cut the connection", sc.name)
			}
			if mux.Err() == nil {
				return out, fmt.Errorf("harness: victim mux survived a %s", sc.name)
			}
			if errors.Is(mux.Err(), remote.ErrClosed) {
				return out, fmt.Errorf("harness: involuntary %s teardown reported as a clean close", sc.name)
			}
		}
		mux.Close()
	}

	if err := <-survErr; err != nil {
		return out, fmt.Errorf("harness: survivor connection in %s scenario: %w", sc.name, err)
	}
	out.survivorTime = <-survTime
	out.stats = srv.Stats()

	// Bounded memory under every fault: the pending batch stays at the
	// byte budget (plus one frame), and deferred replies stay within
	// window x channels plus the per-channel grants/block errors.
	if max := out.stats.MaxBatchBytes; max > chaosWriteBudget+4096 {
		return out, fmt.Errorf("harness: %s scenario grew the pending batch to %d bytes (budget %d)", sc.name, max, chaosWriteBudget)
	}
	channels := chaosVictims + chaosSurvivors + 1
	if max := out.stats.MaxParkedFrames; max > uint64(channels*chaosMaxWindow+16) {
		return out, fmt.Errorf("harness: %s scenario parked %d frames (bound %d)", sc.name, max, channels*chaosMaxWindow+16)
	}

	srv.Close()
	rt.Shutdown()

	// Clean recovery: everything the run spawned — muxes, server conns,
	// pool workers — is gone. A leaked goroutine here is a wedged reader
	// or an unreleased handler.
	deadline := time.Now().Add(chaosSettleTimeout)
	for runtime.NumGoroutine() > baseGoroutines+2 {
		if time.Now().After(deadline) {
			return out, fmt.Errorf("harness: %s scenario leaked goroutines: %d now vs %d before", sc.name, runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return out, nil
}

// chaosPoll waits (bounded) for a server-side counter to move.
func chaosPoll(cond func() bool) error {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("harness: chaos condition never held")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

// Chaos runs the remote path through the fault-injection sweep: every
// chaos profile (seeded from -seed, so failures replay), the
// credit-abusing flood, and the silent mid-block peer, each next to an
// honest survivor connection, at pool widths 1 and 4. Each run asserts
// the robustness contract — server memory stays bounded, every victim
// future resolves (with terminal errors when the connection died),
// survivors complete with exact counter values, quarantine/idle
// enforcement fires, and nothing leaks goroutines. Any violation
// panics, so CI gates on the exit code. Not a paper experiment; it
// hardens this repo's remote subsystem (see README "Fault tolerance").
func (o Options) Chaos() {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	section(o.Out, "Chaos: remote-path fault injection",
		fmt.Sprintf("%d fault scenarios x pool widths {1,4}, seed %d: a faulty victim\nconnection (injected latency, stalls, partial writes and reads,\ntruncation on either direction, resets, credit abuse, mid-block\nsilence) races an honest survivor connection on one server (adaptive\nwindows, %v idle deadline). Every fourth request is a bytes echo\nthrough the pooled slab path, so read faults land on REPLYB frame\nreassembly. Asserted per run: bounded batch/parked memory, every\nfuture resolves, resolved echoes are byte-intact, survivors finish\nexactly, offenders are quarantined or timed out, and no goroutine\noutlives its run.", len(chaosScenarios), seed, chaosIdleTimeout))

	tb := newTable(o.Out)
	tb.row("Scenario", "pool", "surv(s)", "surv q/s", "failedFuts", "quar", "stalls", "resize", "faults")
	for _, pool := range []int{1, 4} {
		cfg := core.ConfigAll.WithWorkers(pool)
		for i, sc := range chaosScenarios {
			out, err := chaosRun(cfg, sc, seed+int64(i))
			if err != nil {
				panic(err)
			}
			qper := chaosQueries / (chaosVictims + chaosSurvivors)
			qps := float64(qper*chaosSurvivors) / out.survivorTime.Seconds()
			injected := out.faults.Total()
			tb.row(sc.name, strconv.Itoa(pool), Seconds(out.survivorTime),
				fmt.Sprintf("%.0f", qps),
				strconv.Itoa(out.failedFuts),
				strconv.FormatUint(out.stats.Quarantines, 10),
				strconv.FormatUint(out.stats.PeerStalls, 10),
				strconv.FormatUint(out.stats.WindowResizes, 10),
				strconv.FormatUint(injected, 10))
			o.Rec.Add(Result{
				Experiment: "chaos",
				Labels: map[string]string{
					"scenario": sc.name,
					"config":   cfg.Name(),
					"workers":  strconv.Itoa(pool),
					"seed":     strconv.FormatInt(seed+int64(i), 10),
				},
				Medians: map[string]float64{
					"survivor_seconds":            out.survivorTime.Seconds(),
					"survivor_queries_per_second": qps,
				},
				Counters: map[string]int64{
					"failed_futures":         int64(out.failedFuts),
					"quarantines":            int64(out.stats.Quarantines),
					"peer_stalls":            int64(out.stats.PeerStalls),
					"window_resizes":         int64(out.stats.WindowResizes),
					"max_batch_bytes":        int64(out.stats.MaxBatchBytes),
					"max_parked_frames":      int64(out.stats.MaxParkedFrames),
					"injected_delays":        int64(out.faults.Delays),
					"injected_stalls":        int64(out.faults.Stalls),
					"injected_chunks":        int64(out.faults.Chunks),
					"injected_truncates":     int64(out.faults.Truncates),
					"injected_resets":        int64(out.faults.Resets),
					"injected_read_delays":   int64(out.faults.ReadDelays),
					"injected_read_chunks":   int64(out.faults.ReadChunks),
					"injected_read_truncate": int64(out.faults.ReadTruncates),
				},
			})
		}
	}
	tb.flush()
}
