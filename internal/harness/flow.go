package harness

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/future"
	"scoopqs/internal/remote"
)

// flowSessions is the logical-client count of the flow experiment.
const flowSessions = 8

// flowPipeListener adapts net.Pipe to net.Listener so the experiment
// controls the transport end to end: net.Pipe has no kernel buffering,
// so a client that stops reading stalls the server's very next flush —
// the sharpest version of the slow-peer scenario, with no socket
// buffers to blur the measurement.
type flowPipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newFlowPipeListener() *flowPipeListener {
	return &flowPipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *flowPipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *flowPipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *flowPipeListener) Addr() net.Addr { return flowPipeAddr{} }

func (l *flowPipeListener) dial() net.Conn {
	c, s := net.Pipe()
	l.conns <- s
	return c
}

type flowPipeAddr struct{}

func (flowPipeAddr) Network() string { return "pipe" }
func (flowPipeAddr) String() string  { return "pipe" }

// gatedConn is a net.Conn whose reads can be stalled and resumed: the
// experiment's deliberately slow reader.
type gatedConn struct {
	net.Conn
	mu   sync.Mutex
	gate chan struct{} // nil while reads flow
}

func (c *gatedConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	g := c.gate
	c.mu.Unlock()
	if g != nil {
		<-g
	}
	return c.Conn.Read(p)
}

func (c *gatedConn) stall() {
	c.mu.Lock()
	if c.gate == nil {
		c.gate = make(chan struct{})
	}
	c.mu.Unlock()
}

func (c *gatedConn) resume() {
	c.mu.Lock()
	if c.gate != nil {
		close(c.gate)
		c.gate = nil
	}
	c.mu.Unlock()
}

// flowMode is one write-path configuration of the flow experiment.
type flowMode struct {
	name   string
	budget int // Server.WriteBudget
	window int // Server.Window
}

// flowModes compares the bounded write path against the PR 4 baseline:
//
//   - unbounded: no byte budget, a window so large the client's
//     admission gate never closes — the pre-flow-control writer, whose
//     batch grows with the entire reply volume under a stalled peer.
//   - flow: an 8 KiB budget and the default credit window — the batch
//     caps at the budget and the overflow is bounded by the window.
var flowModes = []flowMode{
	{"unbounded", -1, 1 << 20},
	{"flow", 8 << 10, 0},
}

// flowRun is one repetition: prime the credit windows, stall the
// client's reads, pipeline the whole workload into the stall, wait for
// the server to quiesce (everything executed, replies piled in its
// writer), then resume and drain. Returns the wall time of the
// pipelined phase and the server's write-path stats.
func flowRun(cfg core.Config, mode flowMode, qper int) (time.Duration, remote.ServerStats, remote.MuxStats, error) {
	rt := core.New(cfg)
	srv := remote.NewServer(rt)
	srv.WriteBudget = mode.budget
	srv.Window = mode.window
	for i := 0; i < flowSessions; i++ {
		h := rt.NewHandler(remoteHandlerName(i))
		c := new(int64)
		srv.Expose(remoteHandlerName(i), h, map[string]remote.Proc{
			"add": func(a []int64) int64 { *c += a[0]; return *c },
		})
	}
	ln := newFlowPipeListener()
	go srv.Serve(ln)
	defer func() {
		srv.Close()
		rt.Shutdown()
	}()

	conn := &gatedConn{Conn: ln.dial()}
	mux := remote.NewMux(conn)
	defer mux.Close()

	// Prime: a sync round-trip per session delivers the server's
	// window advertisement, so the stall phase measures the steady
	// state, not the bootstrap.
	sessions := make([]*remote.RemoteSession, flowSessions)
	for i := range sessions {
		sessions[i] = mux.NewSession()
		err := sessions[i].Separate(remoteHandlerName(i), func(s *remote.Session) error {
			_, err := s.Query("add", 0)
			return err
		})
		if err != nil {
			return 0, remote.ServerStats{}, remote.MuxStats{}, err
		}
	}

	// Stall the reads and pipeline the whole workload into the stall.
	conn.stall()
	start := time.Now()
	lasts := make([]*future.Future, flowSessions)
	var wg sync.WaitGroup
	errs := make(chan error, flowSessions)
	for i := range sessions {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- sessions[i].Separate(remoteHandlerName(i), func(s *remote.Session) error {
				for q := 0; q < qper; q++ {
					f, err := s.QueryAsync("add", 1)
					if err != nil {
						return err
					}
					lasts[i] = f
				}
				return nil
			})
		}()
	}

	// Wait for the server to quiesce: every admitted request executed
	// and its reply accepted by the (stalled) writer. In unbounded
	// mode that is the entire workload; with flow control the client's
	// admission gate closes at the window first.
	prev := srv.Stats().Frames
	for settled := 0; settled < 5; {
		time.Sleep(10 * time.Millisecond)
		if cur := srv.Stats().Frames; cur == prev {
			settled++
		} else {
			prev, settled = cur, 0
		}
	}
	peak := srv.Stats()

	conn.resume()
	wg.Wait()
	for range sessions {
		if err := <-errs; err != nil {
			return 0, peak, mux.Stats(), err
		}
	}
	for i, rs := range sessions {
		if err := rs.Flush(); err != nil {
			return 0, peak, mux.Stats(), err
		}
		v, err := rs.Await(lasts[i])
		if err != nil {
			return 0, peak, mux.Stats(), err
		}
		if v != int64(qper) {
			return 0, peak, mux.Stats(), fmt.Errorf("harness: flow counter ended at %d, want %d", v, qper)
		}
	}
	return time.Since(start), peak, mux.Stats(), nil
}

// Flow measures the remote transport's flow control under a
// deliberately slow reader: the client stalls its reads mid-burst
// while its sessions pipeline the whole workload. Without flow control
// (the PR 4 writer) the server's pending batch grows with the entire
// reply volume; with the byte budget and credit windows it is capped
// at the budget, with the overflow bounded by window × channels. Not a
// paper experiment; it measures this repo's remote subsystem (see
// README "Flow control").
func (o Options) Flow() {
	pool := o.Pool
	if pool <= 0 {
		pool = 4
	}
	cfg := core.ConfigAll.WithWorkers(pool)
	total := o.RemoteQueries
	if total < 1 {
		total = 16384
	}
	qper := total / flowSessions
	if qper < 1 {
		qper = 1
	}

	section(o.Out, "Flow control: stalled-peer write bounds",
		fmt.Sprintf("%d pipelined queries from %d logical clients on one net.Pipe\nconnection whose reads stall mid-burst, pooled(%d) runtime\n(ConfigAll): the pre-flow-control writer (unbounded) vs. the\ncredit-window + byte-budget write path (flow, 8 KiB budget,\nadaptive per-channel windows). peakKiB is the server's largest\npending batch while stalled — the memory a slow peer can pin.", total, flowSessions, pool))

	tb := newTable(o.Out)
	tb.row("Mode", "time(s)", "queries/s", "peakKiB", "parked", "creditStalls")
	var gateRows []gateRow
	for _, mode := range flowModes {
		var ds []time.Duration
		var peaks []remote.ServerStats
		var muxs []remote.MuxStats
		for r := 0; r < o.Reps || r == 0; r++ {
			d, peak, ms, err := flowRun(cfg, mode, qper)
			if err != nil {
				panic(err)
			}
			ds = append(ds, d)
			peaks = append(peaks, peak)
			muxs = append(muxs, ms)
		}
		med := median(ds)
		// One extra instrumented rep yields the stall-duration and
		// flush-size percentiles for the JSON row.
		pct := obsPercentiles(func() {
			if _, _, _, err := flowRun(cfg, mode, qper); err != nil {
				panic(err)
			}
		}, "remote.credit_wait_ns", "remote.writer_stall_ns", "remote.flush_bytes")
		// The peak batch of the median-time rep would be arbitrary;
		// report the worst observed peak — boundedness is a max claim.
		var peak remote.ServerStats
		var ms muxMax
		for i := range peaks {
			if peaks[i].MaxBatchBytes > peak.MaxBatchBytes {
				peak = peaks[i]
			}
			ms.fold(muxs[i])
		}
		qps := float64(qper*flowSessions) / med.Seconds()
		if mode.name == "flow" {
			// median sorted ds in place, so ds[0] is the fastest rep —
			// the gate's lower-bound throughput claim.
			m := mode
			gateRows = append(gateRows, gateRow{
				label: m.name,
				want:  map[string]string{"mode": m.name},
				best:  float64(qper*flowSessions) / ds[0].Seconds(),
				again: func() float64 {
					d, _, _, err := flowRun(cfg, m, qper)
					if err != nil {
						panic(err)
					}
					return float64(qper*flowSessions) / d.Seconds()
				},
			})
		}
		tb.row(mode.name, Seconds(med), fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.1f", float64(peak.MaxBatchBytes)/1024),
			strconv.FormatUint(peak.MaxParkedFrames, 10),
			strconv.FormatUint(ms.CreditStalls, 10))
		o.Rec.Add(Result{
			Experiment: "flow",
			Labels: map[string]string{
				"mode":   mode.name,
				"config": cfg.Name(),
			},
			Medians: mergeMedians(map[string]float64{
				"seconds":            med.Seconds(),
				"queries_per_second": qps,
				"peak_batch_bytes":   float64(peak.MaxBatchBytes),
				"peak_parked_frames": float64(peak.MaxParkedFrames),
				"credit_stalls":      float64(ms.CreditStalls),
				"writer_stalls":      float64(ms.WriterStalls),
				"dropped_frames":     float64(peak.Dropped),
			}, pct),
		})
	}
	tb.flush()
	o.throughputGate("flow", total == 16384, gateRows)
}

// muxMax folds client-side MuxStats across repetitions (max of the
// stall counters — like the peaks, boundedness claims are max claims).
type muxMax struct {
	CreditStalls uint64
	WriterStalls uint64
}

func (m *muxMax) fold(s remote.MuxStats) {
	if s.CreditStalls > m.CreditStalls {
		m.CreditStalls = s.CreditStalls
	}
	if s.WriterStalls > m.WriterStalls {
		m.WriterStalls = s.WriterStalls
	}
}
