package harness

import (
	"runtime"

	"scoopqs/internal/core"
	"scoopqs/internal/cowichan"
	"scoopqs/internal/cowichan/actorimpl"
	"scoopqs/internal/cowichan/goimpl"
	"scoopqs/internal/cowichan/pureimpl"
	"scoopqs/internal/cowichan/qsimpl"
	"scoopqs/internal/cowichan/tbbimpl"
)

// CowTasks lists the parallel tasks in the paper's presentation order.
var CowTasks = []string{"chain", "outer", "product", "randmat", "thresh", "winnow"}

// CowLangs lists the compared paradigms for the parallel tasks.
var CowLangs = []string{"cxx", "erlang", "go", "haskell", "Qs"}

// NewImpl builds the named paradigm's Cowichan implementation. The Qs
// paradigm uses cfg; others ignore it.
func NewImpl(lang string, cfg core.Config, workers int) cowichan.Impl {
	switch lang {
	case "seq":
		return cowichan.NewSeq()
	case "cxx":
		return tbbimpl.New(workers)
	case "go":
		return goimpl.New(workers)
	case "haskell":
		return pureimpl.New(workers)
	case "erlang":
		return actorimpl.New(workers)
	case "Qs":
		return qsimpl.New(cfg, workers)
	}
	panic("harness: unknown paradigm " + lang)
}

// taskInputs precomputes each kernel's input with the sequential
// reference so a task measurement times only that kernel (the paper
// benchmarks the kernels individually plus the full chain).
type taskInputs struct {
	p    cowichan.Params
	mat  *cowichan.Matrix
	mask *cowichan.Mask
	pts  []cowichan.Point
	om   *cowichan.FMatrix
	vec  cowichan.Vector
}

func prepareInputs(p cowichan.Params) *taskInputs {
	seq := cowichan.NewSeq()
	in := &taskInputs{p: p}
	in.mat, _ = seq.Randmat(p)
	in.mask, _ = seq.Thresh(in.mat, p.P)
	in.pts, _ = seq.Winnow(in.mat, in.mask, p.NW)
	in.om, in.vec, _ = seq.Outer(in.pts)
	return in
}

// RunCowTask executes one named task on an implementation and returns
// its timing.
func RunCowTask(task string, im cowichan.Impl, in *taskInputs) cowichan.Timing {
	switch task {
	case "randmat":
		_, t := im.Randmat(in.p)
		return t
	case "thresh":
		_, t := im.Thresh(in.mat, in.p.P)
		return t
	case "winnow":
		_, t := im.Winnow(in.mat, in.mask, in.p.NW)
		return t
	case "outer":
		_, _, t := im.Outer(in.pts)
		return t
	case "product":
		_, t := im.Product(in.om, in.vec)
		return t
	case "chain":
		return cowichan.Chain(im, in.p).Timing
	}
	panic("harness: unknown task " + task)
}

// physicalCPUs reports the host's CPU count, noted in Fig. 19's caption
// because speedup curves flatten when workers exceed physical cores.
func physicalCPUs() int { return runtime.NumCPU() }

// withProcs runs f with GOMAXPROCS set to n, restoring it afterwards.
// On a machine with fewer physical cores than n this exercises the
// same code paths without real parallel speedup.
func withProcs(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}
