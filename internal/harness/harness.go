// Package harness runs the paper's experiments and renders their
// tables and figures as text. Each experiment function regenerates one
// table or figure of the evaluation section (see DESIGN.md's
// per-experiment index); cmd/qsbench is the command-line driver.
package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"scoopqs/internal/concbench"
	"scoopqs/internal/core"
	"scoopqs/internal/cowichan"
)

// Options configure an experiment run.
type Options struct {
	// Out receives the rendered tables.
	Out io.Writer
	// Reps is the number of repetitions per measurement; the median is
	// reported.
	Reps int
	// Workers is the worker/handler count for parallel kernels at full
	// width.
	Workers int
	// Pool is the Qs executor pool size: 0 runs handlers on dedicated
	// goroutines (the paper's runtime), N > 0 multiplexes them onto N
	// pool workers (core.Config.Workers).
	Pool int
	// Configs restricts the optimization-sweep experiments (Table 1/2,
	// Fig. 16/17, Summary) to these columns; nil means the paper's
	// five.
	Configs []core.Config
	// Cores is the thread-count sweep for Fig. 19 / Table 4.
	Cores []int
	// Cow are the Cowichan problem sizes.
	Cow cowichan.Params
	// Conc are the coordination benchmark sizes.
	Conc concbench.Params
	// ExecHandlers/ExecHops size the Executor experiment's ring:
	// handlers ≫ pool workers is the interesting regime.
	ExecHandlers int
	ExecHops     int
	// FutDepth/FutRounds size the Futures experiment's delegation
	// chain (depth ≫ pool workers is the interesting regime);
	// FutQueries is its remote-pipelining query count.
	FutDepth   int
	FutRounds  int
	FutQueries int
	// RemoteQueries is the total pipelined-query budget of the Remote
	// experiment, split evenly across the logical-client sweep.
	RemoteQueries int
	// Rec, when non-nil, collects machine-readable Results alongside
	// the text tables (qsbench -json).
	Rec *Recorder
	// Baseline is the prior BENCH_*.json trajectory file the Obs
	// experiment gates its disabled-tracer overhead against.
	Baseline string
	// FlowBaseline is the prior BENCH_*.json trajectory file the Flow
	// and Remote experiments gate their throughput against (<=5%
	// regression on a comparable host).
	FlowBaseline string
	// Seed drives every deterministic randomized component (the chaos
	// experiment's fault injection, the bank workload mix); it is
	// recorded in -json metadata so a failing run replays exactly.
	Seed int64
	// BankAccounts/BankShards/BankSessions/BankOps/BankInflight size
	// the Bank experiment: total accounts, shard handlers owning them,
	// mux sessions driving the mixed workload, total operations, and
	// the per-session in-flight read bound.
	BankAccounts int
	BankShards   int
	BankSessions int
	BankOps      int
	BankInflight int
}

// Defaults returns laptop-scale options writing to w.
func Defaults(w io.Writer) Options {
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	cores := []int{1, 2, 4}
	if workers > 4 {
		cores = append(cores, workers)
	}
	return Options{
		Out:           w,
		Reps:          3,
		Workers:       workers,
		Cores:         cores,
		Cow:           cowichan.SmallParams(),
		Conc:          concbench.SmallParams(),
		ExecHandlers:  10000,
		ExecHops:      100000,
		FutDepth:      32,
		FutRounds:     50,
		FutQueries:    5000,
		RemoteQueries: 16384,
		Seed:          1,
		BankAccounts:  1 << 20,
		BankShards:    64,
		BankSessions:  256,
		BankOps:       1 << 18,
		BankInflight:  32,
	}
}

// median returns the median of ds (ds is sorted in place).
func median(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// MeasureTiming runs f Reps times and returns the run with the median
// total time.
func (o Options) MeasureTiming(f func() cowichan.Timing) cowichan.Timing {
	reps := o.Reps
	if reps < 1 {
		reps = 1
	}
	ts := make([]cowichan.Timing, reps)
	totals := make([]time.Duration, reps)
	for i := range ts {
		ts[i] = f()
		totals[i] = ts[i].Total()
	}
	med := median(append([]time.Duration(nil), totals...))
	for i := range ts {
		if ts[i].Total() == med {
			return ts[i]
		}
	}
	return ts[0]
}

// MeasureWall times f (median of Reps runs).
func (o Options) MeasureWall(f func()) time.Duration {
	reps := o.Reps
	if reps < 1 {
		reps = 1
	}
	ds := make([]time.Duration, reps)
	for i := range ds {
		start := time.Now()
		f()
		ds[i] = time.Since(start)
	}
	return median(ds)
}

// GeoMean returns the geometric mean of strictly positive durations
// (zero values are clamped to 1µs so a fast machine cannot produce a
// degenerate mean).
func GeoMean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range ds {
		s := d.Seconds()
		if s <= 0 {
			s = 1e-6
		}
		sum += math.Log(s)
	}
	return time.Duration(math.Exp(sum/float64(len(ds))) * float64(time.Second))
}

// Seconds renders a duration as seconds with three decimals.
func Seconds(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// Ratio renders v/base with two decimals; base 0 renders "-".
func Ratio(v, base time.Duration) string {
	if base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(v)/float64(base))
}

// table is a minimal text-table builder on tabwriter.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer) *table {
	return &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() } //nolint:errcheck // terminal output

// section prints an experiment header.
func section(w io.Writer, title, caption string) {
	fmt.Fprintf(w, "\n== %s ==\n%s\n\n", title, caption)
}
