package harness

import (
	"fmt"
	"runtime"
	"time"

	"scoopqs/internal/concbench"
	"scoopqs/internal/core"
	"scoopqs/internal/cowichan"
)

// ConfigNames lists the optimization columns in the paper's order.
var ConfigNames = []string{"None", "Dyn.", "Static", "QoQ", "All"}

// configsInOrder returns the five configurations in column order.
func configsInOrder() []core.Config {
	return []core.Config{
		core.ConfigNone, core.ConfigDynamic, core.ConfigStatic,
		core.ConfigQoQ, core.ConfigAll,
	}
}

// configs returns the optimization columns of this run — Options.
// Configs if set, else the paper's five — each carrying the selected
// executor pool size.
func (o Options) configs() []core.Config {
	base := o.Configs
	if base == nil {
		base = configsInOrder()
	}
	out := make([]core.Config, len(base))
	for i, c := range base {
		out[i] = c.WithWorkers(o.Pool)
	}
	return out
}

// configNames returns the column headers matching configs().
func (o Options) configNames() []string {
	if o.Configs == nil && o.Pool == 0 {
		return ConfigNames
	}
	names := make([]string, 0, len(o.configs()))
	for _, c := range o.configs() {
		names = append(names, c.Name())
	}
	return names
}

// qsCfg is the configuration the cross-paradigm experiments run the Qs
// implementation under: everything on, pool size per Options.
func (o Options) qsCfg() core.Config { return core.ConfigAll.WithWorkers(o.Pool) }

// commTimesByConfig measures the communication time of every parallel
// task under every configuration (the data behind Table 1 and Fig. 16).
func (o Options) commTimesByConfig() map[string][]time.Duration {
	in := prepareInputs(o.Cow)
	out := make(map[string][]time.Duration, len(CowTasks))
	for _, task := range CowTasks {
		times := make([]time.Duration, 0, 5)
		for _, cfg := range o.configs() {
			im := NewImpl("Qs", cfg, o.Workers)
			t := o.MeasureTiming(func() cowichan.Timing { return RunCowTask(task, im, in) })
			im.Close()
			comm := t.Comm
			if comm <= 0 {
				comm = time.Microsecond
			}
			times = append(times, comm)
		}
		out[task] = times
	}
	return out
}

// Table1 regenerates "Normalized (to fastest) comparison of
// optimizations on parallel tasks".
func (o Options) Table1() {
	section(o.Out, "Table 1",
		"Communication time on parallel tasks, normalized to the fastest\noptimization configuration per task (paper: Table 1).")
	data := o.commTimesByConfig()
	tb := newTable(o.Out)
	tb.row(append([]string{"Task"}, o.configNames()...)...)
	for _, task := range CowTasks {
		times := data[task]
		best := times[0]
		for _, d := range times[1:] {
			if d < best {
				best = d
			}
		}
		cells := []string{task}
		for _, d := range times {
			cells = append(cells, Ratio(d, best))
		}
		tb.row(cells...)
	}
	tb.flush()
}

// Fig16 regenerates "Communication times for different optimization
// techniques evaluated on parallel tasks" (same data as Table 1,
// absolute values; the paper plots them on a log scale).
func (o Options) Fig16() {
	section(o.Out, "Figure 16",
		"Communication time (seconds) of each optimization configuration on\nthe parallel tasks (paper: Fig. 16; log-scale bars of this data).")
	data := o.commTimesByConfig()
	tb := newTable(o.Out)
	tb.row(append([]string{"Task"}, o.configNames()...)...)
	for _, task := range CowTasks {
		cells := []string{task}
		for _, d := range data[task] {
			cells = append(cells, Seconds(d))
		}
		tb.row(cells...)
	}
	tb.flush()
}

// concTimesByConfig measures every coordination benchmark under every
// configuration (the data behind Table 2 and Fig. 17).
func (o Options) concTimesByConfig() map[string][]time.Duration {
	out := make(map[string][]time.Duration, len(concbench.Names))
	for _, bench := range concbench.Names {
		times := make([]time.Duration, 0, 5)
		for _, cfg := range o.configs() {
			cfg := cfg
			bench := bench
			d := o.MeasureWall(func() {
				if err := concbench.Run(bench, "Qs", cfg, o.Conc); err != nil {
					panic(err)
				}
			})
			times = append(times, d)
		}
		out[bench] = times
	}
	return out
}

// Table2 regenerates "Times (in seconds) for optimizations applied on
// concurrent benchmarks".
func (o Options) Table2() {
	section(o.Out, "Table 2",
		"Coordination benchmarks under each optimization configuration,\nseconds (paper: Table 2).")
	data := o.concTimesByConfig()
	tb := newTable(o.Out)
	tb.row(append([]string{"Task"}, o.configNames()...)...)
	for _, bench := range concbench.Names {
		cells := []string{bench}
		for _, d := range data[bench] {
			cells = append(cells, Seconds(d))
		}
		tb.row(cells...)
	}
	tb.flush()
}

// Fig17 regenerates the bar-chart view of Table 2.
func (o Options) Fig17() {
	section(o.Out, "Figure 17",
		"Same data as Table 2 (the paper renders it as bars); additionally\nnormalized per benchmark to the fastest configuration.")
	data := o.concTimesByConfig()
	tb := newTable(o.Out)
	tb.row(append([]string{"Task"}, o.configNames()...)...)
	for _, bench := range concbench.Names {
		times := data[bench]
		best := times[0]
		for _, d := range times[1:] {
			if d < best {
				best = d
			}
		}
		cells := []string{bench}
		for _, d := range times {
			cells = append(cells, fmt.Sprintf("%s (%sx)", Seconds(d), Ratio(d, best)))
		}
		tb.row(cells...)
	}
	tb.flush()
}

// Table3 prints the static language-characteristics table.
func (o Options) Table3() {
	section(o.Out, "Table 3",
		"Language characteristics (static; paper: Table 3). The repo's\nstand-ins implement the same coordination mechanics in Go.")
	tb := newTable(o.Out)
	tb.row("Language", "Races", "Threads", "Paradigm", "Memory", "Approach", "Stand-in")
	tb.row("C++/TBB", "possible", "OS", "Imperative", "Shared", "Skeletons/traditional", "internal/sched fork-join skeletons")
	tb.row("Go", "possible", "light", "Imperative", "Shared", "Goroutines/channels", "native goroutines+channels")
	tb.row("Haskell", "none", "light", "Functional", "STM", "STM/Repa", "internal/stm + chunk-and-concat")
	tb.row("Erlang", "none", "light", "Functional", "Non-shared", "Actors", "internal/actor deep-copy messages")
	tb.row("SCOOP/Qs", "none", "light", "O-O", "Non-shared", "Active Objects", "internal/core (this repo's subject)")
	tb.flush()
}

// parallelByLang measures total and compute time for every parallel
// task and paradigm at full worker width (the data behind Fig. 18).
func (o Options) parallelByLang() map[string]map[string]cowichan.Timing {
	in := prepareInputs(o.Cow)
	out := map[string]map[string]cowichan.Timing{}
	for _, lang := range CowLangs {
		out[lang] = map[string]cowichan.Timing{}
		im := NewImpl(lang, o.qsCfg(), o.Workers)
		for _, task := range CowTasks {
			out[lang][task] = o.MeasureTiming(func() cowichan.Timing { return RunCowTask(task, im, in) })
		}
		im.Close()
	}
	return out
}

// Fig18 regenerates "Execution times of parallel tasks on different
// languages", split into computation and communication time.
func (o Options) Fig18() {
	section(o.Out, "Figure 18",
		fmt.Sprintf("Parallel task times by paradigm at %d workers: total seconds with\nthe communication share in parentheses (paper: Fig. 18).", o.Workers))
	data := o.parallelByLang()
	tb := newTable(o.Out)
	tb.row(append([]string{"Task"}, CowLangs...)...)
	for _, task := range CowTasks {
		cells := []string{task}
		for _, lang := range CowLangs {
			t := data[lang][task]
			cells = append(cells, fmt.Sprintf("%s (comm %s)", Seconds(t.Total()), Seconds(t.Comm)))
		}
		tb.row(cells...)
	}
	tb.flush()
}

// sweepByCores measures every task and paradigm across the Cores sweep
// (the data behind Fig. 19 and Table 4).
func (o Options) sweepByCores() map[string]map[string][]cowichan.Timing {
	in := prepareInputs(o.Cow)
	out := map[string]map[string][]cowichan.Timing{}
	for _, lang := range CowLangs {
		out[lang] = map[string][]cowichan.Timing{}
		for _, n := range o.Cores {
			n := n
			var im cowichan.Impl
			withProcs(n, func() {
				im = NewImpl(lang, o.qsCfg(), n)
				for _, task := range CowTasks {
					t := o.MeasureTiming(func() cowichan.Timing { return RunCowTask(task, im, in) })
					out[lang][task] = append(out[lang][task], t)
				}
				im.Close()
			})
		}
	}
	return out
}

// Fig19 regenerates "Speedup over single-core performance".
func (o Options) Fig19() {
	section(o.Out, "Figure 19",
		fmt.Sprintf("Speedup over the 1-worker run, sweep %v (paper: Fig. 19, 1..32\ncores). NOTE: physical cores on this host = %d; with fewer physical\ncores than workers the curves flatten by construction.",
			o.Cores, physicalCPUs()))
	data := o.sweepByCores()
	tb := newTable(o.Out)
	header := []string{"Task", "Lang"}
	for _, n := range o.Cores {
		header = append(header, fmt.Sprintf("w=%d", n))
	}
	tb.row(header...)
	for _, task := range CowTasks {
		for _, lang := range CowLangs {
			ts := data[lang][task]
			base := ts[0].Total()
			cells := []string{task, lang}
			for _, t := range ts {
				cells = append(cells, Ratio(base, t.Total()))
			}
			tb.row(cells...)
		}
	}
	tb.flush()
}

// Table4 regenerates "Parallel benchmark times", total (T) and
// compute-only (C) rows per paradigm and thread count.
func (o Options) Table4() {
	section(o.Out, "Table 4",
		fmt.Sprintf("Parallel task times (seconds) per worker count %v. V column: T =\ntotal, C = compute-only (paper: Table 4, which reports C only for\nerlang and Qs; we report it for every paradigm that measures it).", o.Cores))
	data := o.sweepByCores()
	tb := newTable(o.Out)
	header := []string{"Task", "Lang", "V"}
	for _, n := range o.Cores {
		header = append(header, fmt.Sprintf("w=%d", n))
	}
	tb.row(header...)
	for _, task := range CowTasks {
		for _, lang := range CowLangs {
			ts := data[lang][task]
			cells := []string{task, lang, "T"}
			for _, t := range ts {
				cells = append(cells, Seconds(t.Total()))
			}
			tb.row(cells...)
			if hasCommSplit(lang) {
				cells = []string{task, lang, "C"}
				for _, t := range ts {
					cells = append(cells, Seconds(t.Compute))
				}
				tb.row(cells...)
			}
		}
	}
	tb.flush()
}

// hasCommSplit reports whether a paradigm distinguishes communication
// from computation (the paper splits only erlang and Qs).
func hasCommSplit(lang string) bool { return lang == "erlang" || lang == "Qs" }

// concByLang measures every coordination benchmark under every paradigm
// (the data behind Table 5 and Fig. 20).
func (o Options) concByLang() map[string][]time.Duration {
	out := map[string][]time.Duration{}
	for _, bench := range concbench.Names {
		for _, lang := range concbench.Langs {
			bench, lang := bench, lang
			d := o.MeasureWall(func() {
				if err := concbench.Run(bench, lang, o.qsCfg(), o.Conc); err != nil {
					panic(err)
				}
			})
			out[bench] = append(out[bench], d)
		}
	}
	return out
}

// Table5 regenerates "Concurrent benchmark times".
func (o Options) Table5() {
	section(o.Out, "Table 5",
		"Coordination benchmark times (seconds) by paradigm (paper: Table 5).")
	data := o.concByLang()
	tb := newTable(o.Out)
	tb.row(append([]string{"Task"}, concbench.Langs...)...)
	for _, bench := range concbench.Names {
		cells := []string{bench}
		for _, d := range data[bench] {
			cells = append(cells, Seconds(d))
		}
		tb.row(cells...)
	}
	tb.flush()
}

// Fig20 regenerates the bar-chart view of Table 5 with per-benchmark
// normalization.
func (o Options) Fig20() {
	section(o.Out, "Figure 20",
		"Same data as Table 5 (the paper renders it as bars); normalized per\nbenchmark to the fastest paradigm.")
	data := o.concByLang()
	tb := newTable(o.Out)
	tb.row(append([]string{"Task"}, concbench.Langs...)...)
	for _, bench := range concbench.Names {
		times := data[bench]
		best := times[0]
		for _, d := range times[1:] {
			if d < best {
				best = d
			}
		}
		cells := []string{bench}
		for _, d := range times {
			cells = append(cells, fmt.Sprintf("%s (%sx)", Seconds(d), Ratio(d, best)))
		}
		tb.row(cells...)
	}
	tb.flush()
}

// Summary regenerates the geometric-mean summaries of §4.4 and §5.4.
func (o Options) Summary() {
	section(o.Out, "Summary (geometric means)",
		"§4.4: optimization configs over all 11 benchmarks. §5: paradigms\nover parallel (total and compute-only), concurrent, and all tasks.")

	// Optimization configurations: parallel comm + concurrent wall.
	comm := o.commTimesByConfig()
	conc := o.concTimesByConfig()
	tb := newTable(o.Out)
	// The baseline is the last configured column (All in a full sweep;
	// whatever -config selected otherwise), so label it accordingly.
	names := o.configNames()
	tb.row("Config", "geomean(s)", "vs "+names[len(names)-1])
	var allMeans []time.Duration
	for ci, name := range names {
		var ds []time.Duration
		for _, task := range CowTasks {
			ds = append(ds, comm[task][ci])
		}
		for _, bench := range concbench.Names {
			ds = append(ds, conc[bench][ci])
		}
		allMeans = append(allMeans, GeoMean(ds))
		_ = name
	}
	for ci, name := range names {
		tb.row(name, Seconds(allMeans[ci]), Ratio(allMeans[ci], allMeans[len(allMeans)-1]))
	}
	tb.flush()
	fmt.Fprintf(o.Out, "\nPaper's §4.4 geomeans: None 20.70s, Dyn 1.99s, Static 2.24s, QoQ 16.21s, All 1.36s (~15x None/All).\n")

	// Paradigms.
	par := o.parallelByLang()
	concL := o.concByLang()
	tb = newTable(o.Out)
	tb.row("Lang", "parallel T", "parallel C", "concurrent", "overall")
	for li, lang := range CowLangs {
		var pt, pc, ct, all []time.Duration
		for _, task := range CowTasks {
			t := par[lang][task]
			pt = append(pt, t.Total())
			pc = append(pc, t.Compute)
			all = append(all, t.Total())
		}
		for _, bench := range concbench.Names {
			d := concL[bench][li]
			ct = append(ct, d)
			all = append(all, d)
		}
		tb.row(lang, Seconds(GeoMean(pt)), Seconds(GeoMean(pc)), Seconds(GeoMean(ct)), Seconds(GeoMean(all)))
	}
	tb.flush()
	fmt.Fprintf(o.Out, "\nPaper's §5.4 overall geomeans: cxx 0.71s, go 1.02s, Qs 1.61s, haskell 3.30s, erlang 9.51s.\n")
}

// ringOnce runs a threadring-style hop chain over `handlers` handlers
// under cfg and returns the wall time plus the runtime's counters. The
// ring has far more handlers than cores, the regime where dedicated
// goroutines pay for parked consumers and the M:N executor does not.
func ringOnce(cfg core.Config, handlers, hops int) (time.Duration, core.Stats) {
	rt := core.New(cfg)
	hs := make([]*core.Handler, handlers)
	tokens := make([]int, handlers) // tokens[i] owned by hs[i]
	for i := range hs {
		hs[i] = rt.NewHandler("ring")
	}
	done := make(chan struct{})
	var pass func(i, v int)
	pass = func(i, v int) {
		if v == 0 {
			close(done)
			return
		}
		next := (i + 1) % handlers
		hs[i].AsClient().Separate(hs[next], func(s *core.Session) {
			s.Call(func() { tokens[next] = v - 1 })
			if got := core.Query(s, func() int { return tokens[next] }); got != v-1 {
				panic("harness: ring token confirmation mismatch")
			}
			s.Call(func() { pass(next, v-1) })
		})
	}
	start := time.Now()
	c := rt.NewClient()
	c.Separate(hs[0], func(s *core.Session) {
		s.Call(func() { pass(0, hops) })
	})
	<-done
	d := time.Since(start)
	rt.Shutdown()
	return d, rt.Stats()
}

// Executor compares dedicated-goroutine and pooled (M:N) handler
// execution on a token ring with handlers ≫ workers, reporting the
// executor's scheduling counters alongside wall time. This experiment
// has no counterpart in the paper; it measures this repo's worker-pool
// extension (see README "Executor model").
func (o Options) Executor() {
	handlers, hops := o.ExecHandlers, o.ExecHops
	if handlers < 2 {
		handlers = 2
	}
	if hops < 1 {
		hops = handlers
	}
	pool := o.Pool
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	section(o.Out, "Executor",
		fmt.Sprintf("Token ring over %d handlers, %d hops (ConfigAll): dedicated\ngoroutine-per-handler vs. M:N pool of %d workers, with scheduler\ncounters. Not a paper experiment; measures the executor layer.", handlers, hops, pool))
	modes := []struct {
		label string
		cfg   core.Config
	}{
		{"dedicated", core.ConfigAll},
		{fmt.Sprintf("pooled(%d)", pool), core.ConfigAll.WithWorkers(pool)},
	}
	tb := newTable(o.Out)
	tb.row("Mode", "time(s)", "hops/ms", "schedules", "handler-parks", "worker-spawns", "worker-parks")
	for _, m := range modes {
		var runs []timedStats
		for r := 0; r < o.Reps || r == 0; r++ {
			dd, s := ringOnce(m.cfg, handlers, hops)
			runs = append(runs, timedStats{dd, s})
		}
		mid := medianRun(runs)
		d, st := mid.d, mid.st
		tb.row(m.label, Seconds(d),
			fmt.Sprintf("%.0f", float64(hops)/(float64(d.Nanoseconds())/1e6)),
			fmt.Sprintf("%d", st.Schedules),
			fmt.Sprintf("%d", st.HandlerParks),
			fmt.Sprintf("%d", st.WorkerSpawns),
			fmt.Sprintf("%d", st.WorkerParks))
		o.Rec.Add(Result{
			Experiment: "executor",
			Labels:     map[string]string{"mode": m.label, "config": m.cfg.Name()},
			Medians: map[string]float64{
				"seconds": d.Seconds(),
				"hops_per_ms": float64(hops) /
					(float64(d.Nanoseconds()) / 1e6),
			},
			Counters: map[string]int64{
				"schedules":       st.Schedules,
				"handler_parks":   st.HandlerParks,
				"worker_spawns":   st.WorkerSpawns,
				"worker_parks":    st.WorkerParks,
				"steals":          st.Steals,
				"local_pushes":    st.LocalPushes,
				"injector_pushes": st.InjectorPushes,
			},
		})
	}
	tb.flush()
}
