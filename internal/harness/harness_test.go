package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"scoopqs/internal/concbench"
	"scoopqs/internal/core"
	"scoopqs/internal/cowichan"
)

// tinyOptions shrink every experiment so the whole suite runs in
// seconds inside the test.
func tinyOptions(buf *bytes.Buffer) Options {
	return Options{
		Out:     buf,
		Reps:    1,
		Workers: 2,
		Cores:   []int{1, 2},
		Cow:     cowichan.Params{NR: 40, P: 25, NW: 40, Seed: 5},
		Conc:    concbench.Params{N: 2, M: 25, NT: 200, NC: 80, Ring: 8, Creatures: 4},
	}
}

// TestAllExperimentsRender runs every experiment end to end and checks
// each emits its header and at least one data row.
func TestAllExperimentsRender(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	cases := []struct {
		name string
		run  func()
		want []string
	}{
		{"Table1", o.Table1, []string{"== Table 1 ==", "randmat", "chain"}},
		{"Fig16", o.Fig16, []string{"== Figure 16 ==", "winnow"}},
		{"Table2", o.Table2, []string{"== Table 2 ==", "mutex", "threadring"}},
		{"Fig17", o.Fig17, []string{"== Figure 17 ==", "condition"}},
		{"Table3", o.Table3, []string{"== Table 3 ==", "SCOOP/Qs", "Erlang"}},
		{"Fig18", o.Fig18, []string{"== Figure 18 ==", "product", "comm"}},
		{"Fig19", o.Fig19, []string{"== Figure 19 ==", "w=1", "w=2"}},
		{"Table4", o.Table4, []string{"== Table 4 ==", "chain", "T"}},
		{"Table5", o.Table5, []string{"== Table 5 ==", "prodcons"}},
		{"Fig20", o.Fig20, []string{"== Figure 20 ==", "chameneos"}},
		{"Executor", o.Executor, []string{"== Executor ==", "dedicated", "pooled", "schedules"}},
		{"Summary", o.Summary, []string{"geometric means", "geomean", "overall"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			buf.Reset()
			c.run()
			out := buf.String()
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestRemoteExperimentRenders runs the remote sweep at a toy size: all
// three transports must render rows and the mux-vs-gob summary line
// must appear.
func TestRemoteExperimentRenders(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Pool = 2
	o.RemoteQueries = 64
	old := RemoteClients
	RemoteClients = []int{1, 4}
	defer func() { RemoteClients = old }()
	o.Remote()
	out := buf.String()
	for _, want := range []string{"== Remote", "mux", "conn", "gob", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// The Pool and Configs options must thread through to the Qs runs and
// the rendered column headers.
func TestPoolAndConfigOptions(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Pool = 2
	o.Configs = []core.Config{core.ConfigAll}
	o.Table2()
	out := buf.String()
	if !strings.Contains(out, "All+pool2") {
		t.Fatalf("header missing pooled config name:\n%s", out)
	}
	if strings.Contains(out, "None") {
		t.Fatalf("config restriction ignored:\n%s", out)
	}
}

func TestGeoMean(t *testing.T) {
	ds := []time.Duration{time.Second, 4 * time.Second}
	got := GeoMean(ds)
	if got < 1990*time.Millisecond || got > 2010*time.Millisecond {
		t.Errorf("GeoMean(1s,4s) = %v, want ~2s", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
	// Zero durations are clamped, not fatal.
	if GeoMean([]time.Duration{0, time.Second}) <= 0 {
		t.Error("GeoMean with zero input should stay positive")
	}
}

func TestMeasureWallMedian(t *testing.T) {
	o := Options{Reps: 5}
	d := o.MeasureWall(func() { time.Sleep(time.Millisecond) })
	if d < 500*time.Microsecond || d > 100*time.Millisecond {
		t.Errorf("median wall time implausible: %v", d)
	}
}

func TestRunCowTaskAllTasks(t *testing.T) {
	p := cowichan.Params{NR: 32, P: 25, NW: 32, Seed: 3}
	in := prepareInputs(p)
	im := cowichan.NewSeq()
	for _, task := range CowTasks {
		tm := RunCowTask(task, im, in)
		if tm.Total() <= 0 {
			t.Errorf("task %s reported non-positive time", task)
		}
	}
}

func TestNewImplAllLangs(t *testing.T) {
	for _, lang := range append([]string{"seq"}, CowLangs...) {
		im := NewImpl(lang, core.ConfigAll, 2)
		if im.Name() != lang {
			t.Errorf("NewImpl(%q).Name() = %q", lang, im.Name())
		}
		im.Close()
	}
	defer func() {
		if recover() == nil {
			t.Error("NewImpl with unknown paradigm should panic")
		}
	}()
	NewImpl("cobol", core.ConfigAll, 1)
}

func TestRatioAndSeconds(t *testing.T) {
	if got := Ratio(2*time.Second, time.Second); got != "2.00" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(time.Second, 0); got != "-" {
		t.Errorf("Ratio with zero base = %q", got)
	}
	if got := Seconds(1500 * time.Millisecond); got != "1.500" {
		t.Errorf("Seconds = %q", got)
	}
}
