package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Result is one machine-readable measurement row: an experiment,
// identifying labels (mode, config, workers, ...), median timings or
// rates, and runtime counters. The text tables stay the human view;
// Results are what BENCH_*.json trajectory files record.
type Result struct {
	Experiment string             `json:"experiment"`
	Labels     map[string]string  `json:"labels,omitempty"`
	Medians    map[string]float64 `json:"medians,omitempty"`
	Counters   map[string]int64   `json:"counters,omitempty"`
}

// Recorder collects Results across experiments. A nil Recorder is
// valid and records nothing, so experiments call Add unconditionally.
type Recorder struct {
	Results []Result
	// Seed is the run's -seed value, stamped into the file metadata so
	// seeded experiments (chaos) replay from the artifact alone.
	Seed int64
}

// Add appends one result row. Safe on a nil receiver.
func (r *Recorder) Add(res Result) {
	if r == nil {
		return
	}
	r.Results = append(r.Results, res)
}

// benchSchemaVersion stamps -json documents so trajectory tooling can
// tell metadata generations apart: version 2 added the schema field
// itself plus goos/goarch/host/git_sha. Bump it when benchFile's
// shape changes, and keep benchFileKeys in step.
const benchSchemaVersion = 2

// benchFile is the on-disk shape of a qsbench -json artifact. The
// metadata header identifies the run well enough to decide whether
// two trajectory files are comparable (same toolchain, same host
// shape, which commit).
type benchFile struct {
	Schema    int      `json:"schema"`
	Generated string   `json:"generated"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Host      string   `json:"host,omitempty"`
	GitSHA    string   `json:"git_sha,omitempty"`
	NumCPU    int      `json:"num_cpu"`
	GOMAXPROC int      `json:"gomaxprocs"`
	Seed      int64    `json:"seed"`
	Results   []Result `json:"results"`
}

// benchFileKeys is the canonical key set of a -json document; the
// startup self-check fails fast when the struct tags drift from it
// (the same discipline as qsbench's experiment-list drift check).
var benchFileKeys = []string{
	"schema", "generated", "go_version", "goos", "goarch", "host",
	"git_sha", "num_cpu", "gomaxprocs", "seed", "results",
}

// resultKeys is the canonical key set of one Result row.
var resultKeys = []string{"experiment", "labels", "medians", "counters"}

// SchemaSelfCheck verifies that the JSON shape benchFile and Result
// actually marshal to matches the canonical key lists — a struct-tag
// typo or an undocumented field addition fails at startup instead of
// producing trajectory files nothing downstream can diff.
func SchemaSelfCheck() error {
	probe := benchFile{
		Host:   "h",
		GitSHA: "s",
		Results: []Result{{
			Labels:   map[string]string{"k": "v"},
			Medians:  map[string]float64{"k": 1},
			Counters: map[string]int64{"k": 1},
		}},
	}
	data, err := json.Marshal(probe)
	if err != nil {
		return fmt.Errorf("bench schema self-check: %w", err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return fmt.Errorf("bench schema self-check: %w", err)
	}
	if err := matchKeys("benchFile", top, benchFileKeys); err != nil {
		return err
	}
	var rows []map[string]json.RawMessage
	if err := json.Unmarshal(top["results"], &rows); err != nil || len(rows) != 1 {
		return fmt.Errorf("bench schema self-check: results row: %v", err)
	}
	return matchKeys("Result", rows[0], resultKeys)
}

func matchKeys(what string, got map[string]json.RawMessage, want []string) error {
	for _, k := range want {
		if _, ok := got[k]; !ok {
			return fmt.Errorf("bench schema self-check: %s is missing key %q (struct tag drift)", what, k)
		}
	}
	for k := range got {
		known := false
		for _, w := range want {
			if k == w {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("bench schema self-check: %s has undocumented key %q (update the canonical key list)", what, k)
		}
	}
	return nil
}

// gitSHA returns the checkout's commit, best-effort: trajectory files
// remain valid outside a git checkout, just unattributed.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// hostName is os.Hostname, best-effort.
func hostName() string {
	h, err := os.Hostname()
	if err != nil {
		return ""
	}
	return h
}

// WriteFile renders the collected results as indented JSON at path.
func (r *Recorder) WriteFile(path string) error {
	f := benchFile{
		Schema:    benchSchemaVersion,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Host:      hostName(),
		GitSHA:    gitSHA(),
		NumCPU:    runtime.NumCPU(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		Seed:      r.Seed,
		Results:   r.Results,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
