package harness

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Result is one machine-readable measurement row: an experiment,
// identifying labels (mode, config, workers, ...), median timings or
// rates, and runtime counters. The text tables stay the human view;
// Results are what BENCH_*.json trajectory files record.
type Result struct {
	Experiment string             `json:"experiment"`
	Labels     map[string]string  `json:"labels,omitempty"`
	Medians    map[string]float64 `json:"medians,omitempty"`
	Counters   map[string]int64   `json:"counters,omitempty"`
}

// Recorder collects Results across experiments. A nil Recorder is
// valid and records nothing, so experiments call Add unconditionally.
type Recorder struct {
	Results []Result
}

// Add appends one result row. Safe on a nil receiver.
func (r *Recorder) Add(res Result) {
	if r == nil {
		return
	}
	r.Results = append(r.Results, res)
}

// benchFile is the on-disk shape of a qsbench -json artifact.
type benchFile struct {
	Generated string   `json:"generated"`
	GoVersion string   `json:"go_version"`
	NumCPU    int      `json:"num_cpu"`
	GOMAXPROC int      `json:"gomaxprocs"`
	Results   []Result `json:"results"`
}

// WriteFile renders the collected results as indented JSON at path.
func (r *Recorder) WriteFile(path string) error {
	f := benchFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		Results:   r.Results,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
