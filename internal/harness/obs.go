package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/obs"
)

// obsOverheadGate is the disabled-tracer overhead budget: with
// recording off, the instrumented threadring must stay within 3% of
// the pre-instrumentation baseline row measured on the same host.
const obsOverheadGate = 0.03

// obsPercentiles runs f once with recording enabled and extracts
// p50/p90/p99/max from the named histograms, keyed for a Result's
// Medians map ("p50_dispatch_wait_ns", ...). The default registry is
// reset first so the percentiles cover exactly this run; the trace
// rings are left alone so a -trace export accumulates events across
// the whole qsbench run.
func obsPercentiles(f func(), hists ...string) map[string]float64 {
	was := obs.Enabled()
	obs.Default().Reset()
	obs.Enable()
	f()
	if !was {
		obs.Disable()
	}
	out := make(map[string]float64)
	for _, name := range hists {
		s := obs.Default().Hist(name).Snapshot()
		if s.Count == 0 {
			continue
		}
		base := name
		if i := strings.IndexByte(base, '.'); i >= 0 {
			base = base[i+1:]
		}
		out["p50_"+base] = float64(s.P50())
		out["p90_"+base] = float64(s.P90())
		out["p99_"+base] = float64(s.P99())
		out["max_"+base] = float64(s.Max)
	}
	return out
}

// mergeMedians folds src into dst (dst allocated when nil) so
// experiments can append percentile columns to an existing row.
func mergeMedians(dst, src map[string]float64) map[string]float64 {
	if dst == nil {
		dst = make(map[string]float64, len(src))
	}
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// benchBaseline is a parsed prior BENCH_*.json plus whether its host
// is comparable to this process (same Go version and CPU count — the
// two facts every trajectory file has recorded since PR 3).
type benchBaseline struct {
	file       benchFile
	path       string
	comparable bool
}

// readBenchBaseline loads a trajectory file; nil when the path is
// empty, missing, or unparsable (the gate is then skipped, loudly).
func readBenchBaseline(path string) *benchBaseline {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var f benchFile
	if json.Unmarshal(data, &f) != nil {
		return nil
	}
	return &benchBaseline{
		file:       f,
		path:       path,
		comparable: f.GoVersion == runtime.Version() && f.NumCPU == runtime.NumCPU(),
	}
}

// stealSeconds returns the baseline's steal-experiment median for a
// workload at a worker count.
func (b *benchBaseline) stealSeconds(workload string, workers int) (float64, bool) {
	if b == nil {
		return 0, false
	}
	for _, r := range b.file.Results {
		if r.Experiment == "steal" &&
			r.Labels["workload"] == workload &&
			r.Labels["workers"] == strconv.Itoa(workers) {
			if s, ok := r.Medians["seconds"]; ok && s > 0 {
				return s, true
			}
		}
	}
	return 0, false
}

// obsRef is one baseline reference for the overhead gate: the
// recorded off-mode floor and, when the baseline carries one, the
// host-speed calibration it was measured under.
type obsRef struct {
	seconds float64
	calib   float64 // 0 when the baseline predates calibration
}

// obsOffRef prefers the baseline's own obs off-mode rows (min_seconds
// plus calibration, recorded by this experiment since PR 7); files
// that predate the experiment fall back to the steal threadring
// median, uncalibrated.
func (b *benchBaseline) obsOffRef(workers int) (obsRef, bool) {
	if b == nil {
		return obsRef{}, false
	}
	for _, r := range b.file.Results {
		if r.Experiment == "obs" &&
			r.Labels["mode"] == "off" &&
			r.Labels["workload"] == "threadring" &&
			r.Labels["workers"] == strconv.Itoa(workers) {
			if s, ok := r.Medians["min_seconds"]; ok && s > 0 {
				return obsRef{seconds: s, calib: r.Medians["calib_seconds"]}, true
			}
		}
	}
	if s, ok := b.stealSeconds("threadring", workers); ok {
		return obsRef{seconds: s}, true
	}
	return obsRef{}, false
}

// calibSpin measures a fixed pure-arithmetic workload (best of five):
// a host-speed reference that moves with era drift — neighbor load,
// frequency scaling, a different machine — but not with changes to
// the scheduler or the instrumentation. The gate normalizes the
// off/baseline comparison by it when the baseline recorded one,
// because months-apart wall clocks on shared hosts differ by more
// than the 3% budget even for identical binaries.
func calibSpin() time.Duration {
	best := time.Duration(math.MaxInt64)
	for rep := 0; rep < 5; rep++ {
		x := uint64(88172645463325252)
		start := time.Now()
		for i := 0; i < 1<<24; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		d := time.Since(start)
		if x == 0 {
			panic("harness: xorshift cycle collapsed")
		}
		if d < best {
			best = d
		}
	}
	return best
}

// Obs measures the tracer's own overhead on the steal experiment's
// threadring (the dispatch-heaviest workload in the suite), in two
// runtime modes — off-but-compiled (recording disabled: the hot paths
// pay one predictable branch each) and on (rings + histograms
// recording) — against the baseline rows of a prior trajectory file
// (-baseline). The off mode asserts that nothing recorded (zero
// events, observations, and counter increments), and when the
// baseline was measured on a comparable host with the default
// workload sizes, enforces the 3% disabled-path budget on the
// off/baseline geometric mean, normalized by the calibration spin
// when the baseline recorded one (pre-PR7 files did not; against
// those the comparison is raw wall clock and correspondingly
// noisier). Violation panics, so CI can gate on the exit code. Not a
// paper experiment; it measures this repo's observability layer (see
// README "Observability").
func (o Options) Obs() {
	handlers := o.ExecHandlers / 10
	if handlers < 2 {
		handlers = 2
	}
	hops := o.ExecHops / 5
	if hops < 1 {
		hops = handlers
	}

	baseline := readBenchBaseline(o.Baseline)
	// The baseline rows are only meaningful for the default workload
	// sizes the trajectory files were recorded with.
	defaultSizes := o.ExecHandlers == 10000 && o.ExecHops == 100000
	gateArmed := baseline != nil && baseline.comparable && defaultSizes

	section(o.Out, "Obs: tracer overhead",
		fmt.Sprintf("Threadring (%d handlers x %d hops, ConfigAll) with the tracer\noff-but-compiled vs. recording (rings + histograms), against the\nuninstrumented baseline medians from %q. The off path must stay\nwithin %.0f%% of the baseline on a comparable host; off mode also\nasserts zero events/observations recorded.",
			handlers, hops, o.Baseline, obsOverheadGate*100))

	// The experiment drives the enable flag itself; restore whatever
	// the caller (a -trace run) had set.
	was := obs.Enabled()
	defer func() {
		if was {
			obs.Enable()
		} else {
			obs.Disable()
		}
	}()

	countersSum := func() int64 {
		var n int64
		for _, v := range obs.Default().Counters() {
			n += v
		}
		return n
	}

	type cell struct {
		med, min      time.Duration
		events, obsvd int64
	}
	modes := []string{"off", "on"}
	cells := map[string]map[int]cell{}
	for _, mode := range modes {
		cells[mode] = map[int]cell{}
		for _, workers := range StealWorkers {
			cfg := core.ConfigAll.WithWorkers(workers)
			if mode == "on" {
				obs.Enable()
			} else {
				obs.Disable()
			}
			// More reps than the default 3: the gate compares min-of-reps
			// against the baseline median, and the min only converges to
			// the true floor with enough samples — on a small shared host
			// single runs scatter well past the 3% budget.
			reps := o.Reps
			if reps < 7 {
				reps = 7
			}
			ev0, ob0, ct0 := obs.Emitted(), obs.Default().TotalObservations(), countersSum()
			var ds []time.Duration
			for r := 0; r < reps; r++ {
				d, _ := ringOnce(cfg, handlers, hops)
				ds = append(ds, d)
			}
			evd := obs.Emitted() - ev0
			obd := obs.Default().TotalObservations() - ob0
			ctd := countersSum() - ct0
			if mode == "off" && (evd != 0 || obd != 0 || ctd != 0) {
				panic(fmt.Sprintf("harness: obs disabled but recorded %d events, %d observations, %d counter increments", evd, obd, ctd))
			}
			if mode == "on" && (evd == 0 || obd == 0) {
				panic("harness: obs enabled but recorded nothing")
			}
			med := median(ds) // sorts ds in place
			cells[mode][workers] = cell{med: med, min: ds[0], events: evd, obsvd: obd}
		}
	}
	obs.Disable()

	// The gate compares the geometric mean of the per-row off/baseline
	// ratios, not individual rows: on a small host a single baseline
	// median carries scheduler-placement noise well above 3%, and a
	// per-row gate would flag baseline luck as tracer overhead. The
	// sweep-wide mean is the stable signal for a uniform slowdown,
	// which is what a hot-path regression looks like. Ratios are
	// calibration-normalized when the baseline carries a spin time.
	calib := calibSpin()
	offMin := map[int]time.Duration{}
	for _, workers := range StealWorkers {
		offMin[workers] = cells["off"][workers].min
	}
	scaledBase := func(workers int) (float64, bool) {
		ref, ok := baseline.obsOffRef(workers)
		if !ok {
			return 0, false
		}
		base := ref.seconds
		if ref.calib > 0 && calib > 0 {
			base *= calib.Seconds() / ref.calib
		}
		return base, true
	}
	rowRatio := func(workers int) (float64, bool) {
		base, ok := scaledBase(workers)
		if !ok {
			return 0, false
		}
		return offMin[workers].Seconds() / base, true
	}
	gateGeomean := func() (float64, int) {
		var logSum float64
		var n int
		for _, workers := range StealWorkers {
			if rel, ok := rowRatio(workers); ok {
				logSum += math.Log(rel)
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return math.Exp(logSum / float64(n)), n
	}

	tb := newTable(o.Out)
	tb.row("Workers", "off(s)", "on(s)", "on/off", "base(s)", "off/base", "events(on)")
	for _, workers := range StealWorkers {
		off, on := cells["off"][workers], cells["on"][workers]
		base, haveBase := scaledBase(workers)
		baseCell, vsBase := "-", "-"
		if haveBase {
			baseCell = fmt.Sprintf("%.3f", base)
			vsBase = fmt.Sprintf("%.2f", off.min.Seconds()/base)
		}
		tb.row(strconv.Itoa(workers), Seconds(off.med), Seconds(on.med),
			Ratio(on.med, off.med), baseCell, vsBase,
			strconv.FormatInt(on.events, 10))

		for _, mode := range modes {
			c := cells[mode][workers]
			med := map[string]float64{
				"seconds":     c.med.Seconds(),
				"min_seconds": c.min.Seconds(),
			}
			if mode == "on" && off.med > 0 {
				med["overhead_vs_off_pct"] = (c.med.Seconds()/off.med.Seconds() - 1) * 100
			}
			if mode == "off" {
				// The calibration rides every off row so a future session
				// gating against this file can normalize out host drift.
				med["calib_seconds"] = calib.Seconds()
				if haveBase {
					med["baseline_seconds"] = base
					med["overhead_vs_baseline_pct"] = (c.min.Seconds()/base - 1) * 100
				}
			}
			o.Rec.Add(Result{
				Experiment: "obs",
				Labels: map[string]string{
					"mode":     mode,
					"workload": "threadring",
					"config":   core.ConfigAll.WithWorkers(workers).Name(),
					"workers":  strconv.Itoa(workers),
				},
				Medians: med,
				Counters: map[string]int64{
					"events":       c.events,
					"observations": c.obsvd,
				},
			})
		}
	}
	tb.flush()

	geo, ratios := gateGeomean()
	switch {
	case baseline == nil:
		fmt.Fprintf(o.Out, "\noverhead gate: skipped (baseline %q not readable)\n", o.Baseline)
	case !baseline.comparable:
		fmt.Fprintf(o.Out, "\noverhead gate: skipped (baseline host %s/%d CPUs, this host %s/%d)\n",
			baseline.file.GoVersion, baseline.file.NumCPU, runtime.Version(), runtime.NumCPU())
	case !defaultSizes:
		fmt.Fprintln(o.Out, "\noverhead gate: skipped (non-default workload sizes)")
	case !gateArmed || ratios == 0:
		fmt.Fprintln(o.Out, "\noverhead gate: skipped (no comparable baseline rows)")
	default:
		// Overhead is a lower-bound property: if the disabled path can
		// reach baseline parity in any quiet window, the compiled-in
		// branches are not costing the budget — whereas a real hot-path
		// regression is slow in every window. So on a violation the off
		// sweep re-measures (folding per-row minima) before the gate
		// fails: a shared host's loud phases last longer than one sweep,
		// and a single-window gate would flag neighbor load as overhead.
		for round := 1; geo > 1+obsOverheadGate && round <= 2; round++ {
			fmt.Fprintf(o.Out, "\noverhead gate: geomean %.3f over budget, re-measuring off sweep (round %d/2)\n", geo, round)
			obs.Disable()
			// Refresh the calibration too (folding the faster reading):
			// if the first spin ran in a loud phase, the normalization
			// itself was inflated.
			if c := calibSpin(); c < calib {
				calib = c
			}
			for _, workers := range StealWorkers {
				cfg := core.ConfigAll.WithWorkers(workers)
				for r := 0; r < 7; r++ {
					d, _ := ringOnce(cfg, handlers, hops)
					if d < offMin[workers] {
						offMin[workers] = d
					}
				}
			}
			geo, ratios = gateGeomean()
		}
		o.Rec.Add(Result{
			Experiment: "obs",
			Labels:     map[string]string{"mode": "gate", "workload": "threadring"},
			Medians: map[string]float64{
				"off_vs_baseline_geomean": geo,
				"budget_pct":              obsOverheadGate * 100,
				"calib_seconds":           calib.Seconds(),
			},
		})
		if geo > 1+obsOverheadGate {
			fmt.Fprintf(o.Out, "\noverhead gate VIOLATION: off/baseline geomean %.3f over %d rows (budget %.0f%%)\n",
				geo, ratios, obsOverheadGate*100)
			panic(fmt.Sprintf("harness: disabled-tracer overhead geomean %.3f exceeds %.0f%% budget", geo, obsOverheadGate*100))
		}
		fmt.Fprintf(o.Out, "\noverhead gate: PASS (off/baseline geomean %.3f over %d rows, budget %.0f%%)\n",
			geo, ratios, obsOverheadGate*100)
	}
}
