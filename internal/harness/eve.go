package harness

import (
	"fmt"
	"time"

	"scoopqs/internal/eve"
)

// Eve regenerates the structure of the paper's §4.5: EVE (the
// production lock-based runtime with EiffelStudio's handicaps) against
// EVE/Qs (QoQ + dynamic coalescing, same handicaps) and the
// unhandicapped SCOOP/Qs reference, on a pull-heavy parallel workload
// and a reservation-heavy coordination workload.
func (o Options) Eve() {
	section(o.Out, "§4.5 EVE/Qs",
		"The Qs techniques inside a handicapped (EiffelStudio-like) runtime.\nPaper: EVE/Qs over EVE geomean 7.7x parallel, 11.7x concurrency,\n9.7x overall; EVE/Qs slower than SCOOP/Qs absolute.")

	pullN := o.Cow.NR * o.Cow.NR / 4
	clients, iters := o.Conc.N, o.Conc.M/4+1
	variants := []string{eve.VariantEVE, eve.VariantEVEQs, eve.VariantQs}
	results := make(map[string]eve.Results, len(variants))
	for _, v := range variants {
		v := v
		var r eve.Results
		best := time.Duration(0)
		for rep := 0; rep < max(1, o.Reps); rep++ {
			got := eve.Run(v, pullN, clients, iters)
			if best == 0 || got.Parallel+got.Conc < best {
				best = got.Parallel + got.Conc
				r = got
			}
		}
		results[v] = r
	}

	tb := newTable(o.Out)
	tb.row("Variant", "parallel(s)", "concurrency(s)", "geomean(s)")
	for _, v := range variants {
		r := results[v]
		gm := GeoMean([]time.Duration{r.Parallel, r.Conc})
		tb.row(v, Seconds(r.Parallel), Seconds(r.Conc), Seconds(gm))
	}
	tb.flush()

	evp, evc := results[eve.VariantEVE], results[eve.VariantEVEQs]
	par := float64(evp.Parallel) / float64(evc.Parallel)
	con := float64(evp.Conc) / float64(evc.Conc)
	all := float64(GeoMean([]time.Duration{evp.Parallel, evp.Conc})) /
		float64(GeoMean([]time.Duration{evc.Parallel, evc.Conc}))
	fmt.Fprintf(o.Out, "\nEVE/Qs over EVE: parallel %.1fx, concurrency %.1fx, overall %.1fx\n", par, con, all)
	fmt.Fprintf(o.Out, "(paper: 7.7x, 11.7x, 9.7x)\n")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
