package harness

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/future"
)

// StealWorkers is the pool-size sweep of the steal experiment.
var StealWorkers = []int{1, 2, 4, 8}

// timedStats is one repetition: a duration with the counters of the
// same run, so a reported median is never paired with another rep's
// counters.
type timedStats struct {
	d  time.Duration
	st core.Stats
}

// medianRun returns the repetition with the median duration.
func medianRun(runs []timedStats) timedStats {
	sorted := append([]timedStats(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].d < sorted[j].d })
	return sorted[len(sorted)/2]
}

// fanOnce runs a fan-out workload: one coordinator logs `calls`
// asynchronous increments on each of `width` handlers, then collects
// one asynchronous query per handler and awaits them all. All the
// parallelism comes from the runtime spreading the handlers across
// workers, so at Workers > 1 this exercises injector fan-out and
// stealing rather than the threadring's strict handoff chain.
func fanOnce(cfg core.Config, width, calls, rounds int) (time.Duration, core.Stats) {
	rt := core.New(cfg)
	hs := make([]*core.Handler, width)
	sums := make([]int64, width)
	for i := range hs {
		hs[i] = rt.NewHandler(fmt.Sprintf("fan%d", i))
	}
	c := rt.NewClient()
	start := time.Now()
	for r := 0; r < rounds; r++ {
		futs := make([]*future.Future, width)
		for i, h := range hs {
			i := i
			c.Separate(h, func(s *core.Session) {
				for j := 0; j < calls; j++ {
					s.Call(func() { sums[i]++ })
				}
				futs[i] = core.QueryAsync(s, func() int64 { return sums[i] })
			})
		}
		if _, err := c.Await(future.All(futs...)); err != nil {
			panic(err)
		}
	}
	d := time.Since(start)
	st := rt.Stats()
	rt.Shutdown()
	for i := range sums {
		if sums[i] != int64(calls*rounds) {
			panic("harness: fan-out lost calls")
		}
	}
	return d, st
}

// Steal measures the work-stealing executor substrate: a pool-size
// sweep over three workload shapes — threadring (strict handoff chain:
// the local-push fast path), chain (awaited delegation: park/resume
// traffic), and fan-out (wide independent work: injector distribution
// and stealing) — reporting the scheduler's steal/injector/local-push
// counters next to the medians. Not a paper experiment; it measures
// this repo's scheduler (see README "Scheduler").
func (o Options) Steal() {
	handlers := o.ExecHandlers / 10
	if handlers < 2 {
		handlers = 2
	}
	hops := o.ExecHops / 5
	if hops < 1 {
		hops = handlers
	}
	depth, rounds := o.FutDepth, o.FutRounds
	if depth < 2 {
		depth = 32
	}
	if rounds < 1 {
		rounds = 1
	}
	fanWidth, fanCalls, fanRounds := 64, 32, 25

	section(o.Out, "Steal",
		fmt.Sprintf("Work-stealing sweep over Workers %v (ConfigAll): threadring\n(%d handlers x %d hops), awaited chain (depth %d x %d), fan-out\n(%d handlers x %d calls x %d rounds), with substrate counters.",
			StealWorkers, handlers, hops, depth, rounds, fanWidth, fanCalls, fanRounds))

	type workload struct {
		name string
		run  func(cfg core.Config) (time.Duration, core.Stats)
	}
	workloads := []workload{
		{"threadring", func(cfg core.Config) (time.Duration, core.Stats) {
			return ringOnce(cfg, handlers, hops)
		}},
		{"chain", func(cfg core.Config) (time.Duration, core.Stats) {
			cs := chainAwait(cfg, depth, rounds)
			return cs.d, cs.st
		}},
		{"fanout", func(cfg core.Config) (time.Duration, core.Stats) {
			return fanOnce(cfg, fanWidth, fanCalls, fanRounds)
		}},
	}

	tb := newTable(o.Out)
	tb.row("Workload", "Workers", "time(s)", "steals", "local-push", "injector", "schedules", "spawns")
	for _, wl := range workloads {
		for _, workers := range StealWorkers {
			cfg := core.ConfigAll.WithWorkers(workers)
			var runs []timedStats
			for r := 0; r < o.Reps || r == 0; r++ {
				d, s := wl.run(cfg)
				runs = append(runs, timedStats{d, s})
			}
			mid := medianRun(runs)
			d, st := mid.d, mid.st
			// One extra instrumented rep yields the latency percentiles
			// for the JSON row; the timed reps above stay uninstrumented.
			pct := obsPercentiles(func() { wl.run(cfg) },
				"sched.dispatch_wait_ns", "sched.task_wait_ns", "core.query_ns")
			tb.row(wl.name, strconv.Itoa(workers), Seconds(d),
				fmt.Sprintf("%d", st.Steals),
				fmt.Sprintf("%d", st.LocalPushes),
				fmt.Sprintf("%d", st.InjectorPushes),
				fmt.Sprintf("%d", st.Schedules),
				fmt.Sprintf("%d", st.WorkerSpawns))
			o.Rec.Add(Result{
				Experiment: "steal",
				Labels: map[string]string{
					"workload": wl.name,
					"config":   cfg.Name(),
					"workers":  strconv.Itoa(workers),
				},
				Medians: mergeMedians(map[string]float64{"seconds": d.Seconds()}, pct),
				Counters: map[string]int64{
					"steals":          st.Steals,
					"local_pushes":    st.LocalPushes,
					"injector_pushes": st.InjectorPushes,
					"schedules":       st.Schedules,
					"worker_spawns":   st.WorkerSpawns,
					"worker_parks":    st.WorkerParks,
					"tasks_spawned":   st.TasksSpawned,
					"task_steals":     st.TaskSteals,
					"task_wait_parks": st.TaskWaitParks,
				},
			})
		}
	}
	tb.flush()
}
