package harness

import (
	"fmt"
	"math"
	"runtime"
)

// flowThroughputGate is the remote-path performance budget: with
// adaptive credit windows on by default, the flow and remote
// experiments' throughput must stay within 5% of the committed
// baseline rows (-flow-baseline) on a comparable host.
const flowThroughputGate = 0.05

// benchQPS returns a baseline row's queries_per_second median, matched
// by experiment name and a label subset.
func (b *benchBaseline) benchQPS(experiment string, labels map[string]string) (float64, bool) {
	if b == nil {
		return 0, false
	}
outer:
	for _, r := range b.file.Results {
		if r.Experiment != experiment {
			continue
		}
		for k, v := range labels {
			if r.Labels[k] != v {
				continue outer
			}
		}
		if q, ok := r.Medians["queries_per_second"]; ok && q > 0 {
			return q, true
		}
	}
	return 0, false
}

// gateRow is one gated throughput row: a display label, the label
// subset selecting its baseline row, the best throughput observed so
// far, and a closure measuring one more repetition.
type gateRow struct {
	label string
	want  map[string]string
	best  float64
	again func() float64
}

// throughputGate enforces the 5% budget for an experiment's rows
// against the -flow-baseline trajectory file. Like the obs overhead
// gate, throughput parity is a lower-bound property — if any
// repetition reaches the baseline, the code path has not regressed,
// while a real regression is slow in every window — so the gate
// compares the geometric mean of per-row baseline/best ratios and, on
// a violation, re-measures up to twice (folding per-row maxima)
// before failing: on a small shared host a single sweep's scatter
// exceeds the budget. Violation panics so CI can gate on the exit
// code; a missing or incomparable baseline skips, loudly.
func (o Options) throughputGate(experiment string, defaultSizes bool, rows []gateRow) {
	baseline := readBenchBaseline(o.FlowBaseline)
	switch {
	case baseline == nil:
		fmt.Fprintf(o.Out, "\nthroughput gate: skipped (baseline %q not readable)\n", o.FlowBaseline)
		return
	case !baseline.comparable:
		fmt.Fprintf(o.Out, "\nthroughput gate: skipped (baseline host %s/%d CPUs, this host %s/%d)\n",
			baseline.file.GoVersion, baseline.file.NumCPU, runtime.Version(), runtime.NumCPU())
		return
	case !defaultSizes:
		fmt.Fprintln(o.Out, "\nthroughput gate: skipped (non-default workload sizes)")
		return
	}
	type armedRow struct {
		gateRow
		base float64
	}
	var armed []armedRow
	for _, r := range rows {
		if base, ok := baseline.benchQPS(experiment, r.want); ok {
			armed = append(armed, armedRow{gateRow: r, base: base})
		}
	}
	if len(armed) == 0 {
		fmt.Fprintf(o.Out, "\nthroughput gate: skipped (no %s baseline rows in %q)\n", experiment, o.FlowBaseline)
		return
	}

	geomean := func() float64 {
		var logSum float64
		for _, r := range armed {
			logSum += math.Log(r.base / r.best)
		}
		return math.Exp(logSum / float64(len(armed)))
	}
	geo := geomean()
	for round := 1; geo > 1+flowThroughputGate && round <= 2; round++ {
		fmt.Fprintf(o.Out, "\nthroughput gate: geomean %.3f over budget, re-measuring (round %d/2)\n", geo, round)
		for i := range armed {
			if q := armed[i].again(); q > armed[i].best {
				armed[i].best = q
			}
		}
		geo = geomean()
	}
	o.Rec.Add(Result{
		Experiment: experiment,
		Labels:     map[string]string{"mode": "gate"},
		Medians: map[string]float64{
			"baseline_vs_best_geomean": geo,
			"budget_pct":               flowThroughputGate * 100,
		},
	})
	if geo > 1+flowThroughputGate {
		for _, r := range armed {
			fmt.Fprintf(o.Out, "throughput gate row %s: best %.0f q/s vs baseline %.0f (%.3f)\n",
				r.label, r.best, r.base, r.base/r.best)
		}
		fmt.Fprintf(o.Out, "\nthroughput gate VIOLATION: baseline/best geomean %.3f over %d rows (budget %.0f%%)\n",
			geo, len(armed), flowThroughputGate*100)
		panic(fmt.Sprintf("harness: %s throughput geomean %.3f exceeds %.0f%% budget vs %s",
			experiment, geo, flowThroughputGate*100, o.FlowBaseline))
	}
	fmt.Fprintf(o.Out, "\nthroughput gate: PASS (baseline/best geomean %.3f over %d rows, budget %.0f%%)\n",
		geo, len(armed), flowThroughputGate*100)
}
