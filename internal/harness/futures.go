package harness

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/future"
	"scoopqs/internal/remote"
)

// chainStats is one delegation-chain measurement.
type chainStats struct {
	d  time.Duration
	st core.Stats
}

// chainSync traverses a depth-len(hs) delegation chain with blocking
// synchronous queries: each handler's worker blocks until the whole
// subtree below it finishes, so every level past the pool size costs a
// compensation worker.
func chainSync(cfg core.Config, depth, rounds int) chainStats {
	rt := core.New(cfg)
	hs := make([]*core.Handler, depth)
	for i := range hs {
		hs[i] = rt.NewHandler(fmt.Sprintf("chain%d", i))
	}
	var step func(i int) int64
	step = func(i int) int64 {
		if i == depth-1 {
			return 1
		}
		var out int64
		hs[i].AsClient().Separate(hs[i+1], func(s *core.Session) {
			out = core.QueryRemote(s, func() int64 { return step(i + 1) }) + 1
		})
		return out
	}
	c := rt.NewClient()
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var got int64
		c.Separate(hs[0], func(s *core.Session) {
			got = core.QueryRemote(s, func() int64 { return step(0) })
		})
		if got != int64(depth) {
			panic(fmt.Sprintf("harness: sync chain returned %d, want %d", got, depth))
		}
	}
	d := time.Since(start)
	st := rt.Stats()
	rt.Shutdown()
	return chainStats{d, st}
}

// chainAwait traverses the same chain with asynchronous queries and
// Handler.Await: each handler parks its state machine on the next
// hop's future, so no worker blocks and no compensation spawns.
func chainAwait(cfg core.Config, depth, rounds int) chainStats {
	rt := core.New(cfg)
	hs := make([]*core.Handler, depth)
	for i := range hs {
		hs[i] = rt.NewHandler(fmt.Sprintf("chain%d", i))
	}
	var step func(i int) any
	step = func(i int) any {
		if i == depth-1 {
			return int64(1)
		}
		p := future.New()
		var inner *future.Future
		hs[i].AsClient().Separate(hs[i+1], func(s *core.Session) {
			inner = s.CallFuture(func() any { return step(i + 1) })
		})
		hs[i].Await(inner, func(v any, err error) {
			if err != nil {
				p.Fail(err)
				return
			}
			p.Complete(v.(int64) + 1)
		})
		return p
	}
	c := rt.NewClient()
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var fut *future.Future
		c.Separate(hs[0], func(s *core.Session) {
			fut = s.CallFuture(func() any { return step(0) })
		})
		v, err := c.Await(fut)
		if err != nil {
			panic(err)
		}
		if v.(int64) != int64(depth) {
			panic(fmt.Sprintf("harness: await chain returned %v, want %d", v, depth))
		}
	}
	d := time.Since(start)
	st := rt.Stats()
	rt.Shutdown()
	return chainStats{d, st}
}

// chainPipelined traverses the chain purely by promise flattening:
// each hop logs the next hop's future query and derives its own result
// with Then, so nothing parks anywhere — the completion cascades back
// through the chain once the deepest handler computes.
func chainPipelined(cfg core.Config, depth, rounds int) chainStats {
	rt := core.New(cfg)
	hs := make([]*core.Handler, depth)
	for i := range hs {
		hs[i] = rt.NewHandler(fmt.Sprintf("chain%d", i))
	}
	var step func(i int) any
	step = func(i int) any {
		if i == depth-1 {
			return int64(1)
		}
		var inner *future.Future
		hs[i].AsClient().Separate(hs[i+1], func(s *core.Session) {
			inner = s.CallFuture(func() any { return step(i + 1) })
		})
		return inner.Then(func(v any) any { return v.(int64) + 1 })
	}
	c := rt.NewClient()
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var fut *future.Future
		c.Separate(hs[0], func(s *core.Session) {
			fut = s.CallFuture(func() any { return step(0) })
		})
		v, err := c.Await(fut)
		if err != nil {
			panic(err)
		}
		if v.(int64) != int64(depth) {
			panic(fmt.Sprintf("harness: pipelined chain returned %v, want %d", v, depth))
		}
	}
	d := time.Since(start)
	st := rt.Stats()
	rt.Shutdown()
	return chainStats{d, st}
}

// remoteThroughput measures queries/second over a loopback TCP
// connection, synchronous (one round-trip per query) versus pipelined
// (QueryAsync, one flush at the end).
func remoteThroughput(cfg core.Config, queries int, pipelined bool) (time.Duration, error) {
	rt := core.New(cfg)
	defer rt.Shutdown()
	h := rt.NewHandler("counter")
	var n int64
	srv := remote.NewServer(rt)
	srv.Expose("counter", h, map[string]remote.Proc{
		"add": func(a []int64) int64 { n += a[0]; return n },
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := remote.Dial("tcp", ln.Addr().String())
	if err != nil {
		return 0, err
	}
	defer c.Close()

	start := time.Now()
	var last int64
	err = c.Separate("counter", func(s *remote.Session) error {
		if pipelined {
			var fut *future.Future
			for i := 0; i < queries; i++ {
				var err error
				if fut, err = s.QueryAsync("add", 1); err != nil {
					return err
				}
			}
			last, err = c.Await(fut)
			return err
		}
		for i := 0; i < queries; i++ {
			var err error
			if last, err = s.Query("add", 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := c.Flush(); err != nil {
		return 0, err
	}
	if last != int64(queries) {
		return 0, fmt.Errorf("harness: remote chain counted %d, want %d", last, queries)
	}
	return time.Since(start), nil
}

// Futures measures the futures subsystem: compensation-spawn avoidance
// on a deep delegation chain (sync queries vs. Handler.Await parking
// vs. pure promise pipelining) and remote query pipelining throughput.
// Not a paper experiment; it measures this repo's futures extension
// (see README "Futures").
func (o Options) Futures() {
	depth, rounds := o.FutDepth, o.FutRounds
	if depth < 2 {
		depth = 32
	}
	if rounds < 1 {
		rounds = 1
	}
	pool := o.Pool
	if pool <= 0 {
		pool = 4
	}
	cfg := core.ConfigAll.WithWorkers(pool)

	section(o.Out, "Futures: delegation chain",
		fmt.Sprintf("Depth-%d delegation chain x%d rounds on a pool of %d workers\n(ConfigAll): blocking sync queries vs. Handler.Await parking vs.\npure promise pipelining. sync burns a compensation worker per level;\nthe futures paths park state machines instead.", depth, rounds, pool))

	modes := []struct {
		label string
		run   func(core.Config, int, int) chainStats
	}{
		{"sync", chainSync},
		{"awaited", chainAwait},
		{"pipelined", chainPipelined},
	}
	var syncSpawns, awaitSpawns int64
	tb := newTable(o.Out)
	tb.row("Mode", "time(s)", "hops/ms", "worker-spawns", "await-parks", "futures")
	for _, m := range modes {
		var best chainStats
		for r := 0; r < o.Reps || r == 0; r++ {
			cs := m.run(cfg, depth, rounds)
			if r == 0 || cs.d < best.d {
				best = cs
			}
		}
		hops := float64(depth*rounds) / (float64(best.d.Nanoseconds()) / 1e6)
		tb.row(m.label, Seconds(best.d), fmt.Sprintf("%.0f", hops),
			fmt.Sprintf("%d", best.st.WorkerSpawns),
			fmt.Sprintf("%d", best.st.AwaitParks),
			fmt.Sprintf("%d", best.st.FuturesCreated))
		o.Rec.Add(Result{
			Experiment: "futures-chain",
			Labels:     map[string]string{"mode": m.label, "config": cfg.Name()},
			Medians:    map[string]float64{"seconds": best.d.Seconds(), "hops_per_ms": hops},
			Counters: map[string]int64{
				"worker_spawns":   best.st.WorkerSpawns,
				"await_parks":     best.st.AwaitParks,
				"futures_created": best.st.FuturesCreated,
			},
		})
		switch m.label {
		case "sync":
			syncSpawns = best.st.WorkerSpawns
		case "awaited":
			awaitSpawns = best.st.WorkerSpawns
		}
	}
	tb.flush()
	ratio := "inf"
	if awaitSpawns > 0 {
		ratio = fmt.Sprintf("%.1f", float64(syncSpawns)/float64(awaitSpawns))
	}
	fmt.Fprintf(o.Out, "\nspawns avoided by awaiting: %d (reduction %sx)\n",
		syncSpawns-awaitSpawns, ratio)

	queries := o.FutQueries
	if queries < 1 {
		queries = 5000
	}
	section(o.Out, "Futures: remote pipelining",
		fmt.Sprintf("%d queries over one loopback TCP connection against a pooled(%d)\nruntime: one round-trip each vs. pipelined QueryAsync resolved as\nreplies stream back.", queries, pool))
	tb = newTable(o.Out)
	tb.row("Mode", "time(s)", "queries/s")
	var syncD, pipeD time.Duration
	for _, pipelined := range []bool{false, true} {
		var best time.Duration
		for r := 0; r < o.Reps || r == 0; r++ {
			d, err := remoteThroughput(cfg, queries, pipelined)
			if err != nil {
				panic(err)
			}
			if r == 0 || d < best {
				best = d
			}
		}
		label := "sync"
		if pipelined {
			label = "pipelined"
			pipeD = best
		} else {
			syncD = best
		}
		tb.row(label, Seconds(best), fmt.Sprintf("%.0f", float64(queries)/best.Seconds()))
		o.Rec.Add(Result{
			Experiment: "futures-remote",
			Labels:     map[string]string{"mode": label, "config": cfg.Name()},
			Medians: map[string]float64{
				"seconds":            best.Seconds(),
				"queries_per_second": float64(queries) / best.Seconds(),
			},
		})
	}
	tb.flush()
	fmt.Fprintf(o.Out, "\npipelining speedup: %sx (host CPUs=%d)\n", Ratio(syncD, pipeD), runtime.NumCPU())
}
