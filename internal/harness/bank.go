package harness

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync/atomic"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/remote"
)

// The bank experiment's service protocol, all bytes payloads over the
// zero-copy CALLB/QUERYB path (little-endian):
//
//	read  (QUERYB): req  account:uint64        -> rep balance:uint64
//	xfer  (CALLB):  req  from:uint64 to:uint64 amount:uint64
//	sum   (QUERYB): req  -                     -> rep shardTotal:uint64
//
// Accounts are sharded across handlers; each handler owns its shard's
// balances outright, so reads and transfers run under the handler's
// exclusion with no locks anywhere in the service code — the paper's
// programming model doing the work a bank service would usually buy
// with a mutex table.
const (
	bankInitBalance = 100 // per account; the conservation invariant's unit
	bankMaxTransfer = 50
)

// bankShardName names the shard handlers.
func bankShardName(i int) string { return "bank-shard" + strconv.Itoa(i) }

// bankServer brings up a runtime owning accounts balances split evenly
// over shards handlers, exposed as bytes procedures.
func bankServer(cfg core.Config, accounts, shards int) (addr string, shutdown func(), err error) {
	rt := core.New(cfg)
	srv := remote.NewServer(rt)
	perShard := accounts / shards
	for i := 0; i < shards; i++ {
		h := rt.NewHandler(bankShardName(i))
		balances := make([]int64, perShard)
		for j := range balances {
			balances[j] = bankInitBalance
		}
		srv.ExposeBytes(bankShardName(i), h, map[string]remote.BytesProc{
			// The reply is allocated per read: the proc's return must stay
			// valid until the runtime encodes it, and the next logged call
			// on this handler may run before a parked reply is copied.
			"read": func(p []byte) []byte {
				out := make([]byte, 8)
				binary.LittleEndian.PutUint64(out, uint64(balances[binary.LittleEndian.Uint64(p)]))
				return out
			},
			"xfer": func(p []byte) []byte {
				from := binary.LittleEndian.Uint64(p)
				to := binary.LittleEndian.Uint64(p[8:])
				amount := int64(binary.LittleEndian.Uint64(p[16:]))
				balances[from] -= amount
				balances[to] += amount
				return nil
			},
			"sum": func([]byte) []byte {
				var total int64
				for _, b := range balances {
					total += b
				}
				out := make([]byte, 8)
				binary.LittleEndian.PutUint64(out, uint64(total))
				return out
			},
		})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Shutdown()
		return "", nil, err
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close(); rt.Shutdown() }, nil
}

// bankTally is what one load phase observed, all updated from future
// callbacks on the mux reader (hence atomics).
type bankTally struct {
	reads     atomic.Int64 // read replies that arrived well-formed
	malformed atomic.Int64 // read replies of the wrong shape
	failed    atomic.Int64 // read futures that resolved with an error
}

// bankLoad drives ops mixed operations (4:1 reads to transfers)
// through sessions RemoteSessions multiplexed on one connection, each
// session bound to one shard for its whole run. In-flight reads are
// bounded per session by a semaphore released from the future's
// completion callback, on top of the protocol's own credit windows —
// the load generator never outruns the service unboundedly. Returns
// the tally; every session's block ends with a Sync barrier, so when
// bankLoad returns every logged operation has executed.
func bankLoad(mux *remote.Mux, shards, sessions, ops, perShard, inflight int, seed int64) (*bankTally, error) {
	tally := &bankTally{}
	opsPer := ops / sessions
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		i := i
		rs := mux.NewSession()
		go func() {
			defer rs.Close()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			shard := i % shards
			sem := make(chan struct{}, inflight)
			var req [24]byte
			err := rs.Separate(bankShardName(shard), func(s *remote.Session) error {
				for k := 0; k < opsPer; k++ {
					if rng.Intn(5) == 0 {
						// Transfer between two accounts of this shard:
						// fire-and-forget, conserves the shard total.
						binary.LittleEndian.PutUint64(req[0:], uint64(rng.Intn(perShard)))
						binary.LittleEndian.PutUint64(req[8:], uint64(rng.Intn(perShard)))
						binary.LittleEndian.PutUint64(req[16:], uint64(rng.Intn(bankMaxTransfer)+1))
						if err := s.CallBytes("xfer", req[:24]); err != nil {
							return err
						}
						continue
					}
					// Balance read: pipelined, bounded by the semaphore. The
					// request buffer is reused — CallBytes/QueryBytesAsync
					// encode before returning.
					binary.LittleEndian.PutUint64(req[0:], uint64(rng.Intn(perShard)))
					sem <- struct{}{}
					f, err := s.QueryBytesAsync("read", req[:8])
					if err != nil {
						return err
					}
					f.OnComplete(func(v any, err error) {
						switch p, _ := v.([]byte); {
						case err != nil:
							tally.failed.Add(1)
						case len(p) != 8:
							tally.malformed.Add(1)
						default:
							tally.reads.Add(1)
						}
						if err == nil {
							p, _ := v.([]byte)
							remote.Release(p)
						}
						<-sem
					})
				}
				return s.Sync()
			})
			errs <- err
		}()
	}
	var first error
	for i := 0; i < sessions; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return tally, first
}

// bankConservation sums every shard over the wire and checks the
// invariant: transfers move money, never create or destroy it.
func bankConservation(mux *remote.Mux, shards, accounts int) error {
	rs := mux.NewSession()
	defer rs.Close()
	var total int64
	for i := 0; i < shards; i++ {
		err := rs.Separate(bankShardName(i), func(s *remote.Session) error {
			p, err := s.QueryBytes("sum", nil)
			if err != nil {
				return err
			}
			total += int64(binary.LittleEndian.Uint64(p))
			remote.Release(p)
			return nil
		})
		if err != nil {
			return fmt.Errorf("harness: bank shard %d sum: %w", i, err)
		}
	}
	if want := int64(accounts) * bankInitBalance; total != want {
		return fmt.Errorf("harness: bank conservation VIOLATION: total %d, want %d", total, want)
	}
	return nil
}

// Bank runs the production-scale bytes-payload benchmark: a bank
// service of BankAccounts accounts sharded across BankShards handlers,
// driven by BankSessions logical clients multiplexed on one connection
// with a mixed read/transfer workload (4:1) of BankOps operations,
// every request and reply an opaque bytes payload through the
// zero-copy slab codec. In-flight reads are semaphore-bounded per
// session on top of the credit windows. Reported: wall time and
// operations/s (median of Reps), round-trip and payload-size
// percentiles from one instrumented rep, and the transport's
// bytes/slab counters. After every rep the balance total is summed
// over the wire and checked against accounts x initial balance —
// transfers must conserve money — and any violation or failed future
// panics, so CI gates on the exit code. Not a paper experiment; it
// proves this repo's bytes payload path at service scale (see README
// "Bytes payloads").
func (o Options) Bank() {
	accounts := o.BankAccounts
	if accounts <= 0 {
		accounts = 1 << 20
	}
	shards := o.BankShards
	if shards <= 0 {
		shards = 64
	}
	sessions := o.BankSessions
	if sessions <= 0 {
		sessions = 256
	}
	ops := o.BankOps
	if ops <= 0 {
		ops = 1 << 18
	}
	inflight := o.BankInflight
	if inflight <= 0 {
		inflight = 32
	}
	perShard := accounts / shards
	accounts = perShard * shards // exact sharding; the invariant needs it
	pool := o.Pool
	if pool <= 0 {
		pool = 4
	}
	cfg := core.ConfigAll.WithWorkers(pool)
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}

	section(o.Out, "Bank: bytes payloads at service scale",
		fmt.Sprintf("%d accounts over %d shard handlers on a pooled(%d) runtime\n(ConfigAll), %d mux sessions on one connection, %d mixed ops\n(4:1 reads to intra-shard transfers, <=%d in flight per session),\nevery request/reply a bytes payload through the slab codec. Balance\nconservation is checked over the wire after every rep.",
			accounts, shards, pool, sessions, ops, inflight))

	addr, shutdown, err := bankServer(cfg, accounts, shards)
	if err != nil {
		panic(err)
	}
	defer shutdown()

	runOnce := func(rep int64) (time.Duration, *bankTally) {
		mux, err := remote.DialMux("tcp", addr)
		if err != nil {
			panic(err)
		}
		defer mux.Close()
		start := time.Now()
		tally, err := bankLoad(mux, shards, sessions, ops, perShard, inflight, seed+rep*int64(sessions))
		d := time.Since(start)
		if err != nil {
			panic(err)
		}
		if n := tally.failed.Load() + tally.malformed.Load(); n != 0 {
			panic(fmt.Sprintf("harness: bank run lost %d reads (%d failed, %d malformed)",
				n, tally.failed.Load(), tally.malformed.Load()))
		}
		if err := bankConservation(mux, shards, accounts); err != nil {
			panic(err)
		}
		return d, tally
	}

	reps := o.Reps
	if reps < 1 {
		reps = 1
	}
	var ds []time.Duration
	var reads int64
	for r := 0; r < reps; r++ {
		d, tally := runOnce(int64(r))
		ds = append(ds, d)
		reads = tally.reads.Load()
	}
	med := median(ds)

	// One instrumented rep for round-trip and payload-size percentiles,
	// plus the transport counters of that rep's connection.
	var stats remote.MuxStats
	pct := obsPercentiles(func() {
		mux, err := remote.DialMux("tcp", addr)
		if err != nil {
			panic(err)
		}
		defer mux.Close()
		if _, err := bankLoad(mux, shards, sessions, ops, perShard, inflight, seed+int64(reps)*int64(sessions)); err != nil {
			panic(err)
		}
		if err := bankConservation(mux, shards, accounts); err != nil {
			panic(err)
		}
		stats = mux.Stats()
	}, "remote.roundtrip_ns", "remote.bytes_payload")

	opsPerSec := float64(ops) / med.Seconds()
	us := func(key string) string {
		if v, ok := pct[key]; ok {
			return fmt.Sprintf("%.0f", v/1e3)
		}
		return "-"
	}
	tb := newTable(o.Out)
	tb.row("Accounts", "sessions", "time(s)", "ops/s", "p50(us)", "p99(us)", "reads", "bytesIn", "bytesOut", "slabReuse")
	tb.row(strconv.Itoa(accounts), strconv.Itoa(sessions), Seconds(med),
		fmt.Sprintf("%.0f", opsPerSec),
		us("p50_roundtrip_ns"), us("p99_roundtrip_ns"),
		strconv.FormatInt(reads, 10),
		strconv.FormatUint(stats.BytesIn, 10),
		strconv.FormatUint(stats.BytesOut, 10),
		strconv.FormatUint(stats.SlabReuses, 10))
	tb.flush()
	fmt.Fprintf(o.Out, "conservation: PASS (%d accounts x %d = %d total, every rep)\n",
		accounts, bankInitBalance, int64(accounts)*bankInitBalance)

	o.Rec.Add(Result{
		Experiment: "bank",
		Labels: map[string]string{
			"config":   cfg.Name(),
			"accounts": strconv.Itoa(accounts),
			"shards":   strconv.Itoa(shards),
			"sessions": strconv.Itoa(sessions),
			"seed":     strconv.FormatInt(seed, 10),
		},
		Medians: mergeMedians(map[string]float64{
			"seconds":        med.Seconds(),
			"ops_per_second": opsPerSec,
		}, pct),
		Counters: map[string]int64{
			"ops":         int64(ops),
			"reads":       reads,
			"bytes_in":    int64(stats.BytesIn),
			"bytes_out":   int64(stats.BytesOut),
			"slab_reuses": int64(stats.SlabReuses),
		},
	})
}
