package harness

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/future"
	"scoopqs/internal/remote"
)

// RemoteClients is the logical-client sweep of the remote experiment.
var RemoteClients = []int{1, 8, 64, 256}

// remoteTransport is one way of connecting n logical clients to the
// server; run executes the whole workload (qper pipelined queries per
// client) and reports the client-side writer stats when it has any.
type remoteTransport struct {
	name string
	gob  bool // server side: gob-era server instead of the framed one
	run  func(addr string, n, qper int) (frames, flushes uint64, err error)
}

// remoteTransports compares the multiplexed transport against
// connection-per-client shapes:
//
//   - mux:  all clients share ONE framed connection (Mux.NewSession)
//   - conn: one framed connection per client (Dial)
//   - gob:  one gob-era connection per client (DialGob) — the
//     pre-multiplexing baseline
var remoteTransports = []remoteTransport{
	{"mux", false, func(addr string, n, qper int) (uint64, uint64, error) {
		mux, err := remote.DialMux("tcp", addr)
		if err != nil {
			return 0, 0, err
		}
		defer mux.Close()
		err = eachRemoteClient(n, func(i int) error {
			rs := mux.NewSession()
			defer rs.Close()
			return pipelineBlock(rs, i, qper)
		})
		st := mux.Stats()
		return st.Frames, st.Flushes, err
	}},
	{"conn", false, func(addr string, n, qper int) (uint64, uint64, error) {
		return 0, 0, eachRemoteClient(n, func(i int) error {
			c, err := remote.Dial("tcp", addr)
			if err != nil {
				return err
			}
			defer c.Close()
			return pipelineBlock(c, i, qper)
		})
	}},
	{"gob", true, func(addr string, n, qper int) (uint64, uint64, error) {
		return 0, 0, eachRemoteClient(n, func(i int) error {
			c, err := remote.DialGob("tcp", addr)
			if err != nil {
				return err
			}
			defer c.Close()
			var last *future.Future
			err = c.Separate(remoteHandlerName(i), func(s *remote.GobSession) error {
				for q := 0; q < qper; q++ {
					var err error
					if last, err = s.QueryAsync("add", 1); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			if err := c.Flush(); err != nil {
				return err
			}
			v, err := c.Await(last)
			return checkLast(v, err, qper)
		})
	}},
}

// pipelineBlock runs one logical client's workload on the framed
// transport: one block, qper pipelined queries, one flush.
func pipelineBlock(rs *remote.RemoteSession, i, qper int) error {
	var last *future.Future
	err := rs.Separate(remoteHandlerName(i), func(s *remote.Session) error {
		for q := 0; q < qper; q++ {
			var err error
			if last, err = s.QueryAsync("add", 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := rs.Flush(); err != nil {
		return err
	}
	v, err := rs.Await(last)
	return checkLast(v, err, qper)
}

// checkLast is the per-client correctness check: the last pipelined
// add on a private counter must have observed every prior one.
func checkLast(v int64, err error, qper int) error {
	if err != nil {
		return err
	}
	if v != int64(qper) {
		return fmt.Errorf("harness: remote counter ended at %d, want %d", v, qper)
	}
	return nil
}

// eachRemoteClient runs fn(0..n-1) on n goroutines and collects the
// first error.
func eachRemoteClient(n int, fn func(i int) error) error {
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() { errs <- fn(i) }()
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func remoteHandlerName(i int) string { return "counter" + strconv.Itoa(i) }

// remoteServer brings up a runtime with n private counter handlers
// behind the chosen transport's server.
func remoteServer(cfg core.Config, n int, gob bool) (addr string, shutdown func(), err error) {
	rt := core.New(cfg)
	expose := func(exp func(string, *core.Handler, map[string]remote.Proc)) {
		for i := 0; i < n; i++ {
			h := rt.NewHandler(remoteHandlerName(i))
			c := new(int64)
			exp(remoteHandlerName(i), h, map[string]remote.Proc{
				"add": func(a []int64) int64 { *c += a[0]; return *c },
			})
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Shutdown()
		return "", nil, err
	}
	if gob {
		srv := remote.NewGobServer(rt)
		expose(srv.Expose)
		go srv.Serve(ln)
		return ln.Addr().String(), func() { srv.Close(); rt.Shutdown() }, nil
	}
	srv := remote.NewServer(rt)
	expose(srv.Expose)
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close(); rt.Shutdown() }, nil
}

// Remote measures the multiplexed transport against
// connection-per-client shapes: a sweep over logical clients, each
// pipelining its share of a fixed query total inside one separate
// block on its own handler. Not a paper experiment; it measures this
// repo's remote subsystem (see README "Remote").
func (o Options) Remote() {
	pool := o.Pool
	if pool <= 0 {
		pool = 4
	}
	cfg := core.ConfigAll.WithWorkers(pool)
	total := o.RemoteQueries
	if total < 1 {
		total = 16384
	}

	section(o.Out, "Remote: multiplexed transport",
		fmt.Sprintf("%d pipelined queries split across logical clients %v on a\npooled(%d) runtime (ConfigAll), one private counter handler per\nclient: one multiplexed framed connection (mux) vs. a framed\nconnection per client (conn) vs. the gob-era baseline, one gob\nconnection per client (gob).", total, RemoteClients, pool))

	tb := newTable(o.Out)
	tb.row("Transport", "Clients", "time(s)", "queries/s", "frames/flush")
	gobTimes := map[int]time.Duration{}
	muxTimes := map[int]time.Duration{}
	var gateRows []gateRow
	for _, tr := range remoteTransports {
		for _, n := range RemoteClients {
			qper := total / n
			if qper < 1 {
				qper = 1
			}
			var ds []time.Duration
			var batches []float64
			for r := 0; r < o.Reps || r == 0; r++ {
				addr, shutdown, err := remoteServer(cfg, n, tr.gob)
				if err != nil {
					panic(err)
				}
				start := time.Now()
				frames, flushes, err := tr.run(addr, n, qper)
				d := time.Since(start)
				shutdown()
				if err != nil {
					panic(err)
				}
				ds = append(ds, d)
				if flushes > 0 {
					batches = append(batches, float64(frames)/float64(flushes))
				}
			}
			med := median(ds)
			// One extra instrumented rep yields round-trip and flush
			// percentiles for the framed transports (the gob baseline
			// predates the instrumented write path).
			var pct map[string]float64
			if !tr.gob {
				addr, shutdown, err := remoteServer(cfg, n, tr.gob)
				if err != nil {
					panic(err)
				}
				pct = obsPercentiles(func() {
					if _, _, err := tr.run(addr, n, qper); err != nil {
						panic(err)
					}
				}, "remote.roundtrip_ns", "remote.flush_bytes")
				shutdown()
			}
			// Median batch size, like the timings: one outlier rep must
			// not become the recorded frames/flush.
			var batch float64
			if len(batches) > 0 {
				sort.Float64s(batches)
				batch = batches[len(batches)/2]
			}
			qps := float64(qper*n) / med.Seconds()
			batchCell := "-"
			if batch > 0 {
				batchCell = fmt.Sprintf("%.1f", batch)
			}
			tb.row(tr.name, strconv.Itoa(n), Seconds(med), fmt.Sprintf("%.0f", qps), batchCell)
			switch tr.name {
			case "gob":
				gobTimes[n] = med
			case "mux":
				muxTimes[n] = med
				// median sorted ds in place, so ds[0] is the fastest rep —
				// the gate's lower-bound throughput claim.
				tr, n, qper := tr, n, qper
				gateRows = append(gateRows, gateRow{
					label: fmt.Sprintf("mux/%d", n),
					want:  map[string]string{"transport": tr.name, "clients": strconv.Itoa(n)},
					best:  float64(qper*n) / ds[0].Seconds(),
					again: func() float64 {
						addr, shutdown, err := remoteServer(cfg, n, tr.gob)
						if err != nil {
							panic(err)
						}
						start := time.Now()
						_, _, err = tr.run(addr, n, qper)
						d := time.Since(start)
						shutdown()
						if err != nil {
							panic(err)
						}
						return float64(qper*n) / d.Seconds()
					},
				})
			}
			o.Rec.Add(Result{
				Experiment: "remote",
				Labels: map[string]string{
					"transport": tr.name,
					"clients":   strconv.Itoa(n),
					"config":    cfg.Name(),
				},
				Medians: mergeMedians(map[string]float64{
					"seconds":            med.Seconds(),
					"queries_per_second": qps,
					"frames_per_flush":   batch,
				}, pct),
			})
		}
	}
	tb.flush()
	for _, n := range RemoteClients {
		if b, ok := gobTimes[n]; ok && muxTimes[n] > 0 {
			fmt.Fprintf(o.Out, "mux speedup over gob connection-per-client at %d clients: %sx\n",
				n, Ratio(b, muxTimes[n]))
		}
	}
	o.throughputGate("remote", total == 16384, gateRows)
}
