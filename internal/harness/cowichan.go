package harness

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/cowichan"
	"scoopqs/internal/cowichan/qsimpl"
	"scoopqs/internal/cowichan/tbbimpl"
	"scoopqs/internal/sched"
)

// CowichanWorkers is the pool-size sweep of the cowichan experiment.
var CowichanWorkers = []int{1, 4, 8}

// cowichanCounters extracts the scheduler counters an implementation
// can report: tbbimpl exposes its private executor, qsimpl its runtime.
// Other paradigms (goroutines, STM, actors) have no sched substrate and
// return nil.
func cowichanCounters(im cowichan.Impl) map[string]int64 {
	switch v := im.(type) {
	case *tbbimpl.Impl:
		spawned, steals, parks := v.Executor().TaskCounters()
		execSteals, injPushes, localPushes := v.Executor().StealCounters()
		return map[string]int64{
			"tasks_spawned":   spawned,
			"task_steals":     steals,
			"task_wait_parks": parks,
			"steals":          execSteals,
			"injector_pushes": injPushes,
			"local_pushes":    localPushes,
		}
	case *qsimpl.Impl:
		st := v.Runtime().Stats()
		return map[string]int64{
			"tasks_spawned":   st.TasksSpawned,
			"task_steals":     st.TaskSteals,
			"task_wait_parks": st.TaskWaitParks,
			"steals":          st.Steals,
			"injector_pushes": st.InjectorPushes,
			"local_pushes":    st.LocalPushes,
		}
	}
	return nil
}

// Cowichan sweeps the full Cowichan chain over problem size NR, pool
// size, and implementation, asserting exact cross-implementation
// equality against the sequential reference on every cell — the suite
// behind the paper's §4 language study, now running every parallel
// paradigm on request. cxx (fork-join skeletons) and Qs (handler
// runtime) both execute on the unified internal/sched executor, so
// their rows carry its task and steal counters; a dedicated
// ParallelSort row sizes the skeleton the winnow kernel leans on.
func (o Options) Cowichan() {
	sizes := []int{cowichan.BenchParams().NR}
	if o.Cow.NR != sizes[0] {
		sizes = append(sizes, o.Cow.NR)
	}
	langs := append([]string{"seq"}, CowLangs...)

	section(o.Out, "Cowichan",
		fmt.Sprintf("Cowichan chain sweep: NR %v x Workers %v x implementation,\nexact equality asserted against seq; cxx and Qs run on the unified\ninternal/sched executor (task counters shown). ParallelSort row: %d\nrandom ints on the fork-join skeletons.", sizes, CowichanWorkers, sortBenchN))

	tb := newTable(o.Out)
	tb.row("NR", "Impl", "Workers", "time(s)", "comp(s)", "comm(s)", "spawned", "task-steals", "wait-parks")
	for _, nr := range sizes {
		p := o.Cow
		p.NR = nr
		if p.NW > nr {
			p.NW = nr
		}
		want := cowichan.Chain(cowichan.NewSeq(), p).Result
		for _, lang := range langs {
			for _, workers := range CowichanWorkers {
				if lang == "seq" && workers != 1 {
					continue // no pool to sweep
				}
				// Qs runs pooled at the sweep's worker count — handlers
				// multiplexed on the unified executor is the point of the
				// sweep; dedicated-goroutine mode is the other experiments'
				// territory.
				cfg := core.ConfigAll.WithWorkers(workers)
				var t cowichan.Timing
				var counters map[string]int64
				t = o.MeasureTiming(func() cowichan.Timing {
					im := NewImpl(lang, cfg, workers)
					defer im.Close()
					cr := cowichan.Chain(im, p)
					if !cr.Result.Equal(want) {
						panic(fmt.Sprintf("harness: %s diverges from seq at NR=%d workers=%d", lang, nr, workers))
					}
					counters = cowichanCounters(im)
					return cr.Timing
				})
				// Implementations on the sched substrate get an extra
				// instrumented run for the JSON row's latency percentiles.
				var pct map[string]float64
				if counters != nil {
					pct = obsPercentiles(func() {
						im := NewImpl(lang, cfg, workers)
						defer im.Close()
						cowichan.Chain(im, p)
					}, "sched.dispatch_wait_ns", "sched.task_wait_ns")
				}
				cells := []string{strconv.Itoa(nr), lang, strconv.Itoa(workers),
					Seconds(t.Total()), Seconds(t.Compute), Seconds(t.Comm), "-", "-", "-"}
				if counters != nil {
					cells[6] = fmt.Sprintf("%d", counters["tasks_spawned"])
					cells[7] = fmt.Sprintf("%d", counters["task_steals"])
					cells[8] = fmt.Sprintf("%d", counters["task_wait_parks"])
				}
				tb.row(cells...)
				o.Rec.Add(Result{
					Experiment: "cowichan",
					Labels: map[string]string{
						"task":    "chain",
						"impl":    lang,
						"nr":      strconv.Itoa(nr),
						"workers": strconv.Itoa(workers),
					},
					Medians: mergeMedians(map[string]float64{
						"seconds": t.Total().Seconds(),
						"compute": t.Compute.Seconds(),
						"comm":    t.Comm.Seconds(),
					}, pct),
					Counters: counters,
				})
			}
		}
	}
	tb.flush()
	o.cowichanSort()
}

// sortBenchN is the element count of the standalone ParallelSort row —
// large enough to split several levels past sortGrain.
const sortBenchN = 1 << 20

// cowichanSort measures sched.ParallelSort alone (the skeleton winnow
// leans on) across the worker sweep, with a sequential-stability check.
func (o Options) cowichanSort() {
	tb := newTable(o.Out)
	tb.row("Sort", "Workers", "time(s)", "spawned", "task-steals", "wait-parks")
	for _, workers := range CowichanWorkers {
		var spawned, steals, parks int64
		t := o.MeasureTiming(func() cowichan.Timing {
			rng := rand.New(rand.NewSource(11))
			data := make([]int64, sortBenchN)
			for i := range data {
				data[i] = rng.Int63()
			}
			e := sched.NewExecutor(workers)
			start := time.Now()
			sched.ParallelSort(e, data, func(a, b int64) bool { return a < b })
			d := time.Since(start)
			spawned, steals, parks = e.TaskCounters()
			e.Stop()
			for i := 1; i < len(data); i++ {
				if data[i-1] > data[i] {
					panic("harness: ParallelSort produced unsorted output")
				}
			}
			return cowichan.Timing{Compute: d}
		})
		d := t.Compute
		pct := obsPercentiles(func() {
			rng := rand.New(rand.NewSource(13))
			data := make([]int64, sortBenchN)
			for i := range data {
				data[i] = rng.Int63()
			}
			e := sched.NewExecutor(workers)
			sched.ParallelSort(e, data, func(a, b int64) bool { return a < b })
			e.Stop()
		}, "sched.dispatch_wait_ns", "sched.task_wait_ns")
		tb.row("parallel-sort", strconv.Itoa(workers), Seconds(d),
			fmt.Sprintf("%d", spawned), fmt.Sprintf("%d", steals), fmt.Sprintf("%d", parks))
		o.Rec.Add(Result{
			Experiment: "cowichan",
			Labels: map[string]string{
				"task":    "parallel-sort",
				"impl":    "cxx",
				"n":       strconv.Itoa(sortBenchN),
				"workers": strconv.Itoa(workers),
			},
			Medians: mergeMedians(map[string]float64{"seconds": d.Seconds()}, pct),
			Counters: map[string]int64{
				"tasks_spawned":   spawned,
				"task_steals":     steals,
				"task_wait_parks": parks,
			},
		})
	}
	tb.flush()
}
