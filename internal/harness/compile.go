package harness

import (
	"fmt"
	"net"
	"strconv"
	"time"

	"scoopqs/internal/compiler/interp"
	"scoopqs/internal/compiler/ir"
	"scoopqs/internal/compiler/passes"
	"scoopqs/internal/concbench"
	"scoopqs/internal/core"
	"scoopqs/internal/remote"
)

// The compile experiment wires the compiler stack into the runtime:
// every corpus IR program (internal/compiler/interp.Corpus — the
// semantics examples plus the paper's Fig. 14/15 optimization cases)
// runs naive and syncset-optimized on three backends — dedicated
// goroutines, the pooled executor (1 and 4 workers), and the mux
// transport — asserting exact outcome equality everywhere and, for
// the Fig. 14 copy loop, that static sync coalescing deletes exactly
// N+1 wire round-trips (one per iteration plus the exit sync). Any
// violation panics, so CI gates on the exit code. A second section
// benchmarks the guard-heavy SeparateWhen workloads (bounded buffer,
// Santa Claus) on the pooled executor with guard-retry counters and
// guard-wait percentiles.

// compileBackend is one execution backend of the experiment.
type compileBackend struct {
	name   string
	cfg    core.Config // local backends only
	remote bool
}

func compileBackends() []compileBackend {
	return []compileBackend{
		{name: "dedicated", cfg: core.ConfigStatic},
		{name: "pooled1", cfg: core.ConfigStatic.WithWorkers(1)},
		{name: "pooled4", cfg: core.ConfigStatic.WithWorkers(4)},
		{name: "mux", remote: true},
	}
}

// compileServe brings up a fresh server exposing p's handler variables
// (fresh model state each — handler state is server-side, so servers
// are never reused across runs) and returns a connected mux.
func compileServe(p interp.Program, hvs []string) (*remote.Mux, func(), error) {
	rt := core.New(core.ConfigAll)
	srv := remote.NewServer(rt)
	for _, hv := range hvs {
		h := rt.NewHandler(p.RemoteHandlerName(hv))
		procs := map[string]remote.Proc{}
		for name, fn := range interp.NewModel() {
			procs[name] = remote.Proc(fn)
		}
		srv.Expose(p.RemoteHandlerName(hv), h, procs)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Shutdown()
		return nil, nil, err
	}
	go srv.Serve(ln)
	mux, err := remote.DialMux("tcp", ln.Addr().String())
	if err != nil {
		srv.Close()
		rt.Shutdown()
		return nil, nil, err
	}
	return mux, func() { mux.Close(); srv.Close(); rt.Shutdown() }, nil
}

// compileRun executes one (program, variant, backend) cell and returns
// the outcome, the interpreter counters, and the wire round-trips the
// mux counted (0 for local backends).
func compileRun(p interp.Program, f *ir.Func, b compileBackend) (interp.Outcome, interp.Counters, uint64) {
	if !b.remote {
		rt := core.New(b.cfg)
		defer rt.Shutdown()
		out, ctrs, err := p.RunLocal(rt, f)
		if err != nil {
			panic(fmt.Sprintf("harness: compile %s on %s: %v", p.Name, b.name, err))
		}
		return out, ctrs, 0
	}
	mux, shutdown, err := compileServe(p, f.Handlers)
	if err != nil {
		panic(fmt.Sprintf("harness: compile %s server: %v", p.Name, err))
	}
	defer shutdown()
	out, ctrs, err := p.RunRemote(mux, f)
	if err != nil {
		panic(fmt.Sprintf("harness: compile %s on %s: %v", p.Name, b.name, err))
	}
	return out, ctrs, mux.Stats().RoundTrips
}

// Compile runs the compiler-integration experiment (see the package
// comment above; README "Compiler & sync elimination").
func (o Options) Compile() {
	reps := o.Reps
	if reps < 1 {
		reps = 1
	}
	backends := compileBackends()

	section(o.Out, "Compile: sync elimination that deletes real round-trips",
		"Every corpus IR program, naive vs syncset-optimized (passes.Coalesce),\non dedicated goroutines, the pooled executor (1 and 4 workers), and the\nmux transport. Outcomes must agree exactly across all cells; on the\nwire, the Fig. 14 copy loop must shed exactly N+1 round-trips. syncs\nand RT columns are naive->optimized; violations panic.")

	tb := newTable(o.Out)
	tb.row("Program", "removed", "syncs(exec)", "wireRT", "dRT", "outcome")
	for _, p := range interp.Corpus() {
		naiveF, err := p.Parse()
		if err != nil {
			panic(fmt.Sprintf("harness: compile parse %s: %v", p.Name, err))
		}
		res, err := passes.Coalesce(naiveF)
		if err != nil {
			panic(fmt.Sprintf("harness: compile coalesce %s: %v", p.Name, err))
		}

		var ref interp.Outcome
		var refSet bool
		var naiveCtrs, optCtrs interp.Counters // dedicated backend's
		var naiveRT, optRT int64               // mux backend's, adapter-counted
		var naiveMuxRT, optMuxRT uint64        // mux backend's, transport-counted
		for _, b := range backends {
			for _, v := range []struct {
				name string
				f    *ir.Func
			}{{"naive", naiveF}, {"opt", res.Func}} {
				out, ctrs, muxRT := compileRun(p, v.f, b)
				if !refSet {
					ref, refSet = out, true
				} else if !ref.Equal(out) {
					panic(fmt.Sprintf("harness: compile OUTCOME DIVERGED: %s %s/%s:\n  ref: %s\n  got: %s",
						p.Name, b.name, v.name, ref, out))
				}
				switch {
				case b.name == "dedicated" && v.name == "naive":
					naiveCtrs = ctrs
				case b.name == "dedicated" && v.name == "opt":
					optCtrs = ctrs
				case b.remote && v.name == "naive":
					naiveRT, naiveMuxRT = ctrs.RoundTrips, muxRT
				case b.remote && v.name == "opt":
					optRT, optMuxRT = ctrs.RoundTrips, muxRT
				}
			}
		}

		if optCtrs.SyncsExecuted > naiveCtrs.SyncsExecuted || optRT > naiveRT {
			panic(fmt.Sprintf("harness: compile %s: optimized cost above naive (syncs %d>%d or RT %d>%d)",
				p.Name, optCtrs.SyncsExecuted, naiveCtrs.SyncsExecuted, optRT, naiveRT))
		}
		if p.Name == "copyloop" {
			// The acceptance criterion: one round-trip per iteration
			// plus the exit sync, gone — counted by the interpreter's
			// adapters and cross-checked against the transport's own
			// reply-expecting frame counter (the fp bookkeeping queries
			// cancel between the two variants).
			if got, want := naiveRT-optRT, p.N+1; got != want {
				panic(fmt.Sprintf("harness: compile copyloop ROUND-TRIP REDUCTION %d, want %d (naive %d, opt %d)",
					got, want, naiveRT, optRT))
			}
			if got, want := naiveMuxRT-optMuxRT, uint64(p.N+1); got != want {
				panic(fmt.Sprintf("harness: compile copyloop mux round-trip reduction %d, want %d", got, want))
			}
		}

		tb.row(p.Name,
			strconv.Itoa(len(res.Removed)),
			fmt.Sprintf("%d->%d", naiveCtrs.SyncsExecuted, optCtrs.SyncsExecuted),
			fmt.Sprintf("%d->%d", naiveRT, optRT),
			strconv.FormatInt(naiveRT-optRT, 10),
			"equal")

		o.Rec.Add(Result{
			Experiment: "compile",
			Labels:     map[string]string{"program": p.Name, "kind": "corpus"},
			Counters: map[string]int64{
				"removed_syncs": int64(len(res.Removed)),
				"syncs_naive":   naiveCtrs.SyncsExecuted,
				"syncs_opt":     optCtrs.SyncsExecuted,
				"wire_rt_naive": naiveRT,
				"wire_rt_opt":   optRT,
				"wire_rt_saved": naiveRT - optRT,
				"asyncs":        naiveCtrs.AsyncCalls,
				"local_queries": naiveCtrs.LocalQueries,
				"mux_rt_naive":  int64(naiveMuxRT),
				"mux_rt_opt":    int64(optMuxRT),
			},
		})
	}
	tb.flush()
	fmt.Fprintln(o.Out, "outcome equality: PASS (all programs, all backends, both variants)")

	// Guard workloads: SeparateWhen-heavy scenarios on the pooled
	// executor, with retry counters and wait-time percentiles.
	section(o.Out, "Guard workloads: wait conditions under pooled scheduling",
		fmt.Sprintf("Bounded buffer (capacity 2) and the Santa Claus problem, all waiting\nexpressed as SeparateWhen guards on one handler, on the pooled executor\nat 1 and 4 workers (ConfigAll, N=%d, M=%d). Self-checks run every rep.",
			o.Conc.N, o.Conc.M))
	gt := newTable(o.Out)
	gt.row("Workload", "pool", "time(s)", "retries", "parks", "p50wait(us)", "p99wait(us)")
	for _, w := range concbench.GuardNames {
		for _, pool := range []int{1, 4} {
			cfg := core.ConfigAll.WithWorkers(pool)
			var ds []time.Duration
			var st core.Stats
			for r := 0; r < reps; r++ {
				ds = append(ds, o.MeasureWall(func() {
					var err error
					st, err = concbench.RunGuard(w, cfg, o.Conc)
					if err != nil {
						panic(fmt.Sprintf("harness: compile guard %s: %v", w, err))
					}
				}))
			}
			med := median(ds)
			pct := obsPercentiles(func() {
				if _, err := concbench.RunGuard(w, cfg, o.Conc); err != nil {
					panic(fmt.Sprintf("harness: compile guard %s (instrumented): %v", w, err))
				}
			}, "core.guard_wait_ns")
			us := func(key string) string {
				if v, ok := pct[key]; ok {
					return fmt.Sprintf("%.0f", v/1e3)
				}
				return "-"
			}
			gt.row(w, strconv.Itoa(pool), Seconds(med),
				strconv.FormatInt(st.GuardRetries, 10),
				strconv.FormatInt(st.AwaitParks, 10),
				us("p50_guard_wait_ns"), us("p99_guard_wait_ns"))

			o.Rec.Add(Result{
				Experiment: "compile",
				Labels:     map[string]string{"program": w, "kind": "guard", "pool": strconv.Itoa(pool)},
				Medians:    mergeMedians(map[string]float64{"seconds": med.Seconds()}, pct),
				Counters: map[string]int64{
					"guard_retries": st.GuardRetries,
					"await_parks":   st.AwaitParks,
				},
			})
		}
	}
	gt.flush()
}
