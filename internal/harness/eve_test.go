package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestEveExperimentRenders(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Eve()
	out := buf.String()
	for _, want := range []string{"EVE/Qs", "parallel(s)", "EVE/Qs over EVE", "paper: 7.7x"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// All three variant rows must be present.
	for _, row := range []string{"\nEVE ", "\nEVE/Qs ", "\nQs "} {
		if !strings.Contains(out, row) {
			t.Errorf("missing variant row %q", strings.TrimSpace(row))
		}
	}
}
