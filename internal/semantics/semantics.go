// Package semantics is an executable model of the paper's Fig. 3: the
// SCOOP/Qs operational semantics as a small-step transition system over
// abstract configurations, with exhaustive exploration of every
// interleaving. It exists to validate the runtime against the formal
// model: properties the exploration proves for small programs (for
// example, that the Fig. 1 program admits exactly two execution orders)
// are asserted of internal/core by the runtime's own tests.
//
// A configuration is a parallel composition of handler triples
// (h, qh, s): identity, request queue, and remaining program. The
// request queue is the queue of queues — a FIFO of handler-tagged
// private queues whose entries are logged actions. The transition rules
// implemented are exactly the paper's: separate (generalized to
// multiple reservations, §2.4), call, query, sync, run, end, plus the
// structural sequencing rules.
package semantics

import (
	"fmt"
	"sort"
	"strings"
)

// Stmt is a program statement of the abstract syntax
//
//	s ::= separate X s | call(x, f) | query(x, f) |
//	      wait h | release h | end | skip
//
// wait/release/end are runtime statements produced by the rules.
type Stmt struct {
	Kind    StmtKind
	Targets []string // Separate: reserved handlers (the set X)
	X       string   // Call/Query/Wait/Release target
	F       string   // Call/Query routine name
	Body    []Stmt   // Separate body
}

// StmtKind enumerates statement forms.
type StmtKind uint8

// Statement kinds.
const (
	SSkip StmtKind = iota
	SSeparate
	SCall
	SQuery
	SWait
	SRelease
	SEnd // executed by a handler: finish the current private queue
)

// Convenience constructors mirroring the paper's syntax.
func Separate(targets []string, body ...Stmt) Stmt {
	return Stmt{Kind: SSeparate, Targets: targets, Body: body}
}
func Call(x, f string) Stmt  { return Stmt{Kind: SCall, X: x, F: f} }
func Query(x, f string) Stmt { return Stmt{Kind: SQuery, X: x, F: f} }

// action is an entry of a private queue: a routine to execute, a
// release-to-client marker (from a query), or the END marker.
type action struct {
	kind aKind
	f    string
	h    string // release target (the waiting client)
}

type aKind uint8

const (
	aCall aKind = iota
	aRelease
	aEnd
)

// privQ is one private queue: the client it belongs to and its logged
// actions.
type privQ struct {
	client string
	items  []action
}

// handler is one triple (h, qh, s).
type handler struct {
	queue []privQ
	prog  []Stmt // sequential composition, head = next statement
}

// State is a configuration: the parallel composition of handlers. The
// Log records every executed call as "handler.f" in execution order —
// the observable the reasoning guarantees constrain.
type State struct {
	handlers map[string]*handler
	Log      []string
}

// NewState builds a configuration from handler programs (handlers with
// no program are pure suppliers).
func NewState(progs map[string][]Stmt) *State {
	st := &State{handlers: map[string]*handler{}}
	for h, p := range progs {
		st.handlers[h] = &handler{prog: append([]Stmt(nil), p...)}
	}
	return st
}

// clone deep-copies the configuration.
func (st *State) clone() *State {
	out := &State{
		handlers: make(map[string]*handler, len(st.handlers)),
		Log:      append([]string(nil), st.Log...),
	}
	for name, h := range st.handlers {
		nh := &handler{prog: append([]Stmt(nil), h.prog...)}
		nh.queue = make([]privQ, len(h.queue))
		for i, q := range h.queue {
			nh.queue[i] = privQ{client: q.client, items: append([]action(nil), q.items...)}
		}
		out.handlers[name] = nh
	}
	return out
}

// key is a canonical fingerprint for visited-state deduplication.
func (st *State) key() string {
	names := make([]string, 0, len(st.handlers))
	for n := range st.handlers {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		h := st.handlers[n]
		fmt.Fprintf(&sb, "%s|%v|", n, h.prog)
		for _, q := range h.queue {
			fmt.Fprintf(&sb, "[%s:%v]", q.client, q.items)
		}
		sb.WriteByte(';')
	}
	sb.WriteString(strings.Join(st.Log, ","))
	return sb.String()
}

// lastQ returns the LAST private queue of client c in h's request queue
// (lookup and update work on the last occurrence — §2.3).
func (h *handler) lastQ(c string) *privQ {
	for i := len(h.queue) - 1; i >= 0; i-- {
		if h.queue[i].client == c {
			return &h.queue[i]
		}
	}
	return nil
}

// Terminal reports whether no rule applies anywhere: every program has
// run to completion and every queue is drained.
func (st *State) Terminal() bool { return len(st.successors()) == 0 }

// Stuck reports whether the configuration is terminal but some handler
// still has work it can never perform — a deadlock.
func (st *State) Stuck() bool {
	if !st.Terminal() {
		return false
	}
	for _, h := range st.handlers {
		if len(h.prog) > 0 || len(h.queue) > 0 {
			return true
		}
	}
	return false
}

// successors applies every enabled rule once, each yielding one next
// state.
func (st *State) successors() []*State {
	var out []*State
	names := make([]string, 0, len(st.handlers))
	for n := range st.handlers {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, hn := range names {
		h := st.handlers[hn]
		if len(h.prog) == 0 {
			// skip program: the run/end rules.
			out = append(out, st.runRule(hn)...)
			continue
		}
		s := h.prog[0]
		switch s.Kind {
		case SSkip:
			ns := st.clone()
			ns.handlers[hn].prog = ns.handlers[hn].prog[1:]
			out = append(out, ns)
		case SSeparate:
			// Generalized separate: atomically append an empty private
			// queue to every target; body then ends each (endMany).
			ns := st.clone()
			nh := ns.handlers[hn]
			rest := append([]Stmt(nil), s.Body...)
			for _, x := range s.Targets {
				ns.handlers[x].queue = append(ns.handlers[x].queue, privQ{client: hn})
				rest = append(rest, Stmt{Kind: SEnd, X: x})
			}
			nh.prog = append(rest, nh.prog[1:]...)
			out = append(out, ns)
		case SCall:
			ns := st.clone()
			q := ns.handlers[s.X].lastQ(hn)
			if q == nil {
				break // call outside a reservation: no rule applies
			}
			q.items = append(q.items, action{kind: aCall, f: s.F})
			ns.handlers[hn].prog = ns.handlers[hn].prog[1:]
			out = append(out, ns)
		case SQuery:
			ns := st.clone()
			q := ns.handlers[s.X].lastQ(hn)
			if q == nil {
				break
			}
			q.items = append(q.items,
				action{kind: aCall, f: s.F},
				action{kind: aRelease, h: hn})
			nh := ns.handlers[hn]
			nh.prog = append([]Stmt{{Kind: SWait, X: s.X}}, nh.prog[1:]...)
			out = append(out, ns)
		case SWait:
			// Handled by the sync rule from the supplier's side.
		case SEnd:
			ns := st.clone()
			q := ns.handlers[s.X].lastQ(hn)
			if q == nil {
				break
			}
			q.items = append(q.items, action{kind: aEnd})
			ns.handlers[hn].prog = ns.handlers[hn].prog[1:]
			out = append(out, ns)
		}
	}
	return out
}

// runRule fires the run/end/sync rules for an idle handler.
func (st *State) runRule(hn string) []*State {
	h := st.handlers[hn]
	if len(h.queue) == 0 {
		return nil
	}
	head := h.queue[0]
	if len(head.items) == 0 {
		return nil // client still logging; nothing to take
	}
	a := head.items[0]
	switch a.kind {
	case aEnd:
		// end rule: drop the finished private queue.
		ns := st.clone()
		nh := ns.handlers[hn]
		nh.queue = nh.queue[1:]
		return []*State{ns}
	case aCall:
		ns := st.clone()
		nh := ns.handlers[hn]
		nh.queue[0].items = nh.queue[0].items[1:]
		ns.Log = append(ns.Log, hn+"."+a.f)
		return []*State{ns}
	case aRelease:
		// sync rule: only fires when the client is in wait x for us.
		client := st.handlers[a.h]
		if len(client.prog) == 0 || client.prog[0].Kind != SWait || client.prog[0].X != hn {
			return nil
		}
		ns := st.clone()
		nh := ns.handlers[hn]
		nh.queue[0].items = nh.queue[0].items[1:]
		nc := ns.handlers[a.h]
		nc.prog = nc.prog[1:]
		return []*State{ns}
	}
	return nil
}

// Result of an exhaustive exploration.
type Result struct {
	// Logs is the set of distinct complete execution logs (joined with
	// spaces), for terminal non-stuck states.
	Logs map[string]bool
	// Deadlocks counts distinct stuck terminal states.
	Deadlocks int
	// States is the number of distinct configurations visited.
	States int
}

// Explore exhaustively enumerates every interleaving from the initial
// state (bounded by maxStates as a safety net) and classifies the
// terminal states.
func Explore(initial *State, maxStates int) (*Result, error) {
	if maxStates <= 0 {
		maxStates = 200_000
	}
	res := &Result{Logs: map[string]bool{}}
	seen := map[string]bool{}
	stack := []*State{initial}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k := st.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if len(seen) > maxStates {
			return nil, fmt.Errorf("semantics: state space exceeds %d states", maxStates)
		}
		succ := st.successors()
		if len(succ) == 0 {
			if st.Stuck() {
				res.Deadlocks++
			} else {
				res.Logs[strings.Join(st.Log, " ")] = true
			}
			continue
		}
		stack = append(stack, succ...)
	}
	res.States = len(seen)
	return res, nil
}
