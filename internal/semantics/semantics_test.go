package semantics

import (
	"strings"
	"testing"
)

// Fig. 1: two clients with separate blocks on the same handler x.
// The paper: "there are only two possible interleavings".
func TestFig1ExactlyTwoInterleavings(t *testing.T) {
	st := NewState(map[string][]Stmt{
		"x": nil, // supplier
		"t1": {Separate([]string{"x"},
			Call("x", "foo"),
			Call("x", "bar"),
		)},
		"t2": {Separate([]string{"x"},
			Call("x", "bar"),
			Call("x", "baz"),
		)},
	})
	res, err := Explore(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocks != 0 {
		t.Fatalf("unexpected deadlocks: %d", res.Deadlocks)
	}
	want1 := "x.foo x.bar x.bar x.baz"
	want2 := "x.bar x.baz x.foo x.bar"
	if len(res.Logs) != 2 || !res.Logs[want1] || !res.Logs[want2] {
		t.Fatalf("logs = %v, want exactly {%q, %q}", keys(res.Logs), want1, want2)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Queries synchronize: the client cannot proceed past a query until the
// supplier reaches it, so the log order respects the wait.
func TestQuerySynchronizes(t *testing.T) {
	st := NewState(map[string][]Stmt{
		"x": nil,
		"c": {Separate([]string{"x"},
			Call("x", "a"),
			Query("x", "q"),
			Call("x", "b"),
		)},
	})
	res, err := Explore(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocks != 0 {
		t.Fatalf("deadlocks: %d", res.Deadlocks)
	}
	if len(res.Logs) != 1 || !res.Logs["x.a x.q x.b"] {
		t.Fatalf("logs = %v", keys(res.Logs))
	}
}

// §2.4 / Fig. 5: multi-handler reservation is atomic, so two writers
// setting (x, y) to red-red and blue-blue can only yield the orders
// where each pair is contiguous per handler — never red on x and blue
// on y for an observer with the same reservation discipline.
func TestFig5AtomicPairReservation(t *testing.T) {
	st := NewState(map[string][]Stmt{
		"x": nil, "y": nil,
		"t1": {Separate([]string{"x", "y"},
			Call("x", "red"),
			Call("y", "red"),
		)},
		"t2": {Separate([]string{"x", "y"},
			Call("x", "blue"),
			Call("y", "blue"),
		)},
	})
	res, err := Explore(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocks != 0 {
		t.Fatalf("deadlocks: %d", res.Deadlocks)
	}
	// Project each log onto x and y: the last write per handler must
	// agree (both red or both blue) because reservations are atomic
	// and FIFO per handler.
	for log := range res.Logs {
		lastX, lastY := "", ""
		for _, ev := range strings.Fields(log) {
			switch {
			case strings.HasPrefix(ev, "x."):
				lastX = strings.TrimPrefix(ev, "x.")
			case strings.HasPrefix(ev, "y."):
				lastY = strings.TrimPrefix(ev, "y.")
			}
		}
		if lastX != lastY {
			t.Fatalf("final colours diverge in log %q", log)
		}
	}
}

// §2.5, first half: the Fig. 6 program (nested reservations in
// inconsistent order) cannot deadlock under SCOOP/Qs because
// reservations never block.
func TestFig6NoDeadlockWithoutQueries(t *testing.T) {
	st := NewState(map[string][]Stmt{
		"x": nil, "y": nil,
		"c1": {Separate([]string{"x"},
			Separate([]string{"y"},
				Call("x", "foo"),
				Call("y", "bar"),
			),
		)},
		"c2": {Separate([]string{"y"},
			Separate([]string{"x"},
				Call("x", "foo"),
				Call("y", "bar"),
			),
		)},
	})
	res, err := Explore(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocks != 0 {
		t.Fatalf("Fig. 6 without queries deadlocked %d times; the paper says it cannot", res.Deadlocks)
	}
	if len(res.Logs) == 0 {
		t.Fatal("no terminal logs")
	}
}

// §2.5, second half: adding queries to the innermost blocks
// reintroduces deadlock on some schedules — and not on all.
func TestFig6QueriesCanDeadlock(t *testing.T) {
	st := NewState(map[string][]Stmt{
		"x": nil, "y": nil,
		"c1": {Separate([]string{"x"},
			Separate([]string{"y"},
				Query("x", "qx"),
				Query("y", "qy"),
			),
		)},
		"c2": {Separate([]string{"y"},
			Separate([]string{"x"},
				Query("y", "qy"),
				Query("x", "qx"),
			),
		)},
	})
	res, err := Explore(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocks == 0 {
		t.Fatal("no deadlocks found; the paper says queries make Fig. 6 deadlock on some schedules")
	}
	if len(res.Logs) == 0 {
		t.Fatal("every schedule deadlocked; only some should")
	}
}

// Per-client order: a single client's calls execute in program order.
func TestProgramOrderPreserved(t *testing.T) {
	st := NewState(map[string][]Stmt{
		"x": nil,
		"c": {Separate([]string{"x"},
			Call("x", "1"), Call("x", "2"), Call("x", "3"),
		)},
	})
	res, err := Explore(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Logs) != 1 || !res.Logs["x.1 x.2 x.3"] {
		t.Fatalf("logs = %v", keys(res.Logs))
	}
}

// Two suppliers, one client: calls to different handlers may interleave
// across handlers but stay ordered within each.
func TestCrossHandlerConcurrency(t *testing.T) {
	st := NewState(map[string][]Stmt{
		"x": nil, "y": nil,
		"c": {Separate([]string{"x", "y"},
			Call("x", "a"), Call("y", "b"),
		)},
	})
	res, err := Explore(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The two executions are concurrent: both orders of x.a / y.b.
	if len(res.Logs) != 2 {
		t.Fatalf("logs = %v, want both interleavings", keys(res.Logs))
	}
	for log := range res.Logs {
		if !strings.Contains(log, "x.a") || !strings.Contains(log, "y.b") {
			t.Fatalf("missing events in %q", log)
		}
	}
}

// The state-space bound turns runaway exploration into an error.
func TestExploreBound(t *testing.T) {
	st := NewState(map[string][]Stmt{
		"x": nil, "y": nil, "z": nil,
		"a": {Separate([]string{"x"}, Call("x", "1"), Call("x", "2"))},
		"b": {Separate([]string{"y"}, Call("y", "1"), Call("y", "2"))},
		"c": {Separate([]string{"z"}, Call("z", "1"), Call("z", "2"))},
	})
	if _, err := Explore(st, 5); err == nil {
		t.Fatal("expected state-space bound error")
	}
}
