// Package chaos injects deterministic transport faults under the
// remote protocol, for tests and for qsbench -experiment chaos. A
// Profile describes what goes wrong — added latency, periodic
// mid-stream stalls, partial (chunked) writes and reads, byte-exact
// truncation on either direction, abrupt resets — and Wrap applies it
// to any net.Conn. Everything is driven by a seeded PRNG per
// direction, so a failing run replays exactly from its seed.
//
// The package deliberately does not import internal/remote: it sits
// below the protocol (wrapping the transport) and beside it (Flood
// speaks just enough of the wire format to act as a credit-abusing
// client), so remote's tests can import chaos without a cycle. The
// few frame constants Flood needs are mirrored here and pinned
// against a live server by the harness's chaos experiment.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scoopqs/internal/obs"
)

// Injected fault errors. Both are terminal for the wrapped connection;
// they are what the *injecting* side's writes report, while the peer
// observes the raw transport effect (a short stream or a reset).
var (
	// ErrInjectedTruncate is returned by the Write that went through
	// only partially before the connection was cut mid-frame.
	ErrInjectedTruncate = errors.New("chaos: injected truncation")
	// ErrInjectedReset is returned by the Write that was dropped
	// entirely when the connection was cut.
	ErrInjectedReset = errors.New("chaos: injected reset")
)

// Profile is one fault scenario. The zero value injects nothing (Wrap
// returns the conn unwrapped); each field arms one fault independently,
// so profiles compose.
type Profile struct {
	Name string

	// LatencyMin/LatencyMax delay each Write by a uniform random
	// duration from [LatencyMin, LatencyMax]. Armed when LatencyMax > 0.
	LatencyMin, LatencyMax time.Duration

	// StallEvery freezes every StallEvery'th Write for StallDur before
	// any bytes move — a peer that periodically stops mid-activity.
	StallEvery int
	StallDur   time.Duration

	// ChunkMax splits each Write into random chunks of at most ChunkMax
	// bytes. All bytes are still written (the io.Writer contract: a
	// short count only ever comes with an error); what the fault
	// exercises is the peer's reassembly of frames that arrive in
	// arbitrary slivers.
	ChunkMax int

	// TruncateAfter cuts the connection after exactly that many bytes
	// have been written: the Write that crosses the boundary delivers
	// the prefix, closes the conn, and returns ErrInjectedTruncate. The
	// peer sees a stream ending mid-frame.
	TruncateAfter int64

	// ResetAfter cuts the connection abruptly at that many bytes: the
	// Write that would take the stream past the threshold delivers
	// nothing, closes the conn, and returns ErrInjectedReset.
	ResetAfter int64

	// ReadLatencyMin/ReadLatencyMax delay each Read by a uniform random
	// duration — a peer whose replies dribble in late. Armed when
	// ReadLatencyMax > 0.
	ReadLatencyMin, ReadLatencyMax time.Duration

	// ReadChunkMax caps each Read at a random sliver of at most that
	// many bytes, so frames reassemble from arbitrary fragments on the
	// receiving side (the read-path mirror of ChunkMax).
	ReadChunkMax int

	// ReadTruncateAfter cuts the connection after exactly that many
	// bytes have been read: the stream dies mid-frame from the reader's
	// point of view, and the conn is closed so the peer notices too.
	ReadTruncateAfter int64
}

// active reports whether the profile injects anything at all.
func (p *Profile) active() bool {
	return p.LatencyMax > 0 || p.StallEvery > 0 || p.ChunkMax > 0 ||
		p.TruncateAfter > 0 || p.ResetAfter > 0 ||
		p.ReadLatencyMax > 0 || p.ReadChunkMax > 0 || p.ReadTruncateAfter > 0
}

// Counts is a snapshot of the faults a wrapped connection has injected.
type Counts struct {
	Delays    uint64 // latency injections
	Stalls    uint64 // periodic mid-stream stalls
	Chunks    uint64 // extra Write calls from partial-write splitting
	Truncates uint64 // at most 1: the connection dies with it
	Resets    uint64 // at most 1

	ReadDelays    uint64 // read-side latency injections
	ReadChunks    uint64 // Reads clamped to a sliver
	ReadTruncates uint64 // at most 1: the stream dies mid-frame
}

// Total sums every injected fault, for run tables.
func (c Counts) Total() uint64 {
	return c.Delays + c.Stalls + c.Chunks + c.Truncates + c.Resets +
		c.ReadDelays + c.ReadChunks + c.ReadTruncates
}

// fault codes carried in obs chaos.fault events.
const (
	faultStall = iota + 1
	faultTruncate
	faultReset
)

// Conn is a net.Conn with fault injection on both directions. Write
// faults manifest to the peer as read-side symptoms (slow, short, or
// dead streams); read faults hit the wrapping side's own reader — the
// frame reassembly and slab bookkeeping of whoever holds this Conn.
// Each direction has its own PRNG and lock, so the two goroutines of a
// mux never contend and each fault sequence replays from the seed.
type Conn struct {
	net.Conn
	p Profile

	// The mux discipline is one writer goroutine per connection, so a
	// single writer-side PRNG needs no lock for that use; the mutex
	// makes Wrap safe for arbitrary callers too.
	mu      sync.Mutex
	rng     *rand.Rand
	written int64
	writes  int64
	cut     bool

	// Read-side mirror state, under its own lock.
	rmu  sync.Mutex
	rrng *rand.Rand
	read int64
	rcut bool

	counts struct {
		delays, stalls, chunks, truncates, resets atomic.Uint64
		rdelays, rchunks, rtruncates              atomic.Uint64
	}
}

// Wrap applies p to conn, seeding one fault PRNG per direction so the
// exact fault sequence replays from the seed. A profile that injects
// nothing returns conn itself.
func Wrap(conn net.Conn, p Profile, seed int64) net.Conn {
	if !p.active() {
		return conn
	}
	return &Conn{
		Conn: conn,
		p:    p,
		rng:  rand.New(rand.NewSource(seed)),
		rrng: rand.New(rand.NewSource(seed ^ 0x5EED_4EAD)),
	}
}

// Counts reports the faults injected so far.
func (c *Conn) Counts() Counts {
	return Counts{
		Delays:        c.counts.delays.Load(),
		Stalls:        c.counts.stalls.Load(),
		Chunks:        c.counts.chunks.Load(),
		Truncates:     c.counts.truncates.Load(),
		Resets:        c.counts.resets.Load(),
		ReadDelays:    c.counts.rdelays.Load(),
		ReadChunks:    c.counts.rchunks.Load(),
		ReadTruncates: c.counts.rtruncates.Load(),
	}
}

// Write injects the profile's write-path faults, then forwards to the
// wrapped connection.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cut {
		return 0, net.ErrClosed
	}
	c.writes++

	if c.p.LatencyMax > 0 {
		d := c.p.LatencyMin
		if span := c.p.LatencyMax - c.p.LatencyMin; span > 0 {
			d += time.Duration(c.rng.Int63n(int64(span) + 1))
		}
		c.counts.delays.Add(1)
		if obs.Enabled() {
			obs.Emit(obs.KindChaosDelay, 0, int64(d))
		}
		time.Sleep(d)
	}
	if c.p.StallEvery > 0 && c.writes%int64(c.p.StallEvery) == 0 {
		c.counts.stalls.Add(1)
		if obs.Enabled() {
			obs.Emit(obs.KindChaosFault, 0, faultStall)
		}
		time.Sleep(c.p.StallDur)
	}
	if c.p.ResetAfter > 0 && c.written+int64(len(b)) > c.p.ResetAfter {
		c.counts.resets.Add(1)
		if obs.Enabled() {
			obs.Emit(obs.KindChaosFault, 0, faultReset)
		}
		c.cut = true
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	if c.p.TruncateAfter > 0 && c.written+int64(len(b)) > c.p.TruncateAfter {
		n := int(c.p.TruncateAfter - c.written)
		if n > 0 {
			n, _ = c.Conn.Write(b[:n]) //nolint:errcheck // the cut below is the outcome either way
			c.written += int64(n)
		}
		c.counts.truncates.Add(1)
		if obs.Enabled() {
			obs.Emit(obs.KindChaosFault, 0, faultTruncate)
		}
		c.cut = true
		c.Conn.Close()
		return n, ErrInjectedTruncate
	}

	if c.p.ChunkMax > 0 && len(b) > c.p.ChunkMax {
		total := 0
		for len(b) > 0 {
			n := c.rng.Intn(c.p.ChunkMax) + 1
			if n > len(b) {
				n = len(b)
			}
			w, err := c.Conn.Write(b[:n])
			total += w
			if err != nil {
				return total, err
			}
			b = b[n:]
			c.written += int64(w)
			c.counts.chunks.Add(1)
		}
		return total, nil
	}

	n, err := c.Conn.Write(b)
	c.written += int64(n)
	return n, err
}

// Read injects the profile's read-path faults, then forwards to the
// wrapped connection. Latency and slivers keep the io.Reader contract
// (every byte still arrives, just late or fragmented); truncation ends
// the stream mid-frame and closes the conn so the peer notices too.
func (c *Conn) Read(b []byte) (int, error) {
	c.rmu.Lock()
	if c.rcut {
		c.rmu.Unlock()
		return 0, net.ErrClosed
	}
	if c.p.ReadLatencyMax > 0 {
		d := c.p.ReadLatencyMin
		if span := c.p.ReadLatencyMax - c.p.ReadLatencyMin; span > 0 {
			d += time.Duration(c.rrng.Int63n(int64(span) + 1))
		}
		c.counts.rdelays.Add(1)
		if obs.Enabled() {
			obs.Emit(obs.KindChaosDelay, 1, int64(d))
		}
		time.Sleep(d)
	}
	limit := len(b)
	if c.p.ReadChunkMax > 0 && limit > c.p.ReadChunkMax {
		limit = c.rrng.Intn(c.p.ReadChunkMax) + 1
		c.counts.rchunks.Add(1)
	}
	if c.p.ReadTruncateAfter > 0 {
		remain := c.p.ReadTruncateAfter - c.read
		if remain <= 0 {
			c.rcut = true
			c.counts.rtruncates.Add(1)
			if obs.Enabled() {
				obs.Emit(obs.KindChaosFault, 1, faultTruncate)
			}
			c.rmu.Unlock()
			c.Conn.Close()
			return 0, ErrInjectedTruncate
		}
		if int64(limit) > remain {
			limit = int(remain)
		}
	}
	c.rmu.Unlock()
	n, err := c.Conn.Read(b[:limit])
	c.rmu.Lock()
	c.read += int64(n)
	c.rmu.Unlock()
	return n, err
}

// Mirrored wire constants for Flood. These must track internal/remote's
// frame kinds; the harness chaos experiment exercises Flood against a
// live Server, so drift fails loudly there.
const (
	frameBegin = 0x01
	frameCall  = 0x03
)

// Flood encodes a credit-abusing client's burst: one BEGIN opening
// handler on channel 1, then n zero-argument CALLs of proc — no reads,
// no credit accounting, just frames. Written raw to a server
// connection, it is a peer that ignores CREDIT entirely; a server with
// a window of w must quarantine the channel after admitting at most its
// allowance, which is what the chaos experiment asserts.
func Flood(handler, proc string, n int) []byte {
	buf := make([]byte, 0, 16+len(handler)+n*(4+len(proc)))
	buf = append(buf, frameBegin, 1) // channel 1
	buf = appendUvarint(buf, uint64(len(handler)))
	buf = append(buf, handler...)
	for i := 0; i < n; i++ {
		buf = append(buf, frameCall, 1)
		buf = appendUvarint(buf, uint64(len(proc)))
		buf = append(buf, proc...)
		buf = appendUvarint(buf, 0) // zero args
	}
	return buf
}

// appendUvarint is binary.AppendUvarint without the import: the frame
// fields Flood emits are plain base-128 varints.
func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// String labels a profile for run output and artifacts.
func (p Profile) String() string {
	if p.Name != "" {
		return p.Name
	}
	return fmt.Sprintf("chaos(latency=%v..%v stall=%d/%v chunk=%d trunc=%d reset=%d rlatency=%v..%v rchunk=%d rtrunc=%d)",
		p.LatencyMin, p.LatencyMax, p.StallEvery, p.StallDur, p.ChunkMax, p.TruncateAfter, p.ResetAfter,
		p.ReadLatencyMin, p.ReadLatencyMax, p.ReadChunkMax, p.ReadTruncateAfter)
}
