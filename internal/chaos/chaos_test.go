package chaos

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// recordConn is a net.Conn sink that records the size of every Write —
// enough to observe the chunking the wrapper injects.
type recordConn struct {
	net.Conn // nil: only Write/Close are exercised
	sizes    []int
	data     bytes.Buffer
}

func (r *recordConn) Write(b []byte) (int, error) {
	r.sizes = append(r.sizes, len(b))
	return r.data.Write(b)
}
func (r *recordConn) Close() error { return nil }

func TestWrapZeroProfileIsPassThrough(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if w := Wrap(c1, Profile{Name: "baseline"}, 1); w != c1 {
		t.Fatal("inactive profile must not wrap the conn")
	}
}

// TestChunkingIsSeedDeterministic pins the replayability contract: the
// same profile and seed split a write into the identical chunk
// sequence, and the split never loses or reorders bytes.
func TestChunkingIsSeedDeterministic(t *testing.T) {
	payload := bytes.Repeat([]byte("deterministic-fault-injection"), 64)
	split := func(seed int64) ([]int, []byte) {
		rec := &recordConn{}
		w := Wrap(rec, Profile{ChunkMax: 17}, seed)
		n, err := w.Write(payload)
		if err != nil || n != len(payload) {
			t.Fatalf("chunked write: n=%d err=%v (io.Writer contract: full count, nil error)", n, err)
		}
		return rec.sizes, rec.data.Bytes()
	}
	sizesA, dataA := split(42)
	sizesB, dataB := split(42)
	if len(sizesA) < 2 {
		t.Fatalf("ChunkMax=17 produced %d chunks for %d bytes", len(sizesA), len(payload))
	}
	for i := range sizesA {
		if sizesA[i] != sizesB[i] {
			t.Fatalf("same seed, different chunking at %d: %d vs %d", i, sizesA[i], sizesB[i])
		}
	}
	if !bytes.Equal(dataA, payload) || !bytes.Equal(dataB, payload) {
		t.Fatal("chunking corrupted the byte stream")
	}
	sizesC, _ := split(43)
	same := len(sizesC) == len(sizesA)
	for i := 0; same && i < len(sizesA); i++ {
		same = sizesA[i] == sizesC[i]
	}
	if same {
		t.Fatal("different seeds produced the identical chunk sequence")
	}
}

// TestTruncateCutsMidStream pins byte-exact truncation: the peer
// receives exactly TruncateAfter bytes and then a terminated stream,
// while the injecting side's Write reports the cut.
func TestTruncateCutsMidStream(t *testing.T) {
	cli, peer := net.Pipe()
	defer peer.Close()
	w := Wrap(cli, Profile{TruncateAfter: 10}, 7)

	got := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(peer)
		got <- b
	}()
	n, err := w.Write(bytes.Repeat([]byte{0xAB}, 64))
	if !errors.Is(err, ErrInjectedTruncate) {
		t.Fatalf("crossing write: err=%v, want ErrInjectedTruncate", err)
	}
	if n != 10 {
		t.Fatalf("crossing write delivered %d bytes, want 10", n)
	}
	select {
	case b := <-got:
		if len(b) != 10 {
			t.Fatalf("peer received %d bytes, want exactly 10", len(b))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never saw the stream end")
	}
	if _, err := w.Write([]byte{1}); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write after the cut: %v, want net.ErrClosed", err)
	}
	if c := w.(*Conn).Counts(); c.Truncates != 1 {
		t.Fatalf("Truncates = %d, want 1", c.Truncates)
	}
}

// TestResetCutsAbruptly pins the reset fault: once the threshold is
// reached, the next write delivers nothing and the connection is gone.
func TestResetCutsAbruptly(t *testing.T) {
	cli, peer := net.Pipe()
	defer peer.Close()
	w := Wrap(cli, Profile{ResetAfter: 8}, 7)

	got := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(peer)
		got <- b
	}()
	if n, err := w.Write(make([]byte, 8)); err != nil || n != 8 {
		t.Fatalf("pre-threshold write: n=%d err=%v", n, err)
	}
	n, err := w.Write([]byte{1, 2, 3})
	if !errors.Is(err, ErrInjectedReset) || n != 0 {
		t.Fatalf("post-threshold write: n=%d err=%v, want 0, ErrInjectedReset", n, err)
	}
	select {
	case b := <-got:
		if len(b) != 8 {
			t.Fatalf("peer received %d bytes, want the 8 pre-reset ones only", len(b))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never saw the reset")
	}
	if c := w.(*Conn).Counts(); c.Resets != 1 {
		t.Fatalf("Resets = %d, want 1", c.Resets)
	}
}

// TestLatencyAndStallCount pins that the timing faults fire (their
// durations are the profile's business; counting keeps the test fast).
func TestLatencyAndStallCount(t *testing.T) {
	rec := &recordConn{}
	w := Wrap(rec, Profile{
		LatencyMin: time.Microsecond, LatencyMax: 5 * time.Microsecond,
		StallEvery: 2, StallDur: time.Microsecond,
	}, 1).(*Conn)
	for i := 0; i < 6; i++ {
		if _, err := w.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	c := w.Counts()
	if c.Delays != 6 {
		t.Fatalf("Delays = %d, want 6", c.Delays)
	}
	if c.Stalls != 3 {
		t.Fatalf("Stalls = %d, want 3 (every 2nd of 6 writes)", c.Stalls)
	}
}

// TestFloodWireFormat decodes Flood's burst with an independent varint
// reader: one BEGIN for the handler on channel 1, then exactly n CALLs
// of the procedure with zero arguments.
func TestFloodWireFormat(t *testing.T) {
	const n = 5
	r := bytes.NewReader(Flood("counter", "tick", n))
	readStr := func() string {
		l, err := binary.ReadUvarint(r)
		if err != nil {
			t.Fatalf("length varint: %v", err)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(r, b); err != nil {
			t.Fatalf("string bytes: %v", err)
		}
		return string(b)
	}
	kind, _ := r.ReadByte()
	ch, _ := binary.ReadUvarint(r)
	if kind != frameBegin || ch != 1 {
		t.Fatalf("first frame: kind=0x%02x ch=%d, want BEGIN on channel 1", kind, ch)
	}
	if h := readStr(); h != "counter" {
		t.Fatalf("BEGIN handler = %q", h)
	}
	for i := 0; i < n; i++ {
		kind, err := r.ReadByte()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		ch, _ := binary.ReadUvarint(r)
		if kind != frameCall || ch != 1 {
			t.Fatalf("call %d: kind=0x%02x ch=%d", i, kind, ch)
		}
		if p := readStr(); p != "tick" {
			t.Fatalf("call %d proc = %q", i, p)
		}
		if args, _ := binary.ReadUvarint(r); args != 0 {
			t.Fatalf("call %d argc = %d", i, args)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes after the burst", r.Len())
	}
}
