package concbench

import (
	"sync"

	"scoopqs/internal/actor"
	"scoopqs/internal/core"
	"scoopqs/internal/stm"
)

// The threadring benchmark (Computer Language Benchmarks Game): Ring
// threads arranged in a cycle pass a token NT times; the thread holding
// the token when it reaches zero reports its position. Essentially
// single-threaded — it measures pure hand-off (context switch) cost.
// Self-check: the finishing thread index matches the modular
// arithmetic prediction.
func threadRingWant(p Params) int64 {
	return int64(p.NT % p.Ring)
}

// ThreadRingCxx gives each thread a mutex+cond guarded slot, the
// traditional shared-memory formulation.
func ThreadRingCxx(p Params) error {
	type slot struct {
		mu   sync.Mutex
		cond *sync.Cond
		val  int64
		full bool
	}
	slots := make([]*slot, p.Ring)
	for i := range slots {
		s := &slot{}
		s.cond = sync.NewCond(&s.mu)
		slots[i] = s
	}
	finished := make(chan int64, 1)
	var wg sync.WaitGroup
	for i := 0; i < p.Ring; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			me, next := slots[i], slots[(i+1)%p.Ring]
			for {
				me.mu.Lock()
				for !me.full {
					me.cond.Wait()
				}
				v := me.val
				me.full = false
				me.mu.Unlock()
				stop := v < 0
				if v == 0 {
					finished <- int64(i)
					stop = true
					v = -1 // poison the ring so everyone exits
				}
				next.mu.Lock()
				if v > 0 {
					next.val = v - 1
				} else {
					next.val = -1
				}
				next.full = true
				next.mu.Unlock()
				next.cond.Signal()
				if stop {
					return
				}
			}
		}()
	}
	slots[0].mu.Lock()
	slots[0].val = int64(p.NT)
	slots[0].full = true
	slots[0].mu.Unlock()
	slots[0].cond.Signal()
	got := <-finished
	wg.Wait()
	return checkCount("threadring/cxx finisher", got, threadRingWant(p))
}

// ThreadRingGo is the classic channel ring.
func ThreadRingGo(p Params) error {
	chans := make([]chan int64, p.Ring)
	for i := range chans {
		chans[i] = make(chan int64, 1)
	}
	finished := make(chan int64, 1)
	var wg sync.WaitGroup
	for i := 0; i < p.Ring; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			in, out := chans[i], chans[(i+1)%p.Ring]
			for v := range in {
				if v < 0 {
					out <- v
					return
				}
				if v == 0 {
					finished <- int64(i)
					out <- -1
					return
				}
				out <- v - 1
			}
		}()
	}
	chans[0] <- int64(p.NT)
	got := <-finished
	// Absorb the poison token once it has gone around.
	wg.Wait()
	for i := range chans {
		close(chans[i])
	}
	return checkCount("threadring/go finisher", got, threadRingWant(p))
}

// ThreadRingStm uses one token TVar per ring position with retry.
func ThreadRingStm(p Params) error {
	const empty = int64(-2)
	slots := make([]*stm.TVar, p.Ring)
	for i := range slots {
		slots[i] = stm.NewTVar(empty)
	}
	finished := make(chan int64, 1)
	var wg sync.WaitGroup
	for i := 0; i < p.Ring; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			me, next := slots[i], slots[(i+1)%p.Ring]
			for {
				v := stm.Atomically(func(tx *stm.Txn) any {
					v := tx.Read(me).(int64)
					if v == empty {
						tx.Retry()
					}
					tx.Write(me, empty)
					return v
				}).(int64)
				if v < 0 && v != empty {
					stm.Void(func(tx *stm.Txn) { tx.Write(next, v) })
					return
				}
				if v == 0 {
					finished <- int64(i)
					stm.Void(func(tx *stm.Txn) { tx.Write(next, int64(-1)) })
					return
				}
				stm.Void(func(tx *stm.Txn) { tx.Write(next, v-1) })
			}
		}()
	}
	stm.Void(func(tx *stm.Txn) { tx.Write(slots[0], int64(p.NT)) })
	got := <-finished
	wg.Wait()
	return checkCount("threadring/stm finisher", got, threadRingWant(p))
}

// ThreadRingActor is the natural actor formulation: each hop is one
// message.
func ThreadRingActor(p Params) error {
	finished := make(chan int64, 1)
	refs := make([]*actor.Ref, p.Ring)
	var wg sync.WaitGroup
	for i := 0; i < p.Ring; i++ {
		i := i
		wg.Add(1)
		refs[i] = actor.Spawn(func(c *actor.Ctx) {
			defer wg.Done()
			next := c.Receive().(*actor.Ref)
			for {
				v := c.Receive().(int64)
				if v < 0 {
					next.Send(v)
					return
				}
				if v == 0 {
					finished <- int64(i)
					next.Send(int64(-1))
					return
				}
				next.Send(v - 1)
			}
		})
	}
	for i := 0; i < p.Ring; i++ {
		refs[i].Send(refs[(i+1)%p.Ring])
	}
	refs[0].Send(int64(p.NT))
	got := <-finished
	wg.Wait()
	return checkCount("threadring/erlang finisher", got, threadRingWant(p))
}

// ThreadRingQs models each ring position as a handler; passing the
// token is an asynchronous call logged on the next handler by the
// current one (handler-as-client delegation), confirmed by a query —
// the synchronous receive semantics of the CLBG benchmark. The
// confirmation query is what makes this benchmark sensitive to the
// query-path optimizations, as in the paper's Table 2 (Dynamic
// coalescing speeds threadring up; QoQ alone does not).
func ThreadRingQs(cfg core.Config, p Params) error {
	rt := core.New(cfg)
	defer rt.Shutdown()
	hs := make([]*core.Handler, p.Ring)
	tokens := make([]int64, p.Ring) // tokens[i] owned by hs[i]
	for i := range hs {
		hs[i] = rt.NewHandler("ring")
	}
	finished := make(chan int64, 1)

	// pass is executed on handler i; it stores the token on hs[next],
	// confirms delivery with a query (waiting only for the store, never
	// for the rest of the ring), and then triggers the next hop.
	var pass func(i int, v int64)
	pass = func(i int, v int64) {
		if v == 0 {
			finished <- int64(i)
			return
		}
		next := (i + 1) % p.Ring
		hs[i].AsClient().Separate(hs[next], func(s *core.Session) {
			s.Call(func() { tokens[next] = v - 1 })
			got := core.Query(s, func() int64 { return tokens[next] })
			if got != v-1 {
				panic("threadring/Qs: token confirmation mismatch")
			}
			s.Call(func() { pass(next, v-1) })
		})
	}

	c := rt.NewClient()
	c.Separate(hs[0], func(s *core.Session) {
		s.Call(func() { pass(0, int64(p.NT)) })
	})
	got := <-finished
	return checkCount("threadring/Qs finisher", got, threadRingWant(p))
}
