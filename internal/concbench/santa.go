package concbench

import (
	"fmt"
	"sync"

	"scoopqs/internal/core"
)

// The Santa Claus problem (Trono 1994), the classic multi-party guard
// workload: nine reindeer and three elves coordinate through Santa,
// who wakes when all nine reindeer are back (priority) or three elves
// have a problem. Here every piece of shared state lives on a single
// "north pole" handler and all waiting is expressed as SCOOP wait
// conditions, so the benchmark measures SeparateWhen with competing
// guards of different shapes on one handler.
//
// The protocol is deterministic by construction: reindeer fly in
// lockstep rounds (all nine must be back before a delivery, and each
// waits for the delivery before returning), and the three elves
// consult in groups of exactly three, so a run performs exactly
// santaTrips(p) deliveries and the same number of consults.

const (
	santaReindeer = 9
	santaElves    = 3
)

// santaTrips scales the round count from Params the way the other
// benchmarks scale from p.M.
func santaTrips(p Params) int {
	if t := p.M / 50; t > 1 {
		return t
	}
	return 1
}

// SantaQs runs the Santa Claus workload on the SCOOP/Qs runtime. It
// returns the runtime's final stats snapshot so callers can report
// guard-retry counts alongside the timing.
func SantaQs(cfg core.Config, p Params) (core.Stats, error) {
	rt := core.New(cfg)
	defer rt.Shutdown()
	pole := rt.NewHandler("pole")
	trips := santaTrips(p)

	// All owned by pole.
	var (
		waitingR       int64 // reindeer back from vacation, not yet flown
		deliveries     int64 // completed sleigh rounds
		elfWaiting     int64 // elves queued at the door
		elfTickets     int64 // total elf arrivals ever (ticket numbers)
		elvesConsulted int64 // arrivals Santa has dealt with
		consults       int64 // completed 3-elf consults
	)

	hs := []*core.Handler{pole}
	var wg sync.WaitGroup

	reindeer := func() {
		defer wg.Done()
		c := rt.NewClient()
		for t := 0; t < trips; t++ {
			c.Separate(pole, func(s *core.Session) {
				s.Call(func() { waitingR++ })
			})
			want := int64(t + 1)
			c.SeparateWhen(hs,
				func(ss []*core.Session) bool {
					return core.Query(ss[0], func() bool { return deliveries >= want })
				},
				func([]*core.Session) {})
		}
	}

	elf := func() {
		defer wg.Done()
		c := rt.NewClient()
		for t := 0; t < trips; t++ {
			var ticket int64
			c.Separate(pole, func(s *core.Session) {
				ticket = core.Query(s, func() int64 {
					elfWaiting++
					elfTickets++
					return elfTickets
				})
			})
			c.SeparateWhen(hs,
				func(ss []*core.Session) bool {
					return core.Query(ss[0], func() bool { return elvesConsulted >= ticket })
				},
				func([]*core.Session) {})
		}
	}

	santa := func() {
		defer wg.Done()
		c := rt.NewClient()
		for r := 0; r < 2*trips; r++ {
			c.SeparateWhen(hs,
				func(ss []*core.Session) bool {
					return core.Query(ss[0], func() bool {
						return waitingR == santaReindeer || elfWaiting >= santaElves
					})
				},
				func(ss []*core.Session) {
					ss[0].Call(func() {
						// Reindeer have priority over elves.
						if waitingR == santaReindeer {
							waitingR = 0
							deliveries++
						} else {
							elfWaiting -= santaElves
							elvesConsulted += santaElves
							consults++
						}
					})
				})
		}
	}

	wg.Add(santaReindeer + santaElves + 1)
	for i := 0; i < santaReindeer; i++ {
		go reindeer()
	}
	for i := 0; i < santaElves; i++ {
		go elf()
	}
	go santa()
	wg.Wait()

	var d, co, w, e int64
	c := rt.NewClient()
	c.Separate(pole, func(s *core.Session) {
		d, co, w, e = core.QueryRemote(s, func() int64 { return deliveries }),
			core.QueryRemote(s, func() int64 { return consults }),
			core.QueryRemote(s, func() int64 { return waitingR }),
			core.QueryRemote(s, func() int64 { return elfWaiting })
	})
	st := rt.Stats()
	if err := checkCount("santa/Qs deliveries", d, int64(trips)); err != nil {
		return st, err
	}
	if err := checkCount("santa/Qs consults", co, int64(trips)); err != nil {
		return st, err
	}
	if w != 0 || e != 0 {
		return st, fmt.Errorf("concbench: santa/Qs left %d reindeer and %d elves waiting", w, e)
	}
	return st, nil
}
