package concbench

import (
	"sync"

	"scoopqs/internal/actor"
	"scoopqs/internal/core"
	"scoopqs/internal/stm"
)

// The condition benchmark: N "odd" workers may only increment the
// shared variable when it is odd, N "even" workers when it is even;
// each performs M increments, so each group depends on the other to
// make progress. Self-check: final value == 2*N*M.

// ConditionCxx uses a mutex and a broadcast condition variable.
func ConditionCxx(p Params) error {
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	x := int64(0)

	var wg sync.WaitGroup
	work := func(parity int64) {
		defer wg.Done()
		for i := 0; i < p.M; i++ {
			mu.Lock()
			for x%2 != parity {
				cond.Wait()
			}
			x++
			mu.Unlock()
			cond.Broadcast()
		}
	}
	for w := 0; w < p.N; w++ {
		wg.Add(2)
		go work(1) // odd worker
		go work(0) // even worker
	}
	wg.Wait()
	return checkCount("condition/cxx x", x, 2*int64(p.N)*int64(p.M))
}

// ConditionGo passes the value between an odd-turn and an even-turn
// channel; whichever worker of the right group receives it increments
// and hands it to the other group.
func ConditionGo(p Params) error {
	oddTurn := make(chan int64, 1)  // value is odd: odd workers' turn
	evenTurn := make(chan int64, 1) // value is even: even workers' turn

	var wg sync.WaitGroup
	worker := func(parity int64) {
		defer wg.Done()
		for i := 0; i < p.M; i++ {
			var v int64
			if parity == 1 {
				v = <-oddTurn
			} else {
				v = <-evenTurn
			}
			v++
			if v%2 == 1 {
				oddTurn <- v
			} else {
				evenTurn <- v
			}
		}
	}
	for w := 0; w < p.N; w++ {
		wg.Add(2)
		go worker(1)
		go worker(0)
	}
	evenTurn <- 0 // x starts even: even workers go first
	wg.Wait()
	// Drain the final token.
	var final int64
	select {
	case final = <-oddTurn:
	case final = <-evenTurn:
	}
	return checkCount("condition/go x", final, 2*int64(p.N)*int64(p.M))
}

// ConditionStm retries until the parity matches — the textbook STM
// wait-condition.
func ConditionStm(p Params) error {
	x := stm.NewTVar(0)
	var wg sync.WaitGroup
	work := func(parity int) {
		defer wg.Done()
		for i := 0; i < p.M; i++ {
			stm.Void(func(tx *stm.Txn) {
				v := tx.ReadInt(x)
				if v%2 != parity {
					tx.Retry()
				}
				tx.Write(x, v+1)
			})
		}
	}
	for w := 0; w < p.N; w++ {
		wg.Add(2)
		go work(1)
		go work(0)
	}
	wg.Wait()
	got := stm.Atomically(func(tx *stm.Txn) any { return tx.Read(x) }).(int)
	return checkCount("condition/stm x", int64(got), 2*int64(p.N)*int64(p.M))
}

// ConditionActor keeps the counter in a server actor that queues
// increment requests whose parity is not yet right and releases them as
// the value flips.
func ConditionActor(p Params) error {
	type incrReq struct{ Parity int }
	server := actor.Spawn(func(c *actor.Ctx) {
		x := 0
		pending := [2][]actor.Request{}
		total := 2 * p.N * p.M
		done := 0
		release := func() {
			for {
				par := x % 2
				if len(pending[par]) == 0 {
					return
				}
				req := pending[par][0]
				pending[par] = pending[par][1:]
				x++
				done++
				c.Reply(req, x)
			}
		}
		for done < total {
			req := c.Receive().(actor.Request)
			par := req.Payload.(incrReq).Parity
			pending[par] = append(pending[par], req)
			release()
		}
	})
	_, wait := actor.SpawnGroup(2*p.N, func(i int, c *actor.Ctx) {
		parity := i % 2
		for k := 0; k < p.M; k++ {
			c.Call(server, incrReq{Parity: parity})
		}
	})
	wait()
	server.Join()
	return nil // server accounted for exactly 2*N*M increments
}

// ConditionQs is the SCOOP wait-condition form: a separate block
// guarded on the counter's parity.
func ConditionQs(cfg core.Config, p Params) error {
	rt := core.New(cfg)
	defer rt.Shutdown()
	ch := rt.NewHandler("counter")
	var x int64 // owned by ch

	var wg sync.WaitGroup
	work := func(parity int64) {
		defer wg.Done()
		c := rt.NewClient()
		hs := []*core.Handler{ch}
		for i := 0; i < p.M; i++ {
			c.SeparateWhen(hs,
				func(ss []*core.Session) bool {
					return core.Query(ss[0], func() bool { return x%2 == parity })
				},
				func(ss []*core.Session) {
					ss[0].Call(func() { x++ })
				})
		}
	}
	for w := 0; w < p.N; w++ {
		wg.Add(2)
		go work(1)
		go work(0)
	}
	wg.Wait()
	var got int64
	c := rt.NewClient()
	c.Separate(ch, func(s *core.Session) {
		got = core.QueryRemote(s, func() int64 { return x })
	})
	return checkCount("condition/Qs x", got, 2*int64(p.N)*int64(p.M))
}
