package concbench

import (
	"fmt"
	"testing"

	"scoopqs/internal/core"
)

// guardModes are the scheduling modes the guard workloads must pass
// under: dedicated goroutines and the pooled executor at 1 and 4
// workers (a single worker is the strongest starvation test — every
// guard retry must still make global progress), plus the unoptimized
// configuration.
var guardModes = []struct {
	name string
	cfg  core.Config
}{
	{"dedicated", core.ConfigAll},
	{"pooled1", core.ConfigAll.WithWorkers(1)},
	{"pooled4", core.ConfigAll.WithWorkers(4)},
	{"none", core.ConfigNone},
}

func guardTestParams() Params {
	return Params{N: 3, M: 120}
}

func TestGuardWorkloads(t *testing.T) {
	for _, name := range GuardNames {
		for _, m := range guardModes {
			name, m := name, m
			t.Run(fmt.Sprintf("%s/%s", name, m.name), func(t *testing.T) {
				t.Parallel()
				if _, err := RunGuard(name, m.cfg, guardTestParams()); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestRunGuardUnknown(t *testing.T) {
	if _, err := RunGuard("nope", core.ConfigAll, guardTestParams()); err == nil {
		t.Fatal("unknown guard workload did not error")
	}
}

// The retry counter the guard benchmarks report must count failed
// guard evaluations. Scheduling can make a contended workload pass
// every guard first try (perfect producer/consumer alternation on one
// CPU), so this test forces failures deterministically: the guard
// itself refuses its first three evaluations while a second client
// keeps nudging the handler so the waiter is re-woken.
func TestGuardRetriesCounted(t *testing.T) {
	rt := core.New(core.ConfigAll.WithWorkers(2))
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	var turns int64 // owned by h
	done := make(chan struct{})
	wakerIdle := make(chan struct{})
	go func() {
		defer close(wakerIdle)
		c := rt.NewClient()
		for {
			select {
			case <-done:
				return
			default:
			}
			c.Separate(h, func(s *core.Session) { s.Call(func() { turns++ }) })
		}
	}()
	c := rt.NewClient()
	evals := 0
	c.SeparateWhen([]*core.Handler{h},
		func([]*core.Session) bool { evals++; return evals > 3 },
		func([]*core.Session) {})
	close(done)
	<-wakerIdle
	if st := rt.Stats(); st.GuardRetries < 3 {
		t.Errorf("GuardRetries = %d, want >= 3 (guard returned false three times)", st.GuardRetries)
	}
}
