// Package concbench implements the paper's five coordination
// benchmarks (§4.1.2) — mutex, prodcons, condition, threadring,
// chameneos — in each of the five compared paradigms:
//
//   - "cxx": traditional shared memory (sync.Mutex / sync.Cond), the
//     C++/TBB stand-in for coordination tasks;
//   - "go": idiomatic goroutines and channels;
//   - "haskell": the STM of internal/stm, with retry for waiting;
//   - "erlang": the actor runtime of internal/actor with deep-copied
//     messages and server actors;
//   - "Qs": the SCOOP/Qs runtime of internal/core with separate
//     blocks, queries, and wait conditions. The Qs variants accept a
//     core.Config so the optimization ablation (Table 2 / Fig. 17)
//     runs the same programs under all five configurations.
//
// Every variant of a benchmark computes the same checkable result
// (e.g. final counter value, total meeting count), which the tests
// assert, so the paradigms are compared on identical work.
package concbench

import (
	"fmt"

	"scoopqs/internal/core"
)

// Params are the benchmark sizes, mirroring the paper's n (threads per
// group), m (iterations), nt (token passes), and nc (meetings), plus
// the conventional ring size and creature count.
type Params struct {
	N         int // threads per group (paper: 32)
	M         int // iterations per thread (paper: 20,000)
	NT        int // threadring token passes (paper: 600,000)
	NC        int // chameneos meetings (paper: 5,000,000)
	Ring      int // threadring ring size (CLBG convention: 503)
	Creatures int // chameneos creature count (CLBG convention: 4)
}

// SmallParams is the laptop-scale default, sized so the slower
// configurations take tenths of seconds (measurable, not painful).
func SmallParams() Params {
	return Params{N: 8, M: 1500, NT: 40000, NC: 25000, Ring: 128, Creatures: 4}
}

// BenchParams is an even smaller configuration for testing.B loops.
func BenchParams() Params {
	return Params{N: 2, M: 100, NT: 1200, NC: 500, Ring: 32, Creatures: 4}
}

// PaperParams are the paper's §4.1 sizes.
func PaperParams() Params {
	return Params{N: 32, M: 20000, NT: 600000, NC: 5000000, Ring: 503, Creatures: 4}
}

// Names lists the benchmarks in the paper's presentation order.
var Names = []string{"chameneos", "condition", "mutex", "prodcons", "threadring"}

// Langs lists the compared paradigms in the paper's presentation order.
var Langs = []string{"cxx", "erlang", "go", "haskell", "Qs"}

// GuardNames lists the guard-heavy workloads built on SeparateWhen —
// the bounded buffer and the Santa Claus problem. They are Qs-only
// (no cross-paradigm variants), so they live outside Names and the
// all-langs sweeps; RunGuard executes them.
var GuardNames = []string{"boundedbuf", "santa"}

// RunGuard executes one guard-heavy Qs workload under cfg, returning
// the workload runtime's final stats snapshot (guard retries, await
// parks) alongside the self-check result.
func RunGuard(bench string, cfg core.Config, p Params) (core.Stats, error) {
	switch bench {
	case "boundedbuf":
		return BoundedBufQs(cfg, p)
	case "santa":
		return SantaQs(cfg, p)
	}
	return core.Stats{}, fmt.Errorf("concbench: unknown guard workload %q", bench)
}

// Run executes one benchmark under one paradigm. cfg is only used by
// the "Qs" paradigm. It returns an error for unknown names or if the
// benchmark's self-check fails.
func Run(bench, lang string, cfg core.Config, p Params) error {
	type key struct{ b, l string }
	table := map[key]func(core.Config, Params) error{
		{"mutex", "cxx"}:          func(_ core.Config, p Params) error { return MutexCxx(p) },
		{"mutex", "go"}:           func(_ core.Config, p Params) error { return MutexGo(p) },
		{"mutex", "haskell"}:      func(_ core.Config, p Params) error { return MutexStm(p) },
		{"mutex", "erlang"}:       func(_ core.Config, p Params) error { return MutexActor(p) },
		{"mutex", "Qs"}:           MutexQs,
		{"prodcons", "cxx"}:       func(_ core.Config, p Params) error { return ProdConsCxx(p) },
		{"prodcons", "go"}:        func(_ core.Config, p Params) error { return ProdConsGo(p) },
		{"prodcons", "haskell"}:   func(_ core.Config, p Params) error { return ProdConsStm(p) },
		{"prodcons", "erlang"}:    func(_ core.Config, p Params) error { return ProdConsActor(p) },
		{"prodcons", "Qs"}:        ProdConsQs,
		{"condition", "cxx"}:      func(_ core.Config, p Params) error { return ConditionCxx(p) },
		{"condition", "go"}:       func(_ core.Config, p Params) error { return ConditionGo(p) },
		{"condition", "haskell"}:  func(_ core.Config, p Params) error { return ConditionStm(p) },
		{"condition", "erlang"}:   func(_ core.Config, p Params) error { return ConditionActor(p) },
		{"condition", "Qs"}:       ConditionQs,
		{"threadring", "cxx"}:     func(_ core.Config, p Params) error { return ThreadRingCxx(p) },
		{"threadring", "go"}:      func(_ core.Config, p Params) error { return ThreadRingGo(p) },
		{"threadring", "haskell"}: func(_ core.Config, p Params) error { return ThreadRingStm(p) },
		{"threadring", "erlang"}:  func(_ core.Config, p Params) error { return ThreadRingActor(p) },
		{"threadring", "Qs"}:      ThreadRingQs,
		{"chameneos", "cxx"}:      func(_ core.Config, p Params) error { return ChameneosCxx(p) },
		{"chameneos", "go"}:       func(_ core.Config, p Params) error { return ChameneosGo(p) },
		{"chameneos", "haskell"}:  func(_ core.Config, p Params) error { return ChameneosStm(p) },
		{"chameneos", "erlang"}:   func(_ core.Config, p Params) error { return ChameneosActor(p) },
		{"chameneos", "Qs"}:       ChameneosQs,
	}
	f, ok := table[key{bench, lang}]
	if !ok {
		return fmt.Errorf("concbench: unknown benchmark/lang %q/%q", bench, lang)
	}
	return f(cfg, p)
}

// Colour is a chameneos colour.
type Colour uint8

// The three chameneos colours.
const (
	Blue Colour = iota
	Red
	Yellow
)

// Complement returns the colour a creature changes to after meeting a
// partner: unchanged if both share a colour, otherwise the third one.
func Complement(a, b Colour) Colour {
	if a == b {
		return a
	}
	return Colour(3 - int(a) - int(b))
}

// startColours assigns initial creature colours round-robin.
func startColours(n int) []Colour {
	cs := make([]Colour, n)
	for i := range cs {
		cs[i] = Colour(i % 3)
	}
	return cs
}

// checkCount verifies a benchmark's self-check value.
func checkCount(what string, got, want int64) error {
	if got != want {
		return fmt.Errorf("concbench: %s = %d, want %d", what, got, want)
	}
	return nil
}
