package concbench

import (
	"sync"
	"sync/atomic"

	"scoopqs/internal/core"
)

// The bounded-buffer workload: a guard-heavy variant of prodcons where
// the buffer is tiny (capacity 2), so producers and consumers spend
// most of their time parked on wait conditions rather than moving
// data. It exists to stress SeparateWhen — guard retries, the
// guard-wait histogram, and wakeup fairness — under both dedicated and
// pooled scheduling. Self-check: every produced value is consumed
// exactly once (sum conservation) and the buffer ends empty.

// boundedBufCap is deliberately small: the guard should fail often.
const boundedBufCap = 2

// BoundedBufQs runs p.N producers and p.N consumers, p.M items each,
// through a capacity-2 buffer handler guarded by SCOOP wait
// conditions. It returns the runtime's final stats snapshot so callers
// can report guard-retry counts alongside the timing.
func BoundedBufQs(cfg core.Config, p Params) (core.Stats, error) {
	rt := core.New(cfg)
	defer rt.Shutdown()
	bh := rt.NewHandler("buffer")
	var buf []int64 // owned by bh

	var wg sync.WaitGroup
	var consumed atomic.Int64
	hs := []*core.Handler{bh}

	producer := func(id int) {
		defer wg.Done()
		c := rt.NewClient()
		for k := 0; k < p.M; k++ {
			v := int64(id*p.M + k + 1)
			c.SeparateWhen(hs,
				func(ss []*core.Session) bool {
					return core.Query(ss[0], func() bool { return len(buf) < boundedBufCap })
				},
				func(ss []*core.Session) {
					ss[0].Call(func() { buf = append(buf, v) })
				})
		}
	}
	consumer := func() {
		defer wg.Done()
		c := rt.NewClient()
		var sum int64
		for k := 0; k < p.M; k++ {
			c.SeparateWhen(hs,
				func(ss []*core.Session) bool {
					return core.Query(ss[0], func() bool { return len(buf) > 0 })
				},
				func(ss []*core.Session) {
					sum += core.Query(ss[0], func() int64 {
						v := buf[0]
						buf = buf[1:]
						return v
					})
				})
		}
		consumed.Add(sum)
	}

	for w := 0; w < p.N; w++ {
		wg.Add(2)
		go producer(w)
		go consumer()
	}
	wg.Wait()

	var left int64
	c := rt.NewClient()
	c.Separate(bh, func(s *core.Session) {
		left = core.QueryRemote(s, func() int64 { return int64(len(buf)) })
	})
	st := rt.Stats()
	if err := checkCount("boundedbuf/Qs leftover", left, 0); err != nil {
		return st, err
	}
	// Sum of id*M+k+1 over all producers and items.
	var want int64
	for id := 0; id < p.N; id++ {
		want += int64(id)*int64(p.M)*int64(p.M) + int64(p.M)*(int64(p.M)+1)/2
	}
	return st, checkCount("boundedbuf/Qs sum", consumed.Load(), want)
}
