package concbench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"scoopqs/internal/actor"
	"scoopqs/internal/core"
	"scoopqs/internal/stm"
)

// The chameneos benchmark (Computer Language Benchmarks Game):
// Creatures creatures meet pairwise at a mall NC times; each partner
// takes the complement of the two colours. Self-check: total meetings
// counted by the creatures == 2*NC (each meeting involves two
// creatures).

// ChameneosCxx guards the meeting place with a mutex: the first
// creature deposits itself and blocks on its reply channel, the second
// completes the meeting. A registered waiter is always consumed by the
// next arrival before the meeting budget can reach zero (registration
// is only possible while meetings remain), so no separate release path
// is needed.
func ChameneosCxx(p Params) error {
	type visitor struct {
		colour Colour
		reply  chan Colour
	}
	var mu sync.Mutex
	meetingsLeft := p.NC
	var waiting *visitor

	var total atomic.Int64
	var wg sync.WaitGroup
	colours := startColours(p.Creatures)
	for id := 0; id < p.Creatures; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			colour := colours[id]
			for {
				mu.Lock()
				if meetingsLeft == 0 {
					mu.Unlock()
					return
				}
				if waiting == nil {
					me := &visitor{colour: colour, reply: make(chan Colour, 1)}
					waiting = me
					mu.Unlock()
					other := <-me.reply
					colour = Complement(colour, other)
					total.Add(1)
					continue
				}
				first := waiting
				waiting = nil
				meetingsLeft--
				mu.Unlock()
				first.reply <- colour
				colour = Complement(colour, first.colour)
				total.Add(1)
			}
		}()
	}
	wg.Wait()
	return checkCount("chameneos/cxx meetings", total.Load(), 2*int64(p.NC))
}

// sentinelStop is an out-of-band colour telling a waiting creature the
// meetings are over.
const sentinelStop = Colour(255)

// ChameneosGo runs the mall as a broker goroutine pairing meet requests
// arriving on a channel — the classic Go formulation.
func ChameneosGo(p Params) error {
	type meetReq struct {
		colour Colour
		reply  chan Colour
	}
	mall := make(chan meetReq)
	done := make(chan struct{})
	go func() { // broker
		defer close(done)
		for k := 0; k < p.NC; k++ {
			a := <-mall
			b := <-mall
			a.reply <- b.colour
			b.reply <- a.colour
		}
		// Meetings exhausted: tell every subsequent visitor to stop.
		for i := 0; i < p.Creatures; i++ {
			select {
			case r := <-mall:
				r.reply <- sentinelStop
			default:
			}
		}
	}()

	var total atomic.Int64
	var wg sync.WaitGroup
	colours := startColours(p.Creatures)
	for id := 0; id < p.Creatures; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			colour := colours[id]
			reply := make(chan Colour, 1)
			for {
				select {
				case mall <- meetReq{colour: colour, reply: reply}:
					other := <-reply
					if other == sentinelStop {
						return
					}
					colour = Complement(colour, other)
					total.Add(1)
				case <-done:
					return
				}
			}
		}()
	}
	wg.Wait()
	return checkCount("chameneos/go meetings", total.Load(), 2*int64(p.NC))
}

// ChameneosStm keeps the mall state in TVars; the first creature
// registers and retries until a partner fills in its colour.
func ChameneosStm(p Params) error {
	meetingsLeft := stm.NewTVar(p.NC)
	waitingColour := stm.NewTVar(int(-1)) // -1: nobody waiting
	// Per-creature result slots: -1 = empty, otherwise partner colour.
	slots := make([]*stm.TVar, p.Creatures)
	for i := range slots {
		slots[i] = stm.NewTVar(int(-1))
	}
	waitingID := stm.NewTVar(int(-1))

	var total atomic.Int64
	var wg sync.WaitGroup
	colours := startColours(p.Creatures)
	for id := 0; id < p.Creatures; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			colour := colours[id]
			for {
				// Phase 1: try to meet.
				action := stm.Atomically(func(tx *stm.Txn) any {
					left := tx.ReadInt(meetingsLeft)
					w := tx.ReadInt(waitingColour)
					if left == 0 {
						return "stop"
					}
					if w < 0 {
						tx.Write(waitingColour, int(colour))
						tx.Write(waitingID, id)
						return "wait"
					}
					// Complete the meeting with the waiter.
					wid := tx.ReadInt(waitingID)
					tx.Write(waitingColour, int(-1))
					tx.Write(waitingID, int(-1))
					tx.Write(meetingsLeft, left-1)
					tx.Write(slots[wid], int(colour))
					return int(Complement(colour, Colour(w)))
				})
				switch v := action.(type) {
				case string:
					if v == "stop" {
						return
					}
					// Phase 2: wait for the partner to fill our slot.
					// A registered waiter is always consumed before the
					// meeting budget reaches zero, so plain retry
					// suffices.
					res := stm.Atomically(func(tx *stm.Txn) any {
						r := tx.ReadInt(slots[id])
						if r < 0 {
							tx.Retry()
						}
						tx.Write(slots[id], int(-1))
						return r
					}).(int)
					colour = Complement(colour, Colour(res))
					total.Add(1)
				case int:
					colour = Colour(v)
					total.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return checkCount("chameneos/stm meetings", total.Load(), 2*int64(p.NC))
}

// ChameneosActor runs the mall as a server actor that pairs meet
// requests, deferring the first creature's reply until the second
// arrives.
func ChameneosActor(p Params) error {
	server := actor.Spawn(func(c *actor.Ctx) {
		meetingsLeft := p.NC
		stopped := 0
		var waiting *actor.Request
		for stopped < p.Creatures {
			req := c.Receive().(actor.Request)
			if meetingsLeft == 0 {
				c.Reply(req, int(sentinelStop))
				stopped++
				continue
			}
			if waiting == nil {
				r := req
				waiting = &r
				continue
			}
			first := *waiting
			waiting = nil
			meetingsLeft--
			c.Reply(first, req.Payload.(int))
			c.Reply(req, first.Payload.(int))
		}
	})

	var total atomic.Int64
	colours := startColours(p.Creatures)
	_, wait := actor.SpawnGroup(p.Creatures, func(id int, c *actor.Ctx) {
		colour := colours[id]
		for {
			other := c.Call(server, int(colour)).(int)
			if Colour(other) == sentinelStop {
				return
			}
			colour = Complement(colour, Colour(other))
			total.Add(1)
		}
	})
	wait()
	server.Join()
	return checkCount("chameneos/erlang meetings", total.Load(), 2*int64(p.NC))
}

// ChameneosQs keeps the mall state on a handler. A creature reserves
// the mall and queries tryMeet; if it registered as first it re-enters
// with a wait condition until its result slot is filled (or the
// meetings run out).
func ChameneosQs(cfg core.Config, p Params) error {
	rt := core.New(cfg)
	defer rt.Shutdown()
	mall := rt.NewHandler("mall")

	// Handler-owned state.
	meetingsLeft := p.NC
	waitingID := -1
	waitingColour := Colour(0)
	results := make([]int, p.Creatures) // -1 empty, else partner colour or stop
	for i := range results {
		results[i] = -1
	}

	// tryMeet runs on the mall handler (or synced client). Returns:
	// -1: registered as first, wait for the result slot;
	// -2: stop (meetings exhausted);
	// >= 0: partner colour, meeting complete.
	tryMeet := func(id int, colour Colour) int {
		if meetingsLeft == 0 {
			return -2
		}
		if waitingID < 0 {
			waitingID = id
			waitingColour = colour
			return -1
		}
		partner := waitingID
		pc := waitingColour
		waitingID = -1
		meetingsLeft--
		results[partner] = int(colour)
		return int(pc)
	}

	var total atomic.Int64
	var wg sync.WaitGroup
	colours := startColours(p.Creatures)
	for id := 0; id < p.Creatures; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			colour := colours[id]
			c := rt.NewClient()
			hs := []*core.Handler{mall}
			for {
				var r int
				c.Separate(mall, func(s *core.Session) {
					r = core.Query(s, func() int { return tryMeet(id, colour) })
				})
				switch {
				case r == -2:
					return
				case r >= 0:
					colour = Complement(colour, Colour(r))
					total.Add(1)
				default: // registered; wait for the partner
					var res int
					c.SeparateWhen(hs,
						func(ss []*core.Session) bool {
							return core.Query(ss[0], func() bool { return results[id] >= 0 })
						},
						func(ss []*core.Session) {
							res = core.Query(ss[0], func() int {
								v := results[id]
								results[id] = -1
								return v
							})
						})
					if Colour(res) == sentinelStop {
						return
					}
					colour = Complement(colour, Colour(res))
					total.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if err := checkCount("chameneos/Qs meetings", total.Load(), 2*int64(p.NC)); err != nil {
		return err
	}
	// Sanity: all result slots drained.
	var leftover int
	c := rt.NewClient()
	c.Separate(mall, func(s *core.Session) {
		leftover = core.QueryRemote(s, func() int {
			n := 0
			for _, r := range results {
				if r >= 0 {
					n++
				}
			}
			return n
		})
	})
	if leftover != 0 {
		return fmt.Errorf("concbench: chameneos/Qs left %d undrained result slots", leftover)
	}
	return nil
}
