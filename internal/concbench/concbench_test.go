package concbench

import (
	"testing"

	"scoopqs/internal/core"
)

func tinyParams() Params {
	return Params{N: 3, M: 40, NT: 400, NC: 150, Ring: 16, Creatures: 4}
}

// TestAllBenchmarksAllLangs runs every benchmark under every paradigm
// (Qs under ConfigAll) and checks the self-verification built into each
// program.
func TestAllBenchmarksAllLangs(t *testing.T) {
	p := tinyParams()
	for _, bench := range Names {
		for _, lang := range Langs {
			bench, lang := bench, lang
			t.Run(bench+"/"+lang, func(t *testing.T) {
				if err := Run(bench, lang, core.ConfigAll, p); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestQsBenchmarksAllConfigs runs the Qs variants under all five
// optimization configurations — the programs of Table 2 / Fig. 17.
func TestQsBenchmarksAllConfigs(t *testing.T) {
	p := tinyParams()
	for _, bench := range Names {
		for _, cfg := range core.Configs() {
			bench, cfg := bench, cfg
			t.Run(bench+"/"+cfg.Name(), func(t *testing.T) {
				if err := Run(bench, "Qs", cfg, p); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestQsBenchmarksPooled runs every Qs benchmark on the M:N executor
// with a pool far smaller than the handler count (threadring alone
// creates Ring=16 handlers on 2 workers), in the two configurations
// whose reservation paths differ (lock-based None and queue-based All).
func TestQsBenchmarksPooled(t *testing.T) {
	p := tinyParams()
	for _, base := range []core.Config{core.ConfigNone, core.ConfigAll} {
		cfg := base.WithWorkers(2)
		for _, bench := range Names {
			bench := bench
			t.Run(bench+"/"+cfg.Name(), func(t *testing.T) {
				if err := Run(bench, "Qs", cfg, p); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := Run("nonesuch", "go", core.ConfigAll, tinyParams()); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	if err := Run("mutex", "cobol", core.ConfigAll, tinyParams()); err == nil {
		t.Fatal("expected error for unknown paradigm")
	}
}

func TestComplement(t *testing.T) {
	cases := []struct{ a, b, want Colour }{
		{Blue, Blue, Blue},
		{Red, Red, Red},
		{Yellow, Yellow, Yellow},
		{Blue, Red, Yellow},
		{Red, Blue, Yellow},
		{Blue, Yellow, Red},
		{Yellow, Blue, Red},
		{Red, Yellow, Blue},
		{Yellow, Red, Blue},
	}
	for _, c := range cases {
		if got := Complement(c.a, c.b); got != c.want {
			t.Errorf("Complement(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestThreadRingFinisherPrediction(t *testing.T) {
	// Cross-check the self-check's modular arithmetic on a tiny ring by
	// running the go variant with several NT values.
	for _, nt := range []int{1, 5, 16, 33} {
		p := Params{N: 1, M: 1, NT: nt, NC: 1, Ring: 8, Creatures: 4}
		if err := ThreadRingGo(p); err != nil {
			t.Fatalf("NT=%d: %v", nt, err)
		}
	}
}

func TestParamsPresets(t *testing.T) {
	for _, p := range []Params{SmallParams(), BenchParams(), PaperParams()} {
		if p.N < 1 || p.M < 1 || p.NT < 1 || p.NC < 1 || p.Ring < 2 || p.Creatures < 2 {
			t.Errorf("degenerate preset: %+v", p)
		}
		if p.Creatures%2 != 0 {
			t.Errorf("chameneos needs an even creature count to drain all meetings: %+v", p)
		}
	}
}
