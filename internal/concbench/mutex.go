package concbench

import (
	"sync"

	"scoopqs/internal/actor"
	"scoopqs/internal/core"
	"scoopqs/internal/stm"
)

// The mutex benchmark: N independent threads each perform M increments
// of one shared counter protected by the paradigm's exclusion
// mechanism. Self-check: counter == N*M.

// MutexCxx uses a plain sync.Mutex.
func MutexCxx(p Params) error {
	var mu sync.Mutex
	var counter int64
	var wg sync.WaitGroup
	for w := 0; w < p.N; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < p.M; i++ {
				mu.Lock()
				counter++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return checkCount("mutex/cxx counter", counter, int64(p.N)*int64(p.M))
}

// MutexGo uses a capacity-1 channel as a semaphore, the idiomatic
// channel mutex.
func MutexGo(p Params) error {
	sem := make(chan struct{}, 1)
	var counter int64
	var wg sync.WaitGroup
	for w := 0; w < p.N; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < p.M; i++ {
				sem <- struct{}{}
				counter++
				<-sem
			}
		}()
	}
	wg.Wait()
	return checkCount("mutex/go counter", counter, int64(p.N)*int64(p.M))
}

// MutexStm increments a TVar transactionally; exclusion comes from
// commit-time validation and re-execution.
func MutexStm(p Params) error {
	counter := stm.NewTVar(0)
	var wg sync.WaitGroup
	for w := 0; w < p.N; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < p.M; i++ {
				stm.Void(func(tx *stm.Txn) { tx.Write(counter, tx.ReadInt(counter)+1) })
			}
		}()
	}
	wg.Wait()
	got := stm.Atomically(func(tx *stm.Txn) any { return tx.Read(counter) }).(int)
	return checkCount("mutex/stm counter", int64(got), int64(p.N)*int64(p.M))
}

// MutexActor funnels increments through a counter server actor via
// synchronous calls.
func MutexActor(p Params) error {
	server := actor.Spawn(func(c *actor.Ctx) {
		counter := 0
		for i := 0; i < p.N*p.M; i++ {
			req := c.Receive().(actor.Request)
			counter++
			c.Reply(req, counter)
		}
	})
	_, wait := actor.SpawnGroup(p.N, func(_ int, c *actor.Ctx) {
		for i := 0; i < p.M; i++ {
			c.Call(server, "incr")
		}
	})
	wait()
	server.Join()
	return nil // the server processed exactly N*M requests by construction
}

// MutexQs reserves the resource handler once per iteration and logs one
// asynchronous increment — the SCOOP shape of a critical section.
func MutexQs(cfg core.Config, p Params) error {
	rt := core.New(cfg)
	defer rt.Shutdown()
	res := rt.NewHandler("resource")
	var counter int64 // owned by res

	var wg sync.WaitGroup
	for w := 0; w < p.N; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := rt.NewClient()
			for i := 0; i < p.M; i++ {
				c.Separate(res, func(s *core.Session) {
					s.Call(func() { counter++ })
				})
			}
		}()
	}
	wg.Wait()
	var got int64
	c := rt.NewClient()
	c.Separate(res, func(s *core.Session) {
		got = core.QueryRemote(s, func() int64 { return counter })
	})
	return checkCount("mutex/Qs counter", got, int64(p.N)*int64(p.M))
}
