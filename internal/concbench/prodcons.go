package concbench

import (
	"sync"
	"sync/atomic"

	"scoopqs/internal/actor"
	"scoopqs/internal/core"
	"scoopqs/internal/stm"
)

// The prodcons benchmark: N producers each push M items into one
// unbounded shared queue; N consumers each pop M items, waiting while
// the queue is empty. Self-check: sum of consumed values equals the sum
// of produced values.

func prodConsWant(p Params) int64 {
	// Producer w pushes values w*M..w*M+M-1.
	n := int64(p.N) * int64(p.M)
	return n * (n - 1) / 2
}

// ProdConsCxx uses a mutex+condvar unbounded queue.
func ProdConsCxx(p Params) error {
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	var q []int64
	var consumed atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < p.N; w++ {
		w := w
		wg.Add(1)
		go func() { // producer
			defer wg.Done()
			for i := 0; i < p.M; i++ {
				mu.Lock()
				q = append(q, int64(w*p.M+i))
				mu.Unlock()
				cond.Signal()
			}
		}()
		wg.Add(1)
		go func() { // consumer
			defer wg.Done()
			for i := 0; i < p.M; i++ {
				mu.Lock()
				for len(q) == 0 {
					cond.Wait()
				}
				v := q[0]
				q = q[1:]
				mu.Unlock()
				consumed.Add(v)
			}
		}()
	}
	wg.Wait()
	return checkCount("prodcons/cxx sum", consumed.Load(), prodConsWant(p))
}

// ProdConsGo uses the idiomatic unbounded-channel pattern: a buffering
// goroutine between an input and an output channel.
func ProdConsGo(p Params) error {
	in := make(chan int64)
	out := make(chan int64)
	go func() { // unbounded buffer
		var buf []int64
		total := p.N * p.M
		sent := 0
		for sent < total {
			if len(buf) == 0 {
				buf = append(buf, <-in)
			}
			select {
			case v := <-in:
				buf = append(buf, v)
			case out <- buf[0]:
				buf = buf[1:]
				sent++
			}
		}
	}()

	var consumed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p.N; w++ {
		w := w
		wg.Add(1)
		go func() { // producer
			defer wg.Done()
			for i := 0; i < p.M; i++ {
				in <- int64(w*p.M + i)
			}
		}()
		wg.Add(1)
		go func() { // consumer
			defer wg.Done()
			for i := 0; i < p.M; i++ {
				consumed.Add(<-out)
			}
		}()
	}
	wg.Wait()
	return checkCount("prodcons/go sum", consumed.Load(), prodConsWant(p))
}

// ProdConsStm keeps a two-list functional queue in TVars; consumers
// retry while it is empty.
func ProdConsStm(p Params) error {
	front := stm.NewTVar([]int64(nil)) // pop end (reversed)
	back := stm.NewTVar([]int64(nil))  // push end

	push := func(v int64) {
		stm.Void(func(tx *stm.Txn) {
			b := tx.Read(back).([]int64)
			nb := make([]int64, len(b)+1)
			copy(nb, b)
			nb[len(b)] = v
			tx.Write(back, nb)
		})
	}
	pop := func() int64 {
		return stm.Atomically(func(tx *stm.Txn) any {
			f := tx.Read(front).([]int64)
			if len(f) == 0 {
				b := tx.Read(back).([]int64)
				if len(b) == 0 {
					tx.Retry()
				}
				// Reverse back into front.
				f = make([]int64, len(b))
				for i, v := range b {
					f[len(b)-1-i] = v
				}
				tx.Write(back, []int64(nil))
			}
			v := f[len(f)-1]
			tx.Write(front, f[:len(f)-1])
			return v
		}).(int64)
	}

	var consumed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p.N; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < p.M; i++ {
				push(int64(w*p.M + i))
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < p.M; i++ {
				consumed.Add(pop())
			}
		}()
	}
	wg.Wait()
	return checkCount("prodcons/stm sum", consumed.Load(), prodConsWant(p))
}

// ProdConsActor uses a queue server actor that defers replies to
// consumers while the queue is empty (the gen_server noreply pattern).
func ProdConsActor(p Params) error {
	type pushMsg struct{ V int64 }
	server := actor.Spawn(func(c *actor.Ctx) {
		var q []int64
		var pending []actor.Request
		popsLeft := p.N * p.M
		pushesLeft := p.N * p.M
		for popsLeft > 0 || pushesLeft > 0 {
			switch m := c.Receive().(type) {
			case pushMsg:
				pushesLeft--
				if len(pending) > 0 {
					c.Reply(pending[0], m.V)
					pending = pending[1:]
					popsLeft--
				} else {
					q = append(q, m.V)
				}
			case actor.Request: // pop
				if len(q) > 0 {
					c.Reply(m, q[0])
					q = q[1:]
					popsLeft--
				} else {
					pending = append(pending, m)
				}
			}
		}
	})

	var consumed atomic.Int64
	_, waitProd := actor.SpawnGroup(p.N, func(w int, c *actor.Ctx) {
		for i := 0; i < p.M; i++ {
			server.Send(pushMsg{V: int64(w*p.M + i)})
		}
	})
	_, waitCons := actor.SpawnGroup(p.N, func(_ int, c *actor.Ctx) {
		for i := 0; i < p.M; i++ {
			consumed.Add(c.Call(server, "pop").(int64))
		}
	})
	waitProd()
	waitCons()
	server.Join()
	return checkCount("prodcons/erlang sum", consumed.Load(), prodConsWant(p))
}

// ProdConsQs owns the queue on a handler; producers log asynchronous
// pushes, consumers use a wait condition (separate block guarded on
// non-emptiness) and pop with a query — the paper's description of the
// benchmark verbatim.
func ProdConsQs(cfg core.Config, p Params) error {
	rt := core.New(cfg)
	defer rt.Shutdown()
	qh := rt.NewHandler("queue")
	var q []int64 // owned by qh

	var consumed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p.N; w++ {
		w := w
		wg.Add(1)
		go func() { // producer
			defer wg.Done()
			c := rt.NewClient()
			for i := 0; i < p.M; i++ {
				v := int64(w*p.M + i)
				c.Separate(qh, func(s *core.Session) {
					s.Call(func() { q = append(q, v) })
				})
			}
		}()
		wg.Add(1)
		go func() { // consumer
			defer wg.Done()
			c := rt.NewClient()
			hs := []*core.Handler{qh}
			for i := 0; i < p.M; i++ {
				c.SeparateWhen(hs,
					func(ss []*core.Session) bool {
						return core.Query(ss[0], func() bool { return len(q) > 0 })
					},
					func(ss []*core.Session) {
						v := core.Query(ss[0], func() int64 {
							v := q[0]
							q = q[1:]
							return v
						})
						consumed.Add(v)
					})
			}
		}()
	}
	wg.Wait()
	return checkCount("prodcons/Qs sum", consumed.Load(), prodConsWant(p))
}
