// Package future provides the completion cell underlying the runtime's
// asynchronous queries (Session.CallFuture in internal/core and the
// pipelined remote protocol in internal/remote).
//
// A Future is a write-once cell: it starts incomplete and is resolved
// exactly once, either with a value (Complete) or an error (Fail);
// later resolutions are ignored, which makes racing completers — a
// handler finishing a query versus a runtime failing stragglers at
// shutdown, or the contestants of Any — safe by construction. Consumers
// observe the result through whichever shape fits their control flow:
// a blocking Get/Await, a non-blocking TryGet, a Done channel for
// select loops, or an OnComplete callback for continuation-passing
// (the shape the M:N executor uses to reschedule an awaiting handler).
//
// The package is deliberately dependency-free: core and remote both
// build on it, and it knows about neither.
package future

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNone is the failure of combinators invoked with no futures.
var ErrNone = errors.New("future: no futures")

// PanicError wraps a panic recovered from a Then transform.
type PanicError struct {
	Value any // the recovered panic value
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("future: panic in Then: %v", e.Value)
}

// Future is a write-once completion cell. The zero value is not usable;
// use New (or Completed/Failed for pre-resolved cells). All methods are
// safe for concurrent use by any number of goroutines.
type Future struct {
	mu   sync.Mutex
	done chan struct{} // closed on completion
	val  any
	err  error
	cbs  []func(v any, err error) // pending callbacks, nil once run

	// origin is an opaque provenance tag (core stores the handler whose
	// session will resolve the future). Then/Map copy it to derived
	// futures, so awaiting a derivative is still attributable to the
	// underlying query — which is what lets deadlock detection follow
	// await edges through transformation chains.
	origin any
}

// New returns an incomplete future.
func New() *Future {
	return &Future{done: make(chan struct{})}
}

// Completed returns a future already resolved with v.
func Completed(v any) *Future {
	f := New()
	f.Complete(v)
	return f
}

// Failed returns a future already resolved with err.
func Failed(err error) *Future {
	f := New()
	f.Fail(err)
	return f
}

// Complete resolves the future with v. It reports whether this call won
// the resolution; a future already resolved is left untouched.
func (f *Future) Complete(v any) bool { return f.resolve(v, nil) }

// Fail resolves the future with err. It reports whether this call won
// the resolution.
func (f *Future) Fail(err error) bool { return f.resolve(nil, err) }

// resolve installs the result (first caller wins), closes Done, and
// runs the callbacks registered so far, in registration order, on the
// calling goroutine.
func (f *Future) resolve(v any, err error) bool {
	f.mu.Lock()
	if f.isDoneLocked() {
		f.mu.Unlock()
		return false
	}
	f.val, f.err = v, err
	cbs := f.cbs
	f.cbs = nil
	close(f.done)
	f.mu.Unlock()
	for _, cb := range cbs {
		cb(v, err)
	}
	return true
}

func (f *Future) isDoneLocked() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// SetOrigin records an opaque provenance tag on the future. The
// runtime tags each future minted by CallFuture with the handler that
// will resolve it; Then and Map propagate the tag to derived futures.
// Combinators over several futures (All, Any) have no single origin
// and leave their results untagged.
func (f *Future) SetOrigin(o any) {
	f.mu.Lock()
	f.origin = o
	f.mu.Unlock()
}

// Origin returns the provenance tag, nil if none was set.
func (f *Future) Origin() any {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.origin
}

// Done returns a channel closed when the future resolves. It is the
// select-friendly view of completion.
func (f *Future) Done() <-chan struct{} { return f.done }

// TryGet reports the result without blocking. ok is false while the
// future is incomplete.
func (f *Future) TryGet() (v any, err error, ok bool) {
	select {
	case <-f.done:
		return f.val, f.err, true
	default:
		return nil, nil, false
	}
}

// Get blocks until the future resolves and returns its result.
func (f *Future) Get() (any, error) {
	<-f.done
	return f.val, f.err
}

// Await blocks until the future resolves and returns its value,
// panicking with the error if the future failed. This mirrors the
// panic-propagation contract of core.Query: a handler-side panic
// surfaces at the client's synchronization point.
func (f *Future) Await() any {
	v, err := f.Get()
	if err != nil {
		panic(err)
	}
	return v
}

// OnComplete registers fn to run when the future resolves. If the
// future is already resolved, fn runs immediately on the calling
// goroutine; otherwise it runs on the resolving goroutine, after the
// Done channel is closed, in registration order. fn must not block:
// resolvers (handlers, the executor's wake path) call it inline.
func (f *Future) OnComplete(fn func(v any, err error)) {
	f.mu.Lock()
	if !f.isDoneLocked() {
		f.cbs = append(f.cbs, fn)
		f.mu.Unlock()
		return
	}
	v, err := f.val, f.err
	f.mu.Unlock()
	fn(v, err)
}

// Then returns a future resolved with fn applied to this future's
// value. Errors bypass fn and propagate; a panic in fn fails the
// derived future with a *PanicError. fn runs on the resolving
// goroutine (or inline if already resolved) and must not block.
func (f *Future) Then(fn func(v any) any) *Future {
	out := New()
	out.SetOrigin(f.Origin())
	f.OnComplete(func(v any, err error) {
		if err != nil {
			out.Fail(err)
			return
		}
		defer func() {
			if r := recover(); r != nil {
				out.Fail(&PanicError{Value: r})
			}
		}()
		out.Complete(fn(v))
	})
	return out
}

// All returns a future that resolves once every input has resolved:
// with the slice of values (index-aligned with fs) if all succeeded,
// or with the error of the lowest-indexed failure otherwise. All of no
// futures completes immediately with an empty slice.
func All(fs ...*Future) *Future {
	out := New()
	if len(fs) == 0 {
		out.Complete([]any{})
		return out
	}
	var (
		mu      sync.Mutex
		left    = len(fs)
		vals    = make([]any, len(fs))
		errIdx  = -1
		firstEr error
	)
	for i, f := range fs {
		i, f := i, f
		f.OnComplete(func(v any, err error) {
			mu.Lock()
			vals[i] = v
			if err != nil && (errIdx == -1 || i < errIdx) {
				errIdx, firstEr = i, err
			}
			left--
			done := left == 0
			e := firstEr
			mu.Unlock()
			if !done {
				return
			}
			if e != nil {
				out.Fail(e)
				return
			}
			out.Complete(vals)
		})
	}
	return out
}

// Any returns a future that resolves like the first input to resolve,
// value or error. Any of no futures fails with ErrNone.
func Any(fs ...*Future) *Future {
	if len(fs) == 0 {
		return Failed(ErrNone)
	}
	out := New()
	for _, f := range fs {
		f.OnComplete(func(v any, err error) {
			if err != nil {
				out.Fail(err)
				return
			}
			out.Complete(v)
		})
	}
	return out
}
