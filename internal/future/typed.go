package future

import "fmt"

// TypeError is the failure recorded when a Typed future resolves with
// a value of the wrong dynamic type.
type TypeError struct {
	Value any // the offending value
	Want  string
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("future: typed future resolved with %T, want %s", e.Value, e.Want)
}

// Typed is a typed view over a *Future: the generic veneer that turns
// the cell's `any` results into T without sprinkling assertions
// through client code. It is a value wrapper — copy it freely; all
// copies observe the same underlying future.
//
// The untyped cell stays the interchange format (core and remote
// resolve them), so Typed converts at the edges: a value of the wrong
// dynamic type surfaces as *TypeError instead of a panic, at the same
// places the untyped API would surface a handler error.
type Typed[T any] struct {
	f *Future
}

// Of wraps f in a typed view. Combine with core's QueryAsync:
//
//	fut := future.Of[int64](core.QueryAsync(s, count))
//	n, err := fut.Get()
func Of[T any](f *Future) Typed[T] { return Typed[T]{f: f} }

// CompletedOf returns an already-resolved typed future.
func CompletedOf[T any](v T) Typed[T] { return Typed[T]{f: Completed(v)} }

// Future returns the underlying untyped cell, for APIs that take one
// (Client.Await, Handler.Await, All/Any).
func (t Typed[T]) Future() *Future { return t.f }

// Done returns the completion channel of the underlying future.
func (t Typed[T]) Done() <-chan struct{} { return t.f.Done() }

// Get blocks until the future resolves and returns its value as T.
// The error is the future's own failure, or *TypeError when the value
// is not a T. An untyped nil result converts to T's zero value with no
// error ("the query produced nothing" reads better as zero than as a
// mismatch); callers that must distinguish absence should use a
// pointer or wrapper type for T.
func (t Typed[T]) Get() (T, error) {
	v, err := t.f.Get()
	return convert[T](v, err)
}

// TryGet reports the typed result without blocking; ok is false while
// the future is incomplete.
func (t Typed[T]) TryGet() (T, error, bool) {
	v, err, ok := t.f.TryGet()
	if !ok {
		var zero T
		return zero, nil, false
	}
	tv, terr := convert[T](v, err)
	return tv, terr, true
}

// Then returns a typed future resolved with fn applied to this one's
// value. Errors (including a type mismatch) bypass fn and propagate; a
// panic in fn fails the derived future with *PanicError, exactly like
// the untyped Then.
func (t Typed[T]) Then(fn func(T) T) Typed[T] {
	return Map(t, fn)
}

// Map derives a future of a different type: the typed counterpart of
// the untyped Then for transforms that change the value's type.
func Map[T, U any](t Typed[T], fn func(T) U) Typed[U] {
	out := New()
	out.SetOrigin(t.f.Origin())
	t.f.OnComplete(func(v any, err error) {
		tv, terr := convert[T](v, err)
		if terr != nil {
			out.Fail(terr)
			return
		}
		defer func() {
			if r := recover(); r != nil {
				out.Fail(&PanicError{Value: r})
			}
		}()
		out.Complete(fn(tv))
	})
	return Typed[U]{f: out}
}

// convert narrows an untyped result to T. An untyped nil converts to
// T's zero value — a type assertion on a nil interface fails for every
// T, and "the query produced nothing" is better read as zero than as a
// mismatch.
func convert[T any](v any, err error) (T, error) {
	var zero T
	if err != nil {
		return zero, err
	}
	if v == nil {
		return zero, nil
	}
	tv, ok := v.(T)
	if !ok {
		return zero, &TypeError{Value: v, Want: fmt.Sprintf("%T", zero)}
	}
	return tv, nil
}
