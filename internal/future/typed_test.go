package future

import (
	"errors"
	"testing"
)

func TestTypedGet(t *testing.T) {
	f := New()
	tf := Of[int](f)
	if _, _, ok := tf.TryGet(); ok {
		t.Fatal("TryGet reported complete on a pending future")
	}
	f.Complete(41)
	got, err := tf.Get()
	if err != nil || got != 41 {
		t.Fatalf("Get = %d, %v; want 41, nil", got, err)
	}
	if v, err, ok := tf.TryGet(); !ok || err != nil || v != 41 {
		t.Fatalf("TryGet = %d, %v, %v", v, err, ok)
	}
}

func TestTypedGetError(t *testing.T) {
	sentinel := errors.New("boom")
	tf := Of[string](Failed(sentinel))
	if _, err := tf.Get(); !errors.Is(err, sentinel) {
		t.Fatalf("error %v did not propagate", err)
	}
}

func TestTypedGetTypeMismatch(t *testing.T) {
	tf := Of[string](Completed(42))
	_, err := tf.Get()
	var te *TypeError
	if !errors.As(err, &te) {
		t.Fatalf("want *TypeError, got %v", err)
	}
}

func TestTypedNilConvertsToZero(t *testing.T) {
	n, err := Of[int](Completed(nil)).Get()
	if err != nil || n != 0 {
		t.Fatalf("nil -> (%d, %v), want (0, nil)", n, err)
	}
	p, err := Of[*int](Completed(nil)).Get()
	if err != nil || p != nil {
		t.Fatalf("nil -> (%v, %v), want (nil, nil)", p, err)
	}
}

func TestTypedThenAndMap(t *testing.T) {
	f := New()
	doubled := Of[int](f).Then(func(v int) int { return v * 2 })
	asString := Map(doubled, func(v int) string {
		if v == 84 {
			return "eighty-four"
		}
		return "?"
	})
	f.Complete(42)
	s, err := asString.Get()
	if err != nil || s != "eighty-four" {
		t.Fatalf("Map chain = %q, %v", s, err)
	}
}

func TestTypedThenPanicFails(t *testing.T) {
	tf := Of[int](Completed(1)).Then(func(int) int { panic("kaboom") })
	_, err := tf.Get()
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Fatalf("want PanicError(kaboom), got %v", err)
	}
}

func TestCompletedOf(t *testing.T) {
	v, err := CompletedOf("ready").Get()
	if err != nil || v != "ready" {
		t.Fatalf("CompletedOf = %q, %v", v, err)
	}
	// The untyped view interoperates with combinators.
	all, err := All(CompletedOf(1).Future(), CompletedOf(2).Future()).Get()
	if err != nil || len(all.([]any)) != 2 {
		t.Fatalf("All over typed futures = %v, %v", all, err)
	}
}
