package future

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCompleteAndGet(t *testing.T) {
	f := New()
	if _, _, ok := f.TryGet(); ok {
		t.Fatal("fresh future reports complete")
	}
	go f.Complete(42)
	v, err := f.Get()
	if err != nil || v.(int) != 42 {
		t.Fatalf("Get = %v, %v; want 42, nil", v, err)
	}
	if v, err, ok := f.TryGet(); !ok || err != nil || v.(int) != 42 {
		t.Fatalf("TryGet = %v, %v, %v", v, err, ok)
	}
}

func TestFirstResolutionWins(t *testing.T) {
	f := New()
	if !f.Complete(1) {
		t.Fatal("first Complete lost")
	}
	if f.Complete(2) || f.Fail(errors.New("late")) {
		t.Fatal("second resolution won")
	}
	if v, err := f.Get(); err != nil || v.(int) != 1 {
		t.Fatalf("Get = %v, %v", v, err)
	}
}

func TestDoneChannel(t *testing.T) {
	f := New()
	select {
	case <-f.Done():
		t.Fatal("Done closed before completion")
	default:
	}
	f.Fail(errors.New("boom"))
	select {
	case <-f.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed after completion")
	}
}

func TestAwaitPanicsOnError(t *testing.T) {
	want := errors.New("handler exploded")
	f := Failed(want)
	defer func() {
		if r := recover(); r != want {
			t.Fatalf("Await panicked with %v, want %v", r, want)
		}
	}()
	f.Await()
	t.Fatal("Await returned on a failed future")
}

func TestCallbacksBeforeCompletionRunInOrder(t *testing.T) {
	f := New()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		f.OnComplete(func(v any, err error) { got = append(got, i) })
	}
	f.Complete("x")
	if len(got) != 5 {
		t.Fatalf("ran %d callbacks, want 5", len(got))
	}
	for i, g := range got {
		if g != i {
			t.Fatalf("callback order %v", got)
		}
	}
}

func TestCallbackAfterCompletionRunsImmediately(t *testing.T) {
	f := Completed(7)
	ran := false
	f.OnComplete(func(v any, err error) {
		if v.(int) != 7 || err != nil {
			t.Errorf("callback got %v, %v", v, err)
		}
		ran = true
	})
	if !ran {
		t.Fatal("callback on a completed future did not run inline")
	}
}

func TestThen(t *testing.T) {
	f := New()
	g := f.Then(func(v any) any { return v.(int) + 1 })
	f.Complete(1)
	if v, err := g.Get(); err != nil || v.(int) != 2 {
		t.Fatalf("Then = %v, %v", v, err)
	}

	e := errors.New("upstream")
	if _, err := Failed(e).Then(func(v any) any { return v }).Get(); err != e {
		t.Fatalf("Then did not propagate error: %v", err)
	}

	_, err := Completed(0).Then(func(v any) any { panic("bad transform") }).Get()
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "bad transform" {
		t.Fatalf("Then panic surfaced as %v", err)
	}
}

func TestAll(t *testing.T) {
	fs := []*Future{New(), New(), New()}
	all := All(fs...)
	fs[2].Complete(3)
	fs[0].Complete(1)
	if _, _, ok := all.TryGet(); ok {
		t.Fatal("All completed early")
	}
	fs[1].Complete(2)
	v, err := all.Get()
	if err != nil {
		t.Fatal(err)
	}
	vals := v.([]any)
	for i, want := range []int{1, 2, 3} {
		if vals[i].(int) != want {
			t.Fatalf("All values %v", vals)
		}
	}

	if v, err := All().Get(); err != nil || len(v.([]any)) != 0 {
		t.Fatalf("All() = %v, %v", v, err)
	}
}

func TestAllFailsWithLowestIndexedError(t *testing.T) {
	fs := []*Future{New(), New(), New()}
	all := All(fs...)
	e1 := errors.New("one")
	e0 := errors.New("zero")
	fs[1].Fail(e1)
	fs[2].Complete(2)
	fs[0].Fail(e0)
	if _, err := all.Get(); err != e0 {
		t.Fatalf("All error = %v, want the lowest-indexed failure %v", err, e0)
	}
}

func TestAny(t *testing.T) {
	fs := []*Future{New(), New()}
	first := Any(fs...)
	fs[1].Complete("second input, first to finish")
	v, err := first.Get()
	if err != nil || v.(string) == "" {
		t.Fatalf("Any = %v, %v", v, err)
	}
	fs[0].Complete("late")
	if v2, _ := first.Get(); v2 != v {
		t.Fatal("Any result changed after a late completion")
	}

	if _, err := Any().Get(); !errors.Is(err, ErrNone) {
		t.Fatalf("Any() = %v, want ErrNone", err)
	}
}

// TestConcurrentResolution hammers a future from many goroutines; with
// -race this checks the first-wins protocol and callback publication.
func TestConcurrentResolution(t *testing.T) {
	const goroutines = 16
	for iter := 0; iter < 200; iter++ {
		f := New()
		var wins, cbs atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				switch g % 3 {
				case 0:
					if f.Complete(g) {
						wins.Add(1)
					}
				case 1:
					if f.Fail(fmt.Errorf("err %d", g)) {
						wins.Add(1)
					}
				default:
					f.OnComplete(func(any, error) { cbs.Add(1) })
				}
			}()
		}
		wg.Wait()
		if wins.Load() != 1 {
			t.Fatalf("iter %d: %d resolutions won, want exactly 1", iter, wins.Load())
		}
		want := 0
		for g := 0; g < goroutines; g++ {
			if g%3 == 2 {
				want++
			}
		}
		if int(cbs.Load()) != want {
			t.Fatalf("iter %d: %d callbacks ran, want %d", iter, cbs.Load(), want)
		}
	}
}

// TestAllAnyUnderRace resolves inputs from concurrent goroutines.
func TestAllAnyUnderRace(t *testing.T) {
	const n = 32
	fs := make([]*Future, n)
	for i := range fs {
		fs[i] = New()
	}
	all := All(fs...)
	first := Any(fs...)
	var wg sync.WaitGroup
	for i := range fs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			fs[i].Complete(i)
		}()
	}
	wg.Wait()
	v, err := all.Get()
	if err != nil || len(v.([]any)) != n {
		t.Fatalf("All = %v, %v", v, err)
	}
	if _, err := first.Get(); err != nil {
		t.Fatal(err)
	}
}
