package tbb

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDequeOwnerLIFO(t *testing.T) {
	d := newWsDeque()
	t1, t2, t3 := &task{}, &task{}, &task{}
	d.push(t1)
	d.push(t2)
	d.push(t3)
	if d.pop() != t3 || d.pop() != t2 || d.pop() != t1 {
		t.Fatal("owner pop must be LIFO")
	}
	if d.pop() != nil {
		t.Fatal("pop on empty deque must return nil")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := newWsDeque()
	t1, t2 := &task{}, &task{}
	d.push(t1)
	d.push(t2)
	if d.steal() != t1 || d.steal() != t2 {
		t.Fatal("steal must be FIFO")
	}
	if d.steal() != nil {
		t.Fatal("steal on empty deque must return nil")
	}
}

func TestDequeGrow(t *testing.T) {
	d := newWsDeque()
	const n = 1000 // > initial buffer of 64
	tasks := make([]*task, n)
	for i := range tasks {
		tasks[i] = &task{}
		d.push(tasks[i])
	}
	if got := d.approxLen(); got != n {
		t.Fatalf("approxLen = %d, want %d", got, n)
	}
	for i := n - 1; i >= 0; i-- {
		if d.pop() != tasks[i] {
			t.Fatalf("pop order wrong at %d after grow", i)
		}
	}
}

// Property: under concurrent owner pops and thief steals, every pushed
// task is taken exactly once.
func TestDequeExactlyOnce(t *testing.T) {
	d := newWsDeque()
	const n = 100000
	var taken atomic.Int64
	seen := make([]atomic.Int32, n)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < 3; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if tk := d.steal(); tk != nil {
					idx := tk.fn // abuse: index stored via closure
					_ = idx
					tk.fn(nil)
					taken.Add(1)
				}
				select {
				case <-stop:
					if d.steal() == nil {
						return
					}
				default:
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		i := i
		d.push(&task{fn: func(*worker) { seen[i].Add(1) }})
		if i%3 == 0 {
			if tk := d.pop(); tk != nil {
				tk.fn(nil)
				taken.Add(1)
			}
		}
	}
	for {
		tk := d.pop()
		if tk == nil && d.approxLen() == 0 {
			break
		}
		if tk != nil {
			tk.fn(nil)
			taken.Add(1)
		}
	}
	close(stop)
	wg.Wait()
	// Drain any remainder the thieves left.
	for tk := d.steal(); tk != nil; tk = d.steal() {
		tk.fn(nil)
		taken.Add(1)
	}
	if got := taken.Load(); got != n {
		t.Fatalf("taken %d tasks, want %d", got, n)
	}
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("task %d executed %d times", i, c)
		}
	}
}

func TestPoolGoRunsTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 1000; i++ {
		wg.Add(1)
		p.Go(func() {
			count.Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	if count.Load() != 1000 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		const n = 10000
		marks := make([]atomic.Int32, n)
		p.ParallelFor(0, n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				marks[i].Add(1)
			}
		})
		for i := range marks {
			if c := marks[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
		p.Close()
	}
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ran := false
	p.ParallelFor(5, 5, 10, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("body ran on empty range")
	}
	total := 0
	p.ParallelFor(3, 4, 100, func(lo, hi int) { total += hi - lo })
	if total != 1 {
		t.Fatalf("tiny range covered %d, want 1", total)
	}
}

func TestParallelReduceSum(t *testing.T) {
	for _, workers := range []int{1, 3} {
		p := NewPool(workers)
		const n = 100000
		got := ParallelReduce(p, 0, n, 128,
			func(lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i)
				}
				return s
			},
			func(a, b int64) int64 { return a + b })
		want := int64(n) * (n - 1) / 2
		if got != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, got, want)
		}
		p.Close()
	}
}

func TestParallelReduceDeterministicOrder(t *testing.T) {
	// Non-commutative combine (string concat) must still be
	// deterministic because combines happen in range order.
	p := NewPool(4)
	defer p.Close()
	want := ""
	for i := 0; i < 100; i++ {
		want += string(rune('a' + i%26))
	}
	for round := 0; round < 10; round++ {
		got := ParallelReduce(p, 0, 100, 3,
			func(lo, hi int) string {
				s := ""
				for i := lo; i < hi; i++ {
					s += string(rune('a' + i%26))
				}
				return s
			},
			func(a, b string) string { return a + b })
		if got != want {
			t.Fatalf("round %d: non-deterministic reduce", round)
		}
	}
}

func TestNestedParallelFor(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var count atomic.Int64
	p.ParallelFor(0, 10, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.ParallelFor(0, 10, 1, func(l2, h2 int) {
				count.Add(int64(h2 - l2))
			})
		}
	})
	if count.Load() != 100 {
		t.Fatalf("count = %d, want 100", count.Load())
	}
}

func TestParallelSortSorts(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	rng := rand.New(rand.NewSource(7))
	data := make([]int, 50000)
	for i := range data {
		data[i] = rng.Intn(1000)
	}
	want := append([]int(nil), data...)
	sort.Ints(want)
	ParallelSort(p, data, func(a, b int) bool { return a < b })
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, data[i], want[i])
		}
	}
}

func TestParallelSortStable(t *testing.T) {
	type kv struct{ k, pos int }
	p := NewPool(4)
	defer p.Close()
	rng := rand.New(rand.NewSource(3))
	data := make([]kv, 30000)
	for i := range data {
		data[i] = kv{k: rng.Intn(8), pos: i}
	}
	ParallelSort(p, data, func(a, b kv) bool { return a.k < b.k })
	for i := 1; i < len(data); i++ {
		if data[i-1].k == data[i].k && data[i-1].pos > data[i].pos {
			t.Fatalf("instability at %d: equal keys out of original order", i)
		}
		if data[i-1].k > data[i].k {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestParallelSortQuick(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	f := func(data []int16) bool {
		d := make([]int, len(data))
		for i, v := range data {
			d[i] = int(v)
		}
		want := append([]int(nil), d...)
		sort.Ints(want)
		ParallelSort(p, d, func(a, b int) bool { return a < b })
		for i := range d {
			if d[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolCloseWaitsForPending(t *testing.T) {
	p := NewPool(2)
	var done atomic.Int64
	for i := 0; i < 100; i++ {
		p.Go(func() { done.Add(1) })
	}
	p.Close()
	if done.Load() != 100 {
		t.Fatalf("Close returned with %d/100 tasks done", done.Load())
	}
}
