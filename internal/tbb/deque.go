// Package tbb is a work-stealing task pool with parallel algorithm
// skeletons (ParallelFor, ParallelReduce, ParallelSort) in the spirit
// of Intel Threading Building Blocks. It is the substrate standing in
// for C++/TBB in the paper's language comparison: fork-join data
// parallelism over shared memory with randomized work stealing and no
// safety guarantees — the performance ceiling the safe models are
// measured against.
package tbb

import "sync/atomic"

// task is a unit of work. The executing worker is passed in so that
// nested spawns go to the correct local deque.
type task struct {
	fn func(w *worker)
}

// wsBuf is a circular task buffer of power-of-two size.
type wsBuf struct {
	mask int64
	a    []atomic.Pointer[task]
}

func newWsBuf(n int64) *wsBuf {
	return &wsBuf{mask: n - 1, a: make([]atomic.Pointer[task], n)}
}

func (b *wsBuf) size() int64          { return b.mask + 1 }
func (b *wsBuf) get(i int64) *task    { return b.a[i&b.mask].Load() }
func (b *wsBuf) put(i int64, t *task) { b.a[i&b.mask].Store(t) }
func (b *wsBuf) grow(bot, top int64) *wsBuf {
	nb := newWsBuf(b.size() * 2)
	for i := top; i < bot; i++ {
		nb.put(i, b.get(i))
	}
	return nb
}

// wsDeque is a Chase–Lev work-stealing deque: the owning worker pushes
// and pops at the bottom without synchronization in the common case;
// thieves steal from the top with a CAS. Go's sync/atomic operations
// are sequentially consistent, so the classic algorithm is used
// without explicit fences.
type wsDeque struct {
	bottom atomic.Int64
	top    atomic.Int64
	buf    atomic.Pointer[wsBuf]
}

func newWsDeque() *wsDeque {
	d := &wsDeque{}
	d.buf.Store(newWsBuf(64))
	return d
}

// push appends t at the bottom. Owner only.
func (d *wsDeque) push(t *task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	buf := d.buf.Load()
	if b-tp >= buf.size()-1 {
		buf = buf.grow(b, tp)
		d.buf.Store(buf)
	}
	buf.put(b, t)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task. Owner only. Returns nil
// when the deque is empty or the last task was lost to a thief.
func (d *wsDeque) pop() *task {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(t)
		return nil
	}
	tk := buf.get(b)
	if t == b {
		// Last element: race the thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			tk = nil // a thief won
		}
		d.bottom.Store(t + 1)
	}
	return tk
}

// steal takes the oldest task. Safe from any goroutine. Returns nil if
// the deque is empty or the steal raced and lost (caller may retry).
func (d *wsDeque) steal() *task {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	buf := d.buf.Load()
	tk := buf.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return tk
}

// approxLen reports the approximate number of queued tasks.
func (d *wsDeque) approxLen() int64 {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return n
}
