package tbb

import (
	"sort"
	"sync/atomic"
)

// sortGrain is the range size below which ParallelSort falls back to
// the standard library's sequential sort.
const sortGrain = 2048

// ParallelSort sorts data by less using parallel merge sort on the
// pool: halves sort concurrently (one half spawned for stealing, with a
// helping join) and are merged into a scratch buffer. The sort is
// stable only if less induces a strict weak ordering and equal elements
// never swap during merges — merges take from the left half first, so
// the result is stable, matching tbb::parallel_sort's common use here
// (winnow needs a deterministic order, which stability provides).
func ParallelSort[T any](p *Pool, data []T, less func(a, b T) bool) {
	if len(data) < 2 {
		return
	}
	scratch := make([]T, len(data))
	var run func(w *worker, d, s []T)
	run = func(w *worker, d, s []T) {
		if len(d) <= sortGrain {
			sort.SliceStable(d, func(i, j int) bool { return less(d[i], d[j]) })
			return
		}
		mid := len(d) / 2
		var done atomic.Bool
		p.spawn(w, &task{fn: func(w2 *worker) {
			run(w2, d[mid:], s[mid:])
			done.Store(true)
		}})
		run(w, d[:mid], s[:mid])
		p.helpWhile(w, &done)
		// Merge d[:mid] and d[mid:] into s, then copy back.
		i, j, k := 0, mid, 0
		for i < mid && j < len(d) {
			if less(d[j], d[i]) {
				s[k] = d[j]
				j++
			} else {
				s[k] = d[i]
				i++
			}
			k++
		}
		for i < mid {
			s[k] = d[i]
			i++
			k++
		}
		for j < len(d) {
			s[k] = d[j]
			j++
			k++
		}
		copy(d, s[:len(d)])
	}
	run(nil, data, scratch)
}
