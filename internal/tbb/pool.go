package tbb

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"scoopqs/internal/sched"
)

// Pool is a fixed-size work-stealing task pool. Create one with
// NewPool, run parallel algorithms on it, and Close it when done.
type Pool struct {
	workers []*worker

	injectMu sync.Mutex
	inject   []*task // submissions from non-worker goroutines

	closed  atomic.Bool
	pending atomic.Int64 // tasks submitted but not yet finished
	wg      sync.WaitGroup
}

type worker struct {
	pool   *pool
	id     int
	deque  *wsDeque
	parker *sched.Parker
	asleep atomic.Bool
	rng    *rand.Rand
}

// pool is an alias used inside worker to keep field names short.
type pool = Pool

// NewPool starts a pool with n workers (n < 1 selects 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{}
	for i := 0; i < n; i++ {
		w := &worker{
			pool:   p,
			id:     i,
			deque:  newWsDeque(),
			parker: sched.NewParker(),
			rng:    rand.New(rand.NewSource(int64(i)*2654435761 + 12345)),
		}
		p.workers = append(p.workers, w)
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go w.loop()
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Close stops the workers after all outstanding tasks finish. The pool
// must not be used afterwards.
func (p *Pool) Close() {
	p.closed.Store(true)
	p.wakeAll()
	p.wg.Wait()
}

// spawn schedules t, preferring the spawning worker's own deque (w may
// be nil for external submissions, which go to the inject queue).
func (p *Pool) spawn(w *worker, t *task) {
	p.pending.Add(1)
	if w != nil {
		w.deque.push(t)
	} else {
		p.injectMu.Lock()
		p.inject = append(p.inject, t)
		p.injectMu.Unlock()
	}
	p.wakeOne()
}

func (p *Pool) popInject() *task {
	p.injectMu.Lock()
	defer p.injectMu.Unlock()
	if n := len(p.inject); n > 0 {
		t := p.inject[0]
		p.inject = p.inject[1:]
		return t
	}
	return nil
}

func (p *Pool) wakeOne() {
	for _, w := range p.workers {
		if w.asleep.Load() {
			w.parker.Unpark()
			return
		}
	}
}

func (p *Pool) wakeAll() {
	for _, w := range p.workers {
		w.parker.Unpark()
	}
}

// Go submits fn for asynchronous execution from any goroutine.
func (p *Pool) Go(fn func()) {
	p.spawn(nil, &task{fn: func(*worker) { fn() }})
}

func (w *worker) findTask() *task {
	if t := w.deque.pop(); t != nil {
		return t
	}
	if t := w.pool.popInject(); t != nil {
		return t
	}
	// Randomized stealing, a few sweeps before giving up.
	n := len(w.pool.workers)
	for attempt := 0; attempt < 2*n; attempt++ {
		victim := w.pool.workers[w.rng.Intn(n)]
		if victim == w {
			continue
		}
		if t := victim.deque.steal(); t != nil {
			return t
		}
	}
	return nil
}

func (w *worker) loop() {
	defer w.pool.wg.Done()
	idleSpins := 0
	for {
		t := w.findTask()
		if t != nil {
			idleSpins = 0
			t.fn(w)
			w.pool.pending.Add(-1)
			continue
		}
		if w.pool.closed.Load() && w.pool.pending.Load() == 0 {
			return
		}
		if idleSpins < 32 {
			sched.SpinWait(idleSpins)
			idleSpins++
			continue
		}
		// Park with a publication handshake: set asleep, re-check for
		// work that raced in, then sleep.
		w.asleep.Store(true)
		if t := w.findTask(); t != nil {
			w.asleep.Store(false)
			idleSpins = 0
			t.fn(w)
			w.pool.pending.Add(-1)
			continue
		}
		if w.pool.closed.Load() {
			w.asleep.Store(false)
			if w.pool.pending.Load() == 0 {
				return
			}
			continue
		}
		w.parker.Park()
		w.asleep.Store(false)
		idleSpins = 0
	}
}

// ParallelFor executes body over [lo, hi) by recursive range splitting
// with the given grain size: ranges at or below grain run sequentially;
// larger ranges split in half, with the right half spawned for
// stealing. The calling goroutine participates by running the leftmost
// spine and then helps execute outstanding tasks until the whole range
// has been processed, so nested ParallelFor calls from inside worker
// tasks cannot deadlock the pool.
func (p *Pool) ParallelFor(lo, hi, grain int, body func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	if hi <= lo {
		return
	}
	var open atomic.Int64
	var run func(w *worker, lo, hi int)
	run = func(w *worker, lo, hi int) {
		for hi-lo > grain {
			mid := lo + (hi-lo)/2
			open.Add(1)
			mid, right := mid, hi
			p.spawn(w, &task{fn: func(w2 *worker) {
				defer open.Add(-1)
				run(w2, mid, right)
			}})
			hi = mid
		}
		body(lo, hi)
	}
	run(nil, lo, hi)
	p.helpUntil(nil, func() bool { return open.Load() == 0 })
}

// stealAny sweeps all workers' deques once, for external helpers.
func (p *Pool) stealAny() *task {
	for _, w := range p.workers {
		if t := w.deque.steal(); t != nil {
			return t
		}
	}
	return nil
}

// helpUntil executes pending tasks until done reports true. This is
// the TBB-style blocking join: a goroutine that must wait for a
// spawned task keeps the pool busy instead of sleeping, which makes
// joins deadlock-free on a single-worker pool (the spawned task may
// still be sitting in the waiter's own deque) and lets nested parallel
// algorithms run from inside tasks. w may be nil for goroutines that
// are not pool workers; they help from the inject queue and by
// stealing.
func (p *Pool) helpUntil(w *worker, done func() bool) {
	for i := 0; !done(); i++ {
		var t *task
		if w != nil {
			t = w.findTask()
		} else if t = p.popInject(); t == nil {
			t = p.stealAny()
		}
		if t != nil {
			t.fn(w)
			p.pending.Add(-1)
			i = 0
			continue
		}
		sched.SpinWait(i)
	}
}

// helpWhile is helpUntil specialized to an atomic completion flag.
func (p *Pool) helpWhile(w *worker, done *atomic.Bool) {
	p.helpUntil(w, done.Load)
}

// ParallelReduce folds leaf results over [lo, hi) with the same
// splitting strategy as ParallelFor. combine must be associative; it is
// applied in deterministic left-to-right range order, so deterministic
// leaves give deterministic results.
func ParallelReduce[T any](p *Pool, lo, hi, grain int, leaf func(lo, hi int) T, combine func(a, b T) T) T {
	if grain < 1 {
		grain = 1
	}
	if hi <= lo {
		var zero T
		return zero
	}
	var run func(w *worker, lo, hi int) T
	run = func(w *worker, lo, hi int) T {
		if hi-lo <= grain {
			return leaf(lo, hi)
		}
		mid := lo + (hi-lo)/2
		var right T
		var done atomic.Bool
		p.spawn(w, &task{fn: func(w2 *worker) {
			right = run(w2, mid, hi)
			done.Store(true)
		}})
		left := run(w, lo, mid)
		p.helpWhile(w, &done)
		return combine(left, right)
	}
	return run(nil, lo, hi)
}
