package sched

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkExecutorDispatch measures ready→step round-trips: a set of
// self-rescheduling runnables ping-pong through the executor, so every
// operation is one Ready plus one Step dispatch. This is the pure
// scheduler-substrate cost, with no handler or queue work on top. The
// local variant re-readies through the worker's own deque (the fast
// re-ready path message chains use); the injector variant goes through
// the shared queue every time, which is what the pre-work-stealing
// executor did for all traffic. The Workers sweep shows how dispatch
// throughput scales with pool size.
func BenchmarkExecutorDispatch(b *testing.B) {
	for _, mode := range []string{"local", "injector"} {
		for _, workers := range []int{1, 2, 4, 8} {
			for _, pingers := range []int{1, 64} {
				name := fmt.Sprintf("%s/workers=%d/pingers=%d", mode, workers, pingers)
				local := mode == "local"
				b.Run(name, func(b *testing.B) {
					e := NewExecutor(workers)
					defer e.Stop()
					var wg sync.WaitGroup
					wg.Add(pingers)
					quota := b.N / pingers
					if quota < 1 {
						quota = 1
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < pingers; i++ {
						p := &pinger{e: e, left: quota, wg: &wg, local: local}
						p.task = NewTask(p)
						e.Ready(p.task)
					}
					wg.Wait()
				})
			}
		}
	}
}

// pinger re-readies itself until its quota is used up.
type pinger struct {
	e     *Executor
	task  *Task
	left  int
	local bool
	wg    *sync.WaitGroup
}

func (p *pinger) Step(w *Worker) {
	p.left--
	if p.left <= 0 {
		p.wg.Done()
		return
	}
	if p.local {
		p.e.ReadyLocal(w, p.task)
	} else {
		p.e.Ready(p.task)
	}
}
