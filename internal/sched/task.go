package sched

import (
	"sync"
	"sync/atomic"

	"scoopqs/internal/obs"
)

// This file is the fork-join layer of the executor: one-shot data-
// parallel tasks sharing the scheduling substrate (per-worker Chase–Lev
// deques, runnext buffers, injector, wake protocol) with the handler
// state machines. A spawned task is an ordinary *Task in the queues —
// a spawning worker pushes it onto its own deque through the ReadyLocal
// fast path and idle workers steal it exactly like a handler step — so
// one scheduler serves both the message-passing runtime and the
// TBB-style parallel skeletons (ParallelFor and friends in
// parallel.go), and the two workloads contend for the same workers
// instead of fighting across two pools.
//
// The join is TBB's helping join, adapted to a mixed queue: a waiter
// first executes *fork-join* work it can find (its own local queues,
// the injector, victims' deques), which makes joins deadlock-free even
// on a single-worker pool — the spawned task may be sitting in the
// waiter's own deque. Handler runnables found while helping are not run
// (a join must not nest an unbounded handler drain mid-wait); they are
// republished through the injector for the regular workers. A waiter
// that finds no runnable task parks, bracketed by BlockingBegin/End so
// the pool compensates: task waits compose with handler blocking
// exactly like any other blocking client code.

// waitSpins is how many empty help rounds a waiter performs (with
// SpinWait backoff) before parking on the group. Parking costs a
// park/unpark cycle plus possibly a compensation spawn; the tail of a
// join is usually one in-flight leaf away.
const waitSpins = 32

// taskPanic boxes a panic value recovered from a spawned task so a nil
// interface panic survives the trip through an atomic pointer.
type taskPanic struct{ v any }

// TaskGroup tracks a set of spawned fork-join tasks so a caller can
// Wait for all of them. Groups nest freely: a spawned task may create
// its own group and spawn into it (the parallel skeletons do exactly
// that at every split). A group may be reused for another fork-join
// phase once Wait has returned.
//
// The executor must not be stopped while a group has tasks outstanding:
// Stop drains queued work, but spawns racing Stop are dropped like any
// other enqueue and would leave Wait pending forever.
type TaskGroup struct {
	e       *Executor
	pending atomic.Int64
	panicV  atomic.Pointer[taskPanic] // first task panic, re-raised by Wait

	mu      sync.Mutex
	waiters []*Parker
}

// NewGroup returns an empty fork-join group on this executor.
func (e *Executor) NewGroup() *TaskGroup { return &TaskGroup{e: e} }

// funcTask is one spawned closure: a one-shot Runnable carrying its own
// scheduling token, so a spawn costs a single allocation. Its concrete
// type is how the scheduler tells fork-join work from handler work
// (steal accounting, the helping join's run-or-republish decision).
type funcTask struct {
	tok Task
	g   *TaskGroup
	fn  func(*Worker)
}

// Step runs the closure once. A panic is captured into the group (first
// one wins) rather than unwinding the worker, and is re-raised at the
// join point; the group is decremented on every exit path so Wait can
// never hang on a panicked task.
func (ft *funcTask) Step(w *Worker) {
	g := ft.g
	defer func() {
		if r := recover(); r != nil {
			g.panicV.CompareAndSwap(nil, &taskPanic{v: r})
		}
		g.finish()
	}()
	ft.fn(w)
}

// isTask reports whether t is fork-join work (as opposed to a handler
// state machine or other long-lived Runnable).
func isTask(t *Task) bool {
	_, ok := t.r.(*funcTask)
	return ok
}

// Spawn schedules fn as one task of the group. Pass the worker the
// calling code runs on so the task takes the local deque fast path —
// it is then typically the spawner's or a thief's very next dispatch;
// a nil w (the caller is not on a pool worker, or does not know its
// worker) routes through the shared injector. fn receives the worker
// that eventually executes it, for nested spawns.
func (g *TaskGroup) Spawn(w *Worker, fn func(*Worker)) {
	g.pending.Add(1)
	g.e.tasksSpawned.Add(1)
	if obs.Enabled() {
		emitOn(w, obs.KindTaskSpawn, 0, 0)
	}
	ft := &funcTask{g: g, fn: fn}
	ft.tok.r = ft
	g.e.ReadyLocal(w, &ft.tok)
}

// finish retires one task; the last one out wakes every parked waiter.
// The decrement is outside the mutex, so it pairs with Wait's
// under-mutex pending check: a waiter that registered before the final
// decrement is seen by the sweep below, and one that checks after it
// observes pending == 0 and never parks.
func (g *TaskGroup) finish() {
	if g.pending.Add(-1) != 0 {
		return
	}
	g.mu.Lock()
	ws := g.waiters
	g.waiters = nil
	g.mu.Unlock()
	for _, p := range ws {
		p.Unpark()
	}
}

// Wait blocks until every task spawned into the group has finished,
// helping execute fork-join work while it waits. Pass the worker the
// calling code runs on (nil when unknown or external), exactly as for
// Spawn. If any task panicked, Wait re-panics with the first captured
// value once all tasks have finished.
//
// Wait may be called from inside a handler step or a spawned task: the
// helping loop keeps the worker productive, and when nothing runnable
// remains the park is bracketed with BlockingBegin/End so the pool
// spawns a replacement worker rather than deadlocking — a task wait is
// just another blocking section to the compensation machinery.
func (g *TaskGroup) Wait(w *Worker) {
	e := g.e
	if w != nil && w.e != e {
		w = nil
	}
	if obs.Enabled() {
		t0 := obs.Now()
		defer func() {
			d := obs.Now() - t0
			taskWaitHist.Observe(d)
			emitOn(w, obs.KindTaskJoin, 0, d)
		}()
	}
	var pk *Parker
	idle := 0
	for g.pending.Load() > 0 {
		if g.helpOnce(w) {
			idle = 0
			continue
		}
		idle++
		if idle <= waitSpins {
			SpinWait(idle)
			continue
		}
		// Nothing runnable anywhere and still pending: the remaining
		// tasks are in flight on other goroutines. Park until the last
		// one completes the group. Registration is re-checked against
		// pending under the group mutex (see finish), so the wake
		// cannot be lost; BlockingBegin flushes this worker's (empty)
		// local queues and keeps the pool's worker budget whole.
		if pk == nil {
			pk = NewParker()
		}
		g.mu.Lock()
		if g.pending.Load() == 0 {
			g.mu.Unlock()
			break
		}
		g.waiters = append(g.waiters, pk)
		g.mu.Unlock()
		e.taskWaitParks.Add(1)
		e.BlockingBegin(w)
		pk.Park()
		e.BlockingEnd(w)
		idle = 0
	}
	if p := g.panicV.Swap(nil); p != nil {
		panic(p.v)
	}
}

// helpOnce finds and runs one fork-join task from any source, in the
// same order a worker searches: own next slot and deque (worker
// callers only), the injector, then victims' deques in randomized
// order. It reports whether it ran a task. Non-task work it uncovers —
// a handler runnable at the head of the waiter's own deque or the
// injector — is republished through the injector for the regular
// workers: the waiter would have flushed it there anyway had it parked,
// and a join must not execute an open-ended handler drain.
func (g *TaskGroup) helpOnce(w *Worker) bool {
	e := g.e
	if w != nil {
		for {
			t := w.takeNext()
			if t == nil {
				t = w.dq.pop()
			}
			if t == nil {
				break
			}
			if isTask(t) {
				noteDispatchAny(w, t)
				t.r.Step(w)
				return true
			}
			e.Ready(t)
		}
	}
	// One injector pop per round: re-popping our own republished
	// non-task entries in a loop would spin the FIFO.
	if t := e.tryInjector(); t != nil {
		if isTask(t) {
			noteDispatchAny(w, t)
			t.r.Step(w)
			return true
		}
		e.Ready(t)
	}
	victims := *e.snap.Load()
	n := len(victims)
	if n == 0 {
		return false
	}
	start := 0
	if w != nil {
		w.rng ^= w.rng << 13
		w.rng ^= w.rng >> 7
		w.rng ^= w.rng << 17
		start = int(w.rng % uint64(n))
	} else {
		start = int(e.helpSeq.Add(1) % uint64(n))
	}
	for i := 0; i < n; i++ {
		v := victims[(start+i)%n]
		if v == w {
			continue
		}
		t := v.dq.steal()
		if t == nil {
			continue // next slots are the owner's; helpers leave them
		}
		if isTask(t) {
			e.taskSteals.Add(1)
			noteDispatchAny(w, t)
			t.r.Step(w)
			return true
		}
		e.Ready(t)
	}
	return false
}
