package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// funcRunnable adapts a closure to Runnable for tests.
type funcRunnable func()

func (f funcRunnable) Step() { f() }

func TestExecutorRunsReadyWork(t *testing.T) {
	e := NewExecutor(4)
	defer e.Stop()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		e.Ready(funcRunnable(func() {
			n.Add(1)
			wg.Done()
		}))
	}
	wg.Wait()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d steps, want 100", got)
	}
}

func TestExecutorStopDrainsPendingWork(t *testing.T) {
	e := NewExecutor(2)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		e.Ready(funcRunnable(func() { n.Add(1) }))
	}
	e.Stop() // must not return before queued work ran
	if got := n.Load(); got != 50 {
		t.Fatalf("Stop returned with %d/50 steps run", got)
	}
}

func TestExecutorReadyAfterStopIsDropped(t *testing.T) {
	e := NewExecutor(1)
	e.Stop()
	ran := make(chan struct{})
	e.Ready(funcRunnable(func() { close(ran) }))
	select {
	case <-ran:
		t.Fatal("Ready after Stop executed work")
	case <-time.After(50 * time.Millisecond):
	}
}

// A single-worker pool whose only worker blocks must spawn a
// compensation worker, so work the blocked one depends on still runs.
func TestExecutorBlockingCompensation(t *testing.T) {
	e := NewExecutor(1)
	defer e.Stop()
	release := make(chan struct{})
	done := make(chan struct{})
	e.Ready(funcRunnable(func() {
		e.BlockingBegin()
		<-release // needs the second runnable to make progress
		e.BlockingEnd()
		close(done)
	}))
	e.Ready(funcRunnable(func() { close(release) }))
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pool deadlocked despite blocking compensation")
	}
	spawns, _ := e.Counters()
	if spawns < 1 {
		t.Fatalf("expected at least one compensation spawn, got %d", spawns)
	}
}

// A chain of nested blocking sections much deeper than the pool must
// complete: each blocked worker hands its slot to a replacement.
func TestExecutorDeepBlockingChain(t *testing.T) {
	const depth = 32
	e := NewExecutor(2)
	defer e.Stop()
	done := make(chan struct{})
	var spawn func(level int)
	spawn = func(level int) {
		if level == depth {
			close(done)
			return
		}
		inner := make(chan struct{})
		e.Ready(funcRunnable(func() {
			e.BlockingBegin()
			spawn(level + 1) // runs on another worker
			<-inner
			e.BlockingEnd()
		}))
		e.Ready(funcRunnable(func() { close(inner) }))
	}
	spawn(0)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deep blocking chain starved the pool")
	}
}

func TestExecutorParksIdleWorkers(t *testing.T) {
	e := NewExecutor(2)
	// Give the workers a moment with nothing to do.
	time.Sleep(20 * time.Millisecond)
	_, parks := e.Counters()
	if parks < 1 {
		t.Fatalf("idle workers never parked (parks=%d)", parks)
	}
	e.Stop()
}

func TestNewExecutorRejectsZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewExecutor(0) did not panic")
		}
	}()
	NewExecutor(0)
}
