package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// funcRunnable adapts a closure to Runnable for tests.
type funcRunnable func()

func (f funcRunnable) Step(*Worker) { f() }

// task wraps a closure in a fresh Task.
func task(f func()) *Task { return NewTask(funcRunnable(f)) }

// ctxRunnable adapts a worker-aware closure to Runnable.
type ctxRunnable func(w *Worker)

func (f ctxRunnable) Step(w *Worker) { f(w) }

func TestExecutorRunsReadyWork(t *testing.T) {
	e := NewExecutor(4)
	defer e.Stop()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		e.Ready(task(func() {
			n.Add(1)
			wg.Done()
		}))
	}
	wg.Wait()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d steps, want 100", got)
	}
}

func TestExecutorStopDrainsPendingWork(t *testing.T) {
	e := NewExecutor(2)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		e.Ready(task(func() { n.Add(1) }))
	}
	e.Stop() // must not return before queued work ran
	if got := n.Load(); got != 50 {
		t.Fatalf("Stop returned with %d/50 steps run", got)
	}
}

func TestExecutorReadyAfterStopIsDropped(t *testing.T) {
	e := NewExecutor(1)
	e.Stop()
	ran := make(chan struct{})
	e.Ready(task(func() { close(ran) }))
	select {
	case <-ran:
		t.Fatal("Ready after Stop executed work")
	case <-time.After(50 * time.Millisecond):
	}
}

// A single-worker pool whose only worker blocks must spawn a
// compensation worker, so work the blocked one depends on still runs.
func TestExecutorBlockingCompensation(t *testing.T) {
	e := NewExecutor(1)
	defer e.Stop()
	release := make(chan struct{})
	done := make(chan struct{})
	e.Ready(task(func() {
		e.BlockingBegin(nil)
		<-release // needs the second runnable to make progress
		e.BlockingEnd(nil)
		close(done)
	}))
	e.Ready(task(func() { close(release) }))
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pool deadlocked despite blocking compensation")
	}
	spawns, _ := e.Counters()
	if spawns < 1 {
		t.Fatalf("expected at least one compensation spawn, got %d", spawns)
	}
}

// Work pushed onto the blocking worker's local deque must be stolen by
// the compensation worker — the delegation pattern: a handler wakes its
// dependency locally, then blocks on it.
func TestExecutorBlockedDequeIsStolen(t *testing.T) {
	e := NewExecutor(1)
	defer e.Stop()
	done := make(chan struct{})
	release := make(chan struct{})
	e.Ready(NewTask(ctxRunnable(func(w *Worker) {
		// Declaring the worker disables the lone-handoff wake elision
		// for pushes made inside the section: the push below must be
		// announced, because only a steal can run it while we block.
		e.BlockingBegin(w)
		// Let the compensation worker sweep, find nothing, and park
		// before the push: an elided wake here would strand the task
		// (regression for the lone-handoff/blocking-section deadlock).
		time.Sleep(50 * time.Millisecond)
		e.ReadyLocal(w, task(func() { close(release) }))
		<-release
		e.BlockingEnd(w)
		close(done)
	})))
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("locally pushed dependency was never stolen from the blocked worker")
	}
	if steals, _, _ := e.StealCounters(); steals < 1 {
		t.Fatalf("expected the dependency to be stolen, steals=%d", steals)
	}
}

// A chain of nested blocking sections much deeper than the pool must
// complete: each blocked worker hands its slot to a replacement. The
// test waits for every blocking section to finish before Stop — Stop's
// contract drops late Ready calls, and a producer may still be between
// its two pushes when the deepest level is reached.
func TestExecutorDeepBlockingChain(t *testing.T) {
	const depth = 32
	e := NewExecutor(2)
	defer e.Stop()
	done := make(chan struct{})
	var wg sync.WaitGroup
	var spawn func(level int)
	spawn = func(level int) {
		if level == depth {
			close(done)
			return
		}
		inner := make(chan struct{})
		wg.Add(1)
		e.Ready(task(func() {
			e.BlockingBegin(nil)
			spawn(level + 1) // runs on another worker
			<-inner
			e.BlockingEnd(nil)
			wg.Done()
		}))
		e.Ready(task(func() { close(inner) }))
	}
	spawn(0)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deep blocking chain starved the pool")
	}
	wg.Wait() // all sections done; every Ready has been issued
}

func TestExecutorParksIdleWorkers(t *testing.T) {
	e := NewExecutor(2)
	// Give the workers a moment with nothing to do.
	time.Sleep(20 * time.Millisecond)
	_, parks := e.Counters()
	if parks < 1 {
		t.Fatalf("idle workers never parked (parks=%d)", parks)
	}
	e.Stop()
}

func TestNewExecutorRejectsZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewExecutor(0) did not panic")
		}
	}()
	NewExecutor(0)
}

// Steal-under-contention stress: one seed task fans a tree of children
// out through its local deque, so the other workers can only get work
// by stealing. Asserts both the counters and completion under -race.
func TestExecutorStealStress(t *testing.T) {
	const workers = 4
	// Dev hosts are often single-core; stealing needs running thieves.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(workers))
	e := NewExecutor(workers)
	defer e.Stop()
	var n atomic.Int64
	var wg sync.WaitGroup
	const fanout, depth = 3, 10 // 3^0 + ... + 3^10 tasks
	var grow func(w *Worker, level int)
	grow = func(w *Worker, level int) {
		n.Add(1)
		if level == depth {
			wg.Done()
			return
		}
		for i := 0; i < fanout; i++ {
			wg.Add(1)
			child := NewTask(ctxRunnable(func(w *Worker) { grow(w, level+1) }))
			e.ReadyLocal(w, child)
		}
		wg.Done()
	}
	wg.Add(1)
	e.Ready(NewTask(ctxRunnable(func(w *Worker) { grow(w, 0) })))
	wg.Wait()
	want := int64(0)
	for l, p := 0, int64(1); l <= depth; l, p = l+1, p*fanout {
		want += p
	}
	if got := n.Load(); got != want {
		t.Fatalf("ran %d tasks, want %d", got, want)
	}
	steals, injPushes, localPushes := e.StealCounters()
	if localPushes == 0 {
		t.Fatalf("tree never used the local-push fast path (local=%d inj=%d)", localPushes, injPushes)
	}
	if steals == 0 {
		t.Fatalf("no steals under a %d-worker fanout tree (local=%d inj=%d)", workers, localPushes, injPushes)
	}
}

// Local pushes past the deque bound must spill to the injector and
// still all execute.
func TestExecutorDequeOverflowSpillsToInjector(t *testing.T) {
	// Single proc: with real parallelism thieves drain the deque while
	// the seed is still pushing, and the spill count loses its meaning.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	e := NewExecutor(2)
	defer e.Stop()
	const total = dequeCap * 3
	var n atomic.Int64
	var wg sync.WaitGroup
	wg.Add(total + 1)
	e.Ready(NewTask(ctxRunnable(func(w *Worker) {
		// Push far more than one deque holds before yielding the worker.
		for i := 0; i < total; i++ {
			e.ReadyLocal(w, task(func() {
				n.Add(1)
				wg.Done()
			}))
		}
		wg.Done()
	})))
	wg.Wait()
	if got := n.Load(); got != total {
		t.Fatalf("ran %d tasks, want %d", got, total)
	}
	_, injPushes, localPushes := e.StealCounters()
	// The pushes past the deque (and next-slot) bound must have
	// spilled; allow slack for whatever a preempting thief drained
	// mid-burst.
	if injPushes < (total-dequeCap)/2 {
		t.Fatalf("expected >= %d injector spills, got %d (local=%d)", (total-dequeCap)/2, injPushes, localPushes)
	}
	if localPushes == 0 {
		t.Fatal("no local pushes before the spill")
	}
}

// Park/wake storm: external producers hammer Ready from many
// goroutines while workers cycle between stealing, draining, and
// parking. Exercises the searcher/idle wake protocol for lost wakeups.
func TestExecutorParkWakeStorm(t *testing.T) {
	e := NewExecutor(4)
	defer e.Stop()
	const producers = 8
	const perProducer = 500
	var n atomic.Int64
	var wg sync.WaitGroup
	wg.Add(producers * perProducer)
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				e.Ready(task(func() {
					n.Add(1)
					wg.Done()
				}))
				if i%17 == 0 {
					runtime.Gosched() // let workers drain and park
				}
			}
		}()
	}
	pwg.Wait()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("storm lost wakeups: %d/%d tasks ran", n.Load(), producers*perProducer)
	}
}

// Stop while other workers are mid-steal: tasks keep fanning out
// through local deques as Stop lands; everything accepted before the
// stop must still run, and Stop must not hang.
func TestExecutorStopWhileStealing(t *testing.T) {
	for round := 0; round < 10; round++ {
		e := NewExecutor(4)
		var started, finished atomic.Int64
		var grow func(w *Worker, level int)
		grow = func(w *Worker, level int) {
			started.Add(1)
			if level < 6 {
				for i := 0; i < 2; i++ {
					e.ReadyLocal(w, NewTask(ctxRunnable(func(w *Worker) { grow(w, level+1) })))
				}
			}
			finished.Add(1)
		}
		e.Ready(NewTask(ctxRunnable(func(w *Worker) { grow(w, 0) })))
		runtime.Gosched()
		e.Stop() // must drain whatever was accepted, then return
		if s, f := started.Load(), finished.Load(); s != f {
			t.Fatalf("round %d: %d tasks started but %d finished after Stop", round, s, f)
		}
	}
}
