// Package sched provides the low-level scheduling primitives used by the
// SCOOP/Qs runtime: a spin-then-park Parker used by the queue consumers
// (handlers) and by clients waiting on query synchronization, and a
// spin-lock used for atomic multi-handler reservation.
//
// The paper's runtime is built on three layers: task switching,
// lightweight threads, and handlers. In this reproduction goroutines are
// the lightweight threads and the Go scheduler performs task switching;
// Parker supplies the blocking/handoff edge between them. Handing a
// parked goroutine a token through a buffered channel approximates the
// paper's direct handler-to-client control transfer after a sync: the Go
// runtime readies exactly the waiting goroutine without a global
// scheduler pass.
package sched

import (
	"runtime"
	"sync/atomic"
)

// Parker state values.
const (
	pIdle int32 = iota
	pParked
	pNotified
)

// DefaultSpin is the number of spin iterations a consumer performs
// before parking. Spinning briefly is profitable because the
// client-handler round-trip of a query is usually shorter than a
// park/unpark cycle.
const DefaultSpin = 64

// Parker blocks a single goroutine until another goroutine unparks it.
// It is the moral equivalent of a binary semaphore with a fast path:
// an Unpark that arrives before Park makes the next Park return
// immediately. Exactly one goroutine may call Park; any number may call
// Unpark.
//
// The zero value is not usable; use NewParker.
type Parker struct {
	state atomic.Int32
	ch    chan struct{}
}

// NewParker returns a ready-to-use Parker.
func NewParker() *Parker {
	return &Parker{ch: make(chan struct{}, 1)}
}

// Park blocks until Unpark is called. If an Unpark already happened
// since the last Park, it returns immediately, consuming the
// notification.
func (p *Parker) Park() {
	for {
		switch p.state.Load() {
		case pNotified:
			p.state.Store(pIdle)
			return
		case pIdle:
			if p.state.CompareAndSwap(pIdle, pParked) {
				<-p.ch
				p.state.Store(pIdle)
				return
			}
		default:
			panic("sched: concurrent Park on the same Parker")
		}
	}
}

// Unpark wakes the goroutine blocked in Park, or arranges for the next
// Park to return immediately. Multiple Unparks between Parks coalesce
// into one notification.
func (p *Parker) Unpark() {
	for {
		switch s := p.state.Load(); s {
		case pNotified:
			return
		case pIdle:
			if p.state.CompareAndSwap(pIdle, pNotified) {
				return
			}
		case pParked:
			if p.state.CompareAndSwap(pParked, pNotified) {
				p.ch <- struct{}{}
				return
			}
		}
	}
}

// SpinWait performs one iteration of polite spinning: the first calls
// are plain busy loops, later ones yield the processor. i is the
// caller's current spin count.
func SpinWait(i int) {
	if i < 8 {
		return // pure spin: the producer is probably mid-store
	}
	runtime.Gosched()
}

// SpinLock is a test-and-set spin lock with exponential politeness. The
// paper's multi-reservation implementation uses "one spinlock for every
// handler to maintain the ordering guarantees"; this is that spinlock.
// The zero value is an unlocked SpinLock.
type SpinLock struct {
	v atomic.Int32
}

// Lock acquires the lock, spinning and then yielding until available.
func (l *SpinLock) Lock() {
	for i := 0; ; i++ {
		if l.v.Load() == 0 && l.v.CompareAndSwap(0, 1) {
			return
		}
		SpinWait(i)
	}
}

// TryLock attempts to acquire the lock without blocking.
func (l *SpinLock) TryLock() bool {
	return l.v.Load() == 0 && l.v.CompareAndSwap(0, 1)
}

// Unlock releases the lock. Unlocking an unlocked SpinLock panics.
func (l *SpinLock) Unlock() {
	if l.v.Swap(0) != 1 {
		panic("sched: Unlock of unlocked SpinLock")
	}
}
