package sched

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// The fork-join tests below were migrated from internal/tbb when its
// standalone pool was folded into this executor; the skeleton tests
// keep the same shapes (range coverage, deterministic reduce order,
// stable sort, nested parallelism) so the port is checked against the
// seed pool's contract.

func TestTaskGroupSpawnRunsAll(t *testing.T) {
	e := NewExecutor(4)
	defer e.Stop()
	var count atomic.Int64
	g := e.NewGroup()
	for i := 0; i < 1000; i++ {
		g.Spawn(nil, func(*Worker) { count.Add(1) })
	}
	g.Wait(nil)
	if count.Load() != 1000 {
		t.Fatalf("count = %d, want 1000", count.Load())
	}
	spawned, _, _ := e.TaskCounters()
	if spawned != 1000 {
		t.Fatalf("TasksSpawned = %d, want 1000", spawned)
	}
}

func TestTaskGroupReuseAcrossPhases(t *testing.T) {
	e := NewExecutor(2)
	defer e.Stop()
	g := e.NewGroup()
	var count atomic.Int64
	for phase := 0; phase < 5; phase++ {
		for i := 0; i < 100; i++ {
			g.Spawn(nil, func(*Worker) { count.Add(1) })
		}
		g.Wait(nil)
		if got := count.Load(); got != int64((phase+1)*100) {
			t.Fatalf("phase %d: count = %d", phase, got)
		}
	}
}

// Spawned tasks receive the worker that executes them and can spawn
// nested work through the local fast path.
func TestTaskGroupNestedSpawn(t *testing.T) {
	e := NewExecutor(2)
	defer e.Stop()
	var count atomic.Int64
	g := e.NewGroup()
	for i := 0; i < 10; i++ {
		g.Spawn(nil, func(w *Worker) {
			for j := 0; j < 10; j++ {
				g.Spawn(w, func(*Worker) { count.Add(1) })
			}
		})
	}
	g.Wait(nil)
	if count.Load() != 100 {
		t.Fatalf("count = %d, want 100", count.Load())
	}
}

// A chain of groups nested far deeper than the worker count: each task
// spawns one child into a fresh group and waits for it. Every level's
// Wait must either help (the child sits in its own deque) or park with
// blocking compensation — either way the chain cannot deadlock even on
// a single-worker pool.
func TestTaskNestedSpawnDeeperThanPool(t *testing.T) {
	for _, workers := range []int{1, 2} {
		e := NewExecutor(workers)
		const depth = 64
		var reached atomic.Int64
		var descend func(w *Worker, level int)
		descend = func(w *Worker, level int) {
			reached.Add(1)
			if level == depth {
				return
			}
			g := e.NewGroup()
			g.Spawn(w, func(w2 *Worker) { descend(w2, level+1) })
			g.Wait(w)
		}
		root := e.NewGroup()
		root.Spawn(nil, func(w *Worker) { descend(w, 1) })
		root.Wait(nil)
		if got := reached.Load(); got != depth {
			t.Fatalf("workers=%d: reached %d levels, want %d", workers, got, depth)
		}
		e.Stop()
	}
}

// Wait called from inside an ordinary Runnable step (the handler case):
// the step occupies the worker for its whole duration, so on a
// single-worker pool the join must find the spawned tasks by helping —
// they are in that same worker's deque — and must not park the only
// worker against work only it can run.
func TestTaskWaitInsideRunnableStep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := NewExecutor(workers)
		var inner atomic.Int64
		done := make(chan struct{})
		e.Ready(NewTask(ctxRunnable(func(w *Worker) {
			g := e.NewGroup()
			for i := 0; i < 100; i++ {
				g.Spawn(w, func(*Worker) { inner.Add(1) })
			}
			g.Wait(w)
			close(done)
		})))
		<-done
		if inner.Load() != 100 {
			t.Fatalf("workers=%d: inner = %d, want 100", workers, inner.Load())
		}
		e.Stop()
	}
}

// A runnable step that calls the skeletons without knowing its worker
// (the shape client code inside a handler Call has): Wait(nil) must
// still complete via injector/steal helping plus compensation.
func TestTaskWaitNilWorkerInsideStep(t *testing.T) {
	e := NewExecutor(1)
	defer e.Stop()
	done := make(chan struct{})
	var total atomic.Int64
	e.Ready(task(func() {
		ParallelFor(e, 0, 1000, 16, func(lo, hi int) {
			total.Add(int64(hi - lo))
		})
		close(done)
	}))
	<-done
	if total.Load() != 1000 {
		t.Fatalf("total = %d, want 1000", total.Load())
	}
}

func TestTaskPanicPropagatesToWait(t *testing.T) {
	e := NewExecutor(2)
	defer e.Stop()
	g := e.NewGroup()
	var after atomic.Int64
	for i := 0; i < 20; i++ {
		i := i
		g.Spawn(nil, func(*Worker) {
			if i == 7 {
				panic("boom 7")
			}
			after.Add(1)
		})
	}
	caught := func() (v any) {
		defer func() { v = recover() }()
		g.Wait(nil)
		return nil
	}()
	if caught != "boom 7" {
		t.Fatalf("Wait recovered %v, want \"boom 7\"", caught)
	}
	// All sibling tasks still ran: a panic fails the join, not the pool.
	if after.Load() != 19 {
		t.Fatalf("siblings ran %d times, want 19", after.Load())
	}
	// The group is clean after the panic was delivered once.
	g.Spawn(nil, func(*Worker) {})
	g.Wait(nil) // must not re-panic
}

func TestTaskPanicNilValue(t *testing.T) {
	e := NewExecutor(1)
	defer e.Stop()
	g := e.NewGroup()
	g.Spawn(nil, func(*Worker) { panic(error(nil)) })
	caught := false
	func() {
		defer func() {
			recover() // value is nil-ish; arrival is what matters
			caught = true
		}()
		g.Wait(nil)
	}()
	if !caught {
		t.Fatal("panic from task was lost")
	}
}

// Randomized steal stress (migrated from the tbb deque's exactly-once
// property test): many spawners racing thieves, every task exactly once.
func TestTaskSpawnExactlyOnceUnderStealing(t *testing.T) {
	e := NewExecutor(4)
	defer e.Stop()
	const n = 50000
	seen := make([]atomic.Int32, n)
	g := e.NewGroup()
	// Spawn from inside tasks so spawns hit worker-local deques and get
	// stolen, not just the injector.
	const spawners = 8
	per := n / spawners
	for s := 0; s < spawners; s++ {
		s := s
		g.Spawn(nil, func(w *Worker) {
			for i := s * per; i < (s+1)*per; i++ {
				i := i
				g.Spawn(w, func(*Worker) { seen[i].Add(1) })
			}
		})
	}
	g.Wait(nil)
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("task %d executed %d times", i, c)
		}
	}
}

// Mixed handler+task steal storm: long-lived runnables that keep
// re-enqueueing themselves (handler traffic) share the workers with a
// fork-join wave. Run under -race at GOMAXPROCS 1 and 4 in CI.
func TestTaskMixedHandlerStealStorm(t *testing.T) {
	e := NewExecutor(4)
	defer e.Stop()
	const handlers = 8
	var handlerSteps atomic.Int64
	var stop atomic.Bool
	var idle sync.WaitGroup
	var step func(w *Worker)
	step = func(w *Worker) {
		handlerSteps.Add(1)
		if !stop.Load() {
			e.ReadyLocal(w, NewTask(ctxRunnable(step)))
		} else {
			idle.Done()
		}
	}
	for i := 0; i < handlers; i++ {
		idle.Add(1)
		e.Ready(NewTask(ctxRunnable(step)))
	}
	var total atomic.Int64
	for round := 0; round < 20; round++ {
		ParallelFor(e, 0, 4096, 8, func(lo, hi int) {
			total.Add(int64(hi - lo))
		})
	}
	stop.Store(true)
	idle.Wait()
	if got := total.Load(); got != 20*4096 {
		t.Fatalf("fork-join covered %d, want %d", got, 20*4096)
	}
	if handlerSteps.Load() < handlers {
		t.Fatalf("handlers starved: %d steps", handlerSteps.Load())
	}
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		e := NewExecutor(workers)
		const n = 10000
		marks := make([]atomic.Int32, n)
		ParallelFor(e, 0, n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				marks[i].Add(1)
			}
		})
		for i := range marks {
			if c := marks[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
		e.Stop()
	}
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	e := NewExecutor(2)
	defer e.Stop()
	ran := false
	ParallelFor(e, 5, 5, 10, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("body ran on empty range")
	}
	total := 0
	ParallelFor(e, 3, 4, 100, func(lo, hi int) { total += hi - lo })
	if total != 1 {
		t.Fatalf("tiny range covered %d, want 1", total)
	}
}

func TestParallelReduceSum(t *testing.T) {
	for _, workers := range []int{1, 3} {
		e := NewExecutor(workers)
		const n = 100000
		got := ParallelReduce(e, 0, n, 128,
			func(lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i)
				}
				return s
			},
			func(a, b int64) int64 { return a + b })
		want := int64(n) * (n - 1) / 2
		if got != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, got, want)
		}
		e.Stop()
	}
}

func TestParallelReduceDeterministicOrder(t *testing.T) {
	// Non-commutative combine (string concat) must still be
	// deterministic because combines happen in range order.
	e := NewExecutor(4)
	defer e.Stop()
	want := ""
	for i := 0; i < 100; i++ {
		want += string(rune('a' + i%26))
	}
	for round := 0; round < 10; round++ {
		got := ParallelReduce(e, 0, 100, 3,
			func(lo, hi int) string {
				s := ""
				for i := lo; i < hi; i++ {
					s += string(rune('a' + i%26))
				}
				return s
			},
			func(a, b string) string { return a + b })
		if got != want {
			t.Fatalf("round %d: non-deterministic reduce", round)
		}
	}
}

func TestNestedParallelFor(t *testing.T) {
	e := NewExecutor(2)
	defer e.Stop()
	var count atomic.Int64
	ParallelFor(e, 0, 10, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ParallelFor(e, 0, 10, 1, func(l2, h2 int) {
				count.Add(int64(h2 - l2))
			})
		}
	})
	if count.Load() != 100 {
		t.Fatalf("count = %d, want 100", count.Load())
	}
}

func TestParallelSortSorts(t *testing.T) {
	e := NewExecutor(3)
	defer e.Stop()
	rng := rand.New(rand.NewSource(7))
	data := make([]int, 50000)
	for i := range data {
		data[i] = rng.Intn(1000)
	}
	want := append([]int(nil), data...)
	sort.Ints(want)
	ParallelSort(e, data, func(a, b int) bool { return a < b })
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, data[i], want[i])
		}
	}
}

func TestParallelSortStable(t *testing.T) {
	type kv struct{ k, pos int }
	e := NewExecutor(4)
	defer e.Stop()
	rng := rand.New(rand.NewSource(3))
	data := make([]kv, 30000)
	for i := range data {
		data[i] = kv{k: rng.Intn(8), pos: i}
	}
	ParallelSort(e, data, func(a, b kv) bool { return a.k < b.k })
	for i := 1; i < len(data); i++ {
		if data[i-1].k == data[i].k && data[i-1].pos > data[i].pos {
			t.Fatalf("instability at %d: equal keys out of original order", i)
		}
		if data[i-1].k > data[i].k {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestParallelSortQuick(t *testing.T) {
	e := NewExecutor(2)
	defer e.Stop()
	f := func(data []int16) bool {
		d := make([]int, len(data))
		for i, v := range data {
			d[i] = int(v)
		}
		want := append([]int(nil), d...)
		sort.Ints(want)
		ParallelSort(e, d, func(a, b int) bool { return a < b })
		for i := range d {
			if d[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskCountersAdvance(t *testing.T) {
	e := NewExecutor(4)
	defer e.Stop()
	ParallelFor(e, 0, 100000, 16, func(lo, hi int) {})
	spawned, steals, parks := e.TaskCounters()
	if spawned == 0 {
		t.Fatal("TasksSpawned did not advance")
	}
	// Steals and parks are load-dependent; just require sanity.
	if steals < 0 || parks < 0 {
		t.Fatalf("negative counters: steals=%d parks=%d", steals, parks)
	}
}
