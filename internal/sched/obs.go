package sched

import "scoopqs/internal/obs"

// The scheduler's observability instruments, predeclared so the hot
// path holds direct pointers (no registry lookups). Every use is gated
// on obs.Enabled() — see the overhead guarantee in the package doc of
// internal/obs — except dispatch, whose gate is the task's readyAt
// stamp: the stamp is only written while recording is on, so the
// disabled dispatch path is one load-and-branch on a field that is in
// cache anyway.
var (
	// dispatchHist is the ready→run queue latency: Ready/ReadyLocal
	// stamp the task, the worker loop measures at dispatch.
	dispatchHist = obs.Default().Hist("sched.dispatch_wait_ns")
	// parkHist is how long workers sit parked on the pool condvar.
	parkHist = obs.Default().Hist("sched.worker_park_ns")
	// taskWaitHist is the fork-join join: TaskGroup.Wait entry→return.
	taskWaitHist = obs.Default().Hist("sched.task_wait_ns")
	// stealAttempts counts full sweep rounds; stealHits successful ones
	// (the executor's always-on steals counter measures migrated tasks;
	// the attempt/hit pair measures search efficiency).
	stealAttempts = obs.Default().Counter("sched.steal_attempts")
	stealHits     = obs.Default().Counter("sched.steal_hits")
)

// stamp records the enqueue time on t while recording is enabled, and
// clears any stale stamp while it is not (a stamp from a previous
// recording epoch must not surface as a bogus multi-second latency
// when recording resumes).
func stamp(t *Task) {
	if obs.Enabled() {
		t.readyAt = obs.Now()
	} else {
		t.readyAt = 0
	}
}

// noteDispatch records the ready→run latency of t on w's shard and
// ring. Called only when t carries a stamp, i.e. it was enqueued while
// recording was enabled.
func (w *Worker) noteDispatch(t *Task) {
	lat := obs.Now() - t.readyAt
	t.readyAt = 0
	dispatchHist.ObserveShard(w.id, lat)
	w.ring.Emit(obs.KindDispatch, 0, lat)
}

// noteDispatchAny is noteDispatch for dispatch sites that may run off
// a pool worker (the helping join): no-op on an unstamped task, shared
// rings and stack sharding when w is nil.
func noteDispatchAny(w *Worker, t *Task) {
	if t.readyAt == 0 {
		return
	}
	if w != nil {
		w.noteDispatch(t)
		return
	}
	lat := obs.Now() - t.readyAt
	t.readyAt = 0
	dispatchHist.Observe(lat)
	obs.Emit(obs.KindDispatch, 0, lat)
}

// emitOn records an event on w's ring, falling back to the shared
// rings when the caller has no worker.
func emitOn(w *Worker, k obs.Kind, id uint64, arg int64) {
	if w != nil {
		w.ring.Emit(k, id, arg)
	} else {
		obs.Emit(k, id, arg)
	}
}

// Emit records an event on the worker's own trace ring — the
// attributed fast path for layers above (core emits handler events on
// the worker currently running the handler). Call only while
// obs.Enabled(), like any other recording.
func (w *Worker) Emit(k obs.Kind, id uint64, arg int64) {
	w.ring.Emit(k, id, arg)
}
