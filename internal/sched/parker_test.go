package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParkerUnparkBeforePark(t *testing.T) {
	p := NewParker()
	p.Unpark()
	done := make(chan struct{})
	go func() {
		p.Park() // must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Park blocked despite prior Unpark")
	}
}

func TestParkerWakesParked(t *testing.T) {
	p := NewParker()
	done := make(chan struct{})
	go func() {
		p.Park()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	p.Unpark()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Unpark did not wake parked goroutine")
	}
}

func TestParkerCoalescesNotifications(t *testing.T) {
	p := NewParker()
	p.Unpark()
	p.Unpark()
	p.Unpark()
	p.Park() // consumes the single coalesced notification

	blocked := make(chan struct{})
	go func() {
		p.Park()
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("second Park returned without a new Unpark")
	case <-time.After(50 * time.Millisecond):
	}
	p.Unpark()
	<-blocked
}

func TestParkerManyRounds(t *testing.T) {
	p := NewParker()
	var turns atomic.Int64
	const rounds = 10000
	done := make(chan struct{})
	go func() {
		for i := 0; i < rounds; i++ {
			p.Park()
			turns.Add(1)
		}
		close(done)
	}()
	go func() {
		for i := 0; i < rounds; i++ {
			p.Unpark()
			// Give the consumer a chance to actually park sometimes.
			if i%64 == 0 {
				time.Sleep(time.Microsecond)
			}
			for int(turns.Load()) <= i {
				SpinWait(i)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("lost wakeup: only %d/%d rounds completed", turns.Load(), rounds)
	}
}

func TestParkerConcurrentUnparkers(t *testing.T) {
	// Unpark must be safe from many goroutines at once; each round all
	// unparkers fire and the parker must consume at least one wakeup.
	p := NewParker()
	const rounds = 500
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				p.Unpark()
				if r%32 == 0 {
					time.Sleep(time.Microsecond)
				}
			}
		}()
	}
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		for !stop.Load() {
			p.Park()
		}
		close(done)
	}()
	wg.Wait()
	stop.Store(true)
	p.Unpark()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("parker lost the final wakeup under concurrent Unpark")
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	var counter int
	var wg sync.WaitGroup
	const workers, iters = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestSpinLockUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var l SpinLock
	l.Unlock()
}
