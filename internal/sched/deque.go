package sched

import "sync/atomic"

// dequeCap bounds each worker's local deque. Power of two; overflow
// spills into the executor's injector queue, so the bound trades local
// slack against injector traffic, not correctness. 256 entries is 2KiB
// per worker — small enough to stay cache-resident, large enough that
// a handler waking a burst of peers never spills in practice.
const dequeCap = 256

// deque is a bounded Chase–Lev work-stealing deque specialized to
// *Task: the owning worker pushes and pops at the bottom (LIFO, which
// keeps the producer-consumer pair of a message handoff on one warm
// cache), thieves steal from the top (FIFO, so the oldest — most
// starved — work migrates first).
//
// All cross-thread accesses go through atomics, so the implementation
// is race-detector-clean; Go's sequentially consistent atomics
// over-approximate the acquire/release fences of the C11 original.
// The ABA hazard of a bounded ring is excluded by construction: push
// refuses to overwrite a slot until top has moved past it, and any
// steal whose top observation went stale fails its CAS.
type deque struct {
	top    atomic.Int64 // next steal index; thieves advance by CAS
	_      [56]byte     // keep the contended indices on separate lines
	bottom atomic.Int64 // next push index; owner-written
	_      [56]byte
	slots  [dequeCap]atomic.Pointer[Task]
}

// push appends t at the bottom. Owner only. Reports false when the
// deque is full; the caller spills to the injector.
func (d *deque) push(t *Task) bool {
	b := d.bottom.Load()
	if b-d.top.Load() >= dequeCap {
		return false
	}
	d.slots[b&(dequeCap-1)].Store(t)
	d.bottom.Store(b + 1) // publish
	return true
}

// pop removes the newest task. Owner only. Returns nil when empty or
// when the last task was lost to a concurrent thief.
func (d *deque) pop() *Task {
	// Cheap emptiness pre-check before the reservation dance: bottom is
	// owner-written so the read is exact, and top only ever grows, so a
	// stale top can only make an *empty* deque look non-empty (the full
	// dance below resolves that) — never a non-empty one look empty.
	if d.bottom.Load() <= d.top.Load() {
		return nil
	}
	b := d.bottom.Load() - 1
	d.bottom.Store(b) // reserve index b against thieves
	t := d.top.Load()
	if t > b {
		d.bottom.Store(b + 1) // empty; undo the reservation
		return nil
	}
	task := d.slots[b&(dequeCap-1)].Load()
	if t == b {
		// Down to the last task: settle the race with thieves on top.
		if !d.top.CompareAndSwap(t, t+1) {
			task = nil // a thief got there first
		}
		d.bottom.Store(b + 1)
	}
	return task
}

// steal removes the oldest task on behalf of another worker. Any
// goroutine may call it. Returns nil when the deque is (momentarily)
// empty; a CAS lost to the owner or another thief retries internally.
func (d *deque) steal() *Task {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return nil
		}
		task := d.slots[t&(dequeCap-1)].Load()
		if d.top.CompareAndSwap(t, t+1) {
			return task
		}
		// top moved underneath us; re-evaluate (the deque may now be
		// empty, or another task may be exposed).
	}
}

// nonEmpty reports whether the deque currently appears to hold work.
// Advisory: a concurrent pop's transient bottom reservation may make a
// momentarily empty deque read as such, never the reverse for settled
// states.
func (d *deque) nonEmpty() bool {
	return d.top.Load() < d.bottom.Load()
}
