package sched

import (
	"sync"
	"sync/atomic"

	"scoopqs/internal/obs"
)

// Runnable is a unit of resumable work multiplexed onto an Executor's
// workers. Step runs the unit until it has no immediately available
// work; it must not block indefinitely — a Runnable that needs to wait
// returns from Step and is handed back to the Executor (Ready) when
// new work arrives. The wait need not be for queue input: a Runnable
// may park itself on an external completion (core's awaiting handler
// state registers a future callback that calls Ready), which is the
// cheap alternative to BlockingBegin/End compensation whenever the
// wait can be expressed as a continuation. Step is never invoked
// concurrently for the same Runnable; the scheduling protocol of the
// owner must guarantee that.
//
// Step receives the worker it runs on. Code executed by the Runnable
// that makes *other* runnables ready can pass that worker to
// ReadyLocal, keeping a message-passing chain on one worker's local
// deque instead of bouncing through the shared injector.
type Runnable interface {
	Step(w *Worker)
}

// Task is the scheduling token for one Runnable: the unit that moves
// through deques and the injector. Allocate it once per long-lived
// Runnable (core allocates one per handler) — Ready takes the Task, so
// the scheduler's hot path never heap-allocates per wake. The owner's
// scheduling protocol must ensure a Task is enqueued at most once
// until its Step runs (see Runnable); a Task is never in two queues at
// once.
type Task struct {
	r Runnable
	// readyAt is the obs timestamp of the task's last enqueue, written
	// by Ready/ReadyLocal only while recording is enabled (see
	// sched/obs.go). Zero means "not stamped"; the dispatch site's
	// single-branch check of this plain field is the disabled-path cost
	// of dispatch-latency tracking. Publication rides the queue the
	// task travels through, so no atomics are needed.
	readyAt int64
}

// NewTask wraps r for scheduling.
func NewTask(r Runnable) *Task { return &Task{r: r} }

// Worker is one goroutine of the pool, owning a local work-stealing
// deque. It is handed to Runnable.Step and is only meaningful on the
// goroutine currently running that Step; treat it as an opaque
// capability for ReadyLocal.
type Worker struct {
	e *Executor
	// id is the worker's sequence number within its executor; it picks
	// the worker's histogram shard and pooled trace ring.
	id int
	// ring is the worker's event ring (see internal/obs). Pooled by id,
	// so it is always non-nil and costs nothing until an event is
	// emitted into it.
	ring *obs.Ring
	// next is the one-slot LIFO fast path (the Go scheduler's runnext):
	// ReadyLocal parks the hottest task here, and the owner runs it
	// before consulting its deque. A chain of message handoffs then
	// costs one pointer swap per hop instead of a deque cycle. Thieves
	// may take it (by swap) once every deque is empty, so a blocked
	// owner cannot strand it.
	next atomic.Pointer[Task]
	dq   deque
	// rng is the worker-private xorshift state used to randomize steal
	// victim order, so thieves do not convoy on one victim.
	rng uint64
	// blocking is the worker's BlockingBegin/End nesting depth. Only
	// touched from the worker's own goroutine (the blocking hooks and
	// ReadyLocal both run on it), so no atomics. While non-zero, the
	// lone-handoff wake elision is off: the owner cannot be assumed to
	// run its own pushes, so they must be announced.
	blocking int
}

// takeNext claims the worker's next-slot task, if any. Owner or thief;
// the swap arbitrates.
func (w *Worker) takeNext() *Task {
	if w.next.Load() == nil {
		return nil
	}
	return w.next.Swap(nil)
}

// Executor is a fixed-target work-stealing worker pool: the M:N layer
// that lets millions of mostly-idle handlers share a few goroutines
// instead of owning one each. It corresponds to the task-switching
// layer of the paper's §3 runtime stack, with the Go scheduler demoted
// to scheduling only the pool workers.
//
// Scheduling substrate: each worker owns a bounded lock-free Chase–Lev
// deque (LIFO for the owner, FIFO for thieves). Ready from outside the
// pool enqueues into a small mutex-guarded injector queue; ReadyLocal
// from code running on a worker pushes onto that worker's deque and
// spills to the injector on overflow. A worker out of local work scans
// the injector and steals from victims (in random order) before
// parking on the pool condvar. The wake path is cheap: a push first
// checks the atomic searcher count — if some worker is already
// scanning, it is guaranteed to find the new work (see findWork) and
// no condvar signal is needed at all.
//
// Ordering: tasks on one worker's deque run newest-first; the injector
// is FIFO; thieves take a victim's oldest task. No global order exists
// across queues — callers needing per-unit ordering get it from the
// Runnable protocol (a unit is enqueued at most once until it runs),
// not from the pool. Fairness across units comes from the owners
// re-readying through the injector when they exhaust a budget (core's
// stepBudget does exactly that), which round-robins with all external
// work.
//
// Blocking compensation: client code executed by a Runnable may block
// the worker goroutine itself (a handler synchronously querying
// another handler cannot be unwound into a state machine). Such code
// must bracket the wait with BlockingBegin/BlockingEnd; the Executor
// then spawns a replacement worker when the pool would otherwise have
// no runnable worker left, so dependency chains deeper than the pool
// size cannot deadlock it. A blocked worker's deque stays stealable,
// so work it made ready before blocking migrates to the replacement.
// Surplus workers retire once the blocked ones resume.
type Executor struct {
	mu       sync.Mutex
	cond     *sync.Cond
	injector []*Task // FIFO: injector[injHead:] are pending
	injHead  int
	list     []*Worker // all live workers; canonical, mu-guarded
	target   int       // configured pool size
	workers  int       // live workers, including blocked ones
	blocked  int       // workers inside a BlockingBegin/End section
	stopped  bool
	wg       sync.WaitGroup

	// idle counts workers parked (or committed to parking) on the
	// condvar. Written only under mu, but atomic so producers can check
	// it without the mutex: a worker registers as idle *before* its
	// final under-mutex emptiness check, so a producer that reads 0
	// here is sequenced before that registration — and the worker's
	// check then sees the producer's push.
	idle atomic.Int32

	// snap is the lock-free snapshot of list used by steal sweeps;
	// rebuilt under mu whenever the worker set changes.
	snap atomic.Pointer[[]*Worker]
	// searchers counts workers actively scanning for work (between
	// running out and parking). Producers skip the condvar when it is
	// non-zero; the search protocol guarantees such a worker observes
	// the push (see findWork).
	searchers atomic.Int32
	// injCount mirrors the injector's length so sweeps can skip the
	// mutex when it is empty.
	injCount atomic.Int64
	stopping  atomic.Bool // mirror of stopped for lock-free fast paths
	seq       uint64      // worker seed counter, mu-guarded

	spawns      atomic.Int64 // compensation workers spawned
	workerParks atomic.Int64 // times a worker went idle
	steals      atomic.Int64 // tasks migrated between workers
	injPushes   atomic.Int64 // tasks enqueued through the injector
	localPushes atomic.Int64 // tasks pushed onto a local deque

	// Fork-join counters (see task.go).
	tasksSpawned  atomic.Int64 // TaskGroup.Spawn calls
	taskSteals    atomic.Int64 // fork-join tasks taken from another worker
	taskWaitParks atomic.Int64 // TaskGroup.Wait parks after helping found nothing
	helpSeq       atomic.Uint64 // victim rotation for worker-less helpers
}

// NewExecutor starts a pool of n workers (n must be positive).
func NewExecutor(n int) *Executor {
	if n < 1 {
		panic("sched: NewExecutor needs at least one worker")
	}
	e := &Executor{target: n}
	e.cond = sync.NewCond(&e.mu)
	e.mu.Lock()
	for i := 0; i < n; i++ {
		e.spawnLocked()
	}
	e.spawns.Store(0) // the initial pool is not compensation
	e.mu.Unlock()
	return e
}

// spawnLocked starts one worker. Caller holds e.mu.
func (e *Executor) spawnLocked() {
	e.seq++
	w := &Worker{e: e, id: int(e.seq), ring: obs.WorkerRing(int(e.seq)), rng: e.seq*0x9E3779B97F4A7C15 | 1}
	e.workers++
	e.list = append(e.list, w)
	e.publishListLocked()
	e.spawns.Add(1)
	e.wg.Add(1)
	go e.worker(w)
}

// removeWorkerLocked retires w from the pool. Caller holds e.mu; w's
// deque must be empty.
func (e *Executor) removeWorkerLocked(w *Worker) {
	for i, x := range e.list {
		if x == w {
			e.list[i] = e.list[len(e.list)-1]
			e.list = e.list[:len(e.list)-1]
			break
		}
	}
	e.publishListLocked()
	e.workers--
}

func (e *Executor) publishListLocked() {
	snap := make([]*Worker, len(e.list))
	copy(snap, e.list)
	e.snap.Store(&snap)
}

// Ready enqueues t for execution by some worker, through the shared
// injector queue. The caller's scheduling protocol must ensure t is
// enqueued at most once until its Step runs (see Task). Ready after
// Stop drops t.
func (e *Executor) Ready(t *Task) {
	stamp(t)
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.injector = append(e.injector, t)
	e.injCount.Add(1)
	e.injPushes.Add(1)
	if e.searchers.Load() == 0 && e.idle.Load() > 0 {
		e.cond.Signal()
	}
	e.mu.Unlock()
}

// ReadyLocal enqueues t for execution on worker w's fast path: the
// re-ready route for code already running on w that just made t
// runnable (a handler waking the next handler of a message chain). The
// task lands in w's one-slot next buffer — it is typically the very
// next dispatch — displacing any previous occupant onto w's deque. A
// nil w (the caller is not on a pool worker) and deque overflow fall
// back to the injector. The Task enqueue-once protocol is the caller's
// to keep, exactly as for Ready.
//
// Wake cost: a lone handoff (empty next slot, empty deque) needs no
// wake at all — the caller's own worker runs the task next, unless the
// caller blocks, in which case BlockingBegin rouses a worker to steal
// it. Anything beyond a lone handoff is surplus parallelism, announced
// with two atomic loads (searchers, then idle) and a condvar signal
// only when a worker is actually parked and nobody is scanning.
func (e *Executor) ReadyLocal(w *Worker, t *Task) {
	if w == nil || w.e != e {
		e.Ready(t)
		return
	}
	if e.stopping.Load() {
		return
	}
	stamp(t)
	e.localPushes.Add(1)
	if prev := w.next.Swap(t); prev != nil {
		if !w.dq.push(prev) {
			e.Ready(prev) // deque full: spill the displaced task
		}
	} else if !w.dq.nonEmpty() && w.blocking == 0 {
		// Lone handoff: the owner runs it next, no wake needed. Not
		// valid inside a blocking section — the owner is about to (or
		// already does) sit in a wait only this task could end, so the
		// push must be announced like any other.
		return
	}
	if e.searchers.Load() == 0 && e.idle.Load() > 0 {
		e.mu.Lock()
		e.cond.Signal()
		e.mu.Unlock()
	}
}

// popInjectorLocked removes the head of the injector queue. Caller
// holds e.mu and has checked it is non-empty.
func (e *Executor) popInjectorLocked() *Task {
	t := e.injector[e.injHead]
	e.injector[e.injHead] = nil
	e.injHead++
	e.injCount.Add(-1)
	if e.injHead > 64 && e.injHead*2 >= len(e.injector) {
		n := copy(e.injector, e.injector[e.injHead:])
		e.injector = e.injector[:n]
		e.injHead = 0
	}
	return t
}

// tryInjector pops one task from the injector, or nil. When more work
// remains behind the popped task it promotes one parked worker, so an
// injected burst fans out instead of draining through a single worker.
func (e *Executor) tryInjector() *Task {
	if e.injCount.Load() == 0 {
		return nil
	}
	e.mu.Lock()
	var t *Task
	if e.injHead < len(e.injector) {
		t = e.popInjectorLocked()
		// <= 1 because the caller is often a registered searcher
		// itself; a spurious signal with one other searcher active is
		// harmless, a suppressed fan-out is a cascade of latency.
		if e.injHead < len(e.injector) && e.idle.Load() > 0 && e.searchers.Load() <= 1 {
			e.cond.Signal()
		}
	}
	e.mu.Unlock()
	return t
}

// stealTick is how many consecutive local dispatches a worker performs
// before polling the injector once, so local ping-pong chains cannot
// starve injected work. Prime, per scheduler folklore, to avoid
// accidental resonance with workload periods.
const stealTick = 61

// worker is the main loop: next slot, then local deque (with a
// periodic injector poll for fairness), then the injector, then the
// full search protocol, then park.
func (e *Executor) worker(w *Worker) {
	defer e.wg.Done()
	tick := 0
	for {
		var t *Task
		tick++
		if tick%stealTick == 0 {
			t = e.tryInjector()
		}
		if t == nil {
			t = w.takeNext()
		}
		if t == nil {
			t = w.dq.pop()
		}
		if t == nil {
			t = e.tryInjector()
		}
		if t == nil {
			t = e.findWork(w)
		}
		if t == nil {
			var retire bool
			t, retire = e.park(w)
			if retire {
				return
			}
			if t == nil {
				continue
			}
		}
		if t.readyAt != 0 {
			w.noteDispatch(t)
		}
		t.r.Step(w)
	}
}

// findWork is the search protocol: register as a searcher, then sweep
// the injector and steal from victims, spinning politely between
// rounds. The searcher count is what makes producer wakes cheap — a
// producer that observes searchers > 0 may skip the condvar entirely,
// because every searcher performs one full sweep *after* decrementing
// the count (sequential consistency then guarantees: either the
// producer's count read sees the decrement and takes the condvar path,
// or that final sweep sees the push).
func (e *Executor) findWork(w *Worker) *Task {
	if e.idle.Load() == 0 {
		// No parked worker: producers only consult the searcher count
		// to skip signals aimed at idle workers, so registering buys
		// nothing, and park's under-mutex re-check closes the race
		// with concurrent pushes. One sweep suffices.
		return e.sweep(w)
	}
	e.searchers.Add(1)
	// One counted sweep, one post-decrement sweep: the Dekker minimum.
	// Longer spinning would only help when a producer is mid-push, and
	// park's under-mutex handoff already covers the common wake; sweeps
	// are not free on the way down.
	if t := e.sweep(w); t != nil {
		if e.searchers.Add(-1) == 0 {
			// The counted sweep succeeded, so the post-decrement sweep
			// that normally closes the race with signal-eliding
			// producers will not run. As the last searcher, hand the
			// scanning duty to a parked worker (the Go scheduler's
			// resetspinning/wakep move) so a push elided against our
			// count cannot strand in the injector.
			e.wakeOne()
		}
		return t
	}
	e.searchers.Add(-1)
	// Final sweep after leaving the searcher count: closes the race
	// with producers that skipped the wake because they saw us
	// counted. Must be a *complete* sweep.
	return e.sweep(w)
}

// sweep polls every work source once: own next slot and deque, the
// injector, then every victim in randomized order — deques first
// (oldest work, least locality damage), next slots only as a last
// resort (they hold the task the owner would run next; taking one is
// justified only when the owner is blocked or saturated).
func (e *Executor) sweep(w *Worker) *Task {
	if t := w.takeNext(); t != nil {
		return t
	}
	if t := w.dq.pop(); t != nil {
		return t
	}
	if t := e.tryInjector(); t != nil {
		return t
	}
	victims := *e.snap.Load()
	n := len(victims)
	if n == 0 {
		return nil
	}
	if obs.Enabled() {
		stealAttempts.Add(1)
	}
	// xorshift64 victim rotation.
	w.rng ^= w.rng << 13
	w.rng ^= w.rng >> 7
	w.rng ^= w.rng << 17
	start := int(w.rng % uint64(n))
	for i := 0; i < n; i++ {
		v := victims[(start+i)%n]
		if v == w {
			continue
		}
		t := v.dq.steal()
		if t == nil {
			// The victim's next slot as fallback: it holds the task the
			// owner would run next, so it only moves when the owner is
			// blocked or saturated — which is exactly when we are here.
			t = v.takeNext()
		}
		if t != nil {
			e.steals.Add(1)
			if isTask(t) {
				e.taskSteals.Add(1)
			}
			if obs.Enabled() {
				stealHits.Add(1)
				w.ring.Emit(obs.KindSteal, uint64(v.id), 1)
			}
			if v.dq.nonEmpty() {
				e.wakeOne() // the victim has more; fan out further
			}
			return t
		}
	}
	return nil
}

// wakeOne promotes one parked worker unless a searcher is already
// scanning (it will find the work itself).
func (e *Executor) wakeOne() {
	if e.searchers.Load() > 1 { // >1: the caller itself is usually counted
		return
	}
	if e.idle.Load() == 0 {
		return
	}
	e.mu.Lock()
	e.cond.Signal()
	e.mu.Unlock()
}

// park blocks w until new work may exist, or retires it (retire true)
// when the pool is stopping or clearly surplus. On wake it pops the
// injector under the mutex it already holds — the common wake reason
// is an injected (or blocking-flushed) task, and handing it over here
// saves the woken worker a separate lock acquisition. The worker
// registers as idle *before* its final emptiness check: a producer
// that read idle == 0 (and skipped the signal) is therefore sequenced
// before the registration, so this check sees its push; a producer
// that read idle > 0 takes the mutex and its signal either finds us in
// Wait or goes to another parked worker.
func (e *Executor) park(w *Worker) (t *Task, retire bool) {
	e.mu.Lock()
	e.idle.Add(1)
	if e.injHead < len(e.injector) {
		e.idle.Add(-1)
		t = e.popInjectorLocked()
		e.mu.Unlock()
		return t, false
	}
	if e.anyWorkLocked() {
		e.idle.Add(-1)
		e.mu.Unlock()
		return nil, false // stealable work somewhere; go around again
	}
	// No work anywhere: retire if stopping or clearly surplus, else
	// park. The 2x hysteresis keeps a spare pool of compensation
	// workers around between blocking bursts — without it, a workload
	// that blocks on every operation (a synchronous delegation ring)
	// would spawn and retire a goroutine per operation.
	if e.stopped || e.workers-e.blocked > 2*e.target {
		e.idle.Add(-1)
		e.removeWorkerLocked(w)
		e.mu.Unlock()
		return nil, true
	}
	e.workerParks.Add(1)
	var parkedAt int64
	if obs.Enabled() {
		parkedAt = obs.Now()
	}
	e.cond.Wait()
	if parkedAt != 0 {
		d := obs.Now() - parkedAt
		parkHist.ObserveShard(w.id, d)
		w.ring.Emit(obs.KindWorkerPark, 0, d)
	}
	e.idle.Add(-1)
	if e.injHead < len(e.injector) {
		t = e.popInjectorLocked()
	}
	e.mu.Unlock()
	return t, false
}

// anyWorkLocked reports whether any worker's deque or next slot
// appears non-empty. Caller holds e.mu. Items seen here are either
// being drained by their owner or stranded behind a blocked owner — in
// both cases the right move for the caller is another steal sweep, not
// sleep.
func (e *Executor) anyWorkLocked() bool {
	for _, v := range e.list {
		if v.next.Load() != nil || v.dq.nonEmpty() {
			return true
		}
	}
	return false
}

// BlockingBegin declares that the calling worker is about to block on
// something only another Runnable's progress can release. If the pool
// would be left without an available worker below target, a
// replacement is spawned before the caller parks. Pass the worker the
// calling code runs on (nil when unknown or not on a pool worker):
// its local queue is republished through the injector — the caller
// cannot run that work while blocked, and handing it over directly
// saves whoever picks it up a full steal sweep. Work of a blocked
// worker that could not be flushed (unknown w) stays stealable.
func (e *Executor) BlockingBegin(w *Worker) {
	e.mu.Lock()
	e.blocked++
	flushed := false
	if w != nil && w.e == e {
		w.blocking++
		// The calling goroutine is w's owner, so popping is legal.
		for {
			t := w.takeNext()
			if t == nil {
				t = w.dq.pop()
			}
			if t == nil {
				break
			}
			e.injector = append(e.injector, t)
			e.injCount.Add(1)
			e.injPushes.Add(1)
			flushed = true
		}
	}
	if e.workers-e.blocked < e.target && e.idle.Load() == 0 && !e.stopped {
		e.spawnLocked()
	} else if (flushed || w == nil) && e.idle.Load() > 0 {
		// A parked worker may be the only one able to run whatever the
		// caller readied before blocking (a lone local handoff issues
		// no wake of its own); rouse one. With an unknown worker the
		// caller's local queue could not be flushed, so signal
		// unconditionally rather than assume it was empty.
		e.cond.Signal()
	}
	e.mu.Unlock()
}

// BlockingEnd undoes BlockingBegin; surplus workers retire lazily.
// Pass the same worker (or nil) as the matching BlockingBegin.
func (e *Executor) BlockingEnd(w *Worker) {
	e.mu.Lock()
	e.blocked--
	if w != nil && w.e == e {
		w.blocking--
	}
	e.mu.Unlock()
}

// Stop shuts the pool down and waits for every worker to exit. Pending
// ready work — injected or on any deque — is drained first; Ready
// calls after Stop are dropped. The caller must ensure no worker is
// still inside a blocking section that only future Ready work could
// release.
func (e *Executor) Stop() {
	e.mu.Lock()
	e.stopped = true
	e.stopping.Store(true)
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// Counters reports the number of compensation workers spawned beyond
// the initial pool and the number of times a worker parked idle.
func (e *Executor) Counters() (spawns, parks int64) {
	return e.spawns.Load(), e.workerParks.Load()
}

// StealCounters reports the work-stealing substrate's traffic: tasks
// stolen between workers, tasks routed through the shared injector,
// and tasks fast-pathed onto a local deque.
func (e *Executor) StealCounters() (steals, injectorPushes, localPushes int64) {
	return e.steals.Load(), e.injPushes.Load(), e.localPushes.Load()
}

// TaskCounters reports the fork-join layer's traffic: tasks spawned
// through TaskGroup.Spawn, fork-join tasks that migrated to another
// worker (worker sweeps and helping joins both count), and Wait parks
// taken after a helping sweep found nothing runnable.
func (e *Executor) TaskCounters() (spawned, taskSteals, waitParks int64) {
	return e.tasksSpawned.Load(), e.taskSteals.Load(), e.taskWaitParks.Load()
}
