package sched

import (
	"sync"
	"sync/atomic"
)

// Runnable is a unit of resumable work multiplexed onto an Executor's
// workers. Step runs the unit until it has no immediately available
// work; it must not block indefinitely — a Runnable that needs to wait
// returns from Step and is handed back to the Executor (Ready) when
// new work arrives. The wait need not be for queue input: a Runnable
// may park itself on an external completion (core's awaiting handler
// state registers a future callback that calls Ready), which is the
// cheap alternative to BlockingBegin/End compensation whenever the
// wait can be expressed as a continuation. Step is never invoked
// concurrently for the same Runnable; the scheduling protocol of the
// owner must guarantee that.
type Runnable interface {
	Step()
}

// Executor is a fixed-size worker pool draining a FIFO ready queue of
// Runnables: the M:N layer that lets millions of mostly-idle handlers
// share a few goroutines instead of owning one each. It corresponds to
// the task-switching layer of the paper's §3 runtime stack, with the
// Go scheduler demoted to scheduling only the pool workers.
//
// Blocking compensation: client code executed by a Runnable may block
// the worker goroutine itself (a handler synchronously querying
// another handler cannot be unwound into a state machine). Such code
// must bracket the wait with BlockingBegin/BlockingEnd; the Executor
// then spawns a replacement worker when the pool would otherwise have
// no runnable worker left, so dependency chains deeper than the pool
// size cannot deadlock it. Surplus workers retire once the blocked
// ones resume.
type Executor struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ready   []Runnable // FIFO: ready[head:] are pending
	head    int
	target  int // configured pool size
	workers int // live workers, including blocked ones
	blocked int // workers inside a BlockingBegin/End section
	idle    int // workers parked in cond.Wait
	stopped bool
	wg      sync.WaitGroup

	spawns      atomic.Int64 // compensation workers spawned
	workerParks atomic.Int64 // times a worker went idle
}

// NewExecutor starts a pool of n workers (n must be positive).
func NewExecutor(n int) *Executor {
	if n < 1 {
		panic("sched: NewExecutor needs at least one worker")
	}
	e := &Executor{target: n}
	e.cond = sync.NewCond(&e.mu)
	e.mu.Lock()
	for i := 0; i < n; i++ {
		e.spawnLocked()
	}
	e.spawns.Store(0) // the initial pool is not compensation
	e.mu.Unlock()
	return e
}

// spawnLocked starts one worker. Caller holds e.mu.
func (e *Executor) spawnLocked() {
	e.workers++
	e.spawns.Add(1)
	e.wg.Add(1)
	go e.worker()
}

// Ready enqueues r for execution by the next free worker. The caller's
// scheduling protocol must ensure r is enqueued at most once until its
// Step runs (see Runnable). Ready after Stop drops r.
func (e *Executor) Ready(r Runnable) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.ready = append(e.ready, r)
	if e.idle > 0 {
		e.cond.Signal()
	}
	e.mu.Unlock()
}

// pop removes the head of the ready queue. Caller holds e.mu and has
// checked it is non-empty.
func (e *Executor) pop() Runnable {
	r := e.ready[e.head]
	e.ready[e.head] = nil
	e.head++
	if e.head > 64 && e.head*2 >= len(e.ready) {
		n := copy(e.ready, e.ready[e.head:])
		e.ready = e.ready[:n]
		e.head = 0
	}
	return r
}

func (e *Executor) worker() {
	defer e.wg.Done()
	e.mu.Lock()
	for {
		if e.head < len(e.ready) {
			r := e.pop()
			e.mu.Unlock()
			r.Step()
			e.mu.Lock()
			continue
		}
		// No ready work: retire if stopping or clearly surplus, else
		// park. The 2x hysteresis keeps a spare pool of compensation
		// workers around between blocking bursts — without it, a
		// workload that blocks on every operation (a synchronous
		// delegation ring) would spawn and retire a goroutine per
		// operation.
		if e.stopped || e.workers-e.blocked > 2*e.target {
			e.workers--
			e.mu.Unlock()
			return
		}
		e.idle++
		e.workerParks.Add(1)
		e.cond.Wait()
		e.idle--
	}
}

// BlockingBegin declares that the calling worker is about to block on
// something only another Runnable's progress can release. If the pool
// would be left without an available worker below target, a
// replacement is spawned before the caller parks.
func (e *Executor) BlockingBegin() {
	e.mu.Lock()
	e.blocked++
	if e.workers-e.blocked < e.target && e.idle == 0 && !e.stopped {
		e.spawnLocked()
	}
	e.mu.Unlock()
}

// BlockingEnd undoes BlockingBegin; surplus workers retire lazily.
func (e *Executor) BlockingEnd() {
	e.mu.Lock()
	e.blocked--
	e.mu.Unlock()
}

// Stop shuts the pool down and waits for every worker to exit. Pending
// ready work is drained first; Ready calls after Stop are dropped. The
// caller must ensure no worker is still inside a blocking section that
// only future Ready work could release.
func (e *Executor) Stop() {
	e.mu.Lock()
	e.stopped = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// Counters reports the number of compensation workers spawned beyond
// the initial pool and the number of times a worker parked idle.
func (e *Executor) Counters() (spawns, parks int64) {
	return e.spawns.Load(), e.workerParks.Load()
}
