package sched

import (
	"sort"
)

// Parallel skeletons in the spirit of Intel Threading Building Blocks,
// running on the executor's fork-join task layer (task.go). They are
// the substrate standing in for C++/TBB in the paper's language
// comparison — fork-join data parallelism over shared memory with
// randomized work stealing and no safety guarantees, the performance
// ceiling the safe models are measured against — and, because they ride
// the same deques as the handler state machines, they let data-parallel
// kernels and message-passing handlers share one worker pool.
//
// All three skeletons may be called from any goroutine; calls from
// inside a spawned task or a handler step are fine (the joins help and,
// as a last resort, park with blocking compensation). The executor must
// outlive every call.

// ParallelFor executes body over [lo, hi) by recursive range splitting
// with the given grain size: ranges at or below grain run sequentially;
// larger ranges split in half, with the right half spawned for
// stealing. The calling goroutine runs the leftmost spine and then
// helps execute outstanding tasks until the whole range has been
// processed, so nested ParallelFor calls from inside tasks or handler
// steps cannot deadlock the pool.
func ParallelFor(e *Executor, lo, hi, grain int, body func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	if hi <= lo {
		return
	}
	g := e.NewGroup()
	var run func(w *Worker, lo, hi int)
	run = func(w *Worker, lo, hi int) {
		for hi-lo > grain {
			mid := lo + (hi-lo)/2
			right := hi
			g.Spawn(w, func(w2 *Worker) { run(w2, mid, right) })
			hi = mid
		}
		body(lo, hi)
	}
	run(nil, lo, hi)
	g.Wait(nil)
}

// ParallelReduce folds leaf results over [lo, hi) with the same
// splitting strategy as ParallelFor. combine must be associative; it is
// applied in deterministic left-to-right range order, so deterministic
// leaves give deterministic results even under stealing.
func ParallelReduce[T any](e *Executor, lo, hi, grain int, leaf func(lo, hi int) T, combine func(a, b T) T) T {
	if grain < 1 {
		grain = 1
	}
	if hi <= lo {
		var zero T
		return zero
	}
	var run func(w *Worker, lo, hi int) T
	run = func(w *Worker, lo, hi int) T {
		if hi-lo <= grain {
			return leaf(lo, hi)
		}
		mid := lo + (hi-lo)/2
		var right T
		g := e.NewGroup()
		g.Spawn(w, func(w2 *Worker) { right = run(w2, mid, hi) })
		left := run(w, lo, mid)
		g.Wait(w)
		return combine(left, right)
	}
	return run(nil, lo, hi)
}

// sortGrain is the range size below which ParallelSort falls back to
// the standard library's sequential sort.
const sortGrain = 2048

// ParallelSort sorts data by less using parallel merge sort: halves
// sort concurrently (one half spawned for stealing, with a helping
// join) and are merged into a scratch buffer. The sort is stable —
// merges take from the left half first — matching tbb::parallel_sort's
// common use here (winnow needs a deterministic order, which stability
// provides).
func ParallelSort[T any](e *Executor, data []T, less func(a, b T) bool) {
	if len(data) < 2 {
		return
	}
	scratch := make([]T, len(data))
	var run func(w *Worker, d, s []T)
	run = func(w *Worker, d, s []T) {
		if len(d) <= sortGrain {
			sort.SliceStable(d, func(i, j int) bool { return less(d[i], d[j]) })
			return
		}
		mid := len(d) / 2
		g := e.NewGroup()
		g.Spawn(w, func(w2 *Worker) { run(w2, d[mid:], s[mid:]) })
		run(w, d[:mid], s[:mid])
		g.Wait(w)
		// Merge d[:mid] and d[mid:] into s, then copy back.
		i, j, k := 0, mid, 0
		for i < mid && j < len(d) {
			if less(d[j], d[i]) {
				s[k] = d[j]
				j++
			} else {
				s[k] = d[i]
				i++
			}
			k++
		}
		for i < mid {
			s[k] = d[i]
			i++
			k++
		}
		for j < len(d) {
			s[k] = d[j]
			j++
			k++
		}
		copy(d, s[:len(d)])
	}
	run(nil, data, scratch)
}
