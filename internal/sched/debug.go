package sched

import "fmt"

// DebugState renders a one-line snapshot of the executor's scheduling
// state for diagnostics and tests. Advisory: taken under the mutex,
// but deque contents are sampled atomically.
func (e *Executor) DebugState() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	pending := len(e.injector) - e.injHead
	deq := 0
	next := 0
	for _, w := range e.list {
		deq += int(e.dequeSize(w))
		if w.next.Load() != nil {
			next++
		}
	}
	return fmt.Sprintf(
		"executor{workers:%d blocked:%d idle:%d searchers:%d injector:%d injCount:%d deques:%d nexts:%d stopped:%v}",
		e.workers, e.blocked, e.idle.Load(), e.searchers.Load(),
		pending, e.injCount.Load(), deq, next, e.stopped)
}

func (e *Executor) dequeSize(w *Worker) int64 {
	b := w.dq.bottom.Load()
	t := w.dq.top.Load()
	if b < t {
		return 0
	}
	return b - t
}
