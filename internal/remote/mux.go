package remote

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"scoopqs/internal/future"
)

// closeFlushTimeout bounds Mux.Close's final flush: a peer that
// stopped reading would otherwise leave the writer wedged in Write —
// and Close waiting on it — forever.
const closeFlushTimeout = 5 * time.Second

// errClosed is the terminal error of a deliberately closed Mux or
// RemoteSession.
var errClosed = errors.New("remote: connection closed")

// Mux multiplexes many logical clients onto one connection. It owns
// the connection's two goroutines — a reader that demultiplexes
// replies into the channels' pending futures, and a batching writer
// (see connWriter) every channel's frames funnel through — and hands
// out RemoteSessions, each a lightweight logical client with its own
// wire channel.
//
// A Mux is safe for concurrent use: any number of goroutines may each
// drive their own RemoteSession. One RemoteSession, like a
// core.Client, belongs to one goroutine.
type Mux struct {
	conn net.Conn
	w    *connWriter

	mu     sync.Mutex
	chans  map[uint32]*RemoteSession
	nextCh uint32
	err    error // terminal; set once, when the connection dies

	readerDone chan struct{}
}

// DialMux connects a new Mux to a Server.
func DialMux(network, addr string) (*Mux, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	return NewMux(conn), nil
}

// NewMux wraps an established connection.
func NewMux(conn net.Conn) *Mux {
	m := &Mux{
		conn:       conn,
		chans:      map[uint32]*RemoteSession{},
		readerDone: make(chan struct{}),
	}
	// A write failure closes the connection so the reader unwedges and
	// runs the one teardown path (fail).
	m.w = newConnWriter(conn, func(error) { conn.Close() })
	go m.readLoop()
	return m
}

// NewSession hands out a fresh logical client on this connection. The
// channel id is never reused, so a retired session's late replies can
// never be misdelivered.
func (m *Mux) NewSession() *RemoteSession {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextCh++
	rs := &RemoteSession{
		m:       m,
		ch:      m.nextCh,
		pending: map[uint64]*future.Future{},
	}
	m.chans[rs.ch] = rs
	return rs
}

// Err returns the mux's terminal error, nil while the connection is
// healthy.
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Stats reports the writer's frame and flush counts: frames/flushes is
// the average batch size the adaptive flush achieved.
func (m *Mux) Stats() (frames, flushes uint64) {
	return m.w.stats()
}

// Close flushes queued frames, tears the connection down, and fails
// every channel's pending futures. Idempotent.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return nil
	}
	m.err = errClosed
	chans := m.snapshotLocked()
	m.mu.Unlock()

	m.conn.SetWriteDeadline(time.Now().Add(closeFlushTimeout)) //nolint:errcheck // best effort
	m.w.close()                                                // best-effort flush of queued ENDs/CLOSEs
	err := m.conn.Close()
	for _, rs := range chans {
		rs.failPending(errClosed)
	}
	<-m.readerDone
	return err
}

// fail is the involuntary teardown: the connection died underneath us.
// First caller wins; everyone's pending futures are failed so no
// awaiter hangs.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return
	}
	m.err = err
	chans := m.snapshotLocked()
	m.mu.Unlock()

	m.conn.Close()
	m.w.kill()
	for _, rs := range chans {
		rs.failPending(err)
	}
}

// snapshotLocked copies the live channel set; m.mu must be held.
func (m *Mux) snapshotLocked() []*RemoteSession {
	out := make([]*RemoteSession, 0, len(m.chans))
	for _, rs := range m.chans {
		out = append(out, rs)
	}
	return out
}

// drop removes a retired channel from the demux table.
func (m *Mux) drop(ch uint32) {
	m.mu.Lock()
	delete(m.chans, ch)
	m.mu.Unlock()
}

// readLoop demultiplexes server frames into the channels' pending
// futures. It is the connection's only reader; any read or protocol
// error is terminal for the whole mux.
func (m *Mux) readLoop() {
	defer close(m.readerDone)
	fr := newFrameReader(m.conn)
	var f frame
	for {
		if err := fr.readFrame(&f); err != nil {
			m.fail(fmt.Errorf("remote: recv: %w", err))
			return
		}
		switch f.kind {
		case fReply, fError:
			m.mu.Lock()
			rs := m.chans[f.ch]
			m.mu.Unlock()
			if rs == nil {
				continue // channel retired; stale reply
			}
			rs.resolve(&f)
		default:
			m.fail(fmt.Errorf("remote: unexpected frame kind 0x%02x from server", byte(f.kind)))
			return
		}
	}
}
