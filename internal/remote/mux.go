package remote

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scoopqs/internal/future"
)

// closeFlushTimeout bounds Mux.Close's final flush: a peer that
// stopped reading would otherwise leave the writer wedged in Write —
// and Close waiting on it — forever.
const closeFlushTimeout = 5 * time.Second

// Mux multiplexes many logical clients onto one connection. It owns
// the connection's two goroutines — a reader that demultiplexes
// replies into the channels' pending futures, and a batching writer
// (see connWriter) every channel's frames funnel through — and hands
// out RemoteSessions, each a lightweight logical client with its own
// wire channel.
//
// A Mux is safe for concurrent use: any number of goroutines may each
// drive their own RemoteSession. One RemoteSession, like a
// core.Client, belongs to one goroutine.
type Mux struct {
	conn net.Conn
	w    *connWriter

	mu     sync.Mutex
	chans  map[uint32]*RemoteSession
	nextCh uint32
	err    error // terminal; set once, when the connection dies

	creditStalls atomic.Uint64 // admissions parked at zero credits
	bytesIn      atomic.Uint64 // payload bytes decoded from REPLYB frames
	roundTrips   atomic.Uint64 // reply-expecting requests issued (QUERY/QUERYB/SYNC)

	readerDone chan struct{}
}

// DialMux connects a new Mux to a Server.
func DialMux(network, addr string) (*Mux, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	return NewMux(conn), nil
}

// NewMux wraps an established connection.
func NewMux(conn net.Conn) *Mux {
	m := &Mux{
		conn:       conn,
		chans:      map[uint32]*RemoteSession{},
		readerDone: make(chan struct{}),
	}
	// A write failure is terminal for the whole mux: fail directly so
	// every channel's pending futures resolve promptly (closing the
	// connection inside fail also unwedges the reader) instead of
	// waiting for the reader to notice the dead peer.
	m.w = newConnWriter(conn, 0, func(err error) {
		m.fail(fmt.Errorf("remote: send: %w", err))
	})
	go m.readLoop()
	return m
}

// NewSession hands out a fresh logical client on this connection. The
// channel id is never reused, so a retired session's late replies can
// never be misdelivered. On a dead mux (after Close, or after the
// connection failed) the session is born terminal: every operation
// fails fast with the mux's terminal error instead of registering
// futures nobody will ever resolve.
func (m *Mux) NewSession() *RemoteSession {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextCh++
	rs := &RemoteSession{
		m:       m,
		ch:      m.nextCh,
		pending: map[uint64]*future.Future{},
		credits: bootstrapCredits,
	}
	if m.err != nil {
		// A dead mux will never run another teardown sweep, so a
		// session registered now would hang its callers forever.
		rs.closed = true
		rs.term = m.err
		return rs
	}
	m.chans[rs.ch] = rs
	return rs
}

// Err returns the mux's terminal error, nil while the connection is
// healthy.
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// MuxStats is a snapshot of a connection's client-side flow-control
// and writer counters.
type MuxStats struct {
	Frames  uint64 // frames accepted by the writer
	Flushes uint64 // conn.Write calls; Frames/Flushes is the mean batch
	Dropped uint64 // frames accepted but never delivered (write failure/teardown)

	WriterStalls  uint64 // producers parked at the writer's byte budget
	CreditStalls  uint64 // admissions parked at zero per-channel credits
	MaxBatchBytes uint64 // peak pending-batch size (bounded by the budget)

	// RoundTrips counts reply-expecting requests issued on this
	// connection (QUERY/QUERYB/SYNC frames): every one is a wire
	// round-trip the peer must answer, so eliding a sync shows up here
	// as a smaller count for the same work.
	RoundTrips uint64

	BytesOut uint64 // payload bytes encoded into CALLB/QUERYB frames
	BytesIn  uint64 // payload bytes decoded from REPLYB frames

	// Slab-pool snapshot at the time of the Stats call. The pool is
	// process-global (every connection shares it), so these are not
	// scoped to this mux: InUse is live slabs, Reuses is free-list hits.
	SlabsInUse uint64
	SlabReuses uint64
}

// Stats reports the connection's writer and flow-control counters.
func (m *Mux) Stats() MuxStats {
	ws := m.w.stats()
	inUse, reuses := slabStats()
	return MuxStats{
		Frames:        ws.Frames,
		Flushes:       ws.Flushes,
		Dropped:       ws.Dropped,
		WriterStalls:  ws.Stalls,
		CreditStalls:  m.creditStalls.Load(),
		MaxBatchBytes: ws.MaxBatchBytes,
		RoundTrips:    m.roundTrips.Load(),
		BytesOut:      ws.Bytes,
		BytesIn:       m.bytesIn.Load(),
		SlabsInUse:    inUse,
		SlabReuses:    reuses,
	}
}

// Close flushes queued frames, tears the connection down, and fails
// every channel's pending futures. Idempotent.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return nil
	}
	m.err = ErrClosed
	chans := m.snapshotLocked()
	m.mu.Unlock()

	m.conn.SetWriteDeadline(time.Now().Add(closeFlushTimeout)) //nolint:errcheck // best effort
	m.w.close()                                                // best-effort flush of queued ENDs/CLOSEs
	err := m.conn.Close()
	for _, rs := range chans {
		rs.failPending(ErrClosed)
	}
	<-m.readerDone
	return err
}

// fail is the involuntary teardown: the connection died underneath us.
// First caller wins; everyone's pending futures are failed so no
// awaiter hangs.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return
	}
	m.err = err
	chans := m.snapshotLocked()
	m.mu.Unlock()

	m.conn.Close()
	m.w.kill()
	for _, rs := range chans {
		rs.failPending(err)
	}
}

// snapshotLocked copies the live channel set; m.mu must be held.
func (m *Mux) snapshotLocked() []*RemoteSession {
	out := make([]*RemoteSession, 0, len(m.chans))
	for _, rs := range m.chans {
		out = append(out, rs)
	}
	return out
}

// drop removes a retired channel from the demux table.
func (m *Mux) drop(ch uint32) {
	m.mu.Lock()
	delete(m.chans, ch)
	m.mu.Unlock()
}

// readLoop demultiplexes server frames into the channels' pending
// futures. It is the connection's only reader; any read or protocol
// error is terminal for the whole mux.
func (m *Mux) readLoop() {
	defer close(m.readerDone)
	fr := newFrameReader(m.conn)
	defer fr.close()
	var f frame
	for {
		if err := fr.readFrame(&f); err != nil {
			m.fail(fmt.Errorf("remote: recv: %w", err))
			return
		}
		switch f.kind {
		case fReply, fError, fReplyB:
			if f.kind == fReplyB {
				m.bytesIn.Add(uint64(len(f.data)))
			}
			m.mu.Lock()
			rs := m.chans[f.ch]
			m.mu.Unlock()
			if rs == nil {
				Release(f.data) // channel retired; stale reply — return the slab
				continue
			}
			rs.resolve(&f)
		case fCredit:
			if f.id == 0 || f.id > maxCreditGrant {
				// A zero or absurd grant is a protocol violation, not
				// arithmetic input: applied blindly, a huge count would
				// go negative in int64 and park every admission forever.
				m.fail(fmt.Errorf("remote: credit grant of %d outside (0, %d]: %w", f.id, uint64(maxCreditGrant), ErrProtocol))
				return
			}
			m.mu.Lock()
			rs := m.chans[f.ch]
			m.mu.Unlock()
			if rs == nil {
				continue // channel retired; stale grant
			}
			rs.addCredits(int64(f.id))
		default:
			m.fail(fmt.Errorf("remote: unexpected frame kind 0x%02x from server: %w", byte(f.kind), ErrProtocol))
			return
		}
	}
}
