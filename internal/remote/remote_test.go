package remote

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/future"
)

// serverModes are the runtime shapes the server suite runs under:
// dedicated handler goroutines and the pooled M:N executor at the two
// interesting pool widths (Workers 1 forces maximal multiplexing,
// Workers 4 exercises the work-stealing substrate).
var serverModes = []struct {
	name string
	cfg  core.Config
}{
	{"dedicated", core.ConfigAll},
	{"pooled1", core.ConfigAll.WithWorkers(1)},
	{"pooled4", core.ConfigAll.WithWorkers(4)},
}

// startServer brings up a ConfigAll runtime with one exposed counter
// handler and a TCP listener on a random port.
func startServer(t *testing.T) (addr string, counter *int64, shutdown func()) {
	t.Helper()
	return startServerCfg(t, core.ConfigAll)
}

// startServerCfg is startServer under an arbitrary runtime config.
func startServerCfg(t *testing.T, cfg core.Config) (addr string, counter *int64, shutdown func()) {
	t.Helper()
	rt := core.New(cfg)
	h := rt.NewHandler("counter")
	var n int64
	srv := NewServer(rt)
	srv.Expose("counter", h, map[string]Proc{
		"add": func(a []int64) int64 { n += a[0]; return n },
		"get": func([]int64) int64 { return n },
		"boom": func([]int64) int64 {
			panic("remote boom")
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), &n, func() {
		srv.Close()
		rt.Shutdown()
	}
}

func TestRemoteCallAndQuery(t *testing.T) {
	for _, m := range serverModes {
		t.Run(m.name, func(t *testing.T) {
			addr, _, shutdown := startServerCfg(t, m.cfg)
			defer shutdown()

			c, err := Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			err = c.Separate("counter", func(s *Session) error {
				for i := int64(1); i <= 10; i++ {
					if err := s.Call("add", i); err != nil {
						return err
					}
				}
				// The query must observe all ten adds: 1+..+10 = 55.
				v, err := s.Query("get")
				if err != nil {
					return err
				}
				if v != 55 {
					t.Errorf("query saw %d, want 55", v)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRemoteNoInterleavingAcrossClients(t *testing.T) {
	for _, m := range serverModes {
		t.Run(m.name, func(t *testing.T) {
			addr, _, shutdown := startServerCfg(t, m.cfg)
			defer shutdown()

			// Many remote clients log add(1) x k then read; each must
			// see a value >= its own contribution and the final total
			// must be exact.
			const clients, k = 6, 50
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c, err := Dial("tcp", addr)
					if err != nil {
						t.Error(err)
						return
					}
					defer c.Close()
					err = c.Separate("counter", func(s *Session) error {
						before, err := s.Query("get")
						if err != nil {
							return err
						}
						for j := 0; j < k; j++ {
							if err := s.Call("add", 1); err != nil {
								return err
							}
						}
						after, err := s.Query("get")
						if err != nil {
							return err
						}
						// Within one block nobody else may interleave:
						// the delta must be exactly k.
						if after-before != k {
							t.Errorf("interleaving detected: delta %d, want %d", after-before, k)
						}
						return nil
					})
					if err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()

			c, err := Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			err = c.Separate("counter", func(s *Session) error {
				v, err := s.Query("get")
				if err != nil {
					return err
				}
				if v != clients*k {
					t.Errorf("final total %d, want %d", v, clients*k)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRemoteMuxNoInterleaving is the no-interleaving property with all
// the logical clients multiplexed on ONE connection: every client is a
// RemoteSession on the same Mux, so their blocks interleave on the
// wire but must not interleave on the handler.
func TestRemoteMuxNoInterleaving(t *testing.T) {
	for _, m := range serverModes {
		t.Run(m.name, func(t *testing.T) {
			addr, _, shutdown := startServerCfg(t, m.cfg)
			defer shutdown()

			mux, err := DialMux("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer mux.Close()

			const clients, k = 8, 50
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				rs := mux.NewSession()
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer rs.Close()
					err := rs.Separate("counter", func(s *Session) error {
						before, err := s.Query("get")
						if err != nil {
							return err
						}
						for j := 0; j < k; j++ {
							if err := s.Call("add", 1); err != nil {
								return err
							}
						}
						after, err := s.Query("get")
						if err != nil {
							return err
						}
						if after-before != k {
							t.Errorf("interleaving detected: delta %d, want %d", after-before, k)
						}
						return nil
					})
					if err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()

			final := mux.NewSession()
			err = final.Separate("counter", func(s *Session) error {
				v, err := s.Query("get")
				if err != nil {
					return err
				}
				if v != clients*k {
					t.Errorf("final total %d, want %d", v, clients*k)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Many sessions pipelining concurrently on one connection: per-session
// ordering must hold for every one of them.
func TestRemoteMuxConcurrentPipelines(t *testing.T) {
	rt := core.New(core.ConfigAll.WithWorkers(4))
	srv := NewServer(rt)
	const handlers = 16
	sums := make([]int64, handlers)
	for i := 0; i < handlers; i++ {
		i := i
		h := rt.NewHandler("h")
		srv.Expose(handlerName(i), h, map[string]Proc{
			"add": func(a []int64) int64 { sums[i] += a[0]; return sums[i] },
		})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		srv.Close()
		rt.Shutdown()
	}()

	mux, err := DialMux("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	const perClient = 200
	var wg sync.WaitGroup
	for i := 0; i < handlers; i++ {
		i := i
		rs := mux.NewSession()
		wg.Add(1)
		go func() {
			defer wg.Done()
			futs := make([]*future.Future, 0, perClient)
			err := rs.Separate(handlerName(i), func(s *Session) error {
				for j := 0; j < perClient; j++ {
					f, err := s.QueryAsync("add", 1)
					if err != nil {
						return err
					}
					futs = append(futs, f)
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if err := rs.Flush(); err != nil {
				t.Error(err)
				return
			}
			// The handler is private to this session, so future j must
			// resolve to j+1: per-session FIFO survived the mux.
			for j, f := range futs {
				v, err := rs.Await(f)
				if err != nil {
					t.Error(err)
					return
				}
				if v != int64(j+1) {
					t.Errorf("session %d: pipelined query %d resolved to %d, want %d", i, j, v, j+1)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func handlerName(i int) string {
	return "h" + string(rune('a'+i/10)) + string(rune('0'+i%10))
}

func TestRemoteSync(t *testing.T) {
	addr, nptr, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		if err := s.Call("add", 7); err != nil {
			return err
		}
		if err := s.Sync(); err != nil {
			return err
		}
		// After sync the handler has applied the call; reading the
		// variable directly from the test is safe only because this
		// block still excludes every other client.
		if *nptr != 7 {
			t.Errorf("after sync, n = %d, want 7", *nptr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemoteUnknownHandler(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// BEGIN is fire-and-forget now, so the failure surfaces at the
	// block's first synchronization point, not at Separate itself.
	err = c.Separate("nonesuch", func(s *Session) error {
		_, err := s.Query("get")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "unknown handler") {
		t.Fatalf("err = %v, want unknown handler", err)
	}
	// The channel survives a failed block: a fresh block works.
	err = c.Separate("counter", func(s *Session) error {
		_, err := s.Query("get")
		return err
	})
	if err != nil {
		t.Fatalf("channel did not recover from a failed BEGIN: %v", err)
	}
}

// A fire-and-forget block (only CALLs, no query or sync) on an
// unknown handler must not lose its work silently: the server's id-0
// block-level ERROR surfaces at the enclosing Separate (if the report
// won the race) or at a later synchronization point of the channel.
func TestRemoteUnknownHandlerFireAndForgetSurfaces(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("nonesuch", func(s *Session) error {
		return s.Call("add", 1)
	})
	deadline := time.Now().Add(10 * time.Second)
	for err == nil && time.Now().Before(deadline) {
		// The id-0 ERROR races Separate's return; it must show up at a
		// subsequent synchronization point of the channel.
		err = c.Separate("counter", func(s *Session) error { return nil })
		if err == nil {
			err = c.Flush()
		}
	}
	if err == nil || !strings.Contains(err.Error(), "unknown handler") {
		t.Fatalf("err = %v, want unknown handler surfaced asynchronously", err)
	}
}

func TestRemoteUnknownProcedure(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		_, err := s.Query("frobnicate")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "unknown procedure") {
		t.Fatalf("err = %v, want unknown procedure", err)
	}
}

// An unknown procedure in a CALL has no reply to carry the error, so
// it poisons the block: the next synchronization point reports it, and
// the following block is clean.
func TestRemoteUnknownCallPoisonsBlock(t *testing.T) {
	addr, nptr, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		if err := s.Call("frobnicate", 1); err != nil {
			return err
		}
		if err := s.Call("add", 1); err != nil { // dropped: block poisoned
			return err
		}
		_, err := s.Query("get")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "unknown procedure") {
		t.Fatalf("err = %v, want unknown procedure", err)
	}
	err = c.Separate("counter", func(s *Session) error {
		v, err := s.Query("get")
		if err != nil {
			return err
		}
		if v != 0 {
			t.Errorf("poisoned block leaked calls: n = %d, want 0", v)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("block after a poisoned one failed: %v", err)
	}
	_ = nptr
}

func TestRemoteQueryPanicSurfacesPooled(t *testing.T) {
	// Same scenario as TestRemoteQueryPanicSurfaces on a pooled
	// runtime: the panic must fail one query, not wedge a pool worker.
	addr, _, shutdown := startServerCfg(t, core.ConfigAll.WithWorkers(2))
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		_, err := s.Query("boom")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want handler panic surfaced", err)
	}
}

func TestRemoteQueryPanicSurfaces(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		_, err := s.Query("boom")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want handler panic surfaced", err)
	}
	// The server and handler survive for the next client.
	c2, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	err = c2.Separate("counter", func(s *Session) error {
		_, err := s.Query("get")
		return err
	})
	if err != nil {
		t.Fatalf("server did not survive a handler panic: %v", err)
	}
}

func TestRemoteClientDisconnectMidBlockReleasesHandler(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()

	// Open a block, log a call, and vanish without END — raw frames,
	// since the real client always brackets blocks.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = appendFrame(buf, &frame{kind: fBegin, ch: 1, name: "counter"})
	buf = appendFrame(buf, &frame{kind: fCall, ch: 1, name: "add", args: []int64{1}})
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A new client must still be able to use the handler: the server
	// closes abandoned blocks.
	c2, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	done := make(chan error, 1)
	go func() {
		done <- c2.Separate("counter", func(s *Session) error {
			_, err := s.Query("get")
			return err
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-timeoutC(t):
		t.Fatal("handler wedged by an abandoned remote block")
	}
}

// A RemoteSession closed mid-block must release the handler (the
// server ENDs the abandoned block) while the connection's other
// sessions keep working.
func TestRemoteChannelAbandonMidBlockReleasesHandler(t *testing.T) {
	for _, m := range serverModes {
		t.Run(m.name, func(t *testing.T) {
			addr, _, shutdown := startServerCfg(t, m.cfg)
			defer shutdown()

			mux, err := DialMux("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer mux.Close()

			// Open a block and abandon the channel without END. The
			// pending future must fail rather than hang.
			rs := mux.NewSession()
			var orphan *future.Future
			if err := rs.send(&frame{kind: fBegin, ch: rs.ch, name: "counter"}); err != nil {
				t.Fatal(err)
			}
			if orphan, err = (&Session{rs: rs}).QueryAsync("add", 1); err != nil {
				t.Fatal(err)
			}
			rs.Close()
			select {
			case <-orphan.Done():
			case <-timeoutC(t):
				t.Fatal("abandoned channel's future never resolved")
			}

			// A sibling session on the same connection can now reserve
			// the same handler: the server ENDed the abandoned block.
			rs2 := mux.NewSession()
			done := make(chan error, 1)
			go func() {
				done <- rs2.Separate("counter", func(s *Session) error {
					_, err := s.Query("get")
					return err
				})
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-timeoutC(t):
				t.Fatal("handler wedged by an abandoned channel")
			}
		})
	}
}

// Server.Close with blocks open and queries in flight on several
// channels: the server must come down, the runtime must still shut
// down cleanly, and every client-side future must resolve (value or
// error) instead of hanging.
func TestRemoteServerCloseWithInFlightChannels(t *testing.T) {
	for _, m := range serverModes {
		t.Run(m.name, func(t *testing.T) {
			rt := core.New(m.cfg)
			h := rt.NewHandler("counter")
			var n int64
			srv := NewServer(rt)
			srv.Expose("counter", h, map[string]Proc{
				"add": func(a []int64) int64 { n += a[0]; return n },
			})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln)

			mux, err := DialMux("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer mux.Close()

			const sessions, queries = 4, 64
			futs := make([]*future.Future, 0, sessions*queries)
			for i := 0; i < sessions; i++ {
				rs := mux.NewSession()
				// Blocks left open deliberately: Close must not need
				// cooperative ENDs.
				if err := rs.send(&frame{kind: fBegin, ch: rs.ch, name: "counter"}); err != nil {
					t.Fatal(err)
				}
				s := &Session{rs: rs}
				for j := 0; j < queries; j++ {
					f, err := s.QueryAsync("add", 1)
					if err != nil {
						t.Fatal(err)
					}
					futs = append(futs, f)
				}
			}

			srv.Close()
			rt.Shutdown()

			for i, f := range futs {
				select {
				case <-f.Done():
				case <-timeoutC(t):
					t.Fatalf("future %d still pending after server Close", i)
				}
			}
		})
	}
}

func timeoutC(t *testing.T) <-chan time.Time {
	t.Helper()
	// Generous on a loaded single-core box.
	return time.After(10 * time.Second)
}

func TestRemotePipelinedQueries(t *testing.T) {
	for _, m := range serverModes {
		t.Run(m.name, func(t *testing.T) {
			addr, _, shutdown := startServerCfg(t, m.cfg)
			defer shutdown()
			c, err := Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			const n = 100
			futs := make([]*future.Future, 0, n)
			err = c.Separate("counter", func(s *Session) error {
				for i := 0; i < n; i++ {
					f, err := s.QueryAsync("add", 1)
					if err != nil {
						return err
					}
					futs = append(futs, f)
				}
				// A synchronous query pipelines behind them and must
				// observe all n adds.
				v, err := s.Query("get")
				if err != nil {
					return err
				}
				if v != n {
					t.Errorf("sync query after %d pipelined adds saw %d", n, v)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			// Each pipelined add returned the running count: per-session
			// ordering means future i must resolve to i+1.
			for i, f := range futs {
				v, err := c.Await(f)
				if err != nil {
					t.Fatal(err)
				}
				if v != int64(i+1) {
					t.Fatalf("pipelined query %d resolved to %d, want %d (ordering broken)", i, v, i+1)
				}
			}
		})
	}
}

func TestRemotePipelinedErrors(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var unknown, boom *future.Future
	err = c.Separate("counter", func(s *Session) error {
		var err error
		if unknown, err = s.QueryAsync("frobnicate"); err != nil {
			return err
		}
		if boom, err = s.QueryAsync("boom"); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Await(unknown); err == nil || !strings.Contains(err.Error(), "unknown procedure") {
		t.Fatalf("unknown-proc future resolved with %v", err)
	}
	if _, err := c.Await(boom); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panicking future resolved with %v", err)
	}
	// The panic poisoned that block only; a fresh block still works.
	err = c.Separate("counter", func(s *Session) error {
		_, err := s.Query("get")
		return err
	})
	if err != nil {
		t.Fatalf("server did not survive pipelined errors: %v", err)
	}
}

func TestRemoteCloseFailsPendingFutures(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var f *future.Future
	err = c.Separate("counter", func(s *Session) error {
		var err error
		f, err = s.QueryAsync("get")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case <-f.Done():
		// Resolved: either the reply raced the close (a value) or the
		// close failed it; both are fine — it must not stay pending.
	case <-timeoutC(t):
		t.Fatal("pending future not resolved by Close")
	}
}

// The gob-era baseline transport must keep working: it is the
// comparison column of qsbench -experiment remote.
func TestGobBaselineRoundTrip(t *testing.T) {
	rt := core.New(core.ConfigAll.WithWorkers(2))
	h := rt.NewHandler("counter")
	var n int64
	srv := NewGobServer(rt)
	srv.Expose("counter", h, map[string]Proc{
		"add": func(a []int64) int64 { n += a[0]; return n },
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		srv.Close()
		rt.Shutdown()
	}()

	c, err := DialGob("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var last *future.Future
	err = c.Separate("counter", func(s *GobSession) error {
		for i := 0; i < 20; i++ {
			var err error
			if last, err = s.QueryAsync("add", 1); err != nil {
				return err
			}
		}
		v, err := s.Query("add", 1)
		if err != nil {
			return err
		}
		if v != 21 {
			t.Errorf("gob query saw %d, want 21", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Await(last); err != nil || v != 20 {
		t.Fatalf("gob pipelined future = %d, %v; want 20, nil", v, err)
	}
}
