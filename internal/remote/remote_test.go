package remote

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/future"
)

// serverModes are the runtime shapes the server suite runs under:
// dedicated handler goroutines and the pooled M:N executor (the
// ROADMAP's "remote on pooled runtimes" item).
var serverModes = []struct {
	name string
	cfg  core.Config
}{
	{"dedicated", core.ConfigAll},
	{"pooled2", core.ConfigAll.WithWorkers(2)},
}

// startServer brings up a ConfigAll runtime with one exposed counter
// handler and a TCP listener on a random port.
func startServer(t *testing.T) (addr string, counter *int64, shutdown func()) {
	t.Helper()
	return startServerCfg(t, core.ConfigAll)
}

// startServerCfg is startServer under an arbitrary runtime config.
func startServerCfg(t *testing.T, cfg core.Config) (addr string, counter *int64, shutdown func()) {
	t.Helper()
	rt := core.New(cfg)
	h := rt.NewHandler("counter")
	var n int64
	srv := NewServer(rt)
	srv.Expose("counter", h, map[string]Proc{
		"add": func(a []int64) int64 { n += a[0]; return n },
		"get": func([]int64) int64 { return n },
		"boom": func([]int64) int64 {
			panic("remote boom")
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), &n, func() {
		srv.Close()
		rt.Shutdown()
	}
}

func TestRemoteCallAndQuery(t *testing.T) {
	for _, m := range serverModes {
		t.Run(m.name, func(t *testing.T) {
			addr, _, shutdown := startServerCfg(t, m.cfg)
			defer shutdown()

			c, err := Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			err = c.Separate("counter", func(s *Session) error {
				for i := int64(1); i <= 10; i++ {
					if err := s.Call("add", i); err != nil {
						return err
					}
				}
				// The query must observe all ten adds: 1+..+10 = 55.
				v, err := s.Query("get")
				if err != nil {
					return err
				}
				if v != 55 {
					t.Errorf("query saw %d, want 55", v)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRemoteNoInterleavingAcrossClients(t *testing.T) {
	for _, m := range serverModes {
		t.Run(m.name, func(t *testing.T) {
			addr, _, shutdown := startServerCfg(t, m.cfg)
			defer shutdown()

			// Many remote clients log add(1) x k then read; each must
			// see a value >= its own contribution and the final total
			// must be exact.
			const clients, k = 6, 50
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c, err := Dial("tcp", addr)
					if err != nil {
						t.Error(err)
						return
					}
					defer c.Close()
					err = c.Separate("counter", func(s *Session) error {
						before, err := s.Query("get")
						if err != nil {
							return err
						}
						for j := 0; j < k; j++ {
							if err := s.Call("add", 1); err != nil {
								return err
							}
						}
						after, err := s.Query("get")
						if err != nil {
							return err
						}
						// Within one block nobody else may interleave:
						// the delta must be exactly k.
						if after-before != k {
							t.Errorf("interleaving detected: delta %d, want %d", after-before, k)
						}
						return nil
					})
					if err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()

			c, err := Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			err = c.Separate("counter", func(s *Session) error {
				v, err := s.Query("get")
				if err != nil {
					return err
				}
				if v != clients*k {
					t.Errorf("final total %d, want %d", v, clients*k)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRemoteSync(t *testing.T) {
	addr, nptr, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		if err := s.Call("add", 7); err != nil {
			return err
		}
		if err := s.Sync(); err != nil {
			return err
		}
		// After sync the handler has applied the call; reading the
		// variable directly from the test is safe only because the
		// handler is parked on this block's queue.
		if *nptr != 7 {
			t.Errorf("after sync, n = %d, want 7", *nptr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemoteUnknownHandler(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("nonesuch", func(s *Session) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unknown handler") {
		t.Fatalf("err = %v, want unknown handler", err)
	}
}

func TestRemoteUnknownProcedure(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		_, err := s.Query("frobnicate")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "unknown procedure") {
		t.Fatalf("err = %v, want unknown procedure", err)
	}
}

func TestRemoteQueryPanicSurfacesPooled(t *testing.T) {
	// Same scenario as TestRemoteQueryPanicSurfaces on a pooled
	// runtime: the panic must fail one query, not wedge a pool worker.
	addr, _, shutdown := startServerCfg(t, core.ConfigAll.WithWorkers(2))
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		_, err := s.Query("boom")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want handler panic surfaced", err)
	}
}

func TestRemoteQueryPanicSurfaces(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		_, err := s.Query("boom")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want handler panic surfaced", err)
	}
	// The server and handler survive for the next client.
	c2, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	err = c2.Separate("counter", func(s *Session) error {
		_, err := s.Query("get")
		return err
	})
	if err != nil {
		t.Fatalf("server did not survive a handler panic: %v", err)
	}
}

func TestRemoteClientDisconnectMidBlockReleasesHandler(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()

	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Open a block, log a call, and vanish without END.
	if _, err := c.roundTrip(msg{Kind: kindBegin, Handler: "counter"}); err != nil {
		t.Fatal(err)
	}
	if err := c.enc.Encode(msg{Kind: kindCall, Fn: "add", Args: []int64{1}}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// A new client must still be able to use the handler: the server
	// closes abandoned blocks.
	c2, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	done := make(chan error, 1)
	go func() {
		done <- c2.Separate("counter", func(s *Session) error {
			_, err := s.Query("get")
			return err
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-timeoutC(t):
		t.Fatal("handler wedged by an abandoned remote block")
	}
}

func timeoutC(t *testing.T) <-chan time.Time {
	t.Helper()
	// Generous on a loaded single-core box.
	return time.After(10 * time.Second)
}

func TestRemotePipelinedQueries(t *testing.T) {
	for _, m := range serverModes {
		t.Run(m.name, func(t *testing.T) {
			addr, _, shutdown := startServerCfg(t, m.cfg)
			defer shutdown()
			c, err := Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			const n = 100
			futs := make([]*future.Future, 0, n)
			err = c.Separate("counter", func(s *Session) error {
				for i := 0; i < n; i++ {
					f, err := s.QueryAsync("add", 1)
					if err != nil {
						return err
					}
					futs = append(futs, f)
				}
				// A synchronous query pipelines behind them and must
				// observe all n adds.
				v, err := s.Query("get")
				if err != nil {
					return err
				}
				if v != n {
					t.Errorf("sync query after %d pipelined adds saw %d", n, v)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			// Each pipelined add returned the running count: per-session
			// ordering means future i must resolve to i+1.
			for i, f := range futs {
				v, err := c.Await(f)
				if err != nil {
					t.Fatal(err)
				}
				if v != int64(i+1) {
					t.Fatalf("pipelined query %d resolved to %d, want %d (ordering broken)", i, v, i+1)
				}
			}
		})
	}
}

func TestRemotePipelinedErrors(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var unknown, boom *future.Future
	err = c.Separate("counter", func(s *Session) error {
		var err error
		if unknown, err = s.QueryAsync("frobnicate"); err != nil {
			return err
		}
		if boom, err = s.QueryAsync("boom"); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Await(unknown); err == nil || !strings.Contains(err.Error(), "unknown procedure") {
		t.Fatalf("unknown-proc future resolved with %v", err)
	}
	if _, err := c.Await(boom); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panicking future resolved with %v", err)
	}
	// The panic poisoned that block only; a fresh block still works.
	err = c.Separate("counter", func(s *Session) error {
		_, err := s.Query("get")
		return err
	})
	if err != nil {
		t.Fatalf("server did not survive pipelined errors: %v", err)
	}
}

func TestRemoteCloseFailsPendingFutures(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var f *future.Future
	err = c.Separate("counter", func(s *Session) error {
		var err error
		f, err = s.QueryAsync("get")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case <-f.Done():
		// Resolved: either the reply raced the close (a value) or the
		// close failed it; both are fine — it must not stay pending.
	case <-timeoutC(t):
		t.Fatal("pending future not resolved by Close")
	}
}
