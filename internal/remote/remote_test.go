package remote

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"scoopqs/internal/core"
)

// startServer brings up a runtime with one exposed counter handler and
// a TCP listener on a random port.
func startServer(t *testing.T) (addr string, counter *int64, shutdown func()) {
	t.Helper()
	rt := core.New(core.ConfigAll)
	h := rt.NewHandler("counter")
	var n int64
	srv := NewServer(rt)
	srv.Expose("counter", h, map[string]Proc{
		"add": func(a []int64) int64 { n += a[0]; return n },
		"get": func([]int64) int64 { return n },
		"boom": func([]int64) int64 {
			panic("remote boom")
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), &n, func() {
		srv.Close()
		rt.Shutdown()
	}
}

func TestRemoteCallAndQuery(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()

	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Separate("counter", func(s *Session) error {
		for i := int64(1); i <= 10; i++ {
			if err := s.Call("add", i); err != nil {
				return err
			}
		}
		// The query must observe all ten adds: 1+..+10 = 55.
		v, err := s.Query("get")
		if err != nil {
			return err
		}
		if v != 55 {
			t.Errorf("query saw %d, want 55", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemoteNoInterleavingAcrossClients(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()

	// Many remote clients log add(1) x k then read; each must see a
	// value >= its own contribution and the final total must be exact.
	const clients, k = 6, 50
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			err = c.Separate("counter", func(s *Session) error {
				before, err := s.Query("get")
				if err != nil {
					return err
				}
				for j := 0; j < k; j++ {
					if err := s.Call("add", 1); err != nil {
						return err
					}
				}
				after, err := s.Query("get")
				if err != nil {
					return err
				}
				// Within one block nobody else may interleave: the
				// delta must be exactly k.
				if after-before != k {
					t.Errorf("interleaving detected: delta %d, want %d", after-before, k)
				}
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		v, err := s.Query("get")
		if err != nil {
			return err
		}
		if v != clients*k {
			t.Errorf("final total %d, want %d", v, clients*k)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemoteSync(t *testing.T) {
	addr, nptr, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		if err := s.Call("add", 7); err != nil {
			return err
		}
		if err := s.Sync(); err != nil {
			return err
		}
		// After sync the handler has applied the call; reading the
		// variable directly from the test is safe only because the
		// handler is parked on this block's queue.
		if *nptr != 7 {
			t.Errorf("after sync, n = %d, want 7", *nptr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemoteUnknownHandler(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("nonesuch", func(s *Session) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unknown handler") {
		t.Fatalf("err = %v, want unknown handler", err)
	}
}

func TestRemoteUnknownProcedure(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		_, err := s.Query("frobnicate")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "unknown procedure") {
		t.Fatalf("err = %v, want unknown procedure", err)
	}
}

func TestRemoteQueryPanicSurfaces(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Separate("counter", func(s *Session) error {
		_, err := s.Query("boom")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want handler panic surfaced", err)
	}
	// The server and handler survive for the next client.
	c2, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	err = c2.Separate("counter", func(s *Session) error {
		_, err := s.Query("get")
		return err
	})
	if err != nil {
		t.Fatalf("server did not survive a handler panic: %v", err)
	}
}

func TestRemoteClientDisconnectMidBlockReleasesHandler(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()

	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Open a block, log a call, and vanish without END.
	if _, err := c.roundTrip(msg{Kind: kindBegin, Handler: "counter"}); err != nil {
		t.Fatal(err)
	}
	if err := c.enc.Encode(msg{Kind: kindCall, Fn: "add", Args: []int64{1}}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// A new client must still be able to use the handler: the server
	// closes abandoned blocks.
	c2, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	done := make(chan error, 1)
	go func() {
		done <- c2.Separate("counter", func(s *Session) error {
			_, err := s.Query("get")
			return err
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-timeoutC(t):
		t.Fatal("handler wedged by an abandoned remote block")
	}
}

func timeoutC(t *testing.T) <-chan time.Time {
	t.Helper()
	// Generous on a loaded single-core box.
	return time.After(10 * time.Second)
}
