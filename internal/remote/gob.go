package remote

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"scoopqs/internal/core"
	"scoopqs/internal/future"
	"scoopqs/internal/queue"
)

// This file is the pre-multiplexing transport: one TCP connection per
// client, gob-encoded messages, a goroutine per connection on the
// server. It is retained verbatim (renamed Gob*) as the measurement
// baseline for qsbench -experiment remote — the "256 separate gob
// connections" column the multiplexed transport is compared against —
// and is not an API to build on. New code uses Mux/RemoteSession and
// the framed Server.

// msgKind enumerates the gob protocol's messages.
type msgKind uint8

const (
	// client -> server
	kindBegin      msgKind = iota // reserve: open a separate block on Handler
	kindEnd                       // end the block (the END marker)
	kindCall                      // asynchronous call, no reply
	kindQuery                     // synchronous query, reply carries the value
	kindSync                      // sync handshake, empty reply
	kindQueryAsync                // pipelined query; ASYNCREPLY carries Id+value
	// server -> client
	kindReply      // query/sync reply (synchronous, in request order)
	kindAsyncReply // resolution of a pipelined query, matched by Id
)

// msg is the gob wire message. Fields are used per kind; gob omits zero
// values so the envelope stays small.
type msg struct {
	Kind    msgKind
	Handler string  // kindBegin: target handler name
	Fn      string  // kindCall/kindQuery/kindQueryAsync: procedure name
	Args    []int64 // kindCall/kindQuery/kindQueryAsync
	Id      uint64  // kindQueryAsync/kindAsyncReply: pipeline tag
	Val     int64   // kindReply/kindAsyncReply
	Err     string  // kindReply/kindAsyncReply: non-empty on failure
}

// GobClient is the gob-era remote client: one connection, one logical
// client, synchronous replies consumed in request order. Like the
// framed client it must not be used concurrently.
type GobClient struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	nextID  uint64
	pending map[uint64]*future.Future
}

// DialGob connects a gob-era client to a GobServer.
func DialGob(network, addr string) (*GobClient, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	return NewGobClient(conn), nil
}

// NewGobClient wraps an established connection.
func NewGobClient(conn net.Conn) *GobClient {
	return &GobClient{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		dec:     gob.NewDecoder(conn),
		pending: map[uint64]*future.Future{},
	}
}

// Close tears the connection down, failing unresolved pipelined
// futures.
func (c *GobClient) Close() error {
	err := c.conn.Close()
	c.failPending(errors.New("remote: connection closed"))
	return err
}

func (c *GobClient) failPending(err error) {
	for id, f := range c.pending {
		delete(c.pending, id)
		f.Fail(err)
	}
}

func (c *GobClient) resolveAsync(r msg) {
	f, ok := c.pending[r.Id]
	if !ok {
		return // duplicate or unknown id; nothing to resolve
	}
	delete(c.pending, r.Id)
	if r.Err != "" {
		f.Fail(fmt.Errorf("remote: server: %s", r.Err))
		return
	}
	f.Complete(r.Val)
}

func (c *GobClient) recvMsg() (r msg, async bool, err error) {
	if err := c.dec.Decode(&r); err != nil {
		e := fmt.Errorf("remote: recv: %w", err)
		c.failPending(e)
		return msg{}, false, e
	}
	if r.Kind == kindAsyncReply {
		c.resolveAsync(r)
		return r, true, nil
	}
	return r, false, nil
}

func (c *GobClient) recv() (msg, error) {
	for {
		r, async, err := c.recvMsg()
		if err != nil {
			return msg{}, err
		}
		if !async {
			return r, nil
		}
	}
}

func (c *GobClient) roundTrip(m msg) (int64, error) {
	if err := c.enc.Encode(m); err != nil {
		return 0, fmt.Errorf("remote: send: %w", err)
	}
	r, err := c.recv()
	if err != nil {
		return 0, err
	}
	if r.Kind != kindReply {
		return 0, fmt.Errorf("remote: unexpected reply kind %d", r.Kind)
	}
	if r.Err != "" {
		return 0, fmt.Errorf("remote: server: %s", r.Err)
	}
	return r.Val, nil
}

// Await drives the connection until f resolves and returns its value.
func (c *GobClient) Await(f *future.Future) (int64, error) {
	for {
		if v, err, ok := f.TryGet(); ok {
			if err != nil {
				return 0, err
			}
			return v.(int64), nil
		}
		r, async, err := c.recvMsg()
		if err != nil {
			return 0, err
		}
		if !async {
			return 0, fmt.Errorf("remote: unexpected reply kind %d while awaiting", r.Kind)
		}
	}
}

// Flush drives the connection until every pipelined future resolves.
func (c *GobClient) Flush() error {
	for len(c.pending) > 0 {
		r, async, err := c.recvMsg()
		if err != nil {
			return err
		}
		if !async {
			return fmt.Errorf("remote: unexpected reply kind %d while flushing", r.Kind)
		}
	}
	return nil
}

// GobSession is a gob-era separate block in progress.
type GobSession struct {
	c *GobClient
}

// Separate opens a separate block on the named remote handler, runs
// body, and ends the block. BEGIN and END each pay a round-trip — the
// cost shape the framed protocol eliminates.
func (c *GobClient) Separate(handler string, body func(s *GobSession) error) error {
	if _, err := c.roundTrip(msg{Kind: kindBegin, Handler: handler}); err != nil {
		return err
	}
	s := &GobSession{c: c}
	bodyErr := body(s)
	if _, err := c.roundTrip(msg{Kind: kindEnd}); err != nil {
		if bodyErr != nil {
			return bodyErr
		}
		return err
	}
	return bodyErr
}

// Call logs an asynchronous call of the named procedure.
func (s *GobSession) Call(fn string, args ...int64) error {
	if err := s.c.enc.Encode(msg{Kind: kindCall, Fn: fn, Args: args}); err != nil {
		return fmt.Errorf("remote: send: %w", err)
	}
	return nil
}

// Query runs the named procedure synchronously and returns its result.
func (s *GobSession) Query(fn string, args ...int64) (int64, error) {
	return s.c.roundTrip(msg{Kind: kindQuery, Fn: fn, Args: args})
}

// QueryAsync logs the named procedure as a pipelined query.
func (s *GobSession) QueryAsync(fn string, args ...int64) (*future.Future, error) {
	c := s.c
	c.nextID++
	id := c.nextID
	f := future.New()
	c.pending[id] = f
	if err := c.enc.Encode(msg{Kind: kindQueryAsync, Id: id, Fn: fn, Args: args}); err != nil {
		delete(c.pending, id)
		return nil, fmt.Errorf("remote: send: %w", err)
	}
	return f, nil
}

// Sync brings the remote handler to a quiescent point on this block's
// private queue.
func (s *GobSession) Sync() error {
	_, err := s.c.roundTrip(msg{Kind: kindSync})
	return err
}

// GobServer is the gob-era server: each accepted connection serves one
// remote client on its own goroutine.
type GobServer struct {
	rt *core.Runtime

	mu       sync.Mutex
	handlers map[string]*core.Handler
	procs    map[string]map[string]Proc
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

// NewGobServer creates a gob-era server for rt's handlers.
func NewGobServer(rt *core.Runtime) *GobServer {
	return &GobServer{
		rt:       rt,
		handlers: map[string]*core.Handler{},
		procs:    map[string]map[string]Proc{},
		conns:    map[net.Conn]struct{}{},
	}
}

// Expose registers a handler under a public name with its callable
// procedures.
func (s *GobServer) Expose(name string, h *core.Handler, procs map[string]Proc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[name] = h
	s.procs[name] = procs
}

// Serve accepts connections on ln until Close. It blocks; run it in a
// goroutine.
func (s *GobServer) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting, closes live connections, and waits for the
// per-connection goroutines.
func (s *GobServer) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// serveConn replays one remote client's gob protocol onto local
// sessions.
func (s *GobServer) serveConn(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	client := s.rt.NewClient()

	var sess *core.Session
	var procs map[string]Proc

	out := queue.NewMPSC[msg](0)
	var wdead atomic.Bool
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		for {
			m, ok := out.Dequeue()
			if !ok {
				return // connection torn down and queue drained
			}
			if wdead.Load() {
				continue // drop: the write side already failed
			}
			if enc.Encode(m) != nil {
				wdead.Store(true)
				conn.Close() // unwedge the read loop too
			}
		}
	}()
	defer func() {
		out.Close()
		wwg.Wait()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	send := func(m msg) bool {
		return !wdead.Load() && out.TryEnqueue(m)
	}

	reply := func(v int64, err error) bool {
		m := msg{Kind: kindReply, Val: v}
		if err != nil {
			m.Err = err.Error()
		}
		return send(m)
	}

	var release func()
	for {
		var m msg
		if err := dec.Decode(&m); err != nil {
			if release != nil {
				release() // client vanished mid-block: close it out
			}
			return
		}
		switch m.Kind {
		case kindBegin:
			if sess != nil {
				reply(0, fmt.Errorf("remote: BEGIN inside an open block"))
				return
			}
			s.mu.Lock()
			h := s.handlers[m.Handler]
			procs = s.procs[m.Handler]
			s.mu.Unlock()
			if h == nil {
				if !reply(0, fmt.Errorf("remote: unknown handler %q", m.Handler)) {
					return
				}
				continue
			}
			sess, release = client.Reserve(h)
			if !reply(0, nil) {
				release()
				return
			}
		case kindEnd:
			if sess == nil {
				reply(0, fmt.Errorf("remote: END without a block"))
				return
			}
			release()
			sess, release = nil, nil
			if !reply(0, nil) {
				return
			}
		case kindCall:
			if sess == nil {
				reply(0, fmt.Errorf("remote: CALL outside a block"))
				return
			}
			proc, ok := procs[m.Fn]
			if !ok {
				reply(0, fmt.Errorf("remote: unknown procedure %q", m.Fn))
				return
			}
			args := m.Args
			sess.Call(func() { proc(args) })
		case kindQuery:
			if sess == nil {
				reply(0, fmt.Errorf("remote: QUERY outside a block"))
				return
			}
			proc, ok := procs[m.Fn]
			if !ok {
				if !reply(0, fmt.Errorf("remote: unknown procedure %q", m.Fn)) {
					return
				}
				continue
			}
			args := m.Args
			v, err := gobSafeQuery(client, sess, proc, args)
			if !reply(v, err) {
				return
			}
		case kindQueryAsync:
			if sess == nil {
				send(msg{Kind: kindAsyncReply, Id: m.Id, Err: "remote: QUERYASYNC outside a block"})
				return
			}
			proc, ok := procs[m.Fn]
			if !ok {
				if !send(msg{Kind: kindAsyncReply, Id: m.Id, Err: fmt.Sprintf("remote: unknown procedure %q", m.Fn)}) {
					return
				}
				continue
			}
			id, args := m.Id, m.Args
			fut := sess.CallFuture(func() any { return proc(args) })
			fut.OnComplete(func(v any, err error) {
				rm := msg{Kind: kindAsyncReply, Id: id}
				if err != nil {
					rm.Err = err.Error()
				} else {
					rm.Val = v.(int64)
				}
				send(rm)
			})
		case kindSync:
			if sess == nil {
				reply(0, fmt.Errorf("remote: SYNC outside a block"))
				return
			}
			err := gobSafeSync(sess)
			if !reply(0, err) {
				return
			}
		default:
			reply(0, fmt.Errorf("remote: unexpected message kind %d", m.Kind))
			return
		}
	}
}

// gobSafeQuery runs a synchronous query through the futures path,
// blocking this connection's goroutine until it resolves.
func gobSafeQuery(c *core.Client, s *core.Session, proc Proc, args []int64) (int64, error) {
	v, err := c.Await(s.CallFuture(func() any { return proc(args) }))
	if err != nil {
		return 0, fmt.Errorf("remote: %v", err)
	}
	return v.(int64), nil
}

// gobSafeSync is Session.Sync with panic conversion.
func gobSafeSync(s *core.Session) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("remote: %v", r)
		}
	}()
	s.Sync()
	return nil
}
