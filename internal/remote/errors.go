package remote

import "errors"

// Terminal errors of the remote transport. Every failure a caller can
// observe wraps exactly one of these (match with errors.Is), so the
// reason a connection or channel died — a deliberate Close, a peer
// that broke the protocol, a client that overran its credit window, a
// peer that went silent past the idle deadline — stays distinguishable
// all the way into failed futures and returned errors.
//
// All four are terminal for the mux or channel that reports them:
// retrying the same operation on the same session cannot succeed. The
// retryable failures are the ones that do NOT wrap these sentinels —
// per-request server errors (an unknown procedure, a poisoned block)
// arrive as ordinary ERROR replies and leave the channel usable; a
// caller may open a new block or a new connection and try again.
var (
	// ErrClosed is the terminal error of a deliberately closed Mux or
	// RemoteSession: the local side hung up.
	ErrClosed = errors.New("remote: connection closed")

	// ErrProtocol marks a stream the framing layer cannot trust
	// anymore: an unknown frame kind, a malformed or absurd CREDIT
	// grant, a BEGIN inside an open block. Connection-fatal, because
	// there is no way to resynchronize with a diverged peer.
	ErrProtocol = errors.New("remote: protocol violation")

	// ErrCreditOverrun reports a peer that ignored the credit window
	// and flooded requests past its advertised allowance. The server
	// quarantines the offending channel (its handler is released, its
	// requests are dropped) but keeps the connection and its other
	// channels alive.
	ErrCreditOverrun = errors.New("remote: credit window overrun")

	// ErrPeerStalled reports a peer that stopped sending mid-activity:
	// the server's idle deadline (Server.IdleTimeout) expired while the
	// connection still had open blocks or admitted requests.
	ErrPeerStalled = errors.New("remote: peer stalled past the idle deadline")
)
