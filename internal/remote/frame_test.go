package remote

import (
	"bytes"
	"io"
	"testing"
)

// frameEq compares decoded frames, treating nil and empty args (and
// payloads) alike.
func frameEq(a, b *frame) bool {
	if a.kind != b.kind || a.ch != b.ch || a.id != b.id || a.val != b.val || a.name != b.name {
		return false
	}
	if len(a.args) != len(b.args) {
		return false
	}
	for i := range a.args {
		if a.args[i] != b.args[i] {
			return false
		}
	}
	return bytes.Equal(a.data, b.data)
}

var roundTripFrames = []frame{
	{kind: fBegin, ch: 1, name: "counter"},
	{kind: fBegin, ch: 0xFFFFFFFF, name: ""},
	{kind: fEnd, ch: 7},
	{kind: fClose, ch: 42},
	{kind: fCall, ch: 3, name: "add", args: []int64{1, -1, 1 << 62, -(1 << 62)}},
	{kind: fCall, ch: 3, name: "tick"},
	{kind: fQuery, ch: 9, id: 123456789, name: "get", args: []int64{0}},
	{kind: fSync, ch: 2, id: 1},
	{kind: fReply, ch: 5, id: 99, val: -987654321},
	{kind: fError, ch: 5, id: 0, name: `unknown handler "nonesuch"`},
	{kind: fCredit, ch: 6, id: 960},
	{kind: fCredit, ch: 0, id: 1},
	{kind: fCallB, ch: 4, name: "put", data: []byte("hello payload")},
	{kind: fCallB, ch: 4, name: "put"},
	{kind: fQueryB, ch: 8, id: 77, name: "echo", data: bytes.Repeat([]byte{0xAB}, 300)},
	{kind: fQueryB, ch: 8, id: 78, name: "echo", data: []byte{}},
	{kind: fReplyB, ch: 8, id: 77, data: bytes.Repeat([]byte{0xCD}, 300)},
	{kind: fReplyB, ch: 8, id: 79},
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	for i := range roundTripFrames {
		buf = appendFrame(buf, &roundTripFrames[i])
	}
	fr := newFrameReader(bytes.NewReader(buf))
	defer fr.close()
	var got frame
	for i := range roundTripFrames {
		if err := fr.readFrame(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !frameEq(&got, &roundTripFrames[i]) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, roundTripFrames[i])
		}
		Release(got.data)
	}
	if err := fr.readFrame(&got); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

// A stream cut inside a frame must yield ErrUnexpectedEOF (not a clean
// EOF), for every truncation point.
func TestFrameTruncation(t *testing.T) {
	full := appendFrame(nil, &frame{kind: fQuery, ch: 300, id: 7, name: "add", args: []int64{1, 2, 3}})
	for cut := 1; cut < len(full); cut++ {
		fr := newFrameReader(bytes.NewReader(full[:cut]))
		var f frame
		if err := fr.readFrame(&f); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// A bytes frame cut anywhere — in the header, the name, the length
// prefix, or the payload itself — must fail with ErrUnexpectedEOF and
// leave the slab pool balanced: the decoder releases a partially read
// payload, and closing the reader drops its allocator hold.
func TestBytesFrameTruncation(t *testing.T) {
	inUse0, _ := slabStats()
	full := appendFrame(nil, &frame{kind: fQueryB, ch: 9, id: 5, name: "echo", data: bytes.Repeat([]byte{0x5A}, 200)})
	for cut := 1; cut < len(full); cut++ {
		fr := newFrameReader(bytes.NewReader(full[:cut]))
		var f frame
		if err := fr.readFrame(&f); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
		fr.close()
	}
	if inUse, _ := slabStats(); inUse != inUse0 {
		t.Fatalf("slabs in use drifted %d -> %d across truncated decodes", inUse0, inUse)
	}
}

func TestFrameLimits(t *testing.T) {
	// A declared string length beyond the cap must be rejected before
	// any allocation of that size.
	buf := []byte{byte(fBegin), 1}
	buf = append(buf, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // uvarint ~34GB
	fr := newFrameReader(bytes.NewReader(buf))
	var f frame
	if err := fr.readFrame(&f); err == nil {
		t.Fatal("oversized string accepted")
	}

	buf = []byte{byte(fCall), 1, 1, 'x'}
	buf = append(buf, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // oversized argc
	fr = newFrameReader(bytes.NewReader(buf))
	if err := fr.readFrame(&f); err == nil {
		t.Fatal("oversized arg count accepted")
	}
}

// The codec hot path — encode into a reused batch buffer, decode into
// a reused frame with interned names — must not allocate per message.
func TestFrameCodecZeroAlloc(t *testing.T) {
	msg := frame{kind: fQuery, ch: 17, id: 12345, name: "add", args: []int64{1, -2, 3}}
	enc := appendFrame(make([]byte, 0, 64), &msg)
	br := bytes.NewReader(enc)
	fr := newFrameReader(br)
	var got frame
	// Warm up: populate the intern table and grow scratch buffers.
	if err := fr.readFrame(&got); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = appendFrame(buf[:0], &msg)
		br.Reset(buf)
		fr.r.Reset(br)
		if err := fr.readFrame(&got); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("codec round-trip allocates %.1f allocs/op, want 0", allocs)
	}
	if !frameEq(&got, &msg) {
		t.Fatalf("got %+v, want %+v", got, msg)
	}
}

func BenchmarkFrameCodec(b *testing.B) {
	msg := frame{kind: fQuery, ch: 17, id: 12345, name: "add", args: []int64{1, -2, 3}}
	enc := appendFrame(nil, &msg)
	br := bytes.NewReader(enc)
	fr := newFrameReader(br)
	var got frame
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendFrame(buf[:0], &msg)
		br.Reset(buf)
		fr.r.Reset(br)
		if err := fr.readFrame(&got); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzFrameDecode feeds arbitrary bytes to the decoder: it must never
// panic or allocate unboundedly, and everything it does decode must
// re-encode and re-decode to the same frame (the codec is canonical on
// its own output).
func FuzzFrameDecode(f *testing.F) {
	for i := range roundTripFrames {
		f.Add(appendFrame(nil, &roundTripFrames[i]))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := newFrameReader(bytes.NewReader(data))
		defer fr.close()
		var got frame
		for i := 0; i < 1024; i++ {
			if err := fr.readFrame(&got); err != nil {
				return
			}
			reenc := appendFrame(nil, &got)
			fr2 := newFrameReader(bytes.NewReader(reenc))
			var again frame
			err := fr2.readFrame(&again)
			if err == nil {
				if !frameEq(&got, &again) {
					t.Fatalf("round-trip mismatch: %+v vs %+v", got, again)
				}
				if n := len(again.data); n != 0 && cap(again.data) != n {
					t.Fatalf("decoded payload cap %d > len %d: slab neighbors reachable", cap(again.data), n)
				}
			}
			Release(again.data)
			fr2.close()
			if err != nil {
				t.Fatalf("re-decode of %+v failed: %v", got, err)
			}
			Release(got.data)
		}
	})
}
