package remote

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/future"
)

// queryAsyncPending opens a block on mux and leaves one pipelined query
// in flight, returning its future. The peer never replies, so the
// future resolves only through the mux's teardown path under test.
func queryAsyncPending(t *testing.T, m *Mux) *future.Future {
	t.Helper()
	rs := m.NewSession()
	var fut *future.Future
	err := rs.Separate("h", func(s *Session) error {
		f, err := s.QueryAsync("q", 1)
		fut = f
		return err
	})
	if err != nil {
		t.Fatalf("opening the pending block: %v", err)
	}
	return fut
}

// TestTerminalErrorsDistinguishable pins the typed-error contract: the
// three ways a mux dies — deliberate Close, the peer vanishing, and a
// protocol violation — fail pending futures with errors a caller can
// tell apart with errors.Is, so retry policy can key on which sentinel
// (if any) the failure wraps.
func TestTerminalErrorsDistinguishable(t *testing.T) {
	t.Run("close", func(t *testing.T) {
		cli, peer := net.Pipe()
		go io.Copy(io.Discard, peer) //nolint:errcheck // drain until the mux closes
		m := NewMux(cli)
		fut := queryAsyncPending(t, m)
		m.Close()
		_, err := fut.Get()
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("after Close: %v does not wrap ErrClosed", err)
		}
		if !errors.Is(m.Err(), ErrClosed) {
			t.Fatalf("Err() after Close: %v", m.Err())
		}
	})

	t.Run("peer vanishes", func(t *testing.T) {
		cli, peer := net.Pipe()
		go io.Copy(io.Discard, peer) //nolint:errcheck
		m := NewMux(cli)
		fut := queryAsyncPending(t, m)
		peer.Close() // the connection dies underneath the mux
		_, err := fut.Get()
		if err == nil {
			t.Fatal("future resolved cleanly on a dead connection")
		}
		if errors.Is(err, ErrClosed) {
			t.Fatalf("involuntary teardown %v must not look like a clean Close", err)
		}
		if errors.Is(err, ErrProtocol) {
			t.Fatalf("connection loss %v must not look like a protocol violation", err)
		}
		m.Close()
	})

	t.Run("protocol violation", func(t *testing.T) {
		cli, peer := net.Pipe()
		go io.Copy(io.Discard, peer) //nolint:errcheck
		m := NewMux(cli)
		fut := queryAsyncPending(t, m)
		// A server has no business sending BEGIN; the mux must diagnose
		// a violation, not a lost connection.
		if _, err := peer.Write(appendFrame(nil, &frame{kind: fBegin, ch: 1, name: "x"})); err != nil {
			t.Fatal(err)
		}
		_, err := fut.Get()
		if !errors.Is(err, ErrProtocol) {
			t.Fatalf("after a bogus frame: %v does not wrap ErrProtocol", err)
		}
		if errors.Is(err, ErrClosed) {
			t.Fatalf("violation %v must not look like a clean Close", err)
		}
		m.Close()
	})
}

// adaptiveTestConn builds the minimal serverConn the window controller
// needs: a writer over a drained pipe and a stats-only Server. The
// returned channel starts at the adaptive initial window, uncongested.
func adaptiveTestConn(t *testing.T) (*serverConn, *svChan, func()) {
	t.Helper()
	cli, peer := net.Pipe()
	go io.Copy(io.Discard, peer) //nolint:errcheck
	cw := newConnWriter(cli, 0, nil)
	c := &serverConn{s: &Server{}, cw: cw, chans: map[uint32]*svChan{}, adaptive: true}
	sc := &svChan{target: adaptiveInitWindow, lastAdjust: time.Now(), lastParked: cw.parkedTotal()}
	sc.limit.Store(adaptiveInitWindow)
	return c, sc, func() {
		cw.close()
		cli.Close()
		peer.Close()
	}
}

// TestAdaptiveWindowGrows pins the additive-increase path and the
// grow-by-granting mechanism: with a hot drain-rate estimate and no
// congestion, one controller run raises the target by one step and the
// returned grant carries the extra allowance on top of the batch's
// completions, so limit tracks exactly what the client was extended.
func TestAdaptiveWindowGrows(t *testing.T) {
	c, sc, done := adaptiveTestConn(t)
	defer done()
	sc.ewmaRate = 1e6 // far above any target: the ceiling never binds
	sc.lastAdjust = time.Now().Add(-time.Second)

	const n = 64 // completions in this grant batch
	grant := c.adjustWindow(sc, 1, n)
	wantTarget := int64(adaptiveInitWindow + adaptiveAIStep)
	if sc.target != wantTarget {
		t.Fatalf("target = %d, want %d", sc.target, wantTarget)
	}
	if got := sc.limit.Load(); got != wantTarget {
		t.Fatalf("limit = %d, want %d", got, wantTarget)
	}
	if want := int64(n + adaptiveAIStep); grant != want {
		t.Fatalf("grant = %d, want %d (completions + growth)", grant, want)
	}
	if got := c.s.windowResizes.Load(); got != 1 {
		t.Fatalf("windowResizes = %d, want 1", got)
	}
}

// TestAdaptiveWindowBacksOff pins the multiplicative-decrease path and
// the shrink-by-withholding mechanism: congestion (the writer's parked
// counter advanced since the last decision) halves the target, and the
// shrink is realized by withholding replenishment — never more than the
// batch carries — so the enforced limit only ever drops by credits that
// were genuinely not re-extended.
func TestAdaptiveWindowBacksOff(t *testing.T) {
	c, sc, done := adaptiveTestConn(t)
	defer done()
	sc.lastParked = sc.lastParked + 7 // pretend frames parked since last run

	const n = 16 // fewer completions than the halving wants to withhold
	grant := c.adjustWindow(sc, 1, n)
	wantTarget := int64(adaptiveInitWindow / 2)
	if sc.target != wantTarget {
		t.Fatalf("target = %d, want %d", sc.target, wantTarget)
	}
	if grant != 0 {
		t.Fatalf("grant = %d, want 0 (whole batch withheld)", grant)
	}
	// The limit fell by exactly the withheld batch, not to the target:
	// the remaining shrink happens over future batches.
	if got, want := sc.limit.Load(), int64(adaptiveInitWindow-n); got != want {
		t.Fatalf("limit = %d, want %d", got, want)
	}

	// Sustained congestion drives the target to the floor and no lower;
	// the limit follows batch by batch and grants never go negative.
	for i := 0; i < 64; i++ {
		sc.lastParked += 3
		if g := c.adjustWindow(sc, 1, n); g < 0 {
			t.Fatalf("negative grant %d on iteration %d", g, i)
		}
	}
	if sc.target != adaptiveMinWindow {
		t.Fatalf("floored target = %d, want %d", sc.target, int64(adaptiveMinWindow))
	}
	if got := sc.limit.Load(); got < adaptiveMinWindow {
		t.Fatalf("limit %d fell below the enforceable floor %d", got, int64(adaptiveMinWindow))
	}
}

// TestAdaptiveWindowCapped pins the growth ceiling: however hot the
// drain rate, the target saturates at the legacy fixed window, so the
// adaptive deferred-reply bound never exceeds the static one.
func TestAdaptiveWindowCapped(t *testing.T) {
	c, sc, done := adaptiveTestConn(t)
	defer done()
	for i := 0; i < 64; i++ {
		sc.ewmaRate = 1e9 // keep the estimate hot across the decay of each run
		sc.lastAdjust = time.Now().Add(-time.Second)
		c.adjustWindow(sc, 1, 64)
	}
	if sc.target != adaptiveMaxWindow {
		t.Fatalf("saturated target = %d, want %d", sc.target, int64(adaptiveMaxWindow))
	}
	if got := sc.limit.Load(); got != adaptiveMaxWindow {
		t.Fatalf("saturated limit = %d, want %d", got, int64(adaptiveMaxWindow))
	}
}

// TestIdleTimeoutTearsDownStalledPeer pins the idle-deadline policy: a
// peer that goes silent with a block open is torn down (counted as a
// peer stall) and its handler freed, while a quiet connection with no
// open work is never timed out and still answers when it finally
// speaks.
func TestIdleTimeoutTearsDownStalledPeer(t *testing.T) {
	rt := core.New(core.ConfigAll)
	srv := NewServer(rt)
	srv.IdleTimeout = 100 * time.Millisecond
	srv.Expose("calc", rt.NewHandler("calc"), map[string]Proc{
		"add": func(a []int64) int64 { return a[0] + a[1] },
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		srv.Close()
		rt.Shutdown()
	}()

	// The quiet connection first: dialed, then silent. No open work, so
	// the deadline must never fire for it.
	quiet, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer quiet.Close()

	// The stalled peer: opens a block, then goes silent mid-activity.
	stalled, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if _, err := stalled.Write(appendFrame(nil, &frame{kind: fBegin, ch: 1, name: "calc"})); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().PeerStalls == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle deadline never fired for the stalled peer")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The teardown reaches the wire: past the server's initial CREDIT
	// advertisement, the stalled peer's stream ends. io.Copy returns nil
	// on EOF; only a still-open connection trips the read deadline.
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, err := io.Copy(io.Discard, stalled); err != nil && !errors.Is(err, net.ErrClosed) {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatal("stalled peer's connection still alive after the idle deadline")
		}
		// A reset instead of a clean FIN is also a teardown.
	}

	// Several idle windows later, the quiet connection is still welcome.
	time.Sleep(3 * srv.IdleTimeout)
	var buf []byte
	buf = appendFrame(buf, &frame{kind: fBegin, ch: 1, name: "calc"})
	buf = appendFrame(buf, &frame{kind: fQuery, ch: 1, id: 1, name: "add", args: []int64{2, 3}})
	buf = appendFrame(buf, &frame{kind: fEnd, ch: 1})
	if _, err := quiet.Write(buf); err != nil {
		t.Fatalf("quiet connection was torn down: %v", err)
	}
	quiet.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	fr := newFrameReader(quiet)
	var f frame
	for {
		if err := fr.readFrame(&f); err != nil {
			t.Fatalf("quiet connection reply: %v", err)
		}
		if f.kind == fCredit {
			continue
		}
		break
	}
	if f.kind != fReply || f.id != 1 || f.val != 5 {
		t.Fatalf("quiet connection: expected REPLY id=1 val=5, got kind=0x%02x id=%d val=%d", byte(f.kind), f.id, f.val)
	}
	if got := srv.Stats().PeerStalls; got != 1 {
		t.Fatalf("PeerStalls = %d, want 1", got)
	}
}
