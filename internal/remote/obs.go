package remote

import "scoopqs/internal/obs"

// The remote transport's observability instruments (overhead contract
// in internal/obs): the batch writer's flush sizes and producer
// stalls, the credit window's admission waits, and the client-observed
// round-trip of pipelined requests.
var (
	// flushHist is the byte size of each conn.Write batch.
	flushHist = obs.Default().Hist("remote.flush_bytes")
	// writerStallHist is how long a blocking producer sat parked at the
	// writer's byte budget.
	writerStallHist = obs.Default().Hist("remote.writer_stall_ns")
	// creditWaitHist is how long an admission sat parked at a zero
	// credit window.
	creditWaitHist = obs.Default().Hist("remote.credit_wait_ns")
	// roundTripHist is a pipelined request's send→reply latency,
	// observed at the client as its future resolves.
	roundTripHist = obs.Default().Hist("remote.roundtrip_ns")
	// windowHist is the adaptive credit-window target after each
	// resize: its spread shows how far the controller moved windows
	// from their initial size over a run.
	windowHist = obs.Default().Hist("remote.window")
	// payloadHist is the size of each decoded bytes payload
	// (fCallB/fQueryB/fReplyB), observed on both ends of the wire.
	payloadHist = obs.Default().Hist("remote.bytes_payload")
)
