package remote

import (
	"io"
	"sync"

	"scoopqs/internal/future"
	"scoopqs/internal/obs"
)

// writerHighWater is the batch size the writer's buffers are pre-grown
// to; batches above it shrink back after the write so one burst cannot
// pin memory forever.
const writerHighWater = 64 << 10

// defaultWriteBudget is the soft byte cap on the pending batch. Below
// it, producers append and move on (the PR 4 fast path); at or above
// it, blocking producers park until the writer drains below low water
// and non-blocking producers defer their frame to the parked queue.
// The low-water mark is half the budget.
const defaultWriteBudget = 256 << 10

// writerStats is a snapshot of a connWriter's counters.
type writerStats struct {
	Frames  uint64 // frames accepted (appended or parked)
	Flushes uint64 // conn.Write calls
	Dropped uint64 // frames accepted but never delivered (write failure or kill)
	Stalls  uint64 // blocking producers parked at the byte budget
	Parked  uint64 // frames deferred past the budget (total)
	Bytes   uint64 // payload bytes of bytes-kind frames encoded onto batches

	MaxBatchBytes   uint64 // peak pending-batch size
	MaxParkedFrames uint64 // peak length of the parked queue
}

// fold accumulates o into s: counters add, peaks take the max. Used to
// aggregate the writers of many connections (Server.Stats).
func (s *writerStats) fold(o writerStats) {
	s.Frames += o.Frames
	s.Flushes += o.Flushes
	s.Dropped += o.Dropped
	s.Stalls += o.Stalls
	s.Parked += o.Parked
	s.Bytes += o.Bytes
	if o.MaxBatchBytes > s.MaxBatchBytes {
		s.MaxBatchBytes = o.MaxBatchBytes
	}
	if o.MaxParkedFrames > s.MaxParkedFrames {
		s.MaxParkedFrames = o.MaxParkedFrames
	}
}

// connWriter is the single writer goroutine of a connection: every
// producer — a logical client logging requests, a handler's completion
// callback shipping a reply — hands its frame to an in-memory batch
// under a short mutex, and the goroutine flushes the batch with one
// conn.Write.
//
// The flush policy is adaptive batching: an idle connection flushes a
// frame as soon as it arrives; while a write is in flight, new frames
// accumulate into the next batch, so under pipelined load the batch
// grows to match the connection's drain rate and the protocol pays one
// syscall per drain instead of one per message.
//
// The batch is bounded by a soft byte budget. A stalled peer leaves
// the goroutine wedged in conn.Write; without the budget the batch
// would grow with everything produced meanwhile (PR 4 behavior, sized
// only by the clients' pipelining depth). At the budget the two
// producer paths diverge:
//
//   - frame (blocking, client side): the producer parks on a drain
//     future completed when the batch empties below low water, then
//     retries. Producers never touch the socket; they wait on memory
//     pressure only.
//   - frameDeferred (non-blocking, server side): the frame is moved to
//     a per-channel parked queue and appended once the batch drains.
//     The caller — a completion callback on the reader or a pool
//     worker — never blocks, which the demux path requires. Parked
//     frames are bounded by the credit window (one reply per admitted
//     request), not by this writer.
//
// Deferred frames drain with cross-channel fairness: each channel
// keeps its own FIFO (so a channel's reply still precedes its credit
// replenishment) and the refill round-robins one frame per channel, so
// one hot channel's backlog cannot starve its siblings' replies at the
// byte budget.
type connWriter struct {
	w     io.Writer
	onErr func(error) // called once, off the lock, when a write fails

	budget   int // soft byte cap on buf; 0 = unbounded
	lowWater int // drain threshold waking stalled producers

	mu        sync.Mutex
	cond      *sync.Cond
	buf       []byte // batch being filled by producers
	bufN      int    // frames in buf
	spare     []byte // previous batch, being written / ready for reuse
	parked    map[uint32]*chanQueue
	parkedLen int      // deferred frames across all channels
	rr        []uint32 // round-robin rotation of channels with queued frames
	rrHead    int      // consumed prefix of rr (amortized-O(1) pops)
	drain     *future.Future
	closed    bool
	err       error
	st        writerStats

	done chan struct{}
}

// chanQueue is one channel's deferred-frame FIFO plus its park/drain
// sequence counters. The counters outlive the frames — an entry stays
// in the map until the writer dies — because coalescing decisions
// (the server's block errors) compare them after the queue emptied.
type chanQueue struct {
	frames  []frame
	head    int    // consumed prefix of frames (amortized-O(1) pops)
	issued  uint64 // frames ever parked on this channel
	drained uint64 // of those, how many left the queue (flushed or discarded)
}

// len is the channel's queued-frame count.
func (q *chanQueue) len() int { return len(q.frames) - q.head }

// newConnWriter starts a writer for w with the given byte budget
// (0 selects defaultWriteBudget, negative disables the budget — the
// unbounded PR 4 behavior, kept for baseline measurement only). onErr,
// if non-nil, runs exactly once when a write fails (typically to tear
// the connection down and unwedge the reader); it must not call back
// into the writer's blocking paths.
func newConnWriter(w io.Writer, budget int, onErr func(error)) *connWriter {
	switch {
	case budget == 0:
		budget = defaultWriteBudget
	case budget < 0:
		budget = 0 // unbounded
	}
	cw := &connWriter{
		w:        w,
		onErr:    onErr,
		budget:   budget,
		lowWater: budget / 2,
		buf:      make([]byte, 0, writerHighWater),
		spare:    make([]byte, 0, writerHighWater),
		parked:   map[uint32]*chanQueue{},
		done:     make(chan struct{}),
	}
	cw.cond = sync.NewCond(&cw.mu)
	go cw.loop()
	return cw
}

// overBudgetLocked reports whether the pending batch is at the soft
// cap; cw.mu must be held.
func (cw *connWriter) overBudgetLocked() bool {
	return cw.budget > 0 && len(cw.buf) >= cw.budget
}

// drainedParked reports how many of ch's deferred frames have left its
// parked queue (flushed onto a batch, or discarded by teardown).
// Compared against the sequence number frameDeferred returns, it tells
// a producer whether an earlier deferred frame is still queued — which
// is what lets optional frames (the server's coalesced block errors)
// be skipped only while a predecessor genuinely still covers them.
func (cw *connWriter) drainedParked(ch uint32) uint64 {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if q := cw.parked[ch]; q != nil {
		return q.drained
	}
	return 0
}

// parkedTotal is the cumulative count of frames ever deferred past the
// budget — a monotone congestion signal: the count advancing between
// two reads means the write path pushed past its byte budget in the
// interval. The adaptive window controller keys its backoff on it.
func (cw *connWriter) parkedTotal() uint64 {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.st.Parked
}

// appendLocked encodes f onto the current batch; cw.mu must be held.
// It reports whether this append was the empty->non-empty transition
// (the only one that needs to signal the writer goroutine).
func (cw *connWriter) appendLocked(f *frame) (wasEmpty bool) {
	wasEmpty = len(cw.buf) == 0
	cw.buf = appendFrame(cw.buf, f)
	cw.bufN++
	cw.st.Frames++
	cw.st.Bytes += uint64(len(f.data)) // nonzero only for bytes-kind frames
	if n := uint64(len(cw.buf)); n > cw.st.MaxBatchBytes {
		cw.st.MaxBatchBytes = n
	}
	return wasEmpty
}

// drainFutureLocked returns the future completed when the batch next
// drains below low water (or the writer dies); cw.mu must be held.
func (cw *connWriter) drainFutureLocked() *future.Future {
	if cw.drain == nil {
		cw.drain = future.New()
	}
	return cw.drain
}

// takeDrainersLocked claims the drain future for completion if the
// batch is below low water (always claims when the writer is closed);
// cw.mu must be held. The caller completes the result off the lock.
func (cw *connWriter) takeDrainersLocked() *future.Future {
	if cw.drain == nil {
		return nil
	}
	if !cw.closed && cw.budget > 0 && len(cw.buf) > cw.lowWater {
		return nil
	}
	d := cw.drain
	cw.drain = nil
	return d
}

// frame encodes f onto the current batch, parking the caller while the
// batch is at the byte budget (the stall completes when the writer
// drains below low water). It reports false when the writer is dead
// (write failure, or close/kill) — the frame is dropped then, which is
// correct for both ends: a dead connection delivers nothing either
// way. This is the client-side producer path; it may block, so it must
// never run on a reader goroutine or inside a completion callback.
func (cw *connWriter) frame(f *frame) bool {
	for {
		cw.mu.Lock()
		if cw.closed {
			cw.mu.Unlock()
			return false
		}
		if !cw.overBudgetLocked() {
			wasEmpty := cw.appendLocked(f)
			cw.mu.Unlock()
			if wasEmpty {
				// Only the empty->non-empty transition needs a signal:
				// a non-empty batch means the writer is mid-write and
				// will loop.
				cw.cond.Signal()
			}
			return true
		}
		cw.st.Stalls++
		d := cw.drainFutureLocked()
		cw.mu.Unlock()
		var t0 int64
		if obs.Enabled() {
			t0 = obs.Now()
		}
		d.Get() //nolint:errcheck // wake-and-recheck; state is re-read
		if t0 != 0 {
			dur := obs.Now() - t0
			writerStallHist.Observe(dur)
			obs.Emit(obs.KindWriterStall, 0, dur)
		}
	}
}

// frameDeferred encodes f onto the current batch if the budget allows,
// and otherwise parks a detached copy to be appended when the batch
// drains — it never blocks, making it the only legal producer path on
// the server's reader-driven demux side (completion callbacks run on
// the reader or a pool worker). ok is false when the writer is dead.
// parkedSeq is zero when the frame went straight onto the batch, else
// the frame's 1-based position in its channel's deferred sequence: the
// frame has left the queue once drainedParked(f.ch) reaches it. FIFO
// order within a channel is preserved (once a channel has anything
// parked, its later frames park behind it — and once anything at all
// is parked, every later frame parks, keeping the backlog honest);
// across channels the refill round-robins.
func (cw *connWriter) frameDeferred(f *frame) (ok bool, parkedSeq uint64) {
	cw.mu.Lock()
	if cw.closed {
		cw.mu.Unlock()
		return false, 0
	}
	if cw.parkedLen == 0 && !cw.overBudgetLocked() {
		wasEmpty := cw.appendLocked(f)
		cw.mu.Unlock()
		if wasEmpty {
			cw.cond.Signal()
		}
		return true, 0
	}
	// Park a copy that owns its fields: the caller may reuse f (and
	// its args) — or Release f's slab payload — the moment we return.
	pf := *f
	if len(f.args) > 0 {
		pf.args = append([]int64(nil), f.args...)
	}
	if len(f.data) > 0 {
		pf.data = append([]byte(nil), f.data...)
	}
	q := cw.parked[f.ch]
	if q == nil {
		q = &chanQueue{}
		cw.parked[f.ch] = q
	}
	if q.len() == 0 {
		cw.rr = append(cw.rr, f.ch)
	}
	q.frames = append(q.frames, pf)
	q.issued++
	cw.parkedLen++
	cw.st.Frames++
	cw.st.Parked++
	if n := uint64(cw.parkedLen); n > cw.st.MaxParkedFrames {
		cw.st.MaxParkedFrames = n
	}
	seq := q.issued
	cw.mu.Unlock()
	// No signal needed: parked is only reachable with a full (hence
	// non-empty) batch, so the writer goroutine is already committed
	// to another swap and will pick parked frames up there.
	return true, seq
}

// refillLocked moves parked frames onto the batch up to the budget,
// one frame per channel per rotation so every backlogged channel makes
// progress; cw.mu must be held. Pops advance head cursors instead of
// shifting slices, so draining a large deferred backlog stays linear;
// consumed prefixes are compacted away once they dominate their array.
func (cw *connWriter) refillLocked() {
	for cw.parkedLen > 0 && !cw.overBudgetLocked() {
		ch := cw.rr[cw.rrHead]
		cw.rr[cw.rrHead] = 0
		cw.rrHead++
		q := cw.parked[ch]
		cw.appendLocked(&q.frames[q.head])
		cw.st.Frames-- // appendLocked recounts; the frame was counted when parked
		q.frames[q.head] = frame{}
		q.head++
		q.drained++
		cw.parkedLen--
		if q.head == len(q.frames) {
			q.frames = q.frames[:0]
			q.head = 0
			if cap(q.frames) > 4096 {
				q.frames = nil // one burst must not pin the queue's array
			}
		} else {
			cw.rr = append(cw.rr, ch) // still backlogged: back of the rotation
		}
	}
	switch {
	case cw.rrHead == len(cw.rr):
		cw.rr = cw.rr[:0]
		cw.rrHead = 0
	case cw.rrHead > 64 && cw.rrHead > len(cw.rr)/2:
		n := copy(cw.rr, cw.rr[cw.rrHead:])
		cw.rr = cw.rr[:n]
		cw.rrHead = 0
	}
}

// discardParkedLocked empties every channel's deferred queue (counting
// the frames drained), for the teardown paths; cw.mu must be held. The
// queue entries themselves stay in the map: their counters answer
// late drainedParked calls.
func (cw *connWriter) discardParkedLocked() {
	for _, q := range cw.parked {
		q.drained += uint64(q.len())
		q.frames, q.head = nil, 0
	}
	cw.parkedLen = 0
	cw.rr, cw.rrHead = nil, 0
}

// stats returns a snapshot of the writer's counters.
func (cw *connWriter) stats() writerStats {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.st
}

func (cw *connWriter) loop() {
	defer close(cw.done)
	cw.mu.Lock()
	for {
		for len(cw.buf) == 0 && cw.parkedLen == 0 && !cw.closed {
			cw.cond.Wait()
		}
		if len(cw.buf) == 0 && cw.parkedLen == 0 {
			cw.mu.Unlock()
			return // closed and drained
		}
		cw.refillLocked() // close() may race a park past the last swap
		batch, batchN := cw.buf, cw.bufN
		cw.buf, cw.spare = cw.spare[:0], batch
		cw.bufN = 0
		cw.st.Flushes++
		// The batch just emptied: pull deferred frames in (budget
		// permitting) and release stalled producers if below low water.
		cw.refillLocked()
		d := cw.takeDrainersLocked()
		cw.mu.Unlock()
		if d != nil {
			d.Complete(nil)
		}
		if obs.Enabled() {
			flushHist.Observe(int64(len(batch)))
			obs.Emit(obs.KindFlush, 0, int64(len(batch)))
		}

		_, err := cw.w.Write(batch)
		if cap(batch) > writerHighWater {
			// One burst grew the batch; let it go rather than pinning
			// the high-water mark in both buffers forever.
			batch = make([]byte, 0, writerHighWater)
		}
		if err != nil {
			cw.mu.Lock()
			if cw.err == nil {
				cw.err = err
			}
			cw.closed = true
			// Everything accepted but undelivered is lost: the batch
			// that failed mid-write, frames appended since it started,
			// and the parked queues. Count them — frame()/frameDeferred
			// already told their producers "accepted".
			cw.st.Dropped += uint64(batchN + cw.bufN + cw.parkedLen)
			cw.discardParkedLocked()
			cw.buf = cw.buf[:0]
			cw.bufN = 0
			cw.spare = batch[:0]
			d := cw.takeDrainersLocked()
			cw.mu.Unlock()
			if d != nil {
				d.Complete(nil) // stalled producers recheck and see closed
			}
			if cw.onErr != nil {
				cw.onErr(err)
			}
			cw.mu.Lock()
			continue // observe closed+empty and exit
		}

		cw.mu.Lock()
		cw.spare = batch[:0]
	}
}

// close flushes any queued frames and stops the writer, waiting for the
// goroutine to exit. Producers stalled at the budget are released (and
// see the writer as dead). Idempotent; safe to call concurrently with
// kill.
func (cw *connWriter) close() {
	cw.mu.Lock()
	cw.closed = true
	d := cw.takeDrainersLocked()
	cw.mu.Unlock()
	if d != nil {
		d.Complete(nil)
	}
	cw.cond.Signal()
	<-cw.done
}

// kill stops the writer without flushing or waiting, dropping queued
// and parked frames (counted in Dropped) and releasing stalled
// producers. It is the teardown used on a dead connection — including
// from onErr-adjacent paths where waiting for the goroutine would
// deadlock.
func (cw *connWriter) kill() {
	cw.mu.Lock()
	cw.closed = true
	cw.st.Dropped += uint64(cw.bufN + cw.parkedLen)
	cw.discardParkedLocked()
	cw.buf = cw.buf[:0]
	cw.bufN = 0
	d := cw.takeDrainersLocked()
	cw.mu.Unlock()
	if d != nil {
		d.Complete(nil)
	}
	cw.cond.Signal()
}
