package remote

import (
	"io"
	"sync"
)

// writerHighWater is the batch size the writer's buffers are pre-grown
// to; batches above it shrink back after the write so one burst cannot
// pin memory forever.
const writerHighWater = 64 << 10

// connWriter is the single writer goroutine of a connection: every
// producer — a logical client logging requests, a handler's completion
// callback shipping a reply — appends its encoded frame to an
// in-memory batch under a short mutex, and the goroutine flushes the
// batch with one conn.Write.
//
// The flush policy is adaptive batching: an idle connection flushes a
// frame as soon as it arrives; while a write is in flight, new frames
// accumulate into the next batch, so under pipelined load the batch
// grows to match the connection's drain rate and the protocol pays one
// syscall per drain instead of one per message. Producers never touch
// the socket and never block on it — the critical section is a memcpy.
type connWriter struct {
	w     io.Writer
	onErr func(error) // called once, off the lock, when a write fails

	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte // batch being filled by producers
	spare   []byte // previous batch, being written / ready for reuse
	closed  bool
	err     error
	frames  uint64 // frames appended (stats)
	flushes uint64 // conn.Write calls (stats)

	done chan struct{}
}

// newConnWriter starts a writer for w. onErr, if non-nil, runs exactly
// once when a write fails (typically to close the connection and
// unwedge the reader); it must not call back into the writer.
func newConnWriter(w io.Writer, onErr func(error)) *connWriter {
	cw := &connWriter{
		w:     w,
		onErr: onErr,
		buf:   make([]byte, 0, writerHighWater),
		spare: make([]byte, 0, writerHighWater),
		done:  make(chan struct{}),
	}
	cw.cond = sync.NewCond(&cw.mu)
	go cw.loop()
	return cw
}

// frame encodes f onto the current batch. It reports false when the
// writer is dead (write failure, or close/kill) — the frame is dropped
// then, which is correct for both ends: a dead connection delivers
// nothing either way.
func (cw *connWriter) frame(f *frame) bool {
	cw.mu.Lock()
	if cw.closed {
		cw.mu.Unlock()
		return false
	}
	wasEmpty := len(cw.buf) == 0
	cw.buf = appendFrame(cw.buf, f)
	cw.frames++
	cw.mu.Unlock()
	if wasEmpty {
		// Only the empty->non-empty transition needs a signal: a
		// non-empty batch means the writer is mid-write and will loop.
		cw.cond.Signal()
	}
	return true
}

// stats returns the frames-appended and flush (conn.Write) counts.
func (cw *connWriter) stats() (frames, flushes uint64) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.frames, cw.flushes
}

func (cw *connWriter) loop() {
	defer close(cw.done)
	cw.mu.Lock()
	for {
		for len(cw.buf) == 0 && !cw.closed {
			cw.cond.Wait()
		}
		if len(cw.buf) == 0 {
			cw.mu.Unlock()
			return // closed and drained
		}
		batch := cw.buf
		cw.buf, cw.spare = cw.spare[:0], batch
		cw.flushes++
		cw.mu.Unlock()

		_, err := cw.w.Write(batch)
		if cap(batch) > writerHighWater {
			// One burst grew the batch; let it go rather than pinning
			// the high-water mark in both buffers forever.
			batch = make([]byte, 0, writerHighWater)
		}
		if err != nil {
			cw.mu.Lock()
			if cw.err == nil {
				cw.err = err
			}
			cw.closed = true
			cw.buf = cw.buf[:0] // queued frames can never be delivered
			cw.spare = batch[:0]
			cw.mu.Unlock()
			if cw.onErr != nil {
				cw.onErr(err)
			}
			cw.mu.Lock()
			continue // observe closed+empty and exit
		}

		cw.mu.Lock()
		cw.spare = batch[:0]
	}
}

// close flushes any queued frames and stops the writer, waiting for the
// goroutine to exit. Idempotent; safe to call concurrently with kill.
func (cw *connWriter) close() {
	cw.mu.Lock()
	cw.closed = true
	cw.mu.Unlock()
	cw.cond.Signal()
	<-cw.done
}

// kill stops the writer without flushing or waiting. It is the teardown
// used on a dead connection — including from onErr-adjacent paths where
// waiting for the goroutine would deadlock.
func (cw *connWriter) kill() {
	cw.mu.Lock()
	cw.closed = true
	cw.buf = cw.buf[:0]
	cw.mu.Unlock()
	cw.cond.Signal()
}
