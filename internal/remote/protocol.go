// Package remote implements the paper's §7 future-work item: private
// queues with sockets as the underlying implementation. A Server
// exposes named procedures bound to the handlers of a local SCOOP/Qs
// runtime; a remote client dials in and gets the same separate-block
// vocabulary — asynchronous calls, synchronous queries, sync
// handshakes — with the private queue realized as a TCP (or any
// net.Conn) stream plus a gob-encoded message protocol.
//
// The mapping is direct: one connection carries one client's traffic;
// a BEGIN/END message pair brackets each separate block (the
// reservation and the END marker of the separate rule); CALL messages
// are fire-and-forget like Session.Call; QUERY and SYNC messages wait
// for a reply like Session queries. The server end replays each
// operation onto a real core.Session, so all ordering and
// no-interleaving guarantees carry over to remote clients — the
// queue-of-queues does not care that the producer is a socket reader.
//
// QUERYASYNC messages pipeline: the client tags each with an id and
// keeps sending without waiting; the server logs the query through the
// non-blocking futures path (core.Session.CallFuture) and ships an
// ASYNCREPLY whenever the handler resolves it, so many queries ride a
// single connection round-trip. The client resolves each reply into
// the future it handed out for that id; ids let replies arrive in any
// order relative to the synchronous reply stream.
//
// Values are int64 (the protocol's wire currency); richer payloads are
// an encoding concern, not a semantics one.
package remote

// msgKind enumerates protocol messages.
type msgKind uint8

const (
	// client -> server
	kindBegin      msgKind = iota // reserve: open a separate block on Handler
	kindEnd                       // end the block (the END marker)
	kindCall                      // asynchronous call, no reply
	kindQuery                     // synchronous query, reply carries the value
	kindSync                      // sync handshake, empty reply
	kindQueryAsync                // pipelined query; ASYNCREPLY carries Id+value
	// server -> client
	kindReply      // query/sync reply (synchronous, in request order)
	kindAsyncReply // resolution of a pipelined query, matched by Id
)

// msg is the wire message. Fields are used per kind; gob omits zero
// values so the envelope stays small.
type msg struct {
	Kind    msgKind
	Handler string  // kindBegin: target handler name
	Fn      string  // kindCall/kindQuery/kindQueryAsync: procedure name
	Args    []int64 // kindCall/kindQuery/kindQueryAsync
	Id      uint64  // kindQueryAsync/kindAsyncReply: pipeline tag
	Val     int64   // kindReply/kindAsyncReply
	Err     string  // kindReply/kindAsyncReply: non-empty on failure
}
