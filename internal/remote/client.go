package remote

import (
	"fmt"
	"net"
	"sync"

	"scoopqs/internal/future"
	"scoopqs/internal/obs"
)

// bootstrapCredits is the request window a channel starts with before
// the server's advertisement arrives: enough to pipeline the opening
// burst, small enough that a misbehaving server cannot be flooded. The
// server knows this constant too — its initial CREDIT grant tops the
// channel up to the full window (see Server.Window).
const bootstrapCredits = 64

// Client-side hard limits on CREDIT grants, in the same spirit as the
// decoder's: a malformed or malicious stream must not be able to wedge
// or unbound the client. A single grant beyond maxCreditGrant (or a
// zero grant) is a protocol violation; the accumulated balance is
// clamped at maxCreditBalance so no grant sequence can overflow the
// admission arithmetic.
const (
	maxCreditGrant   = 1 << 32
	maxCreditBalance = 1 << 40
)

// RemoteSession is one logical client multiplexed onto a Mux: its
// private queues ride a shared connection instead of an in-process
// lock-free queue, identified on the wire by a channel id. Like a
// core.Client it must not be used concurrently — but any number of
// RemoteSessions on the same Mux may run in parallel, which is where
// one connection's concurrency comes from.
//
// Requests are fire-and-forget writes into the connection's batching
// writer: BEGIN and END pay no round-trip, queries are pipelined and
// resolve futures as the reader demultiplexes replies. Errors surface
// at synchronization points (Query, Sync, Await, Flush), matching the
// local runtime's separate-block semantics.
//
// Fire-and-forget is bounded, not unlimited: each channel holds a
// credit window (advertised and replenished by the server with CREDIT
// frames), and every request-logging operation — Call, QueryAsync,
// Query, Sync — consumes one credit, parking the caller when the
// window is exhausted until completions replenish it. The connection's
// shared writer additionally parks producers (including BEGIN/END)
// while its pending batch is at the byte budget. Both parks end in
// bounded memory on a healthy connection and in a fast failure on a
// dead one; because they can block, remote operations must not be
// called from a Future.OnComplete callback (which runs on the mux's
// reader goroutine).
type RemoteSession struct {
	m       *Mux
	ch      uint32
	ownsMux bool // Dial-created: Close tears down the whole Mux

	// nextID is owned by the session's goroutine; pending is shared
	// with the mux reader, hence the mutex.
	nextID  uint64
	mu      sync.Mutex
	pending map[uint64]*future.Future
	closed  bool
	term    error // terminal failure recorded by the teardown sweep

	// credits is the channel's remaining request window; creditWait is
	// the future an admission parks on at zero, completed by the mux
	// reader when a CREDIT grant arrives (or failed by the teardown).
	credits    int64
	creditWait *future.Future

	// blockErr holds a block-level failure the server reported with an
	// id-0 ERROR frame (unknown handler, reservation after shutdown,
	// unknown procedure in a CALL) — the cases a fire-and-forget block
	// with no query of its own would otherwise never learn about. It is
	// sticky (first failure wins) until a synchronization point — the
	// end of a Separate, or Flush — takes it.
	blockErr error
}

// Client is the single-session view of a connection: Dial and
// NewClient return a RemoteSession that owns its Mux, so one-client
// uses read exactly as they did before multiplexing.
type Client = RemoteSession

// Dial connects to a Server with a dedicated connection carrying one
// logical client. For many logical clients on one connection, use
// DialMux + Mux.NewSession.
func Dial(network, addr string) (*Client, error) {
	m, err := DialMux(network, addr)
	if err != nil {
		return nil, err
	}
	rs := m.NewSession()
	rs.ownsMux = true
	return rs, nil
}

// NewClient wraps an established connection in a single-session Mux.
func NewClient(conn net.Conn) *Client {
	rs := NewMux(conn).NewSession()
	rs.ownsMux = true
	return rs
}

// Close retires the logical client. A session that owns its Mux (Dial,
// NewClient) tears the connection down; a session handed out by
// Mux.NewSession sends CLOSE — the server ENDs any open block and
// frees the channel's state — and leaves the connection to its other
// sessions. Unresolved pipelined futures are failed either way.
func (rs *RemoteSession) Close() error {
	if rs.ownsMux {
		return rs.m.Close()
	}
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil
	}
	rs.closed = true
	w := rs.creditWait
	rs.creditWait = nil
	rs.mu.Unlock()
	if w != nil {
		w.Fail(ErrClosed) // release admissions parked on this channel
	}
	rs.m.drop(rs.ch)
	rs.m.w.frame(&frame{kind: fClose, ch: rs.ch})
	rs.failPending(ErrClosed)
	return nil
}

// termErr returns the session's terminal error: the one recorded by a
// teardown sweep, else the mux's, else the generic closed error.
func (rs *RemoteSession) termErr() error {
	rs.mu.Lock()
	term := rs.term
	rs.mu.Unlock()
	if term != nil {
		return term
	}
	if err := rs.m.Err(); err != nil {
		return err
	}
	return ErrClosed
}

// send writes one frame through the mux's batching writer, parking at
// the writer's byte budget until it drains.
func (rs *RemoteSession) send(f *frame) error {
	if !rs.m.w.frame(f) {
		return fmt.Errorf("remote: send: %w", rs.termErr())
	}
	return nil
}

// acquireCredit consumes one unit of the channel's request window,
// parking the caller at zero until the server's CREDIT replenishment
// arrives. It fails fast — without parking — on a closed session or a
// dead mux.
func (rs *RemoteSession) acquireCredit() error {
	for {
		rs.mu.Lock()
		if rs.closed || rs.term != nil {
			rs.mu.Unlock()
			return fmt.Errorf("remote: send: %w", rs.termErr())
		}
		if rs.credits > 0 {
			rs.credits--
			rs.mu.Unlock()
			return nil
		}
		if rs.creditWait == nil {
			rs.creditWait = future.New()
		}
		w := rs.creditWait
		rs.mu.Unlock()
		rs.m.creditStalls.Add(1)
		var t0 int64
		if obs.Enabled() {
			t0 = obs.Now()
		}
		w.Get() //nolint:errcheck // wake-and-recheck; state is re-read
		if t0 != 0 {
			d := obs.Now() - t0
			creditWaitHist.Observe(d)
			obs.Emit(obs.KindCreditWait, uint64(rs.ch), d)
		}
	}
}

// addCredits applies a CREDIT grant and releases parked admissions.
// Called by the mux reader, which has already validated the grant; the
// balance is clamped so even a flood of maximal grants stays within
// the admission arithmetic.
func (rs *RemoteSession) addCredits(n int64) {
	rs.mu.Lock()
	rs.credits += n
	if rs.credits > maxCreditBalance {
		rs.credits = maxCreditBalance
	}
	w := rs.creditWait
	rs.creditWait = nil
	rs.mu.Unlock()
	if w != nil {
		w.Complete(nil)
	}
}

// register allocates a pipeline id and parks f under it until the
// reader resolves it.
func (rs *RemoteSession) register(f *future.Future) (uint64, error) {
	rs.nextID++
	id := rs.nextID
	rs.mu.Lock()
	if rs.closed || rs.term != nil {
		rs.mu.Unlock()
		return 0, rs.termErr()
	}
	rs.pending[id] = f
	rs.mu.Unlock()
	return id, nil
}

// sealRegistration re-checks the mux after a successful send: if the
// connection died between registering and sending, the teardown may
// have swept the pending map before our entry was visible, so we fail
// the future ourselves (Future.Fail is first-wins, a double fail is
// harmless).
func (rs *RemoteSession) sealRegistration(id uint64, f *future.Future) error {
	if err := rs.m.Err(); err != nil {
		rs.mu.Lock()
		delete(rs.pending, id)
		rs.mu.Unlock()
		f.Fail(err)
		return err
	}
	return nil
}

// unregister abandons a pending id after a failed send.
func (rs *RemoteSession) unregister(id uint64) {
	rs.mu.Lock()
	delete(rs.pending, id)
	rs.mu.Unlock()
}

// resolve matches a REPLY/ERROR/REPLYB frame to its future — or, for
// an id-0 ERROR, records the block-level failure. Called by the mux
// reader. A bytes reply carries a slab payload whose ownership moves
// into the future; on every path where no awaiter can take it —
// duplicate id, or a future the teardown already failed — the payload
// is released here so the slab is not pinned by a value nobody holds.
func (rs *RemoteSession) resolve(f *frame) {
	if f.kind == fError && f.id == 0 {
		rs.setBlockErr(fmt.Errorf("remote: server: %s", f.name))
		return
	}
	rs.mu.Lock()
	fut := rs.pending[f.id]
	delete(rs.pending, f.id)
	rs.mu.Unlock()
	if fut == nil {
		Release(f.data) // duplicate or unknown id; nothing to resolve
		return
	}
	switch f.kind {
	case fError:
		fut.Fail(fmt.Errorf("remote: server: %s", f.name))
	case fReplyB:
		if !fut.Complete(f.data) {
			Release(f.data) // lost to a teardown Fail; nobody will Await it
		}
	default:
		fut.Complete(f.val)
	}
}

// setBlockErr records a block-level failure; the first one wins.
func (rs *RemoteSession) setBlockErr(err error) {
	rs.mu.Lock()
	if rs.blockErr == nil {
		rs.blockErr = err
	}
	rs.mu.Unlock()
}

// takeBlockErr consumes the recorded block-level failure, if any.
func (rs *RemoteSession) takeBlockErr() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	err := rs.blockErr
	rs.blockErr = nil
	return err
}

// failPending marks the session terminally failed, resolves every
// outstanding pipelined future with err, and releases admissions
// parked on credits; called when the channel or connection dies.
// Recording term under the same lock that guards creditWait closes the
// race where an admission parks just after the teardown's sweep — the
// admission re-checks term before parking.
func (rs *RemoteSession) failPending(err error) {
	rs.mu.Lock()
	if rs.term == nil {
		rs.term = err
	}
	pend := rs.pending
	rs.pending = map[uint64]*future.Future{}
	w := rs.creditWait
	rs.creditWait = nil
	rs.mu.Unlock()
	if w != nil {
		w.Fail(err)
	}
	for _, f := range pend {
		f.Fail(err)
	}
}

// Await blocks until f resolves and returns its value. Replies arrive
// on the mux's reader goroutine, so awaiting never drives the
// connection — and a dead connection fails every pending future, so
// Await cannot hang on one.
func (rs *RemoteSession) Await(f *future.Future) (int64, error) {
	v, err := f.Get()
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}

// AwaitBytes blocks until a bytes query's future resolves and returns
// its payload. The payload is slab-owned: the caller must Release it
// when done (future.Of[[]byte] works on the same future for callers
// who prefer the typed view — the ownership contract is identical).
func (rs *RemoteSession) AwaitBytes(f *future.Future) ([]byte, error) {
	v, err := f.Get()
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	return v.([]byte), nil
}

// Flush blocks until every pipelined future handed out so far has
// resolved. Per-query failures stay in their futures (collect them
// with Await); Flush itself reports a dead connection or a recorded
// block-level failure (see Separate).
func (rs *RemoteSession) Flush() error {
	rs.mu.Lock()
	fs := make([]*future.Future, 0, len(rs.pending))
	for _, f := range rs.pending {
		fs = append(fs, f)
	}
	rs.mu.Unlock()
	for _, f := range fs {
		f.Get() //nolint:errcheck // per-query errors surface via Await
	}
	if err := rs.takeBlockErr(); err != nil {
		return err
	}
	return rs.m.Err()
}

// Session is a remote separate block in progress.
type Session struct {
	rs *RemoteSession
}

// Separate opens a separate block on the named remote handler, runs
// body, and ends the block — all without a round-trip: BEGIN and END
// are fire-and-forget frames, so a whole block can sit in one batched
// write. Errors from the body's operations are returned; block-level
// failures (an unknown handler, a runtime shutting down) surface at
// the body's first synchronization point. A block with no
// synchronization point of its own still learns of such a failure —
// the server reports it with an id-0 ERROR frame — but asynchronously:
// at this Separate's return if the report has already arrived, else at
// the channel's next synchronization point (Flush, or a later block).
// Pipelined futures may resolve after the block ends; Await or Flush
// them on the session.
func (rs *RemoteSession) Separate(handler string, body func(s *Session) error) error {
	if err := rs.send(&frame{kind: fBegin, ch: rs.ch, name: handler}); err != nil {
		return err
	}
	bodyErr := body(&Session{rs: rs})
	endErr := rs.send(&frame{kind: fEnd, ch: rs.ch})
	// Consume any block-level failure: either it belongs to this block
	// (fire-and-forget BEGIN/CALL misfire) or to an earlier one whose
	// report raced past its Separate — stale either way once returned.
	blockErr := rs.takeBlockErr()
	if bodyErr != nil {
		return bodyErr
	}
	if blockErr != nil {
		return blockErr
	}
	return endErr
}

// Call logs an asynchronous call of the named procedure. Like a local
// Session.Call it does not wait for execution — and unlike the gob-era
// client it does not even pay a direct socket write: the frame joins
// the connection's current batch. Admission is credit-bounded: at a
// zero window Call parks until the server's replenishment arrives, so
// a block cannot outrun the server by more than the window.
func (s *Session) Call(fn string, args ...int64) error {
	if err := s.rs.acquireCredit(); err != nil {
		return err
	}
	return s.rs.send(&frame{kind: fCall, ch: s.rs.ch, name: fn, args: args})
}

// QueryAsync logs the named procedure as a pipelined query: it returns
// a future and pays no round-trip. Like Query it observes every
// previously logged call of this block; each of the connection's
// sessions can keep up to its credit window of requests in flight at
// once — past that, QueryAsync parks until completions replenish the
// window. Resolve the future with Await (or Flush); its error mirrors
// Query's.
func (s *Session) QueryAsync(fn string, args ...int64) (*future.Future, error) {
	return s.rs.pipelined(&frame{kind: fQuery, ch: s.rs.ch, name: fn, args: args})
}

// pipelined acquires a request credit, registers a fresh future,
// stamps its id onto fr, sends the frame, and seals the registration
// against the teardown race. It is the one implementation of the
// reply-expected send path (QueryAsync, Sync). A failed send does not
// return the consumed credit: the frame never reached the server, so
// no replenishment will come — but every such failure is terminal for
// the channel anyway.
func (rs *RemoteSession) pipelined(fr *frame) (*future.Future, error) {
	if err := rs.acquireCredit(); err != nil {
		return nil, err
	}
	var t0 int64
	if obs.Enabled() {
		t0 = obs.Now()
	}
	f := future.New()
	id, err := rs.register(f)
	if err != nil {
		return nil, err
	}
	fr.id = id
	if err := rs.send(fr); err != nil {
		rs.unregister(id)
		return nil, err
	}
	if err := rs.sealRegistration(id, f); err != nil {
		return nil, err
	}
	rs.m.roundTrips.Add(1)
	if t0 != 0 {
		// Round-trip measured send→resolve; the callback runs on the mux
		// reader and must stay non-blocking, which Observe/Emit are. The
		// closure is only allocated while recording.
		ch := rs.ch
		f.OnComplete(func(any, error) {
			d := obs.Now() - t0
			roundTripHist.Observe(d)
			obs.Emit(obs.KindRoundTrip, uint64(ch), d)
		})
	}
	return f, nil
}

// CallBytes logs an asynchronous call of the named bytes procedure
// (see Server.ExposeBytes) with an opaque payload. The payload is
// encoded into the connection's batch before CallBytes returns, so the
// caller keeps ownership of p and may reuse it immediately — nothing
// is retained and nothing beyond the wire copy is allocated. Admission
// is credit-bounded exactly like Call.
func (s *Session) CallBytes(fn string, p []byte) error {
	if err := s.rs.acquireCredit(); err != nil {
		return err
	}
	return s.rs.send(&frame{kind: fCallB, ch: s.rs.ch, name: fn, data: p})
}

// QueryBytesAsync logs the named bytes procedure as a pipelined query:
// the returned future resolves to the reply payload ([]byte). Like
// QueryAsync it pays no round-trip and observes every previously
// logged call of this block. The request payload p is encoded before
// return (the caller keeps ownership); the reply payload is slab-owned
// and must be Released by whoever takes it from the future (AwaitBytes
// or future.Of[[]byte]).
func (s *Session) QueryBytesAsync(fn string, p []byte) (*future.Future, error) {
	return s.rs.pipelined(&frame{kind: fQueryB, ch: s.rs.ch, name: fn, data: p})
}

// QueryBytes runs the named bytes procedure synchronously: one write,
// one demultiplexed reply, the reply payload returned. The caller must
// Release the returned payload.
func (s *Session) QueryBytes(fn string, p []byte) ([]byte, error) {
	f, err := s.QueryBytesAsync(fn, p)
	if err != nil {
		return nil, err
	}
	return s.rs.AwaitBytes(f)
}

// Query runs the named procedure synchronously and returns its result;
// it observes every previously logged call of this block. On the wire
// it is QueryAsync + Await: one write, one demultiplexed reply.
func (s *Session) Query(fn string, args ...int64) (int64, error) {
	f, err := s.QueryAsync(fn, args...)
	if err != nil {
		return 0, err
	}
	return s.rs.Await(f)
}

// Sync brings the remote handler to a quiescent point on this block's
// private queue: when Sync returns, every previously logged call has
// executed. It is a SYNC frame resolved through the server's
// non-blocking barrier (core.Session.SyncFuture).
func (s *Session) Sync() error {
	f, err := s.rs.pipelined(&frame{kind: fSync, ch: s.rs.ch})
	if err != nil {
		return err
	}
	_, err = s.rs.Await(f)
	return err
}
