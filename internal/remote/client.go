package remote

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"

	"scoopqs/internal/future"
)

// Client is a remote SCOOP client: its private queues ride on a
// network connection instead of an in-process lock-free queue. One
// Client maps to one connection and, like core.Client, must not be
// used concurrently.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	// Pipelining state: futures handed out by QueryAsync, keyed by the
	// id their reply will carry. Replies are consumed whenever the
	// client reads the connection — inside a synchronous round-trip or
	// an explicit Await/Flush.
	nextID  uint64
	pending map[uint64]*future.Future
}

// Dial connects to a Server.
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		dec:     gob.NewDecoder(conn),
		pending: map[uint64]*future.Future{},
	}
}

// Close tears the connection down. An open separate block on the
// server is closed out when the server notices; unresolved pipelined
// futures are failed so awaiting code does not hang.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.failPending(errors.New("remote: connection closed"))
	return err
}

// failPending resolves every outstanding pipelined future with err;
// called when the connection dies under them.
func (c *Client) failPending(err error) {
	for id, f := range c.pending {
		delete(c.pending, id)
		f.Fail(err)
	}
}

// resolveAsync matches an ASYNCREPLY to its future.
func (c *Client) resolveAsync(r msg) {
	f, ok := c.pending[r.Id]
	if !ok {
		return // duplicate or unknown id; nothing to resolve
	}
	delete(c.pending, r.Id)
	if r.Err != "" {
		f.Fail(fmt.Errorf("remote: server: %s", r.Err))
		return
	}
	f.Complete(r.Val)
}

// recvMsg reads one message. If it is a pipelined reply it is resolved
// into its future and async=true is returned; otherwise the message is
// handed back for synchronous processing. A decode failure fails every
// outstanding pipelined future before returning.
func (c *Client) recvMsg() (r msg, async bool, err error) {
	if err := c.dec.Decode(&r); err != nil {
		e := fmt.Errorf("remote: recv: %w", err)
		c.failPending(e)
		return msg{}, false, e
	}
	if r.Kind == kindAsyncReply {
		c.resolveAsync(r)
		return r, true, nil
	}
	return r, false, nil
}

// recv reads messages, resolving any pipelined replies on the way, and
// returns the first synchronous (non-async) one.
func (c *Client) recv() (msg, error) {
	for {
		r, async, err := c.recvMsg()
		if err != nil {
			return msg{}, err
		}
		if !async {
			return r, nil
		}
	}
}

// roundTrip sends m and waits for its synchronous reply.
func (c *Client) roundTrip(m msg) (int64, error) {
	if err := c.enc.Encode(m); err != nil {
		return 0, fmt.Errorf("remote: send: %w", err)
	}
	r, err := c.recv()
	if err != nil {
		return 0, err
	}
	if r.Kind != kindReply {
		return 0, fmt.Errorf("remote: unexpected reply kind %d", r.Kind)
	}
	if r.Err != "" {
		return 0, fmt.Errorf("remote: server: %s", r.Err)
	}
	return r.Val, nil
}

// Await drives the connection until f resolves and returns its value.
// f must come from this client's QueryAsync (or already be resolved);
// awaiting a foreign future would read the connection forever.
func (c *Client) Await(f *future.Future) (int64, error) {
	for {
		if v, err, ok := f.TryGet(); ok {
			if err != nil {
				return 0, err
			}
			return v.(int64), nil
		}
		r, async, err := c.recvMsg()
		if err != nil {
			return 0, err
		}
		if !async {
			// No synchronous request is outstanding here, so a
			// synchronous reply is protocol corruption.
			return 0, fmt.Errorf("remote: unexpected reply kind %d while awaiting", r.Kind)
		}
	}
}

// Flush drives the connection until every pipelined future handed out
// so far has resolved.
func (c *Client) Flush() error {
	for len(c.pending) > 0 {
		r, async, err := c.recvMsg()
		if err != nil {
			return err
		}
		if !async {
			return fmt.Errorf("remote: unexpected reply kind %d while flushing", r.Kind)
		}
	}
	return nil
}

// Session is a remote separate block in progress.
type Session struct {
	c    *Client
	done bool
}

// Separate opens a separate block on the named remote handler, runs
// body, and ends the block. Errors from the body's operations are
// returned. Pipelined futures may resolve after the block ends; Await
// or Flush them on the client.
func (c *Client) Separate(handler string, body func(s *Session) error) error {
	if _, err := c.roundTrip(msg{Kind: kindBegin, Handler: handler}); err != nil {
		return err
	}
	s := &Session{c: c}
	bodyErr := body(s)
	if s.done {
		return bodyErr
	}
	if _, err := c.roundTrip(msg{Kind: kindEnd}); err != nil {
		if bodyErr != nil {
			return bodyErr
		}
		return err
	}
	return bodyErr
}

// Call logs an asynchronous call of the named procedure. Like a local
// Session.Call it does not wait for execution; unlike one it does pay
// the network write.
func (s *Session) Call(fn string, args ...int64) error {
	if err := s.c.enc.Encode(msg{Kind: kindCall, Fn: fn, Args: args}); err != nil {
		return fmt.Errorf("remote: send: %w", err)
	}
	return nil
}

// Query runs the named procedure synchronously and returns its result;
// it observes every previously logged call of this block.
func (s *Session) Query(fn string, args ...int64) (int64, error) {
	return s.c.roundTrip(msg{Kind: kindQuery, Fn: fn, Args: args})
}

// QueryAsync logs the named procedure as a pipelined query: it returns
// immediately with a future and pays no round-trip. Like Query it
// observes every previously logged call of this block; unlike Query,
// many QueryAsyncs can be in flight on the wire at once, which is
// where a remote separate block's throughput comes from. Resolve the
// future with Client.Await (or Flush); its error mirrors Query's.
func (s *Session) QueryAsync(fn string, args ...int64) (*future.Future, error) {
	c := s.c
	c.nextID++
	id := c.nextID
	f := future.New()
	c.pending[id] = f
	if err := c.enc.Encode(msg{Kind: kindQueryAsync, Id: id, Fn: fn, Args: args}); err != nil {
		delete(c.pending, id)
		return nil, fmt.Errorf("remote: send: %w", err)
	}
	return f, nil
}

// Sync brings the remote handler to a quiescent point on this block's
// private queue.
func (s *Session) Sync() error {
	_, err := s.c.roundTrip(msg{Kind: kindSync})
	return err
}
