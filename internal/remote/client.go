package remote

import (
	"encoding/gob"
	"fmt"
	"net"
)

// Client is a remote SCOOP client: its private queues ride on a
// network connection instead of an in-process lock-free queue. One
// Client maps to one connection and, like core.Client, must not be
// used concurrently.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a Server.
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// Close tears the connection down. An open separate block on the
// server is closed out when the server notices.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends m and waits for the reply.
func (c *Client) roundTrip(m msg) (int64, error) {
	if err := c.enc.Encode(m); err != nil {
		return 0, fmt.Errorf("remote: send: %w", err)
	}
	var r msg
	if err := c.dec.Decode(&r); err != nil {
		return 0, fmt.Errorf("remote: recv: %w", err)
	}
	if r.Kind != kindReply {
		return 0, fmt.Errorf("remote: unexpected reply kind %d", r.Kind)
	}
	if r.Err != "" {
		return 0, fmt.Errorf("remote: server: %s", r.Err)
	}
	return r.Val, nil
}

// Session is a remote separate block in progress.
type Session struct {
	c    *Client
	done bool
}

// Separate opens a separate block on the named remote handler, runs
// body, and ends the block. Errors from the body's operations are
// returned.
func (c *Client) Separate(handler string, body func(s *Session) error) error {
	if _, err := c.roundTrip(msg{Kind: kindBegin, Handler: handler}); err != nil {
		return err
	}
	s := &Session{c: c}
	bodyErr := body(s)
	if s.done {
		return bodyErr
	}
	if _, err := c.roundTrip(msg{Kind: kindEnd}); err != nil {
		if bodyErr != nil {
			return bodyErr
		}
		return err
	}
	return bodyErr
}

// Call logs an asynchronous call of the named procedure. Like a local
// Session.Call it does not wait for execution; unlike one it does pay
// the network write.
func (s *Session) Call(fn string, args ...int64) error {
	if err := s.c.enc.Encode(msg{Kind: kindCall, Fn: fn, Args: args}); err != nil {
		return fmt.Errorf("remote: send: %w", err)
	}
	return nil
}

// Query runs the named procedure synchronously and returns its result;
// it observes every previously logged call of this block.
func (s *Session) Query(fn string, args ...int64) (int64, error) {
	return s.c.roundTrip(msg{Kind: kindQuery, Fn: fn, Args: args})
}

// Sync brings the remote handler to a quiescent point on this block's
// private queue.
func (s *Session) Sync() error {
	_, err := s.c.roundTrip(msg{Kind: kindSync})
	return err
}
