package remote

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"scoopqs/internal/core"
	"scoopqs/internal/queue"
)

// Proc is a named procedure bound to handler-owned state. It runs under
// the handler's exclusion like any other logged call.
type Proc func(args []int64) int64

// Server exposes handlers of a local runtime to remote clients. Each
// accepted connection serves one remote client: its messages are
// replayed onto real sessions, so remote clients get the same ordering
// and no-interleaving guarantees as local ones.
type Server struct {
	rt *core.Runtime

	mu       sync.Mutex
	handlers map[string]*core.Handler
	procs    map[string]map[string]Proc // handler -> proc name -> proc
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

// NewServer creates a server for rt's handlers.
func NewServer(rt *core.Runtime) *Server {
	return &Server{
		rt:       rt,
		handlers: map[string]*core.Handler{},
		procs:    map[string]map[string]Proc{},
		conns:    map[net.Conn]struct{}{},
	}
}

// Expose registers a handler under a public name with its callable
// procedures. Procedures must only touch state owned by h.
func (s *Server) Expose(name string, h *core.Handler, procs map[string]Proc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[name] = h
	s.procs[name] = procs
}

// Serve accepts connections on ln until Close. It blocks; run it in a
// goroutine.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting, closes live connections, and waits for the
// per-connection goroutines.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// serveConn replays one remote client's protocol onto local sessions.
func (s *Server) serveConn(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	client := s.rt.NewClient()

	var sess *core.Session
	var procs map[string]Proc

	// All replies — this goroutine's synchronous ones and the
	// pipelined ones produced by handler-side completion callbacks —
	// are enqueued onto a non-blocking outbound queue drained by a
	// dedicated writer goroutine. Producers therefore never block on
	// the socket: a pool worker resolving a future must not stall
	// behind a slow-reading client (and future.OnComplete callbacks
	// must not block at all). The queue is bounded in practice by the
	// client's own pipelining depth: one reply per in-flight request.
	out := queue.NewMPSC[msg](0)
	var wdead atomic.Bool
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		for {
			m, ok := out.Dequeue()
			if !ok {
				return // connection torn down and queue drained
			}
			if wdead.Load() {
				continue // drop: the write side already failed
			}
			if enc.Encode(m) != nil {
				wdead.Store(true)
				conn.Close() // unwedge the read loop too
			}
		}
	}()
	defer func() {
		out.Close()
		wwg.Wait()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	send := func(m msg) bool {
		return !wdead.Load() && out.TryEnqueue(m)
	}

	reply := func(v int64, err error) bool {
		m := msg{Kind: kindReply, Val: v}
		if err != nil {
			m.Err = err.Error()
		}
		return send(m)
	}

	// We cannot use Client.Separate's callback shape across a message
	// loop, so the block is driven manually with the same primitives:
	// reserve on BEGIN, END marker on END.
	var release func()
	for {
		var m msg
		if err := dec.Decode(&m); err != nil {
			if release != nil {
				release() // client vanished mid-block: close it out
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Connection torn down; nothing else to do.
				_ = err
			}
			return
		}
		switch m.Kind {
		case kindBegin:
			if sess != nil {
				reply(0, fmt.Errorf("remote: BEGIN inside an open block"))
				return
			}
			s.mu.Lock()
			h := s.handlers[m.Handler]
			procs = s.procs[m.Handler]
			s.mu.Unlock()
			if h == nil {
				if !reply(0, fmt.Errorf("remote: unknown handler %q", m.Handler)) {
					return
				}
				continue
			}
			sess, release = client.Reserve(h)
			if !reply(0, nil) {
				release()
				return
			}
		case kindEnd:
			if sess == nil {
				reply(0, fmt.Errorf("remote: END without a block"))
				return
			}
			release()
			sess, release = nil, nil
			if !reply(0, nil) {
				return
			}
		case kindCall:
			if sess == nil {
				reply(0, fmt.Errorf("remote: CALL outside a block"))
				return
			}
			proc, ok := procs[m.Fn]
			if !ok {
				// Surface at the next synchronous point, like a
				// handler-side failure.
				reply(0, fmt.Errorf("remote: unknown procedure %q", m.Fn))
				return
			}
			args := m.Args
			sess.Call(func() { proc(args) })
		case kindQuery:
			if sess == nil {
				reply(0, fmt.Errorf("remote: QUERY outside a block"))
				return
			}
			proc, ok := procs[m.Fn]
			if !ok {
				if !reply(0, fmt.Errorf("remote: unknown procedure %q", m.Fn)) {
					return
				}
				continue
			}
			args := m.Args
			v, err := safeQuery(client, sess, proc, args)
			if !reply(v, err) {
				return
			}
		case kindQueryAsync:
			if sess == nil {
				send(msg{Kind: kindAsyncReply, Id: m.Id, Err: "remote: QUERYASYNC outside a block"})
				return
			}
			proc, ok := procs[m.Fn]
			if !ok {
				if !send(msg{Kind: kindAsyncReply, Id: m.Id, Err: fmt.Sprintf("remote: unknown procedure %q", m.Fn)}) {
					return
				}
				continue
			}
			// The non-blocking path: log the query as a future and keep
			// reading the connection, so any number of queries pipeline
			// on one round-trip. The completion callback runs on the
			// handler (or pool worker) that resolves the query and
			// ships the reply from there.
			id, args := m.Id, m.Args
			fut := sess.CallFuture(func() any { return proc(args) })
			fut.OnComplete(func(v any, err error) {
				rm := msg{Kind: kindAsyncReply, Id: id}
				if err != nil {
					rm.Err = err.Error()
				} else {
					rm.Val = v.(int64)
				}
				send(rm) // failure means the connection died; nothing to do
			})
		case kindSync:
			if sess == nil {
				reply(0, fmt.Errorf("remote: SYNC outside a block"))
				return
			}
			err := safeSync(sess)
			if !reply(0, err) {
				return
			}
		default:
			reply(0, fmt.Errorf("remote: unexpected message kind %d", m.Kind))
			return
		}
	}
}

// safeQuery runs a synchronous query through the futures path: the
// query is logged non-blocking and the connection goroutine awaits its
// resolution — which also makes it shutdown-aware — converting handler
// panics into protocol errors.
func safeQuery(c *core.Client, s *core.Session, proc Proc, args []int64) (int64, error) {
	v, err := c.Await(s.CallFuture(func() any { return proc(args) }))
	if err != nil {
		return 0, fmt.Errorf("remote: %v", err)
	}
	return v.(int64), nil
}

// safeSync is Session.Sync with panic conversion.
func safeSync(s *core.Session) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("remote: %v", r)
		}
	}()
	s.Sync()
	return nil
}
