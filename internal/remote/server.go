package remote

import (
	"fmt"
	"net"
	"sync"

	"scoopqs/internal/core"
)

// Proc is a named procedure bound to handler-owned state. It runs under
// the handler's exclusion like any other logged call.
type Proc func(args []int64) int64

// Server exposes handlers of a local runtime to remote clients over
// the framed, multiplexed protocol. Each accepted connection is served
// by exactly two goroutines regardless of how many logical clients it
// carries: a reader that demultiplexes frames into per-channel
// core.Session state, and a batching writer every reply funnels
// through. Frames are replayed onto real sessions, so remote clients
// get the same ordering and no-interleaving guarantees as local ones.
//
// Nothing on the reader path may block — that is what lets one
// goroutine serve hundreds of channels — so the server requires a
// runtime with QoQ reservations (non-blocking enqueues) and drives
// every query and sync through the non-blocking futures path; replies
// are shipped from completion callbacks.
type Server struct {
	rt *core.Runtime

	mu       sync.Mutex
	handlers map[string]*core.Handler
	procs    map[string]map[string]Proc
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

// NewServer creates a server for rt's handlers. The runtime must use
// QoQ reservations (core.Config.QoQ): the demultiplexer's reader
// serves every channel of a connection and therefore must never block,
// which lock-based reservations cannot guarantee.
func NewServer(rt *core.Runtime) *Server {
	if !rt.Config().QoQ {
		panic("remote: Server requires a QoQ configuration (non-blocking reservations)")
	}
	return &Server{
		rt:       rt,
		handlers: map[string]*core.Handler{},
		procs:    map[string]map[string]Proc{},
		conns:    map[net.Conn]struct{}{},
	}
}

// Expose registers a handler under a public name with its callable
// procedures. Procedures must only touch state owned by h.
func (s *Server) Expose(name string, h *core.Handler, procs map[string]Proc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[name] = h
	s.procs[name] = procs
}

// Serve accepts connections on ln until Close. It blocks; run it in a
// goroutine.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting, closes live connections, and waits for the
// per-connection goroutines. Channels with open blocks are ENDed so
// their handlers are released; queries already logged still execute
// (the runtime drains accepted work), their replies are dropped.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// svChan is the server end of one logical client: a demultiplexed
// channel with its own core.Client (so concurrent channels can hold
// separate private queues on the same handler) and, while a block is
// open, the session/release pair of the reservation.
type svChan struct {
	cl      *core.Client
	sess    *core.Session
	release func()
	procs   map[string]Proc

	// errmsg poisons an open block whose BEGIN or CALL failed (unknown
	// handler/procedure, reservation after shutdown): CALLs are
	// dropped, queries and syncs reply with the error, END clears it.
	// The client sees exactly what a local poisoned session shows — the
	// failure at every synchronization point until the block ends.
	errmsg string
}

// open reports whether the channel is inside a BEGIN..END bracket
// (healthy or poisoned).
func (sc *svChan) open() bool { return sc.sess != nil || sc.errmsg != "" }

// poison marks the open block failed and ships the id-0 block-level
// ERROR, so even a fire-and-forget block (no query or sync of its own)
// learns its work was dropped; queries and syncs logged before the
// block ends keep replying with the same message per id.
func (sc *svChan) poison(cw *connWriter, ch uint32, msg string) {
	sc.errmsg = msg
	reply(cw, ch, 0, 0, fmt.Errorf("%s", msg))
}

// serveConn demultiplexes one connection's frames onto local sessions.
func (s *Server) serveConn(conn net.Conn) {
	// A reply-write failure closes the connection so the reader
	// unwedges; completion callbacks keep feeding the writer harmlessly
	// (dead writers drop frames).
	cw := newConnWriter(conn, func(error) { conn.Close() })
	fr := newFrameReader(conn)
	chans := map[uint32]*svChan{}
	defer func() {
		// Client vanished (or Close tore the conn down): END every open
		// block so no handler stays reserved by a dead channel.
		for _, sc := range chans {
			if sc.release != nil {
				sc.release()
			}
		}
		conn.Close()
		cw.close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	var f frame
	for {
		if err := fr.readFrame(&f); err != nil {
			return // connection torn down (or stream corrupt): one path
		}
		if !s.handleFrame(cw, chans, &f) {
			return // protocol violation: drop the connection
		}
	}
}

// reply ships a REPLY/ERROR for (ch, id) through the batching writer.
func reply(cw *connWriter, ch uint32, id uint64, v int64, err error) {
	f := frame{kind: fReply, ch: ch, id: id, val: v}
	if err != nil {
		f = frame{kind: fError, ch: ch, id: id, name: err.Error()}
	}
	cw.frame(&f) // false means the connection died; nothing to do
}

// handleFrame processes one client frame. It reports false on protocol
// violations, which are connection-fatal: the framing layer has no way
// to resynchronize with a client whose channel state diverged.
func (s *Server) handleFrame(cw *connWriter, chans map[uint32]*svChan, f *frame) bool {
	sc := chans[f.ch]
	switch f.kind {
	case fBegin:
		if sc == nil {
			sc = &svChan{cl: s.rt.NewClient()}
			chans[f.ch] = sc
		}
		if sc.open() {
			return false // BEGIN inside an open block
		}
		s.mu.Lock()
		h := s.handlers[f.name]
		procs := s.procs[f.name]
		s.mu.Unlock()
		if h == nil {
			sc.poison(cw, f.ch, fmt.Sprintf("unknown handler %q", f.name))
			return true
		}
		sess, release, err := sc.cl.TryReserve(h)
		if err != nil {
			sc.poison(cw, f.ch, err.Error())
			return true
		}
		sc.sess, sc.release, sc.procs = sess, release, procs

	case fEnd:
		if sc == nil || !sc.open() {
			return false // END without a block
		}
		if sc.release != nil {
			sc.release()
		}
		sc.sess, sc.release, sc.procs, sc.errmsg = nil, nil, nil, ""

	case fClose:
		// Channel retired, possibly mid-block: END the block so the
		// handler is released, then forget the channel. A frame for
		// this channel id never arrives again (ids are not reused).
		if sc != nil {
			if sc.release != nil {
				sc.release()
			}
			delete(chans, f.ch)
		}

	case fCall:
		if sc == nil || !sc.open() {
			return false // CALL outside a block
		}
		if sc.errmsg != "" {
			return true // poisoned block: drop, like a local poisoned session
		}
		proc, ok := sc.procs[f.name]
		if !ok {
			// Poison the block; the error surfaces at the next
			// synchronization point, like a handler-side failure.
			sc.poison(cw, f.ch, fmt.Sprintf("unknown procedure %q", f.name))
			return true
		}
		args := copyArgs(f.args)
		sc.sess.Call(func() { proc(args) })

	case fQuery:
		if sc == nil || !sc.open() {
			return false // QUERY outside a block
		}
		if sc.errmsg != "" {
			reply(cw, f.ch, f.id, 0, fmt.Errorf("%s", sc.errmsg))
			return true
		}
		proc, ok := sc.procs[f.name]
		if !ok {
			reply(cw, f.ch, f.id, 0, fmt.Errorf("unknown procedure %q", f.name))
			return true
		}
		// The non-blocking path: log the query as a future and keep
		// demultiplexing; the completion callback runs on the handler
		// (or pool worker) that resolves it and ships the reply from
		// there through the shared batching writer.
		ch, id, args := f.ch, f.id, copyArgs(f.args)
		sc.sess.CallFuture(func() any { return proc(args) }).
			OnComplete(func(v any, err error) {
				if err != nil {
					reply(cw, ch, id, 0, err)
					return
				}
				reply(cw, ch, id, v.(int64), nil)
			})

	case fSync:
		if sc == nil || !sc.open() {
			return false // SYNC outside a block
		}
		if sc.errmsg != "" {
			reply(cw, f.ch, f.id, 0, fmt.Errorf("%s", sc.errmsg))
			return true
		}
		ch, id := f.ch, f.id
		sc.sess.SyncFuture().OnComplete(func(_ any, err error) {
			reply(cw, ch, id, 0, err)
		})

	default:
		return false // client sent a server->client (or unknown) kind
	}
	return true
}

// copyArgs detaches an argument vector from the decoder's reused
// buffer: calls and queries execute after the reader has moved on.
func copyArgs(args []int64) []int64 {
	if len(args) == 0 {
		return nil
	}
	out := make([]int64, len(args))
	copy(out, args)
	return out
}
