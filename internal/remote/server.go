package remote

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"scoopqs/internal/core"
)

// defaultCreditWindow is the ceiling of the per-channel request
// window: the maximum number of requests (CALL/QUERY/SYNC) a channel
// may have admitted but not yet completed. It bounds the server's
// deferred replies per channel — and with them the whole write path's
// memory — while staying far above the batching writer's typical flush
// size, so a pipelining client never notices it on a healthy
// connection. In adaptive mode (Server.Window == 0) it caps window
// growth; a fixed Server.Window > 0 is used as-is.
const defaultCreditWindow = 1024

// Proc is a named procedure bound to handler-owned state. It runs under
// the handler's exclusion like any other logged call.
type Proc func(args []int64) int64

// BytesProc is a named procedure taking and returning opaque byte
// payloads, for service messages that do not fit int64 vectors. It
// runs under the handler's exclusion like any other logged call.
//
// Ownership: the request payload is valid (and read-only — small
// payloads may be interned and shared) only for the duration of the
// invocation; the runtime releases its slab afterwards, so a proc that
// wants to keep bytes must copy them. The return value is encoded
// into the reply before that release, so it may alias the request
// (echo, sub-slice) or be freshly allocated; for a CallBytes-invoked
// proc the return is ignored and should be nil.
type BytesProc func(payload []byte) []byte

// Server exposes handlers of a local runtime to remote clients over
// the framed, multiplexed protocol. Each accepted connection is served
// by exactly two goroutines regardless of how many logical clients it
// carries: a reader that demultiplexes frames into per-channel
// core.Session state, and a batching writer every reply funnels
// through. Frames are replayed onto real sessions, so remote clients
// get the same ordering and no-interleaving guarantees as local ones.
//
// Nothing on the reader path may block — that is what lets one
// goroutine serve hundreds of channels — so the server requires a
// runtime with QoQ reservations (non-blocking enqueues) and drives
// every query and sync through the non-blocking futures path; replies
// are shipped from completion callbacks.
//
// The write path is bounded end to end. The writer's pending batch is
// capped at WriteBudget bytes; replies that do not fit are deferred
// inside the writer until the batch drains, and the deferred backlog
// is in turn bounded by the per-channel credit window: the server
// advertises credits when a channel first appears, each admitted
// request consumes one, and completions replenish them in batches — so
// a stalled or slow peer caps this server's memory at
// budget + window×channels reply frames instead of growing without
// limit. Windows are adaptive by default (sized per channel from the
// observed drain rate with AIMD backoff on congestion, capped at
// defaultCreditWindow — see adaptive.go); a positive Window pins the
// legacy fixed window instead. A channel that overruns its window (a
// client ignoring credits) is quarantined: its handler is released,
// its frames are dropped, and the connection's other channels carry
// on untouched.
type Server struct {
	rt *core.Runtime

	// Window pins a fixed per-channel credit window; 0 (the default)
	// selects adaptive windows sized from each channel's drain rate.
	// Fixed values below the client bootstrap (bootstrapCredits) are
	// effectively raised to it, since a client starts with that many
	// credits before any advertisement arrives. Set before Serve.
	Window int

	// WriteBudget is the byte cap on each connection writer's pending
	// batch: 0 selects the default, negative disables the cap (the
	// pre-flow-control behavior, kept for baseline measurement only).
	// Set before Serve.
	WriteBudget int

	// IdleTimeout, when positive, arms a read deadline on every
	// connection with a channel holding a reservation hostage — a block
	// open with no requests in flight, where the peer owes the next
	// frame: a peer silent in that state for longer is torn down with
	// ErrPeerStalled, releasing its handlers. Quiet connections with no
	// open blocks, and peers merely waiting for their replies, are
	// never timed out. Set before Serve.
	IdleTimeout time.Duration

	mu       sync.Mutex
	handlers map[string]*core.Handler
	procs    map[string]map[string]Proc
	bprocs   map[string]map[string]BytesProc
	ln       net.Listener
	conns    map[net.Conn]struct{}
	writers  map[*connWriter]struct{}
	gone     writerStats // folded stats of finished connections
	closed   bool

	creditsGranted atomic.Uint64
	windowResizes  atomic.Uint64
	quarantines    atomic.Uint64
	peerStalls     atomic.Uint64
	violations     atomic.Uint64
	bytesIn        atomic.Uint64

	wg sync.WaitGroup
}

// NewServer creates a server for rt's handlers. The runtime must use
// QoQ reservations (core.Config.QoQ): the demultiplexer's reader
// serves every channel of a connection and therefore must never block,
// which lock-based reservations cannot guarantee.
func NewServer(rt *core.Runtime) *Server {
	if !rt.Config().QoQ {
		panic("remote: Server requires a QoQ configuration (non-blocking reservations)")
	}
	return &Server{
		rt:       rt,
		handlers: map[string]*core.Handler{},
		procs:    map[string]map[string]Proc{},
		bprocs:   map[string]map[string]BytesProc{},
		conns:    map[net.Conn]struct{}{},
		writers:  map[*connWriter]struct{}{},
	}
}

// Expose registers a handler under a public name with its callable
// procedures. Procedures must only touch state owned by h.
func (s *Server) Expose(name string, h *core.Handler, procs map[string]Proc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[name] = h
	s.procs[name] = procs
}

// ExposeBytes registers a handler's bytes procedures under a public
// name. A handler may carry both int64 and bytes procedures (Expose
// and ExposeBytes compose; the two namespaces are independent, keyed
// by the frame kind the client sent).
func (s *Server) ExposeBytes(name string, h *core.Handler, procs map[string]BytesProc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[name] = h
	s.bprocs[name] = procs
}

// ServerStats aggregates the write-path counters of every connection
// this server has carried (live and finished).
type ServerStats struct {
	Frames  uint64 // reply/credit frames accepted by the writers
	Flushes uint64 // conn.Write calls
	Dropped uint64 // frames accepted but never delivered (dead connections)

	FramesParked    uint64 // frames deferred past the write budget (total)
	MaxBatchBytes   uint64 // peak pending batch across connections (≤ budget + one frame)
	MaxParkedFrames uint64 // peak deferred backlog: ≤ window×channels replies, plus pending grants and ≤1 block error per channel
	CreditsGranted  uint64 // request credits advertised + replenished

	WindowResizes      uint64 // adaptive window target changes (see adaptive.go)
	Quarantines        uint64 // channels quarantined for overrunning their credit window
	PeerStalls         uint64 // connections torn down by the idle deadline (ErrPeerStalled)
	ProtocolViolations uint64 // connections dropped for unrecoverable protocol violations

	BytesIn  uint64 // payload bytes decoded from CALLB/QUERYB frames
	BytesOut uint64 // payload bytes encoded into REPLYB frames

	// Slab-pool snapshot at the Stats call; the pool is process-global
	// (shared with client-side readers in the same process).
	SlabsInUse uint64
	SlabReuses uint64
}

// Stats reports the server's aggregated write-path and flow-control
// counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	agg := s.gone
	for cw := range s.writers {
		agg.fold(cw.stats())
	}
	s.mu.Unlock()
	inUse, reuses := slabStats()
	return ServerStats{
		Frames:             agg.Frames,
		Flushes:            agg.Flushes,
		Dropped:            agg.Dropped,
		FramesParked:       agg.Parked,
		MaxBatchBytes:      agg.MaxBatchBytes,
		MaxParkedFrames:    agg.MaxParkedFrames,
		CreditsGranted:     s.creditsGranted.Load(),
		WindowResizes:      s.windowResizes.Load(),
		Quarantines:        s.quarantines.Load(),
		PeerStalls:         s.peerStalls.Load(),
		ProtocolViolations: s.violations.Load(),
		BytesIn:            s.bytesIn.Load(),
		BytesOut:           agg.Bytes,
		SlabsInUse:         inUse,
		SlabReuses:         reuses,
	}
}

// fixedWindow returns the pinned per-channel credit window, or 0 when
// windows are adaptive (Server.Window == 0).
func (s *Server) fixedWindow() int64 {
	w := int64(s.Window)
	if w <= 0 {
		return 0
	}
	if w < bootstrapCredits {
		// The client starts with bootstrapCredits before any
		// advertisement: that is the floor of what it may have in
		// flight, so enforcing less would kill honest clients.
		w = bootstrapCredits
	}
	return w
}

// Serve accepts connections on ln until Close. It blocks; run it in a
// goroutine.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting, closes live connections, and waits for the
// per-connection goroutines. Channels with open blocks are ENDed so
// their handlers are released; queries already logged still execute
// (the runtime drains accepted work), their replies are dropped.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// svChan is the server end of one logical client: a demultiplexed
// channel with its own core.Client (so concurrent channels can hold
// separate private queues on the same handler) and, while a block is
// open, the session/release pair of the reservation.
type svChan struct {
	cl      *core.Client
	sess    *core.Session
	release func()
	procs   map[string]Proc
	bprocs  map[string]BytesProc

	// outstanding counts admitted-but-uncompleted requests (the credit
	// window in use); pendGrant accumulates completions awaiting a
	// batched CREDIT replenishment. Both are touched by the reader and
	// by completion callbacks on handler/pool goroutines.
	outstanding atomic.Int64
	pendGrant   atomic.Int64

	// limit is the enforced credit window: the allowance actually
	// extended to the client (bootstrap + grants − withheld). Fixed
	// mode sets it once; adaptive mode moves it toward target at grant
	// batches. Read by the reader's admission check, written under amu.
	limit atomic.Int64

	// quarantined marks a channel that overran its window: its frames
	// are dropped without reply or credit (set by the reader, read by
	// completion callbacks).
	quarantined atomic.Bool

	// Adaptive-controller state, all under amu (the controller runs on
	// whichever goroutine crosses a grant-batch boundary).
	amu        sync.Mutex
	target     int64     // where the controller wants the window
	ewmaRate   float64   // drain-rate estimate, completions/sec
	lastAdjust time.Time // previous controller run
	lastParked uint64    // writer's cumulative parked count then

	// errmsg poisons an open block whose BEGIN or CALL failed (unknown
	// handler/procedure, reservation after shutdown): CALLs are
	// dropped, queries and syncs reply with the error, END clears it.
	// The client sees exactly what a local poisoned session shows — the
	// failure at every synchronization point until the block ends.
	errmsg string

	// poisonSeq is the deferred-queue sequence number of this channel's
	// last block-level id-0 ERROR (zero when it went straight onto the
	// batch). While that frame is still queued, further poisons are
	// skipped: BEGIN/END are not credit-gated, so without this a peer
	// that stopped reading could cycle failing blocks and grow the
	// deferred queue without limit — and the client coalesces block
	// errors anyway (first-wins until a synchronization point), so a
	// second queued one adds memory without information.
	poisonSeq uint64
}

// open reports whether the channel is inside a BEGIN..END bracket
// (healthy or poisoned).
func (sc *svChan) open() bool { return sc.sess != nil || sc.errmsg != "" }

// serverConn is the per-connection demultiplexer state shared by the
// reader and the completion callbacks it arms.
type serverConn struct {
	s        *Server
	cw       *connWriter
	chans    map[uint32]*svChan
	window   int64 // fixed per-channel credit window; 0 = adaptive
	adaptive bool
}

// newChan initializes the server end of a fresh channel and advertises
// its initial credit window (topping the client up from its bootstrap).
func (c *serverConn) newChan(ch uint32) *svChan {
	sc := &svChan{cl: c.s.rt.NewClient()}
	window := c.window
	if c.adaptive {
		window = adaptiveInitWindow
		sc.target = window
		sc.lastAdjust = time.Now()
		sc.lastParked = c.cw.parkedTotal()
	}
	sc.limit.Store(window)
	c.chans[ch] = sc
	if n := window - bootstrapCredits; n > 0 {
		c.grant(ch, n)
	}
	return sc
}

// serveConn demultiplexes one connection's frames onto local sessions.
func (s *Server) serveConn(conn net.Conn) {
	// A reply-write failure closes the connection so the reader
	// unwedges; completion callbacks keep feeding the writer harmlessly
	// (dead writers drop frames).
	cw := newConnWriter(conn, s.WriteBudget, func(error) { conn.Close() })
	s.mu.Lock()
	s.writers[cw] = struct{}{}
	s.mu.Unlock()
	window := s.fixedWindow()
	c := &serverConn{s: s, cw: cw, chans: map[uint32]*svChan{}, window: window, adaptive: window == 0}
	fr := newFrameReader(conn)
	defer fr.close()
	defer func() {
		// Client vanished (or Close tore the conn down): END every open
		// block so no handler stays reserved by a dead channel.
		for _, sc := range c.chans {
			if sc.release != nil {
				sc.release()
			}
		}
		conn.Close()
		cw.close()
		s.mu.Lock()
		delete(s.writers, cw)
		s.gone.fold(cw.stats())
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	idle := s.IdleTimeout
	var f frame
	for {
		if idle > 0 {
			// Only a busy connection (open blocks or admitted requests)
			// is held to the deadline: an idle peer with nothing
			// reserved costs nothing and may stay connected forever.
			if c.busy() {
				conn.SetReadDeadline(time.Now().Add(idle)) //nolint:errcheck // enforcement is best effort
			} else {
				conn.SetReadDeadline(time.Time{}) //nolint:errcheck
			}
		}
		if err := fr.readFrame(&f); err != nil {
			if idle > 0 && errors.Is(err, os.ErrDeadlineExceeded) {
				if fr.atBoundary() && !c.busy() {
					// The deadline was armed while busy, but the work
					// drained before it fired and no frame bytes were
					// consumed: the stream is still in sync, keep going.
					continue
				}
				s.peerStalls.Add(1) // ErrPeerStalled: silent mid-activity
			}
			if errors.Is(err, ErrProtocol) {
				// Decoder-level violations (oversized fields, unknown
				// kinds, an intern-table overflow) count like the
				// demux-level ones handleFrame reports.
				s.violations.Add(1)
			}
			return // connection torn down (or stream corrupt): one path
		}
		if !c.handleFrame(&f) {
			s.violations.Add(1)
			return // unrecoverable protocol violation: drop the connection
		}
	}
}

// busy reports whether a silent peer is holding work hostage: a
// channel inside a block with nothing in flight, where the peer owes
// the next frame (more requests, or the END releasing the handler).
// Channels with outstanding requests do NOT count — a pipelining
// client legitimately goes write-silent while its replies execute, and
// the ball is in this server's court until they complete. Quarantined
// channels don't count either: their handler is already released.
func (c *serverConn) busy() bool {
	for _, sc := range c.chans {
		if sc.quarantined.Load() {
			continue
		}
		if sc.open() && sc.outstanding.Load() == 0 {
			return true
		}
	}
	return false
}

// reply ships a REPLY/ERROR for (ch, id) through the batching writer,
// deferring past the byte budget — never blocking, since it runs on
// the reader or a completion callback.
func (c *serverConn) reply(ch uint32, id uint64, v int64, err error) {
	f := frame{kind: fReply, ch: ch, id: id, val: v}
	if err != nil {
		f = frame{kind: fError, ch: ch, id: id, name: err.Error()}
	}
	c.cw.frameDeferred(&f) // ok=false means the connection died; nothing to do
}

// replyBytes ships a REPLYB through the batching writer. The payload
// is either encoded into the batch before this returns or parked as a
// deep copy (frameDeferred detaches data), so the caller may release
// whatever out aliases immediately afterwards.
func (c *serverConn) replyBytes(ch uint32, id uint64, out []byte) {
	c.cw.frameDeferred(&frame{kind: fReplyB, ch: ch, id: id, data: out})
}

// poison marks the open block failed and ships the id-0 block-level
// ERROR, so even a fire-and-forget block (no query or sync of its own)
// learns its work was dropped; queries and syncs logged before the
// block ends keep replying with the same message per id. At most one
// id-0 ERROR per channel sits in the writer's deferred queue at a time
// (see svChan.poisonSeq) — the write-path memory bound must hold even
// though BEGIN/END are not credit-gated. The coalescing window is
// exact: a new poison is skipped only while the previous one is
// provably still queued, never because of unrelated later congestion.
func (c *serverConn) poison(sc *svChan, ch uint32, msg string) {
	sc.errmsg = msg
	if sc.poisonSeq != 0 && c.cw.drainedParked(ch) < sc.poisonSeq {
		return // this channel's previous block error is still queued
	}
	f := frame{kind: fError, ch: ch, id: 0, name: msg}
	_, seq := c.cw.frameDeferred(&f)
	sc.poisonSeq = seq
}

// grant ships n request credits to the channel.
func (c *serverConn) grant(ch uint32, n int64) {
	c.s.creditsGranted.Add(uint64(n))
	c.cw.frameDeferred(&frame{kind: fCredit, ch: ch, id: uint64(n)})
}

// admit charges one unit of the channel's credit window for a received
// request. It reports false when the client overran its window — only
// possible for a peer ignoring CREDIT frames (the client-side
// admission gate cannot overrun) — which is the bound that keeps
// deferred replies finite.
func (c *serverConn) admit(sc *svChan) bool {
	return sc.outstanding.Add(1) <= sc.limit.Load()
}

// quarantine cuts off a channel that overran its credit window without
// dropping the connection: the handler is released (the offender
// cannot hold a reservation hostage), one id-0 ERROR tells the peer
// why, and from here on the channel's frames are dropped without
// reply, credit, or replenishment — a peer that proved it ignores the
// window gets no further ability to consume writer memory. Honest
// channels on the same connection are untouched. Runs on the reader.
func (c *serverConn) quarantine(sc *svChan, ch uint32) {
	sc.quarantined.Store(true)
	if sc.release != nil {
		sc.release()
	}
	sc.sess, sc.release, sc.procs, sc.bprocs, sc.errmsg = nil, nil, nil, nil, ""
	c.s.quarantines.Add(1)
	c.cw.frameDeferred(&frame{kind: fError, ch: ch, id: 0, name: ErrCreditOverrun.Error()})
}

// credit returns one unit of the channel's window after a request
// completed (executed, replied, or dropped by a poisoned block) and
// replenishes the client in CREDIT frames of limit/8 completions; in
// adaptive mode each replenishment is also the window controller's
// decision point (see adaptive.go). Runs on the reader or on
// handler/pool goroutines; never blocks.
func (c *serverConn) credit(sc *svChan, ch uint32) {
	sc.outstanding.Add(-1)
	if sc.quarantined.Load() {
		return // no replenishment for a quarantined channel
	}
	batch := sc.limit.Load() / 8
	if batch < 1 {
		batch = 1
	}
	if sc.pendGrant.Add(1) < batch {
		return
	}
	n := sc.pendGrant.Swap(0)
	if n <= 0 {
		return
	}
	if c.adaptive {
		n = c.adjustWindow(sc, ch, n)
	}
	if n > 0 {
		c.grant(ch, n)
	}
}

// handleFrame processes one client frame. It reports false on
// unrecoverable protocol violations, which are connection-fatal: the
// framing layer has no way to resynchronize with a client whose
// channel state diverged. The recoverable violation — a credit-window
// overrun, where the stream is still well-formed — quarantines the
// offending channel instead (see quarantine).
func (c *serverConn) handleFrame(f *frame) bool {
	s := c.s
	sc := c.chans[f.ch]
	if sc != nil && sc.quarantined.Load() {
		// A quarantined channel is a black hole: every frame —
		// including CLOSE, so the entry survives as a tombstone and
		// the channel id cannot be resurrected fresh — is dropped
		// without reply or credit. A dropped bytes payload still goes
		// back to its slab (nil for the non-bytes kinds).
		Release(f.data)
		return true
	}
	switch f.kind {
	case fBegin:
		if sc == nil {
			sc = c.newChan(f.ch)
		}
		if sc.open() {
			return false // BEGIN inside an open block
		}
		s.mu.Lock()
		h := s.handlers[f.name]
		procs := s.procs[f.name]
		bprocs := s.bprocs[f.name]
		s.mu.Unlock()
		if h == nil {
			c.poison(sc, f.ch, fmt.Sprintf("unknown handler %q", f.name))
			return true
		}
		sess, release, err := sc.cl.TryReserve(h)
		if err != nil {
			c.poison(sc, f.ch, err.Error())
			return true
		}
		sc.sess, sc.release, sc.procs, sc.bprocs = sess, release, procs, bprocs

	case fEnd:
		if sc == nil || !sc.open() {
			return false // END without a block
		}
		if sc.release != nil {
			sc.release()
		}
		sc.sess, sc.release, sc.procs, sc.bprocs, sc.errmsg = nil, nil, nil, nil, ""

	case fClose:
		// Channel retired, possibly mid-block: END the block so the
		// handler is released, then forget the channel. A frame for
		// this channel id never arrives again (ids are not reused).
		if sc != nil {
			if sc.release != nil {
				sc.release()
			}
			delete(c.chans, f.ch)
		}

	case fCall:
		if sc == nil || !sc.open() {
			return false // CALL outside a block
		}
		if !c.admit(sc) {
			c.quarantine(sc, f.ch) // client overran its credit window
			return true
		}
		if sc.errmsg != "" {
			c.credit(sc, f.ch) // dropped, like a local poisoned session
			return true
		}
		proc, ok := sc.procs[f.name]
		if !ok {
			// Poison the block; the error surfaces at the next
			// synchronization point, like a handler-side failure.
			c.poison(sc, f.ch, fmt.Sprintf("unknown procedure %q", f.name))
			c.credit(sc, f.ch)
			return true
		}
		args := copyArgs(f.args)
		ch, lsc := f.ch, sc
		sc.sess.Call(func() {
			proc(args)
			c.credit(lsc, ch)
		})

	case fQuery:
		if sc == nil || !sc.open() {
			return false // QUERY outside a block
		}
		if !c.admit(sc) {
			c.quarantine(sc, f.ch) // client overran its credit window
			return true
		}
		if sc.errmsg != "" {
			c.reply(f.ch, f.id, 0, fmt.Errorf("%s", sc.errmsg))
			c.credit(sc, f.ch)
			return true
		}
		proc, ok := sc.procs[f.name]
		if !ok {
			c.reply(f.ch, f.id, 0, fmt.Errorf("unknown procedure %q", f.name))
			c.credit(sc, f.ch)
			return true
		}
		// The non-blocking path: log the query as a future and keep
		// demultiplexing; the completion callback runs on the handler
		// (or pool worker) that resolves it and ships the reply from
		// there through the shared batching writer — replying first,
		// then crediting, so a replenished client's next request can
		// never observe the connection before its predecessor's reply
		// was accepted.
		ch, id, args, lsc := f.ch, f.id, copyArgs(f.args), sc
		sc.sess.CallFuture(func() any { return proc(args) }).
			OnComplete(func(v any, err error) {
				if err != nil {
					c.reply(ch, id, 0, err)
				} else {
					c.reply(ch, id, v.(int64), nil)
				}
				c.credit(lsc, ch)
			})

	case fCallB:
		if sc == nil || !sc.open() {
			Release(f.data)
			return false // CALLB outside a block
		}
		s.bytesIn.Add(uint64(len(f.data)))
		if !c.admit(sc) {
			Release(f.data)
			c.quarantine(sc, f.ch) // client overran its credit window
			return true
		}
		if sc.errmsg != "" {
			Release(f.data)
			c.credit(sc, f.ch) // dropped, like a local poisoned session
			return true
		}
		bproc, ok := sc.bprocs[f.name]
		if !ok {
			Release(f.data)
			c.poison(sc, f.ch, fmt.Sprintf("unknown bytes procedure %q", f.name))
			c.credit(sc, f.ch)
			return true
		}
		// Zero-copy handoff: the payload is a slab sub-slice with its
		// own reference, so it stays valid after the reader decodes the
		// next frame; the proc borrows it and the completion releases.
		payload, ch, lsc := f.data, f.ch, sc
		sc.sess.Call(func() {
			bproc(payload)
			Release(payload)
			c.credit(lsc, ch)
		})

	case fQueryB:
		if sc == nil || !sc.open() {
			Release(f.data)
			return false // QUERYB outside a block
		}
		s.bytesIn.Add(uint64(len(f.data)))
		if !c.admit(sc) {
			Release(f.data)
			c.quarantine(sc, f.ch) // client overran its credit window
			return true
		}
		if sc.errmsg != "" {
			Release(f.data)
			c.reply(f.ch, f.id, 0, fmt.Errorf("%s", sc.errmsg))
			c.credit(sc, f.ch)
			return true
		}
		bproc, ok := sc.bprocs[f.name]
		if !ok {
			Release(f.data)
			c.reply(f.ch, f.id, 0, fmt.Errorf("unknown bytes procedure %q", f.name))
			c.credit(sc, f.ch)
			return true
		}
		// Same non-blocking future path as QUERY, with one ordering
		// constraint on top: the reply is encoded (or parked as a deep
		// copy) BEFORE the request payload is released, because the
		// proc's return may alias the request (an echo, a sub-slice).
		ch, id, payload, lsc := f.ch, f.id, f.data, sc
		sc.sess.CallFuture(func() any { return bproc(payload) }).
			OnComplete(func(v any, err error) {
				if err != nil {
					c.reply(ch, id, 0, err)
				} else {
					out, _ := v.([]byte)
					c.replyBytes(ch, id, out)
				}
				Release(payload)
				c.credit(lsc, ch)
			})

	case fSync:
		if sc == nil || !sc.open() {
			return false // SYNC outside a block
		}
		if !c.admit(sc) {
			c.quarantine(sc, f.ch) // client overran its credit window
			return true
		}
		if sc.errmsg != "" {
			c.reply(f.ch, f.id, 0, fmt.Errorf("%s", sc.errmsg))
			c.credit(sc, f.ch)
			return true
		}
		ch, id, lsc := f.ch, f.id, sc
		sc.sess.SyncFuture().OnComplete(func(_ any, err error) {
			c.reply(ch, id, 0, err)
			c.credit(lsc, ch)
		})

	default:
		return false // client sent a server->client (or unknown) kind
	}
	return true
}

// copyArgs detaches an argument vector from the decoder's reused
// buffer: calls and queries execute after the reader has moved on.
func copyArgs(args []int64) []int64 {
	if len(args) == 0 {
		return nil
	}
	out := make([]int64, len(args))
	copy(out, args)
	return out
}
