package remote

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"

	"scoopqs/internal/core"
	"scoopqs/internal/future"
)

// TestStatsSnapshotRace hammers Server.Stats and Mux.Stats from
// spectator goroutines while sessions pipeline a hot workload over
// one multiplexed connection. The PR 7 audit found every writerStats
// mutation already under the writer's lock and both Stats methods
// taking it; this is the -race regression guard that keeps the
// live-snapshot path that way.
func TestStatsSnapshotRace(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			rt := core.New(core.ConfigAll.WithWorkers(2))
			srv := NewServer(rt)
			const sessions = 4
			const queries = 300
			for i := 0; i < sessions; i++ {
				h := rt.NewHandler(fmt.Sprintf("h%d", i))
				c := new(int64)
				srv.Expose(fmt.Sprintf("h%d", i), h, map[string]Proc{
					"add": func(a []int64) int64 { *c += a[0]; return *c },
				})
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln)
			defer func() {
				srv.Close()
				rt.Shutdown()
			}()

			mux, err := DialMux("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer mux.Close()

			stop := make(chan struct{})
			var spect sync.WaitGroup
			for s := 0; s < 2; s++ {
				spect.Add(1)
				go func() {
					defer spect.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						_ = srv.Stats()
						_ = mux.Stats()
					}
				}()
			}

			var wg sync.WaitGroup
			errs := make(chan error, sessions)
			for i := 0; i < sessions; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					rs := mux.NewSession()
					defer rs.Close()
					var last *future.Future
					err := rs.Separate(fmt.Sprintf("h%d", i), func(s *Session) error {
						for q := 0; q < queries; q++ {
							var err error
							if last, err = s.QueryAsync("add", 1); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						errs <- err
						return
					}
					if err := rs.Flush(); err != nil {
						errs <- err
						return
					}
					v, err := rs.Await(last)
					if err == nil && v != int64(queries) {
						err = fmt.Errorf("counter ended at %d, want %d", v, queries)
					}
					errs <- err
				}()
			}
			wg.Wait()
			close(stop)
			spect.Wait()
			for i := 0; i < sessions; i++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
