package remote

import (
	"time"

	"scoopqs/internal/obs"
)

// Adaptive credit windows (Server.Window == 0, the default) size each
// channel's request window from its observed drain rate instead of a
// static constant: a channel whose completions flow fast earns a deep
// window (pipelining headroom), a slow or stalled one is squeezed
// toward the floor (a shallow window is all its memory bound needs).
// The controller is AIMD on top of the drain-rate estimate — any
// congestion at the connection's shared byte budget (the writer
// parking deferred frames) halves the target; otherwise it steps
// additively toward drainRate × adaptiveHorizon.
//
// Resizing happens purely by steering replenishment: to grow, a CREDIT
// grant carries extra credits beyond the completions it reports; to
// shrink, part of the replenishment is withheld. The enforced limit
// therefore always equals exactly what the client was extended
// (bootstrap + grants − withheld), so an honest client can never be
// pushed over its own window by a shrink — the credits it would need
// to overrun were simply never sent.
const (
	// adaptiveInitWindow is a fresh channel's window: deep enough that
	// the opening pipelined burst is not throttled while the first
	// drain-rate samples accumulate.
	adaptiveInitWindow = 256

	// adaptiveMinWindow is the floor: the client bootstrap, the
	// smallest window the server can enforce at all (the client starts
	// with that many credits before any advertisement arrives).
	adaptiveMinWindow = bootstrapCredits

	// adaptiveMaxWindow caps growth at the legacy fixed default, so
	// adaptive mode's worst-case deferred-reply bound (window ×
	// channels) never exceeds PR 5's.
	adaptiveMaxWindow = defaultCreditWindow

	// adaptiveAIStep is the additive-increase step per grant batch.
	adaptiveAIStep = 64

	// adaptiveHorizon is the drain time a full window should cover:
	// the uncongested target is drainRate × horizon (clamped), the
	// bandwidth-delay sizing with the horizon standing in for a
	// round trip. Generous on purpose — an oversized window costs
	// memory only under congestion, and congestion has its own
	// (multiplicative) response.
	adaptiveHorizon = 10 * time.Millisecond

	// adaptiveEWMAAlpha weights the newest drain-rate sample.
	adaptiveEWMAAlpha = 0.3
)

// adjustWindow runs the per-channel AIMD controller at a grant-batch
// boundary: n completions are ready to replenish, and the returned
// grant is n plus the window growth (or minus the withheld shrink —
// possibly zero, skipping the CREDIT frame entirely). Runs on the
// reader or a pool worker under sc.amu; the cold path, once per
// limit/8 completions.
func (c *serverConn) adjustWindow(sc *svChan, ch uint32, n int64) int64 {
	sc.amu.Lock()
	defer sc.amu.Unlock()

	now := time.Now()
	if elapsed := now.Sub(sc.lastAdjust).Seconds(); elapsed > 0 {
		rate := float64(n) / elapsed
		if sc.ewmaRate == 0 {
			sc.ewmaRate = rate
		} else {
			sc.ewmaRate += adaptiveEWMAAlpha * (rate - sc.ewmaRate)
		}
	}
	sc.lastAdjust = now

	target := sc.target
	if parked := c.cw.parkedTotal(); parked != sc.lastParked {
		// The writer deferred frames past its byte budget since this
		// channel's last decision: the connection is congested, and
		// every channel sharing it backs off multiplicatively.
		sc.lastParked = parked
		target /= 2
	} else {
		// Uncongested: step toward the drain-derived ceiling, with a
		// 2-step hysteresis band so the target does not oscillate
		// around a noisy rate estimate.
		ceil := int64(sc.ewmaRate * adaptiveHorizon.Seconds())
		switch {
		case target+adaptiveAIStep <= ceil:
			target += adaptiveAIStep
		case target-2*adaptiveAIStep >= ceil:
			target -= adaptiveAIStep
		}
	}
	if target < adaptiveMinWindow {
		target = adaptiveMinWindow
	}
	if target > adaptiveMaxWindow {
		target = adaptiveMaxWindow
	}

	limit := sc.limit.Load()
	grant := n
	switch {
	case limit < target:
		// Grow: extend the extra allowance in this grant. Raising
		// limit before the CREDIT ships is safe — enforcement only
		// becomes more permissive.
		grant += target - limit
		limit = target
	case limit > target:
		// Shrink: withhold replenishment, at most what this batch
		// carries. The withheld credits were already consumed by
		// completed requests and are simply never re-extended, so the
		// client's spendable balance and the enforced limit fall in
		// lockstep.
		withhold := limit - target
		if withhold > n {
			withhold = n
		}
		grant -= withhold
		limit -= withhold
	}
	sc.limit.Store(limit)

	if target != sc.target {
		sc.target = target
		c.s.windowResizes.Add(1)
		windowHist.Observe(target)
		if obs.Enabled() {
			obs.Emit(obs.KindWindowResize, uint64(ch), target)
		}
	}
	return grant
}
