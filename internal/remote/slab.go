package remote

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"unsafe"
)

// The bytes payload allocator: decoded payloads are carved out of
// pooled, refcounted read slabs so the steady-state decode path
// allocates nothing. Each payload handed out by the decoder is a
// sub-slice of a slab, preceded in the slab by an 8-byte header (a
// magic word plus the slab's index in the global table) that lets
// Release find its slab without the caller carrying anything but the
// []byte itself — which is what lets payloads ride plain futures
// (future.Of[[]byte]) and ordinary function signatures.
//
// Lifecycle: the decoder's allocator holds one reference on its
// current slab and adds one per payload carved from it. Release drops
// a payload's reference; when the last reference goes, the slab's
// offset resets and it returns to its size class's free list. The pool
// is a plain mutex-guarded free list rather than a sync.Pool: Release
// must find slabs through a stable index (a sync.Pool would drop them
// per GC while the table still pins them), and the explicit free list
// gives exact SlabsInUse/SlabReuses accounting. Memory is pinned at
// the high-water mark of concurrent payload use, never unbounded.
//
// Release poisons the payload's header, so a double Release panics
// deterministically (while its slab generation is live — a recycled
// and re-carved slab rewrites headers, as any recycling scheme must).

const (
	// slabHeaderSize is the per-payload header: magic:uint32 idx:uint32,
	// little-endian, immediately before the payload bytes.
	slabHeaderSize = 8

	// magicPooled marks a live slab-carved payload; magicStatic marks a
	// permanent interned payload (Release is a no-op); magicDead is the
	// poison Release writes so a second Release of the same payload
	// panics instead of corrupting a refcount.
	magicPooled = 0x51B0_0C1E
	magicStatic = 0x51B0_57A7
	magicDead   = 0x51B0_DEAD

	// Slab size classes: power-of-two capacities from minSlabShift to
	// maxSlabShift. The default class holds many small payloads; a
	// payload near maxBytesLen gets a class of its own.
	minSlabShift = 16 // 64 KiB
	maxSlabShift = 21 // 2 MiB — fits maxBytesLen + header + alignment
)

// slab is one pooled read buffer. Payloads are carved off sequentially
// (off advances); refs counts the allocator's hold plus one per live
// payload, and the slab recycles when it hits zero.
type slab struct {
	buf   []byte
	off   int
	refs  atomic.Int32
	idx   uint32 // index in slabTable.all — what payload headers record
	class int    // size-class shift, for the free-list push on recycle
}

// slabTable is the process-global slab registry and pool. all is
// append-only (an index in a payload header stays valid forever); free
// holds recycled slabs per size class.
var slabTable struct {
	mu   sync.Mutex
	all  []*slab
	free [maxSlabShift + 1][]*slab

	inUse  atomic.Int64  // slabs out of the free lists
	reuses atomic.Uint64 // free-list pops (recycled rather than allocated)
}

// slabStats reports the pool's live and reuse counters, for
// MuxStats/ServerStats snapshots. The pool is process-global, so the
// numbers cover every connection in the process.
func slabStats() (inUse, reuses uint64) {
	n := slabTable.inUse.Load()
	if n < 0 {
		n = 0
	}
	return uint64(n), slabTable.reuses.Load()
}

// newSlab takes a slab of the given class from the free list, or
// allocates one. The returned slab carries one reference (the
// caller's hold) and an empty offset.
func newSlab(class int) *slab {
	slabTable.mu.Lock()
	if fl := slabTable.free[class]; len(fl) > 0 {
		s := fl[len(fl)-1]
		fl[len(fl)-1] = nil
		slabTable.free[class] = fl[:len(fl)-1]
		slabTable.mu.Unlock()
		slabTable.inUse.Add(1)
		slabTable.reuses.Add(1)
		s.refs.Store(1)
		s.off = 0
		return s
	}
	s := &slab{buf: make([]byte, 1<<class), class: class}
	s.idx = uint32(len(slabTable.all))
	slabTable.all = append(slabTable.all, s)
	slabTable.mu.Unlock()
	slabTable.inUse.Add(1)
	s.refs.Store(1)
	return s
}

// release drops one reference; the last one resets the slab and pushes
// it back to its class's free list.
func (s *slab) release() {
	switch n := s.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic("remote: slab refcount underflow")
	}
	s.off = 0
	slabTable.inUse.Add(-1)
	slabTable.mu.Lock()
	slabTable.free[s.class] = append(slabTable.free[s.class], s)
	slabTable.mu.Unlock()
}

// classFor returns the size-class shift for one carve of n payload
// bytes: the default class unless the payload (plus header and
// alignment) needs a bigger one.
func classFor(n int) int {
	need := n + slabHeaderSize + slabHeaderSize // header + alignment slack
	class := minSlabShift
	for 1<<class < need {
		class++
	}
	return class
}

// slabAlloc carves payloads out of a current slab, swapping to a fresh
// one when it fills. One slabAlloc belongs to one frameReader (single
// goroutine); the slabs themselves are shared with whoever holds
// payloads.
type slabAlloc struct {
	cur *slab
}

// take carves an n-byte payload (n > 0): header written, one reference
// added, capacity clamped to the payload (cap(b) == len(b), so no
// append or re-slice can alias the neighbors or the header).
func (a *slabAlloc) take(n int) []byte {
	need := slabHeaderSize + n
	s := a.cur
	if s != nil {
		// Align the header so payloads start on 8-byte boundaries.
		s.off = (s.off + 7) &^ 7
	}
	if s == nil || len(s.buf)-s.off < need {
		if s != nil {
			s.release() // drop the allocator's hold; payloads keep theirs
		}
		s = newSlab(classFor(n))
		a.cur = s
	}
	off := s.off
	binary.LittleEndian.PutUint32(s.buf[off:], magicPooled)
	binary.LittleEndian.PutUint32(s.buf[off+4:], s.idx)
	s.refs.Add(1)
	s.off = off + need
	return s.buf[off+slabHeaderSize : off+need : off+need]
}

// close drops the allocator's hold on its current slab; called when
// the frameReader's stream ends so an idle reader does not pin a slab
// forever. Idempotent.
func (a *slabAlloc) close() {
	if a.cur != nil {
		a.cur.release()
		a.cur = nil
	}
}

// payloadHeader reads the 8-byte header preceding a payload. The
// header lives in the same allocation as the payload (a slab, or a
// static intern chunk), so the pointer arithmetic stays inside one
// object.
func payloadHeader(b []byte) []byte {
	p := unsafe.Pointer(unsafe.SliceData(b))
	return unsafe.Slice((*byte)(unsafe.Add(p, -slabHeaderSize)), slabHeaderSize)
}

// Release returns a decoded payload to its slab. Every []byte the
// decoder hands out — a server proc's request payload, a client's
// QueryBytes reply — must be released exactly once when the holder is
// done with it; the slab recycles when its last payload is released.
// Nil and empty payloads are no-ops, as are interned payloads (small
// repeated payloads are served from a permanent per-connection cache).
// Releasing the same payload twice, or a []byte the decoder never
// handed out, panics: both are ownership bugs that would otherwise
// corrupt a refcount silently.
func Release(b []byte) {
	if len(b) == 0 {
		return
	}
	hdr := payloadHeader(b)
	switch binary.LittleEndian.Uint32(hdr) {
	case magicStatic:
		return
	case magicPooled:
	case magicDead:
		panic("remote: double Release of bytes payload")
	default:
		panic("remote: Release of a []byte the decoder did not hand out")
	}
	binary.LittleEndian.PutUint32(hdr, magicDead)
	idx := binary.LittleEndian.Uint32(hdr[4:])
	slabTable.mu.Lock()
	s := slabTable.all[idx]
	slabTable.mu.Unlock()
	s.release()
}

// newStaticPayload builds a permanent interned payload: a heap chunk
// with a static header, so Release is a no-op and the entry can be
// handed out any number of times. Interned payloads are shared — the
// read-only contract on decoded payloads is what makes that sound.
func newStaticPayload(b []byte) []byte {
	chunk := make([]byte, slabHeaderSize+len(b))
	binary.LittleEndian.PutUint32(chunk, magicStatic)
	copy(chunk[slabHeaderSize:], b)
	return chunk[slabHeaderSize : slabHeaderSize+len(b) : slabHeaderSize+len(b)]
}
