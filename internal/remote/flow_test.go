package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/future"
)

// flowModes are the pool widths the full-stack flow-control suite runs
// under: Workers 1 forces maximal multiplexing of the completion
// callbacks, Workers 4 exercises the work-stealing substrate.
var flowModes = []struct {
	name string
	cfg  core.Config
}{
	{"pooled1", core.ConfigAll.WithWorkers(1)},
	{"pooled4", core.ConfigAll.WithWorkers(4)},
}

// pipeListener adapts net.Pipe to net.Listener: every dial hands the
// server end to Accept. net.Pipe has no kernel buffering, so a peer
// that stops reading stalls the other end's very next Write — the
// sharpest possible version of the slow-peer scenario.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// dial returns the client end of a fresh pipe whose server end is
// handed to Accept.
func (l *pipeListener) dial(t *testing.T) net.Conn {
	t.Helper()
	c, s := net.Pipe()
	select {
	case l.conns <- s:
	case <-time.After(5 * time.Second):
		t.Fatal("server never accepted the pipe connection")
	}
	return c
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// stallConn delays every Read until release is closed: from the peer's
// point of view, a connected client that has simply stopped reading.
type stallConn struct {
	net.Conn
	release <-chan struct{}
}

func (c stallConn) Read(p []byte) (int, error) {
	<-c.release
	return c.Conn.Read(p)
}

// TestWriterBudgetBoundsBatch drives a connWriter against a net.Pipe
// peer that reads exactly one batch and then stops: the pending batch
// must stay at the configured budget (PR 4 grew it with everything
// produced), blocking producers must park, and kill() must unwedge
// them.
func TestWriterBudgetBoundsBatch(t *testing.T) {
	const budget = 4 << 10
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()

	// Absorb one initial flush, then stop reading: the writer's next
	// Write blocks forever, and everything produced meanwhile piles
	// into the pending batch.
	firstRead := make(chan struct{})
	go func() {
		buf := make([]byte, 32<<10)
		srv.Read(buf) //nolint:errcheck // stalled peer: one read, then silence
		close(firstRead)
	}()

	cw := newConnWriter(cli, budget, nil)
	f := frame{kind: fCall, ch: 1, name: "spam", args: []int64{1, 2, 3, 4}}
	if !cw.frame(&f) {
		t.Fatal("first frame rejected")
	}
	<-firstRead

	// A producer hammering the writer must park at the budget rather
	// than grow the batch: run it in a goroutine and watch the stats.
	producerDone := make(chan int)
	go func() {
		sent := 0
		for cw.frame(&f) {
			sent++
		}
		producerDone <- sent
	}()

	deadline := time.Now().Add(10 * time.Second)
	for cw.stats().Stalls == 0 {
		if time.Now().After(deadline) {
			t.Fatal("producer never stalled at the budget")
		}
		time.Sleep(time.Millisecond)
	}
	st := cw.stats()
	frameSize := uint64(len(appendFrame(nil, &f)))
	if st.MaxBatchBytes > budget+frameSize {
		t.Fatalf("batch grew to %d bytes, budget %d (+%d slack)", st.MaxBatchBytes, budget, frameSize)
	}

	// kill must release the parked producer promptly (frame -> false),
	// and closing the pipe unwedges the goroutine blocked in Write.
	cw.kill()
	cli.Close()
	select {
	case sent := <-producerDone:
		if sent == 0 {
			t.Fatal("producer parked before appending anything")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("producer still parked after kill()")
	}
	if st := cw.stats(); st.Dropped == 0 {
		t.Fatalf("killed writer reported no dropped frames: %+v", st)
	}
	select {
	case <-cw.done:
	case <-time.After(10 * time.Second):
		t.Fatal("writer goroutine did not exit after kill + conn close")
	}
}

// TestWriterDeferredParksPastBudget is the non-blocking producer path:
// past the budget, frameDeferred must park frames (keeping the batch
// bounded) and deliver every one of them, in order, once the peer
// drains.
func TestWriterDeferredParksPastBudget(t *testing.T) {
	const budget = 1 << 10
	cli, srv := net.Pipe()
	defer cli.Close()

	release := make(chan struct{})
	type readResult struct {
		ids []uint64
		err error
	}
	readerDone := make(chan readResult, 1)
	const total = 1000
	go func() {
		<-release
		fr := newFrameReader(srv)
		var f frame
		var ids []uint64
		for len(ids) < total {
			if err := fr.readFrame(&f); err != nil {
				readerDone <- readResult{ids, err}
				return
			}
			ids = append(ids, f.id)
		}
		readerDone <- readResult{ids, nil}
	}()

	cw := newConnWriter(cli, budget, nil)
	for i := 0; i < total; i++ {
		ok, _ := cw.frameDeferred(&frame{kind: fReply, ch: 1, id: uint64(i), val: 7})
		if !ok {
			t.Fatalf("frame %d rejected by a healthy writer", i)
		}
	}
	st := cw.stats()
	if st.Parked == 0 {
		t.Fatal("no frames parked: budget never engaged")
	}
	if st.MaxBatchBytes > budget+64 {
		t.Fatalf("batch grew to %d bytes past budget %d", st.MaxBatchBytes, budget)
	}

	close(release)
	select {
	case r := <-readerDone:
		if r.err != nil {
			t.Fatalf("reader failed after %d frames: %v", len(r.ids), r.err)
		}
		for i, id := range r.ids {
			if id != uint64(i) {
				t.Fatalf("frame %d arrived with id %d: deferred frames reordered", i, id)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked frames never delivered after the peer drained")
	}
	cw.close()
}

// TestSlowPeerBoundsServerWriter is the end-to-end memory-bound test:
// a mux client stalls its reads mid-burst (net.Pipe: the server's
// writer wedges on its next flush), while its sessions keep pipelining
// queries. The server's pending batch must cap at the write budget and
// its deferred replies at the credit window — where the PR 4 writer
// grew with the entire reply volume — and everything must complete
// once the client resumes reading. Runs at Workers ∈ {1, 4}; the
// paired subtest kills the connection mid-stall instead and requires a
// clean unwedge.
func TestSlowPeerBoundsServerWriter(t *testing.T) {
	// The budget sits below even the bootstrap-window reply volume:
	// the credit layer caps what a stalled client can have in flight
	// at bootstrapCredits per channel, so a larger budget would bound
	// the batch before the byte cap ever engaged (which is the point,
	// but not what this test wants to observe).
	const (
		budget   = 256
		window   = 4096
		sessions = 2
		qper     = 2048
	)
	for _, m := range flowModes {
		t.Run(m.name, func(t *testing.T) {
			for _, kill := range []bool{false, true} {
				name := "drain"
				if kill {
					name = "kill"
				}
				t.Run(name, func(t *testing.T) {
					rt := core.New(m.cfg)
					srv := NewServer(rt)
					srv.WriteBudget = budget
					srv.Window = window
					for i := 0; i < sessions; i++ {
						h := rt.NewHandler("h")
						c := new(int64)
						srv.Expose(handlerName(i), h, map[string]Proc{
							"add": func(a []int64) int64 { *c += a[0]; return *c },
						})
					}
					ln := newPipeListener()
					go srv.Serve(ln)
					defer func() {
						srv.Close()
						rt.Shutdown()
					}()

					release := make(chan struct{})
					conn := ln.dial(t)
					mux := NewMux(stallConn{Conn: conn, release: release})
					defer mux.Close()

					var futs [sessions][]*future.Future
					var wg sync.WaitGroup
					for i := 0; i < sessions; i++ {
						i := i
						rs := mux.NewSession()
						wg.Add(1)
						go func() {
							defer wg.Done()
							futs[i] = make([]*future.Future, 0, qper)
							rs.Separate(handlerName(i), func(s *Session) error { //nolint:errcheck // surfaced via futures
								for q := 0; q < qper; q++ {
									f, err := s.QueryAsync("add", 1)
									if err != nil {
										return err
									}
									futs[i] = append(futs[i], f)
								}
								return nil
							})
						}()
					}

					// Wait until the stall visibly engaged the flow
					// control: replies deferred past the budget.
					deadline := time.Now().Add(20 * time.Second)
					for srv.Stats().FramesParked == 0 {
						if time.Now().After(deadline) {
							t.Fatalf("server never parked a reply; stats %+v", srv.Stats())
						}
						time.Sleep(time.Millisecond)
					}
					st := srv.Stats()
					if st.MaxBatchBytes > budget+64 {
						t.Fatalf("server batch grew to %d bytes, budget %d", st.MaxBatchBytes, budget)
					}
					if st.MaxParkedFrames > sessions*window {
						t.Fatalf("server parked %d frames, credit bound %d", st.MaxParkedFrames, sessions*window)
					}

					if kill {
						// Never resume reading: tear the pipe down and
						// require every future to resolve (with an
						// error) and the server to unwedge. The stall
						// gate opens onto a dead pipe, so the reader
						// observes the close rather than replies.
						conn.Close()
						close(release)
					} else {
						close(release)
					}
					wg.Wait()
					for i := range futs {
						for j, f := range futs[i] {
							select {
							case <-f.Done():
							case <-time.After(20 * time.Second):
								t.Fatalf("session %d future %d still pending", i, j)
							}
							if !kill {
								v, err := f.Get()
								if err != nil {
									t.Fatalf("session %d future %d failed: %v", i, j, err)
								}
								if v.(int64) != int64(j+1) {
									t.Fatalf("session %d future %d = %d, want %d", i, j, v, j+1)
								}
							}
						}
					}
					if !kill {
						st := srv.Stats()
						if st.MaxBatchBytes > budget+64 {
							t.Fatalf("server batch peaked at %d bytes after drain, budget %d", st.MaxBatchBytes, budget)
						}
					}
				})
			}
		})
	}
}

// TestMuxNewSessionAfterCloseFailsFast is the regression for the
// NewSession-on-a-dead-mux hang: a session created after Close was
// registered in m.chans, but no teardown sweep would ever fail its
// pending futures, so QueryAsync + Await hung forever.
func TestMuxNewSessionAfterCloseFailsFast(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()

	mux, err := DialMux("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := mux.Close(); err != nil {
		t.Fatal(err)
	}

	rs := mux.NewSession()
	done := make(chan error, 1)
	go func() {
		f, err := (&Session{rs: rs}).QueryAsync("get")
		if err == nil {
			_, err = rs.Await(f)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("err = %v, want the mux's terminal close error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("QueryAsync/Await on a post-Close session hung")
	}

	// The high-level paths fail fast too, with the same terminal error.
	if err := rs.Separate("counter", func(s *Session) error { return nil }); err == nil {
		t.Fatal("Separate on a post-Close session succeeded")
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("closing a dead session: %v", err)
	}
}

// failAfterConn is a net.Conn whose Write fails once the gate closes
// and whose Read blocks until Close — a peer that dies without the
// reader ever noticing on its own.
type failAfterConn struct {
	mu       sync.Mutex
	failWr   bool
	closedCh chan struct{}
	once     sync.Once
}

func newFailAfterConn() *failAfterConn {
	return &failAfterConn{closedCh: make(chan struct{})}
}

func (c *failAfterConn) failWrites() {
	c.mu.Lock()
	c.failWr = true
	c.mu.Unlock()
}

func (c *failAfterConn) Read(p []byte) (int, error) {
	<-c.closedCh
	return 0, io.EOF
}

func (c *failAfterConn) Write(p []byte) (int, error) {
	select {
	case <-c.closedCh:
		return 0, net.ErrClosed
	default:
	}
	c.mu.Lock()
	fail := c.failWr
	c.mu.Unlock()
	if fail {
		return 0, errors.New("peer vanished")
	}
	return len(p), nil
}

func (c *failAfterConn) Close() error {
	c.once.Do(func() { close(c.closedCh) })
	return nil
}

func (c *failAfterConn) LocalAddr() net.Addr              { return pipeAddr{} }
func (c *failAfterConn) RemoteAddr() net.Addr             { return pipeAddr{} }
func (c *failAfterConn) SetDeadline(time.Time) error      { return nil }
func (c *failAfterConn) SetReadDeadline(time.Time) error  { return nil }
func (c *failAfterConn) SetWriteDeadline(time.Time) error { return nil }

// TestWriteFailureFailsPendingPromptly is the silent-frame-loss
// regression: when a write fails, frames accepted since that write
// began are undeliverable — the writer must count them as dropped and
// the mux must fail the pending futures immediately, not wait for a
// reader that (here) would block forever.
func TestWriteFailureFailsPendingPromptly(t *testing.T) {
	conn := newFailAfterConn()
	mux := NewMux(conn)
	defer mux.Close()
	rs := mux.NewSession()

	// A healthy round: BEGIN flushes fine.
	if err := rs.send(&frame{kind: fBegin, ch: rs.ch, name: "counter"}); err != nil {
		t.Fatal(err)
	}
	flushDeadline := time.Now().Add(10 * time.Second)
	for mux.Stats().Flushes == 0 {
		if time.Now().After(flushDeadline) {
			t.Fatal("healthy BEGIN never flushed")
		}
		time.Sleep(time.Millisecond)
	}

	conn.failWrites()
	// The next frame is accepted into the batch; its write fails.
	f, err := (&Session{rs: rs}).QueryAsync("get")
	if err == nil {
		select {
		case <-f.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("pending future not failed after a write failure (reader never notices on this conn)")
		}
		if _, ferr := f.Get(); ferr == nil {
			t.Fatal("future completed with a value on a dead connection")
		}
	}
	if err := mux.Err(); err == nil {
		t.Fatal("mux not failed after a write failure")
	}

	deadline := time.Now().Add(10 * time.Second)
	for mux.Stats().Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped frames not surfaced in stats: %+v", mux.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCreditWindowThrottlesAdmission pins the client-side admission
// gate: with the server's window at its floor and the handler gated
// shut, exactly bootstrapCredits requests are admitted — the next one
// parks (CreditStalls) until completions replenish the window.
func TestCreditWindowThrottlesAdmission(t *testing.T) {
	rt := core.New(core.ConfigAll)
	h := rt.NewHandler("gate")
	gate := make(chan struct{})
	var n int64
	srv := NewServer(rt)
	srv.Window = 1 // floors to bootstrapCredits
	srv.Expose("gate", h, map[string]Proc{
		"add": func(a []int64) int64 { <-gate; n += a[0]; return n },
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		srv.Close()
		rt.Shutdown()
	}()

	mux, err := DialMux("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	rs := mux.NewSession()

	const total = bootstrapCredits + 32
	var admitted atomic.Int64
	futs := make([]*future.Future, 0, total)
	var futsMu sync.Mutex
	blockDone := make(chan error, 1)
	go func() {
		blockDone <- rs.Separate("gate", func(s *Session) error {
			for i := 0; i < total; i++ {
				f, err := s.QueryAsync("add", 1)
				if err != nil {
					return err
				}
				futsMu.Lock()
				futs = append(futs, f)
				futsMu.Unlock()
				admitted.Add(1)
			}
			return nil
		})
	}()

	// With the handler gated, no replies flow, so no credits come back:
	// admission must stop at exactly the bootstrap window.
	deadline := time.Now().Add(20 * time.Second)
	for admitted.Load() < bootstrapCredits {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d bootstrap admissions went through", admitted.Load(), bootstrapCredits)
		}
		time.Sleep(time.Millisecond)
	}
	for mux.Stats().CreditStalls == 0 {
		if time.Now().After(deadline) {
			t.Fatal("admission past the window never stalled")
		}
		time.Sleep(time.Millisecond)
	}
	if got := admitted.Load(); got != bootstrapCredits {
		t.Fatalf("admitted %d requests on a %d-credit window", got, bootstrapCredits)
	}

	// Open the gate: completions replenish credits, the parked
	// admission resumes, and every future resolves in order.
	close(gate)
	if err := <-blockDone; err != nil {
		t.Fatal(err)
	}
	if err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	futsMu.Lock()
	defer futsMu.Unlock()
	for i, f := range futs {
		v, err := rs.Await(f)
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if v != int64(i+1) {
			t.Fatalf("future %d = %d, want %d", i, v, i+1)
		}
	}
}

// TestPoisonErrorsCoalesceUnderBackpressure closes the hole the credit
// window does not cover: BEGIN/END are not credit-gated, and a failing
// BEGIN ships an id-0 block-level ERROR, so a peer that stopped
// reading could cycle failing blocks and grow the deferred queue one
// poison frame per block, forever. At most one id-0 ERROR per channel
// may sit in the deferred queue while the writer is congested.
func TestPoisonErrorsCoalesceUnderBackpressure(t *testing.T) {
	rt := core.New(core.ConfigAll)
	srv := NewServer(rt)
	srv.WriteBudget = 128 // tiny: the first parked frame marks congestion
	ln := newPipeListener()
	go srv.Serve(ln)
	defer func() {
		srv.Close()
		rt.Shutdown()
	}()

	conn := ln.dial(t)
	defer conn.Close()

	// Cycle failing blocks on one channel without ever reading: every
	// BEGIN poisons and would queue an id-0 ERROR.
	const cycles = 500
	var buf []byte
	for i := 0; i < cycles; i++ {
		buf = appendFrame(buf, &frame{kind: fBegin, ch: 1, name: "nonesuch"})
		buf = appendFrame(buf, &frame{kind: fEnd, ch: 1})
	}
	conn.SetWriteDeadline(time.Now().Add(20 * time.Second)) //nolint:errcheck
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}

	// Wait until the server has consumed the whole flood (every frame
	// accepted by its writer), then check the deferred queue stayed
	// small: the initial window grant plus at most one coalesced
	// poison, not one per cycle.
	deadline := time.Now().Add(20 * time.Second)
	for srv.Stats().FramesParked == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("nothing parked; stats %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	prev := srv.Stats().Frames
	for settled := 0; settled < 5; {
		if time.Now().After(deadline) {
			t.Fatal("server never quiesced")
		}
		time.Sleep(5 * time.Millisecond)
		if cur := srv.Stats().Frames; cur == prev {
			settled++
		} else {
			prev, settled = cur, 0
		}
	}
	if st := srv.Stats(); st.MaxParkedFrames > 8 {
		t.Fatalf("deferred queue grew to %d frames over %d failing blocks; poisons not coalesced (stats %+v)",
			st.MaxParkedFrames, cycles, st)
	}
}

// TestBogusCreditGrantFailsMux pins the client-side grant validation:
// a zero or absurd CREDIT count is a protocol violation that fails the
// mux — applied blindly, a huge count would go negative in int64 and
// park every admission forever with no error.
func TestBogusCreditGrantFailsMux(t *testing.T) {
	for _, tc := range []struct {
		name  string
		count uint64
	}{
		{"zero", 0},
		{"huge", 1 << 63},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cli, sv := net.Pipe()
			defer sv.Close()
			mux := NewMux(cli)
			defer mux.Close()
			rs := mux.NewSession()

			sv.SetWriteDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
			if _, err := sv.Write(appendFrame(nil, &frame{kind: fCredit, ch: rs.ch, id: tc.count})); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(10 * time.Second)
			for mux.Err() == nil {
				if time.Now().After(deadline) {
					t.Fatal("mux accepted a bogus CREDIT grant")
				}
				time.Sleep(time.Millisecond)
			}
			if err := mux.Err(); !strings.Contains(err.Error(), "credit grant") {
				t.Fatalf("mux failed with %v, want a credit-grant protocol error", err)
			}
		})
	}
}

// TestPoisonResendsAfterDrain pins the exactness of the id-0 ERROR
// coalescing window: a poison is skipped only while the channel's
// previous one is still in the deferred queue. Once that frame has
// drained, a later failing block must ship its own id-0 ERROR even if
// the writer happens to be congested again with unrelated traffic —
// otherwise a fire-and-forget block would lose its work silently, the
// exact case the id-0 ERROR exists to report.
func TestPoisonResendsAfterDrain(t *testing.T) {
	rt := core.New(core.ConfigAll)
	defer rt.Shutdown()
	srv := NewServer(rt)

	cli, sv := net.Pipe()
	defer cli.Close()
	const budget = 64
	cw := newConnWriter(sv, budget, nil)
	defer cw.kill()
	defer sv.Close()
	c := &serverConn{s: srv, cw: cw, chans: map[uint32]*svChan{}, window: 1024}

	cli.SetReadDeadline(time.Now().Add(20 * time.Second)) //nolint:errcheck
	fr := newFrameReader(cli)

	// readUntilPoison drains frames until an id-0 ERROR whose message
	// contains marker arrives, returning how many id-0 ERRORs it saw.
	readUntilPoison := func(marker string) int {
		t.Helper()
		poisons := 0
		var f frame
		for i := 0; i < 1024; i++ {
			if err := fr.readFrame(&f); err != nil {
				t.Fatalf("reading for %q after %d poisons: %v", marker, poisons, err)
			}
			if f.kind == fError && f.id == 0 {
				poisons++
				if strings.Contains(f.name, marker) {
					return poisons
				}
			}
		}
		t.Fatalf("id-0 ERROR %q never arrived (%d other poisons seen)", marker, poisons)
		return 0
	}

	// Congest the writer with failing blocks while nobody reads: the
	// coalescing must cap the deferred poisons at one.
	for i := 0; i < 6; i++ {
		if !c.handleFrame(&frame{kind: fBegin, ch: 1, name: "nonesuchA"}) {
			t.Fatal("BEGIN rejected")
		}
		if !c.handleFrame(&frame{kind: fEnd, ch: 1}) {
			t.Fatal("END rejected")
		}
	}
	if st := cw.stats(); st.Parked < 1 || st.Parked > 2 {
		t.Fatalf("deferred poisons = %d over 6 failing blocks, want coalesced to 1-2", st.Parked)
	}

	// Drain: the queued poison flushes.
	readUntilPoison("nonesuchA")
	drainDeadline := time.Now().Add(10 * time.Second)
	for cw.drainedParked(1) == 0 {
		if time.Now().After(drainDeadline) {
			t.Fatal("parked poison never drained")
		}
		time.Sleep(time.Millisecond)
	}

	// Re-congest with unrelated reply traffic (nobody reading again),
	// then fail another block: its poison must be enqueued — the old
	// sequence number is spent, so no stale coalescing.
	parkedBefore := cw.stats().Parked
	for i := 0; cw.stats().Parked == parkedBefore && i < 64; i++ {
		c.reply(1, 99, 0, fmt.Errorf("padding padding padding padding padding %d", i))
	}
	if cw.stats().Parked == parkedBefore {
		t.Fatal("could not re-congest the writer")
	}
	if !c.handleFrame(&frame{kind: fBegin, ch: 1, name: "nonesuchB"}) {
		t.Fatal("second failing BEGIN rejected")
	}
	if !c.handleFrame(&frame{kind: fEnd, ch: 1}) {
		t.Fatal("second END rejected")
	}
	readUntilPoison("nonesuchB")
}

// TestCreditOverrunQuarantinesChannel pins the server-side enforcement:
// a raw-frame peer that ignores CREDIT and floods past the window gets
// its channel quarantined — one block-level ERROR naming the overrun,
// then silence on that channel — while the connection itself stays up
// and honest channels (a sibling channel on the same connection and a
// well-behaved Mux on a second connection) keep completing. The gated
// handler keeps completions from racing the flood and masking the
// overrun.
func TestCreditOverrunQuarantinesChannel(t *testing.T) {
	for _, mode := range flowModes {
		t.Run(mode.name, func(t *testing.T) {
			rt := core.New(mode.cfg)
			gate := make(chan struct{})
			srv := NewServer(rt)
			const window = 128
			srv.Window = window
			srv.Expose("gate", rt.NewHandler("gate"), map[string]Proc{
				"tick": func([]int64) int64 { <-gate; return 0 },
			})
			srv.Expose("calc", rt.NewHandler("calc"), map[string]Proc{
				"add": func(a []int64) int64 { return a[0] + a[1] },
			})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln)
			defer func() {
				srv.Close()
				rt.Shutdown()
			}()
			// Opened before the teardown above runs (defers are LIFO) so
			// the flood's logged calls can drain and Shutdown completes.
			var releaseOnce sync.Once
			release := func() { releaseOnce.Do(func() { close(gate) }) }
			defer release()

			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(20 * time.Second)) //nolint:errcheck

			var buf []byte
			buf = appendFrame(buf, &frame{kind: fBegin, ch: 1, name: "gate"})
			for i := 0; i < window+bootstrapCredits; i++ {
				buf = appendFrame(buf, &frame{kind: fCall, ch: 1, name: "tick"})
			}
			if _, err := conn.Write(buf); err != nil {
				t.Fatalf("flood write failed (connection must survive an overrun): %v", err)
			}

			// The server's verdict arrives in-band: one id-0 ERROR on the
			// abused channel naming the overrun. CREDIT advertisements may
			// precede it.
			fr := newFrameReader(conn)
			var f frame
			for {
				if err := fr.readFrame(&f); err != nil {
					t.Fatalf("reading quarantine verdict: %v", err)
				}
				if f.kind == fCredit {
					continue
				}
				break
			}
			if f.kind != fError || f.ch != 1 || f.id != 0 {
				t.Fatalf("expected block-level ERROR on channel 1, got kind=0x%02x ch=%d id=%d", byte(f.kind), f.ch, f.id)
			}
			if !strings.Contains(f.name, "credit window overrun") {
				t.Fatalf("quarantine error %q does not name the overrun", f.name)
			}
			if got := srv.Stats().Quarantines; got != 1 {
				t.Fatalf("Quarantines = %d, want 1", got)
			}

			// With one worker the gated flood calls monopolize the pool, so
			// no other handler can run until the gate opens — release it
			// now; quarantine is sticky, so the channel stays condemned.
			// With four workers, keep the gate shut: the honest checks below
			// then run while the abuse is still in flight.
			if mode.name == "pooled1" {
				release()
			}

			// The connection survives: a fresh, honest channel on the same
			// connection still gets a window and its replies.
			buf = buf[:0]
			buf = appendFrame(buf, &frame{kind: fBegin, ch: 2, name: "calc"})
			buf = appendFrame(buf, &frame{kind: fQuery, ch: 2, id: 1, name: "add", args: []int64{20, 22}})
			buf = appendFrame(buf, &frame{kind: fEnd, ch: 2})
			if _, err := conn.Write(buf); err != nil {
				t.Fatalf("sibling channel write failed: %v", err)
			}
			for {
				if err := fr.readFrame(&f); err != nil {
					t.Fatalf("reading sibling channel reply: %v", err)
				}
				if f.kind == fCredit || (f.kind == fError && f.ch == 1) {
					continue
				}
				break
			}
			if f.kind != fReply || f.ch != 2 || f.id != 1 || f.val != 42 {
				t.Fatalf("sibling channel: expected REPLY ch=2 id=1 val=42, got kind=0x%02x ch=%d id=%d val=%d", byte(f.kind), f.ch, f.id, f.val)
			}

			// And a well-behaved Mux on a second connection is untouched.
			conn2, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			m := NewMux(conn2)
			rs := m.NewSession()
			err = rs.Separate("calc", func(s *Session) error {
				v, err := s.Query("add", 1, 2)
				if err != nil {
					return err
				}
				if v != 3 {
					return fmt.Errorf("add(1,2) = %d", v)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("honest mux alongside quarantine: %v", err)
			}
			m.Close()
		})
	}
}
