package remote

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"scoopqs/internal/core"
	"scoopqs/internal/future"
)

// slabPayload is comfortably past the small-payload intern threshold,
// so it exercises the pooled slab path, not the static cache.
const slabPayload = 300

// The bytes codec hot path — encode a request into a reused batch
// buffer, decode its payload from a pooled slab, ship the reply the
// same way, Release both — must not allocate per message in either
// direction. This is the property the whole slab machinery exists for.
func TestBytesCodecZeroAlloc(t *testing.T) {
	payload := bytes.Repeat([]byte{0xA5}, slabPayload)
	req := frame{kind: fQueryB, ch: 17, id: 12345, name: "echo", data: payload}
	rep := frame{kind: fReplyB, ch: 17, id: 12345, data: payload}

	buf := make([]byte, 0, 1024)
	br := bytes.NewReader(nil)
	fr := newFrameReader(br)
	defer fr.close()
	var got frame
	roundTrip := func(f *frame) {
		buf = appendFrame(buf[:0], f)
		br.Reset(buf)
		fr.r.Reset(br)
		if err := fr.readFrame(&got); err != nil {
			t.Fatal(err)
		}
		Release(got.data)
	}
	// Warm up: intern the name, cycle enough slabs to populate the free
	// list (a 64 KiB slab holds ~200 carves of this size).
	for i := 0; i < 600; i++ {
		roundTrip(&req)
		roundTrip(&rep)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		roundTrip(&req)
		roundTrip(&rep)
	})
	if allocs != 0 {
		t.Fatalf("bytes codec round trip allocates %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkBytesCodec(b *testing.B) {
	payload := bytes.Repeat([]byte{0xA5}, slabPayload)
	req := frame{kind: fQueryB, ch: 17, id: 12345, name: "echo", data: payload}
	buf := make([]byte, 0, 1024)
	br := bytes.NewReader(nil)
	fr := newFrameReader(br)
	defer fr.close()
	var got frame
	b.SetBytes(slabPayload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendFrame(buf[:0], &req)
		br.Reset(buf)
		fr.r.Reset(br)
		if err := fr.readFrame(&got); err != nil {
			b.Fatal(err)
		}
		Release(got.data)
	}
}

// Slab payloads are three-index sub-slices: cap == len, so no append
// or re-slice from a decoded payload can reach a neighboring payload
// or the slab header.
func TestSlabPayloadBounds(t *testing.T) {
	var a slabAlloc
	defer a.close()
	one := a.take(100)
	two := a.take(50)
	if len(one) != 100 || cap(one) != 100 {
		t.Fatalf("take(100): len %d cap %d, want 100/100", len(one), cap(one))
	}
	if len(two) != 50 || cap(two) != 50 {
		t.Fatalf("take(50): len %d cap %d, want 50/50", len(two), cap(two))
	}
	// Writing every byte of one must not be visible through two (they
	// are carved from the same slab).
	for i := range one {
		one[i] = 0xFF
	}
	for i, b := range two {
		if b == 0xFF {
			t.Fatalf("payloads alias: two[%d] saw one's write", i)
		}
	}
	Release(one)
	Release(two)
}

// Release poisons the payload header, so releasing the same payload
// twice panics deterministically instead of corrupting a refcount.
func TestSlabDoubleReleasePanics(t *testing.T) {
	var a slabAlloc
	defer a.close()
	b := a.take(100)
	Release(b)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	Release(b)
}

// Released slabs go back to their size class's free list and are
// reused rather than reallocated.
func TestSlabRecycling(t *testing.T) {
	inUse0, reuses0 := slabStats()
	var a slabAlloc
	// Two 40 KB carves overflow one 64 KiB slab, so every iteration
	// swaps slabs; with all payloads released promptly, the pool cycles
	// the same slabs through the free list.
	for i := 0; i < 10; i++ {
		p := a.take(40_000)
		Release(p)
	}
	a.close()
	_, reuses1 := slabStats()
	if reuses1-reuses0 < 4 {
		t.Fatalf("slab reuses grew by %d over 10 swap cycles, want >= 4", reuses1-reuses0)
	}
	if inUse, _ := slabStats(); inUse != inUse0 {
		t.Fatalf("slabs in use drifted %d -> %d after all Releases", inUse0, inUse)
	}
}

// Small repeated payloads are interned per connection: the same bytes
// decode to the same backing array, and Release is a no-op that leaves
// the shared entry intact.
func TestSmallPayloadInterning(t *testing.T) {
	small := []byte("balance:ok")
	var buf []byte
	buf = appendFrame(buf, &frame{kind: fReplyB, ch: 1, id: 1, data: small})
	buf = appendFrame(buf, &frame{kind: fReplyB, ch: 1, id: 2, data: small})
	fr := newFrameReader(bytes.NewReader(buf))
	defer fr.close()
	var f frame
	if err := fr.readFrame(&f); err != nil {
		t.Fatal(err)
	}
	first := f.data
	if err := fr.readFrame(&f); err != nil {
		t.Fatal(err)
	}
	second := f.data
	if len(first) == 0 || &first[0] != &second[0] {
		t.Fatal("repeated small payload was not served from the intern cache")
	}
	Release(first)
	Release(second) // both no-ops: interned entries are permanent
	if !bytes.Equal(first, small) {
		t.Fatalf("interned payload corrupted after Release: %q", first)
	}
}

// A peer streaming an unbounded vocabulary of distinct names is an
// attack on the intern table, not a workload: the decoder must reject
// it with ErrProtocol at the entry cap, holding only bounded memory.
func TestNameInternFloodEntries(t *testing.T) {
	var buf []byte
	for i := 0; i < maxInterned+10; i++ {
		buf = appendFrame(buf, &frame{kind: fBegin, ch: 1, name: fmt.Sprintf("flood-%06d", i)})
		buf = appendFrame(buf, &frame{kind: fEnd, ch: 1})
	}
	fr := newFrameReader(bytes.NewReader(buf))
	defer fr.close()
	var f frame
	var err error
	decoded := 0
	for {
		if err = fr.readFrame(&f); err != nil {
			break
		}
		decoded++
	}
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("flood ended with %v, want ErrProtocol", err)
	}
	if decoded > 2*maxInterned {
		t.Fatalf("decoded %d frames before the overflow tripped", decoded)
	}
	if len(fr.names) > maxInterned || fr.nameBytes > maxInternedBytes {
		t.Fatalf("intern table grew past its caps: %d names, %d bytes", len(fr.names), fr.nameBytes)
	}
}

// The byte cap trips before the entry cap when the names are long:
// few-but-huge names cannot pin hundreds of megabytes.
func TestNameInternFloodBytes(t *testing.T) {
	name := strings.Repeat("x", 1<<12) // 4 KiB per name
	var buf []byte
	for i := 0; i < maxInternedBytes/len(name)+8; i++ {
		buf = appendFrame(buf, &frame{kind: fBegin, ch: 1, name: fmt.Sprintf("%s%06d", name, i)})
		buf = appendFrame(buf, &frame{kind: fEnd, ch: 1})
	}
	fr := newFrameReader(bytes.NewReader(buf))
	defer fr.close()
	var f frame
	var err error
	for {
		if err = fr.readFrame(&f); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("flood ended with %v, want ErrProtocol", err)
	}
	if len(fr.names) >= maxInterned {
		t.Fatalf("byte cap never tripped: %d names interned", len(fr.names))
	}
	if fr.nameBytes > maxInternedBytes {
		t.Fatalf("interned %d name bytes, cap is %d", fr.nameBytes, maxInternedBytes)
	}
}

// End to end: a raw client flooding a live server with distinct names
// is dropped (the connection dies under it) and counted as a protocol
// violation — the regression test for the intern-table cap.
func TestServerDropsNameFlood(t *testing.T) {
	rt := core.New(core.ConfigAll)
	defer rt.Shutdown()
	h := rt.NewHandler("h")
	srv := NewServer(rt)
	srv.Expose("h", h, map[string]Proc{"nop": func([]int64) int64 { return 0 }})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	before := srv.Stats().ProtocolViolations
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var buf []byte
	for i := 0; i < maxInterned+10; i++ {
		buf = appendFrame(buf, &frame{kind: fBegin, ch: 1, name: fmt.Sprintf("flood-%06d", i)})
		buf = appendFrame(buf, &frame{kind: fEnd, ch: 1})
	}
	conn.Write(buf) //nolint:errcheck // the server may cut us off mid-write
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.Copy(io.Discard, conn); err != nil && !errors.Is(err, net.ErrClosed) {
		// A reset from the dropped connection is as good as EOF.
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			t.Fatal("server kept the flooding connection alive")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ProtocolViolations == before {
		if time.Now().After(deadline) {
			t.Fatal("protocol violation was never counted")
		}
		time.Sleep(time.Millisecond)
	}
}

// startBytesServer brings up a runtime with one handler exposing both
// int64 and bytes procedures, for the end-to-end bytes tests.
func startBytesServer(t *testing.T, cfg core.Config) (addr string, srv *Server, shutdown func()) {
	t.Helper()
	rt := core.New(cfg)
	h := rt.NewHandler("store")
	var n int64
	var stored []byte
	srv = NewServer(rt)
	srv.Expose("store", h, map[string]Proc{
		"add": func(a []int64) int64 { n += a[0]; return n },
	})
	srv.ExposeBytes("store", h, map[string]BytesProc{
		"echo": func(p []byte) []byte { return p },
		"put":  func(p []byte) []byte { stored = append(stored[:0], p...); return nil },
		"get":  func([]byte) []byte { return stored },
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv, func() {
		srv.Close()
		rt.Shutdown()
	}
}

func TestRemoteBytesEcho(t *testing.T) {
	for _, m := range serverModes {
		t.Run(m.name, func(t *testing.T) {
			addr, srv, shutdown := startBytesServer(t, m.cfg)
			defer shutdown()

			c, err := Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			big := bytes.Repeat([]byte("payload!"), 16<<10/8) // 16 KiB, past the intern threshold
			err = c.Separate("store", func(s *Session) error {
				// CallBytes + a query observing it: the proc copied the
				// payload under the handler's exclusion.
				if err := s.CallBytes("put", []byte("hello, bytes")); err != nil {
					return err
				}
				got, err := s.QueryBytes("get", nil)
				if err != nil {
					return err
				}
				if string(got) != "hello, bytes" {
					t.Errorf("get saw %q, want %q", got, "hello, bytes")
				}
				Release(got)

				// Large echo round trip through the slab path.
				got, err = s.QueryBytes("echo", big)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, big) {
					t.Errorf("large echo corrupted: %d bytes back, want %d", len(got), len(big))
				}
				if len(got) != 0 && cap(got) != len(got) {
					t.Errorf("reply payload cap %d > len %d", cap(got), len(got))
				}
				Release(got)

				// Empty payload: nil in, nil out, Release is a no-op.
				got, err = s.QueryBytes("echo", nil)
				if err != nil {
					return err
				}
				if len(got) != 0 {
					t.Errorf("empty echo returned %d bytes", len(got))
				}
				Release(got)

				// The int64 namespace composes with the bytes one on the
				// same handler.
				if v, err := s.Query("add", 41); err != nil || v != 41 {
					t.Errorf("add = %d, %v; want 41", v, err)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}

			ms := c.m.Stats()
			if ms.BytesOut == 0 || ms.BytesIn == 0 {
				t.Errorf("mux counters missed the payloads: out %d in %d", ms.BytesOut, ms.BytesIn)
			}
			ss := srv.Stats()
			if ss.BytesIn == 0 || ss.BytesOut == 0 {
				t.Errorf("server counters missed the payloads: in %d out %d", ss.BytesIn, ss.BytesOut)
			}
		})
	}
}

// Pipelined bytes queries resolve through plain futures, so the typed
// future.Of[[]byte] view works on them unchanged.
func TestRemoteBytesPipelined(t *testing.T) {
	addr, _, shutdown := startBytesServer(t, core.ConfigAll)
	defer shutdown()

	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const k = 32
	err = c.Separate("store", func(s *Session) error {
		futs := make([]future.Typed[[]byte], 0, k)
		for i := 0; i < k; i++ {
			f, err := s.QueryBytesAsync("echo", []byte(fmt.Sprintf("msg-%08d-%s", i, strings.Repeat("z", 100))))
			if err != nil {
				return err
			}
			futs = append(futs, future.Of[[]byte](f))
		}
		for i, f := range futs {
			p, err := f.Get()
			if err != nil {
				return err
			}
			if want := fmt.Sprintf("msg-%08d-", i); !strings.HasPrefix(string(p), want) {
				t.Errorf("reply %d: got %.20q, want prefix %q", i, p, want)
			}
			Release(p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// An unknown bytes procedure fails the query with a server error, and
// an unknown bytes procedure in a CallBytes poisons the block like its
// int64 counterpart.
func TestRemoteBytesUnknownProc(t *testing.T) {
	addr, _, shutdown := startBytesServer(t, core.ConfigAll)
	defer shutdown()

	c, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Separate("store", func(s *Session) error {
		_, err := s.QueryBytes("nonesuch", []byte("x"))
		if err == nil || !strings.Contains(err.Error(), "unknown bytes procedure") {
			t.Errorf("unknown query err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	err = c.Separate("store", func(s *Session) error {
		if err := s.CallBytes("nonesuch", []byte("x")); err != nil {
			return err
		}
		// The poison is asynchronous (CallBytes is fire-and-forget); the
		// next synchronization point must surface it.
		return s.Sync()
	})
	if err == nil || !strings.Contains(err.Error(), "unknown bytes procedure") {
		t.Fatalf("poisoned block err = %v", err)
	}
}
