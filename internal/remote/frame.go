// Package remote implements the paper's §7 future-work item: private
// queues with sockets as the underlying implementation. A Server
// exposes named procedures bound to the handlers of a local SCOOP/Qs
// runtime; remote clients get the same separate-block vocabulary —
// asynchronous calls, pipelined queries, sync handshakes — with the
// private queue realized as a framed binary protocol over a TCP (or
// any net.Conn) stream.
//
// # Multiplexing
//
// One connection hosts many logical clients. A Mux owns the
// connection and hands out lightweight RemoteSessions; every frame
// carries a channel id, so the separate blocks of hundreds of logical
// clients interleave on one stream while each channel keeps its own
// private-queue ordering. The server end demultiplexes frames into
// per-channel core.Session state and drives every reply through the
// runtime's non-blocking futures path, so one reader goroutine and one
// writer goroutine serve all the channels of a connection — no
// goroutine per logical client anywhere.
//
// Because the reader goroutine serves every channel, nothing it does
// may block: reservations use the queue-of-queues (the server requires
// a QoQ configuration), queries are logged with core.Session.CallFuture
// and replied to from completion callbacks, and sync handshakes ride
// core.Session.SyncFuture. All replies are id-tagged and may resolve in
// any order; per-block ordering comes from the handler executing each
// private queue in order, exactly as for local clients.
//
// # Flow control
//
// The write path is bounded on both ends. Each connection's batching
// writer caps its pending batch at a soft byte budget: client-side
// producers park at the cap until the batch drains below low water,
// while server-side completion callbacks (which must never block)
// defer their reply inside the writer instead. On top of the budget,
// every channel carries a credit window — advertised by the server
// with a CREDIT frame when the channel first appears, consumed one
// credit per logged request, replenished in batches as requests
// complete — so the server's deferred replies are bounded by
// window × channels even under a peer that stopped reading. Windows
// are adaptive by default (Server.Window left zero): each channel's
// window tracks an EWMA of its drain rate with AIMD dynamics — grown
// additively while the channel keeps its writer fed, halved when its
// replies congest the connection's writer — so a fast consumer earns
// a deep pipeline while a slow one is throttled toward the minimum,
// keeping the byte budget fair across channels. A channel that
// overruns its window is quarantined, not fatal: the server releases
// its handler, reports ErrCreditOverrun on the channel, and drops its
// subsequent frames, while the connection and its other channels keep
// working. Idle peers are handled the same way at connection scope:
// with Server.IdleTimeout set, a peer holding a block open with
// nothing in flight is torn down (ErrPeerStalled) instead of pinning
// server state forever.
//
// Failures surface through typed, errors.Is-matchable sentinels.
// Terminal for the connection or channel: ErrClosed (deliberate local
// Close — the one "failure" that is clean), ErrProtocol (the peer
// broke the framing contract), ErrCreditOverrun, ErrPeerStalled. A
// bare transport error (connection reset, unexpected EOF) wraps none
// of them, which is how callers distinguish "the operator closed
// this" from "the network ate it": only the latter is worth a
// reconnect-and-retry.
//
// The client-side consequence of the bounded write path: Call,
// QueryAsync, Query, and Sync can park the calling goroutine (at a
// zero window, or at the byte budget), so they must not be used
// inside Future.OnComplete callbacks, which run on the mux's reader
// goroutine.
//
// # Wire format
//
// Frames are binary: a fixed one-byte kind, then uvarint/zigzag-varint
// fields (strings are uvarint length + bytes). There is no length
// prefix; the stream is self-delimiting. All frames start with
//
//	kind:uint8  channel:uvarint
//
// followed by the kind's payload:
//
//	BEGIN (0x01)  handler:string            open a separate block
//	END   (0x02)  —                         end the block (END marker)
//	CALL  (0x03)  fn:string args:varints    asynchronous call, no reply
//	QUERY (0x04)  id:uvarint fn:string args pipelined query -> REPLY/ERROR
//	SYNC  (0x05)  id:uvarint                barrier -> REPLY once prior
//	                                        requests have executed
//	CLOSE (0x06)  —                         retire the channel (abandons
//	                                        an open block: server ENDs it)
//	REPLY (0x81)  id:uvarint val:varint     query/sync result
//	ERROR (0x82)  id:uvarint msg:string     query/sync failure; id 0 is
//	                                        a block-level failure (BEGIN
//	                                        or CALL misfired), recorded
//	                                        as the channel's sticky
//	                                        block error and surfaced at
//	                                        its next sync point
//	CREDIT(0x83)  n:uvarint                 grant the channel n request
//	                                        credits (flow control): the
//	                                        initial window advertisement
//	                                        on channel creation, then
//	                                        replenishment as requests
//	                                        complete
//	CALLB (0x07)  fn:string payload:bytes   asynchronous bytes call, no
//	                                        reply
//	QUERYB(0x08)  id:uvarint fn:string      pipelined bytes query ->
//	              payload:bytes             REPLYB/ERROR
//	REPLYB(0x84)  id:uvarint payload:bytes  bytes query result
//
// args is a uvarint count followed by that many zigzag varints; values
// are int64, the protocol's wire currency. payload is a uvarint length
// followed by that many raw bytes — the protocol's opaque currency for
// real service payloads (see README "Bytes payloads" for the ownership
// contract). Encoding appends to a caller-owned buffer and decoding
// reuses the frame's args slice, an interning table for
// procedure/handler names, and pooled refcounted slabs for payloads
// (slab.go), so the steady-state hot path allocates nothing per
// message in either direction.
//
// The gob-encoded, connection-per-client protocol this replaced is
// retained as GobClient/GobServer — a measurement baseline for
// qsbench -experiment remote, not an API to build on.
package remote

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"scoopqs/internal/obs"
)

// frameKind enumerates the wire frames. Client->server kinds are low,
// server->client kinds have the high bit set.
type frameKind uint8

const (
	fBegin  frameKind = 0x01 // open a separate block on a handler
	fEnd    frameKind = 0x02 // end the block (the END marker)
	fCall   frameKind = 0x03 // asynchronous call, no reply
	fQuery  frameKind = 0x04 // pipelined query; REPLY/ERROR carries id
	fSync   frameKind = 0x05 // barrier; REPLY once prior requests ran
	fClose  frameKind = 0x06 // retire the channel
	fCallB  frameKind = 0x07 // asynchronous bytes call, no reply
	fQueryB frameKind = 0x08 // pipelined bytes query; REPLYB/ERROR carries id

	fReply  frameKind = 0x81 // query/sync result
	fError  frameKind = 0x82 // query/sync failure (id 0: block-level)
	fCredit frameKind = 0x83 // flow-control grant; id carries the credit count
	fReplyB frameKind = 0x84 // bytes query result
)

// Decoder hard limits: a malformed or malicious stream cannot make the
// reader allocate unboundedly. Handler/procedure names and error
// messages are short; argument vectors are call-sized; bytes payloads
// are service-message-sized.
//
// The name-interning table is bounded in entries AND bytes, and a peer
// that overflows it is dropped with ErrProtocol rather than degraded:
// names are a protocol vocabulary (handlers and procedures), so an
// open-ended stream of distinct names is an adversary growing the
// table, not a workload. Before the byte cap, maxInterned entries of
// maxStringLen bytes each could pin 256 MiB per connection.
const (
	maxStringLen     = 1 << 16 // name or error message bytes
	maxArgs          = 1 << 16 // arguments per call
	maxInterned      = 4096    // distinct names cached per connection
	maxInternedBytes = 1 << 19 // total bytes across the name table

	maxBytesLen = 1 << 20 // bytes payload length

	// Small payloads repeat in real service traffic (balances, status
	// codes, canned responses); up to maxInternPayload bytes they are
	// served from a bounded permanent cache instead of a slab, so a hot
	// small reply costs a map probe and its Release is a no-op.
	maxInternPayload    = 64
	maxInternedPayloads = 256
)

// frame is the decoded wire message. One frame struct is reused across
// reads: args is truncated and refilled, name strings are interned per
// connection, and bytes payloads are carved from pooled slabs, so
// steady-state decoding does not allocate.
type frame struct {
	kind frameKind
	ch   uint32 // channel (logical client) id
	id   uint64 // fQuery/fSync/fReply/fError/fQueryB/fReplyB: pipeline tag
	val  int64  // fReply: result value
	name string // fBegin: handler; fCall/fQuery/fCallB/fQueryB: procedure; fError: message
	args []int64
	data []byte // fCallB/fQueryB/fReplyB: payload (slab-owned on decode)
}

// appendFrame encodes f onto buf and returns the extended buffer. It is
// the single encoder for both directions; the caller owns the buffer,
// so encoding into a reused batch buffer allocates nothing.
func appendFrame(buf []byte, f *frame) []byte {
	buf = append(buf, byte(f.kind))
	buf = binary.AppendUvarint(buf, uint64(f.ch))
	switch f.kind {
	case fBegin:
		buf = appendString(buf, f.name)
	case fEnd, fClose:
	case fCall:
		buf = appendString(buf, f.name)
		buf = appendArgs(buf, f.args)
	case fQuery:
		buf = binary.AppendUvarint(buf, f.id)
		buf = appendString(buf, f.name)
		buf = appendArgs(buf, f.args)
	case fSync, fCredit:
		buf = binary.AppendUvarint(buf, f.id)
	case fReply:
		buf = binary.AppendUvarint(buf, f.id)
		buf = binary.AppendVarint(buf, f.val)
	case fError:
		buf = binary.AppendUvarint(buf, f.id)
		buf = appendString(buf, f.name)
	case fCallB:
		buf = appendString(buf, f.name)
		buf = appendBytes(buf, f.data)
	case fQueryB:
		buf = binary.AppendUvarint(buf, f.id)
		buf = appendString(buf, f.name)
		buf = appendBytes(buf, f.data)
	case fReplyB:
		buf = binary.AppendUvarint(buf, f.id)
		buf = appendBytes(buf, f.data)
	default:
		panic(fmt.Sprintf("remote: encoding unknown frame kind 0x%02x", byte(f.kind)))
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendArgs(buf []byte, args []int64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(args)))
	for _, a := range args {
		buf = binary.AppendVarint(buf, a)
	}
	return buf
}

// appendBytes encodes a length-prefixed payload directly onto buf —
// the caller-owned batch buffer — so the encode side of the bytes path
// is one copy (producer buffer -> wire batch) and zero allocations.
func appendBytes(buf, data []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(data)))
	return append(buf, data...)
}

// frameReader decodes frames from a stream. It owns a buffered reader,
// a scratch buffer for string bytes, a per-connection interning table
// so repeated handler/procedure names decode to the same string with
// no allocation, a bounded cache of small repeated payloads, and a
// slab allocator for the rest of the bytes payloads.
type frameReader struct {
	r         *bufio.Reader
	names     map[string]string
	nameBytes int // total bytes interned in names (satellite of maxInterned)
	strbuf    []byte
	payloads  map[string][]byte // small-payload intern cache (static entries)
	slabs     slabAlloc
	mid       bool // the last readFrame consumed bytes before failing
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{
		r:     bufio.NewReader(r),
		names: make(map[string]string),
	}
}

// close drops the reader's hold on its current payload slab; call it
// when the stream is done so an idle reader does not pin a slab.
// Payloads already handed out keep their own references. Idempotent.
func (fr *frameReader) close() { fr.slabs.close() }

// readFrame decodes the next frame into f, reusing f's args slice. Any
// error (including a malformed frame) is terminal for the stream: the
// reader's position is undefined afterwards.
func (fr *frameReader) readFrame(f *frame) error {
	fr.mid = false
	k, err := fr.r.ReadByte()
	if err != nil {
		return err
	}
	fr.mid = true
	f.kind = frameKind(k)
	ch, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return unexpectedEOF(err)
	}
	if ch > math.MaxUint32 {
		return fmt.Errorf("remote: channel id %d overflows uint32: %w", ch, ErrProtocol)
	}
	f.ch = uint32(ch)
	f.id, f.val, f.name, f.data = 0, 0, "", nil
	f.args = f.args[:0]
	switch f.kind {
	case fBegin:
		f.name, err = fr.readString(true)
	case fEnd, fClose:
	case fCall:
		if f.name, err = fr.readString(true); err == nil {
			err = fr.readArgs(f)
		}
	case fQuery:
		if f.id, err = binary.ReadUvarint(fr.r); err != nil {
			return unexpectedEOF(err)
		}
		if f.name, err = fr.readString(true); err == nil {
			err = fr.readArgs(f)
		}
	case fSync, fCredit:
		f.id, err = binary.ReadUvarint(fr.r)
	case fReply:
		if f.id, err = binary.ReadUvarint(fr.r); err != nil {
			return unexpectedEOF(err)
		}
		f.val, err = binary.ReadVarint(fr.r)
	case fError:
		if f.id, err = binary.ReadUvarint(fr.r); err != nil {
			return unexpectedEOF(err)
		}
		f.name, err = fr.readString(false)
	case fCallB:
		if f.name, err = fr.readString(true); err == nil {
			f.data, err = fr.readBytes()
		}
	case fQueryB:
		if f.id, err = binary.ReadUvarint(fr.r); err != nil {
			return unexpectedEOF(err)
		}
		if f.name, err = fr.readString(true); err == nil {
			f.data, err = fr.readBytes()
		}
	case fReplyB:
		if f.id, err = binary.ReadUvarint(fr.r); err != nil {
			return unexpectedEOF(err)
		}
		f.data, err = fr.readBytes()
	default:
		return fmt.Errorf("remote: unknown frame kind 0x%02x: %w", k, ErrProtocol)
	}
	return unexpectedEOF(err)
}

// readString decodes a length-prefixed string. With intern=true the
// bytes are looked up in (and added to) the connection's name table, so
// a hot procedure name costs a map probe instead of an allocation. The
// table is capped in entries and bytes; a peer that overflows it is a
// protocol violator (names are a bounded vocabulary, and an unbounded
// stream of distinct ones is a memory attack), so the overflow is
// terminal with ErrProtocol rather than a silent degradation.
func (fr *frameReader) readString(intern bool) (string, error) {
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return "", unexpectedEOF(err)
	}
	if n > maxStringLen {
		return "", fmt.Errorf("remote: string of %d bytes exceeds limit %d: %w", n, maxStringLen, ErrProtocol)
	}
	if cap(fr.strbuf) < int(n) {
		fr.strbuf = make([]byte, n)
	}
	b := fr.strbuf[:n]
	if _, err := io.ReadFull(fr.r, b); err != nil {
		return "", unexpectedEOF(err)
	}
	if intern {
		if s, ok := fr.names[string(b)]; ok {
			return s, nil
		}
		if len(fr.names) >= maxInterned || fr.nameBytes+len(b) > maxInternedBytes {
			return "", fmt.Errorf("remote: name-intern table overflow (%d names, %d bytes cached): %w",
				len(fr.names), fr.nameBytes, ErrProtocol)
		}
		s := string(b)
		fr.names[s] = s
		fr.nameBytes += len(s)
		return s, nil
	}
	return string(b), nil
}

// readBytes decodes a length-prefixed payload. Small payloads are
// served from the connection's bounded intern cache (permanent,
// Release-is-a-no-op entries — repeated service replies cost a map
// probe); everything else is carved from a pooled slab, handed to the
// caller with one reference, to be returned with Release. Decoded
// payloads are read-only: interned entries are shared across frames.
func (fr *frameReader) readBytes() ([]byte, error) {
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if n > maxBytesLen {
		return nil, fmt.Errorf("remote: bytes payload of %d exceeds limit %d: %w", n, maxBytesLen, ErrProtocol)
	}
	if obs.Enabled() {
		payloadHist.Observe(int64(n))
	}
	if n == 0 {
		return nil, nil
	}
	if n <= maxInternPayload {
		if cap(fr.strbuf) < int(n) {
			fr.strbuf = make([]byte, n)
		}
		b := fr.strbuf[:n]
		if _, err := io.ReadFull(fr.r, b); err != nil {
			return nil, unexpectedEOF(err)
		}
		if p, ok := fr.payloads[string(b)]; ok {
			return p, nil
		}
		if len(fr.payloads) < maxInternedPayloads {
			if fr.payloads == nil {
				fr.payloads = make(map[string][]byte)
			}
			p := newStaticPayload(b)
			fr.payloads[string(b)] = p
			return p, nil
		}
		out := fr.slabs.take(int(n))
		copy(out, b)
		return out, nil
	}
	out := fr.slabs.take(int(n))
	if _, err := io.ReadFull(fr.r, out); err != nil {
		Release(out)
		return nil, unexpectedEOF(err)
	}
	return out, nil
}

func (fr *frameReader) readArgs(f *frame) error {
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return unexpectedEOF(err)
	}
	if n > maxArgs {
		return fmt.Errorf("remote: %d arguments exceed limit %d: %w", n, maxArgs, ErrProtocol)
	}
	if cap(f.args) < int(n) {
		f.args = make([]int64, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		a, err := binary.ReadVarint(fr.r)
		if err != nil {
			return unexpectedEOF(err)
		}
		f.args = append(f.args, a)
	}
	return nil
}

// atBoundary reports whether the reader is positioned between frames:
// the last readFrame error (if any) struck before the frame's first
// byte was consumed, so the stream is still in sync and a retryable
// error (a read deadline on a quiet connection) may simply read again.
func (fr *frameReader) atBoundary() bool { return !fr.mid }

// unexpectedEOF converts a mid-frame EOF into io.ErrUnexpectedEOF so a
// stream truncated inside a frame is distinguishable from a clean close
// between frames (plain io.EOF from the kind byte).
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
