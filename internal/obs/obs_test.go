package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {1<<62 + 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistSnapshotAndQuantiles(t *testing.T) {
	h := NewRegistry().Hist("t")
	// 100 observations: 90 fast (values 1..90), 9 at ~1000, 1 at 50000.
	for i := int64(1); i <= 90; i++ {
		h.Observe(i)
	}
	for i := 0; i < 9; i++ {
		h.Observe(1000)
	}
	h.Observe(50000)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Max != 50000 {
		t.Fatalf("Max = %d, want 50000", s.Max)
	}
	if p := s.P50(); p < 45 || p > 127 {
		t.Errorf("P50 = %d, want within [45,127] (bucket upper bound of ~50)", p)
	}
	if p := s.P99(); p < 1000 || p > 2047 {
		t.Errorf("P99 = %d, want within [1000,2047]", p)
	}
	if q := s.Quantile(1.0); q != 50000 {
		t.Errorf("Quantile(1.0) = %d, want max 50000", q)
	}
	if m := s.Mean(); m < 100 || m > 700 {
		t.Errorf("Mean = %v out of plausible range", m)
	}
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Max != 0 || s.Sum != 0 {
		t.Errorf("after Reset: %+v, want zeroes", s)
	}
}

func TestHistEmptyQuantile(t *testing.T) {
	h := NewRegistry().Hist("empty")
	s := h.Snapshot()
	if s.P50() != 0 || s.P99() != 0 || s.Mean() != 0 {
		t.Errorf("empty hist quantiles non-zero: %+v", s)
	}
}

// TestHistConcurrentMerge hammers Observe from many goroutines while a
// spectator snapshots continuously — the satellite-3 merge race test,
// run under -race by CI at GOMAXPROCS {1,4}.
func TestHistConcurrentMerge(t *testing.T) {
	h := NewRegistry().Hist("race")
	const writers, perWriter = 8, 5000
	stop := make(chan struct{})
	var spect sync.WaitGroup
	spect.Add(1)
	go func() {
		defer spect.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count < 0 || s.Sum < 0 {
				t.Error("negative snapshot under concurrency")
				return
			}
			_ = s.P99()
		}
	}()
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.ObserveShard(wr, int64(i%997)+1)
			}
		}(wr)
	}
	wg.Wait()
	close(stop)
	spect.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("Count = %d, want %d", s.Count, writers*perWriter)
	}
}

func TestRegistryIdentityAndReset(t *testing.T) {
	r := NewRegistry()
	if r.Hist("a") != r.Hist("a") {
		t.Error("Hist not get-or-create")
	}
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter not get-or-create")
	}
	r.Hist("a").Observe(7)
	r.Counter("c").Add(3)
	if n := r.TotalObservations(); n != 1 {
		t.Errorf("TotalObservations = %d, want 1", n)
	}
	if got := r.Counters()["c"]; got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	r.Reset()
	if n := r.TotalObservations(); n != 0 {
		t.Errorf("TotalObservations after Reset = %d", n)
	}
	if got := r.Counters()["c"]; got != 0 {
		t.Errorf("counter after Reset = %d", got)
	}
}

func TestRingEmitAndWrap(t *testing.T) {
	r := NewRing("test-wrap")
	defer r.reset()
	const n = ringSize + 100
	for i := int64(0); i < n; i++ {
		r.Emit(KindDispatch, 1, i)
	}
	evs := r.snapshot()
	if len(evs) != ringSize {
		t.Fatalf("snapshot len = %d, want %d", len(evs), ringSize)
	}
	// Oldest-first: the first surviving record is emission n-ringSize.
	if evs[0].Arg != n-ringSize {
		t.Errorf("oldest Arg = %d, want %d", evs[0].Arg, n-ringSize)
	}
	if evs[len(evs)-1].Arg != n-1 {
		t.Errorf("newest Arg = %d, want %d", evs[len(evs)-1].Arg, n-1)
	}
}

// TestRingConcurrentEmitExport races multi-producer emission against
// snapshots and the Chrome exporter.
func TestRingConcurrentEmitExport(t *testing.T) {
	r := NewRing("test-race")
	defer r.reset()
	var emitters, spect sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		emitters.Add(1)
		go func() {
			defer emitters.Done()
			for i := 0; i < 20000; i++ {
				r.Emit(KindSteal, uint64(i), 1)
			}
		}()
	}
	spect.Add(1)
	go func() {
		defer spect.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.snapshot()
			var buf bytes.Buffer
			if err := WriteChromeTrace(&buf); err != nil {
				t.Errorf("WriteChromeTrace: %v", err)
				return
			}
		}
	}()
	emitters.Wait()
	close(stop)
	spect.Wait()
}

func TestChromeTraceShape(t *testing.T) {
	ResetTrace()
	r := NewRing("test-chrome")
	defer r.reset()
	r.Emit(KindDispatch, 42, 1500) // duration kind -> "X"
	r.Emit(KindFlush, 0, 8192)     // instant kind -> "i"
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var gotX, gotI, gotM bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M":
			gotM = true
		case ev.Ph == "X" && ev.Name == KindDispatch.String():
			gotX = true
			if ev.Dur < 1.49 || ev.Dur > 1.51 {
				t.Errorf("X dur = %v us, want 1.5", ev.Dur)
			}
		case ev.Ph == "i" && ev.Name == KindFlush.String():
			gotI = true
		}
	}
	if !gotX || !gotI || !gotM {
		t.Errorf("missing event shapes: X=%v i=%v M=%v\n%s", gotX, gotI, gotM, buf.String())
	}
}

func TestEnableFlag(t *testing.T) {
	if Enabled() {
		t.Fatal("recording enabled at test start")
	}
	Enable()
	if !Enabled() {
		t.Fatal("Enable did not take")
	}
	Disable()
	if Enabled() {
		t.Fatal("Disable did not take")
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := KindNone + 1; k < kindMax; k++ {
		if kindNames[k] == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
