// Package obs is the runtime's observability substrate: a process-wide
// event tracer and a registry of latency histograms and counters shared
// by the scheduler (internal/sched), the core runtime (internal/core),
// and the remote transport (internal/remote).
//
// The design constraint is the scheduler's hot path: dispatch is tens
// of nanoseconds, so instrumentation must be free when nobody is
// looking. Everything here hangs off one process-global atomic enable
// flag — an instrumented site is
//
//	if obs.Enabled() { ... record ... }
//
// and the disabled cost is a single predictable branch on a plain load
// (atomic.Bool.Load compiles to an ordinary MOV on amd64/arm64).
// Neither timestamps nor histogram updates happen while the flag is
// off; there is no per-event locking while it is on.
//
// Two recording primitives exist:
//
//   - Event rings (trace.go): fixed-width records appended to
//     per-worker ring buffers, exported as Chrome trace_event JSON for
//     Perfetto. Modeled on Go's own execution tracer.
//   - Histograms (hist.go): power-of-two-bucket latency/size
//     distributions, sharded per worker and merged on snapshot, with
//     p50/p90/p99/max extraction. Named instances live in a Registry
//     (registry.go); the layers predeclare theirs at init.
package obs

import (
	"sync/atomic"
	"time"
	"unsafe"
)

// enabled is the process-global recording flag. One flag for both
// tracing and metrics: the point is a single branch at every
// instrumented site, not per-subsystem toggles.
var enabled atomic.Bool

// Enabled reports whether recording is on. Instrumented sites gate on
// it; when it returns false they must do no other observability work.
func Enabled() bool { return enabled.Load() }

// Enable turns recording on. Sites begin stamping timestamps, emitting
// events, and updating histograms.
func Enable() { enabled.Store(true) }

// Disable turns recording off. In-flight operations that stamped a
// start time while enabled may still record their completion; that is
// deliberate (a duration is more useful than a dangling start).
func Disable() { enabled.Store(false) }

// epoch anchors Now: timestamps are monotonic nanoseconds since process
// start, which keeps them small, comparable across goroutines, and
// immune to wall-clock steps.
var epoch = time.Now()

// Now returns a monotonic timestamp in nanoseconds. It is a single
// vDSO clock read (time.Since uses the monotonic clock); call it only
// under an Enabled check — ~25ns is real money next to a 33ns dispatch.
func Now() int64 { return int64(time.Since(epoch)) }

// stackShard derives a small shard index from the caller's stack
// address. Distinct goroutines live on distinct stacks, so concurrent
// callers spread across shards without TLS or a contended counter. The
// shift skips the frame-to-frame jitter within one goroutine.
func stackShard() int {
	var b byte
	return int((uintptr(unsafe.Pointer(&b)) >> 9) & (numShards - 1))
}
