package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a named monotonic counter for events that have a count
// but no distribution (steal attempts, wake elisions). Like histogram
// observations, Add is only called under an Enabled check.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Registry is the unified metrics namespace: get-or-create histograms
// and counters by dotted name ("sched.dispatch_wait_ns"). The layers
// predeclare their instruments as package vars at init, so the hot
// path holds direct pointers and never consults the map.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*Hist
	counters map[string]*Counter
}

// NewRegistry returns an empty registry. Most code wants Default.
func NewRegistry() *Registry {
	return &Registry{
		hists:    map[string]*Hist{},
		counters: map[string]*Counter{},
	}
}

// def is the process-global registry every layer registers into.
var def = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return def }

// Hist returns the histogram registered under name, creating it on
// first use. The same name always yields the same instance.
func (r *Registry) Hist(name string) *Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Hist{name: name}
		r.hists[name] = h
	}
	return h
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Snapshot merges every histogram, sorted by name. Safe concurrently
// with observers.
func (r *Registry) Snapshot() []HistSnap {
	r.mu.Lock()
	hs := make([]*Hist, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	out := make([]HistSnap, len(hs))
	for i, h := range hs {
		out[i] = h.Snapshot()
	}
	return out
}

// Counters returns every counter's current value, keyed by name.
func (r *Registry) Counters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.v.Load()
	}
	return out
}

// TotalObservations sums every histogram's count — the cheap "did
// anything record?" probe the disabled-path assertions use.
func (r *Registry) TotalObservations() int64 {
	var n int64
	for _, s := range r.Snapshot() {
		n += s.Count
	}
	return n
}

// Reset zeroes every histogram and counter, keeping the instances (and
// the pointers instrumented code holds) intact. Epoch boundary for
// per-experiment measurement, not a linearizable cut.
func (r *Registry) Reset() {
	r.mu.Lock()
	hs := make([]*Hist, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	cs := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		cs = append(cs, c)
	}
	r.mu.Unlock()
	for _, h := range hs {
		h.Reset()
	}
	for _, c := range cs {
		c.v.Store(0)
	}
}

// ResetAll resets the default registry and drops every trace ring:
// the clean-slate call between benchmark phases.
func ResetAll() {
	def.Reset()
	ResetTrace()
}
