package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Kind identifies what an event records. The constants span the three
// instrumented layers; kindNames/kindDur must be kept in step.
type Kind uint8

const (
	KindNone Kind = iota

	// internal/sched
	KindDispatch   // span: task ready→run queue latency (arg = ns)
	KindSteal      // instant: a task migrated to the emitting worker
	KindWorkerPark // span: worker idle on the pool condvar (arg = ns)
	KindTaskSpawn  // instant: TaskGroup.Spawn
	KindTaskJoin   // span: TaskGroup.Wait duration (arg = ns)

	// internal/core
	KindHandlerReady // instant: handler scheduled (id = handler)
	KindHandlerRun   // span: one handler Step (arg = ns, id = handler)
	KindAwaitPark    // span: handler parked on an await (arg = ns, id = handler)
	KindCall         // span: async call log→execution (arg = ns, id = handler)
	KindQuery        // span: synchronous query end-to-end (arg = ns, id = handler)
	KindSync         // span: sync round-trip end-to-end (arg = ns, id = handler)
	KindSyncElide    // instant: a sync skipped by dynamic coalescing (id = handler)
	KindGuardWait    // span: client parked waiting for a guard re-evaluation (arg = ns, id = handler)

	// internal/remote
	KindFlush        // instant: one conn.Write (arg = batch bytes)
	KindWriterStall  // span: producer parked at the byte budget (arg = ns)
	KindCreditWait   // span: admission parked at zero credits (arg = ns, id = channel)
	KindRoundTrip    // span: pipelined request→reply (arg = ns, id = channel)
	KindWindowResize // instant: adaptive credit-window retarget (arg = new window, id = channel)

	// internal/chaos
	KindChaosFault // instant: injected fault (arg = faultKind code, id = conn)
	KindChaosDelay // span: injected latency (arg = ns, id = conn)

	kindMax
)

// kindNames are the Chrome trace event names; index by Kind.
var kindNames = [kindMax]string{
	KindNone:         "none",
	KindDispatch:     "sched.dispatch",
	KindSteal:        "sched.steal",
	KindWorkerPark:   "sched.worker_park",
	KindTaskSpawn:    "sched.task_spawn",
	KindTaskJoin:     "sched.task_join",
	KindHandlerReady: "core.handler_ready",
	KindHandlerRun:   "core.handler_run",
	KindAwaitPark:    "core.await_park",
	KindCall:         "core.call",
	KindQuery:        "core.query",
	KindSync:         "core.sync",
	KindSyncElide:    "core.sync_elide",
	KindGuardWait:    "core.guard_wait",
	KindFlush:        "remote.flush",
	KindWriterStall:  "remote.writer_stall",
	KindCreditWait:   "remote.credit_wait",
	KindRoundTrip:    "remote.roundtrip",
	KindWindowResize: "remote.window_resize",
	KindChaosFault:   "chaos.fault",
	KindChaosDelay:   "chaos.delay",
}

// kindDur marks kinds whose arg is a duration in nanoseconds; they
// export as complete ("X") trace events ending at the record's
// timestamp. The rest export as instants.
var kindDur = [kindMax]bool{
	KindDispatch:    true,
	KindWorkerPark:  true,
	KindTaskJoin:    true,
	KindHandlerRun:  true,
	KindAwaitPark:   true,
	KindCall:        true,
	KindQuery:       true,
	KindSync:        true,
	KindGuardWait:   true,
	KindWriterStall: true,
	KindCreditWait:  true,
	KindRoundTrip:   true,
	KindChaosDelay:  true,
}

// String returns the event name used in exported traces.
func (k Kind) String() string {
	if k < kindMax {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one fixed-width trace record. TS is obs.Now at emission;
// for duration kinds (kindDur) Arg is the span's length in nanoseconds
// and TS its end.
type Event struct {
	TS   int64
	Arg  int64
	ID   uint64
	Kind Kind
}

// slot is one ring entry, stored as independent atomics: a snapshot
// racing a wrapped writer may still assemble a record from two epochs
// (torn — the consumers tolerate it), but every word is individually
// atomic, because the Go memory model has no benign plain-word races.
// On the architectures that matter these stores compile to plain MOVs,
// so emission stays a claim plus four stores.
type slot struct {
	ts   atomic.Int64
	arg  atomic.Int64
	id   atomic.Uint64
	kind atomic.Uint32
}

func (s *slot) load() Event {
	return Event{
		TS:   s.ts.Load(),
		Arg:  s.arg.Load(),
		ID:   s.id.Load(),
		Kind: Kind(s.kind.Load()),
	}
}

// ringSize is the per-ring capacity in events (a power of two). At 32
// bytes per record a full ring is 512 KiB — allocated lazily on the
// ring's first Emit, so an untraced process pays nothing.
const ringSize = 1 << 14

// Ring is one event ring buffer. Emission is lock-free: a producer
// claims a slot with an atomic fetch-add and writes the record in
// place, overwriting the oldest once the ring wraps. Each scheduler
// worker owns a ring (single producer, the common case); the shared
// rings behind Emit take the same path with multiple producers — the
// claim arbitrates slots, and a snapshot racing a wrapped writer may
// read a torn record (the slot's words are individually atomic),
// which the exporter tolerates: traces are best-effort diagnostics,
// not ground truth.
type Ring struct {
	name string
	pos  atomic.Uint64
	buf  atomic.Pointer[[]slot]
	mu   sync.Mutex // guards lazy buf allocation only
}

// Emit appends one record. Call only while Enabled; the caller's gate
// is the disabled-path branch, not this method.
func (r *Ring) Emit(kind Kind, id uint64, arg int64) {
	buf := r.buf.Load()
	if buf == nil {
		buf = r.allocBuf()
	}
	i := r.pos.Add(1) - 1
	s := &(*buf)[i&(ringSize-1)]
	s.ts.Store(Now())
	s.arg.Store(arg)
	s.id.Store(id)
	s.kind.Store(uint32(kind))
}

func (r *Ring) allocBuf() *[]slot {
	r.mu.Lock()
	defer r.mu.Unlock()
	if buf := r.buf.Load(); buf != nil {
		return buf
	}
	buf := make([]slot, ringSize)
	r.buf.Store(&buf)
	return &buf
}

// snapshot returns the ring's records oldest-first. Records being
// overwritten concurrently may tear; KindNone and out-of-range kinds
// are filtered by the consumers.
func (r *Ring) snapshot() []Event {
	buf := r.buf.Load()
	if buf == nil {
		return nil
	}
	n := r.pos.Load()
	if n > ringSize {
		out := make([]Event, ringSize)
		start := n & (ringSize - 1)
		for i := range out {
			out[i] = (*buf)[(start+uint64(i))&(ringSize-1)].load()
		}
		return out
	}
	out := make([]Event, n)
	for i := range out {
		out[i] = (*buf)[i].load()
	}
	return out
}

// reset drops the ring's contents and releases its buffer.
func (r *Ring) reset() {
	r.mu.Lock()
	r.buf.Store(nil)
	r.pos.Store(0)
	r.mu.Unlock()
}

// tracer is the process-global ring registry: every ring ever handed
// out, in creation order, so the exporter can walk them all.
var tracer struct {
	mu    sync.Mutex
	rings []*Ring
}

// NewRing registers and returns a ring under the given diagnostic name
// (it becomes the Chrome trace thread name).
func NewRing(name string) *Ring {
	r := &Ring{name: name}
	tracer.mu.Lock()
	tracer.rings = append(tracer.rings, r)
	tracer.mu.Unlock()
	return r
}

// workerRingPoolSize bounds the per-worker ring pool. Worker ids wrap
// onto it, so a long-lived process that churns compensation workers
// reuses rings instead of growing the registry without bound; two
// workers sharing a ring is safe (the slot claim is atomic).
const workerRingPoolSize = 64

var workerRings struct {
	mu    sync.Mutex
	rings [workerRingPoolSize]*Ring
}

// WorkerRing returns the pooled ring for scheduler worker id. Rings are
// created on first use and shared by all executors in the process —
// worker ids wrap onto a fixed pool, trading perfect attribution for a
// bounded registry.
func WorkerRing(id int) *Ring {
	i := id % workerRingPoolSize
	if i < 0 {
		i = -i
	}
	workerRings.mu.Lock()
	r := workerRings.rings[i]
	if r == nil {
		r = NewRing(fmt.Sprintf("worker%d", i))
		workerRings.rings[i] = r
	}
	workerRings.mu.Unlock()
	return r
}

// sharedRings serve emitters with no worker context: clients, the
// remote reader and writer goroutines, future callbacks. Stack-address
// sharding keeps concurrent emitters off each other's cache lines.
var sharedRings [numShards]*Ring

func init() {
	for i := range sharedRings {
		sharedRings[i] = NewRing(fmt.Sprintf("shared%d", i))
	}
}

// Emit records one event on a shared ring. For code with a worker in
// hand, emitting on the worker's own ring is cheaper and attributes
// the event; this is the context-free fallback.
func Emit(kind Kind, id uint64, arg int64) {
	sharedRings[stackShard()].Emit(kind, id, arg)
}

// ResetTrace drops every ring's contents (buffers are released and
// reallocated on next use). Positions restart at zero; concurrent
// emitters may land a stale record in a fresh buffer, which is
// harmless for a diagnostics stream.
func ResetTrace() {
	tracer.mu.Lock()
	rings := append([]*Ring(nil), tracer.rings...)
	tracer.mu.Unlock()
	for _, r := range rings {
		r.reset()
	}
}

// EventCount returns the total number of events currently held across
// all rings (capped at each ring's capacity).
func EventCount() int64 {
	tracer.mu.Lock()
	rings := append([]*Ring(nil), tracer.rings...)
	tracer.mu.Unlock()
	var n int64
	for _, r := range rings {
		if p := r.pos.Load(); p > ringSize {
			n += ringSize
		} else {
			n += int64(p)
		}
	}
	return n
}

// Emitted returns the total number of events ever emitted across all
// rings since the last ResetTrace — a raw, uncapped count, so a delta
// of zero proves nothing recorded even when rings have wrapped. The
// disabled-path assertions use it.
func Emitted() int64 {
	tracer.mu.Lock()
	rings := append([]*Ring(nil), tracer.rings...)
	tracer.mu.Unlock()
	var n int64
	for _, r := range rings {
		n += int64(r.pos.Load())
	}
	return n
}

// KindCounts returns how many events of each kind the rings currently
// hold, keyed by trace event name. Torn or zero records are skipped.
func KindCounts() map[string]int64 {
	tracer.mu.Lock()
	rings := append([]*Ring(nil), tracer.rings...)
	tracer.mu.Unlock()
	out := map[string]int64{}
	for _, r := range rings {
		for _, ev := range r.snapshot() {
			if ev.Kind > KindNone && ev.Kind < kindMax {
				out[kindNames[ev.Kind]]++
			}
		}
	}
	return out
}

// WriteChromeTrace exports every ring as Chrome trace_event JSON (the
// format Perfetto and chrome://tracing load). Each ring becomes one
// thread; duration kinds export as complete ("X") events spanning
// [TS-Arg, TS], the rest as instants with the raw arg attached.
// Timestamps are microseconds with nanosecond precision, relative to
// process start. Export with recording disabled for a consistent
// snapshot; a live export is safe but may contain torn records (which
// are dropped when their kind is out of range).
func WriteChromeTrace(w io.Writer) error {
	tracer.mu.Lock()
	rings := append([]*Ring(nil), tracer.rings...)
	tracer.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for tid, r := range rings {
		evs := r.snapshot()
		if len(evs) == 0 {
			continue
		}
		emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, tid, r.name)
		for _, ev := range evs {
			if ev.Kind <= KindNone || ev.Kind >= kindMax {
				continue // unwritten slot or torn record
			}
			name := kindNames[ev.Kind]
			if kindDur[ev.Kind] && ev.Arg >= 0 {
				start := float64(ev.TS-ev.Arg) / 1e3
				emit(`{"name":%q,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"id":%d}}`,
					name, tid, start, float64(ev.Arg)/1e3, ev.ID)
			} else {
				emit(`{"name":%q,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f,"args":{"id":%d,"arg":%d}}`,
					name, tid, float64(ev.TS)/1e3, ev.ID, ev.Arg)
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
