package obs

import (
	"math/bits"
	"sync/atomic"
)

// numShards is the histogram (and shared-ring) shard count: enough to
// keep an 8-worker pool plus client goroutines off each other's cache
// lines, small enough that merging stays trivial. Power of two.
const numShards = 16

// numBuckets covers every non-negative int64: bucket i counts values v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i); bucket 0 holds
// zero and negatives.
const numBuckets = 64

// histShard is one shard's counters. Updates are independent atomic
// adds — observers on different shards never touch the same line (the
// shard is larger than a cache line by construction).
type histShard struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Hist is a power-of-two-bucket distribution: values land in the
// bucket of their bit length, so the whole int64 range fits in 64
// counters and any quantile is recoverable within a factor of two
// (and exactly at the top, via the tracked max). Observation is two
// atomic adds and an increment on the caller's shard; Snapshot merges
// the shards.
//
// A Hist is typically obtained from a Registry (get-or-create by
// name) and observed only under an Enabled check — the disabled path
// must not pay for the atomics.
type Hist struct {
	name   string
	shards [numShards]histShard
}

// Name returns the histogram's registry name.
func (h *Hist) Name() string { return h.name }

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records v on a shard derived from the caller's stack. Use
// ObserveShard when a stable shard index (a worker id) is in hand.
func (h *Hist) Observe(v int64) { h.ObserveShard(stackShard(), v) }

// ObserveShard records v on shard s (wrapped onto the shard count).
// Scheduler workers pass their id so a worker's observations always
// hit the same shard.
func (h *Hist) ObserveShard(s int, v int64) {
	sh := &h.shards[s&(numShards-1)]
	sh.counts[bucketOf(v)].Add(1)
	sh.count.Add(1)
	sh.sum.Add(v)
	for {
		m := sh.max.Load()
		if v <= m {
			break
		}
		if sh.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Reset zeroes every shard. Concurrent observers may land updates
// across the sweep; the result is a clean-enough epoch boundary for
// benchmarking, not a linearizable cut.
func (h *Hist) Reset() {
	for i := range h.shards {
		sh := &h.shards[i]
		for j := range sh.counts {
			sh.counts[j].Store(0)
		}
		sh.count.Store(0)
		sh.sum.Store(0)
		sh.max.Store(0)
	}
}

// HistSnap is a merged point-in-time view of a Hist.
type HistSnap struct {
	Name    string
	Count   int64
	Sum     int64
	Max     int64
	Buckets [numBuckets]int64
}

// Snapshot merges all shards. Safe concurrently with observers; the
// result is a consistent-enough view (each counter is read once,
// atomically) whose Count may trail in-flight observations.
func (h *Hist) Snapshot() HistSnap {
	s := HistSnap{Name: h.name}
	for i := range h.shards {
		sh := &h.shards[i]
		for j := range sh.counts {
			s.Buckets[j] += sh.counts[j].Load()
		}
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// Mean returns the snapshot's arithmetic mean, 0 when empty.
func (s *HistSnap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// top of the bucket holding the rank-q observation, capped at the
// observed max. Power-of-two buckets make it exact to within 2×,
// which is the resolution tail-latency tracking needs.
func (s *HistSnap) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			var hi int64
			if i == 0 {
				hi = 0
			} else {
				hi = int64(1)<<i - 1
			}
			if hi > s.Max {
				hi = s.Max
			}
			return hi
		}
	}
	return s.Max
}

// P50, P90, and P99 are the tail-latency trio the bench rows report.
func (s *HistSnap) P50() int64 { return s.Quantile(0.50) }
func (s *HistSnap) P90() int64 { return s.Quantile(0.90) }
func (s *HistSnap) P99() int64 { return s.Quantile(0.99) }
