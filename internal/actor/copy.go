package actor

import (
	"fmt"
	"reflect"
)

// DeepCopy returns a structurally independent copy of msg, the way the
// BEAM copies every message between process heaps. Supported message
// shapes: booleans, numbers, strings, slices, arrays, maps, pointers,
// and structs with only exported fields. Actor references (*Ref) are
// shared, not copied — they are the analogue of Erlang pids. Channels,
// functions and structs with unexported fields make DeepCopy panic:
// such values are not meaningful as isolated messages.
func DeepCopy(msg any) any {
	if msg == nil {
		return nil
	}
	return copyValue(reflect.ValueOf(msg)).Interface()
}

var refType = reflect.TypeOf((*Ref)(nil))

func copyValue(v reflect.Value) reflect.Value {
	switch v.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32,
		reflect.Int64, reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32,
		reflect.Uint64, reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128, reflect.String:
		return v
	case reflect.Ptr:
		if v.Type() == refType {
			return v // pids are shared identities
		}
		if v.IsNil() {
			return v
		}
		out := reflect.New(v.Type().Elem())
		out.Elem().Set(copyValue(v.Elem()))
		return out
	case reflect.Interface:
		if v.IsNil() {
			return v
		}
		inner := copyValue(v.Elem())
		out := reflect.New(v.Type()).Elem()
		out.Set(inner)
		return out
	case reflect.Slice:
		if v.IsNil() {
			return v
		}
		out := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
		for i := 0; i < v.Len(); i++ {
			out.Index(i).Set(copyValue(v.Index(i)))
		}
		return out
	case reflect.Array:
		out := reflect.New(v.Type()).Elem()
		for i := 0; i < v.Len(); i++ {
			out.Index(i).Set(copyValue(v.Index(i)))
		}
		return out
	case reflect.Map:
		if v.IsNil() {
			return v
		}
		out := reflect.MakeMapWithSize(v.Type(), v.Len())
		iter := v.MapRange()
		for iter.Next() {
			out.SetMapIndex(copyValue(iter.Key()), copyValue(iter.Value()))
		}
		return out
	case reflect.Struct:
		t := v.Type()
		out := reflect.New(t).Elem()
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				panic(fmt.Sprintf("actor: message type %s has unexported field %s; messages must be plain data", t, t.Field(i).Name))
			}
			out.Field(i).Set(copyValue(v.Field(i)))
		}
		return out
	default:
		panic(fmt.Sprintf("actor: cannot copy message of kind %s (%s)", v.Kind(), v.Type()))
	}
}
