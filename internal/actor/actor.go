// Package actor is a small Erlang-style actor runtime: lightweight
// processes with unbounded mailboxes, deep-copied messages (no shared
// memory between actors), selective receive, and a gen_server-style
// call/reply convention.
//
// It is the substrate standing in for Erlang in the paper's language
// comparison: its defining cost is that every message is copied in its
// entirety between actor heaps, which is exactly the communication
// burden the paper measures for Erlang on the data-parallel Cowichan
// problems.
package actor

import (
	"sync"
	"sync/atomic"

	"scoopqs/internal/queue"
)

var ids atomic.Uint64

// Ref identifies an actor, like an Erlang pid. Refs are sent inside
// messages without being copied.
type Ref struct {
	id   uint64
	mbox *queue.MPSC[any]
	done chan struct{}
}

// ID returns the actor's unique id.
func (r *Ref) ID() uint64 { return r.id }

// Send delivers a deep copy of msg to the actor's mailbox. It never
// blocks. Sending to a terminated actor silently drops the message,
// as in Erlang.
func (r *Ref) Send(msg any) {
	select {
	case <-r.done:
		return
	default:
	}
	r.mbox.Enqueue(DeepCopy(msg))
}

// Join blocks until the actor's body function returns.
func (r *Ref) Join() { <-r.done }

// Ctx is an actor's view of itself, passed to its body function. It is
// only valid on the actor's own goroutine.
type Ctx struct {
	self  *Ref
	saved []any // messages skipped by selective receive, in order
}

// Self returns the actor's own Ref.
func (c *Ctx) Self() *Ref { return c.self }

// Receive returns the next message in mailbox order, blocking if
// necessary. Messages previously skipped by ReceiveMatch come first.
func (c *Ctx) Receive() any {
	if len(c.saved) > 0 {
		m := c.saved[0]
		c.saved = c.saved[1:]
		return m
	}
	m, _ := c.self.mbox.Dequeue()
	return m
}

// ReceiveMatch returns the first message satisfying pred, blocking
// until one arrives. Non-matching messages are saved and delivered by
// later receives in their original order — Erlang's selective receive.
func (c *Ctx) ReceiveMatch(pred func(any) bool) any {
	for i, m := range c.saved {
		if pred(m) {
			c.saved = append(c.saved[:i], c.saved[i+1:]...)
			return m
		}
	}
	for {
		m, _ := c.self.mbox.Dequeue()
		if pred(m) {
			return m
		}
		c.saved = append(c.saved, m)
	}
}

// Request is the envelope of a synchronous call, delivered to the
// server actor. Reply to it with Ctx.Reply.
type Request struct {
	ID      uint64
	From    *Ref
	Payload any
}

type response struct {
	ID    uint64
	Value any
}

// Call sends payload to the server actor and blocks until its Reply,
// like gen_server:call. The reply is matched by id, so interleaved
// messages from other actors are not confused with it.
func (c *Ctx) Call(to *Ref, payload any) any {
	id := ids.Add(1)
	to.Send(Request{ID: id, From: c.self, Payload: payload})
	m := c.ReceiveMatch(func(m any) bool {
		r, ok := m.(response)
		return ok && r.ID == id
	})
	return m.(response).Value
}

// Reply answers a Request received by a server actor.
func (c *Ctx) Reply(req Request, v any) {
	req.From.Send(response{ID: req.ID, Value: v})
}

// Spawn starts a new actor running body and returns its Ref. The actor
// terminates when body returns.
func Spawn(body func(c *Ctx)) *Ref {
	r := &Ref{
		id:   ids.Add(1),
		mbox: queue.NewMPSC[any](0),
		done: make(chan struct{}),
	}
	go func() {
		defer close(r.done)
		body(&Ctx{self: r})
	}()
	return r
}

// SpawnGroup starts n actors and returns their refs plus a wait
// function that joins all of them.
func SpawnGroup(n int, body func(i int, c *Ctx)) ([]*Ref, func()) {
	refs := make([]*Ref, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		refs[i] = Spawn(func(c *Ctx) {
			defer wg.Done()
			body(i, c)
		})
	}
	return refs, wg.Wait
}
