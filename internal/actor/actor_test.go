package actor

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSendReceive(t *testing.T) {
	got := make(chan any, 1)
	a := Spawn(func(c *Ctx) { got <- c.Receive() })
	a.Send("hello")
	select {
	case v := <-got:
		if v != "hello" {
			t.Fatalf("got %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered")
	}
	a.Join()
}

func TestPerSenderFIFO(t *testing.T) {
	type msg struct {
		Sender, Seq int
	}
	const senders, per = 4, 2000
	recvd := make(chan msg, senders*per)
	sink := Spawn(func(c *Ctx) {
		for i := 0; i < senders*per; i++ {
			recvd <- c.Receive().(msg)
		}
	})
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sink.Send(msg{Sender: s, Seq: i})
			}
		}(s)
	}
	wg.Wait()
	sink.Join()
	close(recvd)
	next := make([]int, senders)
	for m := range recvd {
		if m.Seq != next[m.Sender] {
			t.Fatalf("sender %d: got seq %d, want %d", m.Sender, m.Seq, next[m.Sender])
		}
		next[m.Sender]++
	}
}

// Deep-copy isolation: mutating a received message must not affect the
// sender's copy, and vice versa.
func TestMessageIsolation(t *testing.T) {
	type payload struct {
		Data []int
		Tags map[string]int
	}
	original := payload{Data: []int{1, 2, 3}, Tags: map[string]int{"a": 1}}
	done := make(chan struct{})
	a := Spawn(func(c *Ctx) {
		m := c.Receive().(payload)
		m.Data[0] = 999
		m.Tags["a"] = 999
		close(done)
	})
	a.Send(original)
	<-done
	if original.Data[0] != 1 || original.Tags["a"] != 1 {
		t.Fatal("receiver mutation leaked into sender's message")
	}
}

func TestSelectiveReceivePreservesOrder(t *testing.T) {
	out := make(chan []any, 1)
	a := Spawn(func(c *Ctx) {
		// Wait for the token first even though other messages arrive
		// before it, then drain the rest in order.
		tok := c.ReceiveMatch(func(m any) bool { _, ok := m.(string); return ok })
		rest := []any{tok}
		for i := 0; i < 3; i++ {
			rest = append(rest, c.Receive())
		}
		out <- rest
	})
	a.Send(1)
	a.Send(2)
	a.Send("token")
	a.Send(3)
	got := <-out
	if got[0] != "token" || got[1] != 1 || got[2] != 2 || got[3] != 3 {
		t.Fatalf("selective receive order wrong: %v", got)
	}
	a.Join()
}

func TestCallReply(t *testing.T) {
	server := Spawn(func(c *Ctx) {
		for i := 0; i < 3; i++ {
			req := c.Receive().(Request)
			c.Reply(req, req.Payload.(int)*2)
		}
	})
	results := make(chan int, 3)
	_, wait := SpawnGroup(3, func(i int, c *Ctx) {
		results <- c.Call(server, i+1).(int)
	})
	wait()
	server.Join()
	close(results)
	sum := 0
	for v := range results {
		sum += v
	}
	if sum != 2+4+6 {
		t.Fatalf("sum = %d, want 12", sum)
	}
}

func TestCallsFromManyClientsMatchIDs(t *testing.T) {
	server := Spawn(func(c *Ctx) {
		for {
			m := c.Receive()
			req, ok := m.(Request)
			if !ok {
				return // stop sentinel
			}
			c.Reply(req, req.Payload)
		}
	})
	const clients, calls = 8, 200
	errs := make(chan int, clients)
	_, wait := SpawnGroup(clients, func(i int, c *Ctx) {
		bad := 0
		for k := 0; k < calls; k++ {
			want := i*1000 + k
			if got := c.Call(server, want).(int); got != want {
				bad++
			}
		}
		errs <- bad
	})
	wait()
	server.Send(struct{}{}) // not a Request: stops the server — but it
	// must be a copyable type; empty struct is fine.
	server.Join()
	close(errs)
	for bad := range errs {
		if bad != 0 {
			t.Fatalf("%d mismatched call replies", bad)
		}
	}
}

func TestSendToDeadActorDropped(t *testing.T) {
	a := Spawn(func(c *Ctx) {})
	a.Join()
	a.Send("into the void") // must not panic or block
}

func TestRefsSharedNotCopied(t *testing.T) {
	type envelope struct{ To *Ref }
	b := Spawn(func(c *Ctx) { c.Receive() })
	got := make(chan *Ref, 1)
	a := Spawn(func(c *Ctx) {
		env := c.Receive().(envelope)
		got <- env.To
	})
	a.Send(envelope{To: b})
	if r := <-got; r != b {
		t.Fatal("Ref was copied; pids must be shared identities")
	}
	b.Send(0)
	a.Join()
	b.Join()
}

func TestDeepCopyKinds(t *testing.T) {
	type inner struct{ X int }
	type outer struct {
		P   *inner
		S   []string
		M   map[int][]int
		A   [2]int
		Any any
	}
	in := outer{
		P:   &inner{X: 5},
		S:   []string{"a", "b"},
		M:   map[int][]int{1: {2, 3}},
		A:   [2]int{7, 8},
		Any: []int{9},
	}
	out := DeepCopy(in).(outer)
	if out.P == in.P {
		t.Error("pointer not copied")
	}
	if out.P.X != 5 {
		t.Error("pointee value lost")
	}
	out.S[0] = "zz"
	out.M[1][0] = 99
	out.Any.([]int)[0] = 99
	if in.S[0] != "a" || in.M[1][0] != 2 || in.Any.([]int)[0] != 9 {
		t.Error("copy shares storage with original")
	}
}

func TestDeepCopyNils(t *testing.T) {
	if DeepCopy(nil) != nil {
		t.Error("nil should copy to nil")
	}
	type box struct {
		P *int
		S []int
		M map[int]int
	}
	out := DeepCopy(box{}).(box)
	if out.P != nil || out.S != nil || out.M != nil {
		t.Error("nil fields should stay nil")
	}
}

func TestDeepCopyRejectsUnexported(t *testing.T) {
	type sneaky struct {
		x int //nolint:unused // presence is the point
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unexported field")
		}
	}()
	DeepCopy(sneaky{})
}

func TestDeepCopyRejectsChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for channel message")
		}
	}()
	DeepCopy(make(chan int))
}

// Property: DeepCopy of int-slice trees preserves structure and value.
func TestDeepCopyQuick(t *testing.T) {
	f := func(xs []int, m map[string]int) bool {
		in := struct {
			Xs []int
			M  map[string]int
		}{xs, m}
		out := DeepCopy(in).(struct {
			Xs []int
			M  map[string]int
		})
		if len(out.Xs) != len(xs) || len(out.M) != len(m) {
			return false
		}
		for i := range xs {
			if out.Xs[i] != xs[i] {
				return false
			}
		}
		for k, v := range m {
			if out.M[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPingPongLatency(t *testing.T) {
	// Two actors bounce a counter; verifies no message loss over many
	// round trips. Partners are introduced by message, Erlang-style.
	const rounds = 5000
	done := make(chan int, 1)
	bounce := func(c *Ctx, report bool) {
		partner := c.Receive().(*Ref)
		for {
			v := c.Receive().(int)
			if v >= rounds {
				if report {
					done <- v
				} else {
					partner.Send(v)
				}
				return
			}
			partner.Send(v + 1)
		}
	}
	ping := Spawn(func(c *Ctx) { bounce(c, true) })
	pong := Spawn(func(c *Ctx) { bounce(c, false) })
	ping.Send(pong)
	pong.Send(ping)
	ping.Send(0)
	select {
	case v := <-done:
		if v < rounds {
			t.Fatalf("stopped early at %d", v)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ping-pong lost the ball")
	}
}
